module viewmap

go 1.24
