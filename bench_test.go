// Package viewmap_bench holds one testing.B benchmark per table and
// figure of the paper's evaluation. Each benchmark regenerates its
// experiment at a reduced scale (so `go test -bench=.` completes in
// minutes) and reports headline metrics through b.ReportMetric; the
// cmd/viewmap-bench binary runs the same experiments at quick or full
// scale with complete row output.
package viewmap_bench

import (
	"testing"

	"viewmap/internal/bloom"
	"viewmap/internal/geo"
	"viewmap/internal/sim"
	"viewmap/internal/vd"
	"viewmap/internal/video"
)

// BenchmarkTable1_PlateBlur profiles the realtime license-plate
// blurring pipeline (blur + I/O per frame, fps).
func BenchmarkTable1_PlateBlur(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := sim.Table1(10)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(rows[0].FPS, "host-fps")
		}
	}
}

// BenchmarkFig8_CascadeHash measures the constant-time per-second
// digest at the paper's 50 MB/min rate.
func BenchmarkFig8_CascadeHash(b *testing.B) {
	chunk := make([]byte, video.DefaultBytesPerSecond)
	var prev vd.Hash
	b.SetBytes(int64(len(chunk)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		prev = vd.CascadeStep(int64(i), geo.Pt(1, 2), int64(i), prev, chunk)
	}
	_ = prev
}

// BenchmarkFig8_NormalHash measures the naive full-prefix rehash at
// the end of a minute — the baseline whose cost grows with recording
// time (Fig. 8's rising curve).
func BenchmarkFig8_NormalHash(b *testing.B) {
	chunks := make([][]byte, vd.SegmentSeconds)
	for i := range chunks {
		chunks[i] = make([]byte, video.DefaultBytesPerSecond)
	}
	b.SetBytes(int64(vd.SegmentSeconds * video.DefaultBytesPerSecond))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		vd.NormalHash(60, geo.Pt(1, 2), 50e6, chunks)
	}
}

// BenchmarkFig9_GuardVolume measures guard-VP selection volume.
func BenchmarkFig9_GuardVolume(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := sim.Fig9()
		if len(rows) == 0 {
			b.Fatal("no rows")
		}
	}
}

// BenchmarkFig10_11_Privacy runs the guard-VP tracking study at small
// scale and reports final-minute tracking success with guards.
func BenchmarkFig10_11_Privacy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		curves, err := sim.Privacy(sim.PrivacyConfig{
			Vehicles: []int{50}, Minutes: 10,
			BlocksX: 20, BlocksY: 20, SpacingM: 200,
			Seed: int64(i), IncludeBareReference: true,
		})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			last := len(curves[0].Success) - 1
			b.ReportMetric(curves[0].Success[last], "guarded-success")
			b.ReportMetric(curves[1].Success[last], "bare-success")
		}
	}
}

// BenchmarkFig12_VerifyPositions runs the attacker-position sweep at
// reduced scale and reports mean accuracy.
func BenchmarkFig12_VerifyPositions(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := sim.Fig12(sim.VerifyConfig{LegitVPs: 150, Runs: 2, Seed: int64(i)})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(meanAccuracy(rows), "accuracy")
		}
	}
}

// BenchmarkFig13_ConcentrationAttack runs the dummy-VP sweep at
// reduced scale.
func BenchmarkFig13_ConcentrationAttack(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := sim.Fig13(sim.VerifyConfig{LegitVPs: 150, Runs: 2, Seed: int64(i)})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(meanAccuracy(rows), "accuracy")
		}
	}
}

// BenchmarkFig14_FalseLinkage evaluates the Bloom false-linkage
// closed form across the paper's parameter grid.
func BenchmarkFig14_FalseLinkage(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := sim.Fig14()
		if len(rows) == 0 {
			b.Fatal("no rows")
		}
	}
	b.ReportMetric(bloom.FalseLinkageRate(2048, bloom.OptimalK(2048, 300), 300), "p-2048-300")
}

// BenchmarkFig15_VLREnvironments measures VP linkage ratio vs distance
// across the four field environments.
func BenchmarkFig15_VLREnvironments(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := sim.Fig15(32, int64(i))
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) == 0 {
			b.Fatal("no rows")
		}
	}
}

// BenchmarkFig16_PDRvsRSSI generates the PDR/RSSI scatter.
func BenchmarkFig16_PDRvsRSSI(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := sim.Fig16(30, int64(i))
		if len(rows) == 0 {
			b.Fatal("no rows")
		}
	}
}

// BenchmarkFig17_SpeedTraffic measures VLR vs distance for the
// highway speed/traffic matrix.
func BenchmarkFig17_SpeedTraffic(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := sim.Fig17(32, int64(i))
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) == 0 {
			b.Fatal("no rows")
		}
	}
}

// BenchmarkTable2_Scenarios runs the fourteen scripted LOS/NLOS
// scenarios.
func BenchmarkTable2_Scenarios(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := sim.Table2(5, int64(i))
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) != 14 {
			b.Fatal("scenario suite incomplete")
		}
	}
}

// BenchmarkFig20_Correlation computes the linkage/visibility phi
// correlation per distance bucket.
func BenchmarkFig20_Correlation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := sim.Fig20(48, int64(i))
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) == 0 {
			b.Fatal("no rows")
		}
	}
}

// BenchmarkFig21_TrafficViewmaps builds viewmaps from traffic traces
// at 50 and 70 km/h.
func BenchmarkFig21_TrafficViewmaps(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := sim.Fig21(100, 1, int64(i))
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(float64(rows[0].Members), "members")
		}
	}
}

// BenchmarkFig22ab_CityPrivacy runs the city-scale tracking study at
// reduced scale.
func BenchmarkFig22ab_CityPrivacy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		curves, err := sim.Privacy(sim.PrivacyConfig{
			Vehicles: []int{150}, Minutes: 8,
			BlocksX: 40, BlocksY: 40, SpacingM: 200, Seed: int64(i),
		})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			last := len(curves[0].Success) - 1
			b.ReportMetric(curves[0].Success[last], "success")
			b.ReportMetric(curves[0].EntropyBit[last], "entropy-bits")
		}
	}
}

// BenchmarkFig22c_ContactTime measures mean vehicle contact intervals
// by speed.
func BenchmarkFig22c_ContactTime(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := sim.Fig22C(60, 2, int64(i))
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 && len(rows) > 0 {
			b.ReportMetric(rows[0].MeanContact, "mean-contact-s")
		}
	}
}

// BenchmarkFig22d_CityVerify sweeps attacker positions on
// traffic-derived viewmaps.
func BenchmarkFig22d_CityVerify(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := sim.Fig22D(sim.CityVerifyConfig{Vehicles: 150, Runs: 2, Seed: int64(i)})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(meanAccuracy(rows), "accuracy")
		}
	}
}

// BenchmarkFig22e_CityConcentration runs the city-scale concentration
// attack.
func BenchmarkFig22e_CityConcentration(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := sim.Fig22E(sim.CityVerifyConfig{Vehicles: 150, Runs: 2, Seed: int64(i)})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(meanAccuracy(rows), "accuracy")
		}
	}
}

// BenchmarkFig22f_Membership measures the viewmap member-VP
// percentage by speed.
func BenchmarkFig22f_Membership(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := sim.Fig22F(80, 1, int64(i))
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 && len(rows) > 0 {
			b.ReportMetric(rows[0].MemberPct, "member-pct")
		}
	}
}

// BenchmarkEvidencePipeline runs the end-to-end evidence lifecycle
// (solicit, anonymous deliver with cascade verification, blind-signed
// payout, blurred release) and reports delivery throughput.
func BenchmarkEvidencePipeline(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := sim.Evidence(sim.EvidenceConfig{
			Convoys: 2, CiviliansPerConvoy: 2, Seed: int64(i + 1),
		})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(res.DeliveriesPerSec, "deliveries/s")
			b.ReportMetric(res.VerifyMBps, "verify-MB/s")
		}
	}
}

// BenchmarkOverhead_VDVP reports the Section 6.1 size accounting.
func BenchmarkOverhead_VDVP(b *testing.B) {
	var o sim.OverheadReport
	for i := 0; i < b.N; i++ {
		o = sim.Overhead()
	}
	b.ReportMetric(float64(o.VDBytes), "vd-bytes")
	b.ReportMetric(float64(o.VPBytes), "vp-bytes")
}

func meanAccuracy(rows []sim.VerifyRow) float64 {
	var sum float64
	n := 0
	for _, r := range rows {
		if r.Runs > 0 {
			sum += r.Accuracy
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}
