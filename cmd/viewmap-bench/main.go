// Command viewmap-bench regenerates the tables and figures of the
// ViewMap paper's evaluation from this reproduction's simulators.
//
// Usage:
//
//	viewmap-bench [-run regex-less-name] [-scale quick|full] [-seed N]
//
// Each experiment prints the same rows/series the paper reports;
// EXPERIMENTS.md records paper-vs-measured values. "quick" uses
// smaller populations and fewer runs (seconds per experiment); "full"
// approaches the paper's scale (minutes).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"viewmap/internal/sim"
)

type experiment struct {
	name string
	desc string
	run  func(scale string, seed int64) error
}

// jsonOut, when set via -json, is where experiments that support a
// machine-readable result (ingest-saturation, scenario) write it.
var jsonOut string

func main() {
	runName := flag.String("run", "all", "experiment to run (all, ablation, serving, reverify, evidence, attack-serving, ingest-saturation, scenario, scenario-faults, table1, fig8, fig9, fig10, fig11, fig12, fig13, fig14, fig15, fig16, fig17, table2, fig20, fig21, fig22ab, fig22c, fig22d, fig22e, fig22f, overhead)")
	scale := flag.String("scale", "quick", "quick or full")
	seed := flag.Int64("seed", 42, "base random seed")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile of the selected experiments to this file")
	memProfile := flag.String("memprofile", "", "write a heap profile after the selected experiments to this file")
	flag.StringVar(&jsonOut, "json", "", "write the machine-readable result (ingest-saturation, scenario) to this file")
	flag.Parse()
	if *scale != "quick" && *scale != "full" {
		fmt.Fprintln(os.Stderr, "scale must be quick or full")
		os.Exit(2)
	}
	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "cpuprofile: %v\n", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "cpuprofile: %v\n", err)
			os.Exit(1)
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintf(os.Stderr, "memprofile: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "memprofile: %v\n", err)
			}
		}()
	}
	selected := strings.ToLower(*runName)
	ran := 0
	for _, ex := range experiments() {
		if selected != "all" && selected != ex.name {
			continue
		}
		fmt.Printf("==== %s — %s (scale=%s) ====\n", ex.name, ex.desc, *scale)
		t0 := time.Now()
		if err := ex.run(*scale, *seed); err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", ex.name, err)
			os.Exit(1)
		}
		fmt.Printf("---- %s done in %v ----\n\n", ex.name, time.Since(t0).Round(time.Millisecond))
		ran++
	}
	if ran == 0 {
		fmt.Fprintf(os.Stderr, "unknown experiment %q\n", *runName)
		os.Exit(2)
	}
}

func experiments() []experiment {
	return []experiment{
		{"table1", "realtime plate blurring frame rates", runTable1},
		{"fig8", "hash generation time, cascade vs normal", runFig8},
		{"fig9", "volume of VP creation vs neighbors", runFig9},
		{"fig10", "location entropy over time (4x4 km)", runFig10},
		{"fig11", "tracking success ratio over time (4x4 km)", runFig11},
		{"fig12", "verification accuracy vs attacker position", runFig12},
		{"fig13", "verification accuracy vs attacker dummy VPs", runFig13},
		{"fig14", "Bloom false linkage rate", runFig14},
		{"fig15", "VP linkage ratio vs distance by environment", runFig15},
		{"fig16", "PDR vs RSSI", runFig16},
		{"fig17", "VLR vs distance by speed and traffic", runFig17},
		{"table2", "scripted LOS/NLOS scenario suite", runTable2},
		{"fig20", "correlation of VP links and video contents", runFig20},
		{"fig21", "viewmaps from traffic traces", runFig21},
		{"fig22ab", "city-scale entropy and tracking success", runFig22AB},
		{"fig22c", "average contact time by speed", runFig22C},
		{"fig22d", "city-scale accuracy vs attacker position", runFig22D},
		{"fig22e", "city-scale concentration attacks", runFig22E},
		{"fig22f", "viewmap member VP percentage", runFig22F},
		{"overhead", "VD/VP communication and storage overhead", runOverhead},
		{"serving", "sustained-ingest serving: cached viewmaps vs rebuild-per-request (not in the paper)", runServing},
		{"reverify", "post-flood re-verification: warm-started TrustRank vs cold recompute, equality-gated (not in the paper)", runReverify},
		{"ingest-saturation", "burst-pipeline ingest saturation: VPs/s, ack latency, allocs/record (not in the paper)", runIngestSaturation},
		{"metrics-overhead", "observability overhead smoke: ingest saturation with metrics on vs off, fails beyond 5% (not in the paper)", runMetricsOverhead},
		{"evidence", "evidence pipeline: solicit, anonymous deliver + cascade verify, payout, blurred release (not in the paper)", runEvidence},
		{"attack-serving", "online attack campaigns through the live HTTP serving path, cross-checked offline (not in the paper)", runAttackServing},
		{"continuous", "durable continuous operation: ingest WAL, snapshots, retention, mid-run crash+recover (not in the paper)", runContinuous},
		{"scenario", "city-scale scenario: multi-city fault-injected workload with SLO report and baseline cross-check (not in the paper)", runScenario},
		{"scenario-faults", "fault families: crash-and-recover, clock skew, asymmetric partitions, long-horizon retention — each bit-for-bit against an unfaulted baseline (not in the paper)", runScenarioFaults},
		{"ablation", "damping and guard-alpha ablations (not in the paper)", runAblation},
	}
}

func pick(scale string, quick, full int) int {
	if scale == "full" {
		return full
	}
	return quick
}

func runTable1(scale string, seed int64) error {
	rows, err := sim.Table1(pick(scale, 20, 120))
	if err != nil {
		return err
	}
	for _, r := range rows {
		fmt.Println(r)
	}
	fmt.Println("note: platform rows are host times scaled by relative CPU factors (see EXPERIMENTS.md)")
	return nil
}

func runFig8(scale string, seed int64) error {
	bps := pick(scale, 200_000, 833_333) // full scale = 50 MB/min
	rows, err := sim.Fig8(bps)
	if err != nil {
		return err
	}
	fmt.Printf("stream rate %d B/s\n", bps)
	for _, r := range rows {
		fmt.Println(r)
	}
	return nil
}

func runFig9(string, int64) error {
	for _, r := range sim.Fig9() {
		fmt.Println(r)
	}
	return nil
}

func privacyConfig(scale string, seed int64) sim.PrivacyConfig {
	cfg := sim.PrivacyConfig{
		Minutes: pick(scale, 12, 20),
		BlocksX: 20, BlocksY: 20, SpacingM: 200, // 4x4 km
		Seed:                 seed,
		IncludeBareReference: true,
	}
	if scale == "full" {
		cfg.Vehicles = []int{50, 100, 150, 200}
	} else {
		cfg.Vehicles = []int{50, 100}
	}
	return cfg
}

func printPrivacy(curves []sim.PrivacyCurve, entropy bool) {
	for _, c := range curves {
		fmt.Printf("%s:\n", c.Label)
		series := c.Success
		unit := "success"
		if entropy {
			series = c.EntropyBit
			unit = "bits"
		}
		for m, v := range series {
			fmt.Printf("  t=%2d min  %s %.3f\n", m, unit, v)
		}
	}
}

func runFig10(scale string, seed int64) error {
	curves, err := sim.Privacy(privacyConfig(scale, seed))
	if err != nil {
		return err
	}
	printPrivacy(curves, true)
	return nil
}

func runFig11(scale string, seed int64) error {
	curves, err := sim.Privacy(privacyConfig(scale, seed))
	if err != nil {
		return err
	}
	printPrivacy(curves, false)
	return nil
}

func verifyConfig(scale string, seed int64) sim.VerifyConfig {
	return sim.VerifyConfig{
		LegitVPs: pick(scale, 300, 1000),
		Runs:     pick(scale, 5, 100),
		Seed:     seed,
	}
}

func runFig12(scale string, seed int64) error {
	rows, err := sim.Fig12(verifyConfig(scale, seed))
	if err != nil {
		return err
	}
	for _, r := range rows {
		fmt.Println(r)
	}
	return nil
}

func runFig13(scale string, seed int64) error {
	rows, err := sim.Fig13(verifyConfig(scale, seed))
	if err != nil {
		return err
	}
	for _, r := range rows {
		fmt.Println(r)
	}
	return nil
}

func runFig14(string, int64) error {
	for _, r := range sim.Fig14() {
		fmt.Println(r)
	}
	return nil
}

func runFig15(scale string, seed int64) error {
	rows, err := sim.Fig15(pick(scale, 192, 768), seed)
	if err != nil {
		return err
	}
	sim.SortVLRRows(rows)
	for _, r := range rows {
		fmt.Println(r)
	}
	return nil
}

func runFig16(scale string, seed int64) error {
	for _, r := range sim.Fig16(pick(scale, 40, 200), seed) {
		fmt.Println(r)
	}
	return nil
}

func runFig17(scale string, seed int64) error {
	rows, err := sim.Fig17(pick(scale, 64, 512), seed)
	if err != nil {
		return err
	}
	sim.SortVLRRows(rows)
	for _, r := range rows {
		fmt.Println(r)
	}
	return nil
}

func runTable2(scale string, seed int64) error {
	rows, err := sim.Table2(pick(scale, 20, 100), seed)
	if err != nil {
		return err
	}
	for _, r := range rows {
		fmt.Println(r)
	}
	return nil
}

func runFig20(scale string, seed int64) error {
	rows, err := sim.Fig20(pick(scale, 256, 1024), seed)
	if err != nil {
		return err
	}
	sim.SortVLRRows(rows)
	for _, r := range rows {
		fmt.Println(r)
	}
	return nil
}

func runFig21(scale string, seed int64) error {
	rows, err := sim.Fig21(pick(scale, 150, 1000), pick(scale, 2, 5), seed)
	if err != nil {
		return err
	}
	for _, r := range rows {
		fmt.Println(r)
	}
	fmt.Println("note: pass the DOT output to graphviz neato for the Fig 21 renderings")
	return nil
}

func runFig22AB(scale string, seed int64) error {
	cfg := sim.PrivacyConfig{
		Vehicles: []int{pick(scale, 200, 1000)},
		Minutes:  pick(scale, 12, 20),
		BlocksX:  40, BlocksY: 40, SpacingM: 200, // 8x8 km
		Seed:                 seed,
		IncludeBareReference: true,
	}
	curves, err := sim.Privacy(cfg)
	if err != nil {
		return err
	}
	fmt.Println("-- Fig 22a: location entropy --")
	printPrivacy(curves, true)
	fmt.Println("-- Fig 22b: tracking success ratio --")
	printPrivacy(curves, false)
	return nil
}

func runFig22C(scale string, seed int64) error {
	rows, err := sim.Fig22C(pick(scale, 120, 1000), pick(scale, 3, 10), seed)
	if err != nil {
		return err
	}
	for _, r := range rows {
		fmt.Println(r)
	}
	return nil
}

func runFig22D(scale string, seed int64) error {
	rows, err := sim.Fig22D(sim.CityVerifyConfig{
		Vehicles: pick(scale, 250, 1000),
		Runs:     pick(scale, 4, 50),
		Seed:     seed,
	})
	if err != nil {
		return err
	}
	for _, r := range rows {
		fmt.Println(r)
	}
	return nil
}

func runFig22E(scale string, seed int64) error {
	rows, err := sim.Fig22E(sim.CityVerifyConfig{
		Vehicles: pick(scale, 250, 1000),
		Runs:     pick(scale, 4, 50),
		Seed:     seed,
	})
	if err != nil {
		return err
	}
	for _, r := range rows {
		fmt.Println(r)
	}
	return nil
}

func runFig22F(scale string, seed int64) error {
	rows, err := sim.Fig22F(pick(scale, 150, 1000), pick(scale, 2, 5), seed)
	if err != nil {
		return err
	}
	for _, r := range rows {
		fmt.Println(r)
	}
	return nil
}

func runOverhead(string, int64) error {
	fmt.Println(sim.Overhead())
	return nil
}

func runServing(scale string, seed int64) error {
	res, err := sim.Serving(sim.ServingConfig{
		VehiclesPerMinute: pick(scale, 200, 1000),
		Minutes:           pick(scale, 2, 5),
		BatchSize:         64,
		WarmRequests:      pick(scale, 20, 100),
		Seed:              seed,
	})
	if err != nil {
		return err
	}
	for _, r := range res.Rows() {
		fmt.Println(r)
	}
	return nil
}

func runReverify(scale string, seed int64) error {
	res, err := sim.Reverify(sim.ReverifyConfig{
		Vehicles:     pick(scale, 220, 1000),
		Waves:        pick(scale, 4, 10),
		FakesPerWave: pick(scale, 40, 120),
		BatchSize:    64,
		Seed:         seed,
	})
	if err != nil {
		return err
	}
	for _, r := range res.Rows() {
		fmt.Println(r)
	}
	return nil
}

func runIngestSaturation(scale string, seed int64) error {
	// Headline config: 100 vehicles/min in the 2x2 km area (avg viewmap
	// degree ~26). Per-VP ingest cost grows with the minute's viewlink
	// density — every accepted edge is enumerated and Bloom-probed — so
	// the full scale adds a density sweep instead of one bigger number.
	headline := sim.SaturationConfig{
		VehiclesPerMinute: 100,
		Minutes:           12,
		BatchSize:         64,
		Uploaders:         4,
		Seed:              seed,
	}
	res, err := sim.Saturation(headline)
	if err != nil {
		return err
	}
	for _, r := range res.Rows() {
		fmt.Println(r)
	}
	if jsonOut != "" {
		data, err := json.MarshalIndent(res, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(jsonOut, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("baseline written to %s\n", jsonOut)
	}
	if scale == "full" {
		for _, vpm := range []int{200, 400} {
			cfg := headline
			cfg.VehiclesPerMinute = vpm
			dres, err := sim.Saturation(cfg)
			if err != nil {
				return err
			}
			fmt.Printf("density %d/min: %.0f VPs/s, p99 ack %.0f us, %d members / %d edges\n",
				vpm, dres.VPsPerSec, dres.P99AckUS, dres.SpotMembers, dres.SpotEdges)
		}
	}
	// A durable pass at the headline load: every acknowledged batch
	// waited for a group-committed fsync, so the delta against the rows
	// above is the journal's cost.
	dcfg := headline
	dcfg.Durable = true
	dres, err := sim.Saturation(dcfg)
	if err != nil {
		return err
	}
	for _, r := range dres.Rows() {
		fmt.Println(r)
	}
	return nil
}

// runMetricsOverhead is the observability overhead smoke: the same
// ingest-saturation load with the metrics registry on (the default)
// and off (the no-op baseline), best-of-N each to shave scheduler
// noise. The histograms are two atomic adds per sample, so the two
// numbers should be indistinguishable; the run fails if metrics-on
// throughput drops more than 5% below metrics-off.
func runMetricsOverhead(scale string, seed int64) error {
	cfg := sim.SaturationConfig{
		VehiclesPerMinute: 100,
		Minutes:           pick(scale, 6, 12),
		BatchSize:         64,
		Uploaders:         4,
		Seed:              seed,
	}
	trials := pick(scale, 3, 5)
	best := func(disable bool) (float64, error) {
		c := cfg
		c.DisableMetrics = disable
		var top float64
		for i := 0; i < trials; i++ {
			res, err := sim.Saturation(c)
			if err != nil {
				return 0, err
			}
			if res.VPsPerSec > top {
				top = res.VPsPerSec
			}
		}
		return top, nil
	}
	offBest, err := best(true)
	if err != nil {
		return err
	}
	onBest, err := best(false)
	if err != nil {
		return err
	}
	ratio := onBest / offBest
	fmt.Printf("metrics off: %.0f VPs/s (best of %d)\n", offBest, trials)
	fmt.Printf("metrics on:  %.0f VPs/s (best of %d)\n", onBest, trials)
	fmt.Printf("ratio: %.3f (floor 0.950)\n", ratio)
	if ratio < 0.95 {
		return fmt.Errorf("metrics overhead: on/off throughput ratio %.3f below 0.95", ratio)
	}
	fmt.Println("observability overhead within budget")
	return nil
}

func runEvidence(scale string, seed int64) error {
	res, err := sim.Evidence(sim.EvidenceConfig{
		Convoys:            pick(scale, 4, 12),
		CiviliansPerConvoy: pick(scale, 3, 6),
		TamperEvery:        4,
		Units:              2,
		Workers:            pick(scale, 8, 16),
		Seed:               seed,
	})
	if err != nil {
		return err
	}
	for _, r := range res.Rows() {
		fmt.Println(r)
	}
	return nil
}

func runAttackServing(scale string, seed int64) error {
	res, err := sim.AttackServing(sim.AttackServingConfig{
		LegitVPs:  pick(scale, 150, 1000),
		FakePct:   100,
		Owners:    pick(scale, 3, 5),
		BatchSize: 64,
		SweepRuns: pick(scale, 1, 10),
		SweepPcts: []int{100, 300, 500},
		Seed:      seed,
	})
	if err != nil {
		return err
	}
	for _, r := range res.Rows() {
		fmt.Println(r)
	}
	return nil
}

func runContinuous(scale string, seed int64) error {
	res, err := sim.Continuous(sim.ContinuousConfig{
		Vehicles:         pick(scale, 20, 120),
		Minutes:          pick(scale, 8, 120), // full scale: two simulated hours
		RetentionMinutes: pick(scale, 3, 5),
		BatchSize:        32,
		SnapshotEvery:    pick(scale, 3, 10),
		Seed:             seed,
	})
	if err != nil {
		return err
	}
	for _, r := range res.Rows() {
		fmt.Println(r)
	}
	return nil
}

func runScenario(scale string, seed int64) error {
	cfg := sim.QuickScenarioConfig(seed)
	if scale == "full" {
		cfg.Cities = []sim.CityConfig{
			{Vehicles: 60, BlocksX: 10, BlocksY: 10, SpacingM: 200},
			{Vehicles: 40, BlocksX: 8, BlocksY: 8, SpacingM: 200},
			{Vehicles: 30, BlocksX: 6, BlocksY: 6, SpacingM: 200},
		}
		cfg.Minutes = 10
		cfg.BatchSize = 16
		cfg.Overload.IngestSlots = 4
		cfg.Overload.IngestQueue = 8
		cfg.Incidents = []sim.IncidentPlan{
			{Minute: 3, City: 0, Units: 2, Polls: 8},
			{Minute: 6, City: 2, Units: 3, Polls: 8},
		}
		cfg.Faults.FsyncStallFrom = 2
		cfg.Faults.FsyncStallMinutes = 3
		cfg.Faults.PartitionFrom = 8
		cfg.Faults.SnapshotPauseFrom = 3
	}
	res, err := sim.Scenario(cfg)
	if err != nil {
		return err
	}
	// The fault families ride the same report so the CI gate regresses
	// on their counters and latencies alongside the main scenario's.
	res.Families, err = sim.RunFaultFamilies(seed)
	if err != nil {
		return err
	}
	for _, r := range res.Rows() {
		fmt.Println(r)
	}
	if jsonOut != "" {
		data, err := json.MarshalIndent(res, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(jsonOut, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("SLO report written to %s\n", jsonOut)
	}
	return nil
}

func runScenarioFaults(scale string, seed int64) error {
	fams, err := sim.RunFaultFamilies(seed)
	if err != nil {
		return err
	}
	for _, f := range fams {
		fmt.Printf("%s: %d probes bit-for-bit, zero acked loss; upload p99 %.1f ms, investigate p99 %.1f ms\n",
			f.Name, f.ProbesCompared, f.Upload.P99MS, f.Investigate.P99MS)
		fmt.Printf("  crashes %d (WAL records replayed %d), stale rejected %d, partition rejects %d, cold probes %d, watch reports %d\n",
			f.Crashes, f.WALReplayed, f.StaleRejectedVPs, f.PartitionRejects, f.ColdProbes, f.WatchReports)
	}
	if jsonOut != "" {
		data, err := json.MarshalIndent(fams, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(jsonOut, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("family report written to %s\n", jsonOut)
	}
	return nil
}

func runAblation(scale string, seed int64) error {
	fmt.Println("-- TrustRank damping sweep (paper fixes delta=0.8) --")
	dRows, err := sim.AblationDamping(pick(scale, 150, 500), pick(scale, 3, 20), seed)
	if err != nil {
		return err
	}
	for _, r := range dRows {
		fmt.Println(r)
	}
	fmt.Println("-- guard-VP alpha sweep (paper fixes alpha=0.1) --")
	aRows, err := sim.AblationAlpha(pick(scale, 60, 200), pick(scale, 8, 15), seed)
	if err != nil {
		return err
	}
	for _, r := range aRows {
		fmt.Println(r)
	}
	return nil
}
