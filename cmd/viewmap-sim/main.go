// Command viewmap-sim runs a self-contained city simulation — the
// Section 8 setup — and reports the resulting VP dataset: viewmap
// structure per minute, guard-VP volume, contact intervals, and the
// privacy of the collected database against the tracking adversary.
//
// Usage:
//
//	viewmap-sim [-vehicles 300] [-minutes 5] [-speed 50|-mix]
//	            [-alpha 0.1] [-seed 42] [-dot viewmap.dot]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"viewmap/internal/core"
	"viewmap/internal/geo"
	"viewmap/internal/sim"
	"viewmap/internal/stats"
	"viewmap/internal/tracker"
)

func main() {
	vehicles := flag.Int("vehicles", 300, "fleet size")
	minutes := flag.Int("minutes", 5, "simulated minutes")
	speed := flag.Float64("speed", 50, "mean speed km/h")
	mix := flag.Bool("mix", false, "mix speeds 30/50/70 km/h")
	alpha := flag.Float64("alpha", 0.1, "guard VP fraction")
	seed := flag.Int64("seed", 42, "random seed")
	dotPath := flag.String("dot", "", "write a Graphviz rendering of minute 0's viewmap")
	flag.Parse()

	if err := run(*vehicles, *minutes, *speed, *mix, *alpha, *seed, *dotPath); err != nil {
		log.Fatal(err)
	}
}

func run(vehicles, minutes int, speed float64, mix bool, alpha float64, seed int64, dotPath string) error {
	fmt.Printf("simulating %d vehicles for %d minutes (8x8 km grid city)\n", vehicles, minutes)
	cityRun, err := sim.NewCityRun(sim.CityConfig{
		Vehicles: vehicles, Minutes: minutes,
		BlocksX: 40, BlocksY: 40, SpacingM: 200,
		MeanSpeedKmh: speed, MixSpeeds: mix, Alpha: alpha, Seed: seed,
	})
	if err != nil {
		return err
	}

	// Per-minute VP dataset and viewmap structure.
	var totalGuards int
	for m := 0; m < minutes; m++ {
		mp, err := cityRun.ProfilesForMinute(m, true)
		if err != nil {
			return err
		}
		totalGuards += mp.Guards
		center := cityRun.City.Bounds.Center()
		core.MarkTrustedNearest(mp.Profiles, center)
		vm, err := core.Build(mp.Profiles, core.BuildConfig{
			Site:           geo.RectAround(center, 200),
			Minute:         int64(m),
			CoverageMargin: cityRun.City.Bounds.Width(),
		})
		if err != nil {
			return err
		}
		members := vm.Len() - len(vm.Isolated())
		fmt.Printf("minute %d: %d VPs (%d guards), %d viewlinks, %.1f%% joined the viewmap\n",
			m, vm.Len(), mp.Guards, vm.NumEdges(), 100*float64(members)/float64(vm.Len()))
		if m == 0 && dotPath != "" {
			if err := os.WriteFile(dotPath, []byte(vm.DOT("viewmap")), 0o644); err != nil {
				return err
			}
			fmt.Printf("wrote %s (render with: neato -n -Tpng %s)\n", dotPath, dotPath)
		}
	}
	fmt.Printf("guard volume: %.2f guard VPs per vehicle-minute at alpha=%.2f\n",
		float64(totalGuards)/float64(vehicles*minutes), alpha)

	// Contact intervals (Fig. 22c).
	intervals := cityRun.ContactIntervals()
	fs := make([]float64, len(intervals))
	for i, v := range intervals {
		fs[i] = float64(v)
	}
	if len(fs) > 0 {
		med, _ := stats.Percentile(fs, 50)
		fmt.Printf("contact intervals: %d encounters, mean %.1f s, median %.0f s\n",
			len(fs), stats.Mean(fs), med)
	}

	// Privacy of the collected database (Figs. 22a/b).
	ds, err := cityRun.TrackingDataset(true)
	if err != nil {
		return err
	}
	ent, suc, err := ds.AverageOverTargets(tracker.Config{})
	if err != nil {
		return err
	}
	last := len(suc) - 1
	fmt.Printf("tracking adversary after %d minutes: success %.3f, entropy %.2f bits\n",
		last, suc[last], ent[last])
	return nil
}
