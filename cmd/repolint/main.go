// Command repolint enforces the repository's documentation hygiene in
// CI (the docs job in .github/workflows/ci.yml):
//
//   - every exported identifier in every internal/... package carries
//     a doc comment,
//   - every relative link in the repository's Markdown files resolves
//     to an existing file, and
//   - every symbol anchor on a link to a Go file — the
//     `[walScan](../internal/server/wal.go#walScan)` cross-references
//     the persistence spec uses to pin prose to its encoder/decoder —
//     names a declaration (`Ident` or `Type.Method`) that actually
//     exists in that file, so format docs cannot drift from the code
//     silently, and
//   - the metric catalog in docs/observability.md matches the Metric*
//     constants of internal/obs exactly, in both directions — every
//     registered series is documented and every documented name is
//     registered.
//
// Usage:
//
//	repolint [-root .]
//
// It prints one finding per line and exits non-zero when any exist.
// gofmt and go vet cover formatting and correctness; repolint covers
// only what they do not.
package main

import (
	"flag"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
)

// docPackages returns every internal/... package directory: all of
// them are programmed against by at least the simulators and the
// binaries, so all of them carry the full-doc-comment requirement.
func docPackages(root string) ([]string, error) {
	entries, err := os.ReadDir(filepath.Join(root, "internal"))
	if err != nil {
		return nil, fmt.Errorf("repolint: listing internal packages: %w", err)
	}
	var dirs []string
	for _, e := range entries {
		if e.IsDir() {
			dirs = append(dirs, filepath.Join("internal", e.Name()))
		}
	}
	return dirs, nil
}

func main() {
	root := flag.String("root", ".", "repository root")
	flag.Parse()

	pkgs, err := docPackages(*root)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	var findings []string
	for _, dir := range pkgs {
		f, err := lintDocs(filepath.Join(*root, dir))
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		findings = append(findings, f...)
	}
	mdFindings, err := lintMarkdownLinks(*root)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	findings = append(findings, mdFindings...)
	metricFindings, err := lintMetricsCatalog(*root)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	findings = append(findings, metricFindings...)

	for _, f := range findings {
		fmt.Println(f)
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "repolint: %d finding(s)\n", len(findings))
		os.Exit(1)
	}
}

// receiverExported reports whether a method receiver names an
// exported type (unwrapping pointers and generic instantiations).
func receiverExported(recv *ast.FieldList) bool {
	if recv == nil || len(recv.List) == 0 {
		return false
	}
	t := recv.List[0].Type
	for {
		switch tt := t.(type) {
		case *ast.StarExpr:
			t = tt.X
		case *ast.IndexExpr:
			t = tt.X
		case *ast.IndexListExpr:
			t = tt.X
		case *ast.Ident:
			return tt.IsExported()
		default:
			return true // unrecognized shape: keep the finding
		}
	}
}

// lintDocs reports exported package-level identifiers (functions,
// methods, types, consts, vars) that carry no doc comment. A grouped
// const/var/type declaration's comment covers its specs, matching the
// usual godoc convention.
func lintDocs(dir string) ([]string, error) {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi fs.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments)
	if err != nil {
		return nil, fmt.Errorf("repolint: parsing %s: %w", dir, err)
	}
	var findings []string
	report := func(pos token.Pos, kind, name string) {
		p := fset.Position(pos)
		findings = append(findings, fmt.Sprintf("%s:%d: exported %s %s has no doc comment", p.Filename, p.Line, kind, name))
	}
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				switch d := decl.(type) {
				case *ast.FuncDecl:
					if d.Name.IsExported() && d.Doc == nil {
						kind := "function"
						if d.Recv != nil {
							kind = "method"
							// Methods on unexported receiver types are
							// not part of the package's godoc surface
							// (e.g. heap.Interface plumbing on an
							// internal queue type); skip them.
							if !receiverExported(d.Recv) {
								continue
							}
						}
						report(d.Pos(), kind, d.Name.Name)
					}
				case *ast.GenDecl:
					for _, spec := range d.Specs {
						switch s := spec.(type) {
						case *ast.TypeSpec:
							if s.Name.IsExported() && d.Doc == nil && s.Doc == nil && s.Comment == nil {
								report(s.Pos(), "type", s.Name.Name)
							}
						case *ast.ValueSpec:
							for _, name := range s.Names {
								if name.IsExported() && d.Doc == nil && s.Doc == nil && s.Comment == nil {
									report(name.Pos(), kindOf(d.Tok), name.Name)
								}
							}
						}
					}
				}
			}
		}
	}
	return findings, nil
}

// kindOf names a GenDecl token for a finding.
func kindOf(tok token.Token) string {
	if tok == token.CONST {
		return "const"
	}
	return "var"
}

// mdLink matches inline Markdown links; images and autolinks are out
// of scope.
var mdLink = regexp.MustCompile(`\]\(([^)\s]+)\)`)

// lintMarkdownLinks reports relative links in *.md files that do not
// resolve to an existing file or directory, and symbol anchors on Go
// files that do not name a declaration there.
func lintMarkdownLinks(root string) ([]string, error) {
	var findings []string
	decls := map[string]map[string]bool{} // Go file -> declared names
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			if name := d.Name(); name == ".git" || name == "testdata" {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(d.Name(), ".md") {
			return nil
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		for i, line := range strings.Split(string(data), "\n") {
			for _, m := range mdLink.FindAllStringSubmatch(line, -1) {
				target := m[1]
				if strings.Contains(target, "://") || strings.HasPrefix(target, "mailto:") || strings.HasPrefix(target, "#") {
					continue
				}
				target, frag, _ := strings.Cut(target, "#")
				if target == "" {
					continue
				}
				resolved := filepath.Join(filepath.Dir(path), target)
				if _, err := os.Stat(resolved); err != nil {
					findings = append(findings, fmt.Sprintf("%s:%d: broken relative link %q", path, i+1, m[1]))
					continue
				}
				if frag == "" || !strings.HasSuffix(target, ".go") {
					continue
				}
				names, err := goDecls(decls, resolved)
				if err != nil {
					findings = append(findings, fmt.Sprintf("%s:%d: cannot parse %q for anchor check: %v", path, i+1, target, err))
					continue
				}
				if !names[frag] {
					findings = append(findings, fmt.Sprintf("%s:%d: link anchor %q names no declaration in %s", path, i+1, frag, target))
				}
			}
		}
		return nil
	})
	return findings, err
}

// goDecls returns (caching per file) the set of names a symbol anchor
// may reference in a Go file: package-level functions, types, consts
// and vars by name, methods as "Type.Method".
func goDecls(cache map[string]map[string]bool, path string) (map[string]bool, error) {
	if names, ok := cache[path]; ok {
		return names, nil
	}
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, path, nil, parser.SkipObjectResolution)
	if err != nil {
		return nil, err
	}
	names := map[string]bool{}
	for _, decl := range file.Decls {
		switch d := decl.(type) {
		case *ast.FuncDecl:
			if d.Recv != nil {
				if recv := receiverName(d.Recv); recv != "" {
					names[recv+"."+d.Name.Name] = true
				}
				continue
			}
			names[d.Name.Name] = true
		case *ast.GenDecl:
			for _, spec := range d.Specs {
				switch s := spec.(type) {
				case *ast.TypeSpec:
					names[s.Name.Name] = true
				case *ast.ValueSpec:
					for _, name := range s.Names {
						names[name.Name] = true
					}
				}
			}
		}
	}
	cache[path] = names
	return names, nil
}

// metricToken matches a metric family name in the observability doc;
// suffix stripping folds the _bucket/_sum/_count series of one
// histogram back to its family.
var (
	metricToken  = regexp.MustCompile(`\bviewmap_[a-z0-9_]+`)
	metricSuffix = regexp.MustCompile(`_(bucket|sum|count)$`)
)

// lintMetricsCatalog cross-checks the metric catalog in
// docs/observability.md against the Metric* string constants of
// internal/obs, in both directions: a registered metric the doc does
// not mention is an undocumented series, and a documented name the
// registry does not export is catalog drift. Both fail CI — the doc
// is the operator's contract for what /v1/metrics serves.
func lintMetricsCatalog(root string) ([]string, error) {
	registered := map[string]bool{}
	obsDir := filepath.Join(root, "internal", "obs")
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, obsDir, func(fi fs.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, 0)
	if err != nil {
		return nil, fmt.Errorf("repolint: parsing %s: %w", obsDir, err)
	}
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				d, ok := decl.(*ast.GenDecl)
				if !ok || d.Tok != token.CONST {
					continue
				}
				for _, spec := range d.Specs {
					s, ok := spec.(*ast.ValueSpec)
					if !ok {
						continue
					}
					for i, name := range s.Names {
						if !strings.HasPrefix(name.Name, "Metric") || i >= len(s.Values) {
							continue
						}
						if lit, ok := s.Values[i].(*ast.BasicLit); ok && lit.Kind == token.STRING {
							registered[strings.Trim(lit.Value, `"`)] = true
						}
					}
				}
			}
		}
	}
	if len(registered) == 0 {
		return []string{fmt.Sprintf("%s: no Metric* string constants found (catalog check has nothing to pin)", obsDir)}, nil
	}

	docPath := filepath.Join(root, "docs", "observability.md")
	data, err := os.ReadFile(docPath)
	if err != nil {
		return []string{fmt.Sprintf("%s: missing (the metric catalog must document internal/obs)", docPath)}, nil
	}
	documented := map[string]bool{}
	for _, tok := range metricToken.FindAllString(string(data), -1) {
		documented[metricSuffix.ReplaceAllString(tok, "")] = true
	}

	var findings []string
	for name := range registered {
		if !documented[name] {
			findings = append(findings, fmt.Sprintf("%s: registered metric %q is not documented", docPath, name))
		}
	}
	for name := range documented {
		if !registered[name] {
			findings = append(findings, fmt.Sprintf("%s: documented metric %q is not registered in internal/obs", docPath, name))
		}
	}
	sort.Strings(findings)
	return findings, nil
}

// receiverName unwraps a method receiver to its type name.
func receiverName(recv *ast.FieldList) string {
	if recv == nil || len(recv.List) == 0 {
		return ""
	}
	t := recv.List[0].Type
	for {
		switch tt := t.(type) {
		case *ast.StarExpr:
			t = tt.X
		case *ast.IndexExpr:
			t = tt.X
		case *ast.IndexListExpr:
			t = tt.X
		case *ast.Ident:
			return tt.Name
		default:
			return ""
		}
	}
}
