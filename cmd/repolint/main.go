// Command repolint enforces the repository's documentation hygiene in
// CI (the docs job in .github/workflows/ci.yml):
//
//   - every exported identifier in the service-facing packages
//     (internal/core, internal/server, internal/client, internal/vp)
//     carries a doc comment, and
//   - every relative link in the repository's Markdown files resolves
//     to an existing file.
//
// Usage:
//
//	repolint [-root .]
//
// It prints one finding per line and exits non-zero when any exist.
// gofmt and go vet cover formatting and correctness; repolint covers
// only what they do not.
package main

import (
	"flag"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"regexp"
	"strings"
)

// docPackages lists the directories whose exported identifiers must
// all be documented. These are the packages other code programs
// against — the construction core, the service, its client, and the
// view-profile format.
var docPackages = []string{
	"internal/core",
	"internal/server",
	"internal/client",
	"internal/vp",
}

func main() {
	root := flag.String("root", ".", "repository root")
	flag.Parse()

	var findings []string
	for _, dir := range docPackages {
		f, err := lintDocs(filepath.Join(*root, dir))
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		findings = append(findings, f...)
	}
	mdFindings, err := lintMarkdownLinks(*root)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	findings = append(findings, mdFindings...)

	for _, f := range findings {
		fmt.Println(f)
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "repolint: %d finding(s)\n", len(findings))
		os.Exit(1)
	}
}

// lintDocs reports exported package-level identifiers (functions,
// methods, types, consts, vars) that carry no doc comment. A grouped
// const/var/type declaration's comment covers its specs, matching the
// usual godoc convention.
func lintDocs(dir string) ([]string, error) {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi fs.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments)
	if err != nil {
		return nil, fmt.Errorf("repolint: parsing %s: %w", dir, err)
	}
	var findings []string
	report := func(pos token.Pos, kind, name string) {
		p := fset.Position(pos)
		findings = append(findings, fmt.Sprintf("%s:%d: exported %s %s has no doc comment", p.Filename, p.Line, kind, name))
	}
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				switch d := decl.(type) {
				case *ast.FuncDecl:
					if d.Name.IsExported() && d.Doc == nil {
						kind := "function"
						if d.Recv != nil {
							kind = "method"
						}
						report(d.Pos(), kind, d.Name.Name)
					}
				case *ast.GenDecl:
					for _, spec := range d.Specs {
						switch s := spec.(type) {
						case *ast.TypeSpec:
							if s.Name.IsExported() && d.Doc == nil && s.Doc == nil && s.Comment == nil {
								report(s.Pos(), "type", s.Name.Name)
							}
						case *ast.ValueSpec:
							for _, name := range s.Names {
								if name.IsExported() && d.Doc == nil && s.Doc == nil && s.Comment == nil {
									report(name.Pos(), kindOf(d.Tok), name.Name)
								}
							}
						}
					}
				}
			}
		}
	}
	return findings, nil
}

// kindOf names a GenDecl token for a finding.
func kindOf(tok token.Token) string {
	if tok == token.CONST {
		return "const"
	}
	return "var"
}

// mdLink matches inline Markdown links; images and autolinks are out
// of scope.
var mdLink = regexp.MustCompile(`\]\(([^)\s]+)\)`)

// lintMarkdownLinks reports relative links in *.md files that do not
// resolve to an existing file or directory.
func lintMarkdownLinks(root string) ([]string, error) {
	var findings []string
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			if name := d.Name(); name == ".git" || name == "testdata" {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(d.Name(), ".md") {
			return nil
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		for i, line := range strings.Split(string(data), "\n") {
			for _, m := range mdLink.FindAllStringSubmatch(line, -1) {
				target := m[1]
				if strings.Contains(target, "://") || strings.HasPrefix(target, "mailto:") || strings.HasPrefix(target, "#") {
					continue
				}
				target, _, _ = strings.Cut(target, "#")
				if target == "" {
					continue
				}
				resolved := filepath.Join(filepath.Dir(path), target)
				if _, err := os.Stat(resolved); err != nil {
					findings = append(findings, fmt.Sprintf("%s:%d: broken relative link %q", path, i+1, m[1]))
				}
			}
		}
		return nil
	})
	return findings, err
}
