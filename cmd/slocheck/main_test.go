package main

import (
	"strings"
	"testing"

	"viewmap/internal/sim"
)

func gateBaseline() *sim.ScenarioResult {
	return &sim.ScenarioResult{
		Upload:            sim.EndpointSLO{Requests: 44, P99MS: 348.4},
		Investigate:       sim.EndpointSLO{Requests: 18, P99MS: 6.8},
		EvidencePoll:      sim.EndpointSLO{Requests: 4, P99MS: 1.4},
		ServerUpload:      sim.EndpointSLO{Requests: 64, P99MS: 260},
		ServerInvestigate: sim.EndpointSLO{Requests: 18, P99MS: 4.2},
		ZeroAckedLoss:     true,
		Violations:        []string{},
	}
}

func TestCompareWithinBandPasses(t *testing.T) {
	base := gateBaseline()
	cand := gateBaseline()
	// Noise within the band: double one class, leave the rest.
	cand.Upload.P99MS = base.Upload.P99MS * 2
	if v := compareReports(base, cand, 3.0, 50); len(v) != 0 {
		t.Fatalf("in-band candidate flagged: %v", v)
	}
}

func TestCompareSeededRegressionFails(t *testing.T) {
	base := gateBaseline()
	cand := gateBaseline()
	// Seeded regression: just past the band on one class.
	cand.Investigate.P99MS = base.Investigate.P99MS*3.0 + 50 + 1
	v := compareReports(base, cand, 3.0, 50)
	if len(v) != 1 {
		t.Fatalf("seeded regression produced %d violations: %v", len(v), v)
	}
	if !strings.Contains(v[0], "investigate p99") {
		t.Fatalf("violation names the wrong class: %q", v[0])
	}
}

func TestCompareFloorAbsorbsMicrosecondJitter(t *testing.T) {
	base := gateBaseline()
	base.EvidencePoll.P99MS = 0.3
	cand := gateBaseline()
	// 40 ms on a 0.3 ms baseline is a 130x ratio but under the 50 ms
	// floor — scheduler jitter, not a regression.
	cand.EvidencePoll.P99MS = 40
	if v := compareReports(base, cand, 3.0, 50); len(v) != 0 {
		t.Fatalf("floor did not absorb jitter: %v", v)
	}
}

func TestCompareStructuralInvariants(t *testing.T) {
	base := gateBaseline()
	cand := gateBaseline()
	cand.ZeroAckedLoss = false
	cand.Violations = []string{"upload p99 900.0 ms exceeds 500ms"}
	v := compareReports(base, cand, 3.0, 50)
	if len(v) != 2 {
		t.Fatalf("structural failures produced %d violations: %v", len(v), v)
	}
	if !strings.Contains(v[0], "zero_acked_loss") || !strings.Contains(v[1], "scenario SLO violation") {
		t.Fatalf("violations: %v", v)
	}
}

func familyBaseline() sim.FamilySummary {
	return sim.FamilySummary{
		Name:           "crash",
		Upload:         sim.EndpointSLO{Requests: 30, P99MS: 5.1},
		Investigate:    sim.EndpointSLO{Requests: 22, P99MS: 3.8},
		ZeroAckedLoss:  true,
		ProbesCompared: 22,
		Crashes:        1,
		WALReplayed:    17,
	}
}

func TestCompareFamilyWithinBandPasses(t *testing.T) {
	base := gateBaseline()
	base.Families = []sim.FamilySummary{familyBaseline()}
	cand := gateBaseline()
	cf := familyBaseline()
	// Counters may move (a different replay tail) as long as they stay
	// engaged, and p99s ride the same band.
	cf.WALReplayed = 3
	cf.Upload.P99MS *= 2
	cand.Families = []sim.FamilySummary{cf}
	if v := compareReports(base, cand, 3.0, 50); len(v) != 0 {
		t.Fatalf("in-band family flagged: %v", v)
	}
}

func TestCompareFamilyRegressions(t *testing.T) {
	base := gateBaseline()
	base.Families = []sim.FamilySummary{familyBaseline()}

	// A family missing from the candidate is structural.
	cand := gateBaseline()
	v := compareReports(base, cand, 3.0, 50)
	if len(v) != 1 || !strings.Contains(v[0], "missing from candidate") {
		t.Fatalf("missing family: %v", v)
	}

	// An engagement counter the baseline proved nonzero dropping to
	// zero fails even with healthy latencies.
	cand = gateBaseline()
	cf := familyBaseline()
	cf.Crashes = 0
	cand.Families = []sim.FamilySummary{cf}
	v = compareReports(base, cand, 3.0, 50)
	if len(v) != 1 || !strings.Contains(v[0], "crashes ridden out") || !strings.Contains(v[0], "no longer engages") {
		t.Fatalf("disengaged family: %v", v)
	}

	// Family acked loss and a per-family p99 blowout both gate.
	cand = gateBaseline()
	cf = familyBaseline()
	cf.ZeroAckedLoss = false
	cf.Investigate.P99MS = cf.Investigate.P99MS*3 + 50 + 1
	cand.Families = []sim.FamilySummary{cf}
	v = compareReports(base, cand, 3.0, 50)
	if len(v) != 2 {
		t.Fatalf("family loss + p99 produced %d violations: %v", len(v), v)
	}
	if !strings.Contains(v[0], "lost acknowledged data") || !strings.Contains(v[1], "family:crash:investigate p99") {
		t.Fatalf("violations: %v", v)
	}

	// A candidate-only family (a new drill) is not a failure.
	cand = gateBaseline()
	cand.Families = []sim.FamilySummary{familyBaseline(), {Name: "new_drill", ZeroAckedLoss: true}}
	if v := compareReports(base, cand, 3.0, 50); len(v) != 0 {
		t.Fatalf("candidate-only family flagged: %v", v)
	}
}

func TestCompareServerSideGatesOnlyWithBaseline(t *testing.T) {
	// An old baseline without server-side histograms (Requests==0)
	// must not gate those classes; a new one must.
	old := gateBaseline()
	old.ServerUpload = sim.EndpointSLO{}
	old.ServerInvestigate = sim.EndpointSLO{}
	cand := gateBaseline()
	cand.ServerUpload.P99MS = 1e6
	if v := compareReports(old, cand, 3.0, 50); len(v) != 0 {
		t.Fatalf("server-side class gated against an empty baseline: %v", v)
	}
	if v := compareReports(gateBaseline(), cand, 3.0, 50); len(v) != 1 {
		t.Fatalf("server-side regression not gated: %v", v)
	}
}
