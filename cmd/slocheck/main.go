// Command slocheck is the per-commit SLO regression gate: it compares
// a candidate scenario SLO report (a fresh `viewmap-bench -run
// scenario -json` artifact) against the committed baseline
// (BENCH_scenario.json) and exits non-zero if any endpoint's p99
// regressed beyond the tolerance band.
//
// Usage:
//
//	slocheck -baseline BENCH_scenario.json -candidate BENCH_scenario.candidate.json
//	         [-max-ratio 3.0] [-floor-ms 50]
//
// The band is deliberately loose — scenario latencies ride CI machine
// noise — but hard: a candidate p99 above baseline*max-ratio+floor-ms
// fails the build, as does a candidate that lost acknowledged data or
// violated a scenario-internal SLO. The floor keeps microsecond-scale
// baselines (investigate, evidence poll) from failing on scheduler
// jitter alone; the ratio catches order-of-magnitude regressions on
// every class. Baselines that carry fault-family summaries (the
// "families" array) extend the gate: each family's upload/investigate
// p99 rides the same band, and a family that disappears, loses acked
// data, or whose engagement counters (crashes, stale rejects,
// partition rejects, cold probes, watch reports) drop to zero fails
// the build outright. See docs/observability.md for the workflow.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"viewmap/internal/sim"
)

func main() {
	baseline := flag.String("baseline", "BENCH_scenario.json", "committed scenario SLO baseline")
	candidate := flag.String("candidate", "", "fresh scenario SLO report to gate")
	maxRatio := flag.Float64("max-ratio", 3.0, "candidate p99 may be at most baseline p99 times this ratio (plus the floor)")
	floorMS := flag.Float64("floor-ms", 50, "absolute slack in milliseconds added on top of the ratio band")
	flag.Parse()
	if *candidate == "" {
		fmt.Fprintln(os.Stderr, "slocheck: -candidate is required")
		os.Exit(2)
	}

	base, err := loadReport(*baseline)
	if err != nil {
		fmt.Fprintf(os.Stderr, "slocheck: %v\n", err)
		os.Exit(2)
	}
	cand, err := loadReport(*candidate)
	if err != nil {
		fmt.Fprintf(os.Stderr, "slocheck: %v\n", err)
		os.Exit(2)
	}

	violations := compareReports(base, cand, *maxRatio, *floorMS)
	for _, c := range classComparisons(base, cand) {
		fmt.Printf("%-18s baseline p99 %8.1f ms, candidate p99 %8.1f ms (limit %8.1f ms)\n",
			c.name, c.base, c.cand, c.base**maxRatio+*floorMS)
	}
	if len(violations) > 0 {
		for _, v := range violations {
			fmt.Fprintf(os.Stderr, "slocheck: FAIL: %s\n", v)
		}
		os.Exit(1)
	}
	fmt.Println("slocheck: candidate within the SLO band")
}

func loadReport(path string) (*sim.ScenarioResult, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r sim.ScenarioResult
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &r, nil
}

// classComparison pairs one endpoint class's baseline and candidate
// p99 for gating and display.
type classComparison struct {
	name       string
	base, cand float64
	// optional marks classes absent from older baselines (the
	// server-side histograms); they gate only when the baseline has
	// them.
	optional bool
	baseSeen bool
}

func classComparisons(base, cand *sim.ScenarioResult) []classComparison {
	out := []classComparison{
		{"upload", base.Upload.P99MS, cand.Upload.P99MS, false, true},
		{"investigate", base.Investigate.P99MS, cand.Investigate.P99MS, false, true},
		{"evidence_poll", base.EvidencePoll.P99MS, cand.EvidencePoll.P99MS, false, true},
		{"server_upload", base.ServerUpload.P99MS, cand.ServerUpload.P99MS, true, base.ServerUpload.Requests > 0},
		{"server_investigate", base.ServerInvestigate.P99MS, cand.ServerInvestigate.P99MS, true, base.ServerInvestigate.Requests > 0},
	}
	// Per-family latency classes: gated only when the baseline carries
	// the family (older baselines predate them), and only when the
	// candidate ran it too (a missing candidate family is a structural
	// failure reported by compareReports, not a latency pass).
	for _, bf := range base.Families {
		cf, ok := candFamily(cand, bf.Name)
		if !ok {
			continue
		}
		out = append(out,
			classComparison{"family:" + bf.Name + ":upload", bf.Upload.P99MS, cf.Upload.P99MS, true, true},
			classComparison{"family:" + bf.Name + ":investigate", bf.Investigate.P99MS, cf.Investigate.P99MS, true, true},
		)
	}
	return out
}

func candFamily(r *sim.ScenarioResult, name string) (sim.FamilySummary, bool) {
	for _, f := range r.Families {
		if f.Name == name {
			return f, true
		}
	}
	return sim.FamilySummary{}, false
}

// compareReports returns every way the candidate fails the gate:
// structural invariants first (acked loss, scenario-internal SLO
// violations), then per-class p99 regressions beyond
// baseline*maxRatio+floorMS.
func compareReports(base, cand *sim.ScenarioResult, maxRatio, floorMS float64) []string {
	var out []string
	if !cand.ZeroAckedLoss {
		out = append(out, "candidate lost acknowledged data (zero_acked_loss=false)")
	}
	for _, v := range cand.Violations {
		out = append(out, "candidate scenario SLO violation: "+v)
	}
	// Fault families present in the baseline must stay present, keep
	// zero acked loss, and keep engaging their fault: a counter the
	// baseline proved nonzero (crashes ridden out, stale uploads
	// bounced, partition rejects, cold probes, watch reports) dropping
	// to zero means the family silently stopped testing anything.
	for _, bf := range base.Families {
		cf, ok := candFamily(cand, bf.Name)
		if !ok {
			out = append(out, fmt.Sprintf("fault family %s present in baseline but missing from candidate", bf.Name))
			continue
		}
		if !cf.ZeroAckedLoss {
			out = append(out, fmt.Sprintf("fault family %s lost acknowledged data", bf.Name))
		}
		engaged := []struct {
			what       string
			base, cand int
		}{
			{"probes compared", bf.ProbesCompared, cf.ProbesCompared},
			{"crashes ridden out", bf.Crashes, cf.Crashes},
			{"WAL records replayed", bf.WALReplayed, cf.WALReplayed},
			{"stale uploads rejected", bf.StaleRejectedVPs, cf.StaleRejectedVPs},
			{"partition rejects", bf.PartitionRejects, cf.PartitionRejects},
			{"cold probes", bf.ColdProbes, cf.ColdProbes},
			{"watch reports", bf.WatchReports, cf.WatchReports},
		}
		for _, e := range engaged {
			if e.base > 0 && e.cand == 0 {
				out = append(out, fmt.Sprintf("fault family %s: %s fell from %d to 0 — the fault no longer engages", bf.Name, e.what, e.base))
			}
		}
	}
	for _, c := range classComparisons(base, cand) {
		if c.optional && !c.baseSeen {
			continue
		}
		if limit := c.base*maxRatio + floorMS; c.cand > limit {
			out = append(out, fmt.Sprintf("%s p99 %.1f ms exceeds %.1f ms (baseline %.1f ms x %.1f + %.0f ms floor)",
				c.name, c.cand, limit, c.base, maxRatio, floorMS))
		}
	}
	return out
}
