// Command slocheck is the per-commit SLO regression gate: it compares
// a candidate scenario SLO report (a fresh `viewmap-bench -run
// scenario -json` artifact) against the committed baseline
// (BENCH_scenario.json) and exits non-zero if any endpoint's p99
// regressed beyond the tolerance band.
//
// Usage:
//
//	slocheck -baseline BENCH_scenario.json -candidate BENCH_scenario.candidate.json
//	         [-max-ratio 3.0] [-floor-ms 50]
//
// The band is deliberately loose — scenario latencies ride CI machine
// noise — but hard: a candidate p99 above baseline*max-ratio+floor-ms
// fails the build, as does a candidate that lost acknowledged data or
// violated a scenario-internal SLO. The floor keeps microsecond-scale
// baselines (investigate, evidence poll) from failing on scheduler
// jitter alone; the ratio catches order-of-magnitude regressions on
// every class. See docs/observability.md for the workflow.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"viewmap/internal/sim"
)

func main() {
	baseline := flag.String("baseline", "BENCH_scenario.json", "committed scenario SLO baseline")
	candidate := flag.String("candidate", "", "fresh scenario SLO report to gate")
	maxRatio := flag.Float64("max-ratio", 3.0, "candidate p99 may be at most baseline p99 times this ratio (plus the floor)")
	floorMS := flag.Float64("floor-ms", 50, "absolute slack in milliseconds added on top of the ratio band")
	flag.Parse()
	if *candidate == "" {
		fmt.Fprintln(os.Stderr, "slocheck: -candidate is required")
		os.Exit(2)
	}

	base, err := loadReport(*baseline)
	if err != nil {
		fmt.Fprintf(os.Stderr, "slocheck: %v\n", err)
		os.Exit(2)
	}
	cand, err := loadReport(*candidate)
	if err != nil {
		fmt.Fprintf(os.Stderr, "slocheck: %v\n", err)
		os.Exit(2)
	}

	violations := compareReports(base, cand, *maxRatio, *floorMS)
	for _, c := range classComparisons(base, cand) {
		fmt.Printf("%-18s baseline p99 %8.1f ms, candidate p99 %8.1f ms (limit %8.1f ms)\n",
			c.name, c.base, c.cand, c.base**maxRatio+*floorMS)
	}
	if len(violations) > 0 {
		for _, v := range violations {
			fmt.Fprintf(os.Stderr, "slocheck: FAIL: %s\n", v)
		}
		os.Exit(1)
	}
	fmt.Println("slocheck: candidate within the SLO band")
}

func loadReport(path string) (*sim.ScenarioResult, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r sim.ScenarioResult
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &r, nil
}

// classComparison pairs one endpoint class's baseline and candidate
// p99 for gating and display.
type classComparison struct {
	name       string
	base, cand float64
	// optional marks classes absent from older baselines (the
	// server-side histograms); they gate only when the baseline has
	// them.
	optional bool
	baseSeen bool
}

func classComparisons(base, cand *sim.ScenarioResult) []classComparison {
	return []classComparison{
		{"upload", base.Upload.P99MS, cand.Upload.P99MS, false, true},
		{"investigate", base.Investigate.P99MS, cand.Investigate.P99MS, false, true},
		{"evidence_poll", base.EvidencePoll.P99MS, cand.EvidencePoll.P99MS, false, true},
		{"server_upload", base.ServerUpload.P99MS, cand.ServerUpload.P99MS, true, base.ServerUpload.Requests > 0},
		{"server_investigate", base.ServerInvestigate.P99MS, cand.ServerInvestigate.P99MS, true, base.ServerInvestigate.Requests > 0},
	}
}

// compareReports returns every way the candidate fails the gate:
// structural invariants first (acked loss, scenario-internal SLO
// violations), then per-class p99 regressions beyond
// baseline*maxRatio+floorMS.
func compareReports(base, cand *sim.ScenarioResult, maxRatio, floorMS float64) []string {
	var out []string
	if !cand.ZeroAckedLoss {
		out = append(out, "candidate lost acknowledged data (zero_acked_loss=false)")
	}
	for _, v := range cand.Violations {
		out = append(out, "candidate scenario SLO violation: "+v)
	}
	for _, c := range classComparisons(base, cand) {
		if c.optional && !c.baseSeen {
			continue
		}
		if limit := c.base*maxRatio + floorMS; c.cand > limit {
			out = append(out, fmt.Sprintf("%s p99 %.1f ms exceeds %.1f ms (baseline %.1f ms x %.1f + %.0f ms floor)",
				c.name, c.cand, limit, c.base, maxRatio, floorMS))
		}
	}
	return out
}
