// Command viewmap-client drives one simulated ViewMap-enabled dashcam
// against a running viewmap-server: it records synthetic minutes while
// driving a synthetic city, uploads actual and guard VPs anonymously,
// answers video solicitations, and collects rewards.
//
// Usage:
//
//	viewmap-client -server http://127.0.0.1:8440 [-name car-A]
//	               [-minutes 3] [-trusted-token TOKEN] [-seed 1]
//
// With -trusted-token the client behaves as an authority vehicle
// (police car): its VPs upload as trusted and it fabricates no guards.
package main

import (
	"crypto/rsa"
	"flag"
	"fmt"
	"log"
	"os"

	"viewmap/internal/client"
	"viewmap/internal/mobility"
	"viewmap/internal/roadnet"
	"viewmap/internal/vd"
)

func main() {
	serverURL := flag.String("server", "http://127.0.0.1:8440", "system service base URL")
	name := flag.String("name", "car-A", "vehicle name (seeds its camera stream)")
	minutes := flag.Int("minutes", 3, "minutes to record")
	trustedToken := flag.String("trusted-token", "", "authority token; when set, uploads are trusted VPs")
	seed := flag.Int64("seed", 1, "trajectory seed")
	flag.Parse()

	if err := run(*serverURL, *name, *minutes, *trustedToken, *seed); err != nil {
		log.Fatal(err)
	}
}

func run(serverURL, name string, minutes int, trustedToken string, seed int64) error {
	if minutes <= 0 {
		return fmt.Errorf("minutes must be positive, got %d", minutes)
	}
	api, err := client.NewAPI(serverURL, nil)
	if err != nil {
		return err
	}
	city, err := roadnet.BuildGrid(roadnet.GridConfig{Cols: 12, Rows: 12, Spacing: 200, BuildingFill: 0.7})
	if err != nil {
		return err
	}
	trace, err := mobility.Generate(city, mobility.Config{
		Vehicles: 1, Seconds: minutes * 60, MeanSpeedKmh: 50, Seed: seed,
	})
	if err != nil {
		return err
	}
	vehicle, err := client.NewVehicle(client.VehicleConfig{Name: name, Seed: seed})
	if err != nil {
		return err
	}

	guardNet := city.Net
	if trustedToken != "" {
		guardNet = nil // authority vehicles do not fabricate guards
	}
	for m := 0; m < minutes; m++ {
		start := int64(m) * 60
		if err := vehicle.BeginMinute(start); err != nil {
			return err
		}
		for s := 1; s <= 60; s++ {
			loc := trace.At(0, m*60+s-1)
			if _, err := vehicle.Tick(loc); err != nil {
				return err
			}
		}
		actual, guards, err := vehicle.EndMinute(guardNet)
		if err != nil {
			return err
		}
		id := actual.ID()
		fmt.Printf("minute %d: VP %x… + %d guards\n", m, id[:4], len(guards))
		for _, p := range vehicle.PendingUploads() {
			if trustedToken != "" {
				err = api.UploadTrustedVP(trustedToken, p)
			} else {
				err = api.UploadVP(p)
			}
			if err != nil {
				return fmt.Errorf("uploading VP: %w", err)
			}
		}
	}
	fmt.Printf("uploaded %d minutes of VPs; storage holds %d segments\n",
		minutes, vehicle.StoredSegments())

	// Answer any posted solicitations.
	ids, err := api.Solicitations()
	if err != nil {
		return err
	}
	matched := vehicle.MatchSolicitations(ids)
	for id, chunks := range matched {
		if err := api.SubmitVideo(id, chunks); err != nil {
			fmt.Fprintf(os.Stderr, "video for %x rejected: %v\n", id[:4], err)
			continue
		}
		fmt.Printf("uploaded solicited video for VP %x…\n", id[:4])
	}

	// Collect any posted rewards.
	offers, err := api.Rewards()
	if err != nil {
		return err
	}
	for _, id := range offers {
		q, ok := vehicle.Secret(id)
		if !ok {
			continue
		}
		if err := collect(api, id, q); err != nil {
			fmt.Fprintf(os.Stderr, "collecting reward for %x: %v\n", id[:4], err)
		}
	}

	// Answer the evidence board: deliver solicited videos, collect the
	// payout, and spend one unit to prove the cash works.
	board, err := api.EvidenceBoard()
	if err != nil {
		return err
	}
	boardIDs := make([]vd.VPID, len(board))
	for i, o := range board {
		boardIDs[i] = o.ID
	}
	matchedEvidence := vehicle.MatchSolicitations(boardIDs)
	var pub *rsa.PublicKey
	if len(matchedEvidence) > 0 {
		// The bank key is immutable; fetch it once for all payouts.
		if pub, err = api.BankKey(); err != nil {
			return err
		}
	}
	for id, chunks := range matchedEvidence {
		q, ok := vehicle.Secret(id)
		if !ok {
			continue
		}
		units, err := api.DeliverEvidence(id, q, chunks)
		if err != nil {
			fmt.Fprintf(os.Stderr, "evidence delivery for %x rejected: %v\n", id[:4], err)
			continue
		}
		fmt.Printf("delivered evidence for VP %x… (%d units entitled)\n", id[:4], units)
		cash, err := api.WithdrawPayout(id, q, units, pub)
		if err != nil {
			fmt.Fprintf(os.Stderr, "payout for %x: %v\n", id[:4], err)
			continue
		}
		if err := api.RedeemPayout(cash[0]); err != nil {
			fmt.Fprintf(os.Stderr, "redeeming a unit: %v\n", err)
			continue
		}
		fmt.Printf("collected %d payout units for VP %x… and redeemed one\n", len(cash), id[:4])
	}
	return nil
}

func collect(api *client.API, id vd.VPID, q vd.Secret) error {
	units, err := api.ClaimReward(id, q)
	if err != nil {
		return err
	}
	pub, err := api.BankKey()
	if err != nil {
		return err
	}
	cash, err := api.WithdrawCash(id, q, units, pub)
	if err != nil {
		return err
	}
	fmt.Printf("collected %d units of untraceable cash for VP %x…\n", len(cash), id[:4])
	return nil
}
