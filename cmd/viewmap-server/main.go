// Command viewmap-server runs the ViewMap system service: the VP
// database, investigation/verification engine, video solicitation and
// validation, and the blind-signature reward bank, exposed over the
// HTTP API of internal/server.
//
// Usage:
//
//	viewmap-server [-addr :8440] [-authority-token TOKEN] [-bank-bits 2048]
//	               [-db PATH] [-state PATH] [-dsrc-range 400] [-no-viewmap-cache]
//
// If no authority token is supplied a random one is generated and
// printed at startup; authorities pass it in the X-Viewmap-Authority
// header for trusted uploads, investigations and reviews.
//
// -state persists the full system — VP database, reward bank (signing
// keypair and double-spend ledger), and evidence board — so a restart
// resumes open solicitations, keeps minted cash verifiable, and still
// refuses double spends. -db persists the VP database alone (the
// legacy format, which -state also accepts when loading).
//
// The store shards by unit-time window and links every uploaded VP
// into its minute's viewmap at ingest, so investigations are answered
// from cached, already-linked viewmaps. -no-viewmap-cache disables
// that path and rebuilds the viewmap on every investigation — the
// baseline the serving benchmark (viewmap-bench -run serving)
// compares against; leave it off in production.
package main

import (
	"errors"
	"flag"
	"io/fs"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"viewmap/internal/server"
)

func main() {
	addr := flag.String("addr", ":8440", "listen address")
	token := flag.String("authority-token", "", "authority token (random if empty)")
	bankBits := flag.Int("bank-bits", 2048, "RSA key size for the reward bank")
	dbPath := flag.String("db", "", "VP database file: loaded at startup, saved on SIGINT/SIGTERM")
	statePath := flag.String("state", "", "full system state file (store + bank + evidence board): loaded at startup, saved on SIGINT/SIGTERM")
	dsrcRange := flag.Float64("dsrc-range", 0, "viewlink proximity radius in metres (0 = the 400 m default)")
	noCache := flag.Bool("no-viewmap-cache", false, "rebuild viewmaps per investigation instead of serving cached incremental ones (benchmark baseline)")
	flag.Parse()

	sys, err := server.NewSystem(server.Config{
		AuthorityToken: *token,
		BankBits:       *bankBits,
		Store: server.StoreConfig{
			DSRCRange:           *dsrcRange,
			DisableViewmapCache: *noCache,
		},
	})
	if err != nil {
		log.Fatalf("starting system: %v", err)
	}
	if *dbPath != "" && *statePath != "" {
		log.Fatal("use either -db or -state, not both")
	}
	if *statePath != "" {
		if shouldLoad(*statePath) {
			n, err := sys.LoadStateFile(*statePath)
			if err != nil {
				log.Fatalf("loading system state: %v", err)
			}
			log.Printf("loaded system state (%d VPs) from %s", n, *statePath)
		}
		saveOnSignal(func() error { return sys.SaveStateFile(*statePath) },
			func() { log.Printf("saved system state to %s", *statePath) })
	}
	if *dbPath != "" {
		if shouldLoad(*dbPath) {
			n, err := sys.Store().LoadFile(*dbPath)
			if err != nil {
				log.Fatalf("loading VP database: %v", err)
			}
			log.Printf("loaded %d VPs from %s", n, *dbPath)
		}
		saveOnSignal(func() error { return sys.Store().SaveFile(*dbPath) },
			func() { log.Printf("saved %d VPs to %s", sys.Store().Len(), *dbPath) })
	}
	log.Printf("ViewMap system service listening on %s", *addr)
	log.Printf("authority token: %s", sys.AuthorityToken())

	srv := &http.Server{
		Addr:              *addr,
		Handler:           logRequests(server.Handler(sys)),
		ReadHeaderTimeout: 10 * time.Second,
	}
	log.Fatal(srv.ListenAndServe())
}

// shouldLoad reports whether a persistence file exists and must be
// loaded. Only a clean not-exist is a fresh start; any other stat
// error (permissions, I/O) is fatal — silently skipping the load
// would start a fresh bank keypair and then overwrite the real state
// on shutdown.
func shouldLoad(path string) bool {
	_, err := os.Stat(path)
	if err == nil {
		return true
	}
	if errors.Is(err, fs.ErrNotExist) {
		return false
	}
	log.Fatalf("checking %s: %v", path, err)
	return false
}

// saveOnSignal installs a SIGINT/SIGTERM handler that runs the save
// and exits.
func saveOnSignal(save func() error, logOK func()) {
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sig
		if err := save(); err != nil {
			log.Printf("saving: %v", err)
		} else {
			logOK()
		}
		os.Exit(0)
	}()
}

// logRequests is a minimal access log. Session ids rotate per request
// by protocol, so the log carries no stable user identifiers.
func logRequests(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		next.ServeHTTP(w, r)
		log.Printf("%s %s (%v)", r.Method, r.URL.Path, time.Since(start).Round(time.Millisecond))
	})
}
