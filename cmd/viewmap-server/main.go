// Command viewmap-server runs the ViewMap system service: the VP
// database, investigation/verification engine, video solicitation and
// validation, and the blind-signature reward bank, exposed over the
// HTTP API of internal/server.
//
// Usage:
//
//	viewmap-server [-addr :8440] [-authority-token TOKEN] [-bank-bits 2048]
//	               [-db PATH] [-state PATH] [-dsrc-range 400] [-no-viewmap-cache]
//	               [-wal PATH] [-wal-sync 0s] [-snapshot-interval 60s]
//	               [-retention N] [-resident-minutes N] [-max-upload-lag N]
//	               [-no-metrics] [-slow-request 1s] [-pprof localhost:6060]
//
// If no authority token is supplied a random one is generated and
// printed at startup; authorities pass it in the X-Viewmap-Authority
// header for trusted uploads, investigations and reviews.
//
// -wal selects durable continuous operation: every admitted mutation
// is appended (and fsynced) to the write-ahead log at PATH before it
// is acknowledged, a background snapshotter checkpoints the full
// system state to PATH.snap every -snapshot-interval and truncates the
// log, and -retention N spills minute shards older than the newest N
// minutes to per-minute segment files under PATH.segments/, keeping at
// most -resident-minutes reloaded cold minutes in memory. On startup
// the server recovers from whatever those files hold; a crash loses
// nothing that was acknowledged. -wal-sync widens the group-commit
// window (more ingest throughput, higher ack latency — never less
// durability). See docs/operations.md for the full operator guide.
//
// -max-upload-lag N arms wall-clock admission: an anonymous upload
// whose claimed minute trails the server clock by more than N minutes
// is refused (422 on the single path, counted rejected on the batch
// path) before it costs a WAL append. Trusted uploads are exempt —
// the authority backfills history.
//
// -state persists the full system — VP database, reward bank (signing
// keypair and double-spend ledger), and evidence board — on SIGINT/
// SIGTERM only (no crash safety); -db persists the VP database alone
// (the legacy format, which -state also accepts when loading). The
// three persistence modes are mutually exclusive; use -wal for
// anything long-running.
//
// Observability: GET /v1/metrics serves every latency histogram in
// Prometheus text format and the latency/pipeline blocks of
// GET /v1/stats serve the same data as quantiles (-no-metrics turns
// both off); requests slower than -slow-request log one line with the
// per-stage span breakdown; -pprof ADDR serves net/http/pprof on a
// separate listener. docs/observability.md is the full guide.
//
// The store shards by unit-time window and links every uploaded VP
// into its minute's viewmap at ingest, so investigations are answered
// from cached, already-linked viewmaps. -no-viewmap-cache disables
// that path and rebuilds the viewmap on every investigation — the
// baseline the serving benchmark (viewmap-bench -run serving)
// compares against; leave it off in production.
package main

import (
	"errors"
	"flag"
	"io/fs"
	"log"
	"net/http"
	_ "net/http/pprof" // registers the /debug/pprof handlers on DefaultServeMux for -pprof
	"os"
	"os/signal"
	"syscall"
	"time"

	"viewmap/internal/server"
)

func main() {
	addr := flag.String("addr", ":8440", "listen address")
	token := flag.String("authority-token", "", "authority token (random if empty)")
	bankBits := flag.Int("bank-bits", 2048, "RSA key size for the reward bank")
	dbPath := flag.String("db", "", "VP database file: loaded at startup, saved on SIGINT/SIGTERM")
	statePath := flag.String("state", "", "full system state file (store + bank + evidence board): loaded at startup, saved on SIGINT/SIGTERM")
	dsrcRange := flag.Float64("dsrc-range", 0, "viewlink proximity radius in metres (0 = the 400 m default)")
	noCache := flag.Bool("no-viewmap-cache", false, "rebuild viewmaps per investigation instead of serving cached incremental ones (benchmark baseline)")
	walPath := flag.String("wal", "", "ingest write-ahead log: enables durable continuous operation (snapshot at PATH.snap, segments under PATH.segments/)")
	walSync := flag.Duration("wal-sync", 0, "WAL group-commit window (0 = fsync as soon as a record is buffered)")
	snapshotInterval := flag.Duration("snapshot-interval", time.Minute, "background snapshot + WAL truncation period (requires -wal; 0 = final snapshot only)")
	retention := flag.Int("retention", 0, "resident minute horizon: spill shards older than the newest N minutes to disk (requires -wal; 0 = keep all resident)")
	residentMinutes := flag.Int("resident-minutes", 0, "LRU bound on reloaded cold minutes (0 = default of 2)")
	ingestSlots := flag.Int("ingest-slots", 0, "concurrent upload admissions (0 = default of 64)")
	ingestQueue := flag.Int("ingest-queue", 0, "bounded upload wait queue beyond the slots (0 = default of 256)")
	investigateSlots := flag.Int("investigate-slots", 0, "concurrent authority-request admissions, isolated from uploads (0 = default of 16)")
	investigateQueue := flag.Int("investigate-queue", 0, "bounded authority wait queue (0 = default of 64)")
	evidenceSlots := flag.Int("evidence-slots", 0, "concurrent evidence/reward admissions (0 = default of 32)")
	evidenceQueue := flag.Int("evidence-queue", 0, "bounded evidence wait queue (0 = default of 128)")
	retryAfter := flag.Duration("retry-after", 0, "backoff hint sent with 429 sheds, rounded up to whole seconds (0 = default of 1s)")
	maxUploadLag := flag.Int("max-upload-lag", 0, "stale-minute admission window: refuse anonymous uploads whose minute trails the wall clock by more than N minutes (0 = accept any minute)")
	noMetrics := flag.Bool("no-metrics", false, "disable the observability registry (GET /v1/metrics renders empty; the latency/pipeline stats blocks vanish)")
	slowRequest := flag.Duration("slow-request", time.Second, "log one structured line, with the per-stage span breakdown, for requests slower than this (0 = off)")
	pprofAddr := flag.String("pprof", "", "serve net/http/pprof on this separate address (e.g. localhost:6060; empty = off)")
	flag.Parse()

	cfg := server.Config{
		AuthorityToken:      *token,
		BankBits:            *bankBits,
		DisableMetrics:      *noMetrics,
		SlowRequest:         *slowRequest,
		MaxUploadLagMinutes: *maxUploadLag,
		Store: server.StoreConfig{
			DSRCRange:           *dsrcRange,
			DisableViewmapCache: *noCache,
		},
		Overload: server.OverloadConfig{
			IngestSlots:      *ingestSlots,
			IngestQueue:      *ingestQueue,
			InvestigateSlots: *investigateSlots,
			InvestigateQueue: *investigateQueue,
			EvidenceSlots:    *evidenceSlots,
			EvidenceQueue:    *evidenceQueue,
			RetryAfter:       *retryAfter,
		},
	}
	modes := 0
	for _, set := range []bool{*dbPath != "", *statePath != "", *walPath != ""} {
		if set {
			modes++
		}
	}
	if modes > 1 {
		log.Fatal("use exactly one of -db, -state, or -wal")
	}
	if *walPath == "" && *retention > 0 {
		log.Fatal("-retention requires -wal (evicted minutes live next to the log)")
	}

	var sys *server.System
	var err error
	if *walPath != "" {
		sys, err = server.OpenDurable(cfg, server.DurabilityConfig{
			WALPath:             *walPath,
			SyncInterval:        *walSync,
			SnapshotInterval:    *snapshotInterval,
			RetentionMinutes:    *retention,
			ResidentColdMinutes: *residentMinutes,
		})
		if err != nil {
			log.Fatalf("starting durable system: %v", err)
		}
		d := sys.DurabilityStatsSnapshot()
		log.Printf("durable: recovered %d VPs (snapshot LSN %d, %d WAL records replayed) from %s",
			sys.Store().Len(), d.SnapshotLSN, d.Replayed, *walPath)
		saveOnSignal(sys.Close, func() { log.Printf("final snapshot written; WAL closed") })
	} else if sys, err = server.NewSystem(cfg); err != nil {
		log.Fatalf("starting system: %v", err)
	}
	if *statePath != "" {
		if shouldLoad(*statePath) {
			n, err := sys.LoadStateFile(*statePath)
			if err != nil {
				log.Fatalf("loading system state: %v", err)
			}
			log.Printf("loaded system state (%d VPs) from %s", n, *statePath)
		}
		saveOnSignal(func() error { return sys.SaveStateFile(*statePath) },
			func() { log.Printf("saved system state to %s", *statePath) })
	}
	if *dbPath != "" {
		if shouldLoad(*dbPath) {
			n, err := sys.Store().LoadFile(*dbPath)
			if err != nil {
				log.Fatalf("loading VP database: %v", err)
			}
			log.Printf("loaded %d VPs from %s", n, *dbPath)
		}
		saveOnSignal(func() error { return sys.Store().SaveFile(*dbPath) },
			func() { log.Printf("saved %d VPs to %s", sys.Store().Len(), *dbPath) })
	}
	log.Printf("ViewMap system service listening on %s", *addr)
	log.Printf("authority token: %s", sys.AuthorityToken())
	if *pprofAddr != "" {
		// pprof gets its own listener so profiling endpoints never share
		// the public address (and never pass through admission control).
		go func() {
			log.Printf("pprof listening on %s", *pprofAddr)
			log.Printf("pprof server exited: %v", http.ListenAndServe(*pprofAddr, nil))
		}()
	}

	srv := &http.Server{
		Addr:              *addr,
		Handler:           logRequests(server.Handler(sys)),
		ReadHeaderTimeout: 10 * time.Second,
	}
	log.Fatal(srv.ListenAndServe())
}

// shouldLoad reports whether a persistence file exists and must be
// loaded. Only a clean not-exist is a fresh start; any other stat
// error (permissions, I/O) is fatal — silently skipping the load
// would start a fresh bank keypair and then overwrite the real state
// on shutdown.
func shouldLoad(path string) bool {
	_, err := os.Stat(path)
	if err == nil {
		return true
	}
	if errors.Is(err, fs.ErrNotExist) {
		return false
	}
	log.Fatalf("checking %s: %v", path, err)
	return false
}

// saveOnSignal installs a SIGINT/SIGTERM handler that runs the save
// and exits.
func saveOnSignal(save func() error, logOK func()) {
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sig
		if err := save(); err != nil {
			log.Printf("saving: %v", err)
		} else {
			logOK()
		}
		os.Exit(0)
	}()
}

// logRequests is a minimal access log. Session ids rotate per request
// by protocol, so the log carries no stable user identifiers.
func logRequests(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		next.ServeHTTP(w, r)
		log.Printf("%s %s (%v)", r.Method, r.URL.Path, time.Since(start).Round(time.Millisecond))
	})
}
