// Command viewmap-server runs the ViewMap system service: the VP
// database, investigation/verification engine, video solicitation and
// validation, and the blind-signature reward bank, exposed over the
// HTTP API of internal/server.
//
// Usage:
//
//	viewmap-server [-addr :8440] [-authority-token TOKEN] [-bank-bits 2048]
//	               [-db PATH] [-dsrc-range 400] [-no-viewmap-cache]
//
// If no authority token is supplied a random one is generated and
// printed at startup; authorities pass it in the X-Viewmap-Authority
// header for trusted uploads, investigations and reviews.
//
// The store shards by unit-time window and links every uploaded VP
// into its minute's viewmap at ingest, so investigations are answered
// from cached, already-linked viewmaps. -no-viewmap-cache disables
// that path and rebuilds the viewmap on every investigation — the
// baseline the serving benchmark (viewmap-bench -run serving)
// compares against; leave it off in production.
package main

import (
	"flag"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"viewmap/internal/server"
)

func main() {
	addr := flag.String("addr", ":8440", "listen address")
	token := flag.String("authority-token", "", "authority token (random if empty)")
	bankBits := flag.Int("bank-bits", 2048, "RSA key size for the reward bank")
	dbPath := flag.String("db", "", "VP database file: loaded at startup, saved on SIGINT/SIGTERM")
	dsrcRange := flag.Float64("dsrc-range", 0, "viewlink proximity radius in metres (0 = the 400 m default)")
	noCache := flag.Bool("no-viewmap-cache", false, "rebuild viewmaps per investigation instead of serving cached incremental ones (benchmark baseline)")
	flag.Parse()

	sys, err := server.NewSystem(server.Config{
		AuthorityToken: *token,
		BankBits:       *bankBits,
		Store: server.StoreConfig{
			DSRCRange:           *dsrcRange,
			DisableViewmapCache: *noCache,
		},
	})
	if err != nil {
		log.Fatalf("starting system: %v", err)
	}
	if *dbPath != "" {
		if _, err := os.Stat(*dbPath); err == nil {
			n, err := sys.Store().LoadFile(*dbPath)
			if err != nil {
				log.Fatalf("loading VP database: %v", err)
			}
			log.Printf("loaded %d VPs from %s", n, *dbPath)
		}
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		go func() {
			<-sig
			if err := sys.Store().SaveFile(*dbPath); err != nil {
				log.Printf("saving VP database: %v", err)
			} else {
				log.Printf("saved %d VPs to %s", sys.Store().Len(), *dbPath)
			}
			os.Exit(0)
		}()
	}
	log.Printf("ViewMap system service listening on %s", *addr)
	log.Printf("authority token: %s", sys.AuthorityToken())

	srv := &http.Server{
		Addr:              *addr,
		Handler:           logRequests(server.Handler(sys)),
		ReadHeaderTimeout: 10 * time.Second,
	}
	log.Fatal(srv.ListenAndServe())
}

// logRequests is a minimal access log. Session ids rotate per request
// by protocol, so the log carries no stable user identifiers.
func logRequests(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		next.ServeHTTP(w, r)
		log.Printf("%s %s (%v)", r.Method, r.URL.Path, time.Since(start).Round(time.Millisecond))
	})
}
