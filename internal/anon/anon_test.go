package anon

import (
	"bytes"
	"testing"
)

func TestWrapTraverseRoundTrip(t *testing.T) {
	dir, err := NewDirectory(5)
	if err != nil {
		t.Fatal(err)
	}
	circuit, err := dir.PickCircuit(3)
	if err != nil {
		t.Fatal(err)
	}
	payload := []byte("anonymous view profile upload")
	wrapped, err := circuit.Wrap(payload)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(wrapped, payload) {
		t.Error("wrapped message must not contain the plaintext payload")
	}
	out, err := circuit.Traverse(wrapped)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out, payload) {
		t.Errorf("traversal output = %q, want %q", out, payload)
	}
}

func TestSingleHopCircuit(t *testing.T) {
	r, err := NewRelay(1)
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewCircuit(r)
	if err != nil {
		t.Fatal(err)
	}
	wrapped, err := c.Wrap([]byte("x"))
	if err != nil {
		t.Fatal(err)
	}
	out, err := c.Traverse(wrapped)
	if err != nil {
		t.Fatal(err)
	}
	if string(out) != "x" {
		t.Errorf("got %q", out)
	}
}

func TestEmptyCircuitRejected(t *testing.T) {
	if _, err := NewCircuit(); err == nil {
		t.Error("empty circuit should fail")
	}
}

func TestWrongRelayCannotPeel(t *testing.T) {
	a, _ := NewRelay(1)
	b, _ := NewRelay(2)
	c, err := NewCircuit(a)
	if err != nil {
		t.Fatal(err)
	}
	wrapped, err := c.Wrap([]byte("secret"))
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := b.Peel(wrapped); err == nil {
		t.Error("a relay without the right key must not peel the layer")
	}
}

func TestRelayLearnsOnlyNextHop(t *testing.T) {
	a, _ := NewRelay(1)
	b, _ := NewRelay(2)
	c, _ := NewRelay(3)
	circuit, err := NewCircuit(a, b, c)
	if err != nil {
		t.Fatal(err)
	}
	payload := []byte("upload body")
	wrapped, err := circuit.Wrap(payload)
	if err != nil {
		t.Fatal(err)
	}
	// Entry relay peels one layer: sees next hop id, not the payload.
	next, inner, err := a.Peel(wrapped)
	if err != nil {
		t.Fatal(err)
	}
	if next != b.ID {
		t.Errorf("entry relay forwards to %d, want %d", next, b.ID)
	}
	if bytes.Contains(inner, payload) {
		t.Error("payload must still be encrypted after the first peel")
	}
	// Middle relay.
	next, inner, err = b.Peel(inner)
	if err != nil {
		t.Fatal(err)
	}
	if next != c.ID {
		t.Errorf("middle relay forwards to %d, want %d", next, c.ID)
	}
	// Exit relay sees the payload and the exit sentinel.
	next, inner, err = c.Peel(inner)
	if err != nil {
		t.Fatal(err)
	}
	if next != ExitHop {
		t.Errorf("exit relay sees hop %d, want sentinel", next)
	}
	if !bytes.Equal(inner, payload) {
		t.Error("exit relay should recover the payload")
	}
}

func TestPeelTamperDetected(t *testing.T) {
	a, _ := NewRelay(1)
	c, _ := NewCircuit(a)
	wrapped, err := c.Wrap([]byte("payload"))
	if err != nil {
		t.Fatal(err)
	}
	wrapped[len(wrapped)-1] ^= 0xFF
	if _, _, err := a.Peel(wrapped); err == nil {
		t.Error("tampered layer must fail authentication")
	}
	if _, _, err := a.Peel([]byte{1, 2}); err == nil {
		t.Error("truncated layer must fail")
	}
}

func TestDirectoryValidation(t *testing.T) {
	if _, err := NewDirectory(0); err == nil {
		t.Error("empty directory should fail")
	}
	dir, err := NewDirectory(3)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := dir.PickCircuit(0); err == nil {
		t.Error("zero hops should fail")
	}
	if _, err := dir.PickCircuit(4); err == nil {
		t.Error("more hops than relays should fail")
	}
}

func TestPickCircuitDistinctRelays(t *testing.T) {
	dir, err := NewDirectory(6)
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 20; trial++ {
		c, err := dir.PickCircuit(3)
		if err != nil {
			t.Fatal(err)
		}
		seen := make(map[RelayID]bool)
		for _, r := range c.relays {
			if seen[r.ID] {
				t.Fatal("circuit reuses a relay")
			}
			seen[r.ID] = true
		}
	}
}

func TestSessionsUnique(t *testing.T) {
	s := NewSessions()
	seen := make(map[string]bool)
	for i := 0; i < 1000; i++ {
		id, err := s.New()
		if err != nil {
			t.Fatal(err)
		}
		if seen[id] {
			t.Fatal("session id repeated")
		}
		seen[id] = true
	}
	if s.Count() != 1000 {
		t.Errorf("Count = %d, want 1000", s.Count())
	}
}

func TestWrapProducesFreshCiphertexts(t *testing.T) {
	// Random nonces: wrapping the same payload twice yields different
	// ciphertexts, so uploads are not linkable by content.
	a, _ := NewRelay(1)
	c, _ := NewCircuit(a)
	w1, err := c.Wrap([]byte("same payload"))
	if err != nil {
		t.Fatal(err)
	}
	w2, err := c.Wrap([]byte("same payload"))
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(w1, w2) {
		t.Error("two wraps of the same payload must differ")
	}
}

func BenchmarkWrapTraverse3Hops(b *testing.B) {
	dir, err := NewDirectory(3)
	if err != nil {
		b.Fatal(err)
	}
	circuit, err := dir.PickCircuit(3)
	if err != nil {
		b.Fatal(err)
	}
	payload := make([]byte, 4840) // one VP upload
	b.SetBytes(int64(len(payload)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		wrapped, err := circuit.Wrap(payload)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := circuit.Traverse(wrapped); err != nil {
			b.Fatal(err)
		}
	}
}

func TestGuardSingleUse(t *testing.T) {
	g := NewGuard()
	if err := g.Use(""); err != ErrSessionMissing {
		t.Fatalf("empty id: got %v, want ErrSessionMissing", err)
	}
	s := NewSessions()
	id, err := s.New()
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Use(id); err != nil {
		t.Fatalf("first use: %v", err)
	}
	if err := g.Use(id); err != ErrSessionReused {
		t.Fatalf("second use: got %v, want ErrSessionReused", err)
	}
	if g.Seen() != 1 {
		t.Fatalf("seen = %d, want 1", g.Seen())
	}
}

func TestGuardCapResets(t *testing.T) {
	g := &Guard{seen: make(map[string]bool), cap: 3}
	for i := 0; i < 3; i++ {
		if err := g.Use(string(rune('a' + i))); err != nil {
			t.Fatal(err)
		}
	}
	// The fourth id trips the cap: the set resets and the id is
	// admitted fresh.
	if err := g.Use("d"); err != nil {
		t.Fatal(err)
	}
	if g.Seen() != 1 {
		t.Fatalf("seen after reset = %d, want 1", g.Seen())
	}
}

func TestGuardConcurrentUse(t *testing.T) {
	g := NewGuard()
	const workers = 8
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		go func() {
			errs <- g.Use("contested-id")
		}()
	}
	ok, reused := 0, 0
	for w := 0; w < workers; w++ {
		switch err := <-errs; err {
		case nil:
			ok++
		case ErrSessionReused:
			reused++
		default:
			t.Errorf("unexpected error: %v", err)
		}
	}
	if ok != 1 || reused != workers-1 {
		t.Fatalf("ok=%d reused=%d, want exactly one winner", ok, reused)
	}
}
