// Package anon models the anonymous upload channel that ViewMap
// vehicles use to submit VPs ("We use Tor for this purpose... we make
// users constantly change sessions with the system, preventing the
// system from distinguishing among users by session ids", Section
// 5.1.2).
//
// It substitutes an in-process onion-routing simulation for the real
// Tor network: a circuit of relays with pre-established symmetric
// keys, layered AEAD encryption so each relay learns only the next
// hop, and single-use session identifiers for every exchange with the
// system. What the rest of the reproduction depends on is only the
// property the paper uses: the server observes uploads stripped of
// any stable user identifier.
package anon

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/rand"
	"encoding/binary"
	"encoding/hex"
	"errors"
	"fmt"
	"io"
	"math/big"
	"sync"
)

func bigInt(n int) *big.Int { return big.NewInt(int64(n)) }

// KeySize is the per-relay symmetric key size (AES-256).
const KeySize = 32

// RelayID identifies a relay in a directory.
type RelayID uint32

// Relay is one onion hop. In real Tor the key would be negotiated per
// circuit; the simulation provisions it at relay creation.
type Relay struct {
	ID  RelayID
	key [KeySize]byte
}

// NewRelay creates a relay with a fresh random key.
func NewRelay(id RelayID) (*Relay, error) {
	r := &Relay{ID: id}
	if _, err := io.ReadFull(rand.Reader, r.key[:]); err != nil {
		return nil, fmt.Errorf("anon: provisioning relay key: %w", err)
	}
	return r, nil
}

func (r *Relay) aead() (cipher.AEAD, error) {
	block, err := aes.NewCipher(r.key[:])
	if err != nil {
		return nil, err
	}
	return cipher.NewGCM(block)
}

// header precedes each onion layer: the id of the relay expected to
// peel it. The exit layer carries the sentinel ExitHop.
const ExitHop = RelayID(0xFFFFFFFF)

// Peel removes this relay's layer: it authenticates and decrypts the
// ciphertext, returning the next-hop relay id and the inner message.
// A relay handed a layer not addressed to it fails authentication.
func (r *Relay) Peel(layer []byte) (next RelayID, inner []byte, err error) {
	aead, err := r.aead()
	if err != nil {
		return 0, nil, err
	}
	ns := aead.NonceSize()
	if len(layer) < ns+4 {
		return 0, nil, errors.New("anon: layer too short")
	}
	nonce, ct := layer[:ns], layer[ns:]
	pt, err := aead.Open(nil, nonce, ct, nil)
	if err != nil {
		return 0, nil, fmt.Errorf("anon: peeling layer: %w", err)
	}
	if len(pt) < 4 {
		return 0, nil, errors.New("anon: malformed layer")
	}
	return RelayID(binary.BigEndian.Uint32(pt[:4])), pt[4:], nil
}

// wrap adds one encryption layer addressed so that the relay will
// forward to next.
func (r *Relay) wrap(next RelayID, inner []byte) ([]byte, error) {
	aead, err := r.aead()
	if err != nil {
		return nil, err
	}
	nonce := make([]byte, aead.NonceSize())
	if _, err := io.ReadFull(rand.Reader, nonce); err != nil {
		return nil, fmt.Errorf("anon: drawing nonce: %w", err)
	}
	pt := make([]byte, 4+len(inner))
	binary.BigEndian.PutUint32(pt[:4], uint32(next))
	copy(pt[4:], inner)
	return append(nonce, aead.Seal(nil, nonce, pt, nil)...), nil
}

// Circuit is an ordered relay path; index 0 is the entry hop.
type Circuit struct {
	relays []*Relay
}

// NewCircuit builds a circuit over the given relays (at least one).
func NewCircuit(relays ...*Relay) (*Circuit, error) {
	if len(relays) == 0 {
		return nil, errors.New("anon: circuit needs at least one relay")
	}
	return &Circuit{relays: relays}, nil
}

// Len returns the number of hops.
func (c *Circuit) Len() int { return len(c.relays) }

// Wrap onion-encrypts a payload for the circuit: the innermost layer
// is addressed to the exit sentinel, and each preceding relay's layer
// names its successor.
func (c *Circuit) Wrap(payload []byte) ([]byte, error) {
	msg := append([]byte(nil), payload...)
	var err error
	for i := len(c.relays) - 1; i >= 0; i-- {
		next := ExitHop
		if i+1 < len(c.relays) {
			next = c.relays[i+1].ID
		}
		msg, err = c.relays[i].wrap(next, msg)
		if err != nil {
			return nil, err
		}
	}
	return msg, nil
}

// Traverse simulates the message passing through every hop in order,
// verifying the forwarding chain, and returns the exit payload.
func (c *Circuit) Traverse(wrapped []byte) ([]byte, error) {
	msg := wrapped
	for i, r := range c.relays {
		next, inner, err := r.Peel(msg)
		if err != nil {
			return nil, fmt.Errorf("anon: hop %d: %w", i, err)
		}
		wantNext := ExitHop
		if i+1 < len(c.relays) {
			wantNext = c.relays[i+1].ID
		}
		if next != wantNext {
			return nil, fmt.Errorf("anon: hop %d forwards to %d, want %d", i, next, wantNext)
		}
		msg = inner
	}
	return msg, nil
}

// Directory is a pool of relays to draw circuits from.
type Directory struct {
	mu     sync.Mutex
	relays []*Relay
}

// NewDirectory provisions n relays.
func NewDirectory(n int) (*Directory, error) {
	if n <= 0 {
		return nil, fmt.Errorf("anon: directory needs at least one relay, got %d", n)
	}
	d := &Directory{}
	for i := 0; i < n; i++ {
		r, err := NewRelay(RelayID(i))
		if err != nil {
			return nil, err
		}
		d.relays = append(d.relays, r)
	}
	return d, nil
}

// PickCircuit selects hops distinct relays uniformly at random using
// crypto/rand (circuit choice must be unpredictable).
func (d *Directory) PickCircuit(hops int) (*Circuit, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if hops <= 0 || hops > len(d.relays) {
		return nil, fmt.Errorf("anon: cannot pick %d hops from %d relays", hops, len(d.relays))
	}
	idx := make([]int, len(d.relays))
	for i := range idx {
		idx[i] = i
	}
	// Fisher-Yates with crypto randomness over the prefix we need.
	for i := 0; i < hops; i++ {
		jBig, err := rand.Int(rand.Reader, bigInt(len(idx)-i))
		if err != nil {
			return nil, err
		}
		j := i + int(jBig.Int64())
		idx[i], idx[j] = idx[j], idx[i]
	}
	picked := make([]*Relay, hops)
	for i := 0; i < hops; i++ {
		picked[i] = d.relays[idx[i]]
	}
	return NewCircuit(picked...)
}

// Sessions issues single-use anonymous session identifiers. Vehicles
// take a fresh one per server exchange, so the server cannot group
// uploads by session.
type Sessions struct {
	mu     sync.Mutex
	issued map[string]bool
}

// NewSessions creates an empty issuer.
func NewSessions() *Sessions {
	return &Sessions{issued: make(map[string]bool)}
}

// New returns a fresh 128-bit hex session id, guaranteed distinct from
// every id previously issued by this issuer.
func (s *Sessions) New() (string, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for {
		var b [16]byte
		if _, err := io.ReadFull(rand.Reader, b[:]); err != nil {
			return "", fmt.Errorf("anon: drawing session id: %w", err)
		}
		id := hex.EncodeToString(b[:])
		if !s.issued[id] {
			s.issued[id] = true
			return id, nil
		}
	}
}

// Count returns how many session ids have been issued.
func (s *Sessions) Count() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.issued)
}

// ErrSessionReused is returned by Guard.Use when a session identifier
// is presented a second time.
var ErrSessionReused = errors.New("anon: session id already used")

// ErrSessionMissing is returned by Guard.Use for an empty session id.
var ErrSessionMissing = errors.New("anon: missing session id")

// Guard is the system-side counterpart of Sessions: it enforces that
// every anonymous exchange arrives under a session identifier the
// server has never seen before. Vehicles rotate ids per request, so a
// replayed id is either a client bug or an attempt to correlate or
// replay an exchange — both are refused. The guard deliberately
// remembers only opaque ids, never who presented them.
type Guard struct {
	mu   sync.Mutex
	seen map[string]bool
	// cap bounds memory; when reached, the seen set is reset wholesale.
	// A reset re-admits old ids, trading perfect replay rejection for a
	// hard memory bound — acceptable because honest clients never reuse
	// ids and the ids are 128-bit random values an attacker cannot
	// predictably "age out".
	cap int
}

// DefaultGuardCap bounds the remembered session ids of a Guard built
// by NewGuard.
const DefaultGuardCap = 1 << 20

// NewGuard creates a session guard remembering up to DefaultGuardCap
// ids.
func NewGuard() *Guard {
	return &Guard{seen: make(map[string]bool), cap: DefaultGuardCap}
}

// Use consumes a single-use session id: the first presentation
// succeeds, every later one fails with ErrSessionReused.
func (g *Guard) Use(id string) error {
	if id == "" {
		return ErrSessionMissing
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.seen[id] {
		return ErrSessionReused
	}
	if len(g.seen) >= g.cap {
		g.seen = make(map[string]bool)
	}
	g.seen[id] = true
	return nil
}

// Seen returns how many distinct session ids the guard currently
// remembers.
func (g *Guard) Seen() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return len(g.seen)
}
