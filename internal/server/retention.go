package server

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"time"

	"viewmap/internal/vp"
)

// Minute-window retention. A continuously running deployment ingests a
// new minute shard every minute and would otherwise hold every one of
// them — slab, incremental graph, viewmap cache — in memory forever.
// With retention enabled, shards older than the configured horizon are
// spilled to per-minute segment files and evicted: the profiles, the
// minute's linked graph, and its caches all leave memory, and only the
// identifier index keeps a 16-byte marker per evicted VP so duplicate
// rejection still holds across the whole history. An investigation or
// evidence lookup against an evicted minute transparently reloads the
// segment — re-linking the profiles in their original ingest order
// reproduces the identical viewmap (the evict-then-reload equality
// invariant, pinned by TestEvictReloadEquality) — and reloaded cold
// minutes live in a small LRU-bounded resident set of their own.
//
// Segment files are written with fsync before the in-memory shard is
// dropped, so an evicted minute is always durable on its own: the
// snapshot + WAL pair covers the resident window, the segment files
// cover everything older.

// segMagic heads a minute-segment file.
var segMagic = [8]byte{'V', 'M', 'A', 'P', 'S', 'E', 'G', '1'}

// maxSegmentRecord bounds one profile record in a segment file; same
// cap as the legacy store stream.
const maxSegmentRecord = 1 << 20

// evictedRef marks an identifier whose profile lives in an on-disk
// minute segment rather than in memory. It keeps duplicate rejection
// exact across eviction: the identifier stays claimed in the index,
// and Get follows the marker through a segment reload.
type evictedRef struct{ minute int64 }

// segmentPath names minute m's segment file.
func (s *Store) segmentPath(m int64) string {
	return filepath.Join(s.cfg.SegmentDir, fmt.Sprintf("minute-%d.seg", m))
}

// RetentionEnabled reports whether this store spills old minutes.
func (s *Store) RetentionEnabled() bool {
	return s.cfg.SegmentDir != "" && s.cfg.RetentionMinutes > 0
}

// residentColdCap returns the LRU bound on reloaded cold shards.
func (s *Store) residentColdCap() int {
	if s.cfg.ResidentColdMinutes > 0 {
		return s.cfg.ResidentColdMinutes
	}
	return 2
}

// ApplyRetention spills and evicts every resident shard older than the
// horizon (the newest ingested minute minus RetentionMinutes), then
// trims the cold resident set down to its LRU bound. The durability
// runtime calls this periodically; tests and the continuous workload
// call it directly. It returns how many shards were evicted.
func (s *Store) ApplyRetention() (int, error) {
	if !s.RetentionEnabled() {
		return 0, nil
	}
	newest := s.newestMinute.Load()
	if newest == noMinute {
		return 0, nil
	}
	cut := newest - int64(s.cfg.RetentionMinutes)

	s.mu.RLock()
	var hot []int64
	for m, sh := range s.shards {
		if !sh.cold && m <= cut {
			hot = append(hot, m)
		}
	}
	s.mu.RUnlock()

	evicted := 0
	for _, m := range hot {
		if err := s.evictShard(m); err != nil {
			return evicted, err
		}
		evicted++
	}
	trimmed, err := s.trimCold()
	return evicted + trimmed, err
}

// trimCold evicts reloaded cold minutes beyond the LRU bound, least
// recently touched first. Both the periodic sweep and every segment
// reload run it, so the bounded-residency invariant holds even when a
// burst of cold queries arrives between sweeps.
func (s *Store) trimCold() (int, error) {
	s.mu.RLock()
	var cold []int64
	coldTouch := map[int64]uint64{}
	for m, sh := range s.shards {
		if sh.cold {
			cold = append(cold, m)
			coldTouch[m] = sh.lastTouch.Load()
		}
	}
	s.mu.RUnlock()
	over := len(cold) - s.residentColdCap()
	if over <= 0 {
		return 0, nil
	}
	sort.Slice(cold, func(i, j int) bool { return coldTouch[cold[i]] < coldTouch[cold[j]] })
	evicted := 0
	for _, m := range cold[:over] {
		if err := s.evictShard(m); err != nil {
			return evicted, err
		}
		evicted++
	}
	return evicted, nil
}

// evictShard spills minute m's shard to its segment file and drops it
// from memory. The write happens outside the store lock against a
// versioned copy of the slab; if ingest grows the shard meanwhile the
// spill restarts, so the segment always matches the dropped state.
func (s *Store) evictShard(m int64) error {
	start := time.Now()
	for {
		sh := s.shard(m)
		if sh == nil {
			return nil
		}
		sh.mu.Lock()
		version := len(sh.profiles)
		dirty := sh.dirty
		profiles := make([]*vp.Profile, version)
		copy(profiles, sh.profiles)
		sh.mu.Unlock()

		if dirty {
			if err := s.writeSegment(m, profiles); err != nil {
				return err
			}
		}

		s.mu.Lock()
		if s.shards[m] != sh {
			s.mu.Unlock()
			continue // replaced under us; retry against the new shard
		}
		sh.mu.Lock()
		if len(sh.profiles) != version {
			sh.mu.Unlock()
			s.mu.Unlock()
			continue // ingest raced the spill; rewrite the segment
		}
		for _, p := range profiles {
			s.ids.Store(p.ID(), evictedRef{minute: m})
		}
		sh.evicted = true
		// Wake any watch stream parked on the shard; the commit paths
		// check evicted under this same lock before closing, so the
		// channel closes exactly once.
		close(sh.changed)
		delete(s.shards, m)
		if version > 0 {
			// An empty shard (created for an in-flight burst that has
			// not committed yet) has no segment file; registering one
			// would poison later reloads of the minute.
			s.segments[m] = true
		}
		sh.mu.Unlock()
		s.mu.Unlock()
		// The shard is out of the map and marked evicted; its link
		// worker drains (failing queued bursts back to their submitters,
		// who re-resolve against the successor shard) and exits.
		sh.stopLinkWorker()
		// Eviction runs on the background sweep, never a request path, so
		// the timing is unconditional (spill + drop, including retries).
		s.evictions.Add(1)
		s.evictionNS.Add(int64(time.Since(start)))
		return nil
	}
}

// writeSegment persists one minute's profiles, in ingest order, to the
// minute's segment file: temp file, fsync, atomic rename, directory
// sync — the file is durable before the in-memory shard may be
// dropped.
func (s *Store) writeSegment(m int64, profiles []*vp.Profile) error {
	if s.cfg.SegmentDir == "" {
		return errors.New("server: no segment directory configured")
	}
	path := s.segmentPath(m)
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	bw := bufio.NewWriterSize(f, 1<<20)
	err = func() error {
		if _, err := bw.Write(segMagic[:]); err != nil {
			return err
		}
		var hdr [12]byte
		binary.BigEndian.PutUint64(hdr[:8], uint64(m))
		binary.BigEndian.PutUint32(hdr[8:], uint32(len(profiles)))
		if _, err := bw.Write(hdr[:]); err != nil {
			return err
		}
		for _, p := range profiles {
			rec := p.Marshal()
			var rh [5]byte
			binary.BigEndian.PutUint32(rh[:4], uint32(len(rec)))
			if p.Trusted {
				rh[4] = 1
			}
			if _, err := bw.Write(rh[:]); err != nil {
				return err
			}
			if _, err := bw.Write(rec); err != nil {
				return err
			}
		}
		if err := bw.Flush(); err != nil {
			return err
		}
		return f.Sync()
	}()
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	syncDir(s.cfg.SegmentDir)
	return nil
}

// readSegment parses minute m's segment file. Lengths are validated
// before allocation: segment files normally round-trip our own writes,
// but recovery must not crash — or balloon — on a corrupt one.
func (s *Store) readSegment(m int64) ([]*vp.Profile, error) {
	f, err := os.Open(s.segmentPath(m))
	if err != nil {
		return nil, err
	}
	defer f.Close()
	br := bufio.NewReaderSize(f, 1<<20)
	var magic [8]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, fmt.Errorf("server: segment %d header: %w", m, err)
	}
	if magic != segMagic {
		return nil, fmt.Errorf("server: minute %d: not a segment file", m)
	}
	var hdr [12]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, fmt.Errorf("server: segment %d header: %w", m, err)
	}
	if got := int64(binary.BigEndian.Uint64(hdr[:8])); got != m {
		return nil, fmt.Errorf("server: segment file for minute %d claims minute %d", m, got)
	}
	count := binary.BigEndian.Uint32(hdr[8:])
	profiles := make([]*vp.Profile, 0, min(int(count), 1<<16))
	for i := uint32(0); i < count; i++ {
		var rh [5]byte
		if _, err := io.ReadFull(br, rh[:]); err != nil {
			return nil, fmt.Errorf("server: segment %d record %d: %w", m, i, err)
		}
		size := binary.BigEndian.Uint32(rh[:4])
		if size > maxSegmentRecord {
			return nil, fmt.Errorf("server: segment %d record %d claims %d bytes", m, i, size)
		}
		rec := make([]byte, size)
		if _, err := io.ReadFull(br, rec); err != nil {
			return nil, fmt.Errorf("server: segment %d record %d: %w", m, i, err)
		}
		p, err := vp.Unmarshal(rec)
		if err != nil {
			return nil, fmt.Errorf("server: segment %d record %d: %w", m, i, err)
		}
		p.Trusted = rh[4] == 1
		profiles = append(profiles, p)
	}
	return profiles, nil
}

// reloadSegment brings an evicted minute back into memory: the segment
// is read, the profiles re-linked in their original ingest order
// (reproducing the identical minute graph), the identifier index
// restored to live pointers, and the rebuilt shard installed as a cold
// resident. Single-flight: concurrent cold queries for any evicted
// minute serialize here, and the winner's shard is reused.
func (s *Store) reloadSegment(m int64) (*minuteShard, error) {
	s.reloadMu.Lock()
	defer s.reloadMu.Unlock()
	if sh := s.shard(m); sh != nil {
		return sh, nil
	}
	s.mu.RLock()
	have := s.segments[m]
	s.mu.RUnlock()
	if !have {
		return nil, fmt.Errorf("%w %d", ErrNoMinute, m)
	}
	profiles, err := s.readSegment(m)
	if err != nil {
		return nil, err
	}
	sh := s.newShard(m)
	sh.cold = true
	for _, p := range profiles {
		if !s.cfg.DisableViewmapCache {
			linked, err := sh.builder.Add(p)
			if err != nil {
				return nil, fmt.Errorf("server: relinking segment %d: %w", m, err)
			}
			if !linked {
				sh.quarantined++
			}
		}
		sh.profiles = append(sh.profiles, p)
		s.ids.Store(p.ID(), p)
	}
	s.touch(sh)
	// The relink above ran builder.Add directly — safe only because the
	// shard's ring is unreachable until the map install below makes the
	// shard visible. The worker must exist before that instant.
	s.startLinkWorker(sh)
	s.mu.Lock()
	if s.closed.Load() {
		s.mu.Unlock()
		sh.stopLinkWorker()
		return nil, errStoreClosed
	}
	s.shards[m] = sh
	s.mu.Unlock()
	// Enforce the cold LRU bound immediately: a burst of cold queries
	// must not grow residency until the next periodic sweep. The just-
	// installed shard carries the newest touch stamp, so it is never
	// the one trimmed (for any cap >= 1). A trim failure only delays
	// eviction, so it is not allowed to fail the query.
	if s.RetentionEnabled() {
		s.trimCold()
	}
	return sh, nil
}

// adoptSegments registers every segment file on disk with the store:
// evicted minutes become queryable again and their identifiers are
// re-claimed in the index (so WAL replay rejects their records as
// duplicates) without keeping the profiles resident. Recovery calls
// this before replaying the WAL. Minutes already resident (a snapshot
// can predate an eviction) keep their in-memory state; the stale
// segment is simply re-registered and will be rewritten on the next
// eviction.
func (s *Store) adoptSegments() (minutes int, err error) {
	if s.cfg.SegmentDir == "" {
		return 0, nil
	}
	entries, err := os.ReadDir(s.cfg.SegmentDir)
	if errors.Is(err, os.ErrNotExist) {
		return 0, nil
	}
	if err != nil {
		return 0, err
	}
	for _, e := range entries {
		var m int64
		if n, err := fmt.Sscanf(e.Name(), "minute-%d.seg", &m); n != 1 || err != nil {
			continue
		}
		resident := s.shard(m) != nil
		s.mu.Lock()
		s.segments[m] = true
		s.mu.Unlock()
		if resident {
			minutes++
			continue
		}
		profiles, err := s.readSegment(m)
		if err != nil {
			return minutes, err
		}
		for _, p := range profiles {
			if _, dup := s.ids.LoadOrStore(p.ID(), evictedRef{minute: m}); dup {
				continue
			}
			s.count.Add(1)
			if p.Trusted {
				s.trustedCount.Add(1)
			}
		}
		if m > s.newestMinute.Load() {
			s.newestMinute.Store(m)
		}
		minutes++
	}
	return minutes, nil
}

// touch stamps a shard's recency for the cold-set LRU.
func (s *Store) touch(sh *minuteShard) {
	sh.lastTouch.Store(s.touchSeq.Add(1))
}

// RetentionStats describe the store's resident/evicted split.
type RetentionStats struct {
	// ResidentMinutes counts minute shards currently in memory.
	ResidentMinutes int
	// ColdResident counts the resident shards that were reloaded from
	// segment files (bounded by the cold LRU cap).
	ColdResident int
	// EvictedMinutes counts minutes that live only in segment files.
	EvictedMinutes int
	// Evictions counts shard evictions this process lifetime;
	// EvictionTotalMS is their cumulative wall time (spill + drop) in
	// milliseconds.
	Evictions       int64
	EvictionTotalMS float64
}

// RetentionStatsSnapshot reads the current resident/evicted split.
func (s *Store) RetentionStatsSnapshot() RetentionStats {
	s.mu.RLock()
	defer s.mu.RUnlock()
	st := RetentionStats{
		ResidentMinutes: len(s.shards),
		Evictions:       s.evictions.Load(),
		EvictionTotalMS: float64(s.evictionNS.Load()) / float64(time.Millisecond),
	}
	for _, sh := range s.shards {
		if sh.cold {
			st.ColdResident++
		}
	}
	for m := range s.segments {
		if _, ok := s.shards[m]; !ok {
			st.EvictedMinutes++
		}
	}
	return st
}
