package server

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"math/big"
	"os"
	"path/filepath"
	"sync"
	"time"

	"viewmap/internal/geo"
	"viewmap/internal/obs"
	"viewmap/internal/reward"
	"viewmap/internal/vd"
	"viewmap/internal/vp"
)

// Durable continuous operation. A plain NewSystem keeps everything in
// memory and persists only on explicit SaveTo; OpenDurable layers
// three mechanisms under the same System so it can run indefinitely:
//
//   - every admitted mutation is appended (and fsynced, group-
//     committed) to the ingest WAL before the request is acknowledged
//     — the ack-after-append invariant;
//   - a background snapshotter periodically writes the full system
//     state next to the log and truncates the WAL up to the LSN the
//     snapshot covers, so the log never grows without bound and
//     recovery replays only a short tail;
//   - minute-window retention (retention.go) spills shards older than
//     the horizon to per-minute segment files and evicts them, so
//     resident memory is bounded by the horizon plus the cold LRU.
//
// Recovery = load the newest snapshot, adopt the segment files, replay
// the WAL tail (idempotent: duplicate-ID rejection for VPs, state
// guards for board transitions, the spent ledger for cash), tolerate a
// torn final record. docs/operations.md covers the operator view;
// docs/persistence-format.md the bytes.

// DurabilityConfig parameterizes OpenDurable.
type DurabilityConfig struct {
	// WALPath is the ingest log file. Required. The snapshot and the
	// segment directory default to sibling paths derived from it.
	WALPath string
	// SnapshotPath is the full-state snapshot file; empty selects
	// WALPath + ".snap".
	SnapshotPath string
	// SegmentDir holds evicted minute segments; empty selects
	// WALPath + ".segments".
	SegmentDir string
	// SyncInterval is the group-commit window: how long the WAL syncer
	// may linger collecting more appends before one fsync makes them
	// all durable. Zero syncs as soon as a record is buffered. Larger
	// values trade acknowledgement latency for fewer fsyncs per
	// second, never durability — every ack still waits for its fsync.
	SyncInterval time.Duration
	// SnapshotInterval is the background snapshot period; zero
	// disables the snapshotter (Checkpoint can still be called
	// manually, and Close writes a final snapshot).
	SnapshotInterval time.Duration
	// RetentionMinutes is the resident minute horizon (see
	// StoreConfig.RetentionMinutes); zero keeps every minute resident.
	RetentionMinutes int
	// ResidentColdMinutes bounds reloaded cold minutes (LRU); zero
	// selects 2.
	ResidentColdMinutes int
	// RetentionInterval is how often the evictor sweeps; zero selects
	// one second. Ignored when RetentionMinutes is zero.
	RetentionInterval time.Duration
	// Fsync, when non-nil, replaces the file-sync call on the WAL's
	// group-commit and compaction paths. It is a fault-injection seam:
	// scenario fault plans wrap the real (*os.File).Sync with slow-disk
	// stalls. A replacement must still make the file durable (or
	// return an error) before returning — the ack-after-fsync
	// invariant rides on it. nil selects (*os.File).Sync.
	Fsync func(f *os.File) error
}

// withDefaults resolves the derived paths and periods.
func (c DurabilityConfig) withDefaults() DurabilityConfig {
	if c.SnapshotPath == "" {
		c.SnapshotPath = c.WALPath + ".snap"
	}
	if c.SegmentDir == "" {
		c.SegmentDir = c.WALPath + ".segments"
	}
	if c.RetentionInterval <= 0 {
		c.RetentionInterval = time.Second
	}
	return c
}

// ErrDurability is returned (and mapped to 503) when a mutation cannot
// be made durable; the mutation is not acknowledged.
var ErrDurability = errors.New("server: durability log unavailable")

// snapshotMagic heads a durable snapshot: the covered LSN followed by
// the regular full-system state stream (systemMagic).
var snapshotMagic = [8]byte{'V', 'M', 'A', 'P', 'C', 'K', 'P', '1'}

// inflightLSNs tracks append-before-commit records between their WAL
// append and their store commit. The snapshot barrier must stay below
// every such record: the snapshot cannot contain the mutation yet, so
// truncating its record would lose an (about-to-be-)acknowledged
// batch.
type inflightLSNs struct {
	mu  sync.Mutex
	set map[uint64]struct{}
}

func (t *inflightLSNs) add(lsn uint64) {
	t.mu.Lock()
	if t.set == nil {
		t.set = make(map[uint64]struct{})
	}
	t.set[lsn] = struct{}{}
	t.mu.Unlock()
}

func (t *inflightLSNs) done(lsn uint64) {
	t.mu.Lock()
	delete(t.set, lsn)
	t.mu.Unlock()
}

// barrier returns the highest LSN safe to snapshot through: one below
// the lowest in-flight record, or appended when none are in flight.
func (t *inflightLSNs) barrier(appended uint64) uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	low := appended + 1
	for lsn := range t.set {
		if lsn < low {
			low = lsn
		}
	}
	if low <= appended {
		return low - 1
	}
	return appended
}

// durabilityRuntime is the per-System state of durable operation.
type durabilityRuntime struct {
	cfg      DurabilityConfig
	inflight inflightLSNs
	stop     chan struct{}
	stopOnce sync.Once
	wg       sync.WaitGroup

	// checkpointMu serializes snapshot writes (the background loop, a
	// manual Checkpoint, and Close share one temp path).
	checkpointMu sync.Mutex

	mu          sync.Mutex
	snapshots   int
	snapshotLSN uint64
	replayed    int
	lastErr     error
	// snapshotTime / lastSnapshotTime track cumulative and most-recent
	// Checkpoint wall time for the stats surface.
	snapshotTime     time.Duration
	lastSnapshotTime time.Duration
}

// OpenDurable builds a System for indefinite operation: it recovers
// whatever state the durability directory holds (newest snapshot +
// segment files + WAL tail), opens the WAL for appending, writes a
// bootstrap snapshot when none existed (so the bank keypair is durable
// before the first unit is minted), and starts the snapshotter and
// retention goroutines. Stop it with Close (graceful: final snapshot)
// or Abort (crash simulation).
func OpenDurable(cfg Config, dcfg DurabilityConfig) (*System, error) {
	if dcfg.WALPath == "" {
		return nil, errors.New("server: durability needs a WAL path")
	}
	dcfg = dcfg.withDefaults()
	if err := os.MkdirAll(filepath.Dir(dcfg.WALPath), 0o755); err != nil {
		return nil, err
	}
	if err := os.MkdirAll(dcfg.SegmentDir, 0o755); err != nil {
		return nil, err
	}
	cfg.Store.SegmentDir = dcfg.SegmentDir
	cfg.Store.RetentionMinutes = dcfg.RetentionMinutes
	cfg.Store.ResidentColdMinutes = dcfg.ResidentColdMinutes
	sys, err := NewSystem(cfg)
	if err != nil {
		return nil, err
	}
	sys.durable = &durabilityRuntime{cfg: dcfg, stop: make(chan struct{})}

	// Recovery, phase 1: the newest snapshot. A crash mid-write leaves
	// only a .tmp file, which is ignored — the rename is the commit.
	snapLSN, haveSnap, err := sys.loadSnapshot(dcfg.SnapshotPath)
	if err != nil {
		return nil, fmt.Errorf("server: loading snapshot: %w", err)
	}
	// Phase 2: adopt evicted minute segments (registers their
	// identifiers so WAL replay rejects their records as duplicates).
	if _, err := sys.store.adoptSegments(); err != nil {
		return nil, fmt.Errorf("server: adopting segments: %w", err)
	}
	// Phase 3: replay the WAL tail over the snapshot. Torn or corrupt
	// trailing bytes end the replay; the opener truncates them away.
	replayed := 0
	lastLSN, valid, _, err := replayWALFile(dcfg.WALPath, snapLSN, func(lsn uint64, typ byte, body []byte) error {
		replayed++
		return sys.applyWALRecord(typ, body)
	})
	if err != nil {
		return nil, fmt.Errorf("server: replaying WAL: %w", err)
	}
	if lastLSN < snapLSN {
		// The snapshot is ahead of every surviving WAL record (the log
		// was truncated through snapLSN); keep LSNs monotone.
		lastLSN = snapLSN
	}
	sys.durable.replayed = replayed
	sys.durable.snapshotLSN = snapLSN

	w, err := openWALForAppend(dcfg.WALPath, valid, lastLSN+1, dcfg.SyncInterval)
	if err != nil {
		return nil, fmt.Errorf("server: opening WAL: %w", err)
	}
	w.setFsync(dcfg.Fsync)
	w.metrics = sys.metrics
	sys.wal = w

	if !haveSnap {
		// Bootstrap snapshot: the bank keypair must be durable before
		// any acknowledgement references it.
		if err := sys.Checkpoint(); err != nil {
			w.Close()
			return nil, fmt.Errorf("server: bootstrap snapshot: %w", err)
		}
	}

	sys.durable.wg.Add(1)
	go sys.snapshotLoop()
	if dcfg.RetentionMinutes > 0 {
		sys.durable.wg.Add(1)
		go sys.retentionLoop()
	}
	return sys, nil
}

// loadSnapshot restores the snapshot at path, returning the LSN it
// covers. A missing file is a fresh start.
func (sys *System) loadSnapshot(path string) (lsn uint64, ok bool, err error) {
	f, err := os.Open(path)
	if errors.Is(err, os.ErrNotExist) {
		return 0, false, nil
	}
	if err != nil {
		return 0, false, err
	}
	defer f.Close()
	br := bufio.NewReaderSize(f, 1<<20)
	var hdr [16]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return 0, false, fmt.Errorf("snapshot header: %w", err)
	}
	if [8]byte(hdr[:8]) != snapshotMagic {
		return 0, false, errors.New("not a ViewMap snapshot file")
	}
	lsn = binary.BigEndian.Uint64(hdr[8:])
	if _, err := sys.LoadFrom(br); err != nil {
		return 0, false, err
	}
	return lsn, true, nil
}

// Checkpoint writes a snapshot of the full system state — covering
// every WAL record up to the barrier LSN — to the snapshot path (temp
// file, fsync, atomic rename), then truncates the WAL through that
// LSN. The snapshotter calls this on its interval; tests and the
// continuous workload call it directly.
func (sys *System) Checkpoint() error {
	if sys.wal == nil {
		return errors.New("server: system is not durable")
	}
	d := sys.durable
	d.checkpointMu.Lock()
	defer d.checkpointMu.Unlock()
	start := time.Now()
	lsn := d.inflight.barrier(sys.wal.AppendedLSN())
	path := d.cfg.SnapshotPath
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	bw := bufio.NewWriterSize(f, 1<<20)
	err = func() error {
		var hdr [16]byte
		copy(hdr[:8], snapshotMagic[:])
		binary.BigEndian.PutUint64(hdr[8:], lsn)
		if _, err := bw.Write(hdr[:]); err != nil {
			return err
		}
		if err := sys.SaveTo(bw); err != nil {
			return err
		}
		if err := bw.Flush(); err != nil {
			return err
		}
		return f.Sync()
	}()
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	syncDir(filepath.Dir(path))
	if err := sys.wal.truncateThrough(lsn); err != nil {
		return err
	}
	elapsed := time.Since(start)
	d.mu.Lock()
	d.snapshots++
	d.snapshotLSN = lsn
	d.snapshotTime += elapsed
	d.lastSnapshotTime = elapsed
	d.mu.Unlock()
	return nil
}

// snapshotLoop runs Checkpoint on the configured interval.
func (sys *System) snapshotLoop() {
	d := sys.durable
	defer d.wg.Done()
	if d.cfg.SnapshotInterval <= 0 {
		return
	}
	t := time.NewTicker(d.cfg.SnapshotInterval)
	defer t.Stop()
	for {
		select {
		case <-d.stop:
			return
		case <-t.C:
			sys.noteDurabilityErr(sys.Checkpoint())
		}
	}
}

// retentionLoop sweeps old shards to disk on the configured interval.
func (sys *System) retentionLoop() {
	d := sys.durable
	defer d.wg.Done()
	t := time.NewTicker(d.cfg.RetentionInterval)
	defer t.Stop()
	for {
		select {
		case <-d.stop:
			return
		case <-t.C:
			_, err := sys.store.ApplyRetention()
			sys.noteDurabilityErr(err)
		}
	}
}

// noteDurabilityErr records the most recent background failure for the
// stats surface.
func (sys *System) noteDurabilityErr(err error) {
	if err == nil {
		return
	}
	d := sys.durable
	d.mu.Lock()
	d.lastErr = err
	d.mu.Unlock()
}

// Close stops the durability goroutines, writes a final snapshot, and
// closes the WAL. The System must not serve traffic afterwards.
func (sys *System) Close() error {
	if sys.wal == nil {
		// Non-durable systems still own per-shard link workers.
		sys.store.Close()
		return nil
	}
	d := sys.durable
	d.stopOnce.Do(func() { close(d.stop) })
	d.wg.Wait()
	err := sys.Checkpoint()
	if cerr := sys.wal.Close(); err == nil {
		err = cerr
	}
	sys.store.Close()
	return err
}

// Abort simulates a crash: the durability goroutines stop and the WAL
// file handle is closed without flushing — acknowledged records are on
// disk (every ack waited for its fsync), unacknowledged buffered ones
// vanish. No final snapshot is written. Recovery tests and the
// continuous workload restart from the same directory afterwards.
func (sys *System) Abort() {
	if sys.wal == nil {
		return
	}
	d := sys.durable
	d.stopOnce.Do(func() { close(d.stop) })
	d.wg.Wait()
	sys.wal.abort()
	sys.store.Close()
}

// CrashAppendAbort simulates a power cut in the exact window the
// ack-after-append contract must cover: each batch (vp.MarshalBatch
// wire bytes) is appended to the WAL as the live batch path would
// journal it, and then the process state is aborted before any of the
// records commit to a shard. The records exist only in the log — a
// following OpenDurable must replay them into the store. Fault
// harnesses (the scenario engine's crash-and-recover family, the
// recovery-matrix tests) use this to crash a system mid-upload
// deterministically; it errors on a non-durable system.
func (sys *System) CrashAppendAbort(batches [][]byte) error {
	if sys.wal == nil {
		return errors.New("server: system is not durable")
	}
	for _, b := range batches {
		if _, err := sys.wal.Append(walRecVPBatch, b, nil); err != nil {
			return fmt.Errorf("%w: %v", ErrDurability, err)
		}
	}
	sys.Abort()
	return nil
}

// journalIngest appends an ingest record on the append-before-commit
// path and registers it with the snapshot barrier. The returned
// release must be called once the store commit (or its failure) is
// final. On a non-durable system both halves are no-ops.
func (sys *System) journalIngest(typ byte, body []byte) (release func(), err error) {
	if sys.wal == nil {
		return func() {}, nil
	}
	var start time.Time
	if sys.metrics.Enabled() {
		start = time.Now()
	}
	var lsn uint64
	_, err = sys.wal.Append(typ, body, func(l uint64) {
		lsn = l
		sys.durable.inflight.add(l)
	})
	if !start.IsZero() {
		// The append blocks through the group commit, so this span is
		// append + sync wait — the full durability cost of the request.
		sys.metrics.Stage(obs.StageWALAppend).Record(int64(time.Since(start)))
	}
	if err != nil {
		if lsn != 0 {
			sys.durable.inflight.done(lsn)
		}
		return nil, fmt.Errorf("%w: %v", ErrDurability, err)
	}
	return func() { sys.durable.inflight.done(lsn) }, nil
}

// journalIngestVec is journalIngest for a record body assembled from
// fragments (wal.AppendVec): the batch path journals a burst's wire
// records as sub-slices of the request body, skipping the contiguous
// re-marshal the old path paid per upload.
func (sys *System) journalIngestVec(typ byte, frags [][]byte) (release func(), err error) {
	if sys.wal == nil {
		return func() {}, nil
	}
	var lsn uint64
	_, err = sys.wal.AppendVec(typ, frags, func(l uint64) {
		lsn = l
		sys.durable.inflight.add(l)
	})
	if err != nil {
		if lsn != 0 {
			sys.durable.inflight.done(lsn)
		}
		return nil, fmt.Errorf("%w: %v", ErrDurability, err)
	}
	return func() { sys.durable.inflight.done(lsn) }, nil
}

// journalIngestVecTraced is journalIngestVec plus observability: the
// append-through-group-commit wall time lands in the WAL-append stage
// histogram and, when tr is non-nil, on the request's trace.
func (sys *System) journalIngestVecTraced(typ byte, frags [][]byte, tr *obs.Trace) (release func(), err error) {
	if sys.wal == nil {
		return func() {}, nil
	}
	var start time.Time
	if sys.metrics.Enabled() || tr != nil {
		start = time.Now()
	}
	release, err = sys.journalIngestVec(typ, frags)
	if !start.IsZero() {
		d := time.Since(start)
		sys.metrics.Stage(obs.StageWALAppend).Record(int64(d))
		tr.Observe(obs.StageWALAppend, d)
	}
	return release, err
}

// journalCommitted appends a record for a mutation that is already
// committed in memory (the commit-before-append path: board and bank
// transitions, whose replay is idempotent by construction). The
// mutation is only acknowledged once this returns.
func (sys *System) journalCommitted(typ byte, body []byte) error {
	if sys.wal == nil {
		return nil
	}
	if _, err := sys.wal.Append(typ, body, nil); err != nil {
		return fmt.Errorf("%w: %v", ErrDurability, err)
	}
	return nil
}

// applyWALRecord replays one log record onto the system. Replay is
// idempotent: records whose effect is already present (restored from
// the snapshot, or applied by an earlier pass) are silently skipped,
// so recovery can always replay the full surviving tail. A body that
// fails to decode aborts recovery — the framing CRC already passed, so
// this is a version mismatch, not corruption.
func (sys *System) applyWALRecord(typ byte, body []byte) error {
	switch typ {
	case walRecVP, walRecVPTrusted:
		p, err := vp.Unmarshal(body)
		if err != nil {
			return fmt.Errorf("VP record: %w", err)
		}
		p.Trusted = typ == walRecVPTrusted
		// Duplicates and validation rejections replay their original
		// outcome; neither is an error here.
		sys.store.PutReplay(p)
	case walRecVPBatch:
		records, err := vp.SplitBatch(body, maxBatchRecords)
		if err != nil {
			return fmt.Errorf("batch record: %w", err)
		}
		for _, rec := range records {
			p, err := vp.Unmarshal(rec)
			if err != nil {
				continue // rejected on the live path too
			}
			sys.store.PutReplay(p)
		}
	case walRecEvidenceOpen:
		site, minute, units, ids, err := decodeEvidenceOpen(body)
		if err != nil {
			return err
		}
		sys.evidence.Open(site, minute, ids, units) // merge is idempotent
	case walRecEvidenceDeliver:
		id, chunks, err := decodeEvidenceDeliver(body)
		if err != nil {
			return err
		}
		sys.evidence.ReplayDeliver(id, chunks)
	case walRecEvidencePayout:
		id, remaining, err := decodeEvidencePayout(body)
		if err != nil {
			return err
		}
		sys.evidence.ReplayPayout(id, remaining)
	case walRecRedeem:
		desk, cash, err := decodeRedeem(body)
		if err != nil {
			return err
		}
		// Double spends and foreign-key signatures replay to a no-op.
		if desk == redeemDeskEvidence {
			sys.evidence.Redeem(cash)
		} else {
			sys.bank.Redeem(cash)
		}
	default:
		return fmt.Errorf("unknown WAL record type %d", typ)
	}
	return nil
}

// Redeem desks for walRecRedeem records.
const (
	redeemDeskBank     byte = 0
	redeemDeskEvidence byte = 1
)

// System implements evidence.Journal: the evidence service calls these
// at each commit point and only acknowledges once the record is
// durable. All four are no-ops on a non-durable system.

// JournalOpen logs a solicitation posting.
func (sys *System) JournalOpen(site geo.Rect, minute int64, units int, ids []vd.VPID) error {
	return sys.journalCommitted(walRecEvidenceOpen, encodeEvidenceOpen(site, minute, units, ids))
}

// JournalDeliver logs an accepted delivery's bytes.
func (sys *System) JournalDeliver(id vd.VPID, chunks [][]byte) error {
	return sys.journalCommitted(walRecEvidenceDeliver, encodeEvidenceDeliver(id, chunks))
}

// JournalPayout logs the entitlement remaining after a payout debit.
func (sys *System) JournalPayout(id vd.VPID, remaining int) error {
	return sys.journalCommitted(walRecEvidencePayout, encodeEvidencePayout(id, remaining))
}

// JournalRedeem logs a cash unit burned at the evidence desk.
func (sys *System) JournalRedeem(c *reward.Cash) error {
	return sys.journalCommitted(walRecRedeem, encodeRedeem(redeemDeskEvidence, c))
}

// Record body codecs. docs/persistence-format.md specifies each layout;
// the decoders treat the body as untrusted (FuzzWALReplay drives them),
// bounding every allocation by the bytes actually present.

func encodeEvidenceOpen(site geo.Rect, minute int64, units int, ids []vd.VPID) []byte {
	out := make([]byte, 0, 4*8+8+4+4+len(ids)*vd.HashSize)
	for _, f := range []float64{site.Min.X, site.Min.Y, site.Max.X, site.Max.Y} {
		out = binary.BigEndian.AppendUint64(out, math.Float64bits(f))
	}
	out = binary.BigEndian.AppendUint64(out, uint64(minute))
	out = binary.BigEndian.AppendUint32(out, uint32(units))
	out = binary.BigEndian.AppendUint32(out, uint32(len(ids)))
	for _, id := range ids {
		out = append(out, id[:]...)
	}
	return out
}

func decodeEvidenceOpen(b []byte) (site geo.Rect, minute int64, units int, ids []vd.VPID, err error) {
	const fixed = 4*8 + 8 + 4 + 4
	if len(b) < fixed {
		return site, 0, 0, nil, errors.New("evidence-open record truncated")
	}
	var coords [4]float64
	for i := range coords {
		coords[i] = math.Float64frombits(binary.BigEndian.Uint64(b[i*8:]))
	}
	site = geo.NewRect(geo.Pt(coords[0], coords[1]), geo.Pt(coords[2], coords[3]))
	minute = int64(binary.BigEndian.Uint64(b[32:]))
	units = int(binary.BigEndian.Uint32(b[40:]))
	count := binary.BigEndian.Uint32(b[44:])
	rest := b[fixed:]
	if uint64(count)*vd.HashSize != uint64(len(rest)) {
		return site, 0, 0, nil, errors.New("evidence-open record id count mismatch")
	}
	ids = make([]vd.VPID, count)
	for i := range ids {
		copy(ids[i][:], rest[i*vd.HashSize:])
	}
	return site, minute, units, ids, nil
}

func encodeEvidenceDeliver(id vd.VPID, chunks [][]byte) []byte {
	size := vd.HashSize + 4
	for _, c := range chunks {
		size += 4 + len(c)
	}
	out := make([]byte, 0, size)
	out = append(out, id[:]...)
	out = binary.BigEndian.AppendUint32(out, uint32(len(chunks)))
	for _, c := range chunks {
		out = binary.BigEndian.AppendUint32(out, uint32(len(c)))
		out = append(out, c...)
	}
	return out
}

func decodeEvidenceDeliver(b []byte) (id vd.VPID, chunks [][]byte, err error) {
	if len(b) < vd.HashSize+4 {
		return id, nil, errors.New("evidence-deliver record truncated")
	}
	copy(id[:], b)
	count := binary.BigEndian.Uint32(b[vd.HashSize:])
	b = b[vd.HashSize+4:]
	if count > vd.SegmentSeconds {
		return id, nil, fmt.Errorf("evidence-deliver record claims %d chunks", count)
	}
	chunks = make([][]byte, 0, count)
	for i := uint32(0); i < count; i++ {
		if len(b) < 4 {
			return id, nil, errors.New("evidence-deliver chunk truncated")
		}
		n := binary.BigEndian.Uint32(b)
		b = b[4:]
		if uint64(n) > uint64(len(b)) {
			return id, nil, fmt.Errorf("evidence-deliver chunk claims %d bytes, %d remain", n, len(b))
		}
		chunks = append(chunks, append([]byte(nil), b[:n]...))
		b = b[n:]
	}
	if len(b) != 0 {
		return id, nil, errors.New("evidence-deliver record has trailing bytes")
	}
	return id, chunks, nil
}

func encodeEvidencePayout(id vd.VPID, remaining int) []byte {
	out := make([]byte, 0, vd.HashSize+4)
	out = append(out, id[:]...)
	return binary.BigEndian.AppendUint32(out, uint32(remaining))
}

func decodeEvidencePayout(b []byte) (id vd.VPID, remaining int, err error) {
	if len(b) != vd.HashSize+4 {
		return id, 0, errors.New("evidence-payout record malformed")
	}
	copy(id[:], b)
	return id, int(binary.BigEndian.Uint32(b[vd.HashSize:])), nil
}

func encodeRedeem(desk byte, c *reward.Cash) []byte {
	sig := c.Sig.Bytes()
	out := make([]byte, 0, 1+4+len(c.M)+4+len(sig))
	out = append(out, desk)
	out = binary.BigEndian.AppendUint32(out, uint32(len(c.M)))
	out = append(out, c.M...)
	out = binary.BigEndian.AppendUint32(out, uint32(len(sig)))
	out = append(out, sig...)
	return out
}

func decodeRedeem(b []byte) (desk byte, c *reward.Cash, err error) {
	if len(b) < 1+4 {
		return 0, nil, errors.New("redeem record truncated")
	}
	desk = b[0]
	b = b[1:]
	mLen := binary.BigEndian.Uint32(b)
	b = b[4:]
	if uint64(mLen) > uint64(len(b)) {
		return 0, nil, errors.New("redeem record message truncated")
	}
	m := append([]byte(nil), b[:mLen]...)
	b = b[mLen:]
	if len(b) < 4 {
		return 0, nil, errors.New("redeem record signature truncated")
	}
	sigLen := binary.BigEndian.Uint32(b)
	b = b[4:]
	if uint64(sigLen) != uint64(len(b)) {
		return 0, nil, errors.New("redeem record signature length mismatch")
	}
	return desk, &reward.Cash{M: m, Sig: new(big.Int).SetBytes(b)}, nil
}

// DurabilityStats describe the durable runtime for GET /v1/stats.
type DurabilityStats struct {
	// Enabled reports whether the system runs with a WAL.
	Enabled bool
	// AppendedLSN and SyncedLSN are the log watermarks.
	AppendedLSN, SyncedLSN uint64
	// SnapshotLSN is the LSN covered by the newest snapshot.
	SnapshotLSN uint64
	// Snapshots counts snapshots written this process lifetime.
	Snapshots int
	// Replayed counts WAL records replayed at the last recovery.
	Replayed int
	// Fsyncs counts group-commit fsyncs; FsyncTotalMS is their
	// cumulative wall time in milliseconds.
	Fsyncs       int64
	FsyncTotalMS float64
	// SnapshotTotalMS and LastSnapshotMS are the cumulative and
	// most-recent Checkpoint wall times in milliseconds.
	SnapshotTotalMS float64
	LastSnapshotMS  float64
	// LastError is the most recent background durability failure
	// (empty when healthy).
	LastError string
}

// DurabilityStatsSnapshot reads the durable runtime's counters; the
// zero value on a non-durable system.
func (sys *System) DurabilityStatsSnapshot() DurabilityStats {
	if sys.wal == nil {
		return DurabilityStats{}
	}
	d := sys.durable
	d.mu.Lock()
	st := DurabilityStats{
		Enabled:         true,
		SnapshotLSN:     d.snapshotLSN,
		Snapshots:       d.snapshots,
		Replayed:        d.replayed,
		SnapshotTotalMS: float64(d.snapshotTime) / float64(time.Millisecond),
		LastSnapshotMS:  float64(d.lastSnapshotTime) / float64(time.Millisecond),
	}
	if d.lastErr != nil {
		st.LastError = d.lastErr.Error()
	}
	d.mu.Unlock()
	st.AppendedLSN = sys.wal.AppendedLSN()
	st.SyncedLSN = sys.wal.SyncedLSN()
	st.Fsyncs = sys.wal.fsyncs.Load()
	st.FsyncTotalMS = float64(sys.wal.fsyncNS.Load()) / float64(time.Millisecond)
	return st
}
