package server

import (
	"bytes"
	"path/filepath"
	"testing"

	"viewmap/internal/geo"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	s := NewStore()
	trusted := fabricate(t, 0, 41)
	trusted.Trusted = true
	profiles := []int64{42, 43, 44}
	s.Put(trusted)
	for _, seed := range profiles {
		if err := s.Put(fabricate(t, seed%2, seed)); err != nil {
			t.Fatal(err)
		}
	}

	var buf bytes.Buffer
	if err := s.SaveTo(&buf); err != nil {
		t.Fatal(err)
	}
	restored := NewStore()
	n, err := restored.LoadFrom(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if n != 4 {
		t.Fatalf("loaded %d records, want 4", n)
	}
	if restored.Len() != s.Len() {
		t.Errorf("Len = %d, want %d", restored.Len(), s.Len())
	}
	if restored.TrustedCount() != 1 {
		t.Errorf("TrustedCount = %d, want 1", restored.TrustedCount())
	}
	got, ok := restored.Get(trusted.ID())
	if !ok || !got.Trusted {
		t.Error("trusted flag must survive the round trip")
	}
	// Profiles still answer linkage queries after the round trip.
	if len(restored.Minute(0)) != len(s.Minute(0)) {
		t.Error("minute index must survive the round trip")
	}
}

func TestLoadFromRejectsGarbage(t *testing.T) {
	s := NewStore()
	if _, err := s.LoadFrom(bytes.NewReader([]byte("not a database"))); err == nil {
		t.Error("bad magic should fail")
	}
	// Truncated stream after a valid header.
	var buf bytes.Buffer
	good := NewStore()
	good.Put(fabricate(t, 0, 50))
	if err := good.SaveTo(&buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	if _, err := s.LoadFrom(bytes.NewReader(data[:len(data)-10])); err == nil {
		t.Error("truncated stream should fail")
	}
}

func TestLoadFromSkipsDuplicates(t *testing.T) {
	s := NewStore()
	s.Put(fabricate(t, 0, 60))
	var buf bytes.Buffer
	if err := s.SaveTo(&buf); err != nil {
		t.Fatal(err)
	}
	// Loading into the same warm store is a no-op, not an error.
	n, err := s.LoadFrom(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if n != 0 {
		t.Errorf("loaded %d duplicates, want 0", n)
	}
}

func TestSaveLoadFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "vpdb.bin")
	s := NewStore()
	s.Put(fabricate(t, 0, 70))
	if err := s.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	restored := NewStore()
	n, err := restored.LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Errorf("loaded %d, want 1", n)
	}
	if _, err := restored.LoadFile(filepath.Join(dir, "missing.bin")); err == nil {
		t.Error("missing file should fail")
	}
}

func TestInvestigatePeriod(t *testing.T) {
	sys, err := NewSystem(Config{AuthorityToken: "tok", Bank: sharedBankInternal(t)})
	if err != nil {
		t.Fatal(err)
	}
	// Minute 0 has a trusted VP and a civilian; minute 1 has only a
	// civilian (no viewmap possible).
	trusted := fabricate(t, 0, 80)
	trusted.Trusted = true
	sys.Store().Put(trusted)
	sys.Store().Put(fabricate(t, 0, 81))
	sys.Store().Put(fabricate(t, 1, 82))

	site := geo.RectAround(geo.Pt(300, 80), 400)
	reports, err := sys.InvestigatePeriod("tok", site, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) != 2 {
		t.Fatalf("reports = %d, want 2", len(reports))
	}
	if reports[0] == nil {
		t.Error("minute 0 should produce a report")
	}
	if reports[1] != nil {
		t.Error("minute 1 has no trusted VP; report should be nil")
	}

	if _, err := sys.InvestigatePeriod("bad", site, 0, 1); err != ErrUnauthorized {
		t.Error("bad token should be rejected")
	}
	if _, err := sys.InvestigatePeriod("tok", site, 2, 1); err == nil {
		t.Error("empty period should fail")
	}
	if _, err := sys.InvestigatePeriod("tok", site, 0, 100); err == nil {
		t.Error("oversized period should fail")
	}
}
