package server

import (
	"log"
	"net/http"
	"sort"
	"time"

	"viewmap/internal/obs"
)

// HTTP-layer telemetry: the withTelemetry middleware times every
// request into the per-endpoint latency histogram, mints the trace
// that rides the ingest pipeline (burst rings, WAL group commit), and
// emits one structured log line — with the full per-stage span
// breakdown — for requests slower than the configured threshold.
// GET /v1/metrics serves every histogram in Prometheus text format;
// the latency/pipeline blocks of GET /v1/stats serve the same data as
// pre-computed quantiles. docs/observability.md is the catalog.

// knownEndpoints lists the HTTP paths that get their own latency
// histogram; anything else (typos, probes) shares the "other" series,
// so label cardinality is fixed at compile time.
func knownEndpoints() []string {
	return []string{
		"/v1/vp",
		"/v1/vp/batch",
		"/v1/vp/trusted",
		"/v1/investigate",
		"/v1/investigate/period",
		"/v1/investigate/report",
		"/v1/investigate/watch",
		"/v1/solicitations",
		"/v1/video",
		"/v1/rewards",
		"/v1/reward/claim",
		"/v1/reward/blind",
		"/v1/reward/redeem",
		"/v1/bank",
		"/v1/evidence/solicit",
		"/v1/evidence/solicitations",
		"/v1/evidence/deliver",
		"/v1/evidence/payout",
		"/v1/evidence/redeem",
		"/v1/evidence/video",
		"/v1/stats",
		"/v1/metrics",
	}
}

// withTelemetry wraps the whole HTTP surface (outside admission, so
// queueing shows up in the request latency): it mints a trace, hands
// it to the handler through the request context, times the request
// into the endpoint histogram, and logs slow requests with their span
// breakdown. With metrics disabled and no slow-request threshold the
// middleware is two branch tests per request.
func withTelemetry(sys *System, next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if !sys.metrics.Enabled() && sys.slowRequest <= 0 {
			next.ServeHTTP(w, r)
			return
		}
		tr := obs.StartTrace()
		next.ServeHTTP(w, r.WithContext(obs.WithTrace(r.Context(), tr)))
		elapsed := time.Since(tr.Start())
		sys.metrics.Endpoint(r.URL.Path).Record(int64(elapsed))
		if sys.slowRequest > 0 && elapsed >= sys.slowRequest {
			log.Printf("slow-request trace=%d method=%s path=%s elapsed=%s spans=%q",
				tr.ID(), r.Method, r.URL.Path, elapsed.Round(time.Microsecond), tr.Spans())
		}
	})
}

// EndpointLatency is one endpoint's request-latency summary in
// GET /v1/stats (quantiles are bucket upper bounds; see obs.Quantile
// for the ≤2× bracket they carry).
type EndpointLatency struct {
	// Endpoint is the request path ("other" for unregistered paths).
	Endpoint string
	// Requests counts recorded requests.
	Requests uint64
	// P50 and P99 are latency quantile estimates.
	P50, P99 time.Duration
}

// LatencyStats summarizes the per-endpoint latency histograms, sorted
// by path; empty when metrics are disabled.
func (sys *System) LatencyStats() []EndpointLatency {
	snaps := sys.metrics.EndpointSnapshots()
	paths := make([]string, 0, len(snaps))
	for p := range snaps {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	out := make([]EndpointLatency, 0, len(paths))
	for _, p := range paths {
		s := snaps[p]
		out = append(out, EndpointLatency{
			Endpoint: p,
			Requests: s.Count,
			P50:      time.Duration(s.Quantile(0.50)),
			P99:      time.Duration(s.Quantile(0.99)),
		})
	}
	return out
}

// StageLatency is one ingest-pipeline stage's summary in GET /v1/stats.
type StageLatency struct {
	// Stage is the stage label (obs.Stage.String).
	Stage string
	// Count is the number of recorded spans.
	Count uint64
	// P50 and P99 are span quantile estimates.
	P50, P99 time.Duration
	// Total is the cumulative recorded span time.
	Total time.Duration
}

// WALBatchStats summarizes the group-commit batch-size histogram.
type WALBatchStats struct {
	// Commits counts group-commit fsyncs observed.
	Commits uint64
	// P50Records and P99Records are batch-size quantile estimates
	// (records made durable per fsync).
	P50Records, P99Records uint64
}

// PipelineStats is the ingest-pipeline block of GET /v1/stats.
type PipelineStats struct {
	// Stages holds one summary per pipeline stage, in pipeline order.
	Stages []StageLatency
	// WALCommitBatch summarizes records per group-commit fsync.
	WALCommitBatch WALBatchStats
}

// PipelineStatsSnapshot summarizes the per-stage histograms; the zero
// value when metrics are disabled.
func (sys *System) PipelineStatsSnapshot() PipelineStats {
	var out PipelineStats
	if !sys.metrics.Enabled() {
		return out
	}
	snaps := sys.metrics.StageSnapshots()
	out.Stages = make([]StageLatency, 0, len(snaps))
	for i, s := range snaps {
		out.Stages = append(out.Stages, StageLatency{
			Stage: obs.Stage(i).String(),
			Count: s.Count,
			P50:   time.Duration(s.Quantile(0.50)),
			P99:   time.Duration(s.Quantile(0.99)),
			Total: time.Duration(s.Sum),
		})
	}
	wb := sys.metrics.WALBatchSnapshot()
	out.WALCommitBatch = WALBatchStats{
		Commits:    wb.Count,
		P50Records: wb.Quantile(0.50),
		P99Records: wb.Quantile(0.99),
	}
	return out
}

// Metrics returns the system's observability registry (always non-nil;
// disabled under Config.DisableMetrics). Exposed for the exposition
// handler and tests.
func (sys *System) Metrics() *obs.Registry {
	return sys.metrics
}
