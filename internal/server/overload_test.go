package server

// Overload-discipline tests: per-class admission isolation (a full
// ingest queue sheds uploads with 429 + Retry-After while the
// investigate gate keeps admitting), exact shed accounting in
// /v1/stats, and the WAL fsync fault-injection seam the scenario
// engine's slow-disk plan rides.

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"viewmap/internal/core"
	"viewmap/internal/vp"
)

func TestClassifyEndpoint(t *testing.T) {
	cases := []struct {
		path string
		want endpointClass
	}{
		{"/v1/vp", classIngest},
		{"/v1/vp/batch", classIngest},
		{"/v1/vp/trusted", classIngest},
		{"/v1/video", classIngest},
		{"/v1/investigate", classInvestigate},
		{"/v1/investigate/period", classInvestigate},
		{"/v1/investigate/report", classInvestigate},
		{"/v1/evidence/solicit", classInvestigate},
		{"/v1/evidence/video", classInvestigate},
		{"/v1/evidence/board", classEvidence},
		{"/v1/evidence/deliver", classEvidence},
		{"/v1/reward/claim", classEvidence},
		{"/v1/reward/withdraw", classEvidence},
		{"/v1/solicitations", classEvidence},
		{"/v1/rewards", classEvidence},
		{"/v1/stats", classNone},
		{"/v1/metrics", classNone},
		{"/v1/bank", classNone},
		{"/unknown", classNone},
	}
	for _, c := range cases {
		if got := classifyEndpoint(c.path); got != c.want {
			t.Errorf("classifyEndpoint(%q) = %v, want %v", c.path, got, c.want)
		}
	}
}

// TestAdmissionGateQueueAndShed drives one gate through its states:
// slots fill, the bounded queue holds the overflow, everything beyond
// sheds, and releases drain the queue in order.
func TestAdmissionGateQueueAndShed(t *testing.T) {
	g := newAdmissionGate(1, 1)
	if !g.tryAcquire() {
		t.Fatal("first acquire should take the slot")
	}
	// Second caller queues (blocks); wait until it is visibly queued.
	acquired := make(chan struct{})
	go func() {
		if !g.tryAcquire() {
			t.Error("queued acquire should eventually succeed")
		}
		close(acquired)
	}()
	deadline := time.Now().Add(5 * time.Second)
	for g.queued.Load() != 1 {
		if time.Now().After(deadline) {
			t.Fatal("second acquire never queued")
		}
		time.Sleep(time.Millisecond)
	}
	// Third caller finds slot and queue full: shed.
	if g.tryAcquire() {
		t.Fatal("acquire beyond slots+queue must shed")
	}
	s := g.snapshot()
	if s.Shed != 1 || s.Admitted != 1 || s.Queued != 1 || s.Active != 1 {
		t.Fatalf("snapshot %+v", s)
	}
	g.release()
	select {
	case <-acquired:
	case <-time.After(5 * time.Second):
		t.Fatal("release did not drain the queue")
	}
	g.release()
	s = g.snapshot()
	if s.Admitted != 2 || s.Active != 0 || s.Queued != 0 {
		t.Fatalf("drained snapshot %+v", s)
	}
}

// TestOverloadShedsUploadsAdmitsInvestigations pins the satellite
// acceptance behavior over live HTTP: with the ingest gate full to the
// queue, an upload is answered 429 with the configured Retry-After
// while an authority investigation on the very same server is admitted
// — and the stats endpoint (ungated) reports the shed exactly.
func TestOverloadShedsUploadsAdmitsInvestigations(t *testing.T) {
	sys, err := NewSystem(Config{
		AuthorityToken: "t", Bank: durBank(t),
		Overload: OverloadConfig{IngestSlots: 1, IngestQueue: 1, RetryAfter: 3 * time.Second},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	uploadMinute(t, 0, 8, 42, sys)
	ts := httptest.NewServer(Handler(sys))
	defer ts.Close()

	// Fill the ingest gate from the inside: one active holder, one
	// queued waiter.
	g := sys.overload.ingest
	if !g.tryAcquire() {
		t.Fatal("priming acquire failed")
	}
	release := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		if g.tryAcquire() {
			<-release
			g.release()
		}
	}()
	deadline := time.Now().Add(5 * time.Second)
	for g.queued.Load() != 1 {
		if time.Now().After(deadline) {
			t.Fatal("waiter never queued")
		}
		time.Sleep(time.Millisecond)
	}

	// An upload now sheds with 429 and the 3 s Retry-After hint.
	resp, err := http.Post(ts.URL+"/v1/vp/batch", "application/octet-stream", strings.NewReader("x"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("upload during overload: status %d, want 429", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "3" {
		t.Fatalf("Retry-After %q, want \"3\"", ra)
	}

	// An investigation during the same overload is admitted: its gate
	// is isolated from ingest.
	body := fmt.Sprintf(`{"site":{"minX":%f,"minY":%f,"maxX":%f,"maxY":%f},"minute":0}`,
		durSite.Min.X, durSite.Min.Y, durSite.Max.X, durSite.Max.Y)
	req, _ := http.NewRequest("POST", ts.URL+"/v1/investigate/report", strings.NewReader(body))
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(authorityHeader, "t")
	iresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	iresp.Body.Close()
	if iresp.StatusCode != http.StatusOK {
		t.Fatalf("investigation during ingest overload: status %d, want 200", iresp.StatusCode)
	}

	// The ungated stats endpoint reports the shed while the gate is
	// still full.
	sresp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	var stats statsResponse
	if err := json.NewDecoder(sresp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	sresp.Body.Close()
	if stats.Overload.Ingest.Shed != 1 {
		t.Fatalf("ingest shed = %d, want 1", stats.Overload.Ingest.Shed)
	}
	if stats.Overload.Investigate.Shed != 0 || stats.Overload.Investigate.Admitted == 0 {
		t.Fatalf("investigate gate %+v", stats.Overload.Investigate)
	}
	if stats.Overload.RetryAfterSeconds != 3 {
		t.Fatalf("retryAfterSeconds = %d", stats.Overload.RetryAfterSeconds)
	}

	// Draining the gate readmits uploads.
	close(release)
	g.release()
	wg.Wait()
	profiles, err := core.SynthesizeLegitimate(core.SynthConfig{N: 3, Area: durArea, Minute: 1, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	uresp, err := http.Post(ts.URL+"/v1/vp/batch", "application/octet-stream",
		strings.NewReader(string(vp.MarshalBatch(profiles))))
	if err != nil {
		t.Fatal(err)
	}
	uresp.Body.Close()
	if uresp.StatusCode != http.StatusOK {
		t.Fatalf("upload after drain: status %d, want 200", uresp.StatusCode)
	}
}

// TestShedCountersMatchRejected429s storms a tight ingest gate with
// concurrent uploads and requires exact accounting: the server's shed
// counter equals the 429s the callers observed, and admitted equals
// the rest.
func TestShedCountersMatchRejected429s(t *testing.T) {
	sys, err := NewSystem(Config{
		AuthorityToken: "t", Bank: durBank(t),
		Overload: OverloadConfig{IngestSlots: 1, IngestQueue: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	ts := httptest.NewServer(Handler(sys))
	defer ts.Close()

	const n = 32
	var seen429, other atomic.Uint64
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := http.Post(ts.URL+"/v1/vp", "application/octet-stream", strings.NewReader("garbage"))
			if err != nil {
				t.Error(err)
				return
			}
			resp.Body.Close()
			if resp.StatusCode == http.StatusTooManyRequests {
				seen429.Add(1)
			} else {
				other.Add(1)
			}
		}()
	}
	wg.Wait()
	ov := sys.OverloadStatsSnapshot()
	if ov.Ingest.Shed != seen429.Load() {
		t.Fatalf("server shed %d, clients saw %d x 429", ov.Ingest.Shed, seen429.Load())
	}
	if ov.Ingest.Admitted != other.Load() {
		t.Fatalf("server admitted %d, clients completed %d", ov.Ingest.Admitted, other.Load())
	}
	if ov.Ingest.Admitted+ov.Ingest.Shed != n {
		t.Fatalf("admitted %d + shed %d != %d requests", ov.Ingest.Admitted, ov.Ingest.Shed, n)
	}
}

// TestDurableFsyncHook pins the fault-injection seam: a durable system
// built with a custom Fsync routes every group-commit sync through the
// hook, and the hook runs before the upload acks — the slow-disk
// scenario slows acks but can never skip durability.
func TestDurableFsyncHook(t *testing.T) {
	dir := t.TempDir()
	var syncs atomic.Int64
	sys, err := OpenDurable(Config{AuthorityToken: "t", Bank: durBank(t)}, DurabilityConfig{
		WALPath:           filepath.Join(dir, "ingest.wal"),
		SnapshotInterval:  0,
		RetentionInterval: time.Hour,
		Fsync: func(f *os.File) error {
			syncs.Add(1)
			return f.Sync()
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()

	before := syncs.Load()
	uploadMinute(t, 0, 6, 11, sys)
	afterFirst := syncs.Load()
	if afterFirst <= before {
		t.Fatal("upload acked without the fsync hook running")
	}
	uploadMinute(t, 1, 6, 12, sys)
	if syncs.Load() <= afterFirst {
		t.Fatal("second minute acked without a further fsync")
	}
}
