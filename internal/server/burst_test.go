package server

import (
	"bytes"
	"errors"
	"reflect"
	"testing"

	"viewmap/internal/core"
	"viewmap/internal/geo"
	"viewmap/internal/vd"
	"viewmap/internal/vp"
)

// Tests for the burst ingest pipeline (burst.go): equivalence with the
// sequential path, worker shutdown, eviction races, and counter
// parity. The concurrency tests here are the ones `make race` leans
// on for the ring and worker lifecycle.

// minuteIDs returns the minute's slab identifiers in ingest order.
func minuteIDs(s *Store, m int64) []vd.VPID {
	var out []vd.VPID
	for _, p := range s.Minute(m) {
		out = append(out, p.ID())
	}
	return out
}

// edgeSet flattens a viewmap's adjacency into identifier pairs, so
// graphs can be compared across stores with different ingest orders.
func edgeSet(vm *core.Viewmap) map[[2]vd.VPID]bool {
	set := make(map[[2]vd.VPID]bool)
	for i, nbrs := range vm.Adj {
		for _, j := range nbrs {
			a, b := vm.Profiles[i].ID(), vm.Profiles[j].ID()
			if bytes.Compare(a[:], b[:]) > 0 {
				a, b = b, a
			}
			set[[2]vd.VPID{a, b}] = true
		}
	}
	return set
}

// TestBurstSequentialEquivalence is the tentpole's correctness pin:
// one System ingests a multi-minute campaign as single uploads, the
// other as one batched burst (with an intra-burst duplicate). Slab
// order, viewmap members, edges, and the full per-VP investigation
// report must be identical.
func TestBurstSequentialEquivalence(t *testing.T) {
	const minutes, perMinute = 3, 25
	bank := sharedBankInternal(t)
	sysSeq, err := NewSystem(Config{AuthorityToken: "tok", Bank: bank})
	if err != nil {
		t.Fatal(err)
	}
	sysBurst, err := NewSystem(Config{AuthorityToken: "tok", Bank: bank})
	if err != nil {
		t.Fatal(err)
	}

	// One trusted seed per minute, identically on both systems.
	for m := int64(0); m < minutes; m++ {
		seed := fabricate(t, m, 9000+m).Marshal()
		if err := sysSeq.UploadTrustedVP("tok", seed); err != nil {
			t.Fatal(err)
		}
		if err := sysBurst.UploadTrustedVP("tok", seed); err != nil {
			t.Fatal(err)
		}
	}

	var records [][]byte
	for m := int64(0); m < minutes; m++ {
		for i := int64(0); i < perMinute; i++ {
			records = append(records, fabricate(t, m, m*1000+i).Marshal())
		}
	}
	// Intra-burst duplicate: the first record rides along twice.
	records = append(records, records[0])

	seqStored, seqDup := 0, 0
	for _, rec := range records {
		switch err := sysSeq.UploadVP(rec); {
		case err == nil:
			seqStored++
		case errors.Is(err, ErrDuplicate):
			seqDup++
		default:
			t.Fatal(err)
		}
	}
	res, err := sysBurst.UploadVPBatch(encodeBatchWire(records))
	if err != nil {
		t.Fatal(err)
	}
	if res.Stored != seqStored || res.Duplicates != seqDup || res.Rejected != 0 {
		t.Fatalf("burst result = %+v, sequential stored %d / %d duplicates", res, seqStored, seqDup)
	}

	site := geo.NewRect(geo.Pt(-100, -100), geo.Pt(700, 100))
	for m := int64(0); m < minutes; m++ {
		if a, b := minuteIDs(sysSeq.Store(), m), minuteIDs(sysBurst.Store(), m); !reflect.DeepEqual(a, b) {
			t.Fatalf("minute %d slab order diverges: %d vs %d profiles", m, len(a), len(b))
		}
		va, err := sysSeq.Store().ViewmapFor(site, m)
		if err != nil {
			t.Fatal(err)
		}
		vb, err := sysBurst.Store().ViewmapFor(site, m)
		if err != nil {
			t.Fatal(err)
		}
		if va.Len() != vb.Len() || va.NumEdges() != vb.NumEdges() {
			t.Fatalf("minute %d: %d members / %d edges sequential, %d / %d burst",
				m, va.Len(), va.NumEdges(), vb.Len(), vb.NumEdges())
		}
		for i := range va.Profiles {
			if va.Profiles[i].ID() != vb.Profiles[i].ID() {
				t.Fatalf("minute %d member order diverges at node %d", m, i)
			}
			if !reflect.DeepEqual(va.Adj[i], vb.Adj[i]) {
				t.Fatalf("minute %d adjacency diverges at node %d: %v vs %v", m, i, va.Adj[i], vb.Adj[i])
			}
		}
		ra, err := sysSeq.InvestigateReport("tok", site, m)
		if err != nil {
			t.Fatal(err)
		}
		rb, err := sysBurst.InvestigateReport("tok", site, m)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(ra, rb) {
			t.Fatalf("minute %d investigation reports diverge:\n%+v\n%+v", m, ra, rb)
		}
	}
	sysSeq.Close()
	sysBurst.Close()
}

// TestBurstConcurrentEquivalence races several batch submitters into
// the same minutes and checks the resulting graphs against a
// sequentially built reference. Ingest order differs, so the
// comparison surface is the order-independent one: member identifier
// sets and edge sets. Run under -race in CI.
func TestBurstConcurrentEquivalence(t *testing.T) {
	const minutes, perMinute, writers = 2, 24, 4
	ref := NewStore()
	conc := NewStore()
	var all []*vp.Profile
	for m := int64(0); m < minutes; m++ {
		seed := fabricate(t, m, 9100+m)
		seed.Trusted = true
		all = append(all, seed)
		for i := int64(0); i < perMinute; i++ {
			all = append(all, fabricate(t, m, m*1000+i))
		}
	}
	for _, p := range all {
		if err := ref.Put(p); err != nil {
			t.Fatal(err)
		}
	}
	// Deal the same profiles round-robin to concurrent batchers. The
	// profiles are shared with ref (profiles are immutable once built).
	chunks := make([][]*vp.Profile, writers)
	for i, p := range all {
		chunks[i%writers] = append(chunks[i%writers], p)
	}
	done := make(chan BatchResult, writers)
	for _, chunk := range chunks {
		go func(chunk []*vp.Profile) { done <- conc.PutBatch(chunk) }(chunk)
	}
	stored := 0
	for range chunks {
		r := <-done
		stored += r.Stored
		if r.Rejected != 0 || r.Duplicates != 0 {
			t.Errorf("concurrent batch result = %+v, want clean", r)
		}
	}
	if stored != len(all) || conc.Len() != len(all) {
		t.Fatalf("stored %d (store holds %d), want %d", stored, conc.Len(), len(all))
	}

	site := geo.NewRect(geo.Pt(-100, -100), geo.Pt(700, 100))
	for m := int64(0); m < minutes; m++ {
		va, err := ref.ViewmapFor(site, m)
		if err != nil {
			t.Fatal(err)
		}
		vb, err := conc.ViewmapFor(site, m)
		if err != nil {
			t.Fatal(err)
		}
		ids := func(vm *core.Viewmap) map[vd.VPID]bool {
			set := make(map[vd.VPID]bool)
			for _, p := range vm.Profiles {
				set[p.ID()] = true
			}
			return set
		}
		if !reflect.DeepEqual(ids(va), ids(vb)) {
			t.Fatalf("minute %d member sets diverge", m)
		}
		if !reflect.DeepEqual(edgeSet(va), edgeSet(vb)) {
			t.Fatalf("minute %d edge sets diverge (%d vs %d edges)", m, va.NumEdges(), vb.NumEdges())
		}
	}
	ref.Close()
	conc.Close()
}

// TestStoreCloseStopsIngest pins the shutdown contract: Close drains
// and stops every link worker, later ingest fails without leaking
// identifier claims, and Close is idempotent. A non-durable System's
// Close must propagate to the store.
func TestStoreCloseStopsIngest(t *testing.T) {
	s := NewStore()
	if err := s.Put(fabricate(t, 0, 1)); err != nil {
		t.Fatal(err)
	}
	s.Close()
	s.Close() // idempotent

	p := fabricate(t, 0, 2)
	if err := s.Put(p); !errors.Is(err, errStoreClosed) {
		t.Fatalf("Put after Close = %v, want errStoreClosed", err)
	}
	if s.hasID(p.ID()) {
		t.Error("failed Put left the identifier claimed")
	}
	if res := s.PutBatch([]*vp.Profile{fabricate(t, 1, 3)}); res.Rejected != 1 || res.Stored != 0 {
		t.Errorf("PutBatch after Close = %+v, want 1 rejected", res)
	}
	// Reads keep working.
	if s.Len() != 1 || len(s.Minute(0)) != 1 {
		t.Errorf("post-Close reads broken: Len=%d Minute(0)=%d", s.Len(), len(s.Minute(0)))
	}
	// Every worker has exited.
	s.mu.RLock()
	defer s.mu.RUnlock()
	for m, sh := range s.shards {
		select {
		case <-sh.workerDone:
		default:
			t.Errorf("minute %d link worker still running after Close", m)
		}
	}

	sys, err := NewSystem(Config{AuthorityToken: "tok", Bank: sharedBankInternal(t)})
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Close(); err != nil {
		t.Fatal(err)
	}
	if err := sys.Store().Put(fabricate(t, 0, 4)); !errors.Is(err, errStoreClosed) {
		t.Errorf("Put after System.Close = %v, want errStoreClosed", err)
	}
}

// TestEvictDuringBurst races single-profile bursts against repeated
// evictions of their minute: a burst caught by an eviction must be
// retried against the successor shard, never lost and never written
// into the orphan. Run under -race in CI.
func TestEvictDuringBurst(t *testing.T) {
	s := NewStoreWith(StoreConfig{SegmentDir: t.TempDir()})
	const n, evictions = 80, 12
	done := make(chan error, 1)
	go func() {
		for i := 0; i < evictions; i++ {
			if err := s.evictShard(0); err != nil {
				done <- err
				return
			}
		}
		done <- nil
	}()
	for i := int64(0); i < n; i++ {
		p := fabricate(t, 0, i)
		if i == 0 {
			// Trust seed for the viewmap check below; trust survives
			// eviction (the segment file records it).
			p.Trusted = true
		}
		if err := s.Put(p); err != nil {
			t.Fatal(err)
		}
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if s.Len() != n {
		t.Fatalf("store holds %d profiles, want %d", s.Len(), n)
	}
	for i := int64(0); i < n; i++ {
		id := fabricate(t, 0, i).ID()
		if _, ok := s.Get(id); !ok {
			t.Fatalf("profile %d lost across evictions", i)
		}
	}
	// The minute's graph is intact after the final reload: members
	// equal the slab, exactly as a never-evicted shard would serve.
	site := geo.NewRect(geo.Pt(-100, -100), geo.Pt(700, 100))
	vm, err := s.ViewmapFor(site, 0)
	if err != nil {
		t.Fatal(err)
	}
	if vm.Len() != n {
		t.Errorf("reloaded viewmap has %d members, want %d", vm.Len(), n)
	}
	s.Close()
}
