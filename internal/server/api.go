package server

import (
	"encoding/base64"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/big"
	"net/http"
	"net/url"
	"strconv"
	"time"

	"viewmap/internal/anon"
	"viewmap/internal/core"
	"viewmap/internal/evidence"
	"viewmap/internal/geo"
	"viewmap/internal/obs"
	"viewmap/internal/reward"
	"viewmap/internal/vd"
)

// maxUploadBytes bounds request bodies: a VP is ~5 KB, a full 1-minute
// video 50 MB; allow headroom for base64 expansion.
const maxUploadBytes = 100 << 20

// authorityHeader carries the authority token on privileged requests.
const authorityHeader = "X-Viewmap-Authority"

// sessionHeader carries the single-use anonymous session identifier.
// Evidence deliveries and payouts refuse a missing or replayed id.
const sessionHeader = "X-Session"

// Watch-endpoint bounds. A watch holds one of the investigate-class
// admission slots for its whole duration (see overload.go), so the
// stream lifetime is capped: timeoutMs defaults to watchDefaultTimeout
// and is clamped to watchMaxTimeout. Minutes with no resident shard
// cannot be waited on through a commit channel; those are polled at
// watchPollInterval until they materialize.
const (
	watchDefaultTimeout = 30 * time.Second
	watchMaxTimeout     = 60 * time.Second
	watchPollInterval   = 200 * time.Millisecond
)

// Handler returns the system's HTTP API.
//
//	POST /v1/vp                      binary VP upload (anonymous)
//	POST /v1/vp/batch                batched binary VP upload (anonymous)
//	POST /v1/vp/trusted              binary VP upload (authority)
//	POST /v1/investigate             {"site":{...},"minute":N} (authority)
//	POST /v1/investigate/report      {"site":{...},"minute":N} -> per-VP verdicts (authority)
//	GET  /v1/investigate/watch       streamed NDJSON reports on epoch advance (authority)
//	GET  /v1/solicitations           {"ids":["hex",...]}
//	POST /v1/video                   {"id":"hex","chunks":["b64",...]}
//	GET  /v1/rewards                 {"ids":["hex",...]}
//	POST /v1/reward/claim            {"id":"hex","secret":"hex"} -> {"units":N}
//	POST /v1/reward/blind            {"id","secret","blinded":["dec",...]}
//	POST /v1/reward/redeem           {"m":"b64","sig":"dec"}
//	POST /v1/evidence/solicit        {"site","minute","units"} (authority)
//	GET  /v1/evidence/solicitations  {"offers":[{"id","units"},...]}
//	POST /v1/evidence/deliver        {"id","secret","chunks"} (X-Session, single use)
//	POST /v1/evidence/payout         {"id","secret","blinded"} (X-Session, single use)
//	POST /v1/evidence/redeem         {"m":"b64","sig":"dec"}
//	GET  /v1/evidence/video?id=hex   blurred release (authority)
//	GET  /v1/stats                   {"vps":N,...,"ingest":{...},"shards":[...],"retention":{...},"durability":{...},"evidence":{...},"overload":{...},"latency":[...],"pipeline":{...}}
//	GET  /v1/metrics                 Prometheus text exposition (docs/observability.md)
//
// Every endpoint except GET /v1/stats, GET /v1/metrics, and
// GET /v1/bank sits behind a per-class admission gate (overload.go):
// when a class's slots and wait queue are both full the request is
// shed with 429 Too Many Requests and a Retry-After header instead of
// queueing unboundedly. The whole surface is wrapped in withTelemetry
// (telemetry.go), which times every request and traces the slow ones.
func Handler(sys *System) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/vp", func(w http.ResponseWriter, r *http.Request) {
		body, err := io.ReadAll(io.LimitReader(r.Body, maxUploadBytes))
		if err != nil {
			httpError(w, http.StatusBadRequest, err)
			return
		}
		if err := sys.UploadVP(body); err != nil {
			status := http.StatusBadRequest
			if errors.Is(err, ErrDuplicate) {
				status = http.StatusConflict
			}
			httpError(w, status, err)
			return
		}
		w.WriteHeader(http.StatusCreated)
	})
	mux.HandleFunc("POST /v1/vp/batch", func(w http.ResponseWriter, r *http.Request) {
		body, err := io.ReadAll(io.LimitReader(r.Body, maxUploadBytes))
		if err != nil {
			httpError(w, http.StatusBadRequest, err)
			return
		}
		res, err := sys.uploadVPBatch(body, obs.TraceFrom(r.Context()))
		if err != nil {
			httpError(w, http.StatusBadRequest, err)
			return
		}
		writeJSON(w, batchResponse{
			Stored: res.Stored, Duplicates: res.Duplicates, Rejected: res.Rejected,
		})
	})
	mux.HandleFunc("POST /v1/vp/trusted", func(w http.ResponseWriter, r *http.Request) {
		body, err := io.ReadAll(io.LimitReader(r.Body, maxUploadBytes))
		if err != nil {
			httpError(w, http.StatusBadRequest, err)
			return
		}
		if err := sys.UploadTrustedVP(r.Header.Get(authorityHeader), body); err != nil {
			httpError(w, statusFor(err), err)
			return
		}
		w.WriteHeader(http.StatusCreated)
	})
	mux.HandleFunc("POST /v1/investigate", func(w http.ResponseWriter, r *http.Request) {
		var req investigateRequest
		if err := decodeJSON(r, &req); err != nil {
			httpError(w, http.StatusBadRequest, err)
			return
		}
		report, err := sys.Investigate(r.Header.Get(authorityHeader),
			geo.NewRect(geo.Pt(req.Site.MinX, req.Site.MinY), geo.Pt(req.Site.MaxX, req.Site.MaxY)),
			req.Minute)
		if err != nil {
			httpError(w, statusFor(err), err)
			return
		}
		writeJSON(w, investigateResponse{
			Members: report.Members, Edges: report.Edges, InSite: report.InSite,
			Legitimate: encodeIDs(report.Legitimate), NewlySolicited: report.NewlySolicited,
		})
	})
	mux.HandleFunc("POST /v1/investigate/period", func(w http.ResponseWriter, r *http.Request) {
		var req investigatePeriodRequest
		if err := decodeJSON(r, &req); err != nil {
			httpError(w, http.StatusBadRequest, err)
			return
		}
		reports, err := sys.InvestigatePeriod(r.Header.Get(authorityHeader),
			geo.NewRect(geo.Pt(req.Site.MinX, req.Site.MinY), geo.Pt(req.Site.MaxX, req.Site.MaxY)),
			req.FirstMinute, req.LastMinute)
		if err != nil {
			httpError(w, statusFor(err), err)
			return
		}
		out := investigatePeriodResponse{}
		for _, rep := range reports {
			if rep == nil {
				out.Minutes = append(out.Minutes, nil)
				continue
			}
			out.Minutes = append(out.Minutes, &investigateResponse{
				Members: rep.Members, Edges: rep.Edges, InSite: rep.InSite,
				Legitimate: encodeIDs(rep.Legitimate), NewlySolicited: rep.NewlySolicited,
			})
		}
		writeJSON(w, out)
	})
	mux.HandleFunc("POST /v1/investigate/report", func(w http.ResponseWriter, r *http.Request) {
		var req investigateRequest
		if err := decodeJSON(r, &req); err != nil {
			httpError(w, http.StatusBadRequest, err)
			return
		}
		report, err := sys.InvestigateReport(r.Header.Get(authorityHeader),
			geo.NewRect(geo.Pt(req.Site.MinX, req.Site.MinY), geo.Pt(req.Site.MaxX, req.Site.MaxY)),
			req.Minute)
		if err != nil {
			httpError(w, statusFor(err), err)
			return
		}
		out := reportResponse{
			Members: report.Members, Edges: report.Edges, InSite: report.InSite,
			Verdicts: make([]verdictJSON, len(report.Verdicts)),
		}
		for i, v := range report.Verdicts {
			out.Verdicts[i] = verdictJSON{
				ID: hex.EncodeToString(v.ID[:]), Trusted: v.Trusted,
				InSite: v.InSite, Legitimate: v.Legitimate, Hops: v.Hops,
			}
		}
		writeJSON(w, out)
	})
	// GET /v1/investigate/watch streams fresh investigation reports as
	// NDJSON (one JSON object per line, flushed immediately): the current
	// state first, then one line per content-epoch advance — ingest that
	// lands outside the site's coverage area advances the builder but not
	// the content epoch and is never re-reported. Query parameters:
	// minX/minY/maxX/maxY (site), minute, and optionally fromEpoch
	// (suppress reports at or below this content epoch; resume token),
	// maxReports (close the stream after N reports), and timeoutMs
	// (stream lifetime, clamped to watchMaxTimeout). Errors before the
	// first report are plain HTTP errors; after it, a final
	// {"error":...} line. The stream ends cleanly (200, possibly zero
	// lines) on timeout or client disconnect.
	mux.HandleFunc("GET /v1/investigate/watch", func(w http.ResponseWriter, r *http.Request) {
		q := r.URL.Query()
		site, err := rectFromQuery(q)
		if err != nil {
			httpError(w, http.StatusBadRequest, err)
			return
		}
		minute, err := strconv.ParseInt(q.Get("minute"), 10, 64)
		if err != nil {
			httpError(w, http.StatusBadRequest, fmt.Errorf("server: bad minute %q", q.Get("minute")))
			return
		}
		var fromEpoch uint64
		if s := q.Get("fromEpoch"); s != "" {
			if fromEpoch, err = strconv.ParseUint(s, 10, 64); err != nil {
				httpError(w, http.StatusBadRequest, fmt.Errorf("server: bad fromEpoch %q", s))
				return
			}
		}
		var maxReports int
		if s := q.Get("maxReports"); s != "" {
			if maxReports, err = strconv.Atoi(s); err != nil || maxReports < 0 {
				httpError(w, http.StatusBadRequest, fmt.Errorf("server: bad maxReports %q", s))
				return
			}
		}
		timeout := watchDefaultTimeout
		if s := q.Get("timeoutMs"); s != "" {
			ms, err := strconv.Atoi(s)
			if err != nil || ms <= 0 {
				httpError(w, http.StatusBadRequest, fmt.Errorf("server: bad timeoutMs %q", s))
				return
			}
			timeout = time.Duration(ms) * time.Millisecond
		}
		if timeout > watchMaxTimeout {
			timeout = watchMaxTimeout
		}
		token := r.Header.Get(authorityHeader)

		deadline := time.NewTimer(timeout)
		defer deadline.Stop()
		ctx := r.Context()
		flusher, _ := w.(http.Flusher)
		enc := json.NewEncoder(w)
		started := false
		last := fromEpoch
		sent := 0
		for {
			// Grab the change channel BEFORE snapshotting: a commit that
			// lands between the snapshot and the wait closes this channel,
			// so the wakeup cannot be lost.
			_, ch := sys.Store().MinuteChange(minute)
			report, cepoch, err := sys.InvestigateSnapshot(token, site, minute)
			switch {
			case err == nil:
				if cepoch > last {
					if !started {
						w.Header().Set("Content-Type", "application/x-ndjson")
						started = true
					}
					if err := enc.Encode(watchReportJSON{
						Minute: report.Minute, Epoch: cepoch,
						Members: report.Members, Edges: report.Edges, InSite: report.InSite,
						Legitimate: encodeIDs(report.Legitimate),
					}); err != nil {
						return
					}
					if flusher != nil {
						flusher.Flush()
					}
					last = cepoch
					sent++
					if maxReports > 0 && sent >= maxReports {
						return
					}
				}
			case errors.Is(err, ErrNoMinute), errors.Is(err, core.ErrNoTrusted):
				// Benign absences: the minute (or its first trusted VP) may
				// yet arrive within the watch window — keep waiting.
			default:
				if !started {
					httpError(w, statusFor(err), err)
					return
				}
				_ = enc.Encode(map[string]string{"error": err.Error()})
				if flusher != nil {
					flusher.Flush()
				}
				return
			}
			var pollC <-chan time.Time
			if ch == nil {
				// No resident shard to wait on; poll until it appears.
				pollC = time.After(watchPollInterval)
			}
			select {
			case <-ctx.Done():
				return
			case <-deadline.C:
				if !started {
					w.Header().Set("Content-Type", "application/x-ndjson")
				}
				return
			case <-ch:
			case <-pollC:
			}
		}
	})
	mux.HandleFunc("GET /v1/solicitations", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, idsResponse{IDs: encodeIDs(sys.Solicitations())})
	})
	mux.HandleFunc("POST /v1/video", func(w http.ResponseWriter, r *http.Request) {
		var req videoRequest
		if err := decodeJSON(r, &req); err != nil {
			httpError(w, http.StatusBadRequest, err)
			return
		}
		id, err := decodeID(req.ID)
		if err != nil {
			httpError(w, http.StatusBadRequest, err)
			return
		}
		chunks := make([][]byte, len(req.Chunks))
		for i, c := range req.Chunks {
			chunks[i], err = base64.StdEncoding.DecodeString(c)
			if err != nil {
				httpError(w, http.StatusBadRequest, fmt.Errorf("chunk %d: %w", i, err))
				return
			}
		}
		if err := sys.SubmitVideo(id, chunks); err != nil {
			httpError(w, statusFor(err), err)
			return
		}
		w.WriteHeader(http.StatusAccepted)
	})
	mux.HandleFunc("GET /v1/rewards", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, idsResponse{IDs: encodeIDs(sys.PostedRewards())})
	})
	mux.HandleFunc("POST /v1/reward/claim", func(w http.ResponseWriter, r *http.Request) {
		var req claimRequest
		if err := decodeJSON(r, &req); err != nil {
			httpError(w, http.StatusBadRequest, err)
			return
		}
		id, q, err := decodeOwnership(req.ID, req.Secret)
		if err != nil {
			httpError(w, http.StatusBadRequest, err)
			return
		}
		units, err := sys.ClaimReward(id, q)
		if err != nil {
			httpError(w, statusFor(err), err)
			return
		}
		writeJSON(w, claimResponse{Units: units})
	})
	mux.HandleFunc("POST /v1/reward/blind", func(w http.ResponseWriter, r *http.Request) {
		var req blindRequest
		if err := decodeJSON(r, &req); err != nil {
			httpError(w, http.StatusBadRequest, err)
			return
		}
		id, q, err := decodeOwnership(req.ID, req.Secret)
		if err != nil {
			httpError(w, http.StatusBadRequest, err)
			return
		}
		blinded := make([]*big.Int, len(req.Blinded))
		for i, s := range req.Blinded {
			v, ok := new(big.Int).SetString(s, 10)
			if !ok {
				httpError(w, http.StatusBadRequest, fmt.Errorf("blinded %d not a decimal integer", i))
				return
			}
			blinded[i] = v
		}
		sigs, err := sys.SignBlindedForReward(id, q, blinded)
		if err != nil {
			httpError(w, statusFor(err), err)
			return
		}
		out := make([]string, len(sigs))
		for i, s := range sigs {
			out[i] = s.String()
		}
		writeJSON(w, blindResponse{Signatures: out})
	})
	mux.HandleFunc("POST /v1/reward/redeem", func(w http.ResponseWriter, r *http.Request) {
		var req redeemRequest
		if err := decodeJSON(r, &req); err != nil {
			httpError(w, http.StatusBadRequest, err)
			return
		}
		m, err := base64.StdEncoding.DecodeString(req.M)
		if err != nil {
			httpError(w, http.StatusBadRequest, err)
			return
		}
		sig, ok := new(big.Int).SetString(req.Sig, 10)
		if !ok {
			httpError(w, http.StatusBadRequest, errors.New("sig not a decimal integer"))
			return
		}
		if err := sys.Redeem(&reward.Cash{M: m, Sig: sig}); err != nil {
			httpError(w, statusFor(err), err)
			return
		}
		w.WriteHeader(http.StatusOK)
	})
	mux.HandleFunc("GET /v1/bank", func(w http.ResponseWriter, r *http.Request) {
		pub := sys.Bank().PublicKey()
		writeJSON(w, bankResponse{N: pub.N.String(), E: pub.E})
	})

	// Evidence subsystem: the end-to-end lifecycle of Sections
	// 5.1–5.3 (solicit → anonymous deliver → cascade verify → payout
	// → blurred release).
	mux.HandleFunc("POST /v1/evidence/solicit", func(w http.ResponseWriter, r *http.Request) {
		var req solicitRequest
		if err := decodeJSON(r, &req); err != nil {
			httpError(w, http.StatusBadRequest, err)
			return
		}
		rep, err := sys.OpenSolicitation(r.Header.Get(authorityHeader),
			geo.NewRect(geo.Pt(req.Site.MinX, req.Site.MinY), geo.Pt(req.Site.MaxX, req.Site.MaxY)),
			req.Minute, req.Units)
		if err != nil {
			httpError(w, statusFor(err), err)
			return
		}
		writeJSON(w, solicitResponse{
			Members: rep.Members, InSite: rep.InSite,
			Legitimate: encodeIDs(rep.Legitimate),
			Listed:     rep.Listed, NewlyListed: rep.NewlyListed, Units: rep.Units,
		})
	})
	mux.HandleFunc("GET /v1/evidence/solicitations", func(w http.ResponseWriter, r *http.Request) {
		board := sys.Evidence().Board()
		out := offersResponse{Offers: make([]offerJSON, len(board))}
		for i, o := range board {
			out.Offers[i] = offerJSON{ID: hex.EncodeToString(o.ID[:]), Units: o.Units}
		}
		writeJSON(w, out)
	})
	mux.HandleFunc("POST /v1/evidence/deliver", func(w http.ResponseWriter, r *http.Request) {
		var req deliverRequest
		if err := decodeJSON(r, &req); err != nil {
			httpError(w, http.StatusBadRequest, err)
			return
		}
		id, q, err := decodeOwnership(req.ID, req.Secret)
		if err != nil {
			httpError(w, http.StatusBadRequest, err)
			return
		}
		chunks := make([][]byte, len(req.Chunks))
		for i, c := range req.Chunks {
			chunks[i], err = base64.StdEncoding.DecodeString(c)
			if err != nil {
				httpError(w, http.StatusBadRequest, fmt.Errorf("chunk %d: %w", i, err))
				return
			}
		}
		units, err := sys.Evidence().Deliver(r.Header.Get(sessionHeader), id, q, chunks)
		if err != nil {
			httpError(w, statusFor(err), err)
			return
		}
		writeJSON(w, deliverResponse{Units: units})
	})
	mux.HandleFunc("POST /v1/evidence/payout", func(w http.ResponseWriter, r *http.Request) {
		var req blindRequest
		if err := decodeJSON(r, &req); err != nil {
			httpError(w, http.StatusBadRequest, err)
			return
		}
		id, q, err := decodeOwnership(req.ID, req.Secret)
		if err != nil {
			httpError(w, http.StatusBadRequest, err)
			return
		}
		blinded := make([]*big.Int, len(req.Blinded))
		for i, s := range req.Blinded {
			v, ok := new(big.Int).SetString(s, 10)
			if !ok {
				httpError(w, http.StatusBadRequest, fmt.Errorf("blinded %d not a decimal integer", i))
				return
			}
			blinded[i] = v
		}
		sigs, err := sys.Evidence().Payout(r.Header.Get(sessionHeader), id, q, blinded)
		if err != nil {
			httpError(w, statusFor(err), err)
			return
		}
		out := make([]string, len(sigs))
		for i, s := range sigs {
			out[i] = s.String()
		}
		writeJSON(w, blindResponse{Signatures: out})
	})
	mux.HandleFunc("POST /v1/evidence/redeem", func(w http.ResponseWriter, r *http.Request) {
		var req redeemRequest
		if err := decodeJSON(r, &req); err != nil {
			httpError(w, http.StatusBadRequest, err)
			return
		}
		m, err := base64.StdEncoding.DecodeString(req.M)
		if err != nil {
			httpError(w, http.StatusBadRequest, err)
			return
		}
		sig, ok := new(big.Int).SetString(req.Sig, 10)
		if !ok {
			httpError(w, http.StatusBadRequest, errors.New("sig not a decimal integer"))
			return
		}
		if err := sys.Evidence().Redeem(&reward.Cash{M: m, Sig: sig}); err != nil {
			httpError(w, statusFor(err), err)
			return
		}
		w.WriteHeader(http.StatusOK)
	})
	mux.HandleFunc("GET /v1/evidence/video", func(w http.ResponseWriter, r *http.Request) {
		id, err := decodeID(r.URL.Query().Get("id"))
		if err != nil {
			httpError(w, http.StatusBadRequest, err)
			return
		}
		chunks, frames, regions, err := sys.ReleaseEvidence(r.Header.Get(authorityHeader), id)
		if err != nil {
			httpError(w, statusFor(err), err)
			return
		}
		out := videoResponse{
			Chunks:          make([]string, len(chunks)),
			RedactedFrames:  frames,
			RedactedRegions: regions,
		}
		for i, c := range chunks {
			out.Chunks[i] = base64.StdEncoding.EncodeToString(c)
		}
		writeJSON(w, out)
	})

	mux.HandleFunc("GET /v1/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		sys.metrics.WritePrometheus(w)
	})
	mux.HandleFunc("GET /v1/stats", func(w http.ResponseWriter, r *http.Request) {
		ev := sys.Evidence().StatsSnapshot()
		shardStats := sys.Store().ShardStats()
		ingest := sys.Store().IngestStatsFrom(shardStats)
		ret := sys.Store().RetentionStatsSnapshot()
		dur := sys.DurabilityStatsSnapshot()
		ov := sys.OverloadStatsSnapshot()
		shards := make([]shardStatJSON, len(shardStats))
		for i, sh := range shardStats {
			shards[i] = shardStatJSON{
				Minute: sh.Minute, VPs: sh.VPs,
				Quarantined: sh.Quarantined, Epoch: sh.Epoch,
			}
		}
		lat := sys.LatencyStats()
		latJSON := make([]endpointLatencyJSON, len(lat))
		for i, l := range lat {
			latJSON[i] = endpointLatencyJSON{
				Endpoint: l.Endpoint,
				Requests: l.Requests,
				P50MS:    float64(l.P50) / float64(time.Millisecond),
				P99MS:    float64(l.P99) / float64(time.Millisecond),
			}
		}
		pipe := sys.PipelineStatsSnapshot()
		pipeJSON := pipelineStatsJSON{
			Stages: make([]pipelineStageJSON, len(pipe.Stages)),
			WALCommitBatch: walBatchJSON{
				Commits:    pipe.WALCommitBatch.Commits,
				P50Records: pipe.WALCommitBatch.P50Records,
				P99Records: pipe.WALCommitBatch.P99Records,
			},
		}
		for i, st := range pipe.Stages {
			pipeJSON.Stages[i] = pipelineStageJSON{
				Stage:   st.Stage,
				Count:   st.Count,
				P50US:   float64(st.P50) / float64(time.Microsecond),
				P99US:   float64(st.P99) / float64(time.Microsecond),
				TotalMS: float64(st.Total) / float64(time.Millisecond),
			}
		}
		writeJSON(w, statsResponse{
			VPs:         sys.Store().Len(),
			Trusted:     sys.Store().TrustedCount(),
			ReviewQueue: sys.ReviewQueueLen(),
			Minutes:     sys.Store().MinuteCount(),
			Ingest: ingestStatsJSON{
				Rejected:     ingest.Rejected,
				WireRejected: ingest.WireRejected,
				Duplicates:   ingest.Duplicates,
				Quarantined:  ingest.Quarantined,
				Stale:        ingest.Stale,
			},
			Shards: shards,
			Retention: retentionStatsJSON{
				ResidentMinutes: ret.ResidentMinutes,
				ColdResident:    ret.ColdResident,
				EvictedMinutes:  ret.EvictedMinutes,
				Evictions:       ret.Evictions,
				EvictionTotalMS: ret.EvictionTotalMS,
			},
			Durability: durabilityStatsJSON{
				Enabled:         dur.Enabled,
				AppendedLSN:     dur.AppendedLSN,
				SyncedLSN:       dur.SyncedLSN,
				SnapshotLSN:     dur.SnapshotLSN,
				Snapshots:       dur.Snapshots,
				Replayed:        dur.Replayed,
				Fsyncs:          dur.Fsyncs,
				FsyncTotalMS:    dur.FsyncTotalMS,
				SnapshotTotalMS: dur.SnapshotTotalMS,
				LastSnapshotMS:  dur.LastSnapshotMS,
				LastError:       dur.LastError,
			},
			Evidence: evidenceStatsJSON{
				OpenSolicitations:  ev.OpenSolicitations,
				DeliveriesAccepted: ev.DeliveriesAccepted,
				DeliveriesRejected: ev.DeliveriesRejected,
				UnitsMinted:        ev.UnitsMinted,
				UnitsRedeemed:      ev.UnitsRedeemed,
				Released:           ev.Released,
			},
			Overload: overloadStatsJSON{
				Ingest:            classStatsJSON(ov.Ingest),
				Investigate:       classStatsJSON(ov.Investigate),
				Evidence:          classStatsJSON(ov.Evidence),
				RetryAfterSeconds: ov.RetryAfterSeconds,
			},
			Latency:   latJSON,
			Pipeline:  pipeJSON,
			TrustRank: trustRankJSON(sys.TrustRankStats()),
		})
	})
	return withTelemetry(sys, withAdmission(sys.overload, mux))
}

// Wire types.

type rectJSON struct {
	MinX float64 `json:"minX"`
	MinY float64 `json:"minY"`
	MaxX float64 `json:"maxX"`
	MaxY float64 `json:"maxY"`
}

type investigateRequest struct {
	Site   rectJSON `json:"site"`
	Minute int64    `json:"minute"`
}

type investigateResponse struct {
	Members        int      `json:"members"`
	Edges          int      `json:"edges"`
	InSite         int      `json:"inSite"`
	Legitimate     []string `json:"legitimate"`
	NewlySolicited int      `json:"newlySolicited"`
}

type investigatePeriodRequest struct {
	Site        rectJSON `json:"site"`
	FirstMinute int64    `json:"firstMinute"`
	LastMinute  int64    `json:"lastMinute"`
}

type investigatePeriodResponse struct {
	// Minutes holds one report per minute of the period; null entries
	// mark minutes for which no viewmap could be built.
	Minutes []*investigateResponse `json:"minutes"`
}

// watchReportJSON is one NDJSON line of GET /v1/investigate/watch.
// Epoch is the report's content epoch — the resume token for a
// follow-up watch's fromEpoch.
type watchReportJSON struct {
	Minute     int64    `json:"minute"`
	Epoch      uint64   `json:"epoch"`
	Members    int      `json:"members"`
	Edges      int      `json:"edges"`
	InSite     int      `json:"inSite"`
	Legitimate []string `json:"legitimate"`
}

type batchResponse struct {
	Stored     int `json:"stored"`
	Duplicates int `json:"duplicates"`
	Rejected   int `json:"rejected"`
}

type idsResponse struct {
	IDs []string `json:"ids"`
}

type videoRequest struct {
	ID     string   `json:"id"`
	Chunks []string `json:"chunks"`
}

type claimRequest struct {
	ID     string `json:"id"`
	Secret string `json:"secret"`
}

type claimResponse struct {
	Units int `json:"units"`
}

type blindRequest struct {
	ID      string   `json:"id"`
	Secret  string   `json:"secret"`
	Blinded []string `json:"blinded"`
}

type blindResponse struct {
	Signatures []string `json:"signatures"`
}

type redeemRequest struct {
	M   string `json:"m"`
	Sig string `json:"sig"`
}

type bankResponse struct {
	N string `json:"n"`
	E int    `json:"e"`
}

type statsResponse struct {
	VPs         int                          `json:"vps"`
	Trusted     int                          `json:"trusted"`
	ReviewQueue int                          `json:"reviewQueue"`
	Minutes     int                          `json:"minutes"`
	Ingest      ingestStatsJSON              `json:"ingest"`
	Shards      []shardStatJSON              `json:"shards"`
	Retention   retentionStatsJSON           `json:"retention"`
	Durability  durabilityStatsJSON          `json:"durability"`
	Evidence    evidenceStatsJSON            `json:"evidence"`
	Overload    overloadStatsJSON            `json:"overload"`
	Latency     []endpointLatencyJSON        `json:"latency"`
	Pipeline    pipelineStatsJSON            `json:"pipeline"`
	TrustRank   map[string]trustRankModeJSON `json:"trustrank"`
}

// trustRankModeJSON summarizes one verification mode ("warm"/"cold")
// in GET /v1/stats: how many verifications ran that way and how many
// power iterations they needed.
type trustRankModeJSON struct {
	Verifications uint64 `json:"verifications"`
	P50Iterations uint64 `json:"p50Iterations"`
	P99Iterations uint64 `json:"p99Iterations"`
}

// trustRankJSON converts the mode snapshots to their wire form.
func trustRankJSON(stats map[string]TrustRankModeStats) map[string]trustRankModeJSON {
	out := make(map[string]trustRankModeJSON, len(stats))
	for mode, s := range stats {
		out[mode] = trustRankModeJSON{
			Verifications: s.Verifications,
			P50Iterations: s.P50Iterations,
			P99Iterations: s.P99Iterations,
		}
	}
	return out
}

type endpointLatencyJSON struct {
	Endpoint string  `json:"endpoint"`
	Requests uint64  `json:"requests"`
	P50MS    float64 `json:"p50Ms"`
	P99MS    float64 `json:"p99Ms"`
}

type pipelineStageJSON struct {
	Stage   string  `json:"stage"`
	Count   uint64  `json:"count"`
	P50US   float64 `json:"p50Us"`
	P99US   float64 `json:"p99Us"`
	TotalMS float64 `json:"totalMs"`
}

type walBatchJSON struct {
	Commits    uint64 `json:"commits"`
	P50Records uint64 `json:"p50Records"`
	P99Records uint64 `json:"p99Records"`
}

type pipelineStatsJSON struct {
	Stages         []pipelineStageJSON `json:"stages"`
	WALCommitBatch walBatchJSON        `json:"walCommitBatch"`
}

type classAdmissionJSON struct {
	Admitted uint64 `json:"admitted"`
	Shed     uint64 `json:"shed"`
	Queued   int    `json:"queued"`
	Active   int    `json:"active"`
}

// classStatsJSON converts one gate's snapshot to its wire form.
func classStatsJSON(s ClassAdmissionStats) classAdmissionJSON {
	return classAdmissionJSON{
		Admitted: s.Admitted, Shed: s.Shed, Queued: s.Queued, Active: s.Active,
	}
}

type overloadStatsJSON struct {
	Ingest            classAdmissionJSON `json:"ingest"`
	Investigate       classAdmissionJSON `json:"investigate"`
	Evidence          classAdmissionJSON `json:"evidence"`
	RetryAfterSeconds int                `json:"retryAfterSeconds"`
}

type retentionStatsJSON struct {
	ResidentMinutes int     `json:"residentMinutes"`
	ColdResident    int     `json:"coldResident"`
	EvictedMinutes  int     `json:"evictedMinutes"`
	Evictions       int64   `json:"evictions"`
	EvictionTotalMS float64 `json:"evictionTotalMs"`
}

type durabilityStatsJSON struct {
	Enabled         bool    `json:"enabled"`
	AppendedLSN     uint64  `json:"appendedLSN"`
	SyncedLSN       uint64  `json:"syncedLSN"`
	SnapshotLSN     uint64  `json:"snapshotLSN"`
	Snapshots       int     `json:"snapshots"`
	Replayed        int     `json:"replayed"`
	Fsyncs          int64   `json:"fsyncs"`
	FsyncTotalMS    float64 `json:"fsyncTotalMs"`
	SnapshotTotalMS float64 `json:"snapshotTotalMs"`
	LastSnapshotMS  float64 `json:"lastSnapshotMs"`
	LastError       string  `json:"lastError,omitempty"`
}

type ingestStatsJSON struct {
	Rejected     int `json:"rejected"`
	WireRejected int `json:"wireRejected"`
	Duplicates   int `json:"duplicates"`
	Quarantined  int `json:"quarantined"`
	Stale        int `json:"stale"`
}

type shardStatJSON struct {
	Minute      int64  `json:"minute"`
	VPs         int    `json:"vps"`
	Quarantined int    `json:"quarantined"`
	Epoch       uint64 `json:"epoch"`
}

type verdictJSON struct {
	ID         string `json:"id"`
	Trusted    bool   `json:"trusted"`
	InSite     bool   `json:"inSite"`
	Legitimate bool   `json:"legitimate"`
	Hops       int    `json:"hops"`
}

type reportResponse struct {
	Members  int           `json:"members"`
	Edges    int           `json:"edges"`
	InSite   int           `json:"inSite"`
	Verdicts []verdictJSON `json:"verdicts"`
}

type evidenceStatsJSON struct {
	OpenSolicitations  int `json:"openSolicitations"`
	DeliveriesAccepted int `json:"deliveriesAccepted"`
	DeliveriesRejected int `json:"deliveriesRejected"`
	UnitsMinted        int `json:"unitsMinted"`
	UnitsRedeemed      int `json:"unitsRedeemed"`
	Released           int `json:"released"`
}

type solicitRequest struct {
	Site   rectJSON `json:"site"`
	Minute int64    `json:"minute"`
	Units  int      `json:"units"`
}

type solicitResponse struct {
	Members     int      `json:"members"`
	InSite      int      `json:"inSite"`
	Legitimate  []string `json:"legitimate"`
	Listed      int      `json:"listed"`
	NewlyListed int      `json:"newlyListed"`
	Units       int      `json:"units"`
}

type offerJSON struct {
	ID    string `json:"id"`
	Units int    `json:"units"`
}

type offersResponse struct {
	Offers []offerJSON `json:"offers"`
}

type deliverRequest struct {
	ID     string   `json:"id"`
	Secret string   `json:"secret"`
	Chunks []string `json:"chunks"`
}

type deliverResponse struct {
	Units int `json:"units"`
}

type videoResponse struct {
	Chunks          []string `json:"chunks"`
	RedactedFrames  int      `json:"redactedFrames"`
	RedactedRegions int      `json:"redactedRegions"`
}

// Helpers.

// rectFromQuery decodes a site rectangle from minX/minY/maxX/maxY
// query parameters.
func rectFromQuery(q url.Values) (geo.Rect, error) {
	var vals [4]float64
	for i, k := range [4]string{"minX", "minY", "maxX", "maxY"} {
		v, err := strconv.ParseFloat(q.Get(k), 64)
		if err != nil {
			return geo.Rect{}, fmt.Errorf("server: bad %s %q", k, q.Get(k))
		}
		vals[i] = v
	}
	return geo.NewRect(geo.Pt(vals[0], vals[1]), geo.Pt(vals[2], vals[3])), nil
}

func decodeJSON(r *http.Request, v interface{}) error {
	dec := json.NewDecoder(io.LimitReader(r.Body, maxUploadBytes))
	dec.DisallowUnknownFields()
	return dec.Decode(v)
}

func writeJSON(w http.ResponseWriter, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		// Too late for a status change; the connection is the casualty.
		return
	}
}

func httpError(w http.ResponseWriter, status int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(map[string]string{"error": err.Error()})
}

// statusFor maps service errors onto HTTP statuses.
func statusFor(err error) int {
	switch {
	case errors.Is(err, ErrNotSolicited), errors.Is(err, evidence.ErrNotSolicited):
		return http.StatusForbidden
	case errors.Is(err, ErrBadOwnership), errors.Is(err, evidence.ErrBadOwnership):
		return http.StatusForbidden
	case errors.Is(err, anon.ErrSessionReused):
		return http.StatusConflict
	case errors.Is(err, evidence.ErrAlreadyDelivered):
		return http.StatusConflict
	case errors.Is(err, evidence.ErrCascade):
		return http.StatusUnprocessableEntity
	case errors.Is(err, evidence.ErrNotDelivered):
		return http.StatusNotFound
	case errors.Is(err, ErrDuplicate):
		return http.StatusConflict
	case errors.Is(err, ErrStaleMinute):
		return http.StatusUnprocessableEntity
	case errors.Is(err, reward.ErrDoubleSpend):
		return http.StatusConflict
	case errors.Is(err, reward.ErrBadSignature):
		return http.StatusBadRequest
	case errors.Is(err, ErrUnauthorized):
		return http.StatusUnauthorized
	case errors.Is(err, ErrDurability):
		return http.StatusServiceUnavailable
	default:
		return http.StatusBadRequest
	}
}

func encodeIDs(ids []vd.VPID) []string {
	out := make([]string, len(ids))
	for i, id := range ids {
		out[i] = hex.EncodeToString(id[:])
	}
	return out
}

func decodeID(s string) (vd.VPID, error) {
	b, err := hex.DecodeString(s)
	if err != nil || len(b) != len(vd.VPID{}) {
		return vd.VPID{}, fmt.Errorf("server: bad VP identifier %q", s)
	}
	var id vd.VPID
	copy(id[:], b)
	return id, nil
}

func decodeOwnership(idHex, secretHex string) (vd.VPID, vd.Secret, error) {
	id, err := decodeID(idHex)
	if err != nil {
		return vd.VPID{}, vd.Secret{}, err
	}
	qb, err := hex.DecodeString(secretHex)
	if err != nil || len(qb) != len(vd.Secret{}) {
		return vd.VPID{}, vd.Secret{}, errors.New("server: bad secret encoding")
	}
	var q vd.Secret
	copy(q[:], qb)
	return id, q, nil
}
