package server

import (
	"errors"
	"fmt"
	"net/http"
	"os"
	"strings"
	"testing"

	"viewmap/internal/core"
	"viewmap/internal/geo"
)

// TestVerdictCacheStalestFirstEviction pins the verdict cache's
// eviction order: when the cache is full, the entry whose recency
// stamp is lowest — the stalest one — is deleted, and nothing else.
// The pre-fix code deleted whatever map entry Go's iteration order
// produced first, so a hot entry could be evicted while a dead one
// survived indefinitely.
func TestVerdictCacheStalestFirstEviction(t *testing.T) {
	sys, err := NewSystem(Config{AuthorityToken: "t", Bank: durBank(t)})
	if err != nil {
		t.Fatal(err)
	}
	uploadMinute(t, 0, 20, 5, sys)

	// Fill the cache to capacity with synthetic entries whose recency
	// stamps are their insertion order; key 0 is the stalest.
	sys.verdictMu.Lock()
	for i := 0; i < verdictCacheMax; i++ {
		key := investigationKey{
			site:   geo.RectAround(geo.Pt(float64(i)*10, 9e6), 5),
			minute: 999,
		}
		sys.verdictSeq++
		sys.verdicts[key] = &verdictEntry{
			epoch: 1, verdict: &core.Verdict{}, used: sys.verdictSeq,
		}
	}
	stalest := investigationKey{site: geo.RectAround(geo.Pt(0, 9e6), 5), minute: 999}
	second := investigationKey{site: geo.RectAround(geo.Pt(10, 9e6), 5), minute: 999}
	sys.verdictMu.Unlock()

	// A real investigation inserts a fresh entry, forcing one eviction.
	if _, err := sys.Investigate("t", durSite, 0); err != nil {
		t.Fatal(err)
	}

	sys.verdictMu.Lock()
	defer sys.verdictMu.Unlock()
	if len(sys.verdicts) != verdictCacheMax {
		t.Fatalf("cache holds %d entries, want %d", len(sys.verdicts), verdictCacheMax)
	}
	if sys.verdicts[stalest] != nil {
		t.Fatal("stalest entry survived the eviction")
	}
	if sys.verdicts[second] == nil {
		t.Fatal("second-stalest entry was evicted instead of the stalest")
	}
	if sys.verdicts[investigationKey{site: durSite, minute: 0}] == nil {
		t.Fatal("fresh investigation was not cached")
	}
}

// TestVerdictCacheHitAcrossEvictReload pins the cache's identity
// contract: entries are keyed by content epoch, which a segment
// replay reproduces bit for bit, so a verdict computed before its
// minute was evicted is reused — no re-verification — when the
// reloaded minute is investigated again. The pre-fix identity was the
// cached viewmap pointer, which an evict/reload necessarily breaks.
func TestVerdictCacheHitAcrossEvictReload(t *testing.T) {
	sys := openDurable(t, t.TempDir(), 2)
	defer sys.Close()

	uploadMinute(t, 0, 20, 5, sys)
	first, err := sys.Investigate("t", durSite, 0)
	if err != nil {
		t.Fatal(err)
	}
	verified := func() uint64 {
		var n uint64
		for _, s := range sys.TrustRankStats() {
			n += s.Verifications
		}
		return n
	}
	before := verified()
	if before == 0 {
		t.Fatal("first investigation recorded no verification")
	}

	// Age minute 0 out past the retention horizon.
	for m := int64(1); m <= 3; m++ {
		uploadMinute(t, m, 12, 5+m, sys)
		if _, err := sys.Store().ApplyRetention(); err != nil {
			t.Fatal(err)
		}
	}
	if ret := sys.Store().RetentionStatsSnapshot(); ret.EvictedMinutes == 0 {
		t.Fatal("minute 0 was never evicted; the test exercises nothing")
	}

	// Re-investigating the evicted minute reloads the segment; the
	// replayed builder reproduces the content epoch, so the cached
	// verdict must be returned without another TrustRank run.
	again, err := sys.Investigate("t", durSite, 0)
	if err != nil {
		t.Fatal(err)
	}
	if after := verified(); after != before {
		t.Fatalf("re-investigation after evict/reload re-verified (%d -> %d runs); cache identity broken",
			before, after)
	}
	if fmt.Sprint(first.Legitimate) != fmt.Sprint(again.Legitimate) {
		t.Fatal("cached verdict diverges across evict/reload")
	}
}

// TestInvestigatePeriodCap pins the period bound to exactly 60
// minutes: the pre-fix comparison admitted 61.
func TestInvestigatePeriodCap(t *testing.T) {
	sys, err := NewSystem(Config{AuthorityToken: "t", Bank: durBank(t)})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.InvestigatePeriod("t", durSite, 0, 60); err == nil {
		t.Fatal("61-minute period accepted; the cap is off by one")
	}
	reports, err := sys.InvestigatePeriod("t", durSite, 0, 59)
	if err != nil {
		t.Fatalf("60-minute period rejected: %v", err)
	}
	if len(reports) != 60 {
		t.Fatalf("got %d reports, want 60", len(reports))
	}
	for m, r := range reports {
		if r != nil {
			t.Fatalf("minute %d: empty store produced a non-nil report", m)
		}
	}
}

// TestInvestigatePeriodPropagatesTransientErrors distinguishes the two
// kinds of per-minute failure: benign absences (nothing stored, no
// trusted VP) skip with a nil report, but a transient fault — here an
// evicted minute whose segment file is corrupt — must abort the period
// with the minute's error. The pre-fix loop swallowed every error into
// a nil report, silently presenting unreadable minutes as empty ones.
func TestInvestigatePeriodPropagatesTransientErrors(t *testing.T) {
	sys := openDurable(t, t.TempDir(), 2)
	defer sys.Close()

	for m := int64(0); m <= 3; m++ {
		uploadMinute(t, m, 15, 40+m, sys)
		if _, err := sys.Store().ApplyRetention(); err != nil {
			t.Fatal(err)
		}
	}
	if ret := sys.Store().RetentionStatsSnapshot(); ret.EvictedMinutes == 0 {
		t.Fatal("no minute was evicted")
	}
	if err := os.WriteFile(sys.Store().segmentPath(0), []byte("not a segment"), 0o644); err != nil {
		t.Fatal(err)
	}

	_, err := sys.InvestigatePeriod("t", durSite, 0, 3)
	if err == nil {
		t.Fatal("period over a corrupt segment reported success")
	}
	if !strings.Contains(err.Error(), "minute 0") {
		t.Fatalf("error does not name the broken minute: %v", err)
	}
	if errors.Is(err, ErrNoMinute) {
		t.Fatalf("corrupt segment classified as a benign absence: %v", err)
	}
}

// TestStatusForDurability pins the error mapping docs/operations.md
// promises: a durability fault answers 503, not a client-fault 4xx.
func TestStatusForDurability(t *testing.T) {
	if got := statusFor(ErrDurability); got != http.StatusServiceUnavailable {
		t.Fatalf("statusFor(ErrDurability) = %d, want 503", got)
	}
	if got := statusFor(fmt.Errorf("wal append: %w", ErrDurability)); got != http.StatusServiceUnavailable {
		t.Fatalf("statusFor(wrapped ErrDurability) = %d, want 503", got)
	}
}
