package server

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"

	"viewmap/internal/vp"
)

// VP database persistence: a length-prefixed stream of VP wire records
// (the same anonymous format vehicles upload), each preceded by a
// one-byte trusted flag — the only server-side annotation. The format
// deliberately contains nothing else: the on-disk database is exactly
// as anonymous as the in-memory one.

// persistMagic guards against feeding arbitrary files to LoadFrom.
var persistMagic = [8]byte{'V', 'M', 'A', 'P', 'D', 'B', '0', '1'}

// SaveTo streams the whole database to w.
func (s *Store) SaveTo(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(persistMagic[:]); err != nil {
		return err
	}
	// One consistent cut of the database (see snapshot): a save racing
	// ongoing ingest persists a state the store actually held at some
	// moment, never a torn batch.
	profiles := s.snapshot()
	var count [4]byte
	binary.BigEndian.PutUint32(count[:], uint32(len(profiles)))
	if _, err := bw.Write(count[:]); err != nil {
		return err
	}
	for _, p := range profiles {
		rec := p.Marshal()
		var hdr [5]byte
		binary.BigEndian.PutUint32(hdr[:4], uint32(len(rec)))
		if p.Trusted {
			hdr[4] = 1
		}
		if _, err := bw.Write(hdr[:]); err != nil {
			return err
		}
		if _, err := bw.Write(rec); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// LoadFrom ingests a database stream written by SaveTo, validating
// every record as if it were a fresh upload. Records already present
// are skipped; any other validation failure aborts the load.
func (s *Store) LoadFrom(r io.Reader) (loaded int, err error) {
	br := bufio.NewReader(r)
	var magic [8]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return 0, fmt.Errorf("server: reading database header: %w", err)
	}
	if magic != persistMagic {
		return 0, errors.New("server: not a ViewMap database file")
	}
	var countBuf [4]byte
	if _, err := io.ReadFull(br, countBuf[:]); err != nil {
		return 0, err
	}
	count := binary.BigEndian.Uint32(countBuf[:])
	for i := uint32(0); i < count; i++ {
		var hdr [5]byte
		if _, err := io.ReadFull(br, hdr[:]); err != nil {
			return loaded, fmt.Errorf("server: record %d header: %w", i, err)
		}
		size := binary.BigEndian.Uint32(hdr[:4])
		if size > 1<<20 {
			return loaded, fmt.Errorf("server: record %d claims %d bytes", i, size)
		}
		rec := make([]byte, size)
		if _, err := io.ReadFull(br, rec); err != nil {
			return loaded, fmt.Errorf("server: record %d body: %w", i, err)
		}
		p, err := vp.Unmarshal(rec)
		if err != nil {
			return loaded, fmt.Errorf("server: record %d: %w", i, err)
		}
		p.Trusted = hdr[4] == 1
		switch err := s.Put(p); {
		case err == nil:
			loaded++
		case errors.Is(err, ErrDuplicate):
			// Re-loading over a warm store is fine.
		default:
			return loaded, fmt.Errorf("server: record %d: %w", i, err)
		}
	}
	return loaded, nil
}

// SaveFile writes the database to path atomically (via a temp file).
func (s *Store) SaveFile(path string) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if err := s.SaveTo(f); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, path)
}

// LoadFile reads a database file written by SaveFile.
func (s *Store) LoadFile(path string) (int, error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, err
	}
	defer f.Close()
	return s.LoadFrom(f)
}

// Full-system persistence: one file carrying the VP database, the
// reward bank (blind-signing keypair + double-spend ledger), and the
// evidence board (solicitations, accepted deliveries, payout
// entitlements). Restoring it resumes the whole service: units minted
// before the restart still verify, spent units stay spent, open
// solicitations stay open, and accepted evidence stays releasable.

// systemMagic heads a full-system state file.
var systemMagic = [8]byte{'V', 'M', 'A', 'P', 'S', 'Y', 'S', '1'}

// maxSection bounds one state section; the VP store dominates and a
// million stored VPs is ~5 GB, far above any test or demo deployment.
const maxSection = int64(8) << 30

// writeSection writes one length-prefixed section.
func writeSection(w io.Writer, save func(io.Writer) error) error {
	var buf bytes.Buffer
	if err := save(&buf); err != nil {
		return err
	}
	var hdr [8]byte
	binary.BigEndian.PutUint64(hdr[:], uint64(buf.Len()))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(buf.Bytes())
	return err
}

// readSection reads one length-prefixed section into memory. The
// length prefix is untrusted input (state files cross trust
// boundaries: operators restore files they did not write), so the
// buffer grows only as bytes actually arrive — a crafted prefix
// claiming gigabytes against a short stream errors out after reading
// what is really there instead of allocating the claim up front.
func readSection(r io.Reader) ([]byte, error) {
	var hdr [8]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	size := binary.BigEndian.Uint64(hdr[:])
	if int64(size) < 0 || int64(size) > maxSection {
		return nil, fmt.Errorf("server: section claims %d bytes", size)
	}
	var buf bytes.Buffer
	// Pre-grow up to a modest cap: sections that fit it (typical test
	// and demo deployments) get one allocation, while a hostile prefix
	// can demand at most the cap before truncation cuts it short.
	const growCap = 1 << 20
	if int64(size) < growCap {
		buf.Grow(int(size))
	} else {
		buf.Grow(growCap)
	}
	n, err := io.CopyN(&buf, r, int64(size))
	if err != nil {
		return nil, fmt.Errorf("server: section truncated at %d of %d bytes: %w", n, size, err)
	}
	return buf.Bytes(), nil
}

// SaveTo streams the full system state — store, bank, evidence board
// — to w. Each subsystem snapshots itself consistently; the three
// sections are cut in sequence, so a save racing ongoing traffic may
// observe, say, a delivery whose VP arrived just before the store
// section was cut — the same guarantee a crash-stop would give.
func (sys *System) SaveTo(w io.Writer) error {
	if _, err := w.Write(systemMagic[:]); err != nil {
		return err
	}
	if err := writeSection(w, sys.store.SaveTo); err != nil {
		return fmt.Errorf("server: saving store: %w", err)
	}
	if err := writeSection(w, sys.bank.SaveTo); err != nil {
		return fmt.Errorf("server: saving bank: %w", err)
	}
	if err := writeSection(w, sys.evidence.SaveTo); err != nil {
		return fmt.Errorf("server: saving evidence board: %w", err)
	}
	return nil
}

// LoadFrom restores state written by SaveTo into this (freshly
// constructed) system. For compatibility it also accepts a bare VP
// database stream (the Store.SaveTo format): the store is loaded and
// the bank and board keep their fresh state. Call before serving
// traffic — the bank keypair is replaced in place.
func (sys *System) LoadFrom(r io.Reader) (vps int, err error) {
	br := bufio.NewReader(r)
	magic, err := br.Peek(8)
	if err != nil {
		return 0, fmt.Errorf("server: reading state header: %w", err)
	}
	if [8]byte(magic) == persistMagic {
		return sys.store.LoadFrom(br)
	}
	if [8]byte(magic) != systemMagic {
		return 0, errors.New("server: not a ViewMap state file")
	}
	if _, err := br.Discard(8); err != nil {
		return 0, err
	}
	storeSec, err := readSection(br)
	if err != nil {
		return 0, fmt.Errorf("server: store section: %w", err)
	}
	if vps, err = sys.store.LoadFrom(bytes.NewReader(storeSec)); err != nil {
		return vps, err
	}
	bankSec, err := readSection(br)
	if err != nil {
		return vps, fmt.Errorf("server: bank section: %w", err)
	}
	if err := sys.bank.LoadFrom(bytes.NewReader(bankSec)); err != nil {
		return vps, err
	}
	evSec, err := readSection(br)
	if err != nil {
		return vps, fmt.Errorf("server: evidence section: %w", err)
	}
	if err := sys.evidence.LoadFrom(bytes.NewReader(evSec)); err != nil {
		return vps, err
	}
	return vps, nil
}

// SaveStateFile writes the full system state to path atomically.
func (sys *System) SaveStateFile(path string) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if err := sys.SaveTo(f); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, path)
}

// LoadStateFile restores a state file written by SaveStateFile (or a
// bare VP database written by Store.SaveFile).
func (sys *System) LoadStateFile(path string) (int, error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, err
	}
	defer f.Close()
	return sys.LoadFrom(f)
}
