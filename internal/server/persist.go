package server

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"

	"viewmap/internal/vp"
)

// VP database persistence: a length-prefixed stream of VP wire records
// (the same anonymous format vehicles upload), each preceded by a
// one-byte trusted flag — the only server-side annotation. The format
// deliberately contains nothing else: the on-disk database is exactly
// as anonymous as the in-memory one.

// persistMagic guards against feeding arbitrary files to LoadFrom.
var persistMagic = [8]byte{'V', 'M', 'A', 'P', 'D', 'B', '0', '1'}

// SaveTo streams the whole database to w.
func (s *Store) SaveTo(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(persistMagic[:]); err != nil {
		return err
	}
	// One consistent cut of the database (see snapshot): a save racing
	// ongoing ingest persists a state the store actually held at some
	// moment, never a torn batch.
	profiles := s.snapshot()
	var count [4]byte
	binary.BigEndian.PutUint32(count[:], uint32(len(profiles)))
	if _, err := bw.Write(count[:]); err != nil {
		return err
	}
	for _, p := range profiles {
		rec := p.Marshal()
		var hdr [5]byte
		binary.BigEndian.PutUint32(hdr[:4], uint32(len(rec)))
		if p.Trusted {
			hdr[4] = 1
		}
		if _, err := bw.Write(hdr[:]); err != nil {
			return err
		}
		if _, err := bw.Write(rec); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// LoadFrom ingests a database stream written by SaveTo, validating
// every record as if it were a fresh upload. Records already present
// are skipped; any other validation failure aborts the load.
func (s *Store) LoadFrom(r io.Reader) (loaded int, err error) {
	br := bufio.NewReader(r)
	var magic [8]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return 0, fmt.Errorf("server: reading database header: %w", err)
	}
	if magic != persistMagic {
		return 0, errors.New("server: not a ViewMap database file")
	}
	var countBuf [4]byte
	if _, err := io.ReadFull(br, countBuf[:]); err != nil {
		return 0, err
	}
	count := binary.BigEndian.Uint32(countBuf[:])
	for i := uint32(0); i < count; i++ {
		var hdr [5]byte
		if _, err := io.ReadFull(br, hdr[:]); err != nil {
			return loaded, fmt.Errorf("server: record %d header: %w", i, err)
		}
		size := binary.BigEndian.Uint32(hdr[:4])
		if size > 1<<20 {
			return loaded, fmt.Errorf("server: record %d claims %d bytes", i, size)
		}
		rec := make([]byte, size)
		if _, err := io.ReadFull(br, rec); err != nil {
			return loaded, fmt.Errorf("server: record %d body: %w", i, err)
		}
		p, err := vp.Unmarshal(rec)
		if err != nil {
			return loaded, fmt.Errorf("server: record %d: %w", i, err)
		}
		p.Trusted = hdr[4] == 1
		switch err := s.Put(p); {
		case err == nil:
			loaded++
		case errors.Is(err, ErrDuplicate):
			// Re-loading over a warm store is fine.
		default:
			return loaded, fmt.Errorf("server: record %d: %w", i, err)
		}
	}
	return loaded, nil
}

// SaveFile writes the database to path atomically (via a temp file).
func (s *Store) SaveFile(path string) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if err := s.SaveTo(f); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, path)
}

// LoadFile reads a database file written by SaveFile.
func (s *Store) LoadFile(path string) (int, error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, err
	}
	defer f.Close()
	return s.LoadFrom(f)
}
