package server

import (
	"encoding/binary"
	"sync"
	"testing"

	"viewmap/internal/core"
	"viewmap/internal/geo"
	"viewmap/internal/vp"
)

// encodeBatchWire assembles the POST /v1/vp/batch wire format.
func encodeBatchWire(records [][]byte) []byte {
	var out []byte
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(records)))
	out = append(out, hdr[:]...)
	for _, rec := range records {
		binary.BigEndian.PutUint32(hdr[:], uint32(len(rec)))
		out = append(out, hdr[:]...)
		out = append(out, rec...)
	}
	return out
}

// TestShardMinuteBoundary pins the shard assignment at the unit-time
// boundary: a profile starting exactly at minute m+1's first second
// belongs to shard m+1, never to shard m — even when its trajectory
// runs the same corridor as a minute-m profile's. Viewmaps must not
// mix them.
func TestShardMinuteBoundary(t *testing.T) {
	s := NewStore()
	m0a := fabricate(t, 0, 1)
	m0b := fabricate(t, 0, 2)
	m0b.Trusted = true
	m1 := fabricate(t, 1, 3) // same corridor as m0a, next minute
	m1.Trusted = true
	for _, p := range []*vp.Profile{m0a, m0b, m1} {
		if err := s.Put(p); err != nil {
			t.Fatal(err)
		}
	}
	if got := len(s.Minute(0)); got != 2 {
		t.Errorf("Minute(0) holds %d profiles, want 2", got)
	}
	if got := len(s.Minute(1)); got != 1 {
		t.Errorf("Minute(1) holds %d profiles, want 1", got)
	}
	if ms := s.Minutes(); len(ms) != 2 || ms[0] != 0 || ms[1] != 1 {
		t.Errorf("Minutes() = %v, want [0 1]", ms)
	}
	site := geo.NewRect(geo.Pt(-50, -50), geo.Pt(650, 50))
	vm0, err := s.ViewmapFor(site, 0)
	if err != nil {
		t.Fatal(err)
	}
	if vm0.Len() != 2 {
		t.Errorf("minute-0 viewmap has %d members, want 2", vm0.Len())
	}
	vm1, err := s.ViewmapFor(site, 1)
	if err != nil {
		t.Fatal(err)
	}
	if vm1.Len() != 1 {
		t.Errorf("minute-1 viewmap has %d members, want 1 (no cross-minute leakage)", vm1.Len())
	}
}

// TestDuplicateDoesNotAllocateShard pins the replay defense: a
// duplicate identifier re-stamped into a fresh minute (the minute is
// attacker-chosen) must not grow the shard map, via Put or PutBatch.
func TestDuplicateDoesNotAllocateShard(t *testing.T) {
	s := NewStore()
	if err := s.Put(fabricate(t, 0, 5)); err != nil {
		t.Fatal(err)
	}
	// fabricate derives the VPID from the seed alone, so seed 5 at
	// minute 1 replays the stored identifier with a new minute.
	replay := fabricate(t, 1, 5)
	if err := s.Put(replay); err != ErrDuplicate {
		t.Fatalf("replayed Put = %v, want ErrDuplicate", err)
	}
	if res := s.PutBatch([]*vp.Profile{fabricate(t, 2, 5)}); res.Duplicates != 1 || res.Stored != 0 {
		t.Fatalf("replayed PutBatch = %+v, want 1 duplicate", res)
	}
	if got := s.MinuteCount(); got != 1 {
		t.Errorf("MinuteCount = %d after replays, want 1 (no empty shards)", got)
	}
}

// TestConcurrentDuplicateBatches uploads the same batch from several
// goroutines at once: every profile must be stored exactly once, with
// the losers counted as duplicates, regardless of interleaving.
func TestConcurrentDuplicateBatches(t *testing.T) {
	s := NewStore()
	const n, writers = 24, 6
	batch := make([]*vp.Profile, n)
	for i := range batch {
		batch[i] = fabricate(t, int64(i%3), int64(100+i))
	}
	results := make([]BatchResult, writers)
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			results[w] = s.PutBatch(batch)
		}(w)
	}
	wg.Wait()
	var stored, dups int
	for _, r := range results {
		stored += r.Stored
		dups += r.Duplicates
		if r.Rejected != 0 {
			t.Errorf("batch rejected %d valid profiles", r.Rejected)
		}
	}
	if stored != n {
		t.Errorf("stored %d profiles across writers, want exactly %d", stored, n)
	}
	if dups != (writers-1)*n {
		t.Errorf("duplicates = %d, want %d", dups, (writers-1)*n)
	}
	if s.Len() != n {
		t.Errorf("store holds %d profiles, want %d", s.Len(), n)
	}
}

// TestViewmapCacheInvalidation verifies the epoch-keyed cache: a
// repeated site on an unchanged minute returns the identical cached
// viewmap, and ingest into an already-verified minute invalidates it —
// the next extraction sees the newcomer.
func TestViewmapCacheInvalidation(t *testing.T) {
	s := NewStore()
	trusted := fabricate(t, 0, 0)
	trusted.Trusted = true
	if err := s.Put(trusted); err != nil {
		t.Fatal(err)
	}
	for i := int64(1); i <= 5; i++ {
		if err := s.Put(fabricate(t, 0, i)); err != nil {
			t.Fatal(err)
		}
	}
	site := geo.NewRect(geo.Pt(-50, -50), geo.Pt(650, 50))
	vm1, err := s.ViewmapFor(site, 0)
	if err != nil {
		t.Fatal(err)
	}
	vm2, err := s.ViewmapFor(site, 0)
	if err != nil {
		t.Fatal(err)
	}
	if vm1 != vm2 {
		t.Error("unchanged minute must serve the cached viewmap (same pointer)")
	}
	epoch := s.MinuteEpoch(0)
	if err := s.Put(fabricate(t, 0, 6)); err != nil {
		t.Fatal(err)
	}
	if s.MinuteEpoch(0) == epoch {
		t.Error("ingest must advance the minute epoch")
	}
	vm3, err := s.ViewmapFor(site, 0)
	if err != nil {
		t.Fatal(err)
	}
	if vm3 == vm1 {
		t.Error("ingest into a verified minute must invalidate its cached viewmap")
	}
	if vm3.Len() != vm1.Len()+1 {
		t.Errorf("refreshed viewmap has %d members, want %d", vm3.Len(), vm1.Len()+1)
	}
	// The previously returned viewmap stays valid and unchanged.
	if vm1.Len() != 6 {
		t.Errorf("published viewmap mutated: %d members, want 6", vm1.Len())
	}
}

// TestViewmapForMatchesBuild holds the serving path to the batch
// construction it replaced: the incrementally maintained, cached
// viewmap must have exactly core.Build's members and edge set over the
// same profiles.
func TestViewmapForMatchesBuild(t *testing.T) {
	s := NewStore()
	var batch []*vp.Profile
	for i := int64(0); i < 40; i++ {
		p := fabricate(t, 0, i)
		if i == 0 {
			p.Trusted = true
		}
		batch = append(batch, p)
	}
	if res := s.PutBatch(batch); res.Stored != len(batch) {
		t.Fatalf("stored %d, want %d", res.Stored, len(batch))
	}
	site := geo.NewRect(geo.Pt(-50, -50), geo.Pt(650, 50))
	served, err := s.ViewmapFor(site, 0)
	if err != nil {
		t.Fatal(err)
	}
	rebuilt, err := core.Build(s.Minute(0), core.BuildConfig{
		Site: site, Minute: 0, RequirePlausible: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if served.Len() != rebuilt.Len() || served.NumEdges() != rebuilt.NumEdges() {
		t.Fatalf("served viewmap %d members / %d edges, rebuilt %d / %d",
			served.Len(), served.NumEdges(), rebuilt.Len(), rebuilt.NumEdges())
	}
	for i := range rebuilt.Profiles {
		if served.Profiles[i].ID() != rebuilt.Profiles[i].ID() {
			t.Fatalf("member order diverges at node %d", i)
		}
		if len(served.Adj[i]) != len(rebuilt.Adj[i]) {
			t.Fatalf("node %d degree %d, rebuilt %d", i, len(served.Adj[i]), len(rebuilt.Adj[i]))
		}
		for j := range rebuilt.Adj[i] {
			if served.Adj[i][j] != rebuilt.Adj[i][j] {
				t.Fatalf("node %d adjacency %v, rebuilt %v", i, served.Adj[i], rebuilt.Adj[i])
			}
		}
	}
}

// TestConcurrentIngestAndInvestigate exercises the shard locks the way
// the serving system does: batch and single uploads racing with
// repeated investigations over the same minutes. Run under -race in CI.
func TestConcurrentIngestAndInvestigate(t *testing.T) {
	s := NewStore()
	for m := int64(0); m < 2; m++ {
		p := fabricate(t, m, 7+m) // distinct seeds: the VPID derives from the seed
		p.Trusted = true
		if err := s.Put(p); err != nil {
			t.Fatal(err)
		}
	}
	site := geo.NewRect(geo.Pt(-50, -50), geo.Pt(650, 50))
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			var batch []*vp.Profile
			for i := 0; i < 12; i++ {
				batch = append(batch, fabricate(t, int64(i%2), int64(1000+w*100+i)))
			}
			s.PutBatch(batch)
			for i := 0; i < 6; i++ {
				_ = s.Put(fabricate(t, int64(i%2), int64(5000+w*100+i)))
			}
		}(w)
	}
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				vm, err := s.ViewmapFor(site, int64(i%2))
				if err != nil {
					t.Error(err)
					return
				}
				if _, err := vm.VerifySite(vm.InSite(site), core.TrustRankConfig{}); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	want := 2 + 4*(12+6)
	if s.Len() != want {
		t.Errorf("store holds %d profiles, want %d", s.Len(), want)
	}
}

// TestUploadVPBatchWire exercises the batch wire format end to end at
// the System level: valid records land, malformed records are counted
// rejected without sinking the batch, and corrupt frames abort.
func TestUploadVPBatchWire(t *testing.T) {
	sys, err := NewSystem(Config{AuthorityToken: "tok", Bank: sharedBankInternal(t)})
	if err != nil {
		t.Fatal(err)
	}
	good1 := fabricate(t, 0, 1).Marshal()
	good2 := fabricate(t, 0, 2).Marshal()
	junk := []byte{1, 2, 3}
	res, err := sys.UploadVPBatch(encodeBatchWire([][]byte{good1, junk, good2, good1}))
	if err != nil {
		t.Fatal(err)
	}
	if res.Stored != 2 || res.Rejected != 1 || res.Duplicates != 1 {
		t.Errorf("batch result = %+v, want 2 stored / 1 rejected / 1 duplicate", res)
	}
	if sys.Store().Len() != 2 {
		t.Errorf("store holds %d profiles, want 2", sys.Store().Len())
	}
	wire := encodeBatchWire([][]byte{good1})
	if _, err := sys.UploadVPBatch(wire[:len(wire)-10]); err == nil {
		t.Error("truncated batch must error")
	}
	if _, err := sys.UploadVPBatch(append(wire, 0xFF)); err == nil {
		t.Error("trailing garbage must error")
	}
}
