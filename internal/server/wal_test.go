package server

// WAL framing tests: round trip, group commit under concurrency, torn
// and hostile tails, and compaction. Crash-recovery of full systems is
// exercised in durable_test.go; this file stays at the log layer.

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"viewmap/internal/vp"
)

type walRec struct {
	lsn  uint64
	typ  byte
	body []byte
}

// scanAll replays the log at path from LSN 0 and collects the records.
func scanAll(t *testing.T, path string) []walRec {
	t.Helper()
	var out []walRec
	_, _, _, err := replayWALFile(path, 0, func(lsn uint64, typ byte, body []byte) error {
		out = append(out, walRec{lsn, typ, append([]byte(nil), body...)})
		return nil
	})
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	return out
}

func TestWALRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ingest.wal")
	w, err := openWALForAppend(path, 0, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	want := []walRec{
		{1, walRecVP, []byte("alpha")},
		{2, walRecVPBatch, []byte("")},
		{3, walRecRedeem, bytes.Repeat([]byte{0xAB}, 300)},
	}
	for _, r := range want {
		lsn, err := w.Append(r.typ, r.body, nil)
		if err != nil {
			t.Fatal(err)
		}
		if lsn != r.lsn {
			t.Fatalf("append got LSN %d, want %d", lsn, r.lsn)
		}
	}
	if got := w.SyncedLSN(); got != 3 {
		t.Fatalf("synced LSN %d, want 3", got)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	got := scanAll(t, path)
	if len(got) != len(want) {
		t.Fatalf("replayed %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i].lsn != want[i].lsn || got[i].typ != want[i].typ || !bytes.Equal(got[i].body, want[i].body) {
			t.Fatalf("record %d: got %+v want %+v", i, got[i], want[i])
		}
	}
}

// TestWALGroupCommit hammers Append from many goroutines (run it under
// -race): every append must come back with a unique LSN and survive a
// replay, however the group commits batched them.
func TestWALGroupCommit(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ingest.wal")
	w, err := openWALForAppend(path, 0, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	const n = 64
	lsns := make([]uint64, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			lsn, err := w.Append(walRecVP, []byte(fmt.Sprintf("rec-%d", i)), nil)
			if err != nil {
				t.Error(err)
				return
			}
			lsns[i] = lsn
		}(i)
	}
	wg.Wait()
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	seen := map[uint64]bool{}
	for _, lsn := range lsns {
		if lsn == 0 || seen[lsn] {
			t.Fatalf("duplicate or zero LSN %d", lsn)
		}
		seen[lsn] = true
	}
	if got := scanAll(t, path); len(got) != n {
		t.Fatalf("replayed %d records, want %d", len(got), n)
	}
}

// TestWALTornTail crashes mid-append in three ways — trailing garbage,
// a half-written header, a bit flip inside the last record — and
// checks that replay keeps the intact prefix and the reopened log
// truncates the damage before continuing the sequence.
func TestWALTornTail(t *testing.T) {
	for _, tc := range []struct {
		name string
		tear func(data []byte) []byte
	}{
		{"garbage", func(d []byte) []byte { return append(d, 0xDE, 0xAD, 0xBE) }},
		{"halfHeader", func(d []byte) []byte { return append(d, 0, 0, 0, 42) }},
		{"bitFlip", func(d []byte) []byte { d[len(d)-1] ^= 0x80; return d }},
	} {
		t.Run(tc.name, func(t *testing.T) {
			path := filepath.Join(t.TempDir(), "ingest.wal")
			w, err := openWALForAppend(path, 0, 1, 0)
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < 3; i++ {
				if _, err := w.Append(walRecVP, []byte{byte(i)}, nil); err != nil {
					t.Fatal(err)
				}
			}
			if err := w.Close(); err != nil {
				t.Fatal(err)
			}
			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(path, tc.tear(data), 0o644); err != nil {
				t.Fatal(err)
			}
			wantIntact := 3
			if tc.name == "bitFlip" {
				wantIntact = 2 // the flip corrupts record 3 itself
			}
			got := scanAll(t, path)
			if len(got) != wantIntact {
				t.Fatalf("replayed %d records after tear, want %d", len(got), wantIntact)
			}
			// Reopen exactly as recovery would: truncate the tear, then
			// append the next record in sequence.
			last, valid, _, err := replayWALFile(path, 0, func(uint64, byte, []byte) error { return nil })
			if err != nil {
				t.Fatal(err)
			}
			w2, err := openWALForAppend(path, valid, last+1, 0)
			if err != nil {
				t.Fatal(err)
			}
			lsn, err := w2.Append(walRecVP, []byte("next"), nil)
			if err != nil {
				t.Fatal(err)
			}
			if lsn != last+1 {
				t.Fatalf("resumed at LSN %d, want %d", lsn, last+1)
			}
			if err := w2.Close(); err != nil {
				t.Fatal(err)
			}
			if got := scanAll(t, path); len(got) != wantIntact+1 {
				t.Fatalf("after reopen: %d records, want %d", len(got), wantIntact+1)
			}
		})
	}
}

func TestWALTruncateThrough(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ingest.wal")
	w, err := openWALForAppend(path, 0, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 5; i++ {
		if _, err := w.Append(walRecVP, []byte{byte(i)}, nil); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.truncateThrough(3); err != nil {
		t.Fatal(err)
	}
	// The log stays appendable after compaction.
	if lsn, err := w.Append(walRecVP, []byte{6}, nil); err != nil || lsn != 6 {
		t.Fatalf("append after truncate: lsn %d err %v", lsn, err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	got := scanAll(t, path)
	wantLSNs := []uint64{4, 5, 6}
	if len(got) != len(wantLSNs) {
		t.Fatalf("got %d records after truncate, want %d", len(got), len(wantLSNs))
	}
	for i, r := range got {
		if r.lsn != wantLSNs[i] {
			t.Fatalf("record %d has LSN %d, want %d", i, r.lsn, wantLSNs[i])
		}
	}
}

// TestWALHostileLength pins the hostile-prefix hardening: a record
// header claiming far more than the file holds is a torn tail, not an
// allocation — replay must return instantly with the intact prefix.
func TestWALHostileLength(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ingest.wal")
	w, err := openWALForAppend(path, 0, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Append(walRecVP, []byte("real"), nil); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	var hostile [8]byte
	binary.BigEndian.PutUint32(hostile[0:4], 1<<31) // claims 2 GB
	if _, err := f.Write(hostile[:]); err != nil {
		t.Fatal(err)
	}
	f.Close()
	if got := scanAll(t, path); len(got) != 1 {
		t.Fatalf("replayed %d records, want the 1 intact one", len(got))
	}
}

// TestWALScanZeroFill covers the crash mode where the filesystem
// extended the file with zeros: a zero length prefix parses as an
// undersized payload and must stop the scan, not loop.
func TestWALScanZeroFill(t *testing.T) {
	var buf bytes.Buffer
	buf.Write(make([]byte, 64)) // 64 zero bytes after the (consumed) magic
	last, valid, err := walScan(bufio.NewReader(&buf), 64+8, func(uint64, byte, []byte) error {
		t.Fatal("zero fill must not produce records")
		return nil
	})
	if err != nil || last != 0 || valid != 8 {
		t.Fatalf("got last=%d valid=%d err=%v", last, valid, err)
	}
}

// TestWALAppendVecMatchesAppend pins the vectored append the batch
// path uses for its zero-copy journal: AppendVec over fragments must
// produce a byte-identical log to Append of the concatenation, and
// batchWireFrags must reassemble into exactly vp.MarshalRawBatch — so
// replay of a group-committed burst is indistinguishable from replay
// of the copying path it replaced.
func TestWALAppendVecMatchesAppend(t *testing.T) {
	recs := [][]byte{
		[]byte("first-record"),
		{},
		bytes.Repeat([]byte{0x5C}, 500),
	}
	frags := batchWireFrags(recs)
	var joined []byte
	for _, f := range frags {
		joined = append(joined, f...)
	}
	if want := vp.MarshalRawBatch(recs); !bytes.Equal(joined, want) {
		t.Fatalf("batchWireFrags reassembles to %d bytes, want %d (MarshalRawBatch)", len(joined), len(want))
	}

	dir := t.TempDir()
	vecPath := filepath.Join(dir, "vec.wal")
	refPath := filepath.Join(dir, "ref.wal")
	wv, err := openWALForAppend(vecPath, 0, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	wr, err := openWALForAppend(refPath, 0, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := wv.AppendVec(walRecVPBatch, frags, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := wr.Append(walRecVPBatch, joined, nil); err != nil {
		t.Fatal(err)
	}
	if err := wv.Close(); err != nil {
		t.Fatal(err)
	}
	if err := wr.Close(); err != nil {
		t.Fatal(err)
	}
	vecBytes, err := os.ReadFile(vecPath)
	if err != nil {
		t.Fatal(err)
	}
	refBytes, err := os.ReadFile(refPath)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(vecBytes, refBytes) {
		t.Fatalf("vectored append diverges from plain append: %d vs %d bytes", len(vecBytes), len(refBytes))
	}
	if got := scanAll(t, vecPath); len(got) != 1 || !bytes.Equal(got[0].body, joined) {
		t.Fatalf("replay of vectored record diverges")
	}
}
