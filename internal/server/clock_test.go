package server

// Wall-clock upload admission under an injectable clock: with
// Config.Now and MaxUploadLagMinutes armed, anonymous uploads whose
// minute window strays beyond the lag are rejected before they cost
// WAL space, and the same record is admitted once the clock catches
// up — no test ever sleeps to move a minute boundary. With the gate
// unarmed (every other configuration in the repo) minutes stay purely
// content-derived and nothing here applies.

import (
	"errors"
	"path/filepath"
	"sync/atomic"
	"testing"
	"time"

	"viewmap/internal/vd"
	"viewmap/internal/vp"
)

// testClock is a hand-driven admission clock ticking in whole minutes.
type testClock struct{ minute atomic.Int64 }

func (c *testClock) now() time.Time {
	return time.Unix(c.minute.Load()*vd.SegmentSeconds, 0)
}

func TestClockSkewAdmissionWindow(t *testing.T) {
	clk := &testClock{}
	clk.minute.Store(4)
	dir := t.TempDir()
	sys, err := OpenDurable(Config{
		AuthorityToken: "t", Bank: durBank(t),
		Now: clk.now, MaxUploadLagMinutes: 1,
	}, DurabilityConfig{
		WALPath:           filepath.Join(dir, "ingest.wal"),
		SnapshotInterval:  0,
		RetentionInterval: time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()

	// One record per minute window around the clock: 4 is current, 3
	// within the one-minute lag, 2 stale, 7 from the future.
	fresh := fabricate(t, 4, 1)
	lagged := fabricate(t, 3, 2)
	stale := fabricate(t, 2, 3)
	future := fabricate(t, 7, 4)

	lsnBefore := sys.DurabilityStatsSnapshot().AppendedLSN
	res, err := sys.UploadVPBatch(vp.MarshalBatch([]*vp.Profile{stale, future}))
	if err != nil {
		t.Fatal(err)
	}
	if res.Stored != 0 || res.Rejected != 2 {
		t.Fatalf("all-stale batch: %+v, want 0 stored / 2 rejected", res)
	}
	if lsn := sys.DurabilityStatsSnapshot().AppendedLSN; lsn != lsnBefore {
		t.Fatalf("stale batch advanced the WAL from %d to %d; stale records must not be journaled", lsnBefore, lsn)
	}
	res, err = sys.UploadVPBatch(vp.MarshalBatch([]*vp.Profile{fresh, lagged, stale}))
	if err != nil {
		t.Fatal(err)
	}
	if res.Stored != 2 || res.Rejected != 1 {
		t.Fatalf("mixed batch: %+v, want 2 stored / 1 rejected", res)
	}

	// The single-record path names the failure.
	if err := sys.UploadVP(stale.Marshal()); !errors.Is(err, ErrStaleMinute) {
		t.Fatalf("single stale upload: %v, want ErrStaleMinute", err)
	}
	if got := sys.Store().IngestStatsSnapshot().Stale; got != 4 {
		t.Fatalf("stale counter = %d, want 4", got)
	}

	// Trusted uploads are exempt: the authority backfills windows.
	trusted := fabricate(t, 0, 5)
	if err := sys.UploadTrustedVP("t", trusted.Marshal()); err != nil {
		t.Fatalf("trusted backfill of a stale minute: %v", err)
	}

	// Advancing the injected clock — not sleeping — re-admits the
	// rejected record: its identifier was never claimed.
	clk.minute.Store(3)
	res, err = sys.UploadVPBatch(vp.MarshalBatch([]*vp.Profile{stale}))
	if err != nil {
		t.Fatal(err)
	}
	if res.Stored != 1 {
		t.Fatalf("re-upload after clock advance: %+v, want 1 stored", res)
	}
	if got := sys.Store().Len(); got != 4 {
		t.Fatalf("stored %d profiles, want 4 (fresh, lagged, trusted, re-admitted)", got)
	}
}

// TestClockSkewDisabledByDefault pins the unarmed default: without
// MaxUploadLagMinutes every minute window is admissible, however far
// from the wall clock — the content-derived minute semantics the rest
// of the repo (and the paper) assume.
func TestClockSkewDisabledByDefault(t *testing.T) {
	sys, err := NewSystem(Config{AuthorityToken: "t", Bank: durBank(t)})
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	ancient := fabricate(t, 12, 9)
	res, err := sys.UploadVPBatch(vp.MarshalBatch([]*vp.Profile{ancient}))
	if err != nil {
		t.Fatal(err)
	}
	if res.Stored != 1 || res.Rejected != 0 {
		t.Fatalf("unarmed gate rejected a distant minute: %+v", res)
	}
	if got := sys.Store().IngestStatsSnapshot().Stale; got != 0 {
		t.Fatalf("stale counter = %d with the gate unarmed", got)
	}
}
