package server

import (
	crand "crypto/rand"
	"crypto/rsa"
	"math/big"
	"math/rand"
	"sync"
	"testing"

	"viewmap/internal/core"
	"viewmap/internal/geo"
	"viewmap/internal/reward"
	"viewmap/internal/vd"
	"viewmap/internal/vp"
)

var (
	internalKeyOnce sync.Once
	internalKey     *rsa.PrivateKey
)

// sharedBankInternal caches one RSA key for the in-package tests.
func sharedBankInternal(t testing.TB) *reward.Bank {
	t.Helper()
	internalKeyOnce.Do(func() {
		k, err := rsa.GenerateKey(crand.Reader, 1024)
		if err != nil {
			t.Fatal(err)
		}
		internalKey = k
	})
	return reward.NewBankFromKey(internalKey)
}

// fabricate builds a valid complete profile for store tests.
func fabricate(t testing.TB, minute int64, seed int64) *vp.Profile {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	track := make([]geo.Point, vd.SegmentSeconds)
	for i := range track {
		track[i] = geo.Pt(float64(i)*10, float64(seed))
	}
	p, err := core.FabricateProfile(track, minute, 0, rng)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestStorePutGetMinute(t *testing.T) {
	s := NewStore()
	p1 := fabricate(t, 0, 1)
	p2 := fabricate(t, 0, 2)
	p3 := fabricate(t, 1, 3)
	for _, p := range []*vp.Profile{p1, p2, p3} {
		if err := s.Put(p); err != nil {
			t.Fatal(err)
		}
	}
	if s.Len() != 3 {
		t.Errorf("Len = %d, want 3", s.Len())
	}
	if got, ok := s.Get(p1.ID()); !ok || got != p1 {
		t.Error("Get should return the stored profile")
	}
	if m0 := s.Minute(0); len(m0) != 2 {
		t.Errorf("Minute(0) = %d profiles, want 2", len(m0))
	}
	if m9 := s.Minute(9); len(m9) != 0 {
		t.Errorf("Minute(9) = %d profiles, want 0", len(m9))
	}
}

func TestStoreRejectsDuplicateAndInvalid(t *testing.T) {
	s := NewStore()
	p := fabricate(t, 0, 4)
	if err := s.Put(p); err != nil {
		t.Fatal(err)
	}
	if err := s.Put(p); err != ErrDuplicate {
		t.Errorf("duplicate Put = %v, want ErrDuplicate", err)
	}
	bad := &vp.Profile{VDs: p.VDs[:10], Neighbors: p.Neighbors}
	if err := s.Put(bad); err == nil {
		t.Error("invalid profile should be rejected")
	}
}

func TestStoreTrustedCount(t *testing.T) {
	s := NewStore()
	p := fabricate(t, 0, 5)
	p.Trusted = true
	s.Put(p)
	s.Put(fabricate(t, 0, 6))
	if s.TrustedCount() != 1 {
		t.Errorf("TrustedCount = %d, want 1", s.TrustedCount())
	}
}

func TestStoreConcurrentAccess(t *testing.T) {
	s := NewStore()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				p := fabricate(t, int64(i%3), int64(w*1000+i))
				_ = s.Put(p)
				s.Minute(int64(i % 3))
				s.Len()
			}
		}(w)
	}
	wg.Wait()
	if s.Len() != 8*20 {
		t.Errorf("Len = %d, want 160", s.Len())
	}
}

// TestIngestRejectionCounterParity pins the counter alignment the
// burst pipeline restored: a profile the link worker refuses advances
// the store's rejectedCount gate counter exactly as often as it
// advances the per-burst rejected result — and releases its identifier
// claim — while a replay-path burst advances neither. The rejection is
// provoked white-box (a wrong-minute profile pushed straight into a
// shard's ring: unreachable through the public API, which groups by
// the same Minute() the builder checks).
func TestIngestRejectionCounterParity(t *testing.T) {
	s := NewStore()
	defer s.Close()
	for name, countRejects := range map[string]bool{"live": true, "replay": false} {
		before := s.rejectedCount.Load()
		p := fabricate(t, 1, 7700)
		sh, err := s.ensureShard(0) // minute 0 shard, minute 1 profile
		if err != nil {
			t.Fatal(err)
		}
		s.ids.Store(p.ID(), p)
		b := &burst{profiles: []*vp.Profile{p}, countRejects: countRejects, done: make(chan struct{})}
		if !sh.ring.push(b) {
			t.Fatal("ring rejected the push")
		}
		<-b.done
		if b.stored != 0 || b.rejected != 1 || b.errs == nil || b.errs[0] == nil {
			t.Fatalf("%s: burst result stored=%d rejected=%d errs=%v, want 1 rejection", name, b.stored, b.rejected, b.errs)
		}
		wantDelta := int64(0)
		if countRejects {
			wantDelta = 1
		}
		if got := s.rejectedCount.Load() - before; got != wantDelta {
			t.Errorf("%s: rejectedCount advanced by %d, want %d (parity with BatchResult.Rejected)", name, got, wantDelta)
		}
		if s.hasID(p.ID()) {
			t.Errorf("%s: rejected profile left its identifier claimed", name)
		}
		if s.Len() != 0 {
			t.Errorf("%s: rejected profile counted as stored", name)
		}
	}
}

func TestSystemAuthorityGate(t *testing.T) {
	sys, err := NewSystem(Config{AuthorityToken: "good", Bank: sharedBankInternal(t)})
	if err != nil {
		t.Fatal(err)
	}
	p := fabricate(t, 0, 7)
	if err := sys.UploadTrustedVP("bad", p.Marshal()); err != ErrUnauthorized {
		t.Errorf("bad token = %v, want ErrUnauthorized", err)
	}
	if _, err := sys.Investigate("bad", geo.RectAround(geo.Pt(0, 0), 10), 0); err != ErrUnauthorized {
		t.Errorf("bad token investigate = %v, want ErrUnauthorized", err)
	}
	if _, err := sys.Review("bad", nil, 1); err != ErrUnauthorized {
		t.Errorf("bad token review = %v, want ErrUnauthorized", err)
	}
}

func TestSystemRewardOwnership(t *testing.T) {
	sys, err := NewSystem(Config{AuthorityToken: "tok", Bank: sharedBankInternal(t)})
	if err != nil {
		t.Fatal(err)
	}
	var q vd.Secret
	q[0] = 9
	id := vd.DeriveVPID(q)
	// No offer posted: even the right secret fails.
	if _, err := sys.ClaimReward(id, q); err == nil {
		t.Error("claim without a posted offer should fail")
	}
	var wrong vd.Secret
	if _, err := sys.ClaimReward(id, wrong); err != ErrBadOwnership {
		t.Errorf("wrong secret = %v, want ErrBadOwnership", err)
	}
	if _, err := sys.SignBlindedForReward(id, wrong, []*big.Int{big.NewInt(1)}); err != ErrBadOwnership {
		t.Errorf("wrong secret blind = %v, want ErrBadOwnership", err)
	}
}

func TestSystemSubmitVideoGate(t *testing.T) {
	sys, err := NewSystem(Config{AuthorityToken: "tok", Bank: sharedBankInternal(t)})
	if err != nil {
		t.Fatal(err)
	}
	var id vd.VPID
	id[0] = 1
	if err := sys.SubmitVideo(id, [][]byte{{1}}); err != ErrNotSolicited {
		t.Errorf("unsolicited video = %v, want ErrNotSolicited", err)
	}
}
