package server

import (
	"errors"
	"sync"
	"sync/atomic"
	"time"

	"viewmap/internal/obs"
	"viewmap/internal/vp"
)

// Ingest burst pipeline. The sequential ingest path took each minute
// shard's lock per profile and ran the whole of IncrementalBuilder.Add
// — candidate enumeration, Bloom probing, graph splice — under it, so
// ingest concurrency was bounded by lock hold time and investigations
// stalled behind uploads. The burst pipeline moves the expensive half
// out of the critical section: producers (Put, PutBatch, the batch
// upload handler) group validated, identifier-claimed profiles into
// per-minute bursts and hand them to the minute's dedicated link
// worker over a bounded SPSC ring; the worker runs builder.Stage for
// every profile of every queued burst outside the shard lock, then
// takes the lock once per drain to CommitStaged and append the slab.
// Distinct minutes link fully in parallel (one worker each), and
// within a minute the lock shrinks from "the whole linkage" to "the
// graph splice".
//
// Invariants (each pinned by a test in burst_test.go):
//   - Equivalence: a burst commits Stage results in submission order,
//     so the shard's graph, slab order, and epoch sequence are
//     bit-identical to sequential Puts of the same profiles.
//   - No lost bursts: a worker drains its ring before exiting; bursts
//     caught by an eviction or shutdown fail with retry, and the
//     submitter re-resolves the shard (eviction) or errors (closed).
//   - Counter parity: a linker rejection releases the identifier claim
//     and advances rejectedCount exactly as often as it advances
//     BatchResult.Rejected (replay bursts advance neither).

// ringSlots bounds queued bursts per shard; power of two.
const ringSlots = 256

// errStoreClosed is returned for ingest against a closed store.
var errStoreClosed = errors.New("server: store closed")

// burst is one minute-group of claimed, validated profiles in flight
// to a link worker. The worker owns the result fields until it closes
// done; afterwards they are the submitter's.
type burst struct {
	profiles []*vp.Profile
	// countRejects selects the live-path counter behavior: linker
	// rejections advance store.rejectedCount. Replay bursts leave the
	// attack-facing counters alone, like PutReplay always has.
	countRejects bool
	done         chan struct{}

	// tr, when non-nil, is the originating request's trace; the worker
	// charges the burst's ring-wait, Stage, and commit spans to it.
	// enqueued stamps the ring push for the ring-wait span; zero when
	// observability is off (the worker then skips all timing).
	tr       *obs.Trace
	enqueued time.Time

	// Results, written by the worker before close(done).
	stored      int
	quarantined int
	rejected    int
	// errs holds the per-profile ingest error (nil for accepted
	// profiles); allocated only when some profile fails.
	errs []error
	// retry marks a burst the worker could not process (shard evicted
	// or store closing); the submitter re-resolves and resubmits.
	retry bool
}

// setErr records a per-profile failure.
func (b *burst) setErr(i int, err error) {
	if b.errs == nil {
		b.errs = make([]error, len(b.profiles))
	}
	b.errs[i] = err
}

// ingestRing is the bounded queue between submitters and one shard's
// link worker: fixed power-of-two slot array, atomic head (consumer)
// and tail (producer) cursors. Multiple producers serialize on prodMu
// (the consumer side stays single and lock-free, the ndn-dpdk rxloop
// shape); wake and space are 1-token doorbells, so a drain absorbs
// every queued burst on one wakeup.
type ingestRing struct {
	slots [ringSlots]atomic.Pointer[burst]
	head  atomic.Uint64
	tail  atomic.Uint64

	prodMu sync.Mutex
	closed bool

	wake     chan struct{}
	space    chan struct{}
	closedCh chan struct{}
}

func newIngestRing() *ingestRing {
	return &ingestRing{
		wake:     make(chan struct{}, 1),
		space:    make(chan struct{}, 1),
		closedCh: make(chan struct{}),
	}
}

// push enqueues a burst, blocking while the ring is full. It returns
// false when the ring is closed — the worker is gone (shard evicted or
// store closing) and the submitter must re-resolve.
func (r *ingestRing) push(b *burst) bool {
	r.prodMu.Lock()
	for {
		if r.closed {
			r.prodMu.Unlock()
			return false
		}
		t := r.tail.Load()
		if t-r.head.Load() < ringSlots {
			r.slots[t&(ringSlots-1)].Store(b)
			r.tail.Store(t + 1)
			r.prodMu.Unlock()
			select {
			case r.wake <- struct{}{}:
			default:
			}
			return true
		}
		r.prodMu.Unlock()
		select {
		case <-r.space:
		case <-r.closedCh:
		}
		r.prodMu.Lock()
	}
}

// popAll drains every queued burst into buf (consumer side only).
func (r *ingestRing) popAll(buf []*burst) []*burst {
	h := r.head.Load()
	t := r.tail.Load()
	for ; h != t; h++ {
		slot := &r.slots[h&(ringSlots-1)]
		buf = append(buf, slot.Load())
		slot.Store(nil)
	}
	r.head.Store(h)
	select {
	case r.space <- struct{}{}:
	default:
	}
	return buf
}

// closeRing rejects future pushes and returns the leftover bursts.
// Called exactly once, by the worker on its way out.
func (r *ingestRing) closeRing() []*burst {
	r.prodMu.Lock()
	r.closed = true
	close(r.closedCh)
	r.prodMu.Unlock()
	return r.popAll(nil)
}

// startLinkWorker launches sh's link worker. Called once per shard,
// before the shard is installed in the shard map (so the ring cannot
// receive bursts earlier).
func (s *Store) startLinkWorker(sh *minuteShard) {
	if sh.ring == nil {
		return
	}
	go s.linkWorker(sh)
}

// stopLinkWorker signals sh's worker and waits for it to drain and
// exit. Idempotent; a no-op for shards without a worker.
func (sh *minuteShard) stopLinkWorker() {
	if sh.ring == nil {
		return
	}
	sh.stopOnce.Do(func() { close(sh.stopWorker) })
	<-sh.workerDone
}

// linkWorker is one shard's ingest loop: drain the ring, stage and
// commit the drained bursts, park on the doorbell when idle. It exits
// when stopped (store shutdown, shard eviction) or when it observes
// the shard evicted mid-commit; either way it closes the ring and
// fails the leftovers with retry, so no burst is ever lost.
func (s *Store) linkWorker(sh *minuteShard) {
	defer close(sh.workerDone)
	var buf []*burst
	for {
		buf = sh.ring.popAll(buf[:0])
		if len(buf) == 0 {
			select {
			case <-sh.stopWorker:
				failBursts(sh.ring.closeRing())
				return
			case <-sh.ring.wake:
			}
			continue
		}
		if !s.processBursts(sh, buf) {
			failBursts(buf)
			failBursts(sh.ring.closeRing())
			return
		}
	}
}

// failBursts fails bursts back to their submitters for resubmission.
func failBursts(bs []*burst) {
	for _, b := range bs {
		b.retry = true
		close(b.done)
	}
}

// processBursts runs one drain: stage every profile of every burst
// outside the shard lock, then commit them all under one lock
// acquisition. Returns false — with nothing committed and the staging
// state abandoned — when the shard was evicted underneath.
func (s *Store) processBursts(sh *minuteShard, bursts []*burst) bool {
	// All stage timing keys off the push timestamp: submitBurst stamps
	// it only when observability is on, so the disabled path pays an
	// IsZero check per burst and no clock reads.
	timed := false
	for _, b := range bursts {
		if !b.enqueued.IsZero() {
			timed = true
			break
		}
	}
	if timed {
		pickup := time.Now()
		for _, b := range bursts {
			if b.enqueued.IsZero() {
				continue
			}
			wait := pickup.Sub(b.enqueued)
			s.metrics.Stage(obs.StageRingWait).Record(int64(wait))
			b.tr.Observe(obs.StageRingWait, wait)
		}
	}

	// Stage phase: admission, candidate enumeration, Bloom probing.
	// Builder staging state is worker-private, so no lock is held.
	for _, b := range bursts {
		var stageStart time.Time
		if timed {
			stageStart = time.Now()
		}
		for i, p := range b.profiles {
			ok, err := sh.builder.Stage(p)
			switch {
			case err != nil:
				b.setErr(i, err)
			case !ok:
				b.quarantined++
			}
		}
		if timed {
			d := time.Since(stageStart)
			s.metrics.Stage(obs.StageLink).Record(int64(d))
			b.tr.Observe(obs.StageLink, d)
		}
	}

	// Commit phase: splice the staged graph and append the slab under
	// one lock hold.
	var commitStart time.Time
	if timed {
		commitStart = time.Now()
	}
	sh.mu.Lock()
	if sh.evicted {
		sh.mu.Unlock()
		sh.builder.AbandonStaged()
		// Reset result fields the stage phase may have touched; the
		// retried burst starts clean against the successor shard.
		for _, b := range bursts {
			b.quarantined = 0
			b.errs = nil
		}
		return false
	}
	sh.builder.CommitStaged()
	for _, b := range bursts {
		for i, p := range b.profiles {
			if b.errs != nil && b.errs[i] != nil {
				continue
			}
			sh.profiles = append(sh.profiles, p)
		}
		sh.quarantined += b.quarantined
	}
	sh.dirty = true
	close(sh.changed)
	sh.changed = make(chan struct{})
	minute := sh.builder.Minute()
	sh.mu.Unlock()

	if timed {
		// One CommitStaged covered the whole drain: the histogram gets
		// one sample, and every covered request is charged the full
		// span (spans may therefore overlap across requests).
		d := time.Since(commitStart)
		s.metrics.Stage(obs.StageCommit).Record(int64(d))
		for _, b := range bursts {
			b.tr.Observe(obs.StageCommit, d)
		}
	}

	// Accounting and acknowledgement, off the shard lock.
	for _, b := range bursts {
		for i, p := range b.profiles {
			if b.errs != nil && b.errs[i] != nil {
				// Linker rejection: nothing half-ingested. Release the
				// identifier claim and keep the gate counter aligned
				// with the per-batch result.
				s.ids.Delete(p.ID())
				b.rejected++
				if b.countRejects {
					s.rejectedCount.Add(1)
				}
				continue
			}
			b.stored++
			s.count.Add(1)
			if p.Trusted {
				s.trustedCount.Add(1)
			}
		}
		close(b.done)
	}
	s.noteMinute(minute)
	return true
}

// submitBurst hands one minute-group of claimed, validated profiles to
// the minute's link worker and waits for the commit (ack-after-link).
// It re-resolves the shard when an eviction races the submission, and
// fails with errStoreClosed once the store is shut down. With the
// viewmap cache disabled there is no linking and no worker; the
// profiles append directly under the shard lock.
func (s *Store) submitBurst(m int64, profiles []*vp.Profile, countRejects bool, tr *obs.Trace) (*burst, error) {
	for {
		if s.closed.Load() {
			return nil, errStoreClosed
		}
		sh, err := s.ensureShard(m)
		if err != nil {
			return nil, err
		}
		if sh.ring == nil {
			b := &burst{profiles: profiles}
			sh.mu.Lock()
			if sh.evicted {
				sh.mu.Unlock()
				continue
			}
			sh.profiles = append(sh.profiles, profiles...)
			sh.dirty = true
			close(sh.changed)
			sh.changed = make(chan struct{})
			sh.mu.Unlock()
			for _, p := range profiles {
				b.stored++
				s.count.Add(1)
				if p.Trusted {
					s.trustedCount.Add(1)
				}
			}
			s.noteMinute(m)
			return b, nil
		}
		b := &burst{profiles: profiles, countRejects: countRejects, done: make(chan struct{}), tr: tr}
		if s.metrics.Enabled() || tr != nil {
			b.enqueued = time.Now()
		}
		if !sh.ring.push(b) {
			continue
		}
		<-b.done
		if b.retry {
			continue
		}
		return b, nil
	}
}

// Close shuts the store's ingest side down: every shard's link worker
// drains and exits, and subsequent ingest fails with an error. Reads
// against resident shards keep working; the System calls this on
// shutdown, after its final snapshot.
func (s *Store) Close() {
	if !s.closed.CompareAndSwap(false, true) {
		return
	}
	s.mu.RLock()
	shards := make([]*minuteShard, 0, len(s.shards))
	for _, sh := range s.shards {
		shards = append(shards, sh)
	}
	s.mu.RUnlock()
	for _, sh := range shards {
		sh.stopLinkWorker()
	}
}
