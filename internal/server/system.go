package server

import (
	"bytes"
	"crypto/rand"
	"crypto/subtle"
	"encoding/binary"
	"errors"
	"fmt"
	"math/big"
	"sort"
	"sync"
	"time"

	"viewmap/internal/core"
	"viewmap/internal/evidence"
	"viewmap/internal/geo"
	"viewmap/internal/obs"
	"viewmap/internal/reward"
	"viewmap/internal/vd"
	"viewmap/internal/vp"
)

// System is the ViewMap authority service: it owns the VP database,
// runs investigations, posts solicitations and rewards, validates
// uploaded videos, and mints untraceable cash.
type System struct {
	store    *Store
	bank     *reward.Bank
	evidence *evidence.Service

	// wal is the ingest write-ahead log; nil on a non-durable system
	// (NewSystem). OpenDurable sets it together with durable.
	wal *wal
	// durable is the durability runtime (snapshot barrier, background
	// goroutines, recovery counters); nil when wal is nil.
	durable *durabilityRuntime

	// authorityToken gates trusted-VP uploads and investigations.
	authorityToken string

	// overload holds the per-endpoint-class admission gates the HTTP
	// handler sheds load through (overload.go).
	overload *overloadLimiter

	// metrics is the observability registry (telemetry.go); always
	// non-nil, disabled (nil histograms) under Config.DisableMetrics.
	metrics *obs.Registry
	// now is the admission clock (Config.Now, defaulted to time.Now);
	// maxUploadLag arms the stale-minute upload gate when positive.
	now          func() time.Time
	maxUploadLag int
	// slowRequest is the tracing threshold: a request slower than this
	// logs one structured line with its span breakdown; zero disables.
	slowRequest time.Duration

	mu            sync.Mutex
	solicitations map[vd.VPID]*Solicitation
	rewardsPosted map[vd.VPID]*RewardOffer
	reviewQueue   []*Submission

	// verdicts caches converged TrustRank verifications per investigated
	// (site, minute). Entry identity is the extraction's content epoch
	// (core.SiteView.Refresh): a deterministic function of the minute's
	// graph, so a verdict survives viewmap re-extraction and even a
	// segment evict/reload of the whole minute — the replayed minute
	// reproduces the same content epochs bit for bit. When the content
	// did change, the cached entry's converged score vector warm-starts
	// the re-verification (verifiedSite). Bounded by verdictCacheMax
	// with deterministic least-recently-used eviction (verdictSeq).
	verdictMu  sync.Mutex
	verdicts   map[investigationKey]*verdictEntry
	verdictSeq uint64
}

// investigationKey identifies one repeated investigation.
type investigationKey struct {
	site   geo.Rect
	minute int64
}

// verdictEntry is one cached verification outcome.
type verdictEntry struct {
	// epoch is the content epoch of the extraction the verdict scored;
	// gen is that extraction's generation (the verdict's score vector
	// warm-starts later verifications only within the same generation,
	// whose node-id space extends the scored one as a prefix).
	epoch, gen uint64
	// members is the scored viewmap's size, the gauge for the
	// perturbation cutoff (warmGrowthMax) on later warm starts.
	members int
	verdict *core.Verdict
	// used is the recency stamp (verdictSeq at last hit) the LRU
	// eviction orders by.
	used uint64
}

// verdictCacheMax bounds the verdict cache; investigations target few
// distinct (site, minute) pairs at a time.
const verdictCacheMax = 64

// warmGrowthMax caps the graph perturbation a warm start will chase: a
// viewmap that grew past this multiple of the scored one re-verifies
// cold (the previous vector carries too little of the mass layout to
// help, and the certified early-out would rarely fire anyway).
const warmGrowthMax = 8

// Solicitation is a posted request for the video behind a VP
// identifier. Only identifiers are public; the system never reveals
// the location or time under investigation (Section 5.2.3).
type Solicitation struct {
	ID        vd.VPID
	PostedAt  time.Time
	Fulfilled bool
}

// RewardOffer is a posted 'request for reward' for a reviewed video.
type RewardOffer struct {
	ID vd.VPID
	// Units is the amount of virtual cash granted.
	Units int
	// Remaining counts blind signatures not yet issued.
	Remaining int
}

// Submission is an uploaded video awaiting human review.
type Submission struct {
	ID     vd.VPID
	Chunks [][]byte
}

// Config parameterizes the system.
type Config struct {
	// AuthorityToken authenticates police/authority requests. Empty
	// generates a random token (retrievable via AuthorityToken).
	AuthorityToken string
	// BankBits sizes the blind-signature RSA key; zero selects 2048.
	BankBits int
	// Bank allows injecting a pre-generated bank (tests); otherwise a
	// fresh key is generated.
	Bank *reward.Bank
	// Store parameterizes the sharded VP database (DSRC range,
	// rebuild-per-request baseline mode).
	Store StoreConfig
	// Evidence parameterizes the evidence subsystem (redaction frame
	// dimensions, blur parameters, video size cap).
	Evidence evidence.Config
	// Overload bounds concurrent work per endpoint class on the HTTP
	// surface (overload.go); the zero value selects generous defaults.
	Overload OverloadConfig
	// DisableMetrics turns the observability registry into a no-op:
	// every histogram access returns nil and the record path reduces
	// to a nil check. The overhead smoke (viewmap-bench -run
	// metrics-overhead) compares this path against the default.
	DisableMetrics bool
	// SlowRequest is the tracing threshold: a request slower than this
	// emits one structured log line with its per-stage span breakdown.
	// Zero disables slow-request logging (the default; viewmap-server
	// arms it with -slow-request).
	SlowRequest time.Duration
	// Now, when non-nil, replaces time.Now as the system's admission
	// clock. Everything time-dependent on the upload admission path
	// reads the clock through this seam, so clock-skew tests drive
	// simulated minutes without sleeping.
	Now func() time.Time
	// MaxUploadLagMinutes arms wall-clock admission on the anonymous
	// upload paths: a profile whose minute window differs from the
	// admission clock's current minute by more than this is rejected
	// as stale before it costs WAL space or an fsync. Zero (the
	// default) disables the check — minutes stay purely
	// content-derived, as the offline reproduction assumes. Trusted
	// uploads are exempt: the authority backfills windows
	// deliberately.
	MaxUploadLagMinutes int
}

// NewSystem creates a system service.
func NewSystem(cfg Config) (*System, error) {
	token := cfg.AuthorityToken
	if token == "" {
		var b [16]byte
		if _, err := rand.Read(b[:]); err != nil {
			return nil, fmt.Errorf("server: generating authority token: %w", err)
		}
		token = fmt.Sprintf("%x", b)
	}
	bank := cfg.Bank
	if bank == nil {
		bits := cfg.BankBits
		if bits == 0 {
			bits = 2048
		}
		var err error
		bank, err = reward.NewBank(bits)
		if err != nil {
			return nil, err
		}
	}
	store := NewStoreWith(cfg.Store)
	ev, err := evidence.NewService(cfg.Evidence, store, bank)
	if err != nil {
		return nil, err
	}
	now := cfg.Now
	if now == nil {
		now = time.Now
	}
	sys := &System{
		store:          store,
		bank:           bank,
		evidence:       ev,
		authorityToken: token,
		overload:       newOverloadLimiter(cfg.Overload),
		metrics:        obs.NewRegistry(!cfg.DisableMetrics, knownEndpoints(), admissionClassNames()),
		slowRequest:    cfg.SlowRequest,
		now:            now,
		maxUploadLag:   cfg.MaxUploadLagMinutes,
		solicitations:  make(map[vd.VPID]*Solicitation),
		rewardsPosted:  make(map[vd.VPID]*RewardOffer),
		verdicts:       make(map[investigationKey]*verdictEntry),
	}
	// Pipeline stages recorded below the HTTP layer (ring wait, Stage,
	// CommitStaged) and the admission gates' queue-depth sampling share
	// the system's registry.
	store.metrics = sys.metrics
	sys.overload.metrics = sys.metrics
	// Verdict cache entries deliberately outlive shard eviction: they
	// are keyed by content epoch, which a segment reload reproduces bit
	// for bit (the evict-then-reload equality invariant), so a cold
	// query against an evicted minute reuses its verdicts instead of
	// re-running TrustRank.
	// Board and bank mutations journal through the system; no-ops
	// until OpenDurable attaches a WAL.
	ev.SetJournal(sys)
	return sys, nil
}

// AuthorityToken returns the token authorities authenticate with.
func (sys *System) AuthorityToken() string { return sys.authorityToken }

// Store exposes the VP database (read-mostly; used by harnesses).
func (sys *System) Store() *Store { return sys.store }

// Bank exposes the cash issuer's public key side.
func (sys *System) Bank() *reward.Bank { return sys.bank }

// ErrUnauthorized is returned for requests with a bad authority token.
var ErrUnauthorized = errors.New("server: invalid authority token")

// ErrStaleMinute is returned when wall-clock admission is armed
// (Config.MaxUploadLagMinutes) and an anonymous upload's minute window
// falls outside the tolerated lag around the admission clock.
var ErrStaleMinute = errors.New("server: profile minute outside the upload admission window")

// staleMinute reports whether a profile minute falls outside the
// armed admission window around the clock's current minute. Always
// false when MaxUploadLagMinutes is unset.
func (sys *System) staleMinute(m int64) bool {
	if sys.maxUploadLag <= 0 {
		return false
	}
	d := sys.now().Unix()/vd.SegmentSeconds - m
	if d < 0 {
		d = -d
	}
	return d > int64(sys.maxUploadLag)
}

// checkAuthority validates an authority token in constant time.
func (sys *System) checkAuthority(token string) error {
	if subtle.ConstantTimeCompare([]byte(token), []byte(sys.authorityToken)) != 1 {
		return ErrUnauthorized
	}
	return nil
}

// UploadVP ingests an anonymous VP upload (wire format). On a durable
// system the record is appended to the WAL — and fsynced — before the
// store commit, so a success return means the profile survives a crash
// (ack-after-append); structurally invalid profiles are rejected
// without touching the log.
func (sys *System) UploadVP(data []byte) error {
	p, err := vp.Unmarshal(data)
	if err != nil {
		sys.store.noteWireRejected(1)
		return err
	}
	if err := p.Validate(); err != nil {
		// Count the rejection at the store's gate without logging the
		// doomed record; Put would fail identically.
		sys.store.rejectedCount.Add(1)
		return fmt.Errorf("server: rejecting VP: %w", err)
	}
	if sys.staleMinute(p.Minute()) {
		sys.store.noteStaleRejected(1)
		return fmt.Errorf("%w (minute %d)", ErrStaleMinute, p.Minute())
	}
	if sys.store.hasID(p.ID()) {
		// Already claimed: the store below rejects deterministically, so
		// the replayed identifier never costs log space or an fsync.
		return sys.store.putPrevalidated(p)
	}
	release, err := sys.journalIngest(walRecVP, data)
	if err != nil {
		return err
	}
	defer release()
	// Validated above; the store must not re-run the structural checks.
	return sys.store.putPrevalidated(p)
}

// maxBatchRecords bounds one batched upload; at ~5 KB per VP this
// stays well under the request-body cap.
const maxBatchRecords = 1 << 14

// UploadVPBatch ingests a batched anonymous upload (the POST /v1/vp/batch
// wire format of vp.MarshalBatch). Malformed records are counted as
// rejected without sinking the rest of the batch; a corrupted frame
// (truncated length or body, trailing bytes, oversized batch) aborts
// with an error.
func (sys *System) UploadVPBatch(data []byte) (BatchResult, error) {
	return sys.uploadVPBatch(data, nil)
}

// uploadVPBatch is UploadVPBatch carrying the request's trace (nil
// for internal callers): the decode+validate pass is timed here, the
// WAL append inside journalIngestVec, and the ring/link/commit stages
// by the shard workers the trace rides to.
func (sys *System) uploadVPBatch(data []byte, tr *obs.Trace) (BatchResult, error) {
	decodeStart := time.Now()
	records, err := vp.SplitBatch(data, maxBatchRecords)
	if err != nil {
		return BatchResult{}, err
	}
	var res BatchResult
	// Zero-copy decode: records are grouped by minute with a wire peek
	// (no decode) and each minute group decodes into its own contiguous
	// arena — the slabs that land in a shard are per-shard, and decode
	// allocates per burst, not per record.
	counts := make(map[int64]int)
	for _, rec := range records {
		if m, ok := vp.PeekRecordMinute(rec); ok {
			counts[m]++
		}
	}
	arenas := make(map[int64]*vp.BatchArena, len(counts))
	valid := make([]*vp.Profile, 0, len(records))
	var journalRecs [][]byte
	for _, rec := range records {
		var p *vp.Profile
		var err error
		if m, ok := vp.PeekRecordMinute(rec); ok {
			if sys.staleMinute(m) {
				// Stale-minute admission (armed via MaxUploadLagMinutes):
				// a skewed record is turned away on the wire peek alone —
				// no decode, no arena space, no WAL append.
				res.Rejected++
				sys.store.noteStaleRejected(1)
				continue
			}
			a := arenas[m]
			if a == nil {
				a = vp.NewBatchArena(counts[m])
				arenas[m] = a
			}
			p, err = a.Unmarshal(rec)
		} else {
			// Not even profile-shaped; the plain decoder produces the
			// proper per-record error.
			p, err = vp.Unmarshal(rec)
		}
		if err != nil {
			res.Rejected++
			sys.store.noteWireRejected(1)
			continue
		}
		// The batch's only validation pass: the storage path below takes
		// the result on trust (putValidated), so a record's structural
		// checks run exactly once per upload.
		if err := p.Validate(); err != nil {
			res.Rejected++
			sys.store.rejectedCount.Add(1)
			continue
		}
		valid = append(valid, p)
		// Journal only records that can plausibly be stored: validation
		// failures and already-claimed identifiers replay to rejections
		// anyway, so logging them would let replayed or garbage batches
		// consume WAL space and fsyncs for nothing. The check is
		// advisory — the commit's atomic claim stays authoritative, and
		// a racing duplicate that slips into the log replays to a
		// no-op.
		if sys.wal != nil && !sys.store.hasID(p.ID()) {
			journalRecs = append(journalRecs, rec)
		}
	}
	decodeNS := time.Since(decodeStart)
	sys.metrics.Stage(obs.StageDecode).Record(int64(decodeNS))
	tr.Observe(obs.StageDecode, decodeNS)
	if len(journalRecs) > 0 {
		// Ack-after-append: the admitted records hit the log (and the
		// disk), re-framed with the batch wire format, before any
		// profile commits; replay re-parses them with the same
		// per-record failure policy. The fragments alias the request
		// body — the journal write copies nothing.
		release, err := sys.journalIngestVecTraced(walRecVPBatch, batchWireFrags(journalRecs), tr)
		if err != nil {
			return BatchResult{}, err
		}
		defer release()
	}
	put := sys.store.putValidatedTraced(valid, tr)
	res.Stored, res.Duplicates = put.Stored, put.Duplicates
	res.Rejected += put.Rejected
	return res, nil
}

// batchWireFrags frames wire records with the vp.MarshalRawBatch
// layout as a fragment list for the WAL's vectored append: one scratch
// buffer holds the count header and every length prefix, and the
// record fragments are the caller's sub-slices of the request body.
// Concatenated, the fragments are byte-identical to
// vp.MarshalRawBatch(recs).
func batchWireFrags(recs [][]byte) [][]byte {
	// Pre-sized so the appends below never reallocate out from under
	// the fragment sub-slices already taken.
	hdrs := make([]byte, 4, 4+4*len(recs))
	binary.BigEndian.PutUint32(hdrs[:4], uint32(len(recs)))
	frags := make([][]byte, 0, 1+2*len(recs))
	frags = append(frags, hdrs[:4])
	for _, rec := range recs {
		off := len(hdrs)
		hdrs = binary.BigEndian.AppendUint32(hdrs, uint32(len(rec)))
		frags = append(frags, hdrs[off:off+4], rec)
	}
	return frags
}

// UploadTrustedVP ingests a VP from an authority vehicle; the profile
// is marked trusted and becomes a trust seed for viewmaps.
func (sys *System) UploadTrustedVP(token string, data []byte) error {
	if err := sys.checkAuthority(token); err != nil {
		return err
	}
	p, err := vp.Unmarshal(data)
	if err != nil {
		return err
	}
	p.Trusted = true
	if err := p.Validate(); err != nil {
		sys.store.rejectedCount.Add(1)
		return fmt.Errorf("server: rejecting VP: %w", err)
	}
	if sys.store.hasID(p.ID()) {
		return sys.store.putPrevalidated(p)
	}
	release, err := sys.journalIngest(walRecVPTrusted, data)
	if err != nil {
		return err
	}
	defer release()
	return sys.store.putPrevalidated(p)
}

// InvestigationReport summarizes one viewmap verification.
type InvestigationReport struct {
	Minute         int64
	Members        int
	Edges          int
	InSite         int
	Legitimate     []vd.VPID
	NewlySolicited int
}

// Investigate fetches (or, on first sight of the site, extracts from
// the minute's incrementally maintained graph) the viewmap for an
// incident minute and site, verifies it with TrustRank, and posts
// solicitations for the legitimate VPs. Authority only.
func (sys *System) Investigate(token string, site geo.Rect, minute int64) (*InvestigationReport, error) {
	if err := sys.checkAuthority(token); err != nil {
		return nil, err
	}
	report, _, err := sys.investigateAt(site, minute)
	if err != nil {
		return nil, err
	}
	sys.mu.Lock()
	defer sys.mu.Unlock()
	for _, id := range report.Legitimate {
		if _, dup := sys.solicitations[id]; !dup {
			sys.solicitations[id] = &Solicitation{ID: id, PostedAt: sys.now()}
			report.NewlySolicited++
		}
	}
	return report, nil
}

// investigateAt extracts and verifies (site, minute) and builds the
// report, with no solicitation side effects. It additionally returns
// the verified extraction's content epoch — the identity the watch
// endpoint dedups and resumes on.
func (sys *System) investigateAt(site geo.Rect, minute int64) (*InvestigationReport, uint64, error) {
	vm, epoch, gen, err := sys.store.SiteViewmap(site, minute)
	if err != nil {
		return nil, 0, err
	}
	verdict, err := sys.verifiedSite(vm, epoch, gen, site, minute)
	if err != nil {
		return nil, 0, err
	}
	return &InvestigationReport{
		Minute:     minute,
		Members:    vm.Len(),
		Edges:      vm.NumEdges(),
		InSite:     len(vm.InSite(site)),
		Legitimate: verdict.LegitimateIDs(vm),
	}, epoch, nil
}

// InvestigateSnapshot verifies (site, minute) like Investigate but
// posts no solicitations, and returns the extraction's content epoch
// alongside the report. The watch endpoint streams reports by calling
// this each time the minute's epoch advances, emitting only when the
// content epoch moved past the previously delivered one. Authority
// only.
func (sys *System) InvestigateSnapshot(token string, site geo.Rect, minute int64) (*InvestigationReport, uint64, error) {
	if err := sys.checkAuthority(token); err != nil {
		return nil, 0, err
	}
	return sys.investigateAt(site, minute)
}

// VPVerdict is one viewmap member's wire-visible verdict, as returned
// by InvestigateReport: enough for an external harness — or an
// auditor — to score a verification run per VP without access to the
// in-memory graph.
type VPVerdict struct {
	// ID is the member's VP identifier.
	ID vd.VPID
	// Trusted marks authority VPs.
	Trusted bool
	// InSite reports whether the claimed trajectory enters the
	// investigated site.
	InSite bool
	// Legitimate reports whether Algorithm 1 marked the VP LEGITIMATE.
	Legitimate bool
	// Hops is the viewlink distance to the nearest trusted VP (-1
	// when unreachable).
	Hops int
}

// FullReport is an InvestigationReport plus the per-VP verdicts of
// every viewmap member, in ascending identifier order.
type FullReport struct {
	InvestigationReport
	// Verdicts holds one entry per viewmap member.
	Verdicts []VPVerdict
}

// InvestigateReport verifies (site, minute) like Investigate but
// returns the per-VP verdict of every viewmap member instead of
// posting solicitations — the scoring surface the online attack
// campaigns (internal/attack.Online) are graded through. It is
// read-only: no solicitation state changes. Authority only.
func (sys *System) InvestigateReport(token string, site geo.Rect, minute int64) (*FullReport, error) {
	if err := sys.checkAuthority(token); err != nil {
		return nil, err
	}
	vm, epoch, gen, err := sys.store.SiteViewmap(site, minute)
	if err != nil {
		return nil, err
	}
	verdict, err := sys.verifiedSite(vm, epoch, gen, site, minute)
	if err != nil {
		return nil, err
	}
	inSite := vm.InSite(site)
	report := &FullReport{
		InvestigationReport: InvestigationReport{
			Minute:     minute,
			Members:    vm.Len(),
			Edges:      vm.NumEdges(),
			InSite:     len(inSite),
			Legitimate: verdict.LegitimateIDs(vm),
		},
		Verdicts: make([]VPVerdict, vm.Len()),
	}
	hops := vm.HopsFromTrusted()
	for i, p := range vm.Profiles {
		report.Verdicts[i] = VPVerdict{
			ID:      p.ID(),
			Trusted: p.Trusted,
			Hops:    hops[i],
		}
	}
	for _, i := range inSite {
		report.Verdicts[i].InSite = true
	}
	for _, i := range verdict.Legitimate {
		report.Verdicts[i].Legitimate = true
	}
	// Identifier order makes the wire report independent of ingest
	// order, so two runs of the same campaign compare byte-for-byte.
	sort.Slice(report.Verdicts, func(a, b int) bool {
		return bytes.Compare(report.Verdicts[a].ID[:], report.Verdicts[b].ID[:]) < 0
	})
	return report, nil
}

// verifiedSite returns the TrustRank verdict for a viewmap and site,
// given the extraction's content epoch and generation (SiteViewmap).
// A cached verdict for the same content epoch is reused outright — the
// verdict is a deterministic function of the graph content, so this
// holds across viewmap re-extraction and across a segment evict/reload
// of the minute. When the content advanced, the cached entry's
// converged score vector warm-starts the re-verification (same
// generation only, and only within the warmGrowthMax perturbation
// cutoff); core.VerifySiteFrom certifies the warm verdict equal to the
// cold one or falls back internally. Epoch zero means the extraction
// carries no identity (the rebuild-per-request baseline), which
// degrades to verify-per-request exactly as that mode always has.
func (sys *System) verifiedSite(vm *core.Viewmap, epoch, gen uint64, site geo.Rect, minute int64) (*core.Verdict, error) {
	if epoch == 0 {
		verdict, stats, err := vm.VerifySiteFrom(vm.InSite(site), nil, core.TrustRankConfig{})
		if err != nil {
			return nil, err
		}
		sys.noteTrustRank(stats)
		return verdict, nil
	}
	key := investigationKey{site: site, minute: minute}
	sys.verdictMu.Lock()
	e := sys.verdicts[key]
	if e != nil && e.epoch == epoch {
		sys.verdictSeq++
		e.used = sys.verdictSeq
		verdict := e.verdict
		sys.verdictMu.Unlock()
		return verdict, nil
	}
	var prev []float64
	if e != nil && e.gen == gen && vm.Len() <= e.members*warmGrowthMax {
		prev = e.verdict.Scores
	}
	sys.verdictMu.Unlock()

	verdict, stats, err := vm.VerifySiteFrom(vm.InSite(site), prev, core.TrustRankConfig{})
	if err != nil {
		return nil, err
	}
	sys.noteTrustRank(stats)
	sys.verdictMu.Lock()
	if sys.verdicts[key] == nil && len(sys.verdicts) >= verdictCacheMax {
		// Deterministic LRU: evict the entry with the oldest recency
		// stamp, so a burst of >64 concurrent investigations thrashes
		// predictably (oldest first) instead of by map-iteration order.
		var stalest investigationKey
		found := false
		for k, ent := range sys.verdicts {
			if !found || ent.used < sys.verdicts[stalest].used {
				stalest, found = k, true
			}
		}
		delete(sys.verdicts, stalest)
	}
	sys.verdictSeq++
	sys.verdicts[key] = &verdictEntry{
		epoch: epoch, gen: gen, members: vm.Len(),
		verdict: verdict, used: sys.verdictSeq,
	}
	sys.verdictMu.Unlock()
	return verdict, nil
}

// noteTrustRank records one verification's convergence into the
// per-mode iteration histogram (viewmap_trustrank_iterations).
func (sys *System) noteTrustRank(stats core.VerifyStats) {
	mode := obs.TrustRankCold
	if stats.Warm {
		mode = obs.TrustRankWarm
	}
	sys.metrics.TrustRank(mode).Record(int64(stats.Iterations))
}

// TrustRankModeStats summarizes one verification mode's convergence
// behavior for GET /v1/stats and tests: how many verifications ran
// warm (resumed from a cached score vector) or cold, and the
// iteration-count quantiles they needed.
type TrustRankModeStats struct {
	Verifications uint64
	P50Iterations uint64
	P99Iterations uint64
}

// TrustRankStats reads the per-mode verification histograms, keyed by
// obs.TrustRankWarm / obs.TrustRankCold; modes with no verifications
// yet are absent. Empty when metrics are disabled.
func (sys *System) TrustRankStats() map[string]TrustRankModeStats {
	out := make(map[string]TrustRankModeStats)
	for mode, s := range sys.metrics.TrustRankSnapshots() {
		out[mode] = TrustRankModeStats{
			Verifications: s.Count,
			P50Iterations: s.Quantile(0.50),
			P99Iterations: s.Quantile(0.99),
		}
	}
	return out
}

// InvestigatePeriod runs Investigate for every unit-time window of an
// incident period ("the system builds a series of viewmaps each
// corresponding to a single unit-time during the incident period",
// Section 5.2.1), returning one report per minute. Minutes for which
// no viewmap exists to verify — nothing stored, or no trusted VP on
// record — are skipped with a nil report rather than failing the whole
// investigation; any other failure (an unreadable segment, a durability
// fault) aborts with the minute's error, because reporting a broken
// minute as a benign empty one would misstate what was verified.
func (sys *System) InvestigatePeriod(token string, site geo.Rect, firstMinute, lastMinute int64) ([]*InvestigationReport, error) {
	if err := sys.checkAuthority(token); err != nil {
		return nil, err
	}
	if lastMinute < firstMinute {
		return nil, fmt.Errorf("server: empty period %d..%d", firstMinute, lastMinute)
	}
	if lastMinute-firstMinute+1 > 60 {
		return nil, fmt.Errorf("server: period of %d minutes exceeds the 60-minute cap", lastMinute-firstMinute+1)
	}
	reports := make([]*InvestigationReport, 0, lastMinute-firstMinute+1)
	for m := firstMinute; m <= lastMinute; m++ {
		r, err := sys.Investigate(token, site, m)
		switch {
		case err == nil:
			reports = append(reports, r)
		case errors.Is(err, core.ErrNoTrusted) || errors.Is(err, ErrNoMinute):
			reports = append(reports, nil)
		default:
			return nil, fmt.Errorf("server: investigating minute %d: %w", m, err)
		}
	}
	return reports, nil
}

// Solicitations lists identifiers currently marked 'request for
// video'. Vehicles poll this anonymously.
func (sys *System) Solicitations() []vd.VPID {
	sys.mu.Lock()
	defer sys.mu.Unlock()
	out := make([]vd.VPID, 0, len(sys.solicitations))
	for id, s := range sys.solicitations {
		if !s.Fulfilled {
			out = append(out, id)
		}
	}
	return out
}

// ErrNotSolicited is returned for video uploads nobody asked for —
// the automation that shields human reviewers from dump attacks.
var ErrNotSolicited = errors.New("server: video was not solicited")

// SubmitVideo accepts an anonymously uploaded video for a solicited
// VP. The video is validated against the system-owned VP via the
// cascading hash replay before it ever reaches a human (Section
// 5.2.3); only then does it enter the review queue.
func (sys *System) SubmitVideo(id vd.VPID, chunks [][]byte) error {
	sys.mu.Lock()
	sol, ok := sys.solicitations[id]
	if !ok || sol.Fulfilled {
		sys.mu.Unlock()
		return ErrNotSolicited
	}
	sys.mu.Unlock()

	p, ok := sys.store.Get(id)
	if !ok {
		return errors.New("server: no stored VP for video")
	}
	if err := vd.Replay(id, p.VDs, chunks); err != nil {
		return fmt.Errorf("server: video fails VP validation: %w", err)
	}

	sys.mu.Lock()
	defer sys.mu.Unlock()
	if sol.Fulfilled {
		return ErrNotSolicited
	}
	sol.Fulfilled = true
	sys.reviewQueue = append(sys.reviewQueue, &Submission{ID: id, Chunks: chunks})
	return nil
}

// ReviewQueueLen returns the number of submissions awaiting review.
func (sys *System) ReviewQueueLen() int {
	sys.mu.Lock()
	defer sys.mu.Unlock()
	return len(sys.reviewQueue)
}

// Review pops the next submission and applies the investigator's
// decision. Approved submissions post a reward offer of the given
// units. Authority only.
func (sys *System) Review(token string, approve func(*Submission) bool, units int) (*Submission, error) {
	if err := sys.checkAuthority(token); err != nil {
		return nil, err
	}
	if units <= 0 {
		return nil, fmt.Errorf("server: reward units must be positive, got %d", units)
	}
	sys.mu.Lock()
	if len(sys.reviewQueue) == 0 {
		sys.mu.Unlock()
		return nil, errors.New("server: review queue empty")
	}
	sub := sys.reviewQueue[0]
	sys.reviewQueue = sys.reviewQueue[1:]
	sys.mu.Unlock()

	if approve(sub) {
		sys.mu.Lock()
		sys.rewardsPosted[sub.ID] = &RewardOffer{ID: sub.ID, Units: units, Remaining: units}
		sys.mu.Unlock()
	}
	return sub, nil
}

// PostedRewards lists identifiers marked 'request for reward'.
func (sys *System) PostedRewards() []vd.VPID {
	sys.mu.Lock()
	defer sys.mu.Unlock()
	out := make([]vd.VPID, 0, len(sys.rewardsPosted))
	for id, offer := range sys.rewardsPosted {
		if offer.Remaining > 0 {
			out = append(out, id)
		}
	}
	return out
}

// ErrBadOwnership is returned when the presented secret does not hash
// to the VP identifier.
var ErrBadOwnership = errors.New("server: secret does not prove ownership")

// ClaimReward proves ownership of a rewarded VP (R = H(Q)) and returns
// the number of cash units available.
func (sys *System) ClaimReward(id vd.VPID, q vd.Secret) (int, error) {
	if !id.Matches(q) {
		return 0, ErrBadOwnership
	}
	sys.mu.Lock()
	defer sys.mu.Unlock()
	offer, ok := sys.rewardsPosted[id]
	if !ok || offer.Remaining == 0 {
		return 0, errors.New("server: no reward posted for this VP")
	}
	return offer.Remaining, nil
}

// SignBlindedForReward issues blind signatures for up to the remaining
// units of a reward offer, after re-verifying ownership. The system
// never sees the messages it signs (Appendix A).
func (sys *System) SignBlindedForReward(id vd.VPID, q vd.Secret, blinded []*big.Int) ([]*big.Int, error) {
	if !id.Matches(q) {
		return nil, ErrBadOwnership
	}
	sys.mu.Lock()
	offer, ok := sys.rewardsPosted[id]
	if !ok || offer.Remaining < len(blinded) || len(blinded) == 0 {
		sys.mu.Unlock()
		return nil, fmt.Errorf("server: cannot issue %d signatures", len(blinded))
	}
	offer.Remaining -= len(blinded)
	sys.mu.Unlock()

	out := make([]*big.Int, 0, len(blinded))
	for _, b := range blinded {
		sig, err := sys.bank.SignBlinded(b)
		if err != nil {
			// Refund the whole batch on malformed input: the error
			// return discards every signature computed so far, so no
			// unit was actually issued.
			sys.mu.Lock()
			offer.Remaining += len(blinded)
			sys.mu.Unlock()
			return nil, err
		}
		out = append(out, sig)
	}
	return out, nil
}

// Redeem verifies and burns one unit of virtual cash at the legacy
// reward desk. On a durable system the burn is logged before it is
// acknowledged, so the double-spend ledger survives a crash.
func (sys *System) Redeem(c *reward.Cash) error {
	if err := sys.bank.Redeem(c); err != nil {
		return err
	}
	return sys.journalCommitted(walRecRedeem, encodeRedeem(redeemDeskBank, c))
}

// Evidence exposes the evidence subsystem: solicitation board,
// anonymous delivery, payout, and blurred release.
func (sys *System) Evidence() *evidence.Service { return sys.evidence }

// SolicitationReport summarizes one OpenSolicitation call.
type SolicitationReport struct {
	// Minute is the investigated unit-time window.
	Minute int64
	// Members and InSite describe the verified viewmap.
	Members, InSite int
	// Legitimate is the TrustRank-verified identifier set posted to
	// the board.
	Legitimate []vd.VPID
	// Listed and NewlyListed count the solicitation's board entries
	// after this call and how many it added.
	Listed, NewlyListed int
	// Units is the per-video offer in cash units.
	Units int
}

// OpenSolicitation runs a verified investigation for (site, minute)
// and posts (or extends) the evidence solicitation for it: the
// TrustRank-legitimate VP identifiers are listed on the public board
// at the given per-video offer. Authority only. This is the evidence
// subsystem's entry point; the legacy per-VP Investigate flow remains
// for the manual review path.
func (sys *System) OpenSolicitation(token string, site geo.Rect, minute int64, units int) (*SolicitationReport, error) {
	if err := sys.checkAuthority(token); err != nil {
		return nil, err
	}
	vm, epoch, gen, err := sys.store.SiteViewmap(site, minute)
	if err != nil {
		return nil, err
	}
	verdict, err := sys.verifiedSite(vm, epoch, gen, site, minute)
	if err != nil {
		return nil, err
	}
	legit := verdict.LegitimateIDs(vm)
	res, err := sys.evidence.Open(site, minute, legit, units)
	if err != nil {
		return nil, err
	}
	return &SolicitationReport{
		Minute:      minute,
		Members:     vm.Len(),
		InSite:      len(vm.InSite(site)),
		Legitimate:  legit,
		Listed:      res.Listed,
		NewlyListed: res.NewlyListed,
		Units:       res.Units,
	}, nil
}

// ReleaseEvidence hands the investigator the redacted copy of an
// accepted delivery. Authority only; the unredacted bytes never leave
// the evidence subsystem.
func (sys *System) ReleaseEvidence(token string, id vd.VPID) (chunks [][]byte, frames, regions int, err error) {
	if err := sys.checkAuthority(token); err != nil {
		return nil, 0, 0, err
	}
	return sys.evidence.Release(id)
}
