package server

// Native fuzz target for the WAL replay path: the record stream is
// untrusted input at recovery time (a crash can tear it anywhere, and
// operators can point the server at files they did not write), so the
// framing scanner and every record-body decoder must never panic and
// never allocate what a hostile length prefix claims. Wired into
// `make fuzz` alongside the other decoder targets.

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"math/big"
	"testing"

	"viewmap/internal/reward"
	"viewmap/internal/vd"
	"viewmap/internal/vp"
)

// walSeedStream frames a representative record of every type into one
// valid post-magic WAL stream.
func walSeedStream(tb testing.TB) []byte {
	tb.Helper()
	own := recordDurOwner(tb, 0, 23)
	var buf bytes.Buffer
	records := []struct {
		typ  byte
		body []byte
	}{
		{walRecVP, own.p.Marshal()},
		{walRecVPTrusted, own.p.Marshal()},
		{walRecVPBatch, vp.MarshalBatch([]*vp.Profile{own.p})},
		{walRecEvidenceOpen, encodeEvidenceOpen(durSite, 0, 2, []vd.VPID{own.p.ID()})},
		{walRecEvidenceDeliver, encodeEvidenceDeliver(own.p.ID(), [][]byte{[]byte("chunk")})},
		{walRecEvidencePayout, encodeEvidencePayout(own.p.ID(), 1)},
		{walRecRedeem, encodeRedeem(redeemDeskBank, &reward.Cash{M: []byte("m"), Sig: big.NewInt(7)})},
	}
	for i, r := range records {
		if err := walWriteRecord(&buf, uint64(i+1), r.typ, r.body); err != nil {
			tb.Fatal(err)
		}
	}
	return buf.Bytes()
}

// FuzzWALReplay hammers walScan + applyWALRecord with arbitrary record
// streams. Errors (torn tails, undecodable bodies) are fine; panics,
// hangs, and claim-sized allocations are not.
func FuzzWALReplay(f *testing.F) {
	seed := walSeedStream(f)
	f.Add(seed)
	f.Add(seed[:len(seed)/2])
	f.Add([]byte{})
	// A header claiming 2 GB against a few real bytes.
	hostile := binary.BigEndian.AppendUint32(nil, 1<<31)
	hostile = binary.BigEndian.AppendUint32(hostile, 0xDEADBEEF)
	f.Add(append(hostile, "short"...))
	// A CRC-valid record with a corrupt evidence-open body.
	var crafted bytes.Buffer
	walWriteRecord(&crafted, 1, walRecEvidenceOpen, []byte{1, 2, 3})
	f.Add(crafted.Bytes())
	f.Fuzz(func(t *testing.T, data []byte) {
		sys, err := NewSystem(Config{AuthorityToken: "fuzz", Bank: durBank(t)})
		if err != nil {
			t.Fatal(err)
		}
		applied := 0
		_, valid, _ := walScan(bufio.NewReader(bytes.NewReader(data)), int64(len(data))+int64(len(walMagic)),
			func(lsn uint64, typ byte, body []byte) error {
				applied++
				sys.applyWALRecord(typ, body)
				return nil
			})
		if valid < int64(len(walMagic)) || valid > int64(len(data))+int64(len(walMagic)) {
			t.Fatalf("scan reported %d valid bytes over a %d-byte stream", valid, len(data))
		}
		if applied > 0 && sys.Store().Len() < 0 {
			t.Fatal("store corrupted")
		}
	})
}
