package server

import (
	"testing"

	"viewmap/internal/core"
	"viewmap/internal/geo"
	"viewmap/internal/vp"
)

// benchInvestigate measures repeated investigations of one warm minute
// against a system loaded through the batched wire path. With the
// viewmap cache enabled this is the incremental serving path (cache
// hit + cached verdict); disabled, it is the rebuild-per-request
// baseline the serving benchmark compares against.
func benchInvestigate(b *testing.B, disableCache bool) {
	area := geo.NewRect(geo.Pt(0, 0), geo.Pt(2000, 2000))
	profiles, err := core.SynthesizeLegitimate(core.SynthConfig{N: 300, Area: area, Seed: 17})
	if err != nil {
		b.Fatal(err)
	}
	ti := core.MarkTrustedNearest(profiles, area.Center())
	sys, err := NewSystem(Config{
		AuthorityToken: "tok", Bank: sharedBankInternal(b),
		Store: StoreConfig{DisableViewmapCache: disableCache},
	})
	if err != nil {
		b.Fatal(err)
	}
	if err := sys.UploadTrustedVP("tok", profiles[ti].Marshal()); err != nil {
		b.Fatal(err)
	}
	anon := make([]*vp.Profile, 0, len(profiles)-1)
	for i, p := range profiles {
		if i != ti {
			anon = append(anon, p)
		}
	}
	if _, err := sys.UploadVPBatch(vp.MarshalBatch(anon)); err != nil {
		b.Fatal(err)
	}
	site := geo.RectAround(area.Center(), 300)
	if _, err := sys.Investigate("tok", site, 0); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sys.Investigate("tok", site, 0); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkInvestigateWarmCached is the incremental serving path end
// to end: viewmap cache hit plus verdict cache hit.
func BenchmarkInvestigateWarmCached(b *testing.B) { benchInvestigate(b, false) }

// BenchmarkInvestigateRebuildPerRequest is the pre-incremental
// baseline: core.Build plus TrustRank on every request.
func BenchmarkInvestigateRebuildPerRequest(b *testing.B) { benchInvestigate(b, true) }

// BenchmarkVerifySiteCachedViewmap runs the full TrustRank VerifySite
// every iteration over the cached, already-linked viewmap of a warm
// minute — the middle regime between the two above, isolating what
// link-on-ingest saves when the verdict itself cannot be reused.
func BenchmarkVerifySiteCachedViewmap(b *testing.B) {
	area := geo.NewRect(geo.Pt(0, 0), geo.Pt(2000, 2000))
	profiles, err := core.SynthesizeLegitimate(core.SynthConfig{N: 300, Area: area, Seed: 17})
	if err != nil {
		b.Fatal(err)
	}
	core.MarkTrustedNearest(profiles, area.Center())
	s := NewStore()
	if res := s.PutBatch(profiles); res.Stored != len(profiles) {
		b.Fatalf("stored %d of %d", res.Stored, len(profiles))
	}
	site := geo.RectAround(area.Center(), 300)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		vm, err := s.ViewmapFor(site, 0)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := vm.VerifySite(vm.InSite(site), core.TrustRankConfig{}); err != nil {
			b.Fatal(err)
		}
	}
}
