package server

// End-to-end observability tests: the Prometheus exposition and the
// stats latency/pipeline blocks over live HTTP against a durable
// system, the never-gated classification of /v1/metrics, and the
// disabled-metrics configuration rendering empty.

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"

	"viewmap/internal/core"
	"viewmap/internal/obs"
	"viewmap/internal/vp"
)

// obsUploadBatch posts one minute's population over HTTP (so the
// telemetry middleware mints the trace the pipeline stages ride).
func obsUploadBatch(t *testing.T, ts *httptest.Server, minute int64, n int, seed int64) {
	t.Helper()
	profiles, err := core.SynthesizeLegitimate(core.SynthConfig{
		N: n, Area: durArea, Minute: minute, Seed: seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	ti := core.MarkTrustedNearest(profiles, durArea.Center())
	req, _ := http.NewRequest("POST", ts.URL+"/v1/vp/trusted", bytes.NewReader(profiles[ti].Marshal()))
	req.Header.Set(authorityHeader, "t")
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("trusted upload status %d", resp.StatusCode)
	}
	anon := make([]*vp.Profile, 0, len(profiles)-1)
	for i, p := range profiles {
		if i != ti {
			anon = append(anon, p)
		}
	}
	resp, err = ts.Client().Post(ts.URL+"/v1/vp/batch", "application/octet-stream",
		bytes.NewReader(vp.MarshalBatch(anon)))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch upload status %d", resp.StatusCode)
	}
}

// TestMetricsEndToEnd runs a durable system over live HTTP and checks
// the whole exposition chain: per-endpoint and per-stage series on
// /v1/metrics, the latency/pipeline blocks and the new fsync/eviction
// counters on /v1/stats.
func TestMetricsEndToEnd(t *testing.T) {
	dir := t.TempDir()
	sys, err := OpenDurable(
		Config{AuthorityToken: "t", Bank: durBank(t)},
		DurabilityConfig{WALPath: filepath.Join(dir, "ingest.wal"), RetentionMinutes: 1},
	)
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	ts := httptest.NewServer(Handler(sys))
	defer ts.Close()

	for m := int64(0); m < 4; m++ {
		obsUploadBatch(t, ts, m, 8, 42+m)
	}
	// Age minutes past the horizon so the eviction counters move.
	if _, err := sys.Store().ApplyRetention(); err != nil {
		t.Fatal(err)
	}

	// Prometheus exposition.
	resp, err := ts.Client().Get(ts.URL + "/v1/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/v1/metrics status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("/v1/metrics content type %q", ct)
	}
	out := string(body)
	for _, want := range []string{
		"# TYPE " + obs.MetricHTTPRequestSeconds + " histogram",
		obs.MetricHTTPRequestSeconds + `_count{endpoint="/v1/vp/batch"} 4`,
		obs.MetricIngestStageSeconds + `_count{stage="decode"}`,
		obs.MetricIngestStageSeconds + `_count{stage="ring_wait"}`,
		obs.MetricIngestStageSeconds + `_count{stage="link_stage"}`,
		obs.MetricIngestStageSeconds + `_count{stage="commit"}`,
		obs.MetricIngestStageSeconds + `_count{stage="wal_append"}`,
		obs.MetricIngestStageSeconds + `_count{stage="fsync"}`,
		obs.MetricWALCommitBatchRecords + "_count",
		obs.MetricAdmissionQueueDepth + `_count{class="ingest"}`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}

	// Stats blocks.
	resp, err = ts.Client().Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	var stats statsResponse
	err = json.NewDecoder(resp.Body).Decode(&stats)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	var batchLat *endpointLatencyJSON
	for i := range stats.Latency {
		if stats.Latency[i].Endpoint == "/v1/vp/batch" {
			batchLat = &stats.Latency[i]
		}
	}
	if batchLat == nil || batchLat.Requests != 4 || batchLat.P99MS <= 0 {
		t.Fatalf("latency block for /v1/vp/batch: %+v", batchLat)
	}
	if len(stats.Pipeline.Stages) != int(obs.NumStages) {
		t.Fatalf("pipeline has %d stages", len(stats.Pipeline.Stages))
	}
	for _, st := range stats.Pipeline.Stages {
		if st.Count == 0 {
			t.Fatalf("stage %q recorded nothing", st.Stage)
		}
	}
	if stats.Pipeline.WALCommitBatch.Commits == 0 ||
		stats.Pipeline.WALCommitBatch.P99Records == 0 {
		t.Fatalf("walCommitBatch block: %+v", stats.Pipeline.WALCommitBatch)
	}
	if stats.Durability.Fsyncs == 0 || stats.Durability.FsyncTotalMS < 0 {
		t.Fatalf("durability fsync counters: %+v", stats.Durability)
	}
	if stats.Retention.Evictions == 0 || stats.Retention.EvictionTotalMS <= 0 {
		t.Fatalf("retention eviction counters: %+v", stats.Retention)
	}
}

// TestMetricsDisabled: with Config.DisableMetrics the exposition
// renders no series and the stats latency block stays empty — the
// configuration the overhead smoke benchmarks as the no-op baseline.
func TestMetricsDisabled(t *testing.T) {
	sys, err := NewSystem(Config{AuthorityToken: "t", Bank: durBank(t), DisableMetrics: true})
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	uploadMinute(t, 0, 8, 42, sys)
	ts := httptest.NewServer(Handler(sys))
	defer ts.Close()

	resp, err := ts.Client().Get(ts.URL + "/v1/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if strings.Contains(string(body), "_count{") {
		t.Fatalf("disabled exposition has series:\n%s", body)
	}
	resp, err = ts.Client().Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	var stats statsResponse
	err = json.NewDecoder(resp.Body).Decode(&stats)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if len(stats.Latency) != 0 || len(stats.Pipeline.Stages) != 0 {
		t.Fatalf("disabled stats carry telemetry: %d latency rows, %d stages",
			len(stats.Latency), len(stats.Pipeline.Stages))
	}
}
