package server_test

// Native fuzz target for the state-restore decoder: System.LoadFrom
// accepts both the full-system snapshot format and the legacy bare
// VMAPDB01 store stream, sniffing the magic — a classic confusable
// surface. Operators restore state files they did not necessarily
// write, so the decoder must never panic and must refuse hostile
// length prefixes without allocating what they claim. The hostile-
// prefix regressions are pinned as unit tests below so they run in
// every plain `go test`, not only under -fuzz.

import (
	"bytes"
	"encoding/binary"
	"strings"
	"testing"

	"viewmap/internal/core"
	"viewmap/internal/geo"
	"viewmap/internal/server"
)

// savedStateSeeds builds one full-system snapshot and one legacy bare
// store stream over a small real population.
func savedStateSeeds(tb testing.TB) (system, legacy []byte) {
	tb.Helper()
	sys, err := server.NewSystem(server.Config{AuthorityToken: "seed", Bank: sharedBank(tb)})
	if err != nil {
		tb.Fatal(err)
	}
	area := geo.NewRect(geo.Pt(0, 0), geo.Pt(1000, 1000))
	profiles, err := core.SynthesizeLegitimate(core.SynthConfig{N: 3, Area: area, Seed: 4})
	if err != nil {
		tb.Fatal(err)
	}
	core.MarkTrustedNearest(profiles, area.Center())
	for _, p := range profiles {
		trusted := p.Trusted
		p.Trusted = false
		if trusted {
			if err := sys.UploadTrustedVP("seed", p.Marshal()); err != nil {
				tb.Fatal(err)
			}
			p.Trusted = true
			continue
		}
		if err := sys.UploadVP(p.Marshal()); err != nil {
			tb.Fatal(err)
		}
	}
	var sysBuf, storeBuf bytes.Buffer
	if err := sys.SaveTo(&sysBuf); err != nil {
		tb.Fatal(err)
	}
	if err := sys.Store().SaveTo(&storeBuf); err != nil {
		tb.Fatal(err)
	}
	return sysBuf.Bytes(), storeBuf.Bytes()
}

// FuzzSystemLoadFrom hammers the restore path with both formats plus
// corruptions. Every iteration restores into a fresh system; errors
// are fine, panics and prefix-sized allocations are not.
func FuzzSystemLoadFrom(f *testing.F) {
	system, legacy := savedStateSeeds(f)
	f.Add(system)
	f.Add(legacy)
	f.Add(system[:8])
	f.Add(legacy[:12])
	f.Add([]byte("VMAPSYS1"))
	f.Add([]byte("VMAPDB01garbage"))
	hostile := append([]byte(nil), system[:8]...)
	hostile = binary.BigEndian.AppendUint64(hostile, 1<<40) // section claims 1 TB
	f.Add(hostile)
	f.Fuzz(func(t *testing.T, data []byte) {
		sys, err := server.NewSystem(server.Config{AuthorityToken: "fuzz", Bank: sharedBank(t)})
		if err != nil {
			t.Fatal(err)
		}
		loaded, err := sys.LoadFrom(bytes.NewReader(data))
		if err != nil {
			return
		}
		if loaded != sys.Store().Len() {
			t.Fatalf("LoadFrom reported %d profiles, store holds %d", loaded, sys.Store().Len())
		}
	})
}

// TestLoadFromHostileSectionLength pins the fix for the snapshot
// decoder's worst input: a section header claiming terabytes against
// a stream holding a handful of bytes must error after reading what
// is actually there — never allocate the claim.
func TestLoadFromHostileSectionLength(t *testing.T) {
	sys, err := server.NewSystem(server.Config{AuthorityToken: "t", Bank: sharedBank(t)})
	if err != nil {
		t.Fatal(err)
	}
	// A claim over the hard section cap is refused outright.
	over := []byte("VMAPSYS1")
	over = binary.BigEndian.AppendUint64(over, 1<<40)
	over = append(over, "only a few real bytes"...)
	if _, err := sys.LoadFrom(bytes.NewReader(over)); err == nil {
		t.Fatal("section claiming 1 TB must not load")
	}
	// A claim under the cap but far beyond the stream must fail on
	// the truncated read — the buffer grows only with arriving bytes,
	// so this returns in microseconds instead of allocating 4 GB.
	under := []byte("VMAPSYS1")
	under = binary.BigEndian.AppendUint64(under, 1<<32)
	under = append(under, "only a few real bytes"...)
	if _, err := sys.LoadFrom(bytes.NewReader(under)); err == nil {
		t.Fatal("section claiming 4 GB against 21 real bytes must not load")
	} else if !strings.Contains(err.Error(), "truncated") {
		t.Fatalf("unexpected error: %v", err)
	}
}

// TestLoadFromHostileRecordLength does the same for the legacy store
// stream: a record claiming more than the 1 MB cap is refused by the
// length check before any allocation.
func TestLoadFromHostileRecordLength(t *testing.T) {
	data := []byte("VMAPDB01")
	data = binary.BigEndian.AppendUint32(data, 1) // one record
	data = binary.BigEndian.AppendUint32(data, 1<<30)
	data = append(data, 0) // trusted flag
	store := server.NewStore()
	if _, err := store.LoadFrom(bytes.NewReader(data)); err == nil {
		t.Fatal("record claiming 1 GB must not load")
	}
}
