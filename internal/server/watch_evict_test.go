package server_test

// Content-epoch continuity across retention: evicting a minute shard
// and reloading it from its segment must reproduce the exact epoch
// sequence — a watcher that resumes from the last delivered epoch sees
// nothing when an evict/reload cycle happens underneath it, and sees
// exactly one report when a late ingest lands in the evicted minute.
// This pins the invariant the scenario engine's retention fault family
// leans on: epochs are derived from committed content, never from
// residency transitions.

import (
	"fmt"
	"net/http/httptest"
	"path/filepath"
	"testing"
	"time"

	"viewmap/internal/client"
	"viewmap/internal/core"
	"viewmap/internal/geo"
	"viewmap/internal/server"
	"viewmap/internal/vp"
)

func TestWatchEpochContinuityAcrossEviction(t *testing.T) {
	dir := t.TempDir()
	sys, err := server.OpenDurable(server.Config{AuthorityToken: "tok", Bank: sharedBank(t)},
		server.DurabilityConfig{
			WALPath:             filepath.Join(dir, "ingest.wal"),
			SnapshotInterval:    0,
			RetentionMinutes:    2,
			RetentionInterval:   time.Hour,
			ResidentColdMinutes: 1,
		})
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	control, err := server.NewSystem(server.Config{AuthorityToken: "tok", Bank: sharedBank(t)})
	if err != nil {
		t.Fatal(err)
	}
	defer control.Close()

	ts := httptest.NewServer(server.Handler(sys))
	defer ts.Close()
	api, err := client.NewAPI(ts.URL, ts.Client())
	if err != nil {
		t.Fatal(err)
	}

	area := geo.NewRect(geo.Pt(0, 0), geo.Pt(1500, 1500))
	site := geo.RectAround(area.Center(), 250)
	uploadWave := func(minute int64, n int, seed int64) []*vp.Profile {
		t.Helper()
		profiles, err := core.SynthesizeLegitimate(core.SynthConfig{N: n, Area: area, Minute: minute, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		ti := core.MarkTrustedNearest(profiles, area.Center())
		if err := api.UploadTrustedVP("tok", profiles[ti]); err != nil {
			t.Fatal(err)
		}
		if err := control.UploadTrustedVP("tok", profiles[ti].Marshal()); err != nil {
			t.Fatal(err)
		}
		anon := make([]*vp.Profile, 0, len(profiles)-1)
		for i, p := range profiles {
			if i != ti {
				anon = append(anon, p)
			}
		}
		res, err := api.UploadVPBatch(anon)
		if err != nil {
			t.Fatal(err)
		}
		if res.Stored != len(anon) {
			t.Fatalf("minute %d: stored %d of %d", minute, res.Stored, len(anon))
		}
		if _, err := control.UploadVPBatch(vp.MarshalBatch(anon)); err != nil {
			t.Fatal(err)
		}
		return profiles
	}

	const target = int64(1)
	uploadWave(target, 40, 61)
	snap1, e1, err := sys.InvestigateSnapshot("tok", site, target)
	if err != nil {
		t.Fatal(err)
	}
	if _, eControl, err := control.InvestigateSnapshot("tok", site, target); err != nil {
		t.Fatal(err)
	} else if eControl != e1 {
		t.Fatalf("durable epoch %d, in-memory control epoch %d for identical ingest", e1, eControl)
	}

	// A watcher resumes from the delivered epoch and parks mid-watch.
	reports := make(chan client.WatchReport, 4)
	done := make(chan error, 1)
	go func() {
		done <- api.WatchInvestigation("tok", site.Min.X, site.Min.Y, site.Max.X, site.Max.Y,
			target, e1, 1, 30*time.Second, func(r client.WatchReport) error {
				reports <- r
				return nil
			})
	}()
	// Let the watcher attach to the resident shard so eviction closes
	// its change channel underneath it; if it attaches late it falls
	// back to the non-resident poll path, which this test also accepts.
	time.Sleep(100 * time.Millisecond)

	// Push the target minute over the retention horizon and evict it.
	uploadWave(3, 8, 62)
	uploadWave(4, 8, 63)
	evicted, err := sys.Store().ApplyRetention()
	if err != nil {
		t.Fatal(err)
	}
	if evicted == 0 {
		t.Fatal("retention evicted nothing; the mid-watch eviction never happened")
	}

	// The eviction woke the watcher, which re-snapshotted through a
	// cold reload — unchanged content means an unchanged epoch, so
	// nothing may be delivered.
	select {
	case r := <-reports:
		t.Fatalf("evict/reload of unchanged content delivered epoch %d (resumed from %d)", r.Epoch, e1)
	case err := <-done:
		t.Fatalf("watch ended during eviction: %v", err)
	case <-time.After(400 * time.Millisecond):
	}

	// Direct continuity check: a snapshot of the evicted minute reloads
	// the segment and must land on the same epoch and verdict set.
	snapMid, eMid, err := sys.InvestigateSnapshot("tok", site, target)
	if err != nil {
		t.Fatal(err)
	}
	if eMid != e1 {
		t.Fatalf("epoch moved across evict/reload: %d -> %d", e1, eMid)
	}
	if fmt.Sprint(snapMid.Legitimate) != fmt.Sprint(snap1.Legitimate) {
		t.Fatal("legitimate set diverged across evict/reload")
	}

	// One late record into the evicted minute advances the epoch and is
	// the first thing the parked watcher sees.
	lateSrc, err := core.SynthesizeLegitimate(core.SynthConfig{N: 3, Area: area, Minute: target, Seed: 64})
	if err != nil {
		t.Fatal(err)
	}
	late := []*vp.Profile{lateSrc[0]}
	if res, err := api.UploadVPBatch(late); err != nil || res.Stored != 1 {
		t.Fatalf("late ingest into evicted minute: %+v, %v", res, err)
	}
	if _, err := control.UploadVPBatch(vp.MarshalBatch(late)); err != nil {
		t.Fatal(err)
	}

	// maxReports=1: delivery and a clean end arrive together, so wait
	// for the end first and then collect the buffered report.
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("watch did not end cleanly: %v", err)
		}
	case <-time.After(20 * time.Second):
		t.Fatal("timed out waiting for the post-eviction report")
	}
	var r client.WatchReport
	select {
	case r = <-reports:
	default:
		t.Fatal("watch ended without delivering the late-ingest epoch")
	}
	if r.Epoch <= e1 {
		t.Fatalf("post-ingest epoch %d did not advance past %d", r.Epoch, e1)
	}

	// The delivered epoch and content match a direct snapshot and the
	// always-resident control bit for bit.
	snapAfter, eAfter, err := sys.InvestigateSnapshot("tok", site, target)
	if err != nil {
		t.Fatal(err)
	}
	if r.Epoch != eAfter {
		t.Fatalf("streamed epoch %d, snapshot epoch %d", r.Epoch, eAfter)
	}
	snapControl, eControl, err := control.InvestigateSnapshot("tok", site, target)
	if err != nil {
		t.Fatal(err)
	}
	if eAfter != eControl {
		t.Fatalf("post-ingest epoch diverged from control: %d vs %d", eAfter, eControl)
	}
	if fmt.Sprint(snapAfter.Legitimate) != fmt.Sprint(snapControl.Legitimate) {
		t.Fatal("post-ingest legitimate set diverged from control")
	}
}
