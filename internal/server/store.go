// Package server implements the ViewMap system service: the VP
// database fed by anonymous uploads, viewmap construction and
// verification around incidents, video solicitation and validation,
// the human-review queue, and untraceable rewarding (Sections 4-5).
package server

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"viewmap/internal/core"
	"viewmap/internal/geo"
	"viewmap/internal/obs"
	"viewmap/internal/vd"
	"viewmap/internal/vp"
)

// Store is the VP database: anonymized, self-contained view profiles
// indexed by identifier and sharded by unit-time window. Each minute
// shard owns its lock, a dense slab of profiles in ingest order, and
// an incremental viewmap builder that links every accepted profile
// against the minute's existing members as it arrives — so the
// minute's visibility graph is always current and investigations
// never rebuild it from scratch. Extracted site viewmaps are cached
// per shard and invalidated by the builder's ingest epoch.
//
// Identifier lookups and duplicate rejection go through a single
// concurrent index; everything else is per-shard, so ingest into one
// minute never contends with ingest or investigation in another. The
// Store is safe for concurrent use.
type Store struct {
	cfg StoreConfig

	// mu guards the shard map. Lock order: mu may be held while
	// acquiring shard mutexes (only the persistence snapshot does, to
	// freeze one atomic cut), never the reverse; ingest holds mu just
	// long enough for a map lookup/insert, so one minute's slow
	// extraction never stalls traffic to other minutes.
	mu     sync.RWMutex
	shards map[int64]*minuteShard
	// segments marks minutes with an on-disk segment file (see
	// retention.go); a minute in segments but not in shards is evicted.
	segments map[int64]bool

	// reloadMu single-flights segment reloads: cold queries are rare
	// and a reload re-links a whole minute, so concurrent reloads of
	// any evicted minutes serialize rather than duplicating that work.
	reloadMu sync.Mutex

	// newestMinute tracks the most recent ingested minute — the
	// retention horizon's anchor. noMinute until the first ingest.
	newestMinute atomic.Int64
	// touchSeq stamps shard recency for the cold-set LRU.
	touchSeq atomic.Uint64

	// ids maps VPID -> *vp.Profile across all shards. An ingest claims
	// its identifier here first, with one atomic LoadOrStore: losers
	// drop out before any shard is created (a replayed identifier
	// carries an attacker-chosen minute and must not allocate
	// anything). The claim makes the profile Get-visible a moment
	// before its slab insertion completes; a persistence snapshot cut
	// in that window omits the in-flight profile, which is
	// indistinguishable from the upload arriving just after the cut.
	ids sync.Map

	// closed is set by Close; ingest observes it and fails fast, so no
	// new burst can enqueue behind a stopped link worker.
	closed atomic.Bool

	count        atomic.Int64
	trustedCount atomic.Int64

	// Attack-facing ingest counters. Rejections and duplicates are
	// global by construction: both fire before a shard is touched (a
	// rejected or replayed profile claims an attacker-chosen minute
	// and must not allocate one), so there is no shard to charge them
	// to. Quarantines are per-shard (see minuteShard.quarantined).
	rejectedCount  atomic.Int64
	duplicateCount atomic.Int64
	wireRejected   atomic.Int64
	// staleRejected counts uploads turned away by the wall-clock
	// admission window (counted by the System with the gate armed).
	staleRejected atomic.Int64

	// metrics, when non-nil, receives the pipeline-stage histograms
	// recorded by the link workers (ring wait, Stage, CommitStaged).
	// NewSystem attaches the registry; a bare Store records nothing.
	metrics *obs.Registry

	// Retention-eviction timing (satellite of the fsync-visibility
	// fix): evictions counts completed shard evictions, evictionNS the
	// cumulative wall time spent writing segments and dropping shards.
	evictions  atomic.Int64
	evictionNS atomic.Int64
}

// StoreConfig parameterizes the VP database.
type StoreConfig struct {
	// DSRCRange is the viewlink proximity radius used by the
	// incremental linker; zero selects the 400 m default.
	DSRCRange float64
	// DisableViewmapCache turns off the incremental serving path
	// entirely: ingest skips link-on-ingest, and every ViewmapFor
	// call rebuilds the viewmap from scratch with core.Build. This is
	// the rebuild-per-request baseline the serving benchmark compares
	// against; production configurations leave it false.
	DisableViewmapCache bool
	// SegmentDir is where evicted minutes are spilled as per-minute
	// segment files (retention.go). Empty disables spilling, and with
	// it retention.
	SegmentDir string
	// RetentionMinutes is the resident horizon: when positive (and
	// SegmentDir is set), shards older than the newest ingested minute
	// minus this many minutes are spilled to disk and evicted by
	// ApplyRetention. Zero keeps every minute resident forever.
	RetentionMinutes int
	// ResidentColdMinutes bounds how many evicted minutes reloaded by
	// cold queries may stay resident at once (LRU); zero selects 2.
	ResidentColdMinutes int
}

// minuteShard holds one unit-time window's profiles and its
// incrementally maintained viewmap.
type minuteShard struct {
	mu sync.Mutex
	// profiles is the dense slab of every stored profile of the
	// minute, in ingest order — including profiles the linker rejected
	// as implausible (they are in the database; construction decides
	// what to link).
	profiles []*vp.Profile
	builder  *core.IncrementalBuilder
	// cache holds per-site incremental extractions of the builder's
	// graph, keyed by site rectangle: each SiteView keeps its induced
	// subgraph patched under the minute's ingest instead of
	// re-extracting per epoch. Bounded by viewmapCacheMax.
	cache map[geo.Rect]*core.SiteView
	// changed is closed and replaced (under mu) whenever a commit lands
	// in the shard, waking investigation watch streams; eviction closes
	// it without replacement. Never nil.
	changed chan struct{}
	// quarantined counts profiles stored in the slab that the
	// incremental linker refused to link (implausible trajectories):
	// they are in the database — construction decides what to link —
	// but can never join this minute's viewmap.
	quarantined int
	// cold marks a shard reloaded from its segment file by a query
	// against an evicted minute; cold shards live in the LRU-bounded
	// cold resident set rather than the retention horizon.
	cold bool
	// dirty marks a shard with ingest not yet reflected in its segment
	// file; eviction rewrites the segment only when set.
	dirty bool
	// evicted marks a shard dropped from the shard map; an ingest that
	// raced the eviction re-resolves its shard instead of writing into
	// the orphan.
	evicted bool
	// lastTouch is the recency stamp for the cold-set LRU.
	lastTouch atomic.Uint64

	// ring feeds the shard's link worker (burst.go); nil when the
	// viewmap cache — and with it link-on-ingest — is disabled.
	ring *ingestRing
	// stopWorker, closed under stopOnce, tells the link worker to drain
	// and exit; workerDone is closed by the worker on the way out.
	stopWorker chan struct{}
	stopOnce   sync.Once
	workerDone chan struct{}
}

// noMinute is newestMinute's value before the first ingest.
const noMinute = int64(-1) << 62

// viewmapCacheMax bounds the per-shard site-viewmap cache. Distinct
// investigation sites per minute are few (an incident has one site;
// period investigations reuse it across minutes), so a handful of
// entries suffices.
const viewmapCacheMax = 8

// NewStore creates an empty database with default configuration.
func NewStore() *Store { return NewStoreWith(StoreConfig{}) }

// NewStoreWith creates an empty database with the given configuration.
func NewStoreWith(cfg StoreConfig) *Store {
	s := &Store{
		cfg:      cfg,
		shards:   make(map[int64]*minuteShard),
		segments: make(map[int64]bool),
	}
	s.newestMinute.Store(noMinute)
	return s
}

// ErrDuplicate is returned when a VP identifier is already stored.
var ErrDuplicate = errors.New("server: VP already stored")

// ErrNoMinute is returned by the viewmap accessors when the queried
// minute holds no stored profiles at all — neither resident nor in a
// segment file. It marks the benign "nothing happened that minute"
// case, as distinct from transient failures (an unreadable segment)
// that callers must propagate rather than misreport as empty.
var ErrNoMinute = errors.New("server: no profiles stored for minute")

// shard returns the shard for minute m, or nil when none exists.
func (s *Store) shard(m int64) *minuteShard {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.shards[m]
}

// newShard builds an empty shard for minute m (not yet installed).
// The caller must start its link worker (startLinkWorker) before
// installing it in the shard map.
func (s *Store) newShard(m int64) *minuteShard {
	sh := &minuteShard{
		builder: core.NewIncrementalBuilder(core.IncrementalConfig{
			Minute:           m,
			DSRCRange:        s.cfg.DSRCRange,
			RequirePlausible: true,
		}),
		cache:   make(map[geo.Rect]*core.SiteView),
		changed: make(chan struct{}),
	}
	if !s.cfg.DisableViewmapCache {
		sh.ring = newIngestRing()
		sh.stopWorker = make(chan struct{})
		sh.workerDone = make(chan struct{})
	}
	return sh
}

// ensureShard returns the shard for minute m, creating it if needed.
// An evicted minute is reloaded from its segment first, so a late
// ingest into an old minute joins the minute's full population rather
// than a fresh shard shadowing it. Only callers that have already
// claimed a profile's identifier for this minute may create shards.
func (s *Store) ensureShard(m int64) (*minuteShard, error) {
	if sh := s.shard(m); sh != nil {
		return sh, nil
	}
	s.mu.RLock()
	spilled := s.segments[m]
	s.mu.RUnlock()
	if spilled {
		return s.reloadSegment(m)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed.Load() {
		// Close snapshots the shard map to stop workers; a shard
		// installed afterwards would leak a worker no one stops.
		return nil, errStoreClosed
	}
	sh := s.shards[m]
	if sh == nil {
		sh = s.newShard(m)
		s.startLinkWorker(sh)
		s.shards[m] = sh
	}
	return sh, nil
}

// noteMinute advances the newest-minute watermark (the retention
// horizon's anchor) to m if it is ahead.
func (s *Store) noteMinute(m int64) {
	for {
		cur := s.newestMinute.Load()
		if m <= cur || s.newestMinute.CompareAndSwap(cur, m) {
			return
		}
	}
}

// Put validates and stores a profile. Duplicate identifiers are
// rejected: an identifier is the hash of a secret only its owner
// holds, so a collision is either a replay or an attack — and it is
// rejected before the minute shard is even created, since the minute
// a replay claims is attacker-chosen. The accepted profile is linked
// into its minute's viewmap before Put returns.
func (s *Store) Put(p *vp.Profile) error {
	if err := p.Validate(); err != nil {
		s.rejectedCount.Add(1)
		return fmt.Errorf("server: rejecting VP: %w", err)
	}
	return s.putClaimed(p, true)
}

// putPrevalidated stores a profile the caller has already run through
// vp.Profile.Validate — the System's upload handlers validate during
// admission and must not pay (or recount) the structural checks a
// second time on the storage path. Semantics are otherwise Put's.
func (s *Store) putPrevalidated(p *vp.Profile) error {
	return s.putClaimed(p, true)
}

// PutReplay stores a profile on the WAL-replay path: identical to Put
// except that rejections and duplicates do not advance the attack-
// facing ingest counters — a replayed record was already counted (or
// already stored) when it was first admitted, and recovery must not
// inflate the gate statistics.
func (s *Store) PutReplay(p *vp.Profile) error {
	if err := p.Validate(); err != nil {
		return fmt.Errorf("server: rejecting VP: %w", err)
	}
	return s.putClaimed(p, false)
}

// putClaimed claims a validated profile's identifier and submits it to
// its minute's link worker as a single-profile burst. count selects
// the live-path counter behavior (see PutReplay).
func (s *Store) putClaimed(p *vp.Profile, count bool) error {
	if _, dup := s.ids.LoadOrStore(p.ID(), p); dup {
		if count {
			s.duplicateCount.Add(1)
		}
		return ErrDuplicate
	}
	b, err := s.submitBurst(p.Minute(), []*vp.Profile{p}, count, nil)
	if err != nil {
		s.ids.Delete(p.ID())
		return err
	}
	if b.errs != nil && b.errs[0] != nil {
		// The worker already released the identifier claim and aligned
		// the counters.
		return b.errs[0]
	}
	return nil
}

// BatchResult summarizes one batched ingest.
type BatchResult struct {
	// Stored counts profiles accepted into the database.
	Stored int
	// Duplicates counts profiles rejected for an already-stored
	// identifier.
	Duplicates int
	// Rejected counts profiles that failed validation (or, on the
	// HTTP path, failed to parse).
	Rejected int
}

// PutBatch validates and stores a batch of profiles, grouping them by
// minute so each minute's burst goes to its link worker in one piece
// rather than one submission per profile. Per-profile failures are
// counted, not fatal: the rest of the batch still lands.
func (s *Store) PutBatch(ps []*vp.Profile) BatchResult {
	var res BatchResult
	valid := make([]*vp.Profile, 0, len(ps))
	for _, p := range ps {
		if err := p.Validate(); err != nil {
			res.Rejected++
			s.rejectedCount.Add(1)
			continue
		}
		valid = append(valid, p)
	}
	put := s.putValidated(valid)
	res.Stored = put.Stored
	res.Duplicates = put.Duplicates
	res.Rejected += put.Rejected
	return res
}

// putValidated claims and stores already-validated profiles, grouped
// by minute into one burst per shard. PutBatch layers validation on
// top; the System's batch upload handler calls it directly, having
// validated each profile exactly once during admission.
func (s *Store) putValidated(ps []*vp.Profile) BatchResult {
	return s.putValidatedTraced(ps, nil)
}

// putValidatedTraced is putValidated carrying the request's trace so
// the per-minute bursts can charge their ring-wait, Stage, and commit
// spans back to the originating upload.
func (s *Store) putValidatedTraced(ps []*vp.Profile, tr *obs.Trace) BatchResult {
	var res BatchResult
	byMinute := make(map[int64][]*vp.Profile)
	for _, p := range ps {
		// Claim identifiers first: duplicates (from other uploads or
		// within the batch) drop out before a shard is created for an
		// attacker-chosen minute, as in Put.
		if _, dup := s.ids.LoadOrStore(p.ID(), p); dup {
			res.Duplicates++
			s.duplicateCount.Add(1)
			continue
		}
		byMinute[p.Minute()] = append(byMinute[p.Minute()], p)
	}
	for m, group := range byMinute {
		b, err := s.submitBurst(m, group, true, tr)
		if err != nil {
			// The minute's segment is unreadable (or the store is shut
			// down); release the claims so a retry after the operator
			// intervenes can still land.
			for _, p := range group {
				s.ids.Delete(p.ID())
				res.Rejected++
				s.rejectedCount.Add(1)
			}
			continue
		}
		res.Stored += b.stored
		res.Rejected += b.rejected
	}
	return res
}

// hasID reports whether an identifier is claimed — by a live profile
// or an evicted marker — without triggering any segment reload. The
// ingest journal uses it as an advisory pre-filter so replayed
// duplicates do not cost WAL space and fsyncs; the authoritative
// rejection still happens at the commit's atomic claim.
func (s *Store) hasID(id vd.VPID) bool {
	_, ok := s.ids.Load(id)
	return ok
}

// Get returns the profile with the given identifier. An identifier
// whose minute was evicted transparently reloads the minute's segment
// (the profile — and its whole shard — becomes cold-resident).
func (s *Store) Get(id vd.VPID) (*vp.Profile, bool) {
	v, ok := s.ids.Load(id)
	if !ok {
		return nil, false
	}
	if p, ok := v.(*vp.Profile); ok {
		return p, true
	}
	ref := v.(evictedRef)
	if _, err := s.reloadSegment(ref.minute); err != nil {
		return nil, false
	}
	v, ok = s.ids.Load(id)
	if !ok {
		return nil, false
	}
	p, ok := v.(*vp.Profile)
	return p, ok
}

// residentShard resolves minute m to a resident shard, reloading its
// segment when the minute was evicted; nil when the minute holds no
// profiles at all. Cold shards are recency-stamped for the LRU.
func (s *Store) residentShard(m int64) (*minuteShard, error) {
	sh := s.shard(m)
	if sh == nil {
		s.mu.RLock()
		spilled := s.segments[m]
		s.mu.RUnlock()
		if !spilled {
			return nil, nil
		}
		var err error
		if sh, err = s.reloadSegment(m); err != nil {
			return nil, err
		}
	}
	if sh.cold {
		s.touch(sh)
	}
	return sh, nil
}

// Minute returns the profiles recorded during the given unit-time
// window, in ingest order. The returned slice is a copy and safe to
// retain.
func (s *Store) Minute(m int64) []*vp.Profile {
	sh, err := s.residentShard(m)
	if sh == nil || err != nil {
		return nil
	}
	sh.mu.Lock()
	defer sh.mu.Unlock()
	out := make([]*vp.Profile, len(sh.profiles))
	copy(out, sh.profiles)
	return out
}

// Minutes returns the unit-time windows with at least one stored
// profile — resident or evicted to a segment file — ascending.
func (s *Store) Minutes() []int64 {
	s.mu.RLock()
	seen := make(map[int64]bool, len(s.shards)+len(s.segments))
	for m := range s.shards {
		seen[m] = true
	}
	for m := range s.segments {
		seen[m] = true
	}
	s.mu.RUnlock()
	out := make([]int64, 0, len(seen))
	for m := range seen {
		out = append(out, m)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// snapshot returns every stored profile in (minute, ingest) order as
// one atomic cut: it freezes the shard map and then holds every
// shard's lock simultaneously while copying, so a save racing ongoing
// ingest can never tear a multi-minute batch (observe a later
// insertion while missing an earlier one). Uploads whose identifier
// claim is in flight but whose insertion has not started are omitted,
// exactly as if they arrived just after the cut (see ids).
func (s *Store) snapshot() []*vp.Profile {
	s.mu.Lock()
	defer s.mu.Unlock()
	minutes := make([]int64, 0, len(s.shards))
	for m := range s.shards {
		minutes = append(minutes, m)
	}
	sort.Slice(minutes, func(i, j int) bool { return minutes[i] < minutes[j] })
	for _, m := range minutes {
		s.shards[m].mu.Lock()
	}
	var out []*vp.Profile
	for _, m := range minutes {
		out = append(out, s.shards[m].profiles...)
	}
	for _, m := range minutes {
		s.shards[m].mu.Unlock()
	}
	return out
}

// Len returns the number of stored profiles.
func (s *Store) Len() int { return int(s.count.Load()) }

// MinuteCount returns the number of unit-time windows holding at
// least one profile — resident or evicted — without materializing the
// minute list.
func (s *Store) MinuteCount() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	n := len(s.shards)
	for m := range s.segments {
		if _, ok := s.shards[m]; !ok {
			n++
		}
	}
	return n
}

// TrustedCount returns the number of stored trusted profiles.
func (s *Store) TrustedCount() int { return int(s.trustedCount.Load()) }

// IngestStats are the store's attack-facing ingest counters: how many
// uploads the admission pipeline turned away, and at which gate.
type IngestStats struct {
	// Rejected counts profiles that failed §5.1.1 structural
	// validation (truncated minutes, inconsistent identifiers,
	// poisoned filters).
	Rejected int
	// WireRejected counts wire records that did not even parse into a
	// profile (counted by the System on the HTTP paths).
	WireRejected int
	// Duplicates counts uploads rejected for an already-claimed
	// identifier — replays, whatever minute they pretended to be from.
	Duplicates int
	// Quarantined counts stored profiles the incremental linker
	// refused to link (implausible trajectories), summed over shards.
	Quarantined int
	// Stale counts uploads rejected by the wall-clock admission
	// window (Config.MaxUploadLagMinutes); zero with the gate unarmed.
	Stale int
}

// IngestStatsSnapshot reads the current ingest counters.
func (s *Store) IngestStatsSnapshot() IngestStats {
	return s.IngestStatsFrom(s.ShardStats())
}

// IngestStatsFrom builds the ingest counters from an already-taken
// ShardStats pass: callers that surface both (the stats endpoint)
// lock each shard once, and the quarantine total is consistent with
// the per-shard counts by construction.
func (s *Store) IngestStatsFrom(shards []ShardStat) IngestStats {
	st := IngestStats{
		Rejected:     int(s.rejectedCount.Load()),
		WireRejected: int(s.wireRejected.Load()),
		Duplicates:   int(s.duplicateCount.Load()),
		Stale:        int(s.staleRejected.Load()),
	}
	for _, sh := range shards {
		st.Quarantined += sh.Quarantined
	}
	return st
}

// noteWireRejected records n wire records that failed to parse into
// profiles; the System's HTTP upload paths call this so the counter
// sits next to the other admission-gate counters.
func (s *Store) noteWireRejected(n int) {
	if n > 0 {
		s.wireRejected.Add(int64(n))
	}
}

// noteStaleRejected counts uploads refused by the wall-clock
// admission window.
func (s *Store) noteStaleRejected(n int) {
	if n > 0 {
		s.staleRejected.Add(int64(n))
	}
}

// ShardStat describes one minute shard's attack-facing state.
type ShardStat struct {
	// Minute is the shard's unit-time window.
	Minute int64
	// VPs counts profiles stored in the shard's slab.
	VPs int
	// Quarantined counts slab profiles the linker refused to link.
	Quarantined int
	// Epoch is the shard builder's ingest epoch (zero with the
	// viewmap cache disabled).
	Epoch uint64
}

// ShardStats returns one ShardStat per minute shard, ascending by
// minute.
func (s *Store) ShardStats() []ShardStat {
	s.mu.RLock()
	minutes := make([]int64, 0, len(s.shards))
	shards := make([]*minuteShard, 0, len(s.shards))
	for m, sh := range s.shards {
		minutes = append(minutes, m)
		shards = append(shards, sh)
	}
	s.mu.RUnlock()
	out := make([]ShardStat, len(shards))
	for i, sh := range shards {
		sh.mu.Lock()
		out[i] = ShardStat{
			Minute:      minutes[i],
			VPs:         len(sh.profiles),
			Quarantined: sh.quarantined,
			Epoch:       sh.builder.Epoch(),
		}
		sh.mu.Unlock()
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Minute < out[j].Minute })
	return out
}

// MinuteEpoch returns the ingest epoch of a minute's incremental
// builder (zero for an empty minute). The epoch advances on every
// linked ingest; an unchanged epoch guarantees cached viewmaps for
// the minute are still current.
func (s *Store) MinuteEpoch(m int64) uint64 {
	sh, err := s.residentShard(m)
	if sh == nil || err != nil {
		return 0
	}
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return sh.builder.Epoch()
}

// ViewmapFor returns the viewmap for an investigation site and minute
// (SiteViewmap without the identity stamps, for callers that do not
// cache verdicts).
func (s *Store) ViewmapFor(site geo.Rect, minute int64) (*core.Viewmap, error) {
	vm, _, _, err := s.SiteViewmap(site, minute)
	return vm, err
}

// SiteViewmap returns the viewmap for an investigation site and
// minute, together with its content epoch and extraction generation
// (see core.SiteView.Refresh). On the incremental path (the default)
// the minute's maintained graph is already linked and each site keeps
// a patched induced subgraph, so a repeated site pays only for the
// ingest delta since its last extraction — zero when the minute's
// content around the site is unchanged. With DisableViewmapCache set,
// the viewmap is rebuilt from scratch with core.Build on every call
// (the rebuild-per-request baseline) and both stamps are zero: the
// identity is unknown and callers must not cache verdicts under it.
//
// The returned viewmap is immutable; later ingests produce new
// viewmaps rather than mutating published ones, so callers may use it
// without locking, concurrently with further uploads.
func (s *Store) SiteViewmap(site geo.Rect, minute int64) (*core.Viewmap, uint64, uint64, error) {
	sh, err := s.residentShard(minute)
	if err != nil {
		return nil, 0, 0, err
	}
	if sh == nil {
		return nil, 0, 0, fmt.Errorf("%w %d", ErrNoMinute, minute)
	}
	if s.cfg.DisableViewmapCache {
		// Baseline: snapshot the slab under the lock, relink outside it.
		sh.mu.Lock()
		profiles := make([]*vp.Profile, len(sh.profiles))
		copy(profiles, sh.profiles)
		sh.mu.Unlock()
		vm, err := core.Build(profiles, core.BuildConfig{
			Site: site, Minute: minute,
			DSRCRange:        s.cfg.DSRCRange,
			RequirePlausible: true,
		})
		return vm, 0, 0, err
	}
	sh.mu.Lock()
	defer sh.mu.Unlock()
	sv := sh.cache[site]
	if sv == nil {
		if len(sh.cache) >= viewmapCacheMax {
			// Evict an arbitrary entry; the cache is tiny and a re-created
			// SiteView only costs one fresh extraction.
			for k := range sh.cache {
				delete(sh.cache, k)
				break
			}
		}
		sv = core.NewSiteView(sh.builder, site, 0)
		sh.cache[site] = sv
	}
	return sv.Refresh()
}

// MinuteChange returns the minute's current builder epoch and a
// channel that is closed on the next commit into the minute (or when
// the minute's shard is evicted — re-resolve and re-arm). The channel
// is read under the same shard lock that commits advance the epoch
// under, so a caller that reads (epoch, ch), then finds no fresh
// content at that epoch, can safely block on ch: any later commit
// closes it. A nil channel means the minute is not resident; callers
// poll instead of blocking.
func (s *Store) MinuteChange(m int64) (uint64, <-chan struct{}) {
	sh := s.shard(m)
	if sh == nil {
		return 0, nil
	}
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return sh.builder.Epoch(), sh.changed
}
