// Package server implements the ViewMap system service: the VP
// database fed by anonymous uploads, viewmap construction and
// verification around incidents, video solicitation and validation,
// the human-review queue, and untraceable rewarding (Sections 4-5).
package server

import (
	"errors"
	"fmt"
	"sync"

	"viewmap/internal/vd"
	"viewmap/internal/vp"
)

// Store is the VP database: anonymized, self-contained view profiles
// indexed by identifier and unit-time window. It is safe for
// concurrent use.
type Store struct {
	mu       sync.RWMutex
	byID     map[vd.VPID]*vp.Profile
	byMinute map[int64][]*vp.Profile
}

// NewStore creates an empty database.
func NewStore() *Store {
	return &Store{
		byID:     make(map[vd.VPID]*vp.Profile),
		byMinute: make(map[int64][]*vp.Profile),
	}
}

// ErrDuplicate is returned when a VP identifier is already stored.
var ErrDuplicate = errors.New("server: VP already stored")

// Put validates and stores a profile. Duplicate identifiers are
// rejected: an identifier is the hash of a secret only its owner
// holds, so a collision is either a replay or an attack.
func (s *Store) Put(p *vp.Profile) error {
	if err := p.Validate(); err != nil {
		return fmt.Errorf("server: rejecting VP: %w", err)
	}
	id := p.ID()
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, dup := s.byID[id]; dup {
		return ErrDuplicate
	}
	s.byID[id] = p
	s.byMinute[p.Minute()] = append(s.byMinute[p.Minute()], p)
	return nil
}

// Get returns the profile with the given identifier.
func (s *Store) Get(id vd.VPID) (*vp.Profile, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	p, ok := s.byID[id]
	return p, ok
}

// Minute returns the profiles recorded during the given unit-time
// window. The returned slice is a copy and safe to retain.
func (s *Store) Minute(m int64) []*vp.Profile {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]*vp.Profile, len(s.byMinute[m]))
	copy(out, s.byMinute[m])
	return out
}

// Len returns the number of stored profiles.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.byID)
}

// TrustedCount returns the number of stored trusted profiles.
func (s *Store) TrustedCount() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	n := 0
	for _, p := range s.byID {
		if p.Trusted {
			n++
		}
	}
	return n
}
