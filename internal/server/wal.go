package server

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"viewmap/internal/obs"
)

// Ingest write-ahead log. Every admitted mutation — VP uploads (single,
// trusted, batch), evidence-board transitions (solicitation open,
// accepted delivery, payout debit), and bank redemptions — is appended
// to a per-process log and fsynced before the caller's request is
// acknowledged, so a crash never loses an acknowledged mutation: the
// recovery path loads the newest snapshot and replays the log tail over
// it (replay is idempotent; see System.applyWALRecord).
//
// On-disk layout: an 8-byte magic followed by records framed as
//
//	u32 payload length | u32 CRC-32C(payload) | payload
//	payload = u64 LSN | u8 record type | body
//
// The CRC covers the whole payload, so a torn or bit-flipped tail —
// the expected state after a crash mid-append — fails the checksum and
// replay stops at the last intact record; the opener truncates the
// file there. Record bodies are type-specific (docs/persistence-format.md
// specifies each byte for byte).
//
// Appends are group-committed: concurrent appenders buffer their
// records under the log lock and a single fsync — batched further by
// the optional sync-interval knob — makes a whole batch of them
// durable at once. Every Append still blocks until its own record is
// synced; the knob trades acknowledgement latency for fsyncs per
// second, never durability.

// walMagic heads a WAL file so arbitrary files are rejected.
var walMagic = [8]byte{'V', 'M', 'A', 'P', 'W', 'A', 'L', '1'}

// WAL record types. The zero value is reserved so a zero-filled torn
// region can never masquerade as a typed record.
const (
	// walRecVP carries one anonymous VP wire record (vp.Marshal).
	walRecVP byte = 1
	// walRecVPTrusted carries one authority VP wire record; the
	// trusted mark is implied by the type.
	walRecVPTrusted byte = 2
	// walRecVPBatch carries one batched upload's raw wire bytes
	// (vp.MarshalBatch framing); replay re-parses them with the same
	// per-record failure policy the live path used.
	walRecVPBatch byte = 3
	// walRecEvidenceOpen carries one solicitation-board posting.
	walRecEvidenceOpen byte = 4
	// walRecEvidenceDeliver carries one accepted evidence delivery.
	walRecEvidenceDeliver byte = 5
	// walRecEvidencePayout carries one payout entitlement debit.
	walRecEvidencePayout byte = 6
	// walRecRedeem carries one redeemed cash unit (desk byte + cash).
	walRecRedeem byte = 7
)

// maxWALRecord bounds one WAL record. The largest legitimate record is
// an accepted evidence delivery (a 64 MB video plus framing); the cap
// is checked on append and again on replay, where the length prefix is
// untrusted input.
const maxWALRecord = 128 << 20

// walCRC is the Castagnoli table; CRC-32C has hardware support on the
// platforms the server targets.
var walCRC = crc32.MakeTable(crc32.Castagnoli)

// errWALClosed is returned for appends against a closed log.
var errWALClosed = errors.New("server: WAL closed")

// wal is the append side of the ingest log. Safe for concurrent use.
type wal struct {
	path string

	mu     sync.Mutex
	cond   *sync.Cond
	f      *os.File
	bw     *bufio.Writer
	next   uint64 // next LSN to assign
	buffed uint64 // last LSN written into bw
	synced uint64 // last LSN known durable
	err    error  // sticky I/O error; the log is dead once set
	closed bool

	interval time.Duration
	syncReq  chan struct{}
	syncDone chan struct{}

	// fsync makes the log file durable; the default is (*os.File).Sync.
	// DurabilityConfig.Fsync replaces it (via setFsync) so fault plans
	// can inject slow-disk stalls on the group-commit path.
	fsync func(*os.File) error

	// metrics, when non-nil, receives the fsync latency and the
	// group-commit batch size of every sync (attached by OpenDurable).
	metrics *obs.Registry
	// fsyncs / fsyncNS count group-commit fsyncs and their cumulative
	// wall time for GET /v1/stats; kept even when metrics are off.
	fsyncs  atomic.Int64
	fsyncNS atomic.Int64
}

// setFsync installs a replacement for the file-sync call on the
// group-commit and compaction paths. nil restores the default. Callers
// must install hooks before the log takes appends.
func (w *wal) setFsync(fn func(*os.File) error) {
	if fn == nil {
		fn = (*os.File).Sync
	}
	w.mu.Lock()
	w.fsync = fn
	w.mu.Unlock()
}

// openWALForAppend opens (creating if needed) the log for appending.
// validSize is the byte length of the intact record prefix as
// determined by a prior replay scan (0 for a new or torn-header file);
// anything beyond it — the torn tail of a crashed append — is
// truncated away. nextLSN is one past the last replayed LSN.
func openWALForAppend(path string, validSize int64, nextLSN uint64, interval time.Duration) (*wal, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, err
	}
	if validSize < int64(len(walMagic)) {
		// New file, or a crash tore even the header: start clean.
		if err := f.Truncate(0); err != nil {
			f.Close()
			return nil, err
		}
		if _, err := f.Write(walMagic[:]); err != nil {
			f.Close()
			return nil, err
		}
	} else if err := f.Truncate(validSize); err != nil {
		f.Close()
		return nil, err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return nil, err
	}
	if _, err := f.Seek(0, io.SeekEnd); err != nil {
		f.Close()
		return nil, err
	}
	if nextLSN == 0 {
		nextLSN = 1
	}
	w := &wal{
		path:     path,
		f:        f,
		bw:       bufio.NewWriterSize(f, 1<<20),
		next:     nextLSN,
		buffed:   nextLSN - 1,
		synced:   nextLSN - 1,
		interval: interval,
		syncReq:  make(chan struct{}, 1),
		syncDone: make(chan struct{}),
		fsync:    (*os.File).Sync,
	}
	w.cond = sync.NewCond(&w.mu)
	go w.syncLoop()
	return w, nil
}

// Append writes one record and blocks until it is durable (buffered,
// flushed, and fsynced — possibly by a group commit covering later
// appenders too). It returns the record's LSN. onAssign, when non-nil,
// runs under the log lock at the moment the LSN is assigned — the
// snapshot barrier registers append-before-commit records through it,
// atomically with the AppendedLSN watermark they become visible in.
func (w *wal) Append(typ byte, body []byte, onAssign func(lsn uint64)) (uint64, error) {
	if len(body)+9 > maxWALRecord {
		return 0, fmt.Errorf("server: WAL record of %d bytes exceeds the %d cap", len(body), maxWALRecord)
	}
	w.mu.Lock()
	if w.closed || w.err != nil {
		err := w.err
		w.mu.Unlock()
		if err == nil {
			err = errWALClosed
		}
		return 0, err
	}
	lsn := w.next
	w.next++
	if err := walWriteRecord(w.bw, lsn, typ, body); err != nil {
		w.fail(err)
		w.mu.Unlock()
		return 0, err
	}
	w.buffed = lsn
	if onAssign != nil {
		onAssign(lsn)
	}
	// Ask the syncer for durability, still under the lock: Close/abort
	// mark the log closed under the same lock before they close the
	// channel, so this send can never hit a closed channel. It is
	// non-blocking — the channel holds at most one pending request,
	// and a whole burst of appenders rides one fsync.
	select {
	case w.syncReq <- struct{}{}:
	default:
	}
	// Wait for our LSN to become durable; cond.Wait releases the lock
	// so the syncer (and other appenders) can proceed.
	defer w.mu.Unlock()
	for w.synced < lsn && w.err == nil {
		w.cond.Wait()
	}
	return lsn, w.err
}

// AppendVec is Append for a record whose body is the concatenation of
// frags. The batch-ingest journal uses it to frame a burst's admitted
// wire records — length prefixes from a scratch buffer interleaved
// with sub-slices of the request body — without first assembling the
// body into one contiguous copy: the fragments stream straight into
// the log's buffered writer, and the CRC accumulates across them.
// Durability, LSN assignment, and onAssign semantics are Append's.
func (w *wal) AppendVec(typ byte, frags [][]byte, onAssign func(lsn uint64)) (uint64, error) {
	size := 0
	for _, f := range frags {
		size += len(f)
	}
	if size+9 > maxWALRecord {
		return 0, fmt.Errorf("server: WAL record of %d bytes exceeds the %d cap", size, maxWALRecord)
	}
	w.mu.Lock()
	if w.closed || w.err != nil {
		err := w.err
		w.mu.Unlock()
		if err == nil {
			err = errWALClosed
		}
		return 0, err
	}
	lsn := w.next
	w.next++
	if err := walWriteRecordVec(w.bw, lsn, typ, frags, size); err != nil {
		w.fail(err)
		w.mu.Unlock()
		return 0, err
	}
	w.buffed = lsn
	if onAssign != nil {
		onAssign(lsn)
	}
	select {
	case w.syncReq <- struct{}{}:
	default:
	}
	defer w.mu.Unlock()
	for w.synced < lsn && w.err == nil {
		w.cond.Wait()
	}
	return lsn, w.err
}

// fail records a sticky I/O error and wakes every waiter; callers hold mu.
func (w *wal) fail(err error) {
	if w.err == nil {
		w.err = err
	}
	w.cond.Broadcast()
}

// syncLoop is the group-commit worker: each request flushes and fsyncs
// everything buffered so far. A positive interval makes the worker
// linger before syncing so more appenders join the batch.
func (w *wal) syncLoop() {
	for range w.syncReq {
		if w.interval > 0 {
			time.Sleep(w.interval)
		}
		w.mu.Lock()
		w.syncLocked()
		w.mu.Unlock()
	}
	close(w.syncDone)
}

// syncLocked flushes and fsyncs the buffered records; callers hold mu.
func (w *wal) syncLocked() {
	if w.err != nil || w.synced == w.buffed {
		w.cond.Broadcast()
		return
	}
	batch := w.buffed - w.synced
	if err := w.bw.Flush(); err != nil {
		w.fail(err)
		return
	}
	start := time.Now()
	if err := w.fsync(w.f); err != nil {
		w.fail(err)
		return
	}
	elapsed := time.Since(start)
	w.fsyncs.Add(1)
	w.fsyncNS.Add(int64(elapsed))
	w.metrics.Stage(obs.StageFsync).Record(int64(elapsed))
	w.metrics.WALBatch().Record(int64(batch))
	w.synced = w.buffed
	w.cond.Broadcast()
}

// AppendedLSN returns the LSN of the last buffered record.
func (w *wal) AppendedLSN() uint64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.buffed
}

// SyncedLSN returns the LSN of the last durable record.
func (w *wal) SyncedLSN() uint64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.synced
}

// truncateThrough drops every record with LSN <= lsn by compacting the
// log into a fresh file and atomically renaming it into place — the
// snapshotter calls this after a snapshot covering lsn is durable.
// Appends block for the duration; the log tail between snapshots is
// small by construction.
func (w *wal) truncateThrough(lsn uint64) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed || w.err != nil {
		if w.err != nil {
			return w.err
		}
		return errWALClosed
	}
	// Make the current tail readable and durable first.
	if err := w.bw.Flush(); err != nil {
		w.fail(err)
		return err
	}
	if err := w.fsync(w.f); err != nil {
		w.fail(err)
		return err
	}
	w.synced = w.buffed
	w.cond.Broadcast()

	src, err := os.Open(w.path)
	if err != nil {
		return err
	}
	st, err := src.Stat()
	if err != nil {
		src.Close()
		return err
	}
	tmpPath := w.path + ".tmp"
	tmp, err := os.Create(tmpPath)
	if err != nil {
		src.Close()
		return err
	}
	bwTmp := bufio.NewWriterSize(tmp, 1<<20)
	if _, err := bwTmp.Write(walMagic[:]); err != nil {
		src.Close()
		tmp.Close()
		os.Remove(tmpPath)
		return err
	}
	srcBR := bufio.NewReaderSize(src, 1<<20)
	var magic [8]byte
	scanErr := func() error {
		if _, err := io.ReadFull(srcBR, magic[:]); err != nil {
			return err
		}
		if magic != walMagic {
			return errors.New("server: not a ViewMap WAL file")
		}
		_, _, err := walScan(srcBR, st.Size(), func(recLSN uint64, typ byte, body []byte) error {
			if recLSN <= lsn {
				return nil
			}
			return walWriteRecord(bwTmp, recLSN, typ, body)
		})
		return err
	}()
	src.Close()
	if scanErr == nil {
		scanErr = bwTmp.Flush()
	}
	if scanErr == nil {
		scanErr = tmp.Sync()
	}
	if err := tmp.Close(); scanErr == nil {
		scanErr = err
	}
	if scanErr != nil {
		os.Remove(tmpPath)
		return scanErr
	}
	if err := os.Rename(tmpPath, w.path); err != nil {
		os.Remove(tmpPath)
		return err
	}
	syncDir(filepath.Dir(w.path))
	// Swap the append handle onto the compacted file.
	nf, err := os.OpenFile(w.path, os.O_RDWR, 0o644)
	if err != nil {
		w.fail(err)
		return err
	}
	if _, err := nf.Seek(0, io.SeekEnd); err != nil {
		nf.Close()
		w.fail(err)
		return err
	}
	w.f.Close()
	w.f = nf
	w.bw.Reset(nf)
	return nil
}

// Close flushes, fsyncs, and closes the log. Later appends fail.
func (w *wal) Close() error {
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return nil
	}
	w.closed = true
	w.syncLocked()
	err := w.err
	if cerr := w.f.Close(); err == nil {
		err = cerr
	}
	w.mu.Unlock()
	close(w.syncReq)
	<-w.syncDone
	return err
}

// abort closes the log file without flushing buffered records — the
// crash simulation used by recovery tests and the continuous workload.
// Acknowledged (synced) records are on disk; buffered ones vanish,
// exactly as in a real crash.
func (w *wal) abort() {
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return
	}
	w.closed = true
	w.fail(errWALClosed)
	w.f.Close()
	w.mu.Unlock()
	close(w.syncReq)
	<-w.syncDone
}

// walWriteRecord frames one record onto w (compaction path; the append
// path inlines the same framing under the log lock).
func walWriteRecord(w io.Writer, lsn uint64, typ byte, body []byte) error {
	var hdr [17]byte
	binary.BigEndian.PutUint32(hdr[0:4], uint32(9+len(body)))
	binary.BigEndian.PutUint64(hdr[8:16], lsn)
	hdr[16] = typ
	crc := crc32.Update(0, walCRC, hdr[8:17])
	crc = crc32.Update(crc, walCRC, body)
	binary.BigEndian.PutUint32(hdr[4:8], crc)
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(body)
	return err
}

// walWriteRecordVec frames one record whose body is the concatenation
// of frags (size = total fragment bytes, precomputed by the caller).
// Byte-for-byte identical on disk to walWriteRecord of the assembled
// body.
func walWriteRecordVec(w io.Writer, lsn uint64, typ byte, frags [][]byte, size int) error {
	var hdr [17]byte
	binary.BigEndian.PutUint32(hdr[0:4], uint32(9+size))
	binary.BigEndian.PutUint64(hdr[8:16], lsn)
	hdr[16] = typ
	crc := crc32.Update(0, walCRC, hdr[8:17])
	for _, f := range frags {
		crc = crc32.Update(crc, walCRC, f)
	}
	binary.BigEndian.PutUint32(hdr[4:8], crc)
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	for _, f := range frags {
		if _, err := w.Write(f); err != nil {
			return err
		}
	}
	return nil
}

// walScan reads framed records from r — size is the total byte count
// behind r, including the already-consumed magic — calling fn for each
// intact record in order. It stops without error at the first torn or
// corrupt record (short header, short body, hostile length, CRC
// mismatch): that is the expected crash tail, and valid reports how
// many prefix bytes survived so the opener can truncate there. The
// length prefix is untrusted input (replay also runs inside a fuzz
// target), so body allocation is bounded by the bytes actually
// remaining, never by the claim. An fn error aborts the scan and is
// returned.
func walScan(r io.Reader, size int64, fn func(lsn uint64, typ byte, body []byte) error) (lastLSN uint64, valid int64, err error) {
	valid = int64(len(walMagic))
	remaining := size - valid
	var hdr [8]byte
	for {
		if remaining < int64(len(hdr)) {
			return lastLSN, valid, nil
		}
		if _, err := io.ReadFull(r, hdr[:]); err != nil {
			return lastLSN, valid, nil
		}
		payloadLen := int64(binary.BigEndian.Uint32(hdr[0:4]))
		wantCRC := binary.BigEndian.Uint32(hdr[4:8])
		if payloadLen < 9 || payloadLen > maxWALRecord || payloadLen > remaining-int64(len(hdr)) {
			// Hostile or torn length: the claim exceeds what the file
			// actually holds (or the record cap). Nothing is allocated
			// for it.
			return lastLSN, valid, nil
		}
		payload := make([]byte, payloadLen)
		if _, err := io.ReadFull(r, payload); err != nil {
			return lastLSN, valid, nil
		}
		if crc32.Checksum(payload, walCRC) != wantCRC {
			return lastLSN, valid, nil
		}
		lsn := binary.BigEndian.Uint64(payload[0:8])
		if err := fn(lsn, payload[8], payload[9:]); err != nil {
			return lastLSN, valid, err
		}
		lastLSN = lsn
		consumed := int64(len(hdr)) + payloadLen
		valid += consumed
		remaining -= consumed
	}
}

// replayWALFile scans the log at path, calling fn for every intact
// record with LSN > fromLSN. A missing file is a fresh start, not an
// error. It returns the last intact LSN (0 if none), the valid prefix
// length in bytes, and the file's total size.
func replayWALFile(path string, fromLSN uint64, fn func(lsn uint64, typ byte, body []byte) error) (lastLSN uint64, valid, size int64, err error) {
	f, err := os.Open(path)
	if errors.Is(err, os.ErrNotExist) {
		return 0, 0, 0, nil
	}
	if err != nil {
		return 0, 0, 0, err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return 0, 0, 0, err
	}
	size = st.Size()
	if size < int64(len(walMagic)) {
		// A crash during creation tore even the header; the opener
		// rewrites it.
		return 0, 0, size, nil
	}
	br := bufio.NewReaderSize(f, 1<<20)
	var magic [8]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return 0, 0, size, err
	}
	if magic != walMagic {
		return 0, 0, size, errors.New("server: not a ViewMap WAL file")
	}
	lastLSN, valid, err = walScan(br, size, func(lsn uint64, typ byte, body []byte) error {
		if lsn <= fromLSN {
			return nil
		}
		return fn(lsn, typ, body)
	})
	return lastLSN, valid, size, err
}

// syncDir fsyncs a directory so a just-renamed file inside it survives
// a power cut. Best effort: some filesystems refuse directory fsync.
func syncDir(dir string) {
	d, err := os.Open(dir)
	if err != nil {
		return
	}
	d.Sync()
	d.Close()
}
