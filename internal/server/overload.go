package server

import (
	"math"
	"net/http"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"viewmap/internal/obs"
)

// Server-side overload discipline. Under a city-scale upload storm the
// service must keep answering investigations; the way it does that is
// not priority inversion inside one queue but hard isolation between
// endpoint classes: uploads, investigations, and the evidence flow
// each get their own bounded admission gate (a slot pool plus a
// bounded wait queue), so a saturated ingest path can never starve an
// investigator of a slot. When both the slots and the queue of a class
// are full, the request is shed immediately with 429 Too Many Requests
// and a Retry-After header — explicit backpressure the client retries
// against (client.API honors it with jittered backoff) instead of an
// unbounded in-server pileup. Every admission, shed, queue depth, and
// active count is exported per class in GET /v1/stats, so a test (or
// an operator) can assert exactly how much load was turned away and
// where. docs/operations.md ("Overload & degraded modes") is the
// operator view.

// endpointClass buckets the HTTP surface for admission control.
type endpointClass int

const (
	// classNone marks endpoints that are never gated (stats, metrics,
	// bank key): monitoring must keep working during the very overload
	// it reports.
	classNone endpointClass = iota
	// classIngest covers the upload paths: anonymous and trusted VP
	// uploads, batched uploads, and legacy video submissions.
	classIngest
	// classInvestigate covers the authority paths: investigations,
	// verdict reports, evidence solicitation, and evidence release.
	classInvestigate
	// classEvidence covers the vehicle-facing evidence and reward
	// flow: board polls, deliveries, payouts, redemptions.
	classEvidence
)

// classifyEndpoint maps a request path onto its admission class.
func classifyEndpoint(path string) endpointClass {
	switch path {
	case "/v1/vp", "/v1/vp/batch", "/v1/vp/trusted", "/v1/video":
		return classIngest
	case "/v1/investigate", "/v1/investigate/period", "/v1/investigate/report",
		"/v1/investigate/watch",
		"/v1/evidence/solicit", "/v1/evidence/video":
		// A watch stream holds its investigate slot for its whole
		// (bounded) lifetime, so long watches trade against interactive
		// investigation capacity; see the watch timeout clamp in api.go.
		return classInvestigate
	case "/v1/stats", "/v1/bank", "/v1/metrics":
		return classNone
	}
	if strings.HasPrefix(path, "/v1/evidence/") ||
		strings.HasPrefix(path, "/v1/reward") ||
		path == "/v1/solicitations" || path == "/v1/rewards" {
		return classEvidence
	}
	return classNone
}

// OverloadConfig bounds the concurrent work each endpoint class may
// hold. A request beyond a class's slot count waits in that class's
// bounded queue; a request beyond slots+queue is shed with 429 and a
// Retry-After of RetryAfter. The zero value selects generous defaults
// that never shed under test-scale load; scenario and overload tests
// tighten them to force shedding deterministically.
type OverloadConfig struct {
	// IngestSlots is the concurrent upload admission count; zero
	// selects 64.
	IngestSlots int
	// IngestQueue bounds uploads waiting for a slot; zero selects 256.
	IngestQueue int
	// InvestigateSlots is the concurrent authority-request admission
	// count; zero selects 16. Investigations never compete with
	// uploads: this pool is theirs alone.
	InvestigateSlots int
	// InvestigateQueue bounds waiting authority requests; zero
	// selects 64.
	InvestigateQueue int
	// EvidenceSlots is the concurrent evidence/reward admission count;
	// zero selects 32.
	EvidenceSlots int
	// EvidenceQueue bounds waiting evidence requests; zero selects 128.
	EvidenceQueue int
	// RetryAfter is the backoff hint sent with every 429 (rounded up
	// to whole seconds on the wire); zero selects one second.
	RetryAfter time.Duration
}

func (c OverloadConfig) withDefaults() OverloadConfig {
	if c.IngestSlots <= 0 {
		c.IngestSlots = 64
	}
	if c.IngestQueue <= 0 {
		c.IngestQueue = 256
	}
	if c.InvestigateSlots <= 0 {
		c.InvestigateSlots = 16
	}
	if c.InvestigateQueue <= 0 {
		c.InvestigateQueue = 64
	}
	if c.EvidenceSlots <= 0 {
		c.EvidenceSlots = 32
	}
	if c.EvidenceQueue <= 0 {
		c.EvidenceQueue = 128
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = time.Second
	}
	return c
}

// admissionGate is one class's slot pool plus bounded wait queue.
type admissionGate struct {
	sem      chan struct{}
	queueCap int64

	queued   atomic.Int64
	active   atomic.Int64
	admitted atomic.Uint64
	shed     atomic.Uint64
}

func newAdmissionGate(slots, queue int) *admissionGate {
	return &admissionGate{sem: make(chan struct{}, slots), queueCap: int64(queue)}
}

// tryAcquire claims a slot, waiting in the bounded queue when all
// slots are busy. It returns false — the request is shed — when the
// queue is full too. The caller must release() after true.
func (g *admissionGate) tryAcquire() bool {
	select {
	case g.sem <- struct{}{}:
	default:
		if g.queued.Add(1) > g.queueCap {
			g.queued.Add(-1)
			g.shed.Add(1)
			return false
		}
		g.sem <- struct{}{}
		g.queued.Add(-1)
	}
	g.active.Add(1)
	g.admitted.Add(1)
	return true
}

func (g *admissionGate) release() {
	g.active.Add(-1)
	<-g.sem
}

// snapshot reads the gate's counters.
func (g *admissionGate) snapshot() ClassAdmissionStats {
	return ClassAdmissionStats{
		Admitted: g.admitted.Load(),
		Shed:     g.shed.Load(),
		Queued:   int(g.queued.Load()),
		Active:   int(g.active.Load()),
	}
}

// className is the label an admission class carries on
// viewmap_admission_queue_depth and in docs; classNone has none.
func (c endpointClass) className() string {
	switch c {
	case classIngest:
		return "ingest"
	case classInvestigate:
		return "investigate"
	case classEvidence:
		return "evidence"
	}
	return ""
}

// admissionClassNames lists the gated classes, in gate order — the
// label set of the queue-depth histogram.
func admissionClassNames() []string {
	return []string{"ingest", "investigate", "evidence"}
}

// overloadLimiter holds the three class gates behind the HTTP surface.
type overloadLimiter struct {
	ingest      *admissionGate
	investigate *admissionGate
	evidence    *admissionGate
	retryAfter  time.Duration

	// metrics, when non-nil, receives the per-class queue depth
	// observed at every gated arrival (attached by NewSystem; the
	// limiter itself stays registry-free for tests).
	metrics *obs.Registry
}

func newOverloadLimiter(cfg OverloadConfig) *overloadLimiter {
	cfg = cfg.withDefaults()
	return &overloadLimiter{
		ingest:      newAdmissionGate(cfg.IngestSlots, cfg.IngestQueue),
		investigate: newAdmissionGate(cfg.InvestigateSlots, cfg.InvestigateQueue),
		evidence:    newAdmissionGate(cfg.EvidenceSlots, cfg.EvidenceQueue),
		retryAfter:  cfg.RetryAfter,
	}
}

func (l *overloadLimiter) gate(class endpointClass) *admissionGate {
	switch class {
	case classIngest:
		return l.ingest
	case classInvestigate:
		return l.investigate
	case classEvidence:
		return l.evidence
	}
	return nil
}

// retryAfterSeconds is the wire form of the Retry-After hint: whole
// seconds, rounded up, at least 1.
func (l *overloadLimiter) retryAfterSeconds() int {
	s := int(math.Ceil(l.retryAfter.Seconds()))
	if s < 1 {
		s = 1
	}
	return s
}

// withAdmission wraps next with per-class admission control: ungated
// classes pass straight through; a shed request is answered 429 with a
// Retry-After header and never reaches next.
func withAdmission(l *overloadLimiter, next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		class := classifyEndpoint(r.URL.Path)
		g := l.gate(class)
		if g == nil {
			next.ServeHTTP(w, r)
			return
		}
		l.metrics.QueueDepth(class.className()).Record(g.queued.Load())
		if !g.tryAcquire() {
			w.Header().Set("Retry-After", strconv.Itoa(l.retryAfterSeconds()))
			httpError(w, http.StatusTooManyRequests, errOverloaded)
			return
		}
		defer g.release()
		next.ServeHTTP(w, r)
	})
}

// errOverloaded is the 429 body for shed requests.
var errOverloaded = &overloadError{}

type overloadError struct{}

func (*overloadError) Error() string {
	return "server: overloaded, request shed; retry after the indicated backoff"
}

// ClassAdmissionStats are one endpoint class's admission counters in
// GET /v1/stats.
type ClassAdmissionStats struct {
	// Admitted counts requests that got a slot (after queueing or not).
	Admitted uint64
	// Shed counts requests turned away with 429.
	Shed uint64
	// Queued is the instantaneous wait-queue depth.
	Queued int
	// Active is the instantaneous in-flight request count.
	Active int
}

// OverloadStats are the admission-control counters of GET /v1/stats.
type OverloadStats struct {
	// Ingest, Investigate, and Evidence are the per-class gates.
	Ingest, Investigate, Evidence ClassAdmissionStats
	// RetryAfterSeconds echoes the backoff hint sent with sheds.
	RetryAfterSeconds int
}

// OverloadStatsSnapshot reads the admission gates' counters.
func (sys *System) OverloadStatsSnapshot() OverloadStats {
	l := sys.overload
	return OverloadStats{
		Ingest:            l.ingest.snapshot(),
		Investigate:       l.investigate.snapshot(),
		Evidence:          l.evidence.snapshot(),
		RetryAfterSeconds: l.retryAfterSeconds(),
	}
}
