package server_test

// End-to-end test of the full ViewMap pipeline over the HTTP API:
// two vehicles and a police car drive side by side exchanging VDs,
// upload their VPs (vehicles anonymously, police as trusted), the
// authority investigates the incident minute, the vehicles answer the
// posted solicitations with their videos, a reviewer approves one, and
// its anonymous owner withdraws and spends untraceable cash.

import (
	"crypto/rsa"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"viewmap/internal/client"
	"viewmap/internal/geo"
	"viewmap/internal/reward"
	"viewmap/internal/roadnet"
	"viewmap/internal/server"
	"viewmap/internal/vd"
	"viewmap/internal/vp"

	crand "crypto/rand"
)

// testBankKey is generated once; RSA keygen dominates test time.
var (
	keyOnce sync.Once
	testKey *rsa.PrivateKey
)

func sharedBank(t testing.TB) *reward.Bank {
	t.Helper()
	keyOnce.Do(func() {
		k, err := rsa.GenerateKey(crand.Reader, 1024)
		if err != nil {
			t.Fatal(err)
		}
		testKey = k
	})
	return reward.NewBankFromKey(testKey)
}

// driveConvoy runs three ViewMap vehicles (two civilian, one police)
// side by side for one minute on a straight road and returns them.
func driveConvoy(t *testing.T) (vehicles []*client.Vehicle, police *client.Vehicle, net *roadnet.Network) {
	t.Helper()
	city, err := roadnet.BuildGrid(roadnet.GridConfig{Cols: 10, Rows: 4, Spacing: 200})
	if err != nil {
		t.Fatal(err)
	}
	names := []string{"car-A", "car-B", "police-1"}
	offsets := []float64{0, 60, 120}
	all := make([]*client.Vehicle, 3)
	for i, name := range names {
		v, err := client.NewVehicle(client.VehicleConfig{
			Name: name, BytesPerSecond: 2000, Seed: int64(i + 1),
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := v.BeginMinute(0); err != nil {
			t.Fatal(err)
		}
		all[i] = v
	}
	// One minute of driving eastbound along y=0 at 10 m/s, full VD
	// exchange between all pairs (open road, everyone in range).
	for s := 1; s <= 60; s++ {
		vds := make([]vd.VD, 3)
		for i, v := range all {
			loc := geo.Pt(float64(s)*10+offsets[i], 0)
			d, err := v.Tick(loc)
			if err != nil {
				t.Fatal(err)
			}
			vds[i] = d
		}
		for i, v := range all {
			for j, d := range vds {
				if i == j {
					continue
				}
				if err := v.Hear(d, int64(s)); err != nil {
					t.Fatalf("vehicle %d hearing %d: %v", i, j, err)
				}
			}
		}
	}
	for i, v := range all {
		// Civilian vehicles fabricate guard VPs for path privacy; the
		// police car has no need to and uploads only its trusted VP.
		guardNet := city.Net
		if i == 2 {
			guardNet = nil
		}
		if _, _, err := v.EndMinute(guardNet); err != nil {
			t.Fatalf("vehicle %d EndMinute: %v", i, err)
		}
	}
	return all[:2], all[2], city.Net
}

func TestEndToEndIncidentPipeline(t *testing.T) {
	sys, err := server.NewSystem(server.Config{
		AuthorityToken: "secret-token",
		Bank:           sharedBank(t),
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(server.Handler(sys))
	defer ts.Close()
	api, err := client.NewAPI(ts.URL, ts.Client())
	if err != nil {
		t.Fatal(err)
	}

	vehicles, police, _ := driveConvoy(t)

	// Phase 1: uploads. Vehicles upload anonymously — one batched
	// request per vehicle covering the actual VP and its guards —
	// and police uploads as trusted.
	for _, v := range vehicles {
		pending := v.PendingUploads()
		res, err := api.UploadVPBatch(pending)
		if err != nil {
			t.Fatalf("uploading VP batch: %v", err)
		}
		if res.Stored != len(pending) || res.Duplicates != 0 || res.Rejected != 0 {
			t.Fatalf("batch result %+v, want all %d stored", res, len(pending))
		}
	}
	for _, p := range police.PendingUploads() {
		if err := api.UploadTrustedVP("secret-token", p); err != nil {
			t.Fatalf("uploading trusted VP: %v", err)
		}
	}
	vps, trusted, _, err := api.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if trusted != 1 {
		t.Fatalf("trusted VPs = %d, want 1", trusted)
	}
	if vps < 3 {
		t.Fatalf("stored VPs = %d, want at least 3 (actual VPs + guards)", vps)
	}

	// Phase 2: investigation around the convoy's road.
	if _, err := api.Investigate("wrong-token", 0, -50, 800, 50, 0); err == nil {
		t.Fatal("investigation with a bad token must fail")
	}
	solicited, err := api.Investigate("secret-token", 0, -50, 800, 50, 0)
	if err != nil {
		t.Fatal(err)
	}
	if solicited < 2 {
		t.Fatalf("newly solicited = %d, want at least the two civilian VPs", solicited)
	}

	// Phase 3: vehicles poll solicitations and upload matching videos.
	ids, err := api.Solicitations()
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) < 2 {
		t.Fatalf("posted solicitations = %d, want >= 2", len(ids))
	}
	uploaded := 0
	var rewardedID vd.VPID
	var rewardedOwner *client.Vehicle
	for _, v := range vehicles {
		for id, chunks := range v.MatchSolicitations(ids) {
			if err := api.SubmitVideo(id, chunks); err != nil {
				t.Fatalf("submitting video: %v", err)
			}
			uploaded++
			rewardedID = id
			rewardedOwner = v
		}
	}
	if uploaded != 2 {
		t.Fatalf("uploaded %d videos, want 2 (guards have no videos)", uploaded)
	}

	// Unsolicited videos are refused before any human sees them.
	junk, err := client.NewVehicle(client.VehicleConfig{Name: "spammer", BytesPerSecond: 2000})
	if err != nil {
		t.Fatal(err)
	}
	if err := junk.BeginMinute(0); err != nil {
		t.Fatal(err)
	}
	for s := 1; s <= 60; s++ {
		if _, err := junk.Tick(geo.Pt(float64(s), 500)); err != nil {
			t.Fatal(err)
		}
	}
	if _, _, err := junk.EndMinute(nil); err != nil {
		t.Fatal(err)
	}
	junkID := junk.PendingUploads()[0].ID()
	if err := api.SubmitVideo(junkID, [][]byte{{1}}); err == nil {
		t.Fatal("unsolicited video must be rejected")
	}

	// Phase 4: human review approves; a reward is posted.
	if sys.ReviewQueueLen() != 2 {
		t.Fatalf("review queue = %d, want 2", sys.ReviewQueueLen())
	}
	reviewed := 0
	for sys.ReviewQueueLen() > 0 {
		if _, err := sys.Review("secret-token", func(sub *server.Submission) bool {
			return sub.ID == rewardedID
		}, 3); err != nil {
			t.Fatal(err)
		}
		reviewed++
	}
	if reviewed != 2 {
		t.Fatalf("reviewed %d submissions", reviewed)
	}

	// Phase 5: the owner claims the reward and withdraws cash.
	offers, err := api.Rewards()
	if err != nil {
		t.Fatal(err)
	}
	if len(offers) != 1 || offers[0] != rewardedID {
		t.Fatalf("posted rewards = %v, want exactly the approved VP", offers)
	}
	q, ok := rewardedOwner.Secret(rewardedID)
	if !ok {
		t.Fatal("owner lost its secret")
	}
	// A thief without the secret cannot claim.
	var wrongQ vd.Secret
	if _, err := api.ClaimReward(rewardedID, wrongQ); err == nil {
		t.Fatal("claim without the secret must fail")
	}
	units, err := api.ClaimReward(rewardedID, q)
	if err != nil {
		t.Fatal(err)
	}
	if units != 3 {
		t.Fatalf("units = %d, want 3", units)
	}
	pub, err := api.BankKey()
	if err != nil {
		t.Fatal(err)
	}
	cash, err := api.WithdrawCash(rewardedID, q, units, pub)
	if err != nil {
		t.Fatal(err)
	}
	if len(cash) != 3 {
		t.Fatalf("withdrew %d units, want 3", len(cash))
	}
	// The offer is exhausted: further withdrawals fail.
	if _, err := api.WithdrawCash(rewardedID, q, 1, pub); err == nil {
		t.Fatal("over-withdrawal must fail")
	}

	// Phase 6: spend the cash; double spends bounce.
	for _, c := range cash {
		if !c.Verify(pub) {
			t.Fatal("cash must verify against the bank key")
		}
		if err := api.Redeem(c); err != nil {
			t.Fatalf("redeeming: %v", err)
		}
	}
	if err := api.Redeem(cash[0]); err == nil {
		t.Fatal("double spend must be rejected")
	}
}

func TestUploadRejectsGarbage(t *testing.T) {
	sys, err := server.NewSystem(server.Config{AuthorityToken: "tok", Bank: sharedBank(t)})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(server.Handler(sys))
	defer ts.Close()
	api, err := client.NewAPI(ts.URL, ts.Client())
	if err != nil {
		t.Fatal(err)
	}
	// Garbage VP bytes bounce at the API.
	if err := api.UploadVP(&vp.Profile{}); err == nil {
		t.Error("empty profile upload should fail")
	}
}

func TestDuplicateUploadConflict(t *testing.T) {
	sys, err := server.NewSystem(server.Config{AuthorityToken: "tok", Bank: sharedBank(t)})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(server.Handler(sys))
	defer ts.Close()
	api, err := client.NewAPI(ts.URL, ts.Client())
	if err != nil {
		t.Fatal(err)
	}
	v, err := client.NewVehicle(client.VehicleConfig{Name: "dup", BytesPerSecond: 1000})
	if err != nil {
		t.Fatal(err)
	}
	if err := v.BeginMinute(0); err != nil {
		t.Fatal(err)
	}
	for s := 1; s <= 60; s++ {
		if _, err := v.Tick(geo.Pt(float64(s), 0)); err != nil {
			t.Fatal(err)
		}
	}
	if _, _, err := v.EndMinute(nil); err != nil {
		t.Fatal(err)
	}
	p := v.PendingUploads()[0]
	if err := api.UploadVP(p); err != nil {
		t.Fatal(err)
	}
	if err := api.UploadVP(p); err == nil {
		t.Error("duplicate upload should conflict")
	}
}

func TestInvestigatePeriodEndpoint(t *testing.T) {
	sys, err := server.NewSystem(server.Config{AuthorityToken: "tok", Bank: sharedBank(t)})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(server.Handler(sys))
	defer ts.Close()

	// Two convoy minutes: trusted + civilian per minute.
	for m := int64(0); m < 2; m++ {
		civ, err := client.NewVehicle(client.VehicleConfig{Name: fmt.Sprintf("civ-%d", m), BytesPerSecond: 1000})
		if err != nil {
			t.Fatal(err)
		}
		pol, err := client.NewVehicle(client.VehicleConfig{Name: fmt.Sprintf("pol-%d", m), BytesPerSecond: 1000})
		if err != nil {
			t.Fatal(err)
		}
		for _, v := range []*client.Vehicle{civ, pol} {
			if err := v.BeginMinute(m * 60); err != nil {
				t.Fatal(err)
			}
		}
		for s := 1; s <= 60; s++ {
			now := m*60 + int64(s)
			dc, err := civ.Tick(geo.Pt(float64(s)*10, 0))
			if err != nil {
				t.Fatal(err)
			}
			dp, err := pol.Tick(geo.Pt(float64(s)*10+40, 0))
			if err != nil {
				t.Fatal(err)
			}
			if err := civ.Hear(dp, now); err != nil {
				t.Fatal(err)
			}
			if err := pol.Hear(dc, now); err != nil {
				t.Fatal(err)
			}
		}
		for _, v := range []*client.Vehicle{civ, pol} {
			if _, _, err := v.EndMinute(nil); err != nil {
				t.Fatal(err)
			}
		}
		for _, p := range civ.PendingUploads() {
			if err := sys.UploadVP(p.Marshal()); err != nil {
				t.Fatal(err)
			}
		}
		for _, p := range pol.PendingUploads() {
			if err := sys.UploadTrustedVP("tok", p.Marshal()); err != nil {
				t.Fatal(err)
			}
		}
	}

	body := `{"site":{"minX":0,"minY":-50,"maxX":700,"maxY":50},"firstMinute":0,"lastMinute":2}`
	req, err := http.NewRequest("POST", ts.URL+"/v1/investigate/period", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("X-Viewmap-Authority", "tok")
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("period endpoint status %d", resp.StatusCode)
	}
	var out struct {
		Minutes []*struct {
			NewlySolicited int `json:"newlySolicited"`
		} `json:"minutes"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if len(out.Minutes) != 3 {
		t.Fatalf("minutes = %d, want 3", len(out.Minutes))
	}
	if out.Minutes[0] == nil || out.Minutes[1] == nil {
		t.Error("covered minutes should produce reports")
	}
	if out.Minutes[2] != nil {
		t.Error("minute 2 has no VPs; report should be null")
	}
	if out.Minutes[0].NewlySolicited == 0 {
		t.Error("minute 0 should solicit the civilian VP")
	}
}
