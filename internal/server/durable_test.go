package server

// Crash-recovery and retention tests for durable continuous operation.
// Every scenario compares recovered behaviour against an always-
// resident, never-crashed control system: recovery must reproduce the
// pre-crash InvestigateReport verdicts bit for bit, and an evicted
// minute must answer investigations exactly like a resident one.

import (
	"crypto/rand"
	"crypto/rsa"
	"errors"
	"image"
	"math/big"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"
	"time"

	"viewmap/internal/blur"
	"viewmap/internal/core"
	"viewmap/internal/evidence"
	"viewmap/internal/geo"
	"viewmap/internal/reward"
	"viewmap/internal/vd"
	"viewmap/internal/vp"
)

// durKeyOnce caches one RSA key for every durable test; generation
// dominates otherwise.
var (
	durKeyOnce sync.Once
	durKey     *rsa.PrivateKey
)

func durBank(t testing.TB) *reward.Bank {
	t.Helper()
	durKeyOnce.Do(func() {
		k, err := rsa.GenerateKey(rand.Reader, 1024)
		if err != nil {
			t.Fatal(err)
		}
		durKey = k
	})
	return reward.NewBankFromKey(durKey)
}

// durArea and durSite are the shared test geometry.
var (
	durArea = geo.NewRect(geo.Pt(0, 0), geo.Pt(1500, 1500))
	durSite = geo.RectAround(geo.Pt(750, 750), 250)
)

// uploadMinute synthesizes one minute's population (one trusted VP,
// the rest anonymous, batched) and uploads it to every given system
// identically.
func uploadMinute(t testing.TB, minute int64, n int, seed int64, systems ...*System) {
	t.Helper()
	profiles, err := core.SynthesizeLegitimate(core.SynthConfig{
		N: n, Area: durArea, Minute: minute, Seed: seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	ti := core.MarkTrustedNearest(profiles, durArea.Center())
	trustedWire := profiles[ti].Marshal()
	anon := make([]*vp.Profile, 0, len(profiles)-1)
	for i, p := range profiles {
		if i != ti {
			anon = append(anon, p)
		}
	}
	batch := vp.MarshalBatch(anon)
	for _, sys := range systems {
		if err := sys.UploadTrustedVP("t", trustedWire); err != nil {
			t.Fatal(err)
		}
		res, err := sys.UploadVPBatch(batch)
		if err != nil {
			t.Fatal(err)
		}
		if res.Stored != len(anon) {
			t.Fatalf("minute %d: stored %d of %d", minute, res.Stored, len(anon))
		}
	}
}

// durOwner is an evidence-owner fixture: VP, ownership secret, video.
type durOwner struct {
	p      *vp.Profile
	q      vd.Secret
	chunks [][]byte
}

// recordDurOwner records a full plate-bearing minute (tiny frames so
// the cascade work stays negligible).
func recordDurOwner(t testing.TB, minute int64, seed uint64) *durOwner {
	t.Helper()
	q, err := vd.NewSecret()
	if err != nil {
		t.Fatal(err)
	}
	b, err := vp.NewBuilder(vd.DeriveVPID(q), minute*vd.SegmentSeconds, 0, 400)
	if err != nil {
		t.Fatal(err)
	}
	cam := &blur.CameraSource{W: 160, H: 90, Seed: seed,
		Plates: []blur.Plate{{Rect: image.Rect(55, 40, 105, 56)}}}
	chunks := make([][]byte, 0, vd.SegmentSeconds)
	for s := 1; s <= vd.SegmentSeconds; s++ {
		chunk := cam.SecondChunk(minute*vd.SegmentSeconds, s)
		if _, err := b.RecordSecond(geo.Pt(float64(s)*10, 5), chunk); err != nil {
			t.Fatal(err)
		}
		chunks = append(chunks, chunk)
	}
	p, err := b.Finalize()
	if err != nil {
		t.Fatal(err)
	}
	return &durOwner{p: p, q: q, chunks: chunks}
}

// openDurable opens a durable system in dir with background loops
// effectively disabled so tests drive checkpoints and retention
// deterministically.
func openDurable(t testing.TB, dir string, retention int) *System {
	t.Helper()
	sys, err := OpenDurable(Config{AuthorityToken: "t", Bank: durBank(t)}, DurabilityConfig{
		WALPath:             filepath.Join(dir, "ingest.wal"),
		SnapshotInterval:    0,
		RetentionMinutes:    retention,
		RetentionInterval:   time.Hour,
		ResidentColdMinutes: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

func controlSystem(t testing.TB) *System {
	t.Helper()
	sys, err := NewSystem(Config{AuthorityToken: "t", Bank: durBank(t)})
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

// report fetches the full per-VP verdict report for a minute.
func report(t testing.TB, sys *System, minute int64) *FullReport {
	t.Helper()
	r, err := sys.InvestigateReport("t", durSite, minute)
	if err != nil {
		t.Fatalf("minute %d: %v", minute, err)
	}
	return r
}

// TestDurableRecoverBitForBit crashes a system that never snapshotted
// after its bootstrap — everything lives in the WAL — and checks that
// recovery reproduces the VP verdicts bit for bit and resumes the
// evidence lifecycle mid-flight: the accepted delivery stays accepted,
// the partially drawn entitlement keeps its exact balance, and the
// pre-crash spend stays spent.
func TestDurableRecoverBitForBit(t *testing.T) {
	dir := t.TempDir()
	sys := openDurable(t, dir, 0)
	uploadMinute(t, 0, 25, 1, sys)
	uploadMinute(t, 1, 25, 2, sys)

	own := recordDurOwner(t, 0, 7)
	if err := sys.UploadVP(own.p.Marshal()); err != nil {
		t.Fatal(err)
	}
	id := own.p.ID()
	if _, err := sys.Evidence().Open(durSite, 0, []vd.VPID{id}, 2); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Evidence().Deliver("s-1", id, own.q, own.chunks); err != nil {
		t.Fatal(err)
	}
	// Draw one of the two units and burn it before the crash.
	pub := sys.Bank().PublicKey()
	note, err := reward.NewNote(pub, rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	sigs, err := sys.Evidence().Payout("s-2", id, own.q, []*big.Int{note.Blind(pub)})
	if err != nil {
		t.Fatal(err)
	}
	cash, err := note.Unblind(pub, sigs[0])
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Evidence().Redeem(cash); err != nil {
		t.Fatal(err)
	}

	pre0, pre1 := report(t, sys, 0), report(t, sys, 1)
	preLen := sys.Store().Len()
	sys.Abort()

	rec := openDurable(t, dir, 0)
	defer rec.Close()
	if got := rec.Store().Len(); got != preLen {
		t.Fatalf("recovered %d VPs, want %d", got, preLen)
	}
	if got := report(t, rec, 0); !reflect.DeepEqual(got, pre0) {
		t.Fatalf("minute 0 verdicts diverge after recovery:\n got %+v\nwant %+v", got, pre0)
	}
	if got := report(t, rec, 1); !reflect.DeepEqual(got, pre1) {
		t.Fatalf("minute 1 verdicts diverge after recovery")
	}
	// Delivery survived: a second delivery is a replay...
	if _, err := rec.Evidence().Deliver("s-3", id, own.q, own.chunks); !errors.Is(err, evidence.ErrAlreadyDelivered) {
		t.Fatalf("re-delivery after recovery: %v", err)
	}
	// ...the spent unit stays spent...
	if err := rec.Evidence().Redeem(cash); !errors.Is(err, reward.ErrDoubleSpend) {
		t.Fatalf("double spend after recovery: %v", err)
	}
	// ...and exactly one unit of the entitlement remains.
	pub = rec.Bank().PublicKey()
	note2, err := reward.NewNote(pub, rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rec.Evidence().Payout("s-4", id, own.q, []*big.Int{note2.Blind(pub)}); err != nil {
		t.Fatalf("drawing the remaining unit: %v", err)
	}
	note3, err := reward.NewNote(pub, rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rec.Evidence().Payout("s-5", id, own.q, []*big.Int{note3.Blind(pub)}); err == nil {
		t.Fatal("over-drawing the entitlement succeeded after recovery")
	}
}

// TestDurableRecoverBetweenAppendAndCommit kills the system after a
// record reached the log but before its shard commit — the crash
// window ack-after-append exists for. Recovery must apply the record:
// the post-recovery verdicts match a control system that committed it
// normally.
func TestDurableRecoverBetweenAppendAndCommit(t *testing.T) {
	dir := t.TempDir()
	sys := openDurable(t, dir, 0)
	control := controlSystem(t)
	uploadMinute(t, 0, 25, 3, sys, control)
	if err := sys.Checkpoint(); err != nil {
		t.Fatal(err)
	}

	extra := recordDurOwner(t, 0, 11).p
	// Append without committing: the crash hits between the two.
	if _, err := sys.wal.Append(walRecVP, extra.Marshal(), nil); err != nil {
		t.Fatal(err)
	}
	if err := control.Store().Put(extra); err != nil {
		t.Fatal(err)
	}
	sys.Abort()

	rec := openDurable(t, dir, 0)
	defer rec.Close()
	if _, ok := rec.Store().Get(extra.ID()); !ok {
		t.Fatal("record appended before the crash is missing after recovery")
	}
	if got, want := report(t, rec, 0), report(t, control, 0); !reflect.DeepEqual(got, want) {
		t.Fatalf("verdicts diverge from the control after recovery")
	}
}

// TestDurableRecoverTornFinalRecord crashes mid-append: the log ends
// in a half-written record. Recovery keeps every acknowledged record,
// drops the torn tail, and the log continues accepting appends.
func TestDurableRecoverTornFinalRecord(t *testing.T) {
	dir := t.TempDir()
	sys := openDurable(t, dir, 0)
	control := controlSystem(t)
	uploadMinute(t, 0, 25, 4, sys, control)
	sys.Abort()

	// Simulate the crash tearing a record that was never acknowledged.
	walFile := filepath.Join(dir, "ingest.wal")
	f, err := os.OpenFile(walFile, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0x00, 0x00, 0x01, 0xFF, 0xDE, 0xAD}); err != nil {
		t.Fatal(err)
	}
	f.Close()

	rec := openDurable(t, dir, 0)
	defer rec.Close()
	if got, want := report(t, rec, 0), report(t, control, 0); !reflect.DeepEqual(got, want) {
		t.Fatalf("verdicts diverge from the control after torn-tail recovery")
	}
	// The tail was truncated and the sequence continues cleanly.
	own := recordDurOwner(t, 0, 13)
	if err := rec.UploadVP(own.p.Marshal()); err != nil {
		t.Fatal(err)
	}
	if _, ok := rec.Store().Get(own.p.ID()); !ok {
		t.Fatal("upload after torn-tail recovery did not land")
	}
}

// TestDurableRecoverMidSnapshotRename crashes between writing the
// snapshot temp file and renaming it: recovery must ignore the .tmp
// carcass, load the previous snapshot, and replay the WAL tail.
func TestDurableRecoverMidSnapshotRename(t *testing.T) {
	dir := t.TempDir()
	sys := openDurable(t, dir, 0)
	control := controlSystem(t)
	uploadMinute(t, 0, 25, 5, sys, control)
	if err := sys.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	uploadMinute(t, 1, 25, 6, sys, control)
	// A snapshot was being written when the crash hit: its temp file
	// holds garbage and was never renamed.
	snapTmp := filepath.Join(dir, "ingest.wal.snap.tmp")
	if err := os.WriteFile(snapTmp, []byte("half-written snapshot"), 0o644); err != nil {
		t.Fatal(err)
	}
	sys.Abort()

	rec := openDurable(t, dir, 0)
	defer rec.Close()
	for m := int64(0); m <= 1; m++ {
		if got, want := report(t, rec, m), report(t, control, m); !reflect.DeepEqual(got, want) {
			t.Fatalf("minute %d verdicts diverge after mid-rename recovery", m)
		}
	}
}

// TestEvictReloadEquality streams six minutes through a system with a
// two-minute horizon, evicting as it goes, and checks the retention
// invariants: the resident set stays bounded, investigations against
// evicted minutes return verdicts identical to an always-resident
// control, duplicate rejection still covers evicted identifiers, and
// a late ingest into an evicted minute merges into the minute's full
// population.
func TestEvictReloadEquality(t *testing.T) {
	dir := t.TempDir()
	sys := openDurable(t, dir, 2)
	defer sys.Close()
	control := controlSystem(t)

	const minutes = 6
	for m := int64(0); m < minutes; m++ {
		uploadMinute(t, m, 20, 10+m, sys, control)
		if _, err := sys.Store().ApplyRetention(); err != nil {
			t.Fatal(err)
		}
	}
	ret := sys.Store().RetentionStatsSnapshot()
	if ret.ResidentMinutes > 2 {
		t.Fatalf("resident minutes %d exceed the 2-minute horizon", ret.ResidentMinutes)
	}
	if ret.EvictedMinutes != minutes-2 {
		t.Fatalf("evicted %d minutes, want %d", ret.EvictedMinutes, minutes-2)
	}
	if sys.Store().MinuteCount() != minutes {
		t.Fatalf("MinuteCount %d, want %d (evicted minutes still count)", sys.Store().MinuteCount(), minutes)
	}

	// Cold queries against evicted minutes: verdicts must match the
	// always-resident control exactly, and the cold resident set stays
	// within its LRU bound of 1.
	for _, m := range []int64{0, 2, 1} {
		if got, want := report(t, sys, m), report(t, control, m); !reflect.DeepEqual(got, want) {
			t.Fatalf("minute %d: evicted verdicts diverge from resident control", m)
		}
		if _, err := sys.Store().ApplyRetention(); err != nil {
			t.Fatal(err)
		}
		if ret := sys.Store().RetentionStatsSnapshot(); ret.ColdResident > 1 {
			t.Fatalf("cold resident set grew to %d, want <= 1", ret.ColdResident)
		}
	}

	// Duplicate rejection reaches across eviction: re-uploading an
	// evicted minute's batch stores nothing.
	evictedProfiles := control.Store().Minute(0)
	res, err := sys.UploadVPBatch(vp.MarshalBatch(evictedProfiles[:5]))
	if err != nil {
		t.Fatal(err)
	}
	if res.Stored != 0 || res.Duplicates != 5 {
		t.Fatalf("evicted replay: stored %d, duplicates %d; want 0/5", res.Stored, res.Duplicates)
	}

	// Get follows the marker through a reload.
	if _, ok := sys.Store().Get(evictedProfiles[3].ID()); !ok {
		t.Fatal("Get lost an evicted identifier")
	}

	// A late ingest into an evicted minute joins the full population.
	late := recordDurOwner(t, 0, 17).p
	for _, target := range []*System{sys, control} {
		if err := target.UploadVP(late.Marshal()); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := sys.Store().ApplyRetention(); err != nil {
		t.Fatal(err)
	}
	if got, want := report(t, sys, 0), report(t, control, 0); !reflect.DeepEqual(got, want) {
		t.Fatalf("late ingest into evicted minute diverges from control")
	}
}

// TestRetentionSurvivesCrash checks the segment/WAL split: evicted
// minutes recover from their segment files, resident ones from
// snapshot + WAL, and verdicts match the control everywhere.
func TestRetentionSurvivesCrash(t *testing.T) {
	dir := t.TempDir()
	sys := openDurable(t, dir, 2)
	control := controlSystem(t)
	const minutes = 5
	for m := int64(0); m < minutes; m++ {
		uploadMinute(t, m, 20, 20+m, sys, control)
		if _, err := sys.Store().ApplyRetention(); err != nil {
			t.Fatal(err)
		}
		if m == 2 {
			if err := sys.Checkpoint(); err != nil {
				t.Fatal(err)
			}
		}
	}
	preLen := sys.Store().Len()
	sys.Abort()

	rec := openDurable(t, dir, 2)
	defer rec.Close()
	if got := rec.Store().Len(); got != preLen {
		t.Fatalf("recovered %d VPs, want %d", got, preLen)
	}
	for m := int64(0); m < minutes; m++ {
		if got, want := report(t, rec, m), report(t, control, m); !reflect.DeepEqual(got, want) {
			t.Fatalf("minute %d verdicts diverge after crash with retention", m)
		}
	}
}
