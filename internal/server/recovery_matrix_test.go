package server

// Table-driven recovery matrix: every crash point the durability layer
// distinguishes (clean abort, crash between WAL append and shard
// commit, torn final record) crossed with retention off/on and with
// the snapshot's age at the crash (never taken, stale, fresh). Each
// cell recovers and must match an always-resident in-memory control
// bit for bit on every minute's verdict report, then recovers a
// second time to pin replay idempotence. The scenario engine's
// crash-and-recover fault family composes exactly these pieces over
// HTTP; this matrix is the ground truth it leans on.

import (
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"viewmap/internal/core"
	"viewmap/internal/vp"
)

type crashMode int

const (
	crashAbort       crashMode = iota // clean kill: no in-flight work
	crashAppendAbort                  // batch reached the WAL, never committed
	crashTornTail                     // final record half-written
)

func (c crashMode) String() string {
	switch c {
	case crashAbort:
		return "abort"
	case crashAppendAbort:
		return "append-abort"
	case crashTornTail:
		return "torn-tail"
	}
	return "unknown"
}

type snapAge int

const (
	snapNone  snapAge = iota // never checkpointed: WAL holds everything
	snapStale                // checkpointed mid-run: snapshot + WAL tail
	snapFresh                // checkpointed at the crash: WAL is empty
)

func (s snapAge) String() string {
	switch s {
	case snapNone:
		return "none"
	case snapStale:
		return "stale"
	case snapFresh:
		return "fresh"
	}
	return "unknown"
}

type recoveryCell struct {
	crash     crashMode
	retention int
	snap      snapAge
}

func TestRecoveryMatrix(t *testing.T) {
	var cells []recoveryCell
	for _, crash := range []crashMode{crashAbort, crashAppendAbort, crashTornTail} {
		for _, retention := range []int{0, 2} {
			for _, snap := range []snapAge{snapNone, snapStale, snapFresh} {
				cells = append(cells, recoveryCell{crash, retention, snap})
			}
		}
	}
	if testing.Short() {
		// One representative per crash mode plus the retention × fresh
		// snapshot corner the full grid exists for.
		cells = []recoveryCell{
			{crashAbort, 0, snapNone},
			{crashAppendAbort, 0, snapStale},
			{crashTornTail, 0, snapNone},
			{crashAppendAbort, 2, snapFresh},
		}
	}
	for _, cell := range cells {
		cell := cell
		t.Run(fmt.Sprintf("%s/ret=%d/snap=%s", cell.crash, cell.retention, cell.snap), func(t *testing.T) {
			t.Parallel()
			runRecoveryCell(t, cell)
		})
	}
}

func runRecoveryCell(t *testing.T, cell recoveryCell) {
	dir := t.TempDir()
	sys := openDurable(t, dir, cell.retention)
	control := controlSystem(t)
	defer control.Close()

	const minutes = 4
	for m := int64(0); m < minutes; m++ {
		uploadMinute(t, m, 10, 70+m, sys, control)
		if cell.retention > 0 {
			if _, err := sys.Store().ApplyRetention(); err != nil {
				t.Fatal(err)
			}
		}
		if cell.snap == snapStale && m == 1 {
			if err := sys.Checkpoint(); err != nil {
				t.Fatal(err)
			}
		}
	}
	if cell.snap == snapFresh {
		if err := sys.Checkpoint(); err != nil {
			t.Fatal(err)
		}
	}

	// Crash. The append-abort mode parks a batch in the log that no
	// shard ever committed — the ack-after-append window — and hands
	// the same batch to the control, which commits it normally.
	var extra []*vp.Profile
	switch cell.crash {
	case crashAbort:
		sys.Abort()
	case crashAppendAbort:
		var err error
		extra, err = core.SynthesizeLegitimate(core.SynthConfig{
			N: 3, Area: durArea, Minute: minutes - 1, Seed: 99,
		})
		if err != nil {
			t.Fatal(err)
		}
		batch := vp.MarshalBatch(extra)
		if err := sys.CrashAppendAbort([][]byte{batch}); err != nil {
			t.Fatal(err)
		}
		res, err := control.UploadVPBatch(batch)
		if err != nil {
			t.Fatal(err)
		}
		if res.Stored != len(extra) {
			t.Fatalf("control stored %d of the %d crash-window records", res.Stored, len(extra))
		}
	case crashTornTail:
		sys.Abort()
		f, err := os.OpenFile(filepath.Join(dir, "ingest.wal"), os.O_APPEND|os.O_WRONLY, 0)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := f.Write([]byte{0x00, 0x00, 0x02, 0xAB, 0xBE, 0xEF, 0x01}); err != nil {
			t.Fatal(err)
		}
		f.Close()
	}

	rec := openDurable(t, dir, cell.retention)
	defer func() { rec.Close() }()
	d := rec.DurabilityStatsSnapshot()
	switch {
	case cell.crash == crashAppendAbort:
		// Replayed counts WAL records; the crash window parked one
		// batch record carrying len(extra) profiles.
		if d.Replayed < 1 {
			t.Fatalf("recovery replayed %d records, want at least the crash-window batch", d.Replayed)
		}
		for _, p := range extra {
			if _, ok := rec.Store().Get(p.ID()); !ok {
				t.Fatalf("crash-window profile %v missing after recovery", p.ID())
			}
		}
	case cell.snap == snapFresh:
		if d.Replayed != 0 {
			t.Fatalf("recovery replayed %d records past a fresh checkpoint, want 0", d.Replayed)
		}
	case cell.snap == snapNone && cell.retention == 0 && cell.crash == crashAbort:
		// Each uploaded minute journals two records: the trusted VP and
		// the anonymous batch.
		if d.Replayed != int(minutes)*2 {
			t.Fatalf("snapshot-free recovery replayed %d records, want %d", d.Replayed, minutes*2)
		}
	}
	verifyRecoveredCell(t, rec, control, minutes, "first recovery")

	// Crash the recovered system and recover again: replay must be
	// idempotent — the same records land once, the verdicts hold.
	rec.Abort()
	rec2 := openDurable(t, dir, cell.retention)
	defer rec2.Close()
	verifyRecoveredCell(t, rec2, control, minutes, "second recovery")
}

func verifyRecoveredCell(t *testing.T, rec, control *System, minutes int64, label string) {
	t.Helper()
	if got, want := rec.Store().Len(), control.Store().Len(); got != want {
		t.Fatalf("%s: recovered %d VPs, control has %d", label, got, want)
	}
	for m := int64(0); m < minutes; m++ {
		if got, want := report(t, rec, m), report(t, control, m); !reflect.DeepEqual(got, want) {
			t.Fatalf("%s: minute %d verdicts diverge from the control", label, m)
		}
	}
}
