package server_test

// End-to-end test of GET /v1/investigate/watch: a watcher holds the
// streaming endpoint open through the wire client while batched
// uploads land concurrently, and must observe one fresh report per
// content-epoch advance — current state first, then one per wave —
// with strictly increasing epochs and a final report identical to a
// direct snapshot. Run under -race, this is also the data-race check
// on the shard's commit-notification channel.

import (
	"fmt"
	"net/http/httptest"
	"testing"
	"time"

	"viewmap/internal/client"
	"viewmap/internal/core"
	"viewmap/internal/geo"
	"viewmap/internal/server"
	"viewmap/internal/vp"
)

func TestWatchInvestigationStreamsEpochAdvances(t *testing.T) {
	sys, err := server.NewSystem(server.Config{AuthorityToken: "tok", Bank: sharedBank(t)})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(server.Handler(sys))
	defer ts.Close()
	api, err := client.NewAPI(ts.URL, ts.Client())
	if err != nil {
		t.Fatal(err)
	}

	area := geo.NewRect(geo.Pt(0, 0), geo.Pt(1500, 1500))
	profiles, err := core.SynthesizeLegitimate(core.SynthConfig{N: 90, Area: area, Seed: 51})
	if err != nil {
		t.Fatal(err)
	}
	ti := core.MarkTrustedNearest(profiles, area.Center())
	var anon []*vp.Profile
	for i, p := range profiles {
		if i != ti {
			anon = append(anon, p)
		}
	}
	waves := [][]*vp.Profile{anon[:30], anon[30:60], anon[60:]}
	upload := func(wave []*vp.Profile) {
		t.Helper()
		res, err := api.UploadVPBatch(wave)
		if err != nil {
			t.Fatal(err)
		}
		if res.Stored != len(wave) {
			t.Fatalf("wave stored %d of %d", res.Stored, len(wave))
		}
	}
	if err := api.UploadTrustedVP("tok", profiles[ti]); err != nil {
		t.Fatal(err)
	}
	upload(waves[0])

	site := geo.RectAround(area.Center(), 250)
	reports := make(chan client.WatchReport, 8)
	done := make(chan error, 1)
	go func() {
		done <- api.WatchInvestigation("tok", site.Min.X, site.Min.Y, site.Max.X, site.Max.Y,
			0, 0, 3, 30*time.Second, func(r client.WatchReport) error {
				reports <- r
				return nil
			})
	}()
	recv := func(label string) client.WatchReport {
		t.Helper()
		select {
		case r := <-reports:
			return r
		case err := <-done:
			// Every report is buffered before the watch returns, so a
			// report still queued when done fires is delivery order,
			// not a premature end. Re-arm done for the clean-exit
			// check after the last recv.
			select {
			case r := <-reports:
				done <- err
				return r
			default:
			}
			t.Fatalf("watch ended before %s report: %v", label, err)
		case <-time.After(45 * time.Second):
			t.Fatalf("timed out waiting for %s report", label)
		}
		panic("unreachable")
	}

	r1 := recv("initial")
	upload(waves[1])
	r2 := recv("second")
	upload(waves[2])
	r3 := recv("third")
	if err := <-done; err != nil {
		t.Fatalf("watch did not end cleanly after maxReports: %v", err)
	}

	if !(r1.Epoch < r2.Epoch && r2.Epoch < r3.Epoch) {
		t.Fatalf("epochs not strictly increasing: %d, %d, %d", r1.Epoch, r2.Epoch, r3.Epoch)
	}
	if !(r1.Members < r3.Members && r1.Members <= r2.Members && r2.Members <= r3.Members) {
		t.Fatalf("members did not grow across waves: %d, %d, %d", r1.Members, r2.Members, r3.Members)
	}

	snap, epoch, err := sys.InvestigateSnapshot("tok", site, 0)
	if err != nil {
		t.Fatal(err)
	}
	if epoch != r3.Epoch {
		t.Fatalf("final streamed epoch %d, snapshot epoch %d", r3.Epoch, epoch)
	}
	if fmt.Sprint(r3.Legitimate) != fmt.Sprint(snap.Legitimate) {
		t.Fatal("final streamed legitimate set diverges from a direct snapshot")
	}
}

// TestWatchInvestigationResumesFromEpoch pins the resume contract: a
// second watch passing the last delivered epoch as fromEpoch receives
// nothing for unchanged content and ends cleanly at its timeout.
func TestWatchInvestigationResumesFromEpoch(t *testing.T) {
	sys, err := server.NewSystem(server.Config{AuthorityToken: "tok", Bank: sharedBank(t)})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(server.Handler(sys))
	defer ts.Close()
	api, err := client.NewAPI(ts.URL, ts.Client())
	if err != nil {
		t.Fatal(err)
	}
	area := geo.NewRect(geo.Pt(0, 0), geo.Pt(1500, 1500))
	profiles, err := core.SynthesizeLegitimate(core.SynthConfig{N: 40, Area: area, Seed: 52})
	if err != nil {
		t.Fatal(err)
	}
	ti := core.MarkTrustedNearest(profiles, area.Center())
	if err := api.UploadTrustedVP("tok", profiles[ti]); err != nil {
		t.Fatal(err)
	}
	var anon []*vp.Profile
	for i, p := range profiles {
		if i != ti {
			anon = append(anon, p)
		}
	}
	if _, err := api.UploadVPBatch(anon); err != nil {
		t.Fatal(err)
	}

	site := geo.RectAround(area.Center(), 250)
	var last uint64
	err = api.WatchInvestigation("tok", site.Min.X, site.Min.Y, site.Max.X, site.Max.Y,
		0, 0, 1, 10*time.Second, func(r client.WatchReport) error {
			last = r.Epoch
			return nil
		})
	if err != nil || last == 0 {
		t.Fatalf("first watch: epoch %d, err %v", last, err)
	}
	calls := 0
	err = api.WatchInvestigation("tok", site.Min.X, site.Min.Y, site.Max.X, site.Max.Y,
		0, last, 1, 300*time.Millisecond, func(client.WatchReport) error {
			calls++
			return nil
		})
	if err != nil {
		t.Fatalf("resumed watch did not end cleanly: %v", err)
	}
	if calls != 0 {
		t.Fatalf("resumed watch re-delivered %d reports for unchanged content", calls)
	}
}
