package server_test

// End-to-end test of the evidence subsystem over the HTTP API: a
// verified investigation opens a solicitation, an anonymous owner
// delivers the solicited video under a single-use session, the VD
// cascade accepts honest bytes and rejects tampered ones, the payout
// mints blind-signed cash that verifies against the public key and
// refuses double spends — including across a full persistence restart
// — and the investigator retrieves only the blurred copy.

import (
	"bytes"
	"fmt"
	"image"
	"net/http/httptest"
	"strings"
	"testing"

	"viewmap/internal/blur"
	"viewmap/internal/client"
	"viewmap/internal/evidence"
	"viewmap/internal/geo"
	"viewmap/internal/server"
	"viewmap/internal/vd"
)

// evidenceFrameW/H are the camera frame dimensions of the test
// convoy; each per-second chunk is one such luminance frame.
const (
	evidenceFrameW = 160
	evidenceFrameH = 90
)

// evidencePlate is where the synthetic camera renders the plate.
var evidencePlate = image.Rect(55, 40, 105, 56)

// driveCameraConvoy runs two civilian vehicles with plate-bearing
// cameras and one police car side by side for one minute.
func driveCameraConvoy(t *testing.T) (vehicles []*client.Vehicle, police *client.Vehicle) {
	t.Helper()
	names := []string{"cam-A", "cam-B", "police-9"}
	offsets := []float64{0, 60, 120}
	all := make([]*client.Vehicle, 3)
	for i, name := range names {
		v, err := client.NewVehicle(client.VehicleConfig{
			Name: name, Seed: int64(i + 1),
			Source: &blur.CameraSource{
				W: evidenceFrameW, H: evidenceFrameH, Seed: uint64(i + 1),
				Plates: []blur.Plate{{Rect: evidencePlate}},
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := v.BeginMinute(0); err != nil {
			t.Fatal(err)
		}
		all[i] = v
	}
	for s := 1; s <= 60; s++ {
		vds := make([]vd.VD, 3)
		for i, v := range all {
			d, err := v.Tick(geo.Pt(float64(s)*10+offsets[i], 0))
			if err != nil {
				t.Fatal(err)
			}
			vds[i] = d
		}
		for i, v := range all {
			for j, d := range vds {
				if i != j {
					if err := v.Hear(d, int64(s)); err != nil {
						t.Fatal(err)
					}
				}
			}
		}
	}
	for _, v := range all {
		// No guards: the evidence flow needs only actual VPs, and
		// guard-free convoys keep the viewmap minimal.
		if _, _, err := v.EndMinute(nil); err != nil {
			t.Fatal(err)
		}
	}
	return all[:2], all[2]
}

func newEvidenceSystem(t *testing.T) *server.System {
	t.Helper()
	sys, err := server.NewSystem(server.Config{
		AuthorityToken: "secret-token",
		Bank:           sharedBank(t),
		Evidence:       evidence.Config{FrameWidth: evidenceFrameW, FrameHeight: evidenceFrameH},
	})
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

func TestEvidenceEndToEnd(t *testing.T) {
	sys := newEvidenceSystem(t)
	ts := httptest.NewServer(server.Handler(sys))
	defer ts.Close()
	api, err := client.NewAPI(ts.URL, ts.Client())
	if err != nil {
		t.Fatal(err)
	}

	vehicles, police := driveCameraConvoy(t)
	for _, v := range vehicles {
		if _, err := api.UploadVPBatch(v.PendingUploads()); err != nil {
			t.Fatal(err)
		}
	}
	for _, p := range police.PendingUploads() {
		if err := api.UploadTrustedVP("secret-token", p); err != nil {
			t.Fatal(err)
		}
	}

	// Phase 1: a verified investigation opens the solicitation.
	if _, err := api.OpenSolicitation("bad-token", 0, -50, 800, 50, 0, 3); err == nil {
		t.Fatal("solicitation with a bad token must fail")
	}
	sol, err := api.OpenSolicitation("secret-token", 0, -50, 800, 50, 0, 3)
	if err != nil {
		t.Fatal(err)
	}
	if sol.NewlyListed < 2 || sol.Units != 3 {
		t.Fatalf("solicitation %+v, want at least both civilian VPs at 3 units", sol)
	}
	// Reopening is idempotent for already-listed identifiers.
	sol2, err := api.OpenSolicitation("secret-token", 0, -50, 800, 50, 0, 3)
	if err != nil {
		t.Fatal(err)
	}
	if sol2.NewlyListed != 0 {
		t.Fatalf("reopen listed %d new identifiers, want 0", sol2.NewlyListed)
	}

	// Phase 2: the owner polls the board anonymously and delivers.
	offers, err := api.EvidenceBoard()
	if err != nil {
		t.Fatal(err)
	}
	if len(offers) < 2 {
		t.Fatalf("board lists %d offers, want >= 2", len(offers))
	}
	for _, o := range offers {
		if o.Units != 3 {
			t.Fatalf("offer %x carries %d units, want 3", o.ID[:4], o.Units)
		}
	}
	boardIDs := make([]vd.VPID, len(offers))
	for i, o := range offers {
		boardIDs[i] = o.ID
	}

	owner := vehicles[0]
	matched := owner.MatchSolicitations(boardIDs)
	if len(matched) != 1 {
		t.Fatalf("owner matches %d solicitations, want 1", len(matched))
	}
	var ownID vd.VPID
	var chunks [][]byte
	for id, c := range matched {
		ownID, chunks = id, c
	}
	q, ok := owner.Secret(ownID)
	if !ok {
		t.Fatal("owner lost its secret")
	}

	// Tampered bytes bounce off the cascade with 422; the board entry
	// stays open.
	tampered := make([][]byte, len(chunks))
	for i, c := range chunks {
		tampered[i] = append([]byte(nil), c...)
	}
	tampered[30][7] ^= 0x40
	if err := deliverExpectError(api, ownID, q, tampered, "422"); err != nil {
		t.Fatal(err)
	}

	// Honest bytes are accepted and grant the offered units.
	units, err := api.DeliverEvidence(ownID, q, chunks)
	if err != nil {
		t.Fatal(err)
	}
	if units != 3 {
		t.Fatalf("delivery granted %d units, want 3", units)
	}
	// A repeat delivery conflicts.
	if err := deliverExpectError(api, ownID, q, chunks, "409"); err != nil {
		t.Fatal(err)
	}

	// Phase 3: payout. Units verify against the public key; double
	// spends are refused.
	pub, err := api.BankKey()
	if err != nil {
		t.Fatal(err)
	}
	cash, err := api.WithdrawPayout(ownID, q, units, pub)
	if err != nil {
		t.Fatal(err)
	}
	for i, c := range cash {
		if !c.Verify(pub) {
			t.Fatalf("unit %d fails public verification", i)
		}
	}
	if _, err := api.WithdrawPayout(ownID, q, 1, pub); err == nil {
		t.Fatal("over-withdrawal must be refused")
	}
	if err := api.RedeemPayout(cash[0]); err != nil {
		t.Fatal(err)
	}
	if err := api.RedeemPayout(cash[0]); err == nil || !strings.Contains(err.Error(), "409") {
		t.Fatalf("double spend: got %v, want HTTP 409", err)
	}

	// Phase 4: the investigator retrieves only the blurred copy.
	if _, err := api.FetchEvidence("bad-token", ownID); err == nil {
		t.Fatal("release without authority must fail")
	}
	rel, err := api.FetchEvidence("secret-token", ownID)
	if err != nil {
		t.Fatal(err)
	}
	if rel.RedactedFrames != 60 || rel.RedactedRegions < 60 {
		t.Fatalf("release redacted %d frames / %d regions, want 60 / >=60", rel.RedactedFrames, rel.RedactedRegions)
	}
	if len(rel.Chunks) != 60 {
		t.Fatalf("released %d chunks", len(rel.Chunks))
	}
	inner := evidencePlate.Inset(7)
	for i := range rel.Chunks {
		if bytes.Equal(rel.Chunks[i], chunks[i]) {
			t.Fatalf("released chunk %d is the raw recording", i)
		}
		frame := &image.Gray{Pix: rel.Chunks[i], Stride: evidenceFrameW,
			Rect: image.Rect(0, 0, evidenceFrameW, evidenceFrameH)}
		if c := blur.Contrast(frame, inner); c >= 15 {
			t.Fatalf("released chunk %d still shows the plate (contrast %d)", i, c)
		}
	}

	// Phase 5: stats report the lifecycle.
	st, err := api.StatsFull()
	if err != nil {
		t.Fatal(err)
	}
	ev := st.Evidence
	if ev.DeliveriesAccepted != 1 || ev.DeliveriesRejected != 1 ||
		ev.UnitsMinted != 3 || ev.UnitsRedeemed != 1 || ev.Released != 1 {
		t.Fatalf("evidence stats %+v", ev)
	}
	if ev.OpenSolicitations == 0 {
		t.Fatal("the second civilian VP should still be solicited")
	}

	// Phase 6: restart. The full state crosses a save/load cycle: the
	// double-spend ledger, the remaining board, the released video.
	var state bytes.Buffer
	if err := sys.SaveTo(&state); err != nil {
		t.Fatal(err)
	}
	sys2 := newEvidenceSystem(t)
	if _, err := sys2.LoadFrom(bytes.NewReader(state.Bytes())); err != nil {
		t.Fatal(err)
	}
	ts2 := httptest.NewServer(server.Handler(sys2))
	defer ts2.Close()
	api2, err := client.NewAPI(ts2.URL, ts2.Client())
	if err != nil {
		t.Fatal(err)
	}

	// The unit spent before the restart stays spent; the unspent one
	// redeems exactly once.
	if err := api2.RedeemPayout(cash[0]); err == nil || !strings.Contains(err.Error(), "409") {
		t.Fatalf("double spend across restart: got %v, want HTTP 409", err)
	}
	if err := api2.RedeemPayout(cash[1]); err != nil {
		t.Fatalf("redeeming the unspent unit after restart: %v", err)
	}
	// The minted-before-restart cash verifies against the restarted
	// bank's key.
	pub2, err := api2.BankKey()
	if err != nil {
		t.Fatal(err)
	}
	if !cash[2].Verify(pub2) {
		t.Fatal("pre-restart unit must verify against the restored key")
	}
	// The delivery stays delivered, the release stays available.
	if err := deliverExpectError(api2, ownID, q, chunks, "409"); err != nil {
		t.Fatal(err)
	}
	if _, err := api2.FetchEvidence("secret-token", ownID); err != nil {
		t.Fatalf("release after restart: %v", err)
	}
	// The other civilian's offer survived and is still deliverable.
	other := vehicles[1]
	offers2, err := api2.EvidenceBoard()
	if err != nil {
		t.Fatal(err)
	}
	ids2 := make([]vd.VPID, len(offers2))
	for i, o := range offers2 {
		ids2[i] = o.ID
	}
	delivered := 0
	for id, c := range other.MatchSolicitations(ids2) {
		q2, _ := other.Secret(id)
		if _, err := api2.DeliverEvidence(id, q2, c); err != nil {
			t.Fatalf("post-restart delivery: %v", err)
		}
		delivered++
	}
	if delivered != 1 {
		t.Fatalf("post-restart deliveries = %d, want 1", delivered)
	}
	st2, err := api2.StatsFull()
	if err != nil {
		t.Fatal(err)
	}
	if st2.Evidence.DeliveriesAccepted != 2 || st2.Evidence.UnitsRedeemed != 2 {
		t.Fatalf("post-restart stats %+v", st2.Evidence)
	}
}

// deliverExpectError asserts a delivery fails with the given HTTP
// status substring.
func deliverExpectError(api *client.API, id vd.VPID, q vd.Secret, chunks [][]byte, status string) error {
	_, err := api.DeliverEvidence(id, q, chunks)
	if err == nil {
		return fmt.Errorf("delivery unexpectedly accepted")
	}
	if !strings.Contains(err.Error(), status) {
		return fmt.Errorf("delivery failed with %q, want HTTP %s", err, status)
	}
	return nil
}
