// Package client implements the vehicle side of ViewMap: the
// ViewMap-enabled dashcam loop (record, broadcast and collect view
// digests, build actual and guard VPs) and the anonymous HTTP client
// that talks to the system service (upload VPs, answer solicitations,
// withdraw untraceable rewards).
package client

import (
	"errors"
	"fmt"
	"math/rand"

	"viewmap/internal/geo"
	"viewmap/internal/roadnet"
	"viewmap/internal/vd"
	"viewmap/internal/video"
	"viewmap/internal/vp"
)

// VehicleConfig parameterizes a vehicle.
type VehicleConfig struct {
	// Name seeds the synthetic camera stream.
	Name string
	// BytesPerSecond is the recording bitrate; zero selects the
	// dashcam-typical 50 MB/min.
	BytesPerSecond int
	// StorageBytes is the SD card size; zero selects 4 GB.
	StorageBytes int64
	// Alpha is the guard-VP fraction; zero selects the paper's 0.1.
	Alpha float64
	// DSRCRangeM bounds neighbor VD acceptance; zero selects 400 m.
	DSRCRangeM float64
	// Seed drives guard selection and trajectory jitter.
	Seed int64
	// Source overrides the camera content generator; nil selects a
	// pseudorandom video.SyntheticSource keyed by Name. Evidence tests
	// and simulations install a blur.CameraSource here so released
	// videos contain blurrable plates.
	Source video.ChunkSource
}

// Vehicle is one ViewMap-enabled dashcam.
type Vehicle struct {
	cfg     VehicleConfig
	src     video.ChunkSource
	storage *video.Storage
	rng     *rand.Rand

	// Current minute state.
	builder   *vp.Builder
	segment   *video.Segment
	curSecret vd.Secret
	second    int

	// Completed state.
	secrets  map[vd.VPID]vd.Secret
	profiles map[vd.VPID]*vp.Profile // actual profiles (kept)
	pending  []*vp.Profile           // actual + guard VPs awaiting upload
	guardIDs map[vd.VPID]bool        // guards to delete after upload
}

// NewVehicle creates a vehicle.
func NewVehicle(cfg VehicleConfig) (*Vehicle, error) {
	if cfg.Name == "" {
		return nil, errors.New("client: vehicle needs a name")
	}
	if cfg.BytesPerSecond == 0 {
		cfg.BytesPerSecond = video.DefaultBytesPerSecond
	}
	if cfg.StorageBytes == 0 {
		cfg.StorageBytes = 4 << 30
	}
	if cfg.Alpha == 0 {
		cfg.Alpha = 0.1
	}
	if cfg.DSRCRangeM == 0 {
		cfg.DSRCRangeM = 400
	}
	src := cfg.Source
	if src == nil {
		s, err := video.NewSyntheticSource(cfg.Name, cfg.BytesPerSecond)
		if err != nil {
			return nil, err
		}
		src = s
	}
	st, err := video.NewStorage(cfg.StorageBytes)
	if err != nil {
		return nil, err
	}
	return &Vehicle{
		cfg:      cfg,
		src:      src,
		storage:  st,
		rng:      rand.New(rand.NewSource(cfg.Seed)),
		secrets:  make(map[vd.VPID]vd.Secret),
		profiles: make(map[vd.VPID]*vp.Profile),
		guardIDs: make(map[vd.VPID]bool),
	}, nil
}

// BeginMinute starts recording a new segment at the minute-aligned
// time, drawing a fresh secret for the segment's VP identifier.
func (v *Vehicle) BeginMinute(startUnix int64) error {
	if v.builder != nil {
		return errors.New("client: previous minute not finished")
	}
	q, err := vd.NewSecret()
	if err != nil {
		return err
	}
	r := vd.DeriveVPID(q)
	b, err := vp.NewBuilder(r, startUnix, 0, v.cfg.DSRCRangeM)
	if err != nil {
		return err
	}
	seg, err := video.NewSegment(startUnix)
	if err != nil {
		return err
	}
	v.builder = b
	v.segment = seg
	v.curSecret = q
	v.second = 0
	return nil
}

// Tick records the next second at the given location and returns the
// view digest to broadcast over DSRC.
func (v *Vehicle) Tick(loc geo.Point) (vd.VD, error) {
	if v.builder == nil {
		return vd.VD{}, errors.New("client: BeginMinute first")
	}
	v.second++
	chunk := v.src.SecondChunk(v.segment.StartUnix, v.second)
	if _, err := v.segment.AppendSecond(chunk); err != nil {
		return vd.VD{}, err
	}
	return v.builder.RecordSecond(loc, chunk)
}

// Hear ingests a neighbor's broadcast VD at the current time. Errors
// from range validation or the neighbor cap are reported but benign.
func (v *Vehicle) Hear(d vd.VD, nowUnix int64) error {
	if v.builder == nil {
		return errors.New("client: not recording")
	}
	return v.builder.AcceptNeighborVD(d, nowUnix)
}

// EndMinute finalizes the segment: the actual VP is compiled and
// queued for upload alongside freshly fabricated guard VPs (one per
// selected neighbor, routed over the road network), and the video is
// stored on the SD ring.
func (v *Vehicle) EndMinute(net *roadnet.Network) (*vp.Profile, []*vp.Profile, error) {
	if v.builder == nil {
		return nil, nil, errors.New("client: not recording")
	}
	if !v.segment.Complete() {
		return nil, nil, fmt.Errorf("client: minute has only %d seconds", v.segment.Seconds())
	}
	actual, err := v.builder.Finalize()
	if err != nil {
		return nil, nil, err
	}

	var guards []*vp.Profile
	if net != nil {
		targets := vp.SelectGuardTargets(v.builder.NeighborIDs(), v.cfg.Alpha, v.rng)
		ownLast, _ := v.builder.LastLocation()
		for _, id := range targets {
			l1, ok := v.builder.NeighborInitialLocation(id)
			if !ok {
				continue
			}
			g, err := vp.BuildGuard(net, l1, ownLast, v.segment.StartUnix, vp.GuardConfig{JitterM: 5}, v.rng)
			if err != nil {
				continue // unroutable neighbor start: skip this guard
			}
			if err := vp.LinkMutually(actual, g); err != nil {
				return nil, nil, err
			}
			guards = append(guards, g)
			v.guardIDs[g.ID()] = true
		}
	}

	if _, err := v.storage.Store(v.segment); err != nil {
		return nil, nil, err
	}
	id := actual.ID()
	v.secrets[id] = v.curSecret
	v.profiles[id] = actual
	v.pending = append(v.pending, actual)
	v.pending = append(v.pending, guards...)

	v.builder = nil
	v.segment = nil
	return actual, guards, nil
}

// PendingUploads returns the queued VPs (actual and guard,
// indistinguishable) and clears the queue; the caller uploads them
// anonymously. Guard profiles are deleted from vehicle state, as the
// protocol requires.
func (v *Vehicle) PendingUploads() []*vp.Profile {
	out := v.pending
	v.pending = nil
	for _, p := range out {
		if v.guardIDs[p.ID()] {
			delete(v.guardIDs, p.ID())
		}
	}
	return out
}

// MatchSolicitations returns, for each solicited identifier this
// vehicle owns a video for, the identifier with its per-second chunks
// ready for upload. Guard VPs never match: their videos don't exist
// and their identifiers' secrets were discarded.
func (v *Vehicle) MatchSolicitations(ids []vd.VPID) map[vd.VPID][][]byte {
	out := make(map[vd.VPID][][]byte)
	for _, id := range ids {
		p, ok := v.profiles[id]
		if !ok {
			continue
		}
		seg := v.storage.Find(p.StartUnix())
		if seg == nil {
			continue // recorded over
		}
		chunks := make([][]byte, seg.Seconds())
		for i := 1; i <= seg.Seconds(); i++ {
			c, err := seg.Chunk(i)
			if err != nil {
				return nil
			}
			chunks[i-1] = c
		}
		out[id] = chunks
	}
	return out
}

// Secret returns the ownership secret for one of the vehicle's VPs.
func (v *Vehicle) Secret(id vd.VPID) (vd.Secret, bool) {
	q, ok := v.secrets[id]
	return q, ok
}

// ProfileCount returns the number of actual VPs the vehicle retains.
func (v *Vehicle) ProfileCount() int { return len(v.profiles) }

// StoredSegments returns the number of videos on the SD ring.
func (v *Vehicle) StoredSegments() int { return v.storage.Len() }
