package client

// Backpressure-handling tests: the client honors the server's
// Retry-After hint on 429, falls back to exponential backoff without
// one, rotates its session id on every attempt, and counts every shed
// response it observes.

import (
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"
)

// shedServer answers 429 (with the given Retry-After header when
// non-empty) for the first sheds requests, then 200 with an empty ids
// list. It records each attempt's X-Session header.
type shedServer struct {
	mu         sync.Mutex
	sheds      int
	retryAfter string
	sessions   []string
}

func (s *shedServer) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.sessions = append(s.sessions, r.Header.Get("X-Session"))
	if len(s.sessions) <= s.sheds {
		if s.retryAfter != "" {
			w.Header().Set("Retry-After", s.retryAfter)
		}
		w.WriteHeader(http.StatusTooManyRequests)
		w.Write([]byte(`{"error":"overloaded"}`))
		return
	}
	w.Write([]byte(`{"ids":[]}`))
}

// retryHarness builds an API against the shed server with a recording
// sleeper, so waits are asserted without actually sleeping.
func retryHarness(t *testing.T, sheds int, retryAfter string, retries int) (*API, *shedServer, *[]time.Duration) {
	t.Helper()
	shed := &shedServer{sheds: sheds, retryAfter: retryAfter}
	ts := httptest.NewServer(shed)
	t.Cleanup(ts.Close)
	api, err := NewAPI(ts.URL, ts.Client())
	if err != nil {
		t.Fatal(err)
	}
	waits := &[]time.Duration{}
	api.SetRetryPolicy(retries, 10*time.Millisecond, func(d time.Duration) {
		*waits = append(*waits, d)
	})
	return api, shed, waits
}

// TestRetryHonorsRetryAfter pins the satellite behavior: a 429 with
// "Retry-After: 2" makes the client wait at least two seconds (plus
// bounded jitter) before each retry, and the request ultimately
// succeeds.
func TestRetryHonorsRetryAfter(t *testing.T) {
	api, shed, waits := retryHarness(t, 2, "2", 4)
	ids, err := api.Solicitations()
	if err != nil {
		t.Fatalf("Solicitations after retries: %v", err)
	}
	if len(ids) != 0 {
		t.Fatalf("ids = %v", ids)
	}
	if len(shed.sessions) != 3 {
		t.Fatalf("server saw %d attempts, want 3", len(shed.sessions))
	}
	if len(*waits) != 2 {
		t.Fatalf("client slept %d times, want 2", len(*waits))
	}
	for i, w := range *waits {
		if w < 2*time.Second || w > 3*time.Second {
			t.Fatalf("wait %d = %v, want [2s, 3s] (Retry-After honored + <=50%% jitter)", i, w)
		}
	}
	if got := api.Seen429(); got != 2 {
		t.Fatalf("Seen429 = %d, want 2", got)
	}
	// The anonymity discipline holds across retries: every attempt
	// used a fresh single-use session id.
	seen := map[string]bool{}
	for _, sid := range shed.sessions {
		if sid == "" || seen[sid] {
			t.Fatalf("session id %q reused across retry attempts", sid)
		}
		seen[sid] = true
	}
}

// TestRetryExponentialBackoffWithoutHint checks the fallback: absent a
// Retry-After header the waits grow exponentially from the configured
// base, each with at most 50% jitter.
func TestRetryExponentialBackoffWithoutHint(t *testing.T) {
	api, _, waits := retryHarness(t, 3, "", 4)
	if _, err := api.Solicitations(); err != nil {
		t.Fatal(err)
	}
	if len(*waits) != 3 {
		t.Fatalf("client slept %d times, want 3", len(*waits))
	}
	base := 10 * time.Millisecond
	for i, w := range *waits {
		lo := base << i
		hi := lo + lo/2
		if w < lo || w > hi {
			t.Fatalf("wait %d = %v, want [%v, %v]", i, w, lo, hi)
		}
	}
}

// TestRetryBudgetExhausted checks that a persistently overloaded
// server eventually surfaces the 429 as an error, with every shed
// attempt counted.
func TestRetryBudgetExhausted(t *testing.T) {
	api, shed, waits := retryHarness(t, 1<<30, "1", 2)
	if _, err := api.Solicitations(); err == nil {
		t.Fatal("persistent 429 should surface as an error")
	}
	if len(shed.sessions) != 3 {
		t.Fatalf("server saw %d attempts, want 3 (1 + 2 retries)", len(shed.sessions))
	}
	if len(*waits) != 2 {
		t.Fatalf("client slept %d times, want 2", len(*waits))
	}
	if got := api.Seen429(); got != 3 {
		t.Fatalf("Seen429 = %d, want 3", got)
	}
}

// TestRetryWaitParsesBothRetryAfterForms pins retryWait to RFC 9110
// §10.2.3: Retry-After may be delay-seconds or an HTTP-date, and both
// must be honored; garbage and past dates fall back to the
// exponential schedule. The pre-fix parser only understood the
// integer form, so an HTTP-date hint silently degraded to the (much
// shorter) backoff and the client hammered a server that had asked
// for a longer pause.
func TestRetryWaitParsesBothRetryAfterForms(t *testing.T) {
	api, _, _ := retryHarness(t, 0, "", 4)
	base := 10 * time.Millisecond

	// Delay-seconds form: 3 seconds plus at most 50% jitter.
	if w := api.retryWait("3", 0); w < 3*time.Second || w > 4500*time.Millisecond {
		t.Fatalf("delay-seconds wait = %v, want [3s, 4.5s]", w)
	}

	// HTTP-date form: a date ~5s out yields a wait near that span
	// (slightly less by the time it is computed) plus jitter.
	date := time.Now().Add(5 * time.Second).UTC().Format(http.TimeFormat)
	if w := api.retryWait(date, 0); w < 3500*time.Millisecond || w > 8*time.Second {
		t.Fatalf("HTTP-date wait = %v, want roughly [3.5s, 8s]", w)
	}

	// A date in the past carries no usable pause: exponential fallback.
	past := time.Now().Add(-5 * time.Second).UTC().Format(http.TimeFormat)
	if w := api.retryWait(past, 1); w < base<<1 || w > (base<<1)*3/2 {
		t.Fatalf("past-date wait = %v, want exponential fallback [%v, %v]", w, base<<1, (base<<1)*3/2)
	}

	// Garbage: exponential fallback too.
	if w := api.retryWait("soonish", 0); w < base || w > base*3/2 {
		t.Fatalf("garbage wait = %v, want [%v, %v]", w, base, base*3/2)
	}
}
