package client

import (
	"bufio"
	"bytes"
	"crypto/rand"
	"crypto/rsa"
	"encoding/base64"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/big"
	mrand "math/rand"
	"net/http"
	"net/url"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"viewmap/internal/anon"
	"viewmap/internal/reward"
	"viewmap/internal/vd"
	"viewmap/internal/vp"
)

// API is the vehicle's client to the system service. Every request
// traverses a simulated onion circuit and carries a single-use session
// identifier, reproducing the paper's "constantly change sessions"
// uploading discipline over Tor.
type API struct {
	base     string
	http     *http.Client
	dir      *anon.Directory
	hops     int
	sessions *anon.Sessions

	// Backpressure handling: a 429 response is retried up to retries
	// times, sleeping the server's Retry-After hint (or an exponential
	// backoff when the hint is absent) plus up to 50% jitter between
	// attempts. Each retry rides a fresh circuit and session id.
	retries int
	backoff time.Duration
	sleep   func(time.Duration)
	// seen429 counts 429 responses observed (including retried ones);
	// tests cross-check it against the server's shed counters.
	seen429 atomic.Uint64
	// jitterMu guards jitter, the client's private backoff-jitter
	// source (math/rand's package globals are banned repo-wide so
	// simulation randomness stays seedable; the jitter source is
	// seeded from crypto/rand at construction).
	jitterMu sync.Mutex
	jitter   *mrand.Rand
}

// NewAPI creates a client for the service at base (e.g.
// "http://127.0.0.1:8440"). httpClient may be nil for the default.
func NewAPI(base string, httpClient *http.Client) (*API, error) {
	if base == "" {
		return nil, errors.New("client: empty base URL")
	}
	if httpClient == nil {
		httpClient = http.DefaultClient
	}
	dir, err := anon.NewDirectory(5)
	if err != nil {
		return nil, err
	}
	var seed [8]byte
	if _, err := rand.Read(seed[:]); err != nil {
		return nil, fmt.Errorf("client: seeding backoff jitter: %w", err)
	}
	return &API{
		base:     base,
		http:     httpClient,
		dir:      dir,
		hops:     3,
		sessions: anon.NewSessions(),
		retries:  defaultRetries,
		backoff:  defaultBackoff,
		sleep:    time.Sleep,
		jitter:   mrand.New(mrand.NewSource(int64(binary.BigEndian.Uint64(seed[:])))),
	}, nil
}

// Default 429 retry policy: four retries, 50 ms exponential backoff
// base when the server sends no Retry-After hint.
const (
	defaultRetries = 4
	defaultBackoff = 50 * time.Millisecond
)

// SetRetryPolicy tunes the client's handling of 429 responses:
// retries bounds the re-attempts per request (0 disables retrying),
// backoff is the exponential base used when the server sends no
// Retry-After hint, and sleep replaces time.Sleep between attempts
// (nil keeps time.Sleep; tests inject a recorder, simulations a
// time-compressed sleeper). Not safe to call concurrently with
// in-flight requests.
func (a *API) SetRetryPolicy(retries int, backoff time.Duration, sleep func(time.Duration)) {
	if retries < 0 {
		retries = 0
	}
	if backoff <= 0 {
		backoff = defaultBackoff
	}
	if sleep == nil {
		sleep = time.Sleep
	}
	a.retries, a.backoff, a.sleep = retries, backoff, sleep
}

// Seen429 reports how many 429 responses this client has observed,
// counting every shed attempt of every retried request. Against a
// server whose only 429 source is the admission layer, the sum across
// all clients equals the server's shed counters exactly.
func (a *API) Seen429() uint64 { return a.seen429.Load() }

// anonBody routes the payload through a fresh onion circuit and
// returns the exit-side bytes. The simulation performs the traversal
// in-process; what matters to the system is that the payload arrives
// with no linkable origin.
func (a *API) anonBody(payload []byte) ([]byte, error) {
	circuit, err := a.dir.PickCircuit(a.hops)
	if err != nil {
		return nil, err
	}
	wrapped, err := circuit.Wrap(payload)
	if err != nil {
		return nil, err
	}
	return circuit.Traverse(wrapped)
}

// do issues one anonymous request with a fresh session id, retrying
// shed (429) responses per the client's retry policy: the wait between
// attempts honors the server's Retry-After hint when present, falls
// back to exponential backoff otherwise, and adds up to 50% jitter so
// a fleet of shed clients does not return in lockstep. Every retry
// builds a fresh circuit and session id — a retried request is
// indistinguishable from a new one, as the anonymity discipline
// requires.
func (a *API) do(method, path, contentType string, payload []byte, authority string) (*http.Response, error) {
	for attempt := 0; ; attempt++ {
		resp, err := a.doOnce(method, path, contentType, payload, authority)
		if err != nil {
			return nil, err
		}
		if resp.StatusCode != http.StatusTooManyRequests {
			return resp, nil
		}
		a.seen429.Add(1)
		if attempt >= a.retries {
			return resp, nil
		}
		wait := a.retryWait(resp.Header.Get("Retry-After"), attempt)
		io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<16))
		resp.Body.Close()
		a.sleep(wait)
	}
}

// retryWait picks the pause before a retry: the server's Retry-After
// hint when present and positive — either delay-seconds or an HTTP-date,
// the two forms RFC 9110 §10.2.3 allows — exponential backoff from the
// configured base otherwise, plus up to 50% jitter. An unparseable or
// non-positive hint falls back to the exponential schedule.
func (a *API) retryWait(retryAfter string, attempt int) time.Duration {
	wait := a.backoff << min(attempt, 10)
	if secs, err := strconv.Atoi(retryAfter); err == nil && secs > 0 {
		wait = time.Duration(secs) * time.Second
	} else if t, err := http.ParseTime(retryAfter); err == nil {
		if d := time.Until(t); d > 0 {
			wait = d
		}
	}
	a.jitterMu.Lock()
	j := a.jitter.Int63n(int64(wait)/2 + 1)
	a.jitterMu.Unlock()
	return wait + time.Duration(j)
}

// doOnce issues one anonymous request attempt.
func (a *API) doOnce(method, path, contentType string, payload []byte, authority string) (*http.Response, error) {
	body, err := a.anonBody(payload)
	if err != nil {
		return nil, err
	}
	req, err := http.NewRequest(method, a.base+path, bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	if contentType != "" {
		req.Header.Set("Content-Type", contentType)
	}
	sid, err := a.sessions.New()
	if err != nil {
		return nil, err
	}
	req.Header.Set("X-Session", sid)
	if authority != "" {
		req.Header.Set("X-Viewmap-Authority", authority)
	}
	return a.http.Do(req)
}

// apiError extracts the service's error body.
func apiError(resp *http.Response) error {
	defer resp.Body.Close()
	var e struct {
		Error string `json:"error"`
	}
	data, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<16))
	if json.Unmarshal(data, &e) == nil && e.Error != "" {
		return fmt.Errorf("client: server says %q (HTTP %d)", e.Error, resp.StatusCode)
	}
	return fmt.Errorf("client: HTTP %d", resp.StatusCode)
}

// UploadVP submits one VP anonymously.
func (a *API) UploadVP(p *vp.Profile) error {
	resp, err := a.do("POST", "/v1/vp", "application/octet-stream", p.Marshal(), "")
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusCreated {
		return apiError(resp)
	}
	resp.Body.Close()
	return nil
}

// BatchUploadResult reports the per-profile outcome of one batched
// upload, as counted by the server.
type BatchUploadResult struct {
	// Stored counts profiles the server accepted.
	Stored int `json:"stored"`
	// Duplicates counts profiles whose identifier was already stored.
	Duplicates int `json:"duplicates"`
	// Rejected counts profiles the server failed to parse or validate.
	Rejected int `json:"rejected"`
}

// UploadVPBatch submits several VPs in one anonymous request over a
// single circuit (POST /v1/vp/batch). Per-profile failures do not sink
// the batch; the returned counts say how each profile fared. Vehicles
// that accumulate a minute's actual and guard VPs upload them together
// this way instead of paying one circuit per profile.
func (a *API) UploadVPBatch(profiles []*vp.Profile) (BatchUploadResult, error) {
	var res BatchUploadResult
	if len(profiles) == 0 {
		return res, errors.New("client: empty batch")
	}
	resp, err := a.do("POST", "/v1/vp/batch", "application/octet-stream", vp.MarshalBatch(profiles), "")
	if err != nil {
		return res, err
	}
	if resp.StatusCode != http.StatusOK {
		return res, apiError(resp)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(&res); err != nil {
		return res, err
	}
	return res, nil
}

// UploadTrustedVP submits an authority VP with the authority token.
func (a *API) UploadTrustedVP(token string, p *vp.Profile) error {
	resp, err := a.do("POST", "/v1/vp/trusted", "application/octet-stream", p.Marshal(), token)
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusCreated {
		return apiError(resp)
	}
	resp.Body.Close()
	return nil
}

// Investigate asks the system to build and verify a viewmap (authority
// only) and returns the number of newly posted solicitations.
func (a *API) Investigate(token string, minX, minY, maxX, maxY float64, minute int64) (int, error) {
	reqBody, err := json.Marshal(map[string]interface{}{
		"site":   map[string]float64{"minX": minX, "minY": minY, "maxX": maxX, "maxY": maxY},
		"minute": minute,
	})
	if err != nil {
		return 0, err
	}
	resp, err := a.do("POST", "/v1/investigate", "application/json", reqBody, token)
	if err != nil {
		return 0, err
	}
	if resp.StatusCode != http.StatusOK {
		return 0, apiError(resp)
	}
	defer resp.Body.Close()
	var out struct {
		NewlySolicited int `json:"newlySolicited"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return 0, err
	}
	return out.NewlySolicited, nil
}

// VPVerdict is one viewmap member's verdict from the wire report.
type VPVerdict struct {
	// ID is the member's VP identifier.
	ID vd.VPID
	// Trusted marks authority VPs.
	Trusted bool
	// InSite reports whether the member's trajectory enters the site.
	InSite bool
	// Legitimate reports whether Algorithm 1 marked it LEGITIMATE.
	Legitimate bool
	// Hops is the viewlink distance to the nearest trusted VP (-1
	// when unreachable).
	Hops int
}

// InvestigationOutcome is the parsed POST /v1/investigate/report
// response: the viewmap's shape plus every member's verdict, in
// ascending identifier order.
type InvestigationOutcome struct {
	// Members and Edges describe the verified viewmap.
	Members, Edges int
	// InSite counts members whose trajectories enter the site.
	InSite int
	// Verdicts holds one entry per viewmap member.
	Verdicts []VPVerdict
}

// InvestigateReport verifies (site, minute) and returns the per-VP
// verdicts — the scoring surface the online attack campaigns are
// graded through. Read-only; no solicitations are posted. Authority
// only.
func (a *API) InvestigateReport(token string, minX, minY, maxX, maxY float64, minute int64) (*InvestigationOutcome, error) {
	reqBody, err := json.Marshal(map[string]interface{}{
		"site":   map[string]float64{"minX": minX, "minY": minY, "maxX": maxX, "maxY": maxY},
		"minute": minute,
	})
	if err != nil {
		return nil, err
	}
	resp, err := a.do("POST", "/v1/investigate/report", "application/json", reqBody, token)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, apiError(resp)
	}
	defer resp.Body.Close()
	var out struct {
		Members  int `json:"members"`
		Edges    int `json:"edges"`
		InSite   int `json:"inSite"`
		Verdicts []struct {
			ID         string `json:"id"`
			Trusted    bool   `json:"trusted"`
			InSite     bool   `json:"inSite"`
			Legitimate bool   `json:"legitimate"`
			Hops       int    `json:"hops"`
		} `json:"verdicts"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return nil, err
	}
	res := &InvestigationOutcome{
		Members: out.Members, Edges: out.Edges, InSite: out.InSite,
		Verdicts: make([]VPVerdict, len(out.Verdicts)),
	}
	for i, v := range out.Verdicts {
		b, err := hex.DecodeString(v.ID)
		if err != nil || len(b) != len(vd.VPID{}) {
			return nil, fmt.Errorf("client: bad id %q in report", v.ID)
		}
		res.Verdicts[i] = VPVerdict{
			Trusted: v.Trusted, InSite: v.InSite,
			Legitimate: v.Legitimate, Hops: v.Hops,
		}
		copy(res.Verdicts[i].ID[:], b)
	}
	return res, nil
}

// WatchReport is one streamed report from GET /v1/investigate/watch.
type WatchReport struct {
	// Minute is the watched minute.
	Minute int64
	// Epoch is the report's content epoch; pass it as the next watch's
	// fromEpoch to resume without re-receiving this state.
	Epoch uint64
	// Members and Edges describe the verified viewmap.
	Members, Edges int
	// InSite counts members whose trajectories enter the site.
	InSite int
	// Legitimate lists the members marked LEGITIMATE, in ascending
	// identifier order.
	Legitimate []vd.VPID
}

// WatchInvestigation streams fresh investigation reports for (site,
// minute) as the server's graph advances, calling fn once per report:
// the current state first (unless fromEpoch suppresses it), then one
// call per content change. fn returning a non-nil error stops the
// watch with that error; otherwise the watch returns nil when the
// server ends the stream (timeout elapsed or maxReports delivered,
// both zero-able to take the server's defaults). Authority only.
func (a *API) WatchInvestigation(token string, minX, minY, maxX, maxY float64, minute int64,
	fromEpoch uint64, maxReports int, timeout time.Duration, fn func(WatchReport) error) error {
	q := url.Values{}
	q.Set("minX", strconv.FormatFloat(minX, 'g', -1, 64))
	q.Set("minY", strconv.FormatFloat(minY, 'g', -1, 64))
	q.Set("maxX", strconv.FormatFloat(maxX, 'g', -1, 64))
	q.Set("maxY", strconv.FormatFloat(maxY, 'g', -1, 64))
	q.Set("minute", strconv.FormatInt(minute, 10))
	if fromEpoch > 0 {
		q.Set("fromEpoch", strconv.FormatUint(fromEpoch, 10))
	}
	if maxReports > 0 {
		q.Set("maxReports", strconv.Itoa(maxReports))
	}
	if timeout > 0 {
		q.Set("timeoutMs", strconv.FormatInt(int64(timeout/time.Millisecond), 10))
	}
	resp, err := a.do("GET", "/v1/investigate/watch?"+q.Encode(), "", nil, token)
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return apiError(resp)
	}
	defer resp.Body.Close()
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var wire struct {
			Error      string   `json:"error"`
			Minute     int64    `json:"minute"`
			Epoch      uint64   `json:"epoch"`
			Members    int      `json:"members"`
			Edges      int      `json:"edges"`
			InSite     int      `json:"inSite"`
			Legitimate []string `json:"legitimate"`
		}
		if err := json.Unmarshal(line, &wire); err != nil {
			return fmt.Errorf("client: bad watch line: %w", err)
		}
		if wire.Error != "" {
			return fmt.Errorf("client: server says %q mid-stream", wire.Error)
		}
		rep := WatchReport{
			Minute: wire.Minute, Epoch: wire.Epoch,
			Members: wire.Members, Edges: wire.Edges, InSite: wire.InSite,
			Legitimate: make([]vd.VPID, len(wire.Legitimate)),
		}
		for i, s := range wire.Legitimate {
			b, err := hex.DecodeString(s)
			if err != nil || len(b) != len(vd.VPID{}) {
				return fmt.Errorf("client: bad id %q in watch report", s)
			}
			copy(rep.Legitimate[i][:], b)
		}
		if err := fn(rep); err != nil {
			return err
		}
	}
	return sc.Err()
}

// fetchIDs reads an {ids:[hex]} response.
func (a *API) fetchIDs(path string) ([]vd.VPID, error) {
	resp, err := a.do("GET", path, "", nil, "")
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, apiError(resp)
	}
	defer resp.Body.Close()
	var out struct {
		IDs []string `json:"ids"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return nil, err
	}
	ids := make([]vd.VPID, 0, len(out.IDs))
	for _, s := range out.IDs {
		b, err := hex.DecodeString(s)
		if err != nil || len(b) != len(vd.VPID{}) {
			return nil, fmt.Errorf("client: bad id %q in response", s)
		}
		var id vd.VPID
		copy(id[:], b)
		ids = append(ids, id)
	}
	return ids, nil
}

// Solicitations fetches the current 'request for video' list.
func (a *API) Solicitations() ([]vd.VPID, error) { return a.fetchIDs("/v1/solicitations") }

// Rewards fetches the current 'request for reward' list.
func (a *API) Rewards() ([]vd.VPID, error) { return a.fetchIDs("/v1/rewards") }

// SubmitVideo uploads a solicited video's chunks.
func (a *API) SubmitVideo(id vd.VPID, chunks [][]byte) error {
	enc := make([]string, len(chunks))
	for i, c := range chunks {
		enc[i] = base64.StdEncoding.EncodeToString(c)
	}
	reqBody, err := json.Marshal(map[string]interface{}{
		"id": hex.EncodeToString(id[:]), "chunks": enc,
	})
	if err != nil {
		return err
	}
	resp, err := a.do("POST", "/v1/video", "application/json", reqBody, "")
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusAccepted {
		return apiError(resp)
	}
	resp.Body.Close()
	return nil
}

// BankKey fetches the system's blind-signature public key.
func (a *API) BankKey() (*rsa.PublicKey, error) {
	resp, err := a.do("GET", "/v1/bank", "", nil, "")
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, apiError(resp)
	}
	defer resp.Body.Close()
	var out struct {
		N string `json:"n"`
		E int    `json:"e"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return nil, err
	}
	n, ok := new(big.Int).SetString(out.N, 10)
	if !ok {
		return nil, errors.New("client: bad bank modulus")
	}
	return &rsa.PublicKey{N: n, E: out.E}, nil
}

// ClaimReward proves ownership and returns the granted unit count.
func (a *API) ClaimReward(id vd.VPID, q vd.Secret) (int, error) {
	reqBody, err := json.Marshal(map[string]string{
		"id": hex.EncodeToString(id[:]), "secret": hex.EncodeToString(q[:]),
	})
	if err != nil {
		return 0, err
	}
	resp, err := a.do("POST", "/v1/reward/claim", "application/json", reqBody, "")
	if err != nil {
		return 0, err
	}
	if resp.StatusCode != http.StatusOK {
		return 0, apiError(resp)
	}
	defer resp.Body.Close()
	var out struct {
		Units int `json:"units"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return 0, err
	}
	return out.Units, nil
}

// withdrawBlindSigned runs the client side of one blind-signature
// withdrawal against the given signing endpoint: blind fresh notes,
// obtain signatures, unblind into spendable cash. Shared by the
// legacy reward flow and the evidence payout flow, which differ only
// in the endpoint.
func (a *API) withdrawBlindSigned(path string, id vd.VPID, q vd.Secret, n int, pub *rsa.PublicKey) ([]*reward.Cash, error) {
	if n <= 0 {
		return nil, fmt.Errorf("client: unit count must be positive, got %d", n)
	}
	notes := make([]*reward.Note, n)
	blinded := make([]string, n)
	for i := 0; i < n; i++ {
		note, err := reward.NewNote(pub, rand.Reader)
		if err != nil {
			return nil, err
		}
		notes[i] = note
		blinded[i] = note.Blind(pub).String()
	}
	reqBody, err := json.Marshal(map[string]interface{}{
		"id":      hex.EncodeToString(id[:]),
		"secret":  hex.EncodeToString(q[:]),
		"blinded": blinded,
	})
	if err != nil {
		return nil, err
	}
	resp, err := a.do("POST", path, "application/json", reqBody, "")
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, apiError(resp)
	}
	defer resp.Body.Close()
	var out struct {
		Signatures []string `json:"signatures"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return nil, err
	}
	if len(out.Signatures) != n {
		return nil, fmt.Errorf("client: got %d signatures, want %d", len(out.Signatures), n)
	}
	cash := make([]*reward.Cash, n)
	for i, s := range out.Signatures {
		sig, ok := new(big.Int).SetString(s, 10)
		if !ok {
			return nil, fmt.Errorf("client: signature %d not decimal", i)
		}
		c, err := notes[i].Unblind(pub, sig)
		if err != nil {
			return nil, fmt.Errorf("client: unblinding unit %d: %w", i, err)
		}
		cash[i] = c
	}
	return cash, nil
}

// redeemAt spends one unit of cash at the given redemption endpoint.
func (a *API) redeemAt(path string, c *reward.Cash) error {
	reqBody, err := json.Marshal(map[string]string{
		"m": base64.StdEncoding.EncodeToString(c.M), "sig": c.Sig.String(),
	})
	if err != nil {
		return err
	}
	resp, err := a.do("POST", path, "application/json", reqBody, "")
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return apiError(resp)
	}
	resp.Body.Close()
	return nil
}

// WithdrawCash runs the full blind-signature withdrawal for n units:
// blind fresh notes, have the system sign them against the reward
// offer, unblind, and return spendable cash.
func (a *API) WithdrawCash(id vd.VPID, q vd.Secret, n int, pub *rsa.PublicKey) ([]*reward.Cash, error) {
	return a.withdrawBlindSigned("/v1/reward/blind", id, q, n, pub)
}

// Redeem spends one unit of cash at the system.
func (a *API) Redeem(c *reward.Cash) error {
	return a.redeemAt("/v1/reward/redeem", c)
}

// Stats fetches the service's database counters.
func (a *API) Stats() (vps, trusted, reviewQueue int, err error) {
	resp, err := a.do("GET", "/v1/stats", "", nil, "")
	if err != nil {
		return 0, 0, 0, err
	}
	if resp.StatusCode != http.StatusOK {
		return 0, 0, 0, apiError(resp)
	}
	defer resp.Body.Close()
	var out struct {
		VPs         int `json:"vps"`
		Trusted     int `json:"trusted"`
		ReviewQueue int `json:"reviewQueue"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return 0, 0, 0, err
	}
	return out.VPs, out.Trusted, out.ReviewQueue, nil
}
