package client

import (
	"testing"

	"viewmap/internal/geo"
	"viewmap/internal/roadnet"
	"viewmap/internal/vd"
)

func testVehicle(t testing.TB, name string) *Vehicle {
	t.Helper()
	v, err := NewVehicle(VehicleConfig{Name: name, BytesPerSecond: 500, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	return v
}

func guardCity(t testing.TB) *roadnet.City {
	t.Helper()
	c, err := roadnet.BuildGrid(roadnet.GridConfig{Cols: 6, Rows: 6, Spacing: 150})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// recordMinute drives a vehicle for one full minute eastbound.
func recordMinute(t testing.TB, v *Vehicle, start int64, y float64) {
	t.Helper()
	if err := v.BeginMinute(start); err != nil {
		t.Fatal(err)
	}
	for s := 1; s <= 60; s++ {
		if _, err := v.Tick(geo.Pt(float64(s)*10, y)); err != nil {
			t.Fatal(err)
		}
	}
}

func TestNewVehicleValidation(t *testing.T) {
	if _, err := NewVehicle(VehicleConfig{}); err == nil {
		t.Error("vehicle without a name should fail")
	}
}

func TestLifecycleErrors(t *testing.T) {
	v := testVehicle(t, "lifecycle")
	if _, err := v.Tick(geo.Pt(0, 0)); err == nil {
		t.Error("Tick before BeginMinute should fail")
	}
	if err := v.Hear(vd.VD{}, 0); err == nil {
		t.Error("Hear before BeginMinute should fail")
	}
	if _, _, err := v.EndMinute(nil); err == nil {
		t.Error("EndMinute before BeginMinute should fail")
	}
	if err := v.BeginMinute(0); err != nil {
		t.Fatal(err)
	}
	if err := v.BeginMinute(60); err == nil {
		t.Error("BeginMinute while recording should fail")
	}
	if _, err := v.Tick(geo.Pt(0, 0)); err != nil {
		t.Fatal(err)
	}
	if _, _, err := v.EndMinute(nil); err == nil {
		t.Error("EndMinute after one second should fail")
	}
}

func TestEndMinuteProducesProfileAndVideo(t *testing.T) {
	v := testVehicle(t, "solo")
	recordMinute(t, v, 0, 0)
	actual, guards, err := v.EndMinute(nil)
	if err != nil {
		t.Fatal(err)
	}
	if !actual.Complete() {
		t.Error("actual VP should be complete")
	}
	if len(guards) != 0 {
		t.Error("no neighbors means no guards")
	}
	if v.StoredSegments() != 1 {
		t.Errorf("StoredSegments = %d, want 1", v.StoredSegments())
	}
	if v.ProfileCount() != 1 {
		t.Errorf("ProfileCount = %d, want 1", v.ProfileCount())
	}
	if _, ok := v.Secret(actual.ID()); !ok {
		t.Error("vehicle should retain the segment secret")
	}
}

func TestGuardsCreatedForNeighbors(t *testing.T) {
	a := testVehicle(t, "guards-a")
	b := testVehicle(t, "guards-b")
	city := guardCity(t)
	if err := a.BeginMinute(0); err != nil {
		t.Fatal(err)
	}
	if err := b.BeginMinute(0); err != nil {
		t.Fatal(err)
	}
	for s := 1; s <= 60; s++ {
		da, err := a.Tick(geo.Pt(float64(s)*10, 0))
		if err != nil {
			t.Fatal(err)
		}
		db, err := b.Tick(geo.Pt(float64(s)*10, 30))
		if err != nil {
			t.Fatal(err)
		}
		if err := a.Hear(db, int64(s)); err != nil {
			t.Fatal(err)
		}
		if err := b.Hear(da, int64(s)); err != nil {
			t.Fatal(err)
		}
	}
	actual, guards, err := a.EndMinute(city.Net)
	if err != nil {
		t.Fatal(err)
	}
	// One neighbor, alpha=0.1 -> ceil(0.1*1) = 1 guard.
	if len(guards) != 1 {
		t.Fatalf("guards = %d, want 1", len(guards))
	}
	g := guards[0]
	if err := g.Validate(); err != nil {
		t.Errorf("guard must be structurally indistinguishable: %v", err)
	}
	// Guard starts at the neighbor's initial location, ends at a's
	// final position.
	if d := g.InitialLocation().Dist(geo.Pt(10, 30)); d > 30 {
		t.Errorf("guard starts %v m from neighbor's initial location", d)
	}
	if d := g.FinalLocation().Dist(actual.FinalLocation()); d > 30 {
		t.Errorf("guard ends %v m from the vehicle's final position", d)
	}
	// Uploads: actual + guard queued; queue drains once.
	ups := a.PendingUploads()
	if len(ups) != 2 {
		t.Fatalf("pending uploads = %d, want 2", len(ups))
	}
	if len(a.PendingUploads()) != 0 {
		t.Error("upload queue should drain")
	}
}

func TestMatchSolicitations(t *testing.T) {
	v := testVehicle(t, "match")
	recordMinute(t, v, 0, 0)
	actual, _, err := v.EndMinute(nil)
	if err != nil {
		t.Fatal(err)
	}
	id := actual.ID()
	// Solicited list containing our VP and an unknown one.
	var unknown vd.VPID
	unknown[0] = 0xFF
	matches := v.MatchSolicitations([]vd.VPID{id, unknown})
	if len(matches) != 1 {
		t.Fatalf("matches = %d, want 1", len(matches))
	}
	chunks, ok := matches[id]
	if !ok || len(chunks) != 60 {
		t.Fatalf("expected 60 chunks for own VP")
	}
	// The chunks replay cleanly against the VP's cascade.
	if err := vd.Replay(id, actual.VDs, chunks); err != nil {
		t.Errorf("matched video should validate: %v", err)
	}
}

func TestSecretsPerSegmentDiffer(t *testing.T) {
	v := testVehicle(t, "secrets")
	recordMinute(t, v, 0, 0)
	p1, _, err := v.EndMinute(nil)
	if err != nil {
		t.Fatal(err)
	}
	recordMinute(t, v, 60, 0)
	p2, _, err := v.EndMinute(nil)
	if err != nil {
		t.Fatal(err)
	}
	if p1.ID() == p2.ID() {
		t.Error("each minute must have a fresh VP identifier")
	}
	q1, _ := v.Secret(p1.ID())
	q2, _ := v.Secret(p2.ID())
	if q1 == q2 {
		t.Error("segment secrets must differ")
	}
	if !p1.ID().Matches(q1) || !p2.ID().Matches(q2) {
		t.Error("secrets must prove ownership of their identifiers")
	}
}

func TestNewAPIValidation(t *testing.T) {
	if _, err := NewAPI("", nil); err == nil {
		t.Error("empty base URL should fail")
	}
	if _, err := NewAPI("http://localhost:1", nil); err != nil {
		t.Errorf("valid URL should construct: %v", err)
	}
}
