package client

import (
	"crypto/rsa"
	"encoding/base64"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"net/http"

	"viewmap/internal/reward"
	"viewmap/internal/vd"
)

// Evidence-subsystem client flows. The owner side (poll the board,
// deliver a solicited video, withdraw and spend the payout) runs
// entirely over the anonymous channel with a fresh single-use session
// id per exchange; the investigator side (open a solicitation, fetch
// the blurred release) authenticates with the authority token.

// EvidenceOffer is one public solicitation-board line.
type EvidenceOffer struct {
	// ID is the solicited VP identifier.
	ID vd.VPID
	// Units is the cash offered for the video behind it.
	Units int
}

// SolicitationResult reports one opened (or extended) solicitation.
type SolicitationResult struct {
	// Members and InSite describe the verified viewmap.
	Members int `json:"members"`
	// InSite counts viewmap members inside the investigation site.
	InSite int `json:"inSite"`
	// Legitimate is the TrustRank-verified identifier set (hex).
	Legitimate []string `json:"legitimate"`
	// Listed and NewlyListed count board entries after the call and
	// how many it added.
	Listed int `json:"listed"`
	// NewlyListed is how many identifiers this call added.
	NewlyListed int `json:"newlyListed"`
	// Units is the per-video offer.
	Units int `json:"units"`
}

// OpenSolicitation verifies (site, minute) and posts its evidence
// solicitation at the given per-video offer. Authority only.
func (a *API) OpenSolicitation(token string, minX, minY, maxX, maxY float64, minute int64, units int) (*SolicitationResult, error) {
	reqBody, err := json.Marshal(map[string]interface{}{
		"site":   map[string]float64{"minX": minX, "minY": minY, "maxX": maxX, "maxY": maxY},
		"minute": minute,
		"units":  units,
	})
	if err != nil {
		return nil, err
	}
	resp, err := a.do("POST", "/v1/evidence/solicit", "application/json", reqBody, token)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, apiError(resp)
	}
	defer resp.Body.Close()
	var out SolicitationResult
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return nil, err
	}
	return &out, nil
}

// EvidenceBoard fetches the open solicitation offers. Vehicles poll
// this anonymously; the response names identifiers and prices only.
func (a *API) EvidenceBoard() ([]EvidenceOffer, error) {
	resp, err := a.do("GET", "/v1/evidence/solicitations", "", nil, "")
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, apiError(resp)
	}
	defer resp.Body.Close()
	var out struct {
		Offers []struct {
			ID    string `json:"id"`
			Units int    `json:"units"`
		} `json:"offers"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return nil, err
	}
	offers := make([]EvidenceOffer, 0, len(out.Offers))
	for _, o := range out.Offers {
		b, err := hex.DecodeString(o.ID)
		if err != nil || len(b) != len(vd.VPID{}) {
			return nil, fmt.Errorf("client: bad id %q on the board", o.ID)
		}
		var id vd.VPID
		copy(id[:], b)
		offers = append(offers, EvidenceOffer{ID: id, Units: o.Units})
	}
	return offers, nil
}

// DeliverEvidence uploads a solicited video with its ownership proof
// and returns the payout entitlement in units. The request rides a
// fresh single-use session id; the server refuses replays.
func (a *API) DeliverEvidence(id vd.VPID, q vd.Secret, chunks [][]byte) (int, error) {
	enc := make([]string, len(chunks))
	for i, c := range chunks {
		enc[i] = base64.StdEncoding.EncodeToString(c)
	}
	reqBody, err := json.Marshal(map[string]interface{}{
		"id":     hex.EncodeToString(id[:]),
		"secret": hex.EncodeToString(q[:]),
		"chunks": enc,
	})
	if err != nil {
		return 0, err
	}
	resp, err := a.do("POST", "/v1/evidence/deliver", "application/json", reqBody, "")
	if err != nil {
		return 0, err
	}
	if resp.StatusCode != http.StatusOK {
		return 0, apiError(resp)
	}
	defer resp.Body.Close()
	var out struct {
		Units int `json:"units"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return 0, err
	}
	return out.Units, nil
}

// WithdrawPayout runs the blind-signature withdrawal of n units
// against an accepted delivery's entitlement: blind fresh notes, have
// the evidence desk sign them, unblind into spendable cash.
func (a *API) WithdrawPayout(id vd.VPID, q vd.Secret, n int, pub *rsa.PublicKey) ([]*reward.Cash, error) {
	return a.withdrawBlindSigned("/v1/evidence/payout", id, q, n, pub)
}

// RedeemPayout spends one unit at the evidence redemption desk.
func (a *API) RedeemPayout(c *reward.Cash) error {
	return a.redeemAt("/v1/evidence/redeem", c)
}

// ReleasedVideo is the investigator-facing copy of a delivery.
type ReleasedVideo struct {
	// Chunks are the redacted per-second bytes.
	Chunks [][]byte
	// RedactedFrames and RedactedRegions count the frames processed
	// and the plate regions blurred.
	RedactedFrames, RedactedRegions int
}

// FetchEvidence retrieves the blurred release of an accepted
// delivery. Authority only; the raw bytes are never served.
func (a *API) FetchEvidence(token string, id vd.VPID) (*ReleasedVideo, error) {
	resp, err := a.do("GET", "/v1/evidence/video?id="+hex.EncodeToString(id[:]), "", nil, token)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, apiError(resp)
	}
	defer resp.Body.Close()
	var out struct {
		Chunks          []string `json:"chunks"`
		RedactedFrames  int      `json:"redactedFrames"`
		RedactedRegions int      `json:"redactedRegions"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return nil, err
	}
	rv := &ReleasedVideo{RedactedFrames: out.RedactedFrames, RedactedRegions: out.RedactedRegions}
	rv.Chunks = make([][]byte, len(out.Chunks))
	for i, c := range out.Chunks {
		rv.Chunks[i], err = base64.StdEncoding.DecodeString(c)
		if err != nil {
			return nil, fmt.Errorf("client: chunk %d: %w", i, err)
		}
	}
	return rv, nil
}

// EvidenceStats are the evidence counters of GET /v1/stats.
type EvidenceStats struct {
	// OpenSolicitations counts board entries awaiting delivery.
	OpenSolicitations int `json:"openSolicitations"`
	// DeliveriesAccepted counts cascade-verified uploads.
	DeliveriesAccepted int `json:"deliveriesAccepted"`
	// DeliveriesRejected counts uploads refused at verification.
	DeliveriesRejected int `json:"deliveriesRejected"`
	// UnitsMinted counts blind signatures issued.
	UnitsMinted int `json:"unitsMinted"`
	// UnitsRedeemed counts cash units burned.
	UnitsRedeemed int `json:"unitsRedeemed"`
	// Released counts redacted videos handed to investigators.
	Released int `json:"released"`
}

// IngestStats are the admission-gate counters of GET /v1/stats: how
// many uploads were turned away, and at which gate.
type IngestStats struct {
	// Rejected counts profiles that failed structural validation.
	Rejected int `json:"rejected"`
	// WireRejected counts records that did not parse into profiles.
	WireRejected int `json:"wireRejected"`
	// Duplicates counts uploads with an already-claimed identifier.
	Duplicates int `json:"duplicates"`
	// Stale counts uploads rejected by the server's wall-clock
	// admission window (zero unless the server arms it).
	Stale int `json:"stale"`
	// Quarantined counts stored-but-unlinked profiles (implausible
	// trajectories), summed over shards.
	Quarantined int `json:"quarantined"`
}

// ShardStats describes one minute shard in GET /v1/stats.
type ShardStats struct {
	// Minute is the shard's unit-time window.
	Minute int64 `json:"minute"`
	// VPs counts profiles stored in the shard.
	VPs int `json:"vps"`
	// Quarantined counts the shard's stored-but-unlinked profiles.
	Quarantined int `json:"quarantined"`
	// Epoch is the shard's ingest epoch.
	Epoch uint64 `json:"epoch"`
}

// RetentionStats describe the store's resident/evicted minute split in
// GET /v1/stats.
type RetentionStats struct {
	// ResidentMinutes counts minute shards currently in memory.
	ResidentMinutes int `json:"residentMinutes"`
	// ColdResident counts resident shards reloaded from segment files.
	ColdResident int `json:"coldResident"`
	// EvictedMinutes counts minutes living only in segment files.
	EvictedMinutes int `json:"evictedMinutes"`
	// Evictions counts shard evictions this process lifetime.
	Evictions int64 `json:"evictions"`
	// EvictionTotalMS is the cumulative eviction wall time (spill +
	// drop) in milliseconds.
	EvictionTotalMS float64 `json:"evictionTotalMs"`
}

// DurabilityStats describe the WAL/snapshot runtime in GET /v1/stats.
type DurabilityStats struct {
	// Enabled reports whether the server runs with an ingest WAL.
	Enabled bool `json:"enabled"`
	// AppendedLSN and SyncedLSN are the log watermarks.
	AppendedLSN uint64 `json:"appendedLSN"`
	// SyncedLSN is the last durable log sequence number.
	SyncedLSN uint64 `json:"syncedLSN"`
	// SnapshotLSN is the LSN covered by the newest snapshot.
	SnapshotLSN uint64 `json:"snapshotLSN"`
	// Snapshots counts snapshots written this process lifetime.
	Snapshots int `json:"snapshots"`
	// Replayed counts WAL records replayed at the last recovery.
	Replayed int `json:"replayed"`
	// Fsyncs counts group-commit fsyncs; FsyncTotalMS is their
	// cumulative wall time in milliseconds.
	Fsyncs       int64   `json:"fsyncs"`
	FsyncTotalMS float64 `json:"fsyncTotalMs"`
	// SnapshotTotalMS and LastSnapshotMS are the cumulative and
	// most-recent checkpoint wall times in milliseconds.
	SnapshotTotalMS float64 `json:"snapshotTotalMs"`
	LastSnapshotMS  float64 `json:"lastSnapshotMs"`
	// LastError is the most recent background durability failure.
	LastError string `json:"lastError,omitempty"`
}

// ClassAdmissionStats are one endpoint class's admission-gate counters
// in GET /v1/stats.
type ClassAdmissionStats struct {
	// Admitted counts requests that got a slot.
	Admitted uint64 `json:"admitted"`
	// Shed counts requests turned away with 429.
	Shed uint64 `json:"shed"`
	// Queued is the instantaneous wait-queue depth.
	Queued int `json:"queued"`
	// Active is the instantaneous in-flight request count.
	Active int `json:"active"`
}

// OverloadStats are the admission-control counters of GET /v1/stats:
// per-class slots taken, requests shed with 429, and the Retry-After
// hint the server sends with each shed.
type OverloadStats struct {
	// Ingest gates the upload endpoints.
	Ingest ClassAdmissionStats `json:"ingest"`
	// Investigate gates the authority endpoints (its own pool, so
	// investigations never compete with uploads).
	Investigate ClassAdmissionStats `json:"investigate"`
	// Evidence gates the vehicle-facing evidence/reward endpoints.
	Evidence ClassAdmissionStats `json:"evidence"`
	// RetryAfterSeconds echoes the backoff hint sent with sheds.
	RetryAfterSeconds int `json:"retryAfterSeconds"`
}

// ServiceStats is the full GET /v1/stats response.
type ServiceStats struct {
	// VPs and Trusted count stored profiles.
	VPs int `json:"vps"`
	// Trusted counts stored trusted profiles.
	Trusted int `json:"trusted"`
	// ReviewQueue is the legacy review queue's depth.
	ReviewQueue int `json:"reviewQueue"`
	// Minutes counts unit-time windows with stored profiles.
	Minutes int `json:"minutes"`
	// Ingest carries the admission-gate counters.
	Ingest IngestStats `json:"ingest"`
	// Shards lists per-minute shard state, ascending by minute.
	Shards []ShardStats `json:"shards"`
	// Retention carries the resident/evicted minute split.
	Retention RetentionStats `json:"retention"`
	// Durability carries the WAL/snapshot runtime counters.
	Durability DurabilityStats `json:"durability"`
	// Evidence carries the evidence-subsystem counters.
	Evidence EvidenceStats `json:"evidence"`
	// Overload carries the admission-control counters.
	Overload OverloadStats `json:"overload"`
	// Latency holds the server-side per-endpoint request-latency
	// summaries, ascending by path; empty when server metrics are off.
	Latency []EndpointLatency `json:"latency"`
	// Pipeline holds the server-side ingest-stage latency summaries.
	Pipeline PipelineStats `json:"pipeline"`
}

// EndpointLatency is one endpoint's server-side request-latency
// summary in GET /v1/stats. Quantiles are histogram bucket upper
// bounds: a true p99 of v reports as some e with v <= e < 2v.
type EndpointLatency struct {
	// Endpoint is the request path ("other" for unregistered paths).
	Endpoint string `json:"endpoint"`
	// Requests counts recorded requests.
	Requests uint64 `json:"requests"`
	// P50MS and P99MS are latency quantile estimates in milliseconds.
	P50MS float64 `json:"p50Ms"`
	P99MS float64 `json:"p99Ms"`
}

// PipelineStage is one ingest-pipeline stage's latency summary in
// GET /v1/stats.
type PipelineStage struct {
	// Stage is the stage label (decode, ring_wait, link_stage, commit,
	// wal_append, fsync).
	Stage string `json:"stage"`
	// Count is the number of recorded spans.
	Count uint64 `json:"count"`
	// P50US and P99US are span quantile estimates in microseconds.
	P50US float64 `json:"p50Us"`
	P99US float64 `json:"p99Us"`
	// TotalMS is the cumulative recorded span time in milliseconds.
	TotalMS float64 `json:"totalMs"`
}

// WALBatchStats summarizes the WAL group-commit batch-size histogram
// in GET /v1/stats.
type WALBatchStats struct {
	// Commits counts group-commit fsyncs observed.
	Commits uint64 `json:"commits"`
	// P50Records and P99Records are records-per-fsync quantile
	// estimates.
	P50Records uint64 `json:"p50Records"`
	P99Records uint64 `json:"p99Records"`
}

// PipelineStats is the ingest-pipeline block of GET /v1/stats.
type PipelineStats struct {
	// Stages holds one summary per instrumented stage, pipeline order.
	Stages []PipelineStage `json:"stages"`
	// WALCommitBatch summarizes records per group-commit fsync.
	WALCommitBatch WALBatchStats `json:"walCommitBatch"`
}

// StatsFull fetches every service counter, including the evidence
// lifecycle counters. Stats remains for the legacy triple.
func (a *API) StatsFull() (*ServiceStats, error) {
	resp, err := a.do("GET", "/v1/stats", "", nil, "")
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, apiError(resp)
	}
	defer resp.Body.Close()
	var out ServiceStats
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return nil, err
	}
	return &out, nil
}
