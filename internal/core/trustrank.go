package core

import (
	"errors"
	"fmt"
	"sort"

	"viewmap/internal/vd"
)

// DefaultDamping is the paper's empirically chosen damping factor.
const DefaultDamping = 0.8

// TrustRankConfig tunes the score iteration.
type TrustRankConfig struct {
	// Damping is the delta in P = delta*M*P + (1-delta)*d; zero selects
	// the paper's 0.8.
	Damping float64
	// Epsilon is the L1 convergence threshold; zero selects 1e-9.
	Epsilon float64
	// MaxIterations bounds the power iteration; zero selects 500.
	MaxIterations int
	// LayerGapRatio, when positive, enables an optional post-BFS layer
	// cut in VerifySite: if the scores of the reachable in-site set,
	// sorted descending, exhibit a consecutive ratio larger than this,
	// everything below the gap is dropped as a secondary (fake) layer.
	// Algorithm 1 as printed relies on reachability alone; this
	// defense-in-depth operationalizes the paper's observation that
	// "the VPs in X of z's layer are strongly likely to have higher
	// trust scores than VPs in X of other layers" (Section 5.2.2) and
	// guards against residual Bloom false-positive cross-links. Zero
	// leaves it disabled. Note the cut can misfire when the trusted VP
	// itself sits inside the site (its score towers over the layer),
	// so it should stay disabled in that configuration.
	LayerGapRatio float64
}

func (c TrustRankConfig) withDefaults() TrustRankConfig {
	if c.Damping == 0 {
		c.Damping = DefaultDamping
	}
	if c.Epsilon == 0 {
		c.Epsilon = 1e-9
	}
	if c.MaxIterations == 0 {
		c.MaxIterations = 500
	}
	return c
}

// TrustRank computes per-node trust scores by propagating trust from
// the viewmap's trusted VPs over its viewlink structure (Algorithm 1).
// The trust distribution vector d places equal mass on each trusted VP;
// a node's score flows out divided equally among its undirected edges.
func (vm *Viewmap) TrustRank(cfg TrustRankConfig) ([]float64, error) {
	scores, _, err := vm.trustRank(cfg)
	return scores, err
}

// TrustRankFrom resumes the power iteration from a previously
// converged score vector instead of the trust distribution vector.
// The fixed point of P = delta*M*P + (1-delta)*d is unique and the
// update contracts the L1 distance by delta per step, so any starting
// vector converges to the same scores; starting near the fixed point
// just takes fewer iterations. prev covers an id-prefix of the current
// nodes (new nodes start from d); a nil prev, or one longer than the
// viewmap, falls back to the cold start. Returns the scores and the
// number of iterations executed.
func (vm *Viewmap) TrustRankFrom(prev []float64, cfg TrustRankConfig) ([]float64, int, error) {
	cfg = cfg.withDefaults()
	d, p, err := vm.trustSeed(cfg)
	if err != nil {
		return nil, 0, err
	}
	if prev != nil && len(prev) <= len(p) {
		copy(p, prev)
	}
	scores, iters := vm.powerIterate(d, p, cfg)
	return scores, iters, nil
}

// trustRank is TrustRank plus the iteration count.
func (vm *Viewmap) trustRank(cfg TrustRankConfig) ([]float64, int, error) {
	cfg = cfg.withDefaults()
	d, p, err := vm.trustSeed(cfg)
	if err != nil {
		return nil, 0, err
	}
	scores, iters := vm.powerIterate(d, p, cfg)
	return scores, iters, nil
}

// trustSeed validates the viewmap and config and returns the trust
// distribution vector d and the cold starting vector p (a copy of d).
// cfg must already carry defaults.
func (vm *Viewmap) trustSeed(cfg TrustRankConfig) (d, p []float64, err error) {
	if cfg.Damping <= 0 || cfg.Damping >= 1 {
		return nil, nil, fmt.Errorf("core: damping must be in (0,1), got %v", cfg.Damping)
	}
	n := len(vm.Profiles)
	if n == 0 {
		return nil, nil, errors.New("core: empty viewmap")
	}
	if len(vm.Trusted) == 0 {
		return nil, nil, errors.New("core: viewmap has no trusted VP")
	}
	vm.ensureCSR()
	d = make([]float64, n)
	share := 1.0 / float64(len(vm.Trusted))
	for _, t := range vm.Trusted {
		d[t] = share
	}
	p = make([]float64, n)
	copy(p, d)
	return d, p, nil
}

// powerIterate runs the damped power iteration from starting vector p
// until the L1 residual drops below cfg.Epsilon or cfg.MaxIterations,
// returning the final vector and the iteration count. cfg must already
// carry defaults.
func (vm *Viewmap) powerIterate(d, p []float64, cfg TrustRankConfig) ([]float64, int) {
	n := len(p)
	next := make([]float64, n)
	off, adj := vm.csrOff, vm.csrAdj
	iters := 0
	for iter := 0; iter < cfg.MaxIterations; iter++ {
		iters++
		for i := range next {
			next[i] = (1 - cfg.Damping) * d[i]
		}
		for u := 0; u < n; u++ {
			lo, hi := off[u], off[u+1]
			if lo == hi || p[u] == 0 {
				continue
			}
			out := cfg.Damping * p[u] / float64(hi-lo)
			for _, v := range adj[lo:hi] {
				next[v] += out
			}
		}
		var delta float64
		for i := range next {
			diff := next[i] - p[i]
			if diff < 0 {
				diff = -diff
			}
			delta += diff
		}
		p, next = next, p
		if delta < cfg.Epsilon {
			break
		}
	}
	return p, iters
}

// Verdict is the outcome of verifying the VPs inside an investigation
// site.
type Verdict struct {
	// Legitimate lists the node ids marked LEGITIMATE by Algorithm 1.
	Legitimate []int
	// Scores are the converged trust scores for all viewmap nodes.
	Scores []float64
	// Anchor is the highest-scored in-site node that seeded the
	// legitimate set (-1 when the site was empty).
	Anchor int
}

// LegitimateIDs returns the VP identifiers of the verified profiles.
func (v *Verdict) LegitimateIDs(vm *Viewmap) []vd.VPID {
	out := make([]vd.VPID, 0, len(v.Legitimate))
	for _, i := range v.Legitimate {
		out = append(out, vm.Profiles[i].ID())
	}
	return out
}

// VerifySite runs Algorithm 1 for an investigation site, given the
// node ids whose claimed trajectories enter the site (see InSite):
// compute trust scores, mark the highest-scored in-site VP legitimate,
// then mark everything reachable from it strictly via in-site VPs.
func (vm *Viewmap) VerifySite(siteNodes []int, cfg TrustRankConfig) (*Verdict, error) {
	v, _, err := vm.verifySiteScored(siteNodes, cfg)
	return v, err
}

// verifySiteScored is VerifySite plus the power-iteration count.
func (vm *Viewmap) verifySiteScored(siteNodes []int, cfg TrustRankConfig) (*Verdict, int, error) {
	scores, iters, err := vm.trustRank(cfg)
	if err != nil {
		return nil, 0, err
	}
	gap := cfg.LayerGapRatio
	verdict := &Verdict{Scores: scores, Anchor: -1}
	if len(siteNodes) == 0 {
		return verdict, iters, nil
	}
	n := len(vm.Profiles)
	inSite := make([]bool, n)
	for _, i := range siteNodes {
		inSite[i] = true
	}
	// Highest-scored VP in the site. Ties break toward the lower node
	// id for determinism.
	best := siteNodes[0]
	for _, i := range siteNodes[1:] {
		if scores[i] > scores[best] {
			best = i
		}
	}
	verdict.Anchor = best
	// BFS from the anchor restricted to in-site nodes.
	marked := make([]bool, n)
	marked[best] = true
	count := 1
	queue := []int{best}
	for head := 0; head < len(queue); head++ {
		u := queue[head]
		for _, v := range vm.csrAdj[vm.csrOff[u]:vm.csrOff[u+1]] {
			if inSite[v] && !marked[v] {
				marked[v] = true
				count++
				queue = append(queue, int(v))
			}
		}
	}
	verdict.Legitimate = make([]int, 0, count)
	for i, m := range marked {
		if m {
			verdict.Legitimate = append(verdict.Legitimate, i)
		}
	}
	if gap > 0 {
		verdict.Legitimate = cutSecondaryLayer(verdict.Legitimate, scores, gap)
	}
	sort.Ints(verdict.Legitimate)
	return verdict, iters, nil
}

// VerifyStats reports how a verification converged.
type VerifyStats struct {
	// Iterations is the number of power-iteration steps executed.
	Iterations int
	// Warm reports whether the verdict came from the certified
	// warm-start path; false means the cold VerifySite path ran (either
	// by request or because the warm run could not certify its verdict).
	Warm bool
}

// VerifySiteFrom is VerifySite warm-started from a previously converged
// score vector. The verdict is always identical to VerifySite's on the
// same viewmap: Algorithm 1 only consumes the scores through the
// highest-scored in-site node, and the legitimate set it yields is that
// node's connected component of the in-site induced subgraph. The warm
// iteration therefore stops as soon as the component ordering is
// provably settled: with L1 residual D between consecutive iterates,
// the distance to the fixed point is at most c*D for c = delta/(1-delta)
// (geometric-series tail of the delta-contraction), and the cold path
// stops with residual below epsilon, i.e. within c*epsilon of the fixed
// point. Once the gap between the best and second-best component maxima
// exceeds c*(D+epsilon), both the fixed point's and the cold vector's
// in-site argmax provably land in the warm leader's component, so the
// legitimate set — and hence the verdict — matches the cold one
// bit-for-bit. If the iteration instead reaches epsilon-convergence or
// the iteration cap without certifying (ambiguous components, exact
// ties), the warm work is discarded and the exact cold path runs.
// Anchor may name a different member of the same component than the
// cold run when scores inside it are still settling; Legitimate and
// Scores' fixed point are unaffected. A nil prev, a prev longer than
// the viewmap, an empty site, or a positive LayerGapRatio (whose layer
// cut reads raw score values) always takes the cold path.
func (vm *Viewmap) VerifySiteFrom(siteNodes []int, prev []float64, cfg TrustRankConfig) (*Verdict, VerifyStats, error) {
	c := cfg.withDefaults()
	n := len(vm.Profiles)
	if prev == nil || len(prev) > n || c.LayerGapRatio > 0 || len(siteNodes) == 0 {
		v, iters, err := vm.verifySiteScored(siteNodes, cfg)
		return v, VerifyStats{Iterations: iters}, err
	}
	d, p, err := vm.trustSeed(c)
	if err != nil {
		return nil, VerifyStats{}, err
	}
	copy(p, prev)
	// Connected components of the in-site induced subgraph: the
	// legitimate set is always exactly one of these.
	inSite := make([]bool, n)
	for _, i := range siteNodes {
		inSite[i] = true
	}
	comp := make([]int, n)
	for i := range comp {
		comp[i] = -1
	}
	ncomp := 0
	var queue []int
	for _, s := range siteNodes {
		if comp[s] >= 0 {
			continue
		}
		comp[s] = ncomp
		queue = append(queue[:0], s)
		for head := 0; head < len(queue); head++ {
			u := queue[head]
			for _, v := range vm.csrAdj[vm.csrOff[u]:vm.csrOff[u+1]] {
				if inSite[v] && comp[v] < 0 {
					comp[v] = ncomp
					queue = append(queue, int(v))
				}
			}
		}
		ncomp++
	}
	coef := c.Damping / (1 - c.Damping)
	compMax := make([]float64, ncomp)
	next := make([]float64, n)
	off, adj := vm.csrOff, vm.csrAdj
	iters := 0
	certified := false
	for iter := 0; iter < c.MaxIterations; iter++ {
		iters++
		for i := range next {
			next[i] = (1 - c.Damping) * d[i]
		}
		for u := 0; u < n; u++ {
			lo, hi := off[u], off[u+1]
			if lo == hi || p[u] == 0 {
				continue
			}
			out := c.Damping * p[u] / float64(hi-lo)
			for _, v := range adj[lo:hi] {
				next[v] += out
			}
		}
		var delta float64
		for i := range next {
			diff := next[i] - p[i]
			if diff < 0 {
				diff = -diff
			}
			delta += diff
		}
		p, next = next, p
		if ncomp == 1 {
			// A single component is the verdict regardless of scores.
			certified = true
			break
		}
		best1, best2 := -1.0, -1.0
		for i := range compMax {
			compMax[i] = -1
		}
		for _, s := range siteNodes {
			if v := p[s]; v > compMax[comp[s]] {
				compMax[comp[s]] = v
			}
		}
		for _, v := range compMax {
			if v > best1 {
				best1, best2 = v, best1
			} else if v > best2 {
				best2 = v
			}
		}
		if best1-best2 > coef*(delta+c.Epsilon) {
			certified = true
			break
		}
		if delta < c.Epsilon {
			break
		}
	}
	if !certified {
		v, coldIters, err := vm.verifySiteScored(siteNodes, cfg)
		return v, VerifyStats{Iterations: iters + coldIters}, err
	}
	// Anchor: highest-scored in-site node, ties toward the lower id
	// (siteNodes ascends; strict > keeps the first maximum).
	anchor := siteNodes[0]
	for _, i := range siteNodes[1:] {
		if p[i] > p[anchor] {
			anchor = i
		}
	}
	verdict := &Verdict{Scores: p, Anchor: anchor}
	for _, s := range siteNodes {
		if comp[s] == comp[anchor] {
			verdict.Legitimate = append(verdict.Legitimate, s)
		}
	}
	sort.Ints(verdict.Legitimate)
	return verdict, VerifyStats{Iterations: iters, Warm: true}, nil
}

// cutSecondaryLayer drops nodes below the widest consecutive score
// ratio exceeding gapRatio: the anchor's layer has smoothly varying
// scores, while fake layers sit orders of magnitude lower.
func cutSecondaryLayer(nodes []int, scores []float64, gapRatio float64) []int {
	if len(nodes) < 2 {
		return nodes
	}
	sorted := append([]int(nil), nodes...)
	sort.Slice(sorted, func(i, j int) bool { return scores[sorted[i]] > scores[sorted[j]] })
	cut := len(sorted)
	worst := gapRatio
	for i := 1; i < len(sorted); i++ {
		hi, lo := scores[sorted[i-1]], scores[sorted[i]]
		if lo <= 0 {
			if hi > 0 && i < cut {
				cut = i
			}
			break
		}
		if r := hi / lo; r > worst {
			worst = r
			cut = i
		}
	}
	return sorted[:cut]
}

// SumScores returns the total trust score over the given node set,
// used by the Lemma 1/2 property checks.
func SumScores(scores []float64, nodes []int) float64 {
	var s float64
	for _, i := range nodes {
		s += scores[i]
	}
	return s
}

// Lemma1Bound returns delta^L: the maximum total trust score of VPs at
// link distance >= L from every trusted VP (Section 6.3.1, Lemma 1).
func Lemma1Bound(damping float64, l int) float64 {
	b := 1.0
	for i := 0; i < l; i++ {
		b *= damping
	}
	return b
}
