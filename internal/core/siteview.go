package core

import (
	"sync/atomic"

	"viewmap/internal/geo"
	"viewmap/internal/vd"
	"viewmap/internal/vp"
)

// A SiteView keeps one investigation site's induced subgraph patched
// under the builder's edge insertions instead of re-extracting it from
// scratch on every epoch advance. ViewmapFor's extraction is
// O(members + edges) per call; under a flood into a verified minute
// that cost is paid again on every re-investigation even though almost
// all of the subgraph is unchanged. The SiteView exploits two
// structural facts about the incremental builder:
//
//   - Membership is append-only while the coverage area holds still.
//     Coverage depends only on the site and the nearest trusted VP's
//     (immutable) trajectory, so as long as the nearest trusted node is
//     unchanged, previously admitted members stay admitted and new
//     builder nodes can only append.
//   - New edges are only ever incident to newly committed nodes
//     (CommitStaged resolves a node's viewlinks at staging time, against
//     smaller ids only), so patching the induced adjacency is a scan of
//     the new builder suffix.
//
// When the nearest trusted node does change — or on first use — the
// SiteView falls back to a full re-extraction that replicates
// ViewmapFor exactly; the equivalence property test in siteview_test.go
// holds Refresh and ViewmapFor together across randomized ingest
// interleavings.
//
// A SiteView is not safe for concurrent use; the server serializes
// Refresh under its shard lock. The *Viewmap values Refresh returns are
// immutable snapshots safe to read concurrently with later patches:
// each content change publishes a fresh Viewmap whose outer slices are
// copied, while the shared inner arrays are only ever appended to
// beyond the published lengths.
type SiteView struct {
	b      *IncrementalBuilder
	site   geo.Rect
	margin float64

	nearestTrusted int
	cover          geo.Rect
	upto           int    // builder profiles consumed so far
	epoch          uint64 // builder epoch at last Refresh
	contentEpoch   uint64 // builder epoch that last changed the extraction
	gen            uint64

	remap   []int
	members []*vp.Profile
	trusted []int
	adj     [][]int
	index   map[vd.VPID]int
	vm      *Viewmap
}

// siteViewGen numbers full extractions process-wide. A SiteView's
// generation changes exactly when its node-id space is re-derived from
// scratch, so two Refresh results with equal generations are guaranteed
// to share an id-prefix: a score vector converged against the earlier
// one is a valid warm start for the later one.
var siteViewGen atomic.Uint64

// NewSiteView creates a patched extraction of the builder's graph for
// one site. margin <= 0 selects the builder's DSRC range, matching
// ViewmapFor.
func NewSiteView(b *IncrementalBuilder, site geo.Rect, margin float64) *SiteView {
	if margin <= 0 {
		margin = b.cfg.DSRCRange
	}
	return &SiteView{b: b, site: site, margin: margin, nearestTrusted: -1}
}

// Refresh brings the extraction up to date with the builder and returns
// the current viewmap together with its content epoch and generation.
//
// The content epoch is the builder epoch at which the newest member
// committed: a pure function of the builder's graph, so it reproduces
// bit-for-bit when an evicted minute is replayed from its segment, and
// it only advances when the extraction actually changes (ingest outside
// the coverage area advances the builder epoch but not the content
// epoch). Callers key verdict caches by it. The generation (see
// siteViewGen) tells warm-start users whether a previous score vector
// still indexes a prefix of this viewmap's nodes.
//
// Refresh must be serialized with CommitStaged and with itself (the
// server holds its shard lock); the returned viewmap may be read
// concurrently with anything.
func (sv *SiteView) Refresh() (*Viewmap, uint64, uint64, error) {
	b := sv.b
	if sv.vm != nil && b.epoch == sv.epoch {
		return sv.vm, sv.contentEpoch, sv.gen, nil
	}
	nt := b.nearestTrustedTo(sv.site.Center())
	if nt < 0 {
		return nil, 0, 0, ErrNoTrusted
	}
	if sv.vm == nil || nt != sv.nearestTrusted {
		return sv.rebuild(nt)
	}

	// Patch: coverage held still, so prior members are stable and the
	// new builder suffix can only append. Two passes mirror ViewmapFor:
	// first assign membership (the remapping stays monotone), then
	// build the new members' adjacency rows — a row may reference a
	// burst-mate with a larger builder id, so membership must be fully
	// assigned first. Edges from old members to new ones are appended in
	// ascending new-id order, preserving each row's sort.
	old := sv.upto
	changed := false
	for i := old; i < len(b.profiles); i++ {
		p := b.profiles[i]
		if !p.EntersArea(sv.cover) {
			sv.remap = append(sv.remap, -1)
			continue
		}
		n := len(sv.members)
		sv.remap = append(sv.remap, n)
		sv.index[p.ID()] = n
		sv.members = append(sv.members, p)
		if p.Trusted {
			sv.trusted = append(sv.trusted, n)
		}
		sv.contentEpoch = uint64(i) + 1
		changed = true
	}
	for i := old; i < len(b.profiles); i++ {
		n := sv.remap[i]
		if n < 0 {
			continue
		}
		var row []int
		for _, nb := range b.adj[i] {
			if m := sv.remap[nb]; m >= 0 {
				row = append(row, m)
				if nb < old {
					sv.adj[m] = append(sv.adj[m], n)
				}
			}
		}
		sv.adj = append(sv.adj, row)
	}
	sv.upto = len(b.profiles)
	sv.epoch = b.epoch
	if changed {
		sv.publish()
	}
	return sv.vm, sv.contentEpoch, sv.gen, nil
}

// rebuild re-extracts from scratch — ViewmapFor's loops verbatim, into
// the SiteView's own state — and starts a new generation.
func (sv *SiteView) rebuild(nt int) (*Viewmap, uint64, uint64, error) {
	b := sv.b
	sv.nearestTrusted = nt
	sv.cover = b.coverFor(sv.site, nt, sv.margin)

	// Fresh allocations throughout: previously published viewmaps alias
	// the old backing arrays and must keep reading them unchanged.
	sv.remap = make([]int, len(b.profiles))
	sv.members = nil
	sv.trusted = nil
	sv.index = make(map[vd.VPID]int)
	for i, p := range b.profiles {
		sv.remap[i] = -1
		if !p.EntersArea(sv.cover) {
			continue
		}
		sv.remap[i] = len(sv.members)
		sv.index[p.ID()] = len(sv.members)
		sv.members = append(sv.members, p)
		if p.Trusted {
			sv.trusted = append(sv.trusted, sv.remap[i])
		}
		sv.contentEpoch = uint64(i) + 1
	}
	sv.adj = make([][]int, 0, len(sv.members))
	for old, n := range sv.remap {
		if n < 0 {
			continue
		}
		var row []int
		for _, nb := range b.adj[old] {
			if m := sv.remap[nb]; m >= 0 {
				row = append(row, m)
			}
		}
		sv.adj = append(sv.adj, row)
	}
	sv.upto = len(b.profiles)
	sv.epoch = b.epoch
	sv.gen = siteViewGen.Add(1)
	sv.publish()
	return sv.vm, sv.contentEpoch, sv.gen, nil
}

// publish snapshots the current extraction as an immutable Viewmap.
// Outer slice headers and the id index are copied; the inner arrays are
// shared with future patches, which only append past the lengths
// recorded here.
func (sv *SiteView) publish() {
	idx := make(map[vd.VPID]int, len(sv.members))
	for id, n := range sv.index {
		idx[id] = n
	}
	adj := make([][]int, len(sv.adj))
	copy(adj, sv.adj)
	vm := &Viewmap{
		Profiles: sv.members,
		Adj:      adj,
		Trusted:  sv.trusted,
		Coverage: sv.cover,
		Minute:   sv.b.cfg.Minute,
		index:    idx,
	}
	vm.ensureCSR()
	sv.vm = vm
}
