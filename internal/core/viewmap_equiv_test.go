package core

import (
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"testing"

	"viewmap/internal/geo"
	"viewmap/internal/vp"
)

// naiveReference re-links vm's member set with the retained O(n²)
// reference linker and returns the resulting adjacency.
func naiveReference(vm *Viewmap, rangeM float64) [][]int {
	ref := &Viewmap{Profiles: vm.Profiles, Adj: make([][]int, len(vm.Profiles))}
	ref.linkNaive(rangeM)
	return ref.Adj
}

func adjEqual(t *testing.T, label string, got, want [][]int) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: node count %d, reference %d", label, len(got), len(want))
	}
	for i := range want {
		if len(got[i]) != len(want[i]) {
			t.Fatalf("%s: node %d has %d edges, reference %d (%v vs %v)",
				label, i, len(got[i]), len(want[i]), got[i], want[i])
		}
		for j := range want[i] {
			if got[i][j] != want[i][j] {
				t.Fatalf("%s: node %d edge list %v, reference %v", label, i, got[i], want[i])
			}
		}
	}
}

// pollute inflates a profile's Bloom filter with extra random elements,
// pushing its false-positive rate far above any honest load so that
// single-digest false hits become routine and the linker's two-hit rule
// and dedup structures are exercised under false-positive pressure.
func pollute(p *vp.Profile, extra int, rng *rand.Rand) {
	buf := make([]byte, 24)
	for i := 0; i < extra; i++ {
		rng.Read(buf)
		p.Neighbors.Add(buf)
	}
}

// stackedCluster fabricates `count` co-located stationary profiles (the
// shape of an in-site fake cluster: maximal candidate-pair density),
// chain-linking consecutive ones.
func stackedCluster(t *testing.T, at geo.Point, count int, minute int64, rng *rand.Rand) []*vp.Profile {
	t.Helper()
	out := make([]*vp.Profile, count)
	for i := range out {
		p, err := FabricateProfile(stationary(at.Add(geo.Pt(float64(i%7), float64(i%5)))), minute, 0, rng)
		if err != nil {
			t.Fatal(err)
		}
		out[i] = p
		if i > 0 {
			if err := vp.LinkMutually(out[i-1], p); err != nil {
				t.Fatal(err)
			}
		}
	}
	return out
}

// TestLinkEquivalenceProperty holds the optimized linker to the naive
// O(n²) reference across randomized arenas: varying population sizes
// (spanning the serial and parallel paths), DSRC ranges, speeds, dense
// co-located clusters, and Bloom false-positive-heavy filters. The edge
// sets must be identical, node for node.
func TestLinkEquivalenceProperty(t *testing.T) {
	if testing.Short() {
		t.Skip("equivalence sweep is not short")
	}
	type scenario struct {
		n       int
		side    float64
		rangeM  float64
		speed   float64
		cluster int  // co-located stacked profiles added on top
		fpHeavy bool // pollute filters to force Bloom false positives
	}
	var scenarios []scenario
	for seed := 0; seed < 22; seed++ {
		scenarios = append(scenarios, scenario{
			n:       40 + (seed*37)%260, // 40..300, crosses the parallel threshold
			side:    1500 + float64(seed%5)*700,
			rangeM:  150 + float64(seed%4)*125,
			speed:   5 + float64(seed%3)*12,
			cluster: (seed % 3) * 15,
			fpHeavy: seed%2 == 1,
		})
	}
	for si, sc := range scenarios {
		sc := sc
		t.Run(fmt.Sprintf("seed=%d/n=%d/fp=%v", si, sc.n, sc.fpHeavy), func(t *testing.T) {
			t.Parallel()
			seed := int64(1000 + si)
			area := geo.NewRect(geo.Pt(0, 0), geo.Pt(sc.side, sc.side))
			profiles, err := SynthesizeLegitimate(SynthConfig{
				N: sc.n, Area: area, Seed: seed, SpeedMS: sc.speed, DSRCRange: sc.rangeM,
			})
			if err != nil {
				t.Fatal(err)
			}
			rng := rand.New(rand.NewSource(seed))
			if sc.cluster > 0 {
				profiles = append(profiles, stackedCluster(t, area.Center(), sc.cluster, 0, rng)...)
			}
			if sc.fpHeavy {
				for _, p := range profiles {
					pollute(p, 2000, rng)
				}
			}
			MarkTrustedNearest(profiles, area.Center())
			vm, err := Build(profiles, BuildConfig{
				Site: geo.RectAround(area.Center(), 200), Minute: 0, DSRCRange: sc.rangeM,
			})
			if err != nil {
				t.Fatal(err)
			}
			adjEqual(t, "optimized vs naive", vm.Adj, naiveReference(vm, sc.rangeM))
		})
	}
}

// TestLinkParallelPath pins down the worker-pool path: a population
// large enough to engage every worker, built concurrently from several
// goroutines (the verification sweeps do exactly this), each result
// checked against the reference. Run under -race in CI.
func TestLinkParallelPath(t *testing.T) {
	if runtime.GOMAXPROCS(0) < 2 {
		t.Skip("single-proc run cannot exercise the parallel linker")
	}
	n := serialLinkThreshold * max(runtime.GOMAXPROCS(0), 4)
	if n > 512 {
		n = 512
	}
	area := geo.NewRect(geo.Pt(0, 0), geo.Pt(3500, 3500))
	profiles, err := SynthesizeLegitimate(SynthConfig{N: n, Area: area, Seed: 99})
	if err != nil {
		t.Fatal(err)
	}
	MarkTrustedNearest(profiles, area.Center())
	cfg := BuildConfig{Site: geo.RectAround(area.Center(), 200), Minute: 0}

	var wg sync.WaitGroup
	vms := make([]*Viewmap, 4)
	errs := make([]error, 4)
	for g := range vms {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			vms[g], errs[g] = Build(profiles, cfg)
		}(g)
	}
	wg.Wait()
	for g, err := range errs {
		if err != nil {
			t.Fatalf("concurrent build %d: %v", g, err)
		}
	}
	want := naiveReference(vms[0], DefaultDSRCRange)
	for g, vm := range vms {
		adjEqual(t, fmt.Sprintf("concurrent build %d", g), vm.Adj, want)
	}
}
