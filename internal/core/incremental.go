package core

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"viewmap/internal/geo"
	"viewmap/internal/vd"
	"viewmap/internal/vp"
)

// This file moves viewmap construction online. Build (viewmap.go) is
// the batch formulation: given every profile of a minute, link all
// pairs at once. The system service, however, absorbs a continuous
// stream of anonymous VP uploads and must answer investigations at any
// point in between; rebuilding the whole minute per request repeats
// the full pairwise linkage work the PR-1 linker already spent. The
// IncrementalBuilder maintains the minute's full visibility graph as
// profiles arrive — each new VP is tested only against its candidate
// neighbors, discovered through the same dense CellGrid the batch
// linker uses — so an investigation reduces to extracting the induced
// subgraph over the coverage members, which is O(members + edges)
// instead of O(candidate pairs x Bloom probes).
//
// Ingest is split into two phases so the server's burst pipeline can
// keep the expensive half outside its shard lock:
//
//	Stage  — admission checks, bounding box, candidate enumeration and
//	         Bloom probing; touches only builder-private state.
//	CommitStaged — splices the staged profiles into the reader-visible
//	         graph (profiles, adjacency, index, trusted, epoch).
//
// Add is exactly Stage followed by CommitStaged, so the sequential
// path and the burst path share one code path and produce identical
// graphs by construction. The contract: between Stage and
// CommitStaged the builder accepts no concurrent access of any kind;
// CommitStaged alone must be serialized against readers (ViewmapFor).

// gridRebuildMin is the smallest ungridded tail that triggers a grid
// rebuild. Below it, the linear tail scan is cheaper than rebuilding.
const gridRebuildMin = 32

// Per-node trajectory window boxes: each node's minute is split into
// linkWindows windows of linkWindowLen seconds, and the bounding box of
// each window's samples is kept in a flat slab. Two profiles can be
// within DSRC range at second i only if the window boxes containing i
// are within range of each other, so the proximity half of the linkage
// test rejects most far candidates on a handful of contiguous box
// distances instead of walking both 60-sample trajectories. The test
// stays exact: a window that passes is re-checked sample by sample.
const (
	linkWindowLen = 8
	linkWindows   = (vd.SegmentSeconds + linkWindowLen - 1) / linkWindowLen
)

// wbox is one window's bounding box in float32, rounded outward so the
// compact form always contains the exact float64 box. The window test
// additionally inflates its range threshold by wboxSlack — far larger
// than any outward-rounding error at map coordinates — so float32
// arithmetic can only let a window through to the exact per-sample
// scan, never reject one the float64 geometry would pass.
type wbox struct {
	x0, y0, x1, y1 float32
}

const wboxSlack = 1.0 // m², added to the squared-range threshold

// dist2LowerBound returns a lower bound (within wboxSlack) on the
// squared distance between two windows' boxes.
func (a wbox) dist2LowerBound(b wbox) float64 {
	dx := a.x0 - b.x1
	if d := b.x0 - a.x1; d > dx {
		dx = d
	}
	if dx < 0 {
		dx = 0
	}
	dy := a.y0 - b.y1
	if d := b.y0 - a.y1; d > dy {
		dy = d
	}
	if dy < 0 {
		dy = 0
	}
	return float64(dx)*float64(dx) + float64(dy)*float64(dy)
}

// wboxOf converts an exact window box to the outward-rounded compact
// form.
func wboxOf(r geo.Rect) wbox {
	return wbox{
		x0: f32Down(r.Min.X), y0: f32Down(r.Min.Y),
		x1: f32Up(r.Max.X), y1: f32Up(r.Max.Y),
	}
}

func f32Down(v float64) float32 {
	f := float32(v)
	if float64(f) > v {
		f = math.Nextafter32(f, float32(math.Inf(-1)))
	}
	return f
}

func f32Up(v float64) float32 {
	f := float32(v)
	if float64(f) < v {
		f = math.Nextafter32(f, float32(math.Inf(1)))
	}
	return f
}

// IncrementalConfig parameterizes an IncrementalBuilder. The fields
// mirror the construction-relevant subset of BuildConfig; the
// site-dependent fields (Site, CoverageMargin) move to ViewmapFor,
// which is where a site first becomes known.
type IncrementalConfig struct {
	// Minute is the unit-time window this builder maintains; profiles
	// from any other minute are rejected by Add.
	Minute int64
	// DSRCRange is the viewlink proximity radius; zero selects the
	// 400 m default.
	DSRCRange float64
	// RequirePlausible drops profiles whose trajectories exceed
	// drivable speeds at ingest, exactly as Build does before linking.
	RequirePlausible bool
}

// stagedProfile is one profile that has passed admission and linking
// (Stage) but is not yet part of the reader-visible graph.
type stagedProfile struct {
	p *vp.Profile
	// neighbors holds the node ids this profile links to, sorted
	// ascending. Staging assigns node ids in order, so every neighbor
	// id is smaller than the staged profile's own id whether the
	// neighbor is committed or staged earlier in the same burst.
	neighbors []int
}

// IncrementalBuilder maintains one minute's viewmap online: every
// accepted profile is linked against the existing members at ingest
// ("link-on-ingest"), so the minute's visibility graph is always
// current and investigations never pay for a from-scratch rebuild.
//
// Candidates are enumerated from the same dense geo.CellGrid the batch
// linker uses, over trajectory bounding boxes. The grid is immutable,
// so it is rebuilt with amortized O(1) cost per ingest: profiles added
// since the last rebuild are scanned linearly, and once that ungridded
// tail outgrows the gridded prefix the grid is rebuilt over everything.
//
// The zero value is not usable; construct with NewIncrementalBuilder.
// An IncrementalBuilder is NOT safe for unmediated concurrent use.
// The server's burst pipeline relies on the phase split: exactly one
// link worker per shard calls Stage (and is the only goroutine that
// touches the staging state: pending, boxes, grid, visit stamps),
// while CommitStaged and ViewmapFor are serialized under the shard
// lock.
type IncrementalBuilder struct {
	cfg IncrementalConfig

	// Reader-visible graph: mutated only by CommitStaged, read by
	// ViewmapFor and accessors. The server serializes those under its
	// shard lock.
	profiles []*vp.Profile
	adj      [][]int
	trusted  []int
	index    map[vd.VPID]int
	epoch    uint64
	edges    int

	// Staging state, private to the single staging goroutine. boxes
	// spans committed AND staged nodes (len == total()); wboxes is the
	// per-window refinement, linkWindows entries per node.
	pending      []stagedProfile
	pendingIndex map[vd.VPID]int
	boxes        []geo.Rect
	wboxes       []wbox

	grid  *geo.CellGrid
	gridN int // boxes[0:gridN] are covered by grid

	// visited/visitStamp dedup grid candidates per Stage (a box
	// spanning several cells is reported once per cell).
	visited    []uint64
	visitStamp uint64
}

// NewIncrementalBuilder creates an empty builder for one unit-time
// window.
func NewIncrementalBuilder(cfg IncrementalConfig) *IncrementalBuilder {
	if cfg.DSRCRange <= 0 {
		cfg.DSRCRange = DefaultDSRCRange
	}
	return &IncrementalBuilder{
		cfg:          cfg,
		index:        make(map[vd.VPID]int),
		pendingIndex: make(map[vd.VPID]int),
	}
}

// Minute returns the unit-time window the builder maintains.
func (b *IncrementalBuilder) Minute() int64 { return b.cfg.Minute }

// Len returns the number of linked member profiles.
func (b *IncrementalBuilder) Len() int { return len(b.profiles) }

// Epoch returns a counter that increments on every accepted ingest.
// Callers cache viewmaps keyed by epoch: an unchanged epoch guarantees
// the underlying graph has not changed.
func (b *IncrementalBuilder) Epoch() uint64 { return b.epoch }

// NumEdges returns the number of viewlinks in the maintained graph.
// It is an O(1) counter maintained by CommitStaged, so callers can use
// it (together with Len) to size the perturbation since a previous
// epoch when deciding between warm and cold re-verification.
func (b *IncrementalBuilder) NumEdges() int { return b.edges }

// total returns the number of committed plus staged nodes.
func (b *IncrementalBuilder) total() int { return len(b.profiles) + len(b.pending) }

// profileAt resolves a node id across the committed/staged boundary.
func (b *IncrementalBuilder) profileAt(i int) *vp.Profile {
	if i < len(b.profiles) {
		return b.profiles[i]
	}
	return b.pending[i-len(b.profiles)].p
}

// Add ingests one profile, linking it against the existing members.
// It returns true when the profile joined the graph; implausible
// trajectories (when RequirePlausible is set) and duplicate
// identifiers are dropped with (false, nil), matching Build's
// admission rules. A profile from a different minute is an error.
func (b *IncrementalBuilder) Add(p *vp.Profile) (bool, error) {
	ok, err := b.Stage(p)
	if err != nil || !ok {
		return false, err
	}
	b.CommitStaged()
	return true, nil
}

// Stage runs the ingest front half for one profile: admission checks
// (minute, plausibility, duplicate against both committed and staged
// members), bounding box, and the candidate enumeration plus Bloom
// probing that dominate ingest cost. Accepted profiles queue with
// their resolved viewlinks until CommitStaged. Stage touches no
// reader-visible state, so the burst pipeline runs it outside the
// shard lock; it must never run concurrently with itself, with
// CommitStaged, or with AbandonStaged.
func (b *IncrementalBuilder) Stage(p *vp.Profile) (bool, error) {
	if m := p.Minute(); m != b.cfg.Minute {
		return false, fmt.Errorf("core: profile minute %d, builder maintains %d", m, b.cfg.Minute)
	}
	if b.cfg.RequirePlausible && !p.PlausibleTrajectory() {
		return false, nil
	}
	id := p.ID()
	if _, dup := b.index[id]; dup {
		return false, nil
	}
	if _, dup := b.pendingIndex[id]; dup {
		return false, nil
	}

	node := b.total()
	box := geo.Rect{Min: p.VDs[0].L, Max: p.VDs[0].L}
	var exact [linkWindows]geo.Rect
	for i := range p.VDs {
		l := p.VDs[i].L
		box = expand(box, l)
		if w := i / linkWindowLen; i%linkWindowLen == 0 {
			exact[w] = geo.Rect{Min: l, Max: l}
		} else {
			exact[w] = expand(exact[w], l)
		}
	}
	var wb [linkWindows]wbox
	for w, n := 0, len(p.VDs); w*linkWindowLen < n; w++ {
		wb[w] = wboxOf(exact[w])
	}

	// Link the newcomer against every existing node — committed and
	// staged: grid candidates from the gridded prefix, then a linear
	// scan of the ungridded tail.
	neighbors := b.linkCandidates(p, box, &wb, node)
	sort.Ints(neighbors)

	b.pendingIndex[id] = node
	b.pending = append(b.pending, stagedProfile{p: p, neighbors: neighbors})
	b.boxes = append(b.boxes, box)
	b.wboxes = append(b.wboxes, wb[:]...)
	b.maybeRebuildGrid()
	return true, nil
}

// CommitStaged splices every staged profile into the reader-visible
// graph, in staging order, and returns how many were committed. Each
// commit increments the epoch, exactly as the equivalent sequence of
// sequential Adds would. Callers serialize CommitStaged against
// ViewmapFor and the accessors (the server holds its shard lock).
func (b *IncrementalBuilder) CommitStaged() int {
	committed := len(b.pending)
	for i := range b.pending {
		s := &b.pending[i]
		node := len(b.profiles)
		// Every neighbor id is smaller than node: committed neighbors
		// by construction, burst-mates because they committed in the
		// loop iterations before this one. Appending node keeps each
		// neighbor's adjacency sorted, since node is the largest id.
		for _, nb := range s.neighbors {
			b.adj[nb] = append(b.adj[nb], node)
		}
		b.index[s.p.ID()] = node
		b.profiles = append(b.profiles, s.p)
		b.adj = append(b.adj, s.neighbors)
		if s.p.Trusted {
			b.trusted = append(b.trusted, node)
		}
		b.edges += len(s.neighbors)
		b.epoch++
	}
	b.pending = b.pending[:0]
	if len(b.pendingIndex) > 0 {
		b.pendingIndex = make(map[vd.VPID]int)
	}
	return committed
}

// AbandonStaged discards every staged profile without committing it,
// for the burst pipeline's eviction race: when a shard is evicted
// between Stage and commit, the staged work is dropped and the burst
// retried against the shard's successor. The candidate grid is
// invalidated if it was rebuilt over since-abandoned nodes; it
// regrows lazily.
func (b *IncrementalBuilder) AbandonStaged() {
	if len(b.pending) == 0 {
		return
	}
	b.pending = b.pending[:0]
	b.pendingIndex = make(map[vd.VPID]int)
	b.boxes = b.boxes[:len(b.profiles)]
	b.wboxes = b.wboxes[:len(b.profiles)*linkWindows]
	if b.gridN > len(b.boxes) {
		b.grid = nil
		b.gridN = 0
	}
}

// AddBatch ingests profiles in order and returns how many joined the
// graph. It stops at the first hard error (wrong minute), which leaves
// the already-ingested prefix linked and usable.
func (b *IncrementalBuilder) AddBatch(ps []*vp.Profile) (added int, err error) {
	for _, p := range ps {
		ok, err := b.Add(p)
		if err != nil {
			return added, err
		}
		if ok {
			added++
		}
	}
	return added, nil
}

// linkCandidates returns the node ids below limit that pass the
// two-way linkage test against the incoming profile. Proximity runs on
// the window-box slab (sampleNear); the Bloom side runs on the lazily
// derived digest caches (vp.MutualFilters): honest pairs resolve on
// first/last digests alone, so most profiles never pay the 60-digest
// SHA-256 derivation that used to dominate link-on-ingest. The
// same-minute and distinct-identifier guards of the standalone
// vp.MutualNeighborsLazy are already established here: Stage admits
// only the builder's minute and rejects duplicate identifiers before
// linking.
func (b *IncrementalBuilder) linkCandidates(p *vp.Profile, box geo.Rect, wb *[linkWindows]wbox, limit int) []int {
	var out []int
	rangeM := b.cfg.DSRCRange
	range2 := rangeM * rangeM
	test := func(cand int) {
		if boxDist2(box, b.boxes[cand]) > range2 {
			return
		}
		q := b.profileAt(cand)
		if !b.sampleNear(p, wb, q, cand, range2) {
			return
		}
		if vp.MutualFilters(p, q) {
			out = append(out, cand)
		}
	}
	if b.grid != nil {
		b.visitStamp++
		if len(b.visited) < b.gridN {
			b.visited = make([]uint64, limit)
		}
		cx0, cx1, cy0, cy1 := b.grid.Span(box, rangeM)
		for cy := cy0; cy <= cy1; cy++ {
			for cx := cx0; cx <= cx1; cx++ {
				for _, c32 := range b.grid.ItemsIn(cx, cy) {
					c := int(c32)
					if b.visited[c] == b.visitStamp {
						continue
					}
					b.visited[c] = b.visitStamp
					test(c)
				}
			}
		}
	}
	for c := b.gridN; c < limit; c++ {
		test(c)
	}
	return out
}

// sampleNear reports whether p and candidate q come within DSRC range
// at any shared second — exactly MutualNeighborsLazy's proximity loop,
// evaluated window-first: a window's samples are scanned only when the
// two window boxes are themselves within range, so far-but-box-adjacent
// candidates resolve on at most linkWindows contiguous box distances.
func (b *IncrementalBuilder) sampleNear(p *vp.Profile, wb *[linkWindows]wbox, q *vp.Profile, cand int, range2 float64) bool {
	n := min(len(p.VDs), len(q.VDs))
	base := cand * linkWindows
	for w := 0; w*linkWindowLen < n; w++ {
		if wb[w].dist2LowerBound(b.wboxes[base+w]) > range2+wboxSlack {
			continue
		}
		hi := min((w+1)*linkWindowLen, n)
		for i := w * linkWindowLen; i < hi; i++ {
			if p.VDs[i].L.Dist2(q.VDs[i].L) <= range2 {
				return true
			}
		}
	}
	return false
}

// maybeRebuildGrid rebuilds the candidate grid once the ungridded tail
// outgrows the gridded prefix (doubling schedule: amortized O(1)
// rebuild work per ingest). The grid may cover staged nodes; that is
// safe because the grid lives entirely on the staging side.
func (b *IncrementalBuilder) maybeRebuildGrid() {
	tail := len(b.boxes) - b.gridN
	if tail < gridRebuildMin || tail < b.gridN {
		return
	}
	b.grid = geo.NewCellGrid(b.boxes, b.cfg.DSRCRange, geo.DefaultMaxGridCells)
	b.gridN = len(b.boxes)
}

// ViewmapFor extracts the viewmap for an investigation site from the
// maintained graph, replicating Build's member selection exactly:
// select the trusted VP nearest the site, span a coverage area
// encompassing both (inflated by margin; margin <= 0 selects the DSRC
// range), admit the members whose trajectories enter the coverage, and
// take the induced subgraph over them. Because the two-way linkage
// test is pairwise and independent of coverage, the result's edge set
// is identical to core.Build over the same profiles — the equivalence
// property test in incremental_test.go holds the two together.
//
// The returned viewmap shares the member Profile pointers with the
// builder but owns its adjacency; it remains valid and immutable after
// further Adds. Staged-but-uncommitted profiles are invisible here.
func (b *IncrementalBuilder) ViewmapFor(site geo.Rect, margin float64) (*Viewmap, error) {
	if margin <= 0 {
		margin = b.cfg.DSRCRange
	}

	nearestTrusted := b.nearestTrustedTo(site.Center())
	if nearestTrusted < 0 {
		return nil, ErrNoTrusted
	}
	cover := b.coverFor(site, nearestTrusted, margin)

	vm := &Viewmap{
		Coverage: cover,
		Minute:   b.cfg.Minute,
		index:    make(map[vd.VPID]int),
	}
	// remap[old] is the member's node id in the extracted viewmap, -1
	// for non-members. Membership preserves insertion order, so the
	// remapping is monotone and remapped adjacency stays sorted.
	remap := make([]int, len(b.profiles))
	for i, p := range b.profiles {
		remap[i] = -1
		if !p.EntersArea(cover) {
			continue
		}
		remap[i] = len(vm.Profiles)
		vm.index[p.ID()] = len(vm.Profiles)
		vm.Profiles = append(vm.Profiles, p)
		if p.Trusted {
			vm.Trusted = append(vm.Trusted, remap[i])
		}
	}
	vm.Adj = make([][]int, len(vm.Profiles))
	for old, n := range remap {
		if n < 0 {
			continue
		}
		for _, nb := range b.adj[old] {
			if m := remap[nb]; m >= 0 {
				vm.Adj[n] = append(vm.Adj[n], m)
			}
		}
	}
	vm.ensureCSR()
	return vm, nil
}

// nearestTrustedTo returns the trusted node whose trajectory comes
// nearest the site center, -1 when the minute holds no trusted VP.
// Scanning trusted nodes in insertion order with a strict less keeps
// tie-breaking identical to Build's scan, so every extraction path
// (batch Build, ViewmapFor, SiteView) selects the same anchor.
func (b *IncrementalBuilder) nearestTrustedTo(siteCenter geo.Point) int {
	bestDist := -1.0
	nearestTrusted := -1
	for _, t := range b.trusted {
		p := b.profiles[t]
		for i := range p.VDs {
			if d := p.VDs[i].L.Dist(siteCenter); nearestTrusted < 0 || d < bestDist {
				bestDist = d
				nearestTrusted = t
			}
		}
	}
	return nearestTrusted
}

// coverFor spans the coverage area encompassing the site and the given
// trusted node's trajectory, inflated by margin — Build's coverage
// rule.
func (b *IncrementalBuilder) coverFor(site geo.Rect, trusted int, margin float64) geo.Rect {
	cover := site
	for i := range b.profiles[trusted].VDs {
		cover = expand(cover, b.profiles[trusted].VDs[i].L)
	}
	return cover.Inflate(margin)
}

// ErrNoTrusted is returned by Build and by ViewmapFor when the minute
// holds no trusted VP to seed trust propagation — one sentinel for
// both construction paths, so callers can treat them uniformly.
var ErrNoTrusted = errors.New("core: no trusted VP available for this minute")
