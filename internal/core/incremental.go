package core

import (
	"errors"
	"fmt"
	"sort"

	"viewmap/internal/geo"
	"viewmap/internal/vd"
	"viewmap/internal/vp"
)

// This file moves viewmap construction online. Build (viewmap.go) is
// the batch formulation: given every profile of a minute, link all
// pairs at once. The system service, however, absorbs a continuous
// stream of anonymous VP uploads and must answer investigations at any
// point in between; rebuilding the whole minute per request repeats
// the full pairwise linkage work the PR-1 linker already spent. The
// IncrementalBuilder maintains the minute's full visibility graph as
// profiles arrive — each new VP is tested only against its candidate
// neighbors, discovered through the same dense CellGrid the batch
// linker uses — so an investigation reduces to extracting the induced
// subgraph over the coverage members, which is O(members + edges)
// instead of O(candidate pairs x Bloom probes).

// gridRebuildMin is the smallest ungridded tail that triggers a grid
// rebuild. Below it, the linear tail scan is cheaper than rebuilding.
const gridRebuildMin = 32

// IncrementalConfig parameterizes an IncrementalBuilder. The fields
// mirror the construction-relevant subset of BuildConfig; the
// site-dependent fields (Site, CoverageMargin) move to ViewmapFor,
// which is where a site first becomes known.
type IncrementalConfig struct {
	// Minute is the unit-time window this builder maintains; profiles
	// from any other minute are rejected by Add.
	Minute int64
	// DSRCRange is the viewlink proximity radius; zero selects the
	// 400 m default.
	DSRCRange float64
	// RequirePlausible drops profiles whose trajectories exceed
	// drivable speeds at ingest, exactly as Build does before linking.
	RequirePlausible bool
}

// IncrementalBuilder maintains one minute's viewmap online: every
// accepted profile is linked against the existing members at ingest
// ("link-on-ingest"), so the minute's visibility graph is always
// current and investigations never pay for a from-scratch rebuild.
//
// Candidates are enumerated from the same dense geo.CellGrid the batch
// linker uses, over trajectory bounding boxes. The grid is immutable,
// so it is rebuilt with amortized O(1) cost per ingest: profiles added
// since the last rebuild are scanned linearly, and once that ungridded
// tail outgrows the gridded prefix the grid is rebuilt over everything.
//
// The zero value is not usable; construct with NewIncrementalBuilder.
// An IncrementalBuilder is NOT safe for concurrent use — the server's
// store serializes access per minute shard (one builder per shard).
type IncrementalBuilder struct {
	cfg IncrementalConfig

	profiles []*vp.Profile
	digests  [][][2]uint32
	boxes    []geo.Rect
	adj      [][]int
	trusted  []int
	index    map[vd.VPID]int

	grid  *geo.CellGrid
	gridN int // profiles[0:gridN] are covered by grid

	// visited/visitStamp dedup grid candidates per Add (a box spanning
	// several cells is reported once per cell).
	visited    []uint64
	visitStamp uint64

	epoch uint64
}

// NewIncrementalBuilder creates an empty builder for one unit-time
// window.
func NewIncrementalBuilder(cfg IncrementalConfig) *IncrementalBuilder {
	if cfg.DSRCRange <= 0 {
		cfg.DSRCRange = DefaultDSRCRange
	}
	return &IncrementalBuilder{
		cfg:   cfg,
		index: make(map[vd.VPID]int),
	}
}

// Minute returns the unit-time window the builder maintains.
func (b *IncrementalBuilder) Minute() int64 { return b.cfg.Minute }

// Len returns the number of linked member profiles.
func (b *IncrementalBuilder) Len() int { return len(b.profiles) }

// Epoch returns a counter that increments on every accepted ingest.
// Callers cache viewmaps keyed by epoch: an unchanged epoch guarantees
// the underlying graph has not changed.
func (b *IncrementalBuilder) Epoch() uint64 { return b.epoch }

// NumEdges returns the number of viewlinks in the maintained graph.
func (b *IncrementalBuilder) NumEdges() int {
	total := 0
	for _, a := range b.adj {
		total += len(a)
	}
	return total / 2
}

// Add ingests one profile, linking it against the existing members.
// It returns true when the profile joined the graph; implausible
// trajectories (when RequirePlausible is set) and duplicate
// identifiers are dropped with (false, nil), matching Build's
// admission rules. A profile from a different minute is an error.
func (b *IncrementalBuilder) Add(p *vp.Profile) (bool, error) {
	if m := p.Minute(); m != b.cfg.Minute {
		return false, fmt.Errorf("core: profile minute %d, builder maintains %d", m, b.cfg.Minute)
	}
	if b.cfg.RequirePlausible && !p.PlausibleTrajectory() {
		return false, nil
	}
	id := p.ID()
	if _, dup := b.index[id]; dup {
		return false, nil
	}

	node := len(b.profiles)
	box := geo.Rect{Min: p.VDs[0].L, Max: p.VDs[0].L}
	for i := range p.VDs {
		box = expand(box, p.VDs[i].L)
	}
	digests := p.Digests()

	// Link the newcomer against the existing graph: grid candidates
	// from the gridded prefix, then a linear scan of the ungridded
	// tail. Each existing node's adjacency stays sorted because the
	// newcomer's id is the largest so far.
	neighbors := b.linkCandidates(p, digests, box)
	sort.Ints(neighbors)
	for _, nb := range neighbors {
		b.adj[nb] = append(b.adj[nb], node)
	}

	b.index[id] = node
	b.profiles = append(b.profiles, p)
	b.digests = append(b.digests, digests)
	b.boxes = append(b.boxes, box)
	b.adj = append(b.adj, neighbors)
	if p.Trusted {
		b.trusted = append(b.trusted, node)
	}
	b.maybeRebuildGrid()
	b.epoch++
	return true, nil
}

// AddBatch ingests profiles in order and returns how many joined the
// graph. It stops at the first hard error (wrong minute), which leaves
// the already-ingested prefix linked and usable.
func (b *IncrementalBuilder) AddBatch(ps []*vp.Profile) (added int, err error) {
	for _, p := range ps {
		ok, err := b.Add(p)
		if err != nil {
			return added, err
		}
		if ok {
			added++
		}
	}
	return added, nil
}

// linkCandidates returns the existing node ids that pass the two-way
// linkage test against the incoming profile.
func (b *IncrementalBuilder) linkCandidates(p *vp.Profile, digests [][2]uint32, box geo.Rect) []int {
	var out []int
	rangeM := b.cfg.DSRCRange
	range2 := rangeM * rangeM
	test := func(cand int) {
		if boxDist2(box, b.boxes[cand]) > range2 {
			return
		}
		if vp.MutualNeighborsDigests(p, b.profiles[cand], digests, b.digests[cand], rangeM) {
			out = append(out, cand)
		}
	}
	if b.grid != nil {
		b.visitStamp++
		if len(b.visited) < b.gridN {
			b.visited = make([]uint64, len(b.profiles))
		}
		cx0, cx1, cy0, cy1 := b.grid.Span(box, rangeM)
		for cy := cy0; cy <= cy1; cy++ {
			for cx := cx0; cx <= cx1; cx++ {
				for _, c32 := range b.grid.ItemsIn(cx, cy) {
					c := int(c32)
					if b.visited[c] == b.visitStamp {
						continue
					}
					b.visited[c] = b.visitStamp
					test(c)
				}
			}
		}
	}
	for c := b.gridN; c < len(b.profiles); c++ {
		test(c)
	}
	return out
}

// maybeRebuildGrid rebuilds the candidate grid once the ungridded tail
// outgrows the gridded prefix (doubling schedule: amortized O(1)
// rebuild work per ingest).
func (b *IncrementalBuilder) maybeRebuildGrid() {
	tail := len(b.profiles) - b.gridN
	if tail < gridRebuildMin || tail < b.gridN {
		return
	}
	b.grid = geo.NewCellGrid(b.boxes, b.cfg.DSRCRange, geo.DefaultMaxGridCells)
	b.gridN = len(b.profiles)
}

// ViewmapFor extracts the viewmap for an investigation site from the
// maintained graph, replicating Build's member selection exactly:
// select the trusted VP nearest the site, span a coverage area
// encompassing both (inflated by margin; margin <= 0 selects the DSRC
// range), admit the members whose trajectories enter the coverage, and
// take the induced subgraph over them. Because the two-way linkage
// test is pairwise and independent of coverage, the result's edge set
// is identical to core.Build over the same profiles — the equivalence
// property test in incremental_test.go holds the two together.
//
// The returned viewmap shares the member Profile pointers with the
// builder but owns its adjacency; it remains valid and immutable after
// further Adds.
func (b *IncrementalBuilder) ViewmapFor(site geo.Rect, margin float64) (*Viewmap, error) {
	if margin <= 0 {
		margin = b.cfg.DSRCRange
	}

	// Nearest trusted VP, by trajectory-sample distance to the site
	// center. Scanning trusted nodes in insertion order with a strict
	// less keeps tie-breaking identical to Build's scan.
	siteCenter := site.Center()
	bestDist := -1.0
	nearestTrusted := -1
	for _, t := range b.trusted {
		p := b.profiles[t]
		for i := range p.VDs {
			if d := p.VDs[i].L.Dist(siteCenter); nearestTrusted < 0 || d < bestDist {
				bestDist = d
				nearestTrusted = t
			}
		}
	}
	if nearestTrusted < 0 {
		return nil, ErrNoTrusted
	}

	cover := site
	for i := range b.profiles[nearestTrusted].VDs {
		cover = expand(cover, b.profiles[nearestTrusted].VDs[i].L)
	}
	cover = cover.Inflate(margin)

	vm := &Viewmap{
		Coverage: cover,
		Minute:   b.cfg.Minute,
		index:    make(map[vd.VPID]int),
	}
	// remap[old] is the member's node id in the extracted viewmap, -1
	// for non-members. Membership preserves insertion order, so the
	// remapping is monotone and remapped adjacency stays sorted.
	remap := make([]int, len(b.profiles))
	for i, p := range b.profiles {
		remap[i] = -1
		if !p.EntersArea(cover) {
			continue
		}
		remap[i] = len(vm.Profiles)
		vm.index[p.ID()] = len(vm.Profiles)
		vm.Profiles = append(vm.Profiles, p)
		if p.Trusted {
			vm.Trusted = append(vm.Trusted, remap[i])
		}
	}
	vm.Adj = make([][]int, len(vm.Profiles))
	for old, n := range remap {
		if n < 0 {
			continue
		}
		for _, nb := range b.adj[old] {
			if m := remap[nb]; m >= 0 {
				vm.Adj[n] = append(vm.Adj[n], m)
			}
		}
	}
	vm.ensureCSR()
	return vm, nil
}

// ErrNoTrusted is returned by Build and by ViewmapFor when the minute
// holds no trusted VP to seed trust propagation — one sentinel for
// both construction paths, so callers can treat them uniformly.
var ErrNoTrusted = errors.New("core: no trusted VP available for this minute")
