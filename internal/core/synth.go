package core

import (
	"fmt"
	"math"
	"math/rand"

	"viewmap/internal/bloom"
	"viewmap/internal/geo"
	"viewmap/internal/vd"
	"viewmap/internal/vp"
)

// This file generates the synthetic geometric viewmaps the paper uses
// for its verification experiments ("We run experiments on synthetic
// geometric graphs, as viewmaps with 1000 legitimate VPs", Section
// 6.3.1): random 1-minute trajectories in an area, with viewlinks
// created between every pair that comes within DSRC range — modelling
// vehicles that all ran the honest VD-exchange protocol.

// FabricateProfile builds a complete profile along the given per-second
// track (exactly 60 samples) for the given minute, with a fresh random
// identifier, random hash fields and an empty neighbor filter. Both the
// synthetic-viewmap generator and the attack models use it: from the
// system's perspective a profile is just claims, and only the linkage
// structure distinguishes honest from fake ones.
func FabricateProfile(track []geo.Point, minute int64, bytesPerSecond int64, rng *rand.Rand) (*vp.Profile, error) {
	if len(track) != vd.SegmentSeconds {
		return nil, fmt.Errorf("core: track has %d samples, want %d", len(track), vd.SegmentSeconds)
	}
	if bytesPerSecond <= 0 {
		bytesPerSecond = 800_000
	}
	var q vd.Secret
	for i := range q {
		q[i] = byte(rng.Intn(256))
	}
	r := vd.DeriveVPID(q)
	start := minute * vd.SegmentSeconds
	vds := make([]vd.VD, vd.SegmentSeconds)
	var size int64
	for i := 0; i < vd.SegmentSeconds; i++ {
		size += bytesPerSecond
		var h vd.Hash
		for j := range h {
			h[j] = byte(rng.Intn(256))
		}
		vds[i] = vd.VD{
			T: start + int64(i+1), L: track[i], F: size,
			L1: track[0], Seq: uint64(i + 1), R: r, H: h,
		}
	}
	return &vp.Profile{
		VDs:       vds,
		Neighbors: bloom.New(vp.FilterBits, bloom.OptimalK(vp.FilterBits, 2*vp.MaxNeighbors)),
	}, nil
}

// RandomTrack returns a 60-sample straight drive from a random point in
// the area at the given speed in a random direction, reflecting off the
// area boundary.
func RandomTrack(area geo.Rect, speed float64, rng *rand.Rand) []geo.Point {
	p := geo.Pt(
		area.Min.X+rng.Float64()*area.Width(),
		area.Min.Y+rng.Float64()*area.Height(),
	)
	theta := rng.Float64() * 2 * math.Pi
	dx, dy := math.Cos(theta)*speed, math.Sin(theta)*speed
	track := make([]geo.Point, vd.SegmentSeconds)
	for i := 0; i < vd.SegmentSeconds; i++ {
		track[i] = p
		np := p.Add(geo.Pt(dx, dy))
		if np.X < area.Min.X || np.X > area.Max.X {
			dx = -dx
			np = p.Add(geo.Pt(dx, dy))
		}
		if np.Y < area.Min.Y || np.Y > area.Max.Y {
			dy = -dy
			np = p.Add(geo.Pt(dx, dy))
		}
		p = np
	}
	return track
}

// LinkByProximity runs the honest linkage pass over a set of profiles:
// every pair whose trajectories come within rangeM at some aligned
// second exchanges VDs and records each other in their Bloom filters.
// This models a population of vehicles all running the DSRC protocol
// under open-sky (always-LOS) conditions, which is what the paper's
// synthetic geometric graphs assume.
func LinkByProximity(profiles []*vp.Profile, rangeM float64) error {
	if rangeM <= 0 {
		return fmt.Errorf("core: linkage range must be positive, got %v", rangeM)
	}
	// Grid-bucket trajectory bounding boxes so dense populations avoid
	// the full O(n^2) pair scan.
	type box struct{ min, max geo.Point }
	boxes := make([]box, len(profiles))
	for i, p := range profiles {
		b := box{min: p.VDs[0].L, max: p.VDs[0].L}
		for j := range p.VDs {
			l := p.VDs[j].L
			b.min.X = math.Min(b.min.X, l.X)
			b.min.Y = math.Min(b.min.Y, l.Y)
			b.max.X = math.Max(b.max.X, l.X)
			b.max.Y = math.Max(b.max.Y, l.Y)
		}
		boxes[i] = b
	}
	grid := make(map[[2]int][]int)
	cellOf := func(x, y float64) (int, int) {
		return int(math.Floor(x / rangeM)), int(math.Floor(y / rangeM))
	}
	for i, b := range boxes {
		x0, y0 := cellOf(b.min.X-rangeM, b.min.Y-rangeM)
		x1, y1 := cellOf(b.max.X+rangeM, b.max.Y+rangeM)
		for cx := x0; cx <= x1; cx++ {
			for cy := y0; cy <= y1; cy++ {
				grid[[2]int{cx, cy}] = append(grid[[2]int{cx, cy}], i)
			}
		}
	}
	seen := make(map[[2]int]bool)
	for _, bucket := range grid {
		for ai := 0; ai < len(bucket); ai++ {
			for bi := ai + 1; bi < len(bucket); bi++ {
				i, j := bucket[ai], bucket[bi]
				if i > j {
					i, j = j, i
				}
				k := [2]int{i, j}
				if seen[k] {
					continue
				}
				seen[k] = true
				a, b := profiles[i], profiles[j]
				if a.Minute() != b.Minute() {
					continue
				}
				n := len(a.VDs)
				if len(b.VDs) < n {
					n = len(b.VDs)
				}
				range2 := rangeM * rangeM
				for s := 0; s < n; s++ {
					if a.VDs[s].L.Dist2(b.VDs[s].L) <= range2 {
						if err := vp.LinkMutually(a, b); err != nil {
							return err
						}
						break
					}
				}
			}
		}
	}
	return nil
}

// SynthConfig parameterizes synthetic viewmap generation.
type SynthConfig struct {
	// N is the number of legitimate VPs.
	N int
	// Area is the region trajectories roam.
	Area geo.Rect
	// Minute is the unit-time window.
	Minute int64
	// SpeedMS is the trajectory speed; zero selects 14 m/s (~50 km/h).
	SpeedMS float64
	// DSRCRange is the linkage radius; zero selects 400 m.
	DSRCRange float64
	// Seed drives all randomness.
	Seed int64
}

// SynthesizeLegitimate generates n honestly-linked profiles. The caller
// chooses which to mark trusted (e.g. via MarkTrustedNearest).
func SynthesizeLegitimate(cfg SynthConfig) ([]*vp.Profile, error) {
	if cfg.N <= 0 {
		return nil, fmt.Errorf("core: need at least one profile, got %d", cfg.N)
	}
	if cfg.Area.Width() <= 0 || cfg.Area.Height() <= 0 {
		return nil, fmt.Errorf("core: degenerate area %+v", cfg.Area)
	}
	if cfg.SpeedMS == 0 {
		cfg.SpeedMS = 14
	}
	if cfg.DSRCRange == 0 {
		cfg.DSRCRange = DefaultDSRCRange
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	profiles := make([]*vp.Profile, 0, cfg.N)
	for i := 0; i < cfg.N; i++ {
		p, err := FabricateProfile(RandomTrack(cfg.Area, cfg.SpeedMS, rng), cfg.Minute, 0, rng)
		if err != nil {
			return nil, err
		}
		profiles = append(profiles, p)
	}
	if err := LinkByProximity(profiles, cfg.DSRCRange); err != nil {
		return nil, err
	}
	return profiles, nil
}

// MarkTrustedNearest marks as trusted the profile whose trajectory
// comes closest to p, modelling the police car whose VP seeds the
// trust propagation, and returns its index.
func MarkTrustedNearest(profiles []*vp.Profile, p geo.Point) int {
	best := -1
	bestD := math.Inf(1)
	for i, prof := range profiles {
		for j := range prof.VDs {
			if d := prof.VDs[j].L.Dist(p); d < bestD {
				bestD = d
				best = i
			}
		}
	}
	if best >= 0 {
		profiles[best].Trusted = true
	}
	return best
}
