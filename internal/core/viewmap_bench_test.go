package core

import (
	"fmt"
	"testing"

	"viewmap/internal/geo"
)

// BenchmarkViewmapLink isolates the candidate-pair linker — the
// dominant cost of viewmap construction — at several population sizes.
// Allocations are reported so a per-pair map or slice regression on the
// hot path is immediately visible: the expected figure is a handful of
// O(n) scratch allocations per call, independent of the candidate-pair
// count.
func BenchmarkViewmapLink(b *testing.B) {
	for _, n := range []int{100, 400, 1000} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			side := 1000.0 * float64(n) / 250.0
			area := geo.NewRect(geo.Pt(0, 0), geo.Pt(side, side))
			profiles, err := SynthesizeLegitimate(SynthConfig{N: n, Area: area, Seed: 42})
			if err != nil {
				b.Fatal(err)
			}
			vm := &Viewmap{Profiles: profiles}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				vm.Adj = make([][]int, len(vm.Profiles))
				vm.link(DefaultDSRCRange)
			}
		})
	}
}

// BenchmarkViewmapBuild measures full construction (admission, linking,
// CSR mirroring) for the Fig. 12 arena shape.
func BenchmarkViewmapBuild(b *testing.B) {
	for _, n := range []int{150, 600} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			area := geo.NewRect(geo.Pt(0, 0), geo.Pt(4000, 4000))
			profiles, err := SynthesizeLegitimate(SynthConfig{N: n, Area: area, Seed: 7})
			if err != nil {
				b.Fatal(err)
			}
			MarkTrustedNearest(profiles, geo.Pt(600, 600))
			cfg := BuildConfig{Site: geo.RectAround(geo.Pt(2600, 2600), 200), Minute: 0}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := Build(profiles, cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
