package core

import (
	"fmt"
	"math/rand"
	"testing"

	"viewmap/internal/geo"
	"viewmap/internal/vp"
)

// TestSiteViewEquivalenceProperty is the acceptance property of the
// incremental verification path, in two layers. Structural: across
// arbitrary chunked ingest interleavings — including mid-stream
// colluder-cluster floods into an already-extracted site — a patched
// SiteView.Refresh must produce a viewmap identical, node for node and
// edge for edge, to a fresh ViewmapFor extraction. Behavioral: a
// warm-started VerifySiteFrom, resuming from the score vector the
// previous epoch converged to, must return bit-for-bit the same
// Legitimate set as a cold VerifySite over the same viewmap, at every
// epoch. The warm path's certificate logic (trustrank.go) may pick a
// different internal anchor but never a different verdict; this test
// is what holds it to that.
func TestSiteViewEquivalenceProperty(t *testing.T) {
	if testing.Short() {
		t.Skip("equivalence sweep is not short")
	}
	for si := 0; si < 10; si++ {
		si := si
		t.Run(fmt.Sprintf("seed=%d", si), func(t *testing.T) {
			t.Parallel()
			seed := int64(9100 + si)
			rng := rand.New(rand.NewSource(seed))
			side := 1500 + float64(si%4)*600
			rangeM := 150 + float64(si%3)*100
			area := geo.NewRect(geo.Pt(0, 0), geo.Pt(side, side))
			profiles, err := SynthesizeLegitimate(SynthConfig{
				N: 60 + (si*37)%160, Area: area, Seed: seed, DSRCRange: rangeM,
			})
			if err != nil {
				t.Fatal(err)
			}
			MarkTrustedNearest(profiles, area.Center())
			perm := make([]*vp.Profile, len(profiles))
			for i, j := range rng.Perm(len(profiles)) {
				perm[i] = profiles[j]
			}
			// A colluder flood lands mid-stream: a stacked cluster inside
			// the site, linked to each other but (mostly) not to the
			// honest graph — the adversarial shape whose verdict the warm
			// path must keep reproducing exactly.
			flood := stackedCluster(t, area.Center(), 10+si%8, 0, rng)
			floodAt := 1 + rng.Intn(len(perm))

			b := NewIncrementalBuilder(IncrementalConfig{Minute: 0, DSRCRange: rangeM})
			site := geo.RectAround(area.Center(), 250)
			sv := NewSiteView(b, site, 0)

			var prev []float64
			var prevGen uint64
			var prevLen int
			checked := 0
			for off := 0; off < len(perm); {
				size := 1 + rng.Intn(24)
				if off+size > len(perm) {
					size = len(perm) - off
				}
				if _, err := b.AddBatch(perm[off : off+size]); err != nil {
					t.Fatal(err)
				}
				off += size
				if off >= floodAt && flood != nil {
					if _, err := b.AddBatch(flood); err != nil {
						t.Fatal(err)
					}
					flood = nil
				}

				vm, _, gen, err := sv.Refresh()
				if err == ErrNoTrusted {
					continue
				}
				if err != nil {
					t.Fatal(err)
				}
				fresh, err := b.ViewmapFor(site, 0)
				if err != nil {
					t.Fatal(err)
				}
				if vm.Len() != fresh.Len() {
					t.Fatalf("patched viewmap has %d members, fresh extraction %d", vm.Len(), fresh.Len())
				}
				for i := range fresh.Profiles {
					if vm.Profiles[i] != fresh.Profiles[i] {
						t.Fatalf("member order diverges at node %d", i)
					}
				}
				adjEqual(t, "patched vs fresh", vm.Adj, fresh.Adj)
				if fmt.Sprint(vm.Trusted) != fmt.Sprint(fresh.Trusted) {
					t.Fatalf("trusted sets diverge: %v vs %v", vm.Trusted, fresh.Trusted)
				}
				if vm.Coverage != fresh.Coverage {
					t.Fatalf("coverage diverges: %+v vs %+v", vm.Coverage, fresh.Coverage)
				}

				// Warm-vs-cold verdict equality, with the server's
				// warm-start validity rule: same generation, bounded growth.
				if gen != prevGen || prevLen == 0 || vm.Len() > prevLen*8 {
					prev = nil
				}
				warm, stats, err := vm.VerifySiteFrom(vm.InSite(site), prev, TrustRankConfig{})
				if err != nil {
					t.Fatal(err)
				}
				cold, err := fresh.VerifySite(fresh.InSite(site), TrustRankConfig{})
				if err != nil {
					t.Fatal(err)
				}
				if fmt.Sprint(warm.Legitimate) != fmt.Sprint(cold.Legitimate) {
					t.Fatalf("warm (warm=%v, iters=%d) and cold verdicts diverge:\nwarm %v\ncold %v",
						stats.Warm, stats.Iterations, warm.Legitimate, cold.Legitimate)
				}
				if fmt.Sprint(warm.LegitimateIDs(vm)) != fmt.Sprint(cold.LegitimateIDs(fresh)) {
					t.Fatal("warm and cold legitimate identifier sets diverge")
				}
				prev, prevGen, prevLen = warm.Scores, gen, vm.Len()
				checked++
			}
			if checked < 2 {
				t.Fatalf("property only exercised %d epochs", checked)
			}
		})
	}
}

// TestSiteViewContentEpoch pins the verdict-cache identity contract:
// the content epoch advances exactly when the extraction changes —
// ingest outside the coverage area moves the builder epoch but not the
// content epoch — and replaying the same accepted profiles into a
// fresh builder reproduces the same content epoch, which is what lets
// verdicts cached before an eviction be reused after the segment
// reload reconstructs the shard.
func TestSiteViewContentEpoch(t *testing.T) {
	area := geo.NewRect(geo.Pt(0, 0), geo.Pt(3000, 3000))
	profiles, err := SynthesizeLegitimate(SynthConfig{N: 80, Area: area, Seed: 31})
	if err != nil {
		t.Fatal(err)
	}
	MarkTrustedNearest(profiles, geo.Pt(500, 500))
	site := geo.RectAround(geo.Pt(500, 500), 250)

	b := NewIncrementalBuilder(IncrementalConfig{Minute: 0})
	sv := NewSiteView(b, site, 0)
	if _, err := b.AddBatch(profiles); err != nil {
		t.Fatal(err)
	}
	vm, ce1, _, err := sv.Refresh()
	if err != nil {
		t.Fatal(err)
	}
	if ce1 == 0 || vm.Len() == 0 {
		t.Fatalf("content epoch %d over %d members, want both positive", ce1, vm.Len())
	}

	// A profile far outside the site's coverage advances the builder
	// but must not move the content epoch.
	rng := rand.New(rand.NewSource(99))
	track := make([]geo.Point, 60)
	for i := range track {
		track[i] = geo.Pt(2900, float64(2850+i))
	}
	far, err := FabricateProfile(track, 0, 0, rng)
	if err != nil {
		t.Fatal(err)
	}
	epochBefore := b.Epoch()
	if ok, err := b.Add(far); err != nil || !ok {
		t.Fatalf("far Add = (%v, %v), want accepted", ok, err)
	}
	if b.Epoch() == epochBefore {
		t.Fatal("builder epoch did not advance on accepted ingest")
	}
	if _, ce2, _, err := sv.Refresh(); err != nil {
		t.Fatal(err)
	} else if ce2 != ce1 {
		t.Fatalf("content epoch moved %d -> %d on out-of-cover ingest", ce1, ce2)
	}

	// Replay: the same accepted profiles into a fresh builder reproduce
	// the content epoch exactly.
	replay := NewIncrementalBuilder(IncrementalConfig{Minute: 0})
	for i := 0; i < b.Len(); i++ {
		if ok, err := replay.Add(b.profiles[i]); err != nil || !ok {
			t.Fatalf("replay Add %d = (%v, %v)", i, ok, err)
		}
	}
	sv2 := NewSiteView(replay, site, 0)
	if _, ce3, _, err := sv2.Refresh(); err != nil {
		t.Fatal(err)
	} else if ce3 != ce1 {
		t.Fatalf("replayed content epoch %d, original %d", ce3, ce1)
	}
}

// TestIncrementalNumEdges holds the O(1) edge counter to a recount of
// the adjacency it summarizes.
func TestIncrementalNumEdges(t *testing.T) {
	area := geo.NewRect(geo.Pt(0, 0), geo.Pt(1500, 1500))
	profiles, err := SynthesizeLegitimate(SynthConfig{N: 120, Area: area, Seed: 77})
	if err != nil {
		t.Fatal(err)
	}
	b := NewIncrementalBuilder(IncrementalConfig{Minute: 0})
	for off := 0; off < len(profiles); off += 30 {
		end := off + 30
		if end > len(profiles) {
			end = len(profiles)
		}
		if _, err := b.AddBatch(profiles[off:end]); err != nil {
			t.Fatal(err)
		}
		recount := 0
		for _, row := range b.adj {
			recount += len(row)
		}
		if got := b.NumEdges(); got != recount/2 {
			t.Fatalf("NumEdges = %d, adjacency holds %d", got, recount/2)
		}
	}
	if b.NumEdges() == 0 {
		t.Fatal("synthesized population produced no viewlinks")
	}
}
