package core

import (
	"fmt"
	"math/rand"
	"testing"

	"viewmap/internal/geo"
	"viewmap/internal/vp"
)

// TestIncrementalEquivalenceProperty is the acceptance property of the
// online construction path: for arbitrary interleavings of single and
// batch ingest over a randomized arena, the incremental viewmap for a
// site must have an edge set identical — node for node — to a one-shot
// core.Build over the same profiles in the same order. Arenas include
// the stress shapes of the batch-linker property test: co-located
// stacked clusters and Bloom false-positive-heavy filters.
func TestIncrementalEquivalenceProperty(t *testing.T) {
	if testing.Short() {
		t.Skip("equivalence sweep is not short")
	}
	type scenario struct {
		n       int
		side    float64
		rangeM  float64
		cluster int
		fpHeavy bool
	}
	var scenarios []scenario
	for seed := 0; seed < 14; seed++ {
		scenarios = append(scenarios, scenario{
			n:       30 + (seed*41)%220,
			side:    1200 + float64(seed%5)*800,
			rangeM:  150 + float64(seed%4)*125,
			cluster: (seed % 3) * 12,
			fpHeavy: seed%2 == 1,
		})
	}
	for si, sc := range scenarios {
		sc := sc
		t.Run(fmt.Sprintf("seed=%d/n=%d/fp=%v", si, sc.n, sc.fpHeavy), func(t *testing.T) {
			t.Parallel()
			seed := int64(4000 + si)
			rng := rand.New(rand.NewSource(seed))
			area := geo.NewRect(geo.Pt(0, 0), geo.Pt(sc.side, sc.side))
			profiles, err := SynthesizeLegitimate(SynthConfig{
				N: sc.n, Area: area, Seed: seed, DSRCRange: sc.rangeM,
			})
			if err != nil {
				t.Fatal(err)
			}
			if sc.cluster > 0 {
				profiles = append(profiles, stackedCluster(t, area.Center(), sc.cluster, 0, rng)...)
			}
			if sc.fpHeavy {
				for _, p := range profiles {
					pollute(p, 1500, rng)
				}
			}
			MarkTrustedNearest(profiles, area.Center())

			// Arbitrary interleaving: a random permutation of the
			// profiles, ingested through a random mix of Add and
			// AddBatch calls with random batch sizes.
			perm := make([]*vp.Profile, len(profiles))
			for i, j := range rng.Perm(len(profiles)) {
				perm[i] = profiles[j]
			}
			b := NewIncrementalBuilder(IncrementalConfig{Minute: 0, DSRCRange: sc.rangeM})
			for off := 0; off < len(perm); {
				if rng.Intn(2) == 0 {
					if _, err := b.Add(perm[off]); err != nil {
						t.Fatal(err)
					}
					off++
					continue
				}
				size := 1 + rng.Intn(17)
				if off+size > len(perm) {
					size = len(perm) - off
				}
				if _, err := b.AddBatch(perm[off : off+size]); err != nil {
					t.Fatal(err)
				}
				off += size
			}
			if b.Len() != len(perm) {
				t.Fatalf("builder holds %d profiles, ingested %d", b.Len(), len(perm))
			}

			site := geo.RectAround(area.Center(), 200)
			inc, err := b.ViewmapFor(site, 0)
			if err != nil {
				t.Fatal(err)
			}
			batch, err := Build(perm, BuildConfig{Site: site, Minute: 0, DSRCRange: sc.rangeM})
			if err != nil {
				t.Fatal(err)
			}
			if inc.Len() != batch.Len() {
				t.Fatalf("incremental admits %d members, batch %d", inc.Len(), batch.Len())
			}
			for i := range batch.Profiles {
				if inc.Profiles[i] != batch.Profiles[i] {
					t.Fatalf("member order diverges at node %d", i)
				}
			}
			adjEqual(t, "incremental vs batch", inc.Adj, batch.Adj)
			if fmt.Sprint(inc.Trusted) != fmt.Sprint(batch.Trusted) {
				t.Fatalf("trusted sets diverge: %v vs %v", inc.Trusted, batch.Trusted)
			}
			if inc.Coverage != batch.Coverage {
				t.Fatalf("coverage diverges: %+v vs %+v", inc.Coverage, batch.Coverage)
			}
		})
	}
}

// TestIncrementalAdmissionRules pins the ingest-side admission rules to
// Build's: wrong minutes are hard errors, duplicates and implausible
// trajectories are silently dropped.
func TestIncrementalAdmissionRules(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	b := NewIncrementalBuilder(IncrementalConfig{Minute: 3, RequirePlausible: true})

	track := make([]geo.Point, 60)
	for i := range track {
		track[i] = geo.Pt(float64(i)*10, 0)
	}
	p, err := FabricateProfile(track, 3, 0, rng)
	if err != nil {
		t.Fatal(err)
	}
	if ok, err := b.Add(p); err != nil || !ok {
		t.Fatalf("Add = (%v, %v), want accepted", ok, err)
	}
	if ok, err := b.Add(p); err != nil || ok {
		t.Fatalf("duplicate Add = (%v, %v), want dropped without error", ok, err)
	}

	wrong, err := FabricateProfile(track, 4, 0, rng)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := b.Add(wrong); err == nil {
		t.Fatal("wrong-minute Add must error")
	}

	teleport := make([]geo.Point, 60)
	for i := range teleport {
		teleport[i] = geo.Pt(float64(i)*1000, 0) // 1000 m/s
	}
	tp, err := FabricateProfile(teleport, 3, 0, rng)
	if err != nil {
		t.Fatal(err)
	}
	if ok, err := b.Add(tp); err != nil || ok {
		t.Fatalf("implausible Add = (%v, %v), want dropped without error", ok, err)
	}
	if b.Len() != 1 {
		t.Fatalf("builder holds %d profiles, want 1", b.Len())
	}
	if b.Epoch() != 1 {
		t.Fatalf("epoch = %d, want 1 (only accepted ingests advance it)", b.Epoch())
	}
}

// TestIncrementalViewmapImmutableAfterAdd verifies that a viewmap
// extracted from the builder is unaffected by later ingests — the
// property the server's epoch-keyed cache relies on.
func TestIncrementalViewmapImmutableAfterAdd(t *testing.T) {
	area := geo.NewRect(geo.Pt(0, 0), geo.Pt(2000, 2000))
	profiles, err := SynthesizeLegitimate(SynthConfig{N: 120, Area: area, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	MarkTrustedNearest(profiles[:100], area.Center())
	b := NewIncrementalBuilder(IncrementalConfig{Minute: 0})
	if _, err := b.AddBatch(profiles[:100]); err != nil {
		t.Fatal(err)
	}
	site := geo.RectAround(area.Center(), 300)
	vm, err := b.ViewmapFor(site, 0)
	if err != nil {
		t.Fatal(err)
	}
	members, edges := vm.Len(), vm.NumEdges()
	snapshot := fmt.Sprint(vm.Adj)
	if _, err := b.AddBatch(profiles[100:]); err != nil {
		t.Fatal(err)
	}
	if vm.Len() != members || vm.NumEdges() != edges || fmt.Sprint(vm.Adj) != snapshot {
		t.Fatal("extracted viewmap mutated by later ingest")
	}
	vm2, err := b.ViewmapFor(site, 0)
	if err != nil {
		t.Fatal(err)
	}
	if vm2.Len() < vm.Len() {
		t.Fatalf("re-extracted viewmap shrank: %d -> %d", vm.Len(), vm2.Len())
	}
}
