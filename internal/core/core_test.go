package core

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"viewmap/internal/geo"
	"viewmap/internal/vd"
	"viewmap/internal/vp"
)

// stationary returns a 60-sample parked track at p.
func stationary(p geo.Point) []geo.Point {
	out := make([]geo.Point, vd.SegmentSeconds)
	for i := range out {
		out[i] = p
	}
	return out
}

// chainViewmap builds a line of n profiles spaced gap metres apart,
// linked consecutively, with node 0 trusted, and returns the viewmap.
func chainViewmap(t testing.TB, n int, gap float64) *Viewmap {
	t.Helper()
	rng := rand.New(rand.NewSource(7))
	profiles := make([]*vp.Profile, n)
	for i := 0; i < n; i++ {
		p, err := FabricateProfile(stationary(geo.Pt(float64(i)*gap, 0)), 0, 0, rng)
		if err != nil {
			t.Fatal(err)
		}
		profiles[i] = p
	}
	for i := 0; i+1 < n; i++ {
		if err := vp.LinkMutually(profiles[i], profiles[i+1]); err != nil {
			t.Fatal(err)
		}
	}
	profiles[0].Trusted = true
	vm, err := Build(profiles, BuildConfig{
		Site:      geo.RectAround(geo.Pt(float64(n-1)*gap, 0), 50),
		Minute:    0,
		DSRCRange: gap + 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	return vm
}

func TestBuildChain(t *testing.T) {
	vm := chainViewmap(t, 5, 100)
	if vm.Len() != 5 {
		t.Fatalf("viewmap has %d members, want 5", vm.Len())
	}
	if vm.NumEdges() != 4 {
		t.Errorf("viewmap has %d edges, want 4", vm.NumEdges())
	}
	if len(vm.Trusted) != 1 || vm.Trusted[0] != 0 {
		t.Errorf("Trusted = %v, want [0]", vm.Trusted)
	}
	hops := vm.HopsFromTrusted()
	for i, h := range hops {
		if h != i {
			t.Errorf("hops[%d] = %d, want %d", i, h, i)
		}
	}
}

func TestBuildRequiresTrusted(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	p, err := FabricateProfile(stationary(geo.Pt(0, 0)), 0, 0, rng)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Build([]*vp.Profile{p}, BuildConfig{Site: geo.RectAround(geo.Pt(0, 0), 10), Minute: 0}); err == nil {
		t.Error("Build without a trusted VP should fail")
	}
}

func TestBuildFiltersByMinute(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	trusted, _ := FabricateProfile(stationary(geo.Pt(0, 0)), 0, 0, rng)
	trusted.Trusted = true
	wrongMinute, _ := FabricateProfile(stationary(geo.Pt(10, 0)), 1, 0, rng)
	vm, err := Build([]*vp.Profile{trusted, wrongMinute}, BuildConfig{
		Site: geo.RectAround(geo.Pt(0, 0), 50), Minute: 0,
	})
	if err != nil {
		t.Fatal(err)
	}
	if vm.Len() != 1 {
		t.Errorf("viewmap should only hold minute-0 profiles, got %d", vm.Len())
	}
}

func TestBuildCoverageEncompassesSiteAndTrusted(t *testing.T) {
	// Trusted VP 3 km from the site (the paper's Fig. 6 setting).
	rng := rand.New(rand.NewSource(3))
	trusted, _ := FabricateProfile(stationary(geo.Pt(3000, 0)), 0, 0, rng)
	trusted.Trusted = true
	nearSite, _ := FabricateProfile(stationary(geo.Pt(0, 0)), 0, 0, rng)
	farAway, _ := FabricateProfile(stationary(geo.Pt(100000, 0)), 0, 0, rng)
	vm, err := Build([]*vp.Profile{trusted, nearSite, farAway}, BuildConfig{
		Site: geo.RectAround(geo.Pt(0, 0), 100), Minute: 0,
	})
	if err != nil {
		t.Fatal(err)
	}
	if vm.Len() != 2 {
		t.Errorf("viewmap should include site VP and trusted VP, exclude far VP: %d members", vm.Len())
	}
	if !vm.Coverage.Contains(geo.Pt(3000, 0)) || !vm.Coverage.Contains(geo.Pt(0, 0)) {
		t.Error("coverage must encompass both the site and the trusted VP")
	}
}

func TestBuildDropsImplausibleWhenRequired(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	trusted, _ := FabricateProfile(stationary(geo.Pt(0, 0)), 0, 0, rng)
	trusted.Trusted = true
	teleport := stationary(geo.Pt(10, 0))
	teleport[30] = geo.Pt(50000, 0)
	cheat, _ := FabricateProfile(teleport, 0, 0, rng)
	vm, err := Build([]*vp.Profile{trusted, cheat}, BuildConfig{
		Site: geo.RectAround(geo.Pt(0, 0), 100), Minute: 0, RequirePlausible: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if vm.Len() != 1 {
		t.Errorf("implausible trajectory should be dropped, got %d members", vm.Len())
	}
}

func TestTrustRankChainDecay(t *testing.T) {
	vm := chainViewmap(t, 6, 100)
	scores, err := vm.TrustRank(TrustRankConfig{})
	if err != nil {
		t.Fatal(err)
	}
	// Trust decays along the chain away from the trusted node 0. The
	// trusted node's immediate neighbor may edge slightly ahead of it
	// (the degree-1 endpoint returns all its flow), so assert decay
	// from node 1 onward and dominance of the head over the tail.
	if scores[0] <= scores[2] {
		t.Errorf("trusted node should outrank distant nodes: %v", scores)
	}
	for i := 1; i+1 < 4; i++ {
		if scores[i] <= scores[i+1] {
			t.Errorf("scores should decay along the chain: %v", scores)
		}
	}
	// All scores positive on a connected graph.
	for i, s := range scores {
		if s <= 0 {
			t.Errorf("score[%d] = %v, want positive", i, s)
		}
	}
}

func TestTrustRankScoresSumToAtMostOne(t *testing.T) {
	vm := chainViewmap(t, 8, 100)
	scores, err := vm.TrustRank(TrustRankConfig{})
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	for _, s := range scores {
		sum += s
	}
	if sum > 1+1e-6 {
		t.Errorf("score sum = %v, want <= 1", sum)
	}
	if sum < 0.5 {
		t.Errorf("score sum = %v suspiciously low for a connected graph", sum)
	}
}

func TestTrustRankLemma1Bound(t *testing.T) {
	// Sum of scores at distance >= L from the trusted VP is at most
	// delta^L.
	vm := chainViewmap(t, 10, 100)
	scores, err := vm.TrustRank(TrustRankConfig{})
	if err != nil {
		t.Fatal(err)
	}
	hops := vm.HopsFromTrusted()
	for L := 1; L <= 5; L++ {
		var far []int
		for i, h := range hops {
			if h >= L || h == -1 {
				far = append(far, i)
			}
		}
		if got, bound := SumScores(scores, far), Lemma1Bound(DefaultDamping, L); got > bound+1e-9 {
			t.Errorf("Lemma 1 violated at L=%d: sum %v > delta^L %v", L, got, bound)
		}
	}
}

func TestTrustRankValidation(t *testing.T) {
	vm := chainViewmap(t, 3, 100)
	if _, err := vm.TrustRank(TrustRankConfig{Damping: 1.5}); err == nil {
		t.Error("damping outside (0,1) should fail")
	}
	empty := &Viewmap{}
	if _, err := empty.TrustRank(TrustRankConfig{}); err == nil {
		t.Error("empty viewmap should fail")
	}
	noTrust := chainViewmap(t, 3, 100)
	noTrust.Trusted = nil
	if _, err := noTrust.TrustRank(TrustRankConfig{}); err == nil {
		t.Error("viewmap without trusted VP should fail")
	}
}

// twoLayerViewmap models the Fig. 7 attack: a legitimate single layer
// containing the trusted VP, plus a fake layer hanging off one
// attacker-owned legitimate VP, overlapping the site.
func twoLayerViewmap(t testing.TB, legit, fake int) (*Viewmap, map[vd.VPID]bool, geo.Rect) {
	t.Helper()
	rng := rand.New(rand.NewSource(11))
	site := geo.RectAround(geo.Pt(900, 0), 120)
	var profiles []*vp.Profile
	isFake := make(map[vd.VPID]bool)

	// Legitimate chain from the trusted VP through the site.
	for i := 0; i < legit; i++ {
		p, err := FabricateProfile(stationary(geo.Pt(float64(i)*150, 0)), 0, 0, rng)
		if err != nil {
			t.Fatal(err)
		}
		profiles = append(profiles, p)
	}
	for i := 0; i+1 < legit; i++ {
		vp.LinkMutually(profiles[i], profiles[i+1])
	}
	profiles[0].Trusted = true

	// The attacker owns one legitimate VP (the last chain node, inside
	// coverage) and hangs fake VPs off it, all claiming the site.
	attackerOwn := profiles[legit-1]
	for i := 0; i < fake; i++ {
		p, err := FabricateProfile(stationary(geo.Pt(900+float64(i%10)*10, 30)), 0, 0, rng)
		if err != nil {
			t.Fatal(err)
		}
		isFake[p.ID()] = true
		vp.LinkMutually(attackerOwn, p)
		// Fakes also link among themselves to share trust.
		if i > 0 {
			vp.LinkMutually(profiles[len(profiles)-1], p)
		}
		profiles = append(profiles, p)
	}
	vm, err := Build(profiles, BuildConfig{Site: site, Minute: 0, DSRCRange: 160})
	if err != nil {
		t.Fatal(err)
	}
	return vm, isFake, site
}

func TestVerifySiteRejectsFakeLayer(t *testing.T) {
	vm, isFake, site := twoLayerViewmap(t, 8, 20)
	verdict, err := vm.VerifySite(vm.InSite(site), TrustRankConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if verdict.Anchor < 0 {
		t.Fatal("site should contain VPs")
	}
	if isFake[vm.Profiles[verdict.Anchor].ID()] {
		t.Error("anchor should be a legitimate VP")
	}
	for _, i := range verdict.Legitimate {
		if isFake[vm.Profiles[i].ID()] {
			t.Errorf("fake VP %d marked legitimate", i)
		}
	}
	if len(verdict.Legitimate) == 0 {
		t.Error("some legitimate VPs should be verified")
	}
}

func TestVerifySiteEmptySite(t *testing.T) {
	vm := chainViewmap(t, 4, 100)
	verdict, err := vm.VerifySite(nil, TrustRankConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if verdict.Anchor != -1 || len(verdict.Legitimate) != 0 {
		t.Error("empty site should yield empty verdict")
	}
}

func TestVerdictLegitimateIDs(t *testing.T) {
	vm := chainViewmap(t, 5, 100)
	site := geo.RectAround(geo.Pt(400, 0), 150)
	verdict, err := vm.VerifySite(vm.InSite(site), TrustRankConfig{})
	if err != nil {
		t.Fatal(err)
	}
	ids := verdict.LegitimateIDs(vm)
	if len(ids) != len(verdict.Legitimate) {
		t.Error("LegitimateIDs length mismatch")
	}
}

func TestComponentsAndIsolated(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	a, _ := FabricateProfile(stationary(geo.Pt(0, 0)), 0, 0, rng)
	b, _ := FabricateProfile(stationary(geo.Pt(100, 0)), 0, 0, rng)
	c, _ := FabricateProfile(stationary(geo.Pt(200, 0)), 0, 0, rng)
	vp.LinkMutually(a, b)
	a.Trusted = true
	vm, err := Build([]*vp.Profile{a, b, c}, BuildConfig{
		Site: geo.RectAround(geo.Pt(0, 0), 300), Minute: 0, DSRCRange: 150,
	})
	if err != nil {
		t.Fatal(err)
	}
	comps := vm.Components()
	if len(comps) != 2 {
		t.Errorf("components = %d, want 2", len(comps))
	}
	iso := vm.Isolated()
	if len(iso) != 1 {
		t.Errorf("isolated = %v, want one node", iso)
	}
}

func TestNodeByID(t *testing.T) {
	vm := chainViewmap(t, 3, 100)
	id := vm.Profiles[1].ID()
	if i, ok := vm.NodeByID(id); !ok || i != 1 {
		t.Errorf("NodeByID = %d,%v want 1,true", i, ok)
	}
	if _, ok := vm.NodeByID(vd.VPID{}); ok {
		t.Error("unknown ID should not resolve")
	}
}

func TestDOTOutput(t *testing.T) {
	vm := chainViewmap(t, 3, 100)
	dot := vm.DOT("test")
	if !strings.Contains(dot, "graph \"test\"") {
		t.Error("DOT should contain graph header")
	}
	if !strings.Contains(dot, "n0 -- n1") {
		t.Error("DOT should contain edges")
	}
	if !strings.Contains(dot, "color=red") {
		t.Error("DOT should highlight the trusted VP")
	}
}

func TestSynthesizeLegitimateConnectivity(t *testing.T) {
	area := geo.NewRect(geo.Pt(0, 0), geo.Pt(2000, 2000))
	profiles, err := SynthesizeLegitimate(SynthConfig{N: 120, Area: area, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if len(profiles) != 120 {
		t.Fatalf("got %d profiles", len(profiles))
	}
	MarkTrustedNearest(profiles, geo.Pt(1000, 1000))
	vm, err := Build(profiles, BuildConfig{
		Site: geo.RectAround(geo.Pt(1000, 1000), 200), Minute: 0,
	})
	if err != nil {
		t.Fatal(err)
	}
	// At density 120 VPs / 4 km² with 400 m range the graph should be
	// essentially one giant component.
	comps := vm.Components()
	largest := 0
	for _, c := range comps {
		if len(c) > largest {
			largest = len(c)
		}
	}
	if frac := float64(largest) / float64(vm.Len()); frac < 0.9 {
		t.Errorf("largest component holds %.0f%% of VPs, want >= 90%%", frac*100)
	}
	// Verification on an attack-free viewmap should mark in-site VPs
	// legitimate.
	site := geo.RectAround(geo.Pt(1000, 1000), 200)
	verdict, err := vm.VerifySite(vm.InSite(site), TrustRankConfig{})
	if err != nil {
		t.Fatal(err)
	}
	inSite := vm.InSite(site)
	if len(inSite) == 0 {
		t.Skip("no VPs wandered into the site for this seed")
	}
	if frac := float64(len(verdict.Legitimate)) / float64(len(inSite)); frac < 0.8 {
		t.Errorf("only %.0f%% of in-site VPs verified on attack-free viewmap", frac*100)
	}
}

func TestSynthesizeValidation(t *testing.T) {
	if _, err := SynthesizeLegitimate(SynthConfig{N: 0, Area: geo.NewRect(geo.Pt(0, 0), geo.Pt(1, 1))}); err == nil {
		t.Error("N=0 should fail")
	}
	if _, err := SynthesizeLegitimate(SynthConfig{N: 5, Area: geo.Rect{}}); err == nil {
		t.Error("degenerate area should fail")
	}
}

func TestFabricateProfileValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	if _, err := FabricateProfile(make([]geo.Point, 10), 0, 0, rng); err == nil {
		t.Error("short track should fail")
	}
}

func TestRandomTrackStaysInArea(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	area := geo.NewRect(geo.Pt(0, 0), geo.Pt(500, 500))
	for trial := 0; trial < 50; trial++ {
		track := RandomTrack(area, 20, rng)
		if len(track) != vd.SegmentSeconds {
			t.Fatal("track length wrong")
		}
		for _, p := range track {
			if !area.Inflate(25).Contains(p) {
				t.Fatalf("track left the area: %v", p)
			}
		}
	}
}

func TestLemma1Bound(t *testing.T) {
	if Lemma1Bound(0.8, 0) != 1 {
		t.Error("delta^0 = 1")
	}
	if math.Abs(Lemma1Bound(0.8, 2)-0.64) > 1e-12 {
		t.Error("delta^2 = 0.64")
	}
}

func BenchmarkBuildViewmap200(b *testing.B) {
	area := geo.NewRect(geo.Pt(0, 0), geo.Pt(2000, 2000))
	profiles, err := SynthesizeLegitimate(SynthConfig{N: 200, Area: area, Seed: 3})
	if err != nil {
		b.Fatal(err)
	}
	MarkTrustedNearest(profiles, geo.Pt(1000, 1000))
	cfg := BuildConfig{Site: geo.RectAround(geo.Pt(1000, 1000), 200), Minute: 0}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Build(profiles, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTrustRank200(b *testing.B) {
	area := geo.NewRect(geo.Pt(0, 0), geo.Pt(2000, 2000))
	profiles, err := SynthesizeLegitimate(SynthConfig{N: 200, Area: area, Seed: 3})
	if err != nil {
		b.Fatal(err)
	}
	MarkTrustedNearest(profiles, geo.Pt(1000, 1000))
	vm, err := Build(profiles, BuildConfig{Site: geo.RectAround(geo.Pt(1000, 1000), 200), Minute: 0})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := vm.TrustRank(TrustRankConfig{}); err != nil {
			b.Fatal(err)
		}
	}
}

// Property (testing/quick): on random geometric viewmaps, TrustRank
// scores are non-negative, sum to at most 1, and obey the Lemma 1
// bound at every link distance.
func TestTrustRankInvariantsProperty(t *testing.T) {
	prop := func(seed int64, n8 uint8) bool {
		n := 30 + int(n8%120)
		area := geo.NewRect(geo.Pt(0, 0), geo.Pt(2500, 2500))
		profiles, err := SynthesizeLegitimate(SynthConfig{N: n, Area: area, Seed: seed})
		if err != nil {
			return false
		}
		MarkTrustedNearest(profiles, geo.Pt(1250, 1250))
		vm, err := Build(profiles, BuildConfig{
			Site: geo.RectAround(geo.Pt(1250, 1250), 200), Minute: 0,
		})
		if err != nil {
			return false
		}
		scores, err := vm.TrustRank(TrustRankConfig{})
		if err != nil {
			return false
		}
		var sum float64
		for _, s := range scores {
			if s < 0 {
				return false
			}
			sum += s
		}
		if sum > 1+1e-6 {
			return false
		}
		hops := vm.HopsFromTrusted()
		for L := 1; L <= 6; L++ {
			var far []int
			for i, h := range hops {
				if h >= L || h == -1 {
					far = append(far, i)
				}
			}
			if SumScores(scores, far) > Lemma1Bound(DefaultDamping, L)+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}

// Property: the verdict of Algorithm 1 is deterministic — identical
// inputs produce identical legitimate sets.
func TestVerifySiteDeterministicProperty(t *testing.T) {
	prop := func(seed int64) bool {
		area := geo.NewRect(geo.Pt(0, 0), geo.Pt(2000, 2000))
		profiles, err := SynthesizeLegitimate(SynthConfig{N: 80, Area: area, Seed: seed})
		if err != nil {
			return false
		}
		MarkTrustedNearest(profiles, geo.Pt(1000, 1000))
		site := geo.RectAround(geo.Pt(1000, 1000), 250)
		vm, err := Build(profiles, BuildConfig{Site: site, Minute: 0})
		if err != nil {
			return false
		}
		v1, err := vm.VerifySite(vm.InSite(site), TrustRankConfig{})
		if err != nil {
			return false
		}
		v2, err := vm.VerifySite(vm.InSite(site), TrustRankConfig{})
		if err != nil {
			return false
		}
		if v1.Anchor != v2.Anchor || len(v1.Legitimate) != len(v2.Legitimate) {
			return false
		}
		for i := range v1.Legitimate {
			if v1.Legitimate[i] != v2.Legitimate[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 10}); err != nil {
		t.Error(err)
	}
}
