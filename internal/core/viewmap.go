// Package core implements the paper's primary contribution: viewmap
// construction from anonymized view profiles (Section 5.2.1) and
// TrustRank-based view-profile verification (Section 5.2.2,
// Algorithm 1).
//
// A viewmap is an undirected graph over the VPs active in one unit-time
// (1-minute) window inside a coverage area that encompasses the
// investigation site and the nearest trusted VP. Edges — viewlinks —
// connect VPs that pass the two-way linkage test: time-aligned
// proximity within DSRC range plus mutual Bloom-filter membership of
// each other's view digests. Trust scores propagate from trusted VPs
// over this structure; fake VPs injected by attackers can only attach
// to the attackers' own legitimate VPs, forming secondary layers that
// receive little trust.
package core

import (
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"viewmap/internal/geo"
	"viewmap/internal/vd"
	"viewmap/internal/vp"
)

// DefaultDSRCRange is the paper's nominal DSRC reach in metres.
const DefaultDSRCRange = 400

// Viewmap is the visibility graph for one minute around an incident.
type Viewmap struct {
	// Profiles are the member VPs; index positions are node ids.
	Profiles []*vp.Profile
	// Adj is the adjacency list of viewlinks.
	Adj [][]int
	// Trusted lists node ids of trusted VPs.
	Trusted []int
	// Coverage is the geographic span of the viewmap.
	Coverage geo.Rect
	// Minute is the unit-time window the viewmap covers.
	Minute int64

	index map[vd.VPID]int

	// csrOff/csrAdj are the flat CSR mirror of Adj: node u's neighbors
	// are csrAdj[csrOff[u]:csrOff[u+1]]. The graph traversals —
	// TrustRank's power iteration, VerifySite's BFS, HopsFromTrusted,
	// Components — walk this contiguous layout instead of chasing
	// per-node slice headers. Build populates it after linking;
	// ensureCSR builds it lazily (once, so concurrent readers are
	// safe) for viewmaps assembled by hand, as tests do. Adj must not
	// be mutated after the first traversal; nothing in the repo does.
	csrOnce sync.Once
	csrOff  []int32
	csrAdj  []int32
}

// ensureCSR mirrors Adj into the flat CSR arrays if not already done.
func (vm *Viewmap) ensureCSR() {
	vm.csrOnce.Do(func() {
		n := len(vm.Profiles)
		off := make([]int32, n+1)
		total := 0
		for i, a := range vm.Adj {
			total += len(a)
			off[i+1] = int32(total)
		}
		adj := make([]int32, total)
		pos := 0
		for _, a := range vm.Adj {
			for _, v := range a {
				adj[pos] = int32(v)
				pos++
			}
		}
		vm.csrOff, vm.csrAdj = off, adj
	})
}

// BuildConfig parameterizes viewmap construction.
type BuildConfig struct {
	// Site is the investigation site.
	Site geo.Rect
	// Minute selects the unit-time window.
	Minute int64
	// DSRCRange is the viewlink proximity radius; zero selects the
	// 400 m default.
	DSRCRange float64
	// CoverageMargin inflates the coverage area beyond the hull of the
	// site and the selected trusted VP trajectory; zero selects the
	// DSRC range.
	CoverageMargin float64
	// RequirePlausible drops profiles whose trajectories exceed
	// drivable speeds before linking (on by default in the server;
	// exposed here for experiments).
	RequirePlausible bool
}

// Build constructs the viewmap for cfg from the candidate profiles
// (the VP database's holdings for the minute). Per Section 5.2.1 it
// selects the trusted VP closest to the site, spans a coverage area
// encompassing both, admits every VP whose claimed trajectory enters
// the coverage during the minute, and creates viewlinks between
// two-way-validated neighbor VPs.
func Build(profiles []*vp.Profile, cfg BuildConfig) (*Viewmap, error) {
	if cfg.DSRCRange <= 0 {
		cfg.DSRCRange = DefaultDSRCRange
	}
	if cfg.CoverageMargin <= 0 {
		cfg.CoverageMargin = cfg.DSRCRange
	}

	// Select the trusted VP(s) nearest to the site among this minute's
	// profiles. Trusted VPs need not be near the incident; the coverage
	// stretches to reach them.
	siteCenter := cfg.Site.Center()
	bestDist := math.Inf(1)
	var nearestTrusted *vp.Profile
	var minuteProfiles []*vp.Profile
	for _, p := range profiles {
		if p.Minute() != cfg.Minute {
			continue
		}
		if cfg.RequirePlausible && !p.PlausibleTrajectory() {
			continue
		}
		minuteProfiles = append(minuteProfiles, p)
		if !p.Trusted {
			continue
		}
		for i := range p.VDs {
			if d := p.VDs[i].L.Dist(siteCenter); d < bestDist {
				bestDist = d
				nearestTrusted = p
			}
		}
	}
	if nearestTrusted == nil {
		return nil, ErrNoTrusted
	}

	// Coverage: hull of the site and the trusted trajectory, inflated.
	cover := cfg.Site
	for i := range nearestTrusted.VDs {
		cover = expand(cover, nearestTrusted.VDs[i].L)
	}
	cover = cover.Inflate(cfg.CoverageMargin)

	vm := &Viewmap{
		Coverage: cover,
		Minute:   cfg.Minute,
		index:    make(map[vd.VPID]int),
	}
	for _, p := range minuteProfiles {
		if !p.EntersArea(cover) {
			continue
		}
		id := p.ID()
		if _, dup := vm.index[id]; dup {
			continue // identifier collision: keep first, drop clone
		}
		vm.index[id] = len(vm.Profiles)
		vm.Profiles = append(vm.Profiles, p)
	}
	vm.Adj = make([][]int, len(vm.Profiles))
	for i, p := range vm.Profiles {
		if p.Trusted {
			vm.Trusted = append(vm.Trusted, i)
		}
	}

	vm.link(cfg.DSRCRange)
	vm.ensureCSR()
	return vm, nil
}

func expand(r geo.Rect, p geo.Point) geo.Rect {
	if p.X < r.Min.X {
		r.Min.X = p.X
	}
	if p.Y < r.Min.Y {
		r.Min.Y = p.Y
	}
	if p.X > r.Max.X {
		r.Max.X = p.X
	}
	if p.Y > r.Max.Y {
		r.Max.Y = p.Y
	}
	return r
}

// serialLinkThreshold is the member count below which candidate-pair
// testing runs on the calling goroutine; tiny viewmaps don't repay
// worker startup.
const serialLinkThreshold = 64

// boxDist2 returns the squared distance between two axis-aligned boxes
// (zero when they overlap) — a lower bound on any pair of contained
// points, used to prune candidates before the per-second scan.
func boxDist2(a, b geo.Rect) float64 {
	var dx, dy float64
	if d := b.Min.X - a.Max.X; d > 0 {
		dx = d
	} else if d := a.Min.X - b.Max.X; d > 0 {
		dx = d
	}
	if d := b.Min.Y - a.Max.Y; d > 0 {
		dy = d
	} else if d := a.Min.Y - b.Max.Y; d > 0 {
		dy = d
	}
	return dx*dx + dy*dy
}

// linkState carries the shared read-only inputs of one link run. The
// grid holds each profile's *home* cells only (the cells its
// trajectory bounding box overlaps); range inflation happens on the
// query side, where an anchor scans the cells its box inflated by the
// DSRC range overlaps.
type linkState struct {
	profiles []*vp.Profile
	boxes    []geo.Rect
	grid     *geo.CellGrid
	rangeM   float64
}

// anchorEdges appends to out the neighbors b > a that pass the two-way
// linkage test, deduplicating grid candidates with the epoch-stamped
// visited array (stamp a+1: unique per anchor, so the array is never
// cleared between anchors).
func (ls *linkState) anchorEdges(a int, visited []int32, out []int32) []int32 {
	stamp := int32(a + 1)
	range2 := ls.rangeM * ls.rangeM
	pa, ba := ls.profiles[a], ls.boxes[a]
	cx0, cx1, cy0, cy1 := ls.grid.Span(ba, ls.rangeM)
	for cy := cy0; cy <= cy1; cy++ {
		for cx := cx0; cx <= cx1; cx++ {
			for _, b32 := range ls.grid.ItemsIn(cx, cy) {
				b := int(b32)
				if b <= a || visited[b] == stamp {
					continue
				}
				visited[b] = stamp
				if boxDist2(ba, ls.boxes[b]) > range2 {
					continue
				}
				if vp.MutualNeighborsLazy(pa, ls.profiles[b], ls.rangeM) {
					out = append(out, b32)
				}
			}
		}
	}
	return out
}

// link creates viewlinks between all two-way-validated pairs. It is the
// repo's hottest path (the Fig. 12/13/22 sweeps rebuild viewmaps
// thousands of times), so everything per-pair is flat: a dense CSR cell
// grid over trajectory bounding boxes enumerates candidates, an
// epoch-stamped visited array replaces the pair-dedup hash set, Bloom
// digests derive lazily per member (first/last fast path, interior on
// demand — see vp.MutualNeighborsLazy), and anchors are tested in
// parallel across a worker pool. Each unordered pair is discovered
// exactly once (by its lower-id anchor), so the per-anchor edge lists —
// and therefore the final adjacency — are identical to the retained
// linkNaive reference regardless of worker interleaving.
func (vm *Viewmap) link(rangeM float64) {
	n := len(vm.Profiles)
	if n < 2 {
		return
	}
	ls := &linkState{
		profiles: vm.Profiles,
		boxes:    make([]geo.Rect, n),
		rangeM:   rangeM,
	}
	if ls.rangeM <= 0 {
		ls.rangeM = DefaultDSRCRange
	}
	for i, p := range vm.Profiles {
		b := geo.Rect{Min: p.VDs[0].L, Max: p.VDs[0].L}
		for j := range p.VDs {
			b = expand(b, p.VDs[j].L)
		}
		ls.boxes[i] = b
	}
	ls.grid = geo.NewCellGrid(ls.boxes, ls.rangeM, geo.DefaultMaxGridCells)

	// edgesFrom[a] holds a's neighbors b > a; each slot is written by
	// exactly one worker, so the merge needs no locks and is
	// deterministic.
	edgesFrom := make([][]int32, n)
	workers := runtime.GOMAXPROCS(0)
	if workers > n/serialLinkThreshold {
		workers = n / serialLinkThreshold
	}
	if workers <= 1 {
		visited := make([]int32, n)
		for a := 0; a < n; a++ {
			if out := ls.anchorEdges(a, visited, nil); len(out) > 0 {
				edgesFrom[a] = out
			}
		}
	} else {
		const block = 32 // anchors claimed per grab
		var cursor atomic.Int64
		var wg sync.WaitGroup
		wg.Add(workers)
		for w := 0; w < workers; w++ {
			go func() {
				defer wg.Done()
				visited := make([]int32, n)
				for {
					lo := int(cursor.Add(block)) - block
					if lo >= n {
						return
					}
					hi := min(lo+block, n)
					for a := lo; a < hi; a++ {
						if out := ls.anchorEdges(a, visited, nil); len(out) > 0 {
							edgesFrom[a] = out
						}
					}
				}
			}()
		}
		wg.Wait()
	}
	for a, nbrs := range edgesFrom {
		for _, b := range nbrs {
			vm.Adj[a] = append(vm.Adj[a], int(b))
			vm.Adj[b] = append(vm.Adj[b], a)
		}
	}
	for i := range vm.Adj {
		sort.Ints(vm.Adj[i])
	}
}

// linkNaive is the O(n²) reference linker: the executable specification
// of Section 5.2.1's two-way linkage test. The optimized link must
// produce exactly this adjacency; the equivalence property test in
// viewmap_equiv_test.go holds the two together across randomized
// arenas.
func (vm *Viewmap) linkNaive(rangeM float64) {
	if rangeM <= 0 {
		rangeM = DefaultDSRCRange
	}
	n := len(vm.Profiles)
	for a := 0; a < n; a++ {
		for b := a + 1; b < n; b++ {
			if vp.MutualNeighbors(vm.Profiles[a], vm.Profiles[b], rangeM) {
				vm.Adj[a] = append(vm.Adj[a], b)
				vm.Adj[b] = append(vm.Adj[b], a)
			}
		}
	}
	for i := range vm.Adj {
		sort.Ints(vm.Adj[i])
	}
}

// Len returns the number of member VPs.
func (vm *Viewmap) Len() int { return len(vm.Profiles) }

// NumEdges returns the number of viewlinks.
func (vm *Viewmap) NumEdges() int {
	total := 0
	for _, a := range vm.Adj {
		total += len(a)
	}
	return total / 2
}

// NodeByID returns the node index of a VP identifier.
func (vm *Viewmap) NodeByID(id vd.VPID) (int, bool) {
	i, ok := vm.index[id]
	return i, ok
}

// Degree returns the viewlink count of node i.
func (vm *Viewmap) Degree(i int) int { return len(vm.Adj[i]) }

// Isolated returns the node ids with no viewlinks — the non-member
// fraction Fig. 22f reports.
func (vm *Viewmap) Isolated() []int {
	var out []int
	for i, a := range vm.Adj {
		if len(a) == 0 {
			out = append(out, i)
		}
	}
	return out
}

// InSite returns the node ids whose claimed trajectories enter the
// given investigation site during the viewmap's minute.
func (vm *Viewmap) InSite(site geo.Rect) []int {
	var out []int
	for i, p := range vm.Profiles {
		if p.EntersArea(site) {
			out = append(out, i)
		}
	}
	return out
}

// HopsFromTrusted returns, for each node, the minimum link distance to
// any trusted VP (-1 when unreachable). Used by the Lemma 1 bound
// checks and the Fig. 12 attacker-position sweep.
func (vm *Viewmap) HopsFromTrusted() []int {
	vm.ensureCSR()
	dist := make([]int, len(vm.Profiles))
	for i := range dist {
		dist[i] = -1
	}
	queue := make([]int, 0, len(vm.Trusted))
	for _, t := range vm.Trusted {
		dist[t] = 0
		queue = append(queue, t)
	}
	for head := 0; head < len(queue); head++ {
		u := queue[head]
		for _, v := range vm.csrAdj[vm.csrOff[u]:vm.csrOff[u+1]] {
			if dist[v] == -1 {
				dist[v] = dist[u] + 1
				queue = append(queue, int(v))
			}
		}
	}
	return dist
}

// Components returns the connected components as slices of node ids.
func (vm *Viewmap) Components() [][]int {
	vm.ensureCSR()
	comp := make([]int, len(vm.Profiles))
	for i := range comp {
		comp[i] = -1
	}
	var out [][]int
	for i := range vm.Profiles {
		if comp[i] != -1 {
			continue
		}
		var cur []int
		stack := []int{i}
		comp[i] = len(out)
		for len(stack) > 0 {
			u := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			cur = append(cur, u)
			for _, v := range vm.csrAdj[vm.csrOff[u]:vm.csrOff[u+1]] {
				if comp[v] == -1 {
					comp[v] = len(out)
					stack = append(stack, int(v))
				}
			}
		}
		sort.Ints(cur)
		out = append(out, cur)
	}
	return out
}

// DOT renders the viewmap in Graphviz format, coloring trusted VPs,
// for the Fig. 21 visualizations.
func (vm *Viewmap) DOT(name string) string {
	var b []byte
	b = append(b, fmt.Sprintf("graph %q {\n  node [shape=point];\n", name)...)
	for i, p := range vm.Profiles {
		loc := p.InitialLocation()
		attr := ""
		if p.Trusted {
			attr = ", color=red, shape=circle"
		}
		b = append(b, fmt.Sprintf("  n%d [pos=\"%.1f,%.1f!\"%s];\n", i, loc.X, loc.Y, attr)...)
	}
	for i, adj := range vm.Adj {
		for _, j := range adj {
			if i < j {
				b = append(b, fmt.Sprintf("  n%d -- n%d;\n", i, j)...)
			}
		}
	}
	b = append(b, '}', '\n')
	return string(b)
}
