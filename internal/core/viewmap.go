// Package core implements the paper's primary contribution: viewmap
// construction from anonymized view profiles (Section 5.2.1) and
// TrustRank-based view-profile verification (Section 5.2.2,
// Algorithm 1).
//
// A viewmap is an undirected graph over the VPs active in one unit-time
// (1-minute) window inside a coverage area that encompasses the
// investigation site and the nearest trusted VP. Edges — viewlinks —
// connect VPs that pass the two-way linkage test: time-aligned
// proximity within DSRC range plus mutual Bloom-filter membership of
// each other's view digests. Trust scores propagate from trusted VPs
// over this structure; fake VPs injected by attackers can only attach
// to the attackers' own legitimate VPs, forming secondary layers that
// receive little trust.
package core

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"viewmap/internal/geo"
	"viewmap/internal/vd"
	"viewmap/internal/vp"
)

// DefaultDSRCRange is the paper's nominal DSRC reach in metres.
const DefaultDSRCRange = 400

// Viewmap is the visibility graph for one minute around an incident.
type Viewmap struct {
	// Profiles are the member VPs; index positions are node ids.
	Profiles []*vp.Profile
	// Adj is the adjacency list of viewlinks.
	Adj [][]int
	// Trusted lists node ids of trusted VPs.
	Trusted []int
	// Coverage is the geographic span of the viewmap.
	Coverage geo.Rect
	// Minute is the unit-time window the viewmap covers.
	Minute int64

	index map[vd.VPID]int
}

// BuildConfig parameterizes viewmap construction.
type BuildConfig struct {
	// Site is the investigation site.
	Site geo.Rect
	// Minute selects the unit-time window.
	Minute int64
	// DSRCRange is the viewlink proximity radius; zero selects the
	// 400 m default.
	DSRCRange float64
	// CoverageMargin inflates the coverage area beyond the hull of the
	// site and the selected trusted VP trajectory; zero selects the
	// DSRC range.
	CoverageMargin float64
	// RequirePlausible drops profiles whose trajectories exceed
	// drivable speeds before linking (on by default in the server;
	// exposed here for experiments).
	RequirePlausible bool
}

// Build constructs the viewmap for cfg from the candidate profiles
// (the VP database's holdings for the minute). Per Section 5.2.1 it
// selects the trusted VP closest to the site, spans a coverage area
// encompassing both, admits every VP whose claimed trajectory enters
// the coverage during the minute, and creates viewlinks between
// two-way-validated neighbor VPs.
func Build(profiles []*vp.Profile, cfg BuildConfig) (*Viewmap, error) {
	if cfg.DSRCRange <= 0 {
		cfg.DSRCRange = DefaultDSRCRange
	}
	if cfg.CoverageMargin <= 0 {
		cfg.CoverageMargin = cfg.DSRCRange
	}

	// Select the trusted VP(s) nearest to the site among this minute's
	// profiles. Trusted VPs need not be near the incident; the coverage
	// stretches to reach them.
	siteCenter := cfg.Site.Center()
	bestDist := math.Inf(1)
	var nearestTrusted *vp.Profile
	var minuteProfiles []*vp.Profile
	for _, p := range profiles {
		if p.Minute() != cfg.Minute {
			continue
		}
		if cfg.RequirePlausible && !p.PlausibleTrajectory() {
			continue
		}
		minuteProfiles = append(minuteProfiles, p)
		if !p.Trusted {
			continue
		}
		for i := range p.VDs {
			if d := p.VDs[i].L.Dist(siteCenter); d < bestDist {
				bestDist = d
				nearestTrusted = p
			}
		}
	}
	if nearestTrusted == nil {
		return nil, errors.New("core: no trusted VP available for this minute")
	}

	// Coverage: hull of the site and the trusted trajectory, inflated.
	cover := cfg.Site
	for i := range nearestTrusted.VDs {
		cover = expand(cover, nearestTrusted.VDs[i].L)
	}
	cover = cover.Inflate(cfg.CoverageMargin)

	vm := &Viewmap{
		Coverage: cover,
		Minute:   cfg.Minute,
		index:    make(map[vd.VPID]int),
	}
	for _, p := range minuteProfiles {
		if !p.EntersArea(cover) {
			continue
		}
		id := p.ID()
		if _, dup := vm.index[id]; dup {
			continue // identifier collision: keep first, drop clone
		}
		vm.index[id] = len(vm.Profiles)
		vm.Profiles = append(vm.Profiles, p)
	}
	vm.Adj = make([][]int, len(vm.Profiles))
	for i, p := range vm.Profiles {
		if p.Trusted {
			vm.Trusted = append(vm.Trusted, i)
		}
	}

	vm.link(cfg.DSRCRange)
	return vm, nil
}

func expand(r geo.Rect, p geo.Point) geo.Rect {
	if p.X < r.Min.X {
		r.Min.X = p.X
	}
	if p.Y < r.Min.Y {
		r.Min.Y = p.Y
	}
	if p.X > r.Max.X {
		r.Max.X = p.X
	}
	if p.Y > r.Max.Y {
		r.Max.Y = p.Y
	}
	return r
}

// link creates viewlinks between all two-way-validated pairs, using a
// uniform grid over trajectory bounding boxes to avoid the full O(n²)
// pair scan on large viewmaps.
func (vm *Viewmap) link(rangeM float64) {
	n := len(vm.Profiles)
	if n < 2 {
		return
	}
	// Bounding box per profile.
	boxes := make([]geo.Rect, n)
	for i, p := range vm.Profiles {
		b := geo.Rect{Min: p.VDs[0].L, Max: p.VDs[0].L}
		for j := range p.VDs {
			b = expand(b, p.VDs[j].L)
		}
		boxes[i] = b
	}
	cell := rangeM
	if cell <= 0 {
		cell = DefaultDSRCRange
	}
	grid := make(map[[2]int][]int)
	cellOf := func(x, y float64) (int, int) {
		return int(math.Floor(x / cell)), int(math.Floor(y / cell))
	}
	for i, b := range boxes {
		x0, y0 := cellOf(b.Min.X-rangeM, b.Min.Y-rangeM)
		x1, y1 := cellOf(b.Max.X+rangeM, b.Max.Y+rangeM)
		for cx := x0; cx <= x1; cx++ {
			for cy := y0; cy <= y1; cy++ {
				grid[[2]int{cx, cy}] = append(grid[[2]int{cx, cy}], i)
			}
		}
	}
	seen := make(map[[2]int]bool)
	for _, bucket := range grid {
		for ai := 0; ai < len(bucket); ai++ {
			for bi := ai + 1; bi < len(bucket); bi++ {
				a, b := bucket[ai], bucket[bi]
				if a > b {
					a, b = b, a
				}
				k := [2]int{a, b}
				if seen[k] {
					continue
				}
				seen[k] = true
				if vp.MutualNeighbors(vm.Profiles[a], vm.Profiles[b], rangeM) {
					vm.Adj[a] = append(vm.Adj[a], b)
					vm.Adj[b] = append(vm.Adj[b], a)
				}
			}
		}
	}
	for i := range vm.Adj {
		sort.Ints(vm.Adj[i])
	}
}

// Len returns the number of member VPs.
func (vm *Viewmap) Len() int { return len(vm.Profiles) }

// NumEdges returns the number of viewlinks.
func (vm *Viewmap) NumEdges() int {
	total := 0
	for _, a := range vm.Adj {
		total += len(a)
	}
	return total / 2
}

// NodeByID returns the node index of a VP identifier.
func (vm *Viewmap) NodeByID(id vd.VPID) (int, bool) {
	i, ok := vm.index[id]
	return i, ok
}

// Degree returns the viewlink count of node i.
func (vm *Viewmap) Degree(i int) int { return len(vm.Adj[i]) }

// Isolated returns the node ids with no viewlinks — the non-member
// fraction Fig. 22f reports.
func (vm *Viewmap) Isolated() []int {
	var out []int
	for i, a := range vm.Adj {
		if len(a) == 0 {
			out = append(out, i)
		}
	}
	return out
}

// InSite returns the node ids whose claimed trajectories enter the
// given investigation site during the viewmap's minute.
func (vm *Viewmap) InSite(site geo.Rect) []int {
	var out []int
	for i, p := range vm.Profiles {
		if p.EntersArea(site) {
			out = append(out, i)
		}
	}
	return out
}

// HopsFromTrusted returns, for each node, the minimum link distance to
// any trusted VP (-1 when unreachable). Used by the Lemma 1 bound
// checks and the Fig. 12 attacker-position sweep.
func (vm *Viewmap) HopsFromTrusted() []int {
	dist := make([]int, len(vm.Profiles))
	for i := range dist {
		dist[i] = -1
	}
	queue := make([]int, 0, len(vm.Trusted))
	for _, t := range vm.Trusted {
		dist[t] = 0
		queue = append(queue, t)
	}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, v := range vm.Adj[u] {
			if dist[v] == -1 {
				dist[v] = dist[u] + 1
				queue = append(queue, v)
			}
		}
	}
	return dist
}

// Components returns the connected components as slices of node ids.
func (vm *Viewmap) Components() [][]int {
	comp := make([]int, len(vm.Profiles))
	for i := range comp {
		comp[i] = -1
	}
	var out [][]int
	for i := range vm.Profiles {
		if comp[i] != -1 {
			continue
		}
		var cur []int
		stack := []int{i}
		comp[i] = len(out)
		for len(stack) > 0 {
			u := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			cur = append(cur, u)
			for _, v := range vm.Adj[u] {
				if comp[v] == -1 {
					comp[v] = len(out)
					stack = append(stack, v)
				}
			}
		}
		sort.Ints(cur)
		out = append(out, cur)
	}
	return out
}

// DOT renders the viewmap in Graphviz format, coloring trusted VPs,
// for the Fig. 21 visualizations.
func (vm *Viewmap) DOT(name string) string {
	var b []byte
	b = append(b, fmt.Sprintf("graph %q {\n  node [shape=point];\n", name)...)
	for i, p := range vm.Profiles {
		loc := p.InitialLocation()
		attr := ""
		if p.Trusted {
			attr = ", color=red, shape=circle"
		}
		b = append(b, fmt.Sprintf("  n%d [pos=\"%.1f,%.1f!\"%s];\n", i, loc.X, loc.Y, attr)...)
	}
	for i, adj := range vm.Adj {
		for _, j := range adj {
			if i < j {
				b = append(b, fmt.Sprintf("  n%d -- n%d;\n", i, j)...)
			}
		}
	}
	b = append(b, '}', '\n')
	return string(b)
}
