package blur

import (
	"image"
	"testing"
)

// standardPlate returns a plate rectangle with a realistic dashcam
// footprint: 96x24 px, aspect ratio 4:1.
func standardPlate(x, y int) Plate {
	return Plate{Rect: image.Rect(x, y, x+96, y+24)}
}

func TestSynthesizeValidation(t *testing.T) {
	if _, err := Synthesize(0, 10, nil, 1); err == nil {
		t.Error("zero width should fail")
	}
	if _, err := Synthesize(10, -1, nil, 1); err == nil {
		t.Error("negative height should fail")
	}
}

func TestSynthesizeRendersPlate(t *testing.T) {
	p := standardPlate(100, 100)
	img, err := Synthesize(640, 360, []Plate{p}, 7)
	if err != nil {
		t.Fatal(err)
	}
	if MaxLuminance(img, p.Rect) < 200 {
		t.Error("plate should render bright")
	}
	// Background stays below the detection threshold.
	bg := image.Rect(0, 0, 50, 50)
	if MaxLuminance(img, bg) >= DefaultParams().Threshold {
		t.Error("background should stay below threshold")
	}
}

func TestLocalizeFindsPlate(t *testing.T) {
	p := standardPlate(200, 150)
	img, err := Synthesize(640, 360, []Plate{p}, 3)
	if err != nil {
		t.Fatal(err)
	}
	regions := Localize(img, Params{})
	if len(regions) != 1 {
		t.Fatalf("found %d regions, want 1", len(regions))
	}
	got := regions[0].Rect
	if !got.Overlaps(p.Rect) {
		t.Errorf("detected region %v does not overlap plate %v", got, p.Rect)
	}
	inter := got.Intersect(p.Rect)
	cover := float64(inter.Dx()*inter.Dy()) / float64(p.Rect.Dx()*p.Rect.Dy())
	if cover < 0.9 {
		t.Errorf("detected region covers only %.0f%% of the plate", cover*100)
	}
}

func TestLocalizeMultiplePlates(t *testing.T) {
	plates := []Plate{standardPlate(50, 50), standardPlate(400, 250), standardPlate(200, 300)}
	img, err := Synthesize(640, 360, plates, 5)
	if err != nil {
		t.Fatal(err)
	}
	regions := Localize(img, Params{})
	if len(regions) != 3 {
		t.Fatalf("found %d regions, want 3", len(regions))
	}
}

func TestLocalizeRejectsWrongAspect(t *testing.T) {
	// A bright square (aspect 1:1) is not a plate.
	square := Plate{Rect: image.Rect(100, 100, 160, 160)}
	img, err := Synthesize(640, 360, []Plate{square}, 9)
	if err != nil {
		t.Fatal(err)
	}
	if regions := Localize(img, Params{}); len(regions) != 0 {
		t.Errorf("square region should be rejected, got %d regions", len(regions))
	}
}

func TestLocalizeRejectsTinyAndHuge(t *testing.T) {
	tiny := Plate{Rect: image.Rect(100, 100, 130, 110)} // 300 px² below MinArea after glyph gaps
	img, err := Synthesize(640, 360, []Plate{tiny}, 11)
	if err != nil {
		t.Fatal(err)
	}
	p := DefaultParams()
	p.MinArea = 500
	if regions := Localize(img, p); len(regions) != 0 {
		t.Errorf("tiny region should be rejected, got %d", len(regions))
	}
	huge := Plate{Rect: image.Rect(0, 100, 639, 250)}
	img2, err := Synthesize(640, 360, []Plate{huge}, 11)
	if err != nil {
		t.Fatal(err)
	}
	if regions := Localize(img2, Params{}); len(regions) != 0 {
		t.Errorf("huge region should be rejected, got %d", len(regions))
	}
}

func TestLocalizeEmptyImage(t *testing.T) {
	img := image.NewGray(image.Rect(0, 0, 0, 0))
	if regions := Localize(img, Params{}); regions != nil {
		t.Error("empty image should yield nil")
	}
}

func TestBoxBlurDestroysContrast(t *testing.T) {
	p := standardPlate(200, 150)
	img, err := Synthesize(640, 360, []Plate{p}, 13)
	if err != nil {
		t.Fatal(err)
	}
	// Measure glyph contrast in the plate interior, away from the plate
	// edge so the dark car body bleeding in under the kernel does not
	// dominate the reading.
	inner := p.Rect.Inset(10)
	before := Contrast(img, inner)
	BoxBlur(img, p.Rect.Inset(-4), 8)
	after := Contrast(img, inner)
	if after >= before {
		t.Errorf("blur should reduce glyph contrast: before %d, after %d", before, after)
	}
}

func TestBoxBlurNoopCases(t *testing.T) {
	img := image.NewGray(image.Rect(0, 0, 10, 10))
	BoxBlur(img, image.Rect(20, 20, 30, 30), 3) // outside the frame
	BoxBlur(img, image.Rect(0, 0, 5, 5), 0)     // zero radius
}

func TestBoxBlurPreservesMeanApproximately(t *testing.T) {
	img, err := Synthesize(64, 64, nil, 17)
	if err != nil {
		t.Fatal(err)
	}
	var sumBefore int
	for i := range img.Pix {
		sumBefore += int(img.Pix[i])
	}
	BoxBlur(img, img.Rect, 4)
	var sumAfter int
	for i := range img.Pix {
		sumAfter += int(img.Pix[i])
	}
	meanBefore := float64(sumBefore) / float64(len(img.Pix))
	meanAfter := float64(sumAfter) / float64(len(img.Pix))
	if diff := meanAfter - meanBefore; diff > 3 || diff < -3 {
		t.Errorf("box blur should roughly preserve mean: %v vs %v", meanBefore, meanAfter)
	}
}

func TestProcessBlursDetectedPlates(t *testing.T) {
	p := standardPlate(300, 200)
	img, err := Synthesize(640, 360, []Plate{p}, 19)
	if err != nil {
		t.Fatal(err)
	}
	regions := Process(img, Params{})
	if len(regions) != 1 {
		t.Fatalf("Process blurred %d regions, want 1", len(regions))
	}
	// After processing, the glyph stripes are unreadable: interior
	// contrast collapses well below the synthetic glyph contrast (25).
	// Inset past the blur radius so car-body bleed at the plate edge
	// does not dominate the reading.
	if c := Contrast(img, p.Rect.Inset(9)); c > 20 {
		t.Errorf("plate interior contrast after blur = %d, want < 20", c)
	}
}

func TestPipelineStepAndProfile(t *testing.T) {
	pl, err := NewPipeline(320, 180, 4, []Plate{standardPlate(100, 80)}, Params{})
	if err != nil {
		t.Fatal(err)
	}
	n, st := pl.Step()
	if n != 1 {
		t.Errorf("Step blurred %d plates, want 1", n)
	}
	if st.BlurTime <= 0 {
		t.Error("blur time should be positive")
	}
	mean, err := pl.Profile(5)
	if err != nil {
		t.Fatal(err)
	}
	if mean.FPS <= 0 {
		t.Error("profile FPS should be positive")
	}
	if _, err := pl.Profile(0); err == nil {
		t.Error("Profile(0) should fail")
	}
}

func TestNewPipelineValidation(t *testing.T) {
	if _, err := NewPipeline(320, 180, 0, nil, Params{}); err == nil {
		t.Error("zero feed frames should fail")
	}
	if _, err := NewPipeline(0, 180, 1, nil, Params{}); err == nil {
		t.Error("invalid frame size should fail")
	}
}

func TestPlatformScale(t *testing.T) {
	host := StageTimes{BlurTime: 10e6, IOTime: 10e6} // 10ms+10ms => 50 fps
	slow := Platform{Name: "slow", SpeedFactor: 2}.Scale(host)
	if slow.BlurTime != 20e6 || slow.IOTime != 20e6 {
		t.Errorf("scaled times wrong: %+v", slow)
	}
	if slow.FPS < 24 || slow.FPS > 26 {
		t.Errorf("scaled FPS = %v, want 25", slow.FPS)
	}
	if len(Table1Platforms()) != 3 {
		t.Error("Table 1 has three platform rows")
	}
}

func TestStageTimesString(t *testing.T) {
	s := StageTimes{BlurTime: 10e6, IOTime: 20e6, FPS: 33.3}
	if got := s.String(); got == "" {
		t.Error("String should be non-empty")
	}
}

func BenchmarkLocalize720p(b *testing.B) {
	img, err := Synthesize(1280, 720, []Plate{standardPlate(500, 400)}, 1)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Localize(img, Params{})
	}
}

func BenchmarkProcess720p(b *testing.B) {
	src, err := Synthesize(1280, 720, []Plate{standardPlate(500, 400)}, 1)
	if err != nil {
		b.Fatal(err)
	}
	work := image.NewGray(src.Rect)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(work.Pix, src.Pix)
		Process(work, Params{})
	}
}
