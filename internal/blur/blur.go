// Package blur implements the realtime license-plate blurring stage of
// a ViewMap-enabled dashcam (Section 6.2.1). It substitutes a pure-Go
// image pipeline for the paper's OpenCV implementation while keeping
// the same three stages whose latencies Table 1 reports:
//
//  1. I/O in — acquire the frame from the camera module,
//  2. Blur — localize plate-like regions and blur them,
//  3. I/O out — write the processed frame to the video file.
//
// Plate localization follows the classical recipe the paper cites:
// threshold the luminance image, extract connected components, and keep
// components whose area and aspect ratio match a license plate
// (parameters "tailored for South Korean license plates": wide plates
// around a 4.5:1 ratio and standard plates around 2:1).
package blur

import (
	"fmt"
	"image"
	"image/color"
)

// Gray is a luminance frame. We alias the stdlib type so callers can
// construct frames with standard tooling.
type Gray = image.Gray

// Region is a detected plate bounding box.
type Region struct {
	Rect image.Rectangle
}

// Params tune the plate detector. Zero values select defaults.
type Params struct {
	// Threshold is the luminance cut separating plate background from
	// surroundings. Plates are retroreflective and render bright.
	Threshold uint8
	// MinArea and MaxArea bound the component pixel count.
	MinArea, MaxArea int
	// MinAspect and MaxAspect bound width/height of the bounding box.
	MinAspect, MaxAspect float64
	// BlurRadius is the box-blur radius applied to detected regions.
	BlurRadius int
}

// DefaultParams returns detector constants tuned for the synthetic
// 1280x720 frames produced by Synthesize, approximating plates seen at
// dashcam distances.
func DefaultParams() Params {
	return Params{
		Threshold:  200,
		MinArea:    300,
		MaxArea:    40000,
		MinAspect:  1.8,
		MaxAspect:  6.0,
		BlurRadius: 6,
	}
}

func (p Params) withDefaults() Params {
	d := DefaultParams()
	if p.Threshold == 0 {
		p.Threshold = d.Threshold
	}
	if p.MinArea == 0 {
		p.MinArea = d.MinArea
	}
	if p.MaxArea == 0 {
		p.MaxArea = d.MaxArea
	}
	if p.MinAspect == 0 {
		p.MinAspect = d.MinAspect
	}
	if p.MaxAspect == 0 {
		p.MaxAspect = d.MaxAspect
	}
	if p.BlurRadius == 0 {
		p.BlurRadius = d.BlurRadius
	}
	return p
}

// Localize finds plate-like regions: bright connected components whose
// bounding boxes have plate-like area and aspect ratio.
func Localize(img *Gray, p Params) []Region {
	p = p.withDefaults()
	w := img.Rect.Dx()
	h := img.Rect.Dy()
	if w == 0 || h == 0 {
		return nil
	}
	// Union-find over thresholded pixels (two-pass connected
	// components, 4-connectivity).
	labels := make([]int32, w*h)
	for i := range labels {
		labels[i] = -1
	}
	parent := make([]int32, 0, 256)
	var find func(x int32) int32
	find = func(x int32) int32 {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	union := func(a, b int32) {
		ra, rb := find(a), find(b)
		if ra != rb {
			parent[rb] = ra
		}
	}
	bright := func(x, y int) bool {
		return img.GrayAt(img.Rect.Min.X+x, img.Rect.Min.Y+y).Y >= p.Threshold
	}
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			if !bright(x, y) {
				continue
			}
			idx := y*w + x
			var left, up int32 = -1, -1
			if x > 0 {
				left = labels[idx-1]
			}
			if y > 0 {
				up = labels[idx-w]
			}
			switch {
			case left >= 0 && up >= 0:
				labels[idx] = left
				union(left, up)
			case left >= 0:
				labels[idx] = left
			case up >= 0:
				labels[idx] = up
			default:
				l := int32(len(parent))
				parent = append(parent, l)
				labels[idx] = l
			}
		}
	}
	// Aggregate bounding boxes and areas per root label.
	type box struct {
		minX, minY, maxX, maxY, area int
	}
	boxes := make(map[int32]*box)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			l := labels[y*w+x]
			if l < 0 {
				continue
			}
			r := find(l)
			b, ok := boxes[r]
			if !ok {
				b = &box{minX: x, minY: y, maxX: x, maxY: y}
				boxes[r] = b
			}
			if x < b.minX {
				b.minX = x
			}
			if x > b.maxX {
				b.maxX = x
			}
			if y < b.minY {
				b.minY = y
			}
			if y > b.maxY {
				b.maxY = y
			}
			b.area++
		}
	}
	var out []Region
	for _, b := range boxes {
		bw := b.maxX - b.minX + 1
		bh := b.maxY - b.minY + 1
		if b.area < p.MinArea || b.area > p.MaxArea {
			continue
		}
		aspect := float64(bw) / float64(bh)
		if aspect < p.MinAspect || aspect > p.MaxAspect {
			continue
		}
		// Plates are solid: the component should fill most of its box.
		if fill := float64(b.area) / float64(bw*bh); fill < 0.5 {
			continue
		}
		out = append(out, Region{Rect: image.Rect(
			img.Rect.Min.X+b.minX, img.Rect.Min.Y+b.minY,
			img.Rect.Min.X+b.maxX+1, img.Rect.Min.Y+b.maxY+1)})
	}
	return out
}

// BoxBlur blurs the given region of img in place with a square kernel
// of the given radius, using a summed-area table over the padded region
// so the cost is independent of the radius.
func BoxBlur(img *Gray, region image.Rectangle, radius int) {
	r := region.Intersect(img.Rect)
	if r.Empty() || radius <= 0 {
		return
	}
	// Integral image over the region inflated by the radius (clamped to
	// the frame) so border pixels average real neighbors.
	pad := image.Rect(r.Min.X-radius, r.Min.Y-radius, r.Max.X+radius, r.Max.Y+radius).Intersect(img.Rect)
	pw := pad.Dx()
	ph := pad.Dy()
	integral := make([]uint64, (pw+1)*(ph+1))
	for y := 0; y < ph; y++ {
		var rowSum uint64
		for x := 0; x < pw; x++ {
			rowSum += uint64(img.GrayAt(pad.Min.X+x, pad.Min.Y+y).Y)
			integral[(y+1)*(pw+1)+(x+1)] = integral[y*(pw+1)+(x+1)] + rowSum
		}
	}
	sum := func(x0, y0, x1, y1 int) uint64 { // half-open box in pad coords
		return integral[y1*(pw+1)+x1] - integral[y0*(pw+1)+x1] -
			integral[y1*(pw+1)+x0] + integral[y0*(pw+1)+x0]
	}
	clamp := func(v, lo, hi int) int {
		if v < lo {
			return lo
		}
		if v > hi {
			return hi
		}
		return v
	}
	for y := r.Min.Y; y < r.Max.Y; y++ {
		for x := r.Min.X; x < r.Max.X; x++ {
			x0 := clamp(x-radius-pad.Min.X, 0, pw)
			x1 := clamp(x+radius+1-pad.Min.X, 0, pw)
			y0 := clamp(y-radius-pad.Min.Y, 0, ph)
			y1 := clamp(y+radius+1-pad.Min.Y, 0, ph)
			n := uint64((x1 - x0) * (y1 - y0))
			if n == 0 {
				continue
			}
			img.SetGray(x, y, color.Gray{Y: uint8(sum(x0, y0, x1, y1) / n)})
		}
	}
}

// Process runs the blur stage on a frame in place: localize plates and
// blur each. It returns the regions that were blurred.
func Process(img *Gray, p Params) []Region {
	p = p.withDefaults()
	regions := Localize(img, p)
	for _, reg := range regions {
		BoxBlur(img, reg.Rect, p.BlurRadius)
	}
	return regions
}

// Plate describes a synthetic license plate to draw into a frame.
type Plate struct {
	// Rect is the plate's bounding box in frame coordinates.
	Rect image.Rectangle
}

// Synthesize renders a dashcam-like luminance frame: a mid-gray road
// scene with mild texture, dark car bodies, and bright plate rectangles
// with dark glyph stripes. The deterministic texture is keyed by seed.
func Synthesize(w, h int, plates []Plate, seed uint64) (*Gray, error) {
	if w <= 0 || h <= 0 {
		return nil, fmt.Errorf("blur: invalid frame size %dx%d", w, h)
	}
	img := image.NewGray(image.Rect(0, 0, w, h))
	state := seed | 1
	next := func() uint64 { // xorshift64
		state ^= state << 13
		state ^= state >> 7
		state ^= state << 17
		return state
	}
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			base := uint8(90 + next()%40) // road/sky texture, well below threshold
			img.SetGray(x, y, color.Gray{Y: base})
		}
	}
	for _, p := range plates {
		r := p.Rect.Intersect(img.Rect)
		// Dark car body around the plate.
		body := r.Inset(-r.Dy())
		for y := body.Min.Y; y < body.Max.Y; y++ {
			for x := body.Min.X; x < body.Max.X; x++ {
				if (image.Point{X: x, Y: y}).In(img.Rect) {
					img.SetGray(x, y, color.Gray{Y: 40})
				}
			}
		}
		// Bright plate with dark glyph stripes.
		for y := r.Min.Y; y < r.Max.Y; y++ {
			for x := r.Min.X; x < r.Max.X; x++ {
				v := uint8(235)
				relX := x - r.Min.X
				if relX%8 >= 6 && y > r.Min.Y+2 && y < r.Max.Y-2 {
					v = 210 // glyph stroke, still above threshold to keep the component solid
				}
				img.SetGray(x, y, color.Gray{Y: v})
			}
		}
	}
	return img, nil
}

// MaxLuminance returns the maximum pixel value within the rectangle,
// used by tests to confirm that blurring destroyed plate contrast.
func MaxLuminance(img *Gray, r image.Rectangle) uint8 {
	rr := r.Intersect(img.Rect)
	var max uint8
	for y := rr.Min.Y; y < rr.Max.Y; y++ {
		for x := rr.Min.X; x < rr.Max.X; x++ {
			if v := img.GrayAt(x, y).Y; v > max {
				max = v
			}
		}
	}
	return max
}

// Contrast returns max-min luminance within the rectangle: a readable
// plate has strong glyph/background contrast, a blurred one does not.
func Contrast(img *Gray, r image.Rectangle) uint8 {
	rr := r.Intersect(img.Rect)
	if rr.Empty() {
		return 0
	}
	min, max := uint8(255), uint8(0)
	for y := rr.Min.Y; y < rr.Max.Y; y++ {
		for x := rr.Min.X; x < rr.Max.X; x++ {
			v := img.GrayAt(x, y).Y
			if v < min {
				min = v
			}
			if v > max {
				max = v
			}
		}
	}
	return max - min
}
