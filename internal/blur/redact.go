package blur

import (
	"fmt"
	"image"
)

// This file adapts the frame-level blurring pipeline to the evidence
// subsystem: a solicited video is released to an investigator only
// after plate redaction runs over its stored copy (Section 5.2.3 pairs
// solicitation with the privacy protections of Section 5.1). The
// synthetic videos of this reproduction carry one luminance frame per
// recorded second, so redaction maps each second's chunk to a frame,
// localizes plates, and blurs them.

// FrameBytes returns the chunk size of a w x h luminance frame.
func FrameBytes(w, h int) int { return w * h }

// RedactChunks runs plate redaction over a stored video's per-second
// chunks. Every chunk whose length matches a w x h luminance frame is
// interpreted as one, plates are localized and blurred, and the
// redacted pixels replace the chunk in the output; chunks of any other
// length (non-frame payloads) are copied verbatim. The inputs are
// never modified — the stored evidence copy stays bit-exact for
// cascade re-verification — and the function reports how many frames
// were redacted and how many plate regions were blurred in total.
func RedactChunks(chunks [][]byte, w, h int, p Params) (out [][]byte, frames, regions int, err error) {
	if w <= 0 || h <= 0 {
		return nil, 0, 0, fmt.Errorf("blur: invalid frame size %dx%d", w, h)
	}
	out = make([][]byte, len(chunks))
	for i, c := range chunks {
		cp := make([]byte, len(c))
		copy(cp, c)
		out[i] = cp
		if len(c) != w*h {
			continue
		}
		img := &image.Gray{Pix: cp, Stride: w, Rect: image.Rect(0, 0, w, h)}
		blurred := Process(img, p)
		frames++
		regions += len(blurred)
	}
	return out, frames, regions, nil
}

// CameraSource produces deterministic dashcam-like luminance frames —
// one per recorded second — sized so each frame is exactly one video
// chunk. It satisfies the vehicle recorder's chunk-source hook, giving
// simulations and tests videos whose released copies exercise real
// plate localization instead of pseudorandom noise.
type CameraSource struct {
	// W, H are the frame dimensions; the per-second chunk is W*H bytes.
	W, H int
	// Plates are drawn into every frame at fixed positions, as a car
	// ahead would appear in a following dashcam.
	Plates []Plate
	// Seed keys the frame texture so distinct vehicles record distinct
	// (and reproducible) streams.
	Seed uint64
}

// SecondChunk renders the frame for second i (1-based) of the segment
// starting at startUnix and returns its pixels as the chunk.
func (c *CameraSource) SecondChunk(startUnix int64, i int) []byte {
	seed := c.Seed ^ uint64(startUnix)<<20 ^ uint64(i)
	img, err := Synthesize(c.W, c.H, c.Plates, seed)
	if err != nil {
		// Synthesize fails only for non-positive dimensions, which the
		// recorder rejects far earlier; keep the hot path error-free.
		panic(err)
	}
	return img.Pix
}
