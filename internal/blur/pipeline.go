package blur

import (
	"fmt"
	"image"
	"time"
)

// StageTimes are the per-frame latencies of the three pipeline stages
// that the paper's Table 1 reports, plus the achievable frame rate.
type StageTimes struct {
	BlurTime time.Duration // plate localization + blurring
	IOTime   time.Duration // camera acquire + file write combined
	FPS      float64       // frames per second the pipeline sustains
}

// String formats like a Table 1 row.
func (s StageTimes) String() string {
	return fmt.Sprintf("blur %.2f ms, I/O %.2f ms, %.0f fps",
		float64(s.BlurTime.Microseconds())/1000,
		float64(s.IOTime.Microseconds())/1000,
		s.FPS)
}

// Pipeline is the realtime recording loop: acquire a frame, blur the
// plates, write the result. The camera and the file sink are modelled
// as frame-sized buffers; acquisition and write are memory copies, the
// same role the I/O stages play on the paper's Raspberry Pi (camera
// module read and SD write).
type Pipeline struct {
	params Params
	w, h   int
	camera []*Gray // pre-rendered synthetic camera feed, cycled
	frame  *Gray   // working frame
	sink   []uint8 // "file" the processed frame is written to
	next   int
}

// NewPipeline builds a pipeline over a pre-rendered synthetic feed of
// the given number of distinct frames, each w x h with the given plates.
func NewPipeline(w, h, feedFrames int, plates []Plate, p Params) (*Pipeline, error) {
	if feedFrames <= 0 {
		return nil, fmt.Errorf("blur: feed must have at least one frame, got %d", feedFrames)
	}
	pl := &Pipeline{params: p, w: w, h: h, sink: make([]uint8, w*h)}
	for i := 0; i < feedFrames; i++ {
		f, err := Synthesize(w, h, plates, uint64(i)+1)
		if err != nil {
			return nil, err
		}
		pl.camera = append(pl.camera, f)
	}
	pl.frame = image.NewGray(image.Rect(0, 0, w, h))
	return pl, nil
}

// Step processes one frame and returns the number of plates blurred and
// the stage latencies measured for this frame.
func (pl *Pipeline) Step() (plates int, times StageTimes) {
	// Stage 1: acquire from camera (I/O in).
	t0 := time.Now()
	src := pl.camera[pl.next%len(pl.camera)]
	pl.next++
	copy(pl.frame.Pix, src.Pix)
	ioIn := time.Since(t0)

	// Stage 2: localize + blur.
	t1 := time.Now()
	regions := Process(pl.frame, pl.params)
	blur := time.Since(t1)

	// Stage 3: write to video file (I/O out).
	t2 := time.Now()
	copy(pl.sink, pl.frame.Pix)
	ioOut := time.Since(t2)

	total := ioIn + blur + ioOut
	fps := 0.0
	if total > 0 {
		fps = float64(time.Second) / float64(total)
	}
	return len(regions), StageTimes{BlurTime: blur, IOTime: ioIn + ioOut, FPS: fps}
}

// Profile runs the pipeline for n frames and returns mean stage times.
func (pl *Pipeline) Profile(n int) (StageTimes, error) {
	if n <= 0 {
		return StageTimes{}, fmt.Errorf("blur: profile needs at least one frame, got %d", n)
	}
	var blurSum, ioSum time.Duration
	for i := 0; i < n; i++ {
		_, st := pl.Step()
		blurSum += st.BlurTime
		ioSum += st.IOTime
	}
	mean := StageTimes{
		BlurTime: blurSum / time.Duration(n),
		IOTime:   ioSum / time.Duration(n),
	}
	if total := mean.BlurTime + mean.IOTime; total > 0 {
		mean.FPS = float64(time.Second) / float64(total)
	}
	return mean, nil
}

// Platform expresses one of Table 1's hardware rows as a CPU speed
// factor relative to the host this reproduction runs on. The paper
// measured a 1.2 GHz Raspberry Pi 3 and two iMacs; absolute numbers are
// hardware-specific, so the harness reports host-measured times plus
// these scaled projections, documented in EXPERIMENTS.md.
type Platform struct {
	Name        string
	SpeedFactor float64 // >1 means slower than the host by that factor
}

// Table1Platforms are the paper's three rows.
func Table1Platforms() []Platform {
	return []Platform{
		{Name: "Rasp. Pi 3 (1.2 GHz)", SpeedFactor: 5.0},
		{Name: "iMac 2008 (2.4 GHz)", SpeedFactor: 1.5},
		{Name: "iMac 2014 (4.0 GHz)", SpeedFactor: 1.0},
	}
}

// Scale projects host-measured stage times onto a platform.
func (p Platform) Scale(host StageTimes) StageTimes {
	out := StageTimes{
		BlurTime: time.Duration(float64(host.BlurTime) * p.SpeedFactor),
		IOTime:   time.Duration(float64(host.IOTime) * p.SpeedFactor),
	}
	if total := out.BlurTime + out.IOTime; total > 0 {
		out.FPS = float64(time.Second) / float64(total)
	}
	return out
}
