package blur

import (
	"bytes"
	"image"
	"testing"
)

func TestRedactChunksBlursPlateFrames(t *testing.T) {
	const w, h = 160, 90
	plate := image.Rect(55, 40, 105, 56) // 50x16: plate-like area and aspect
	cam := &CameraSource{W: w, H: h, Plates: []Plate{{Rect: plate}}, Seed: 7}
	chunks := [][]byte{
		cam.SecondChunk(0, 1),
		cam.SecondChunk(0, 2),
		[]byte("opaque non-frame payload"), // passes through untouched
	}
	orig := make([][]byte, len(chunks))
	for i, c := range chunks {
		orig[i] = append([]byte(nil), c...)
	}

	out, frames, regions, err := RedactChunks(chunks, w, h, Params{})
	if err != nil {
		t.Fatal(err)
	}
	if frames != 2 {
		t.Fatalf("redacted frames = %d, want 2", frames)
	}
	if regions < 2 {
		t.Fatalf("blurred regions = %d, want at least one per frame", regions)
	}
	// Inputs are untouched (the stored evidence copy must stay
	// bit-exact for later cascade re-verification).
	for i := range chunks {
		if !bytes.Equal(chunks[i], orig[i]) {
			t.Fatalf("input chunk %d was modified", i)
		}
	}
	if !bytes.Equal(out[2], orig[2]) {
		t.Fatal("non-frame chunk must pass through verbatim")
	}
	// The released frames destroyed glyph contrast. Measure the plate
	// interior, inset past the blur radius, so car-body bleed at the
	// plate edge does not dominate the reading (as in the blur tests).
	inner := plate.Inset(7)
	for i := 0; i < 2; i++ {
		before := &image.Gray{Pix: orig[i], Stride: w, Rect: image.Rect(0, 0, w, h)}
		after := &image.Gray{Pix: out[i], Stride: w, Rect: image.Rect(0, 0, w, h)}
		if c := Contrast(before, inner); c < 15 {
			t.Fatalf("frame %d: original glyph contrast %d, expected a readable plate", i, c)
		}
		if c := Contrast(after, inner); c >= 15 {
			t.Fatalf("frame %d: redacted glyph contrast still %d", i, c)
		}
	}
}

func TestRedactChunksValidation(t *testing.T) {
	if _, _, _, err := RedactChunks(nil, 0, 10, Params{}); err == nil {
		t.Fatal("zero width must be rejected")
	}
	out, frames, regions, err := RedactChunks(nil, 10, 10, Params{})
	if err != nil || len(out) != 0 || frames != 0 || regions != 0 {
		t.Fatalf("empty input: out=%v frames=%d regions=%d err=%v", out, frames, regions, err)
	}
}
