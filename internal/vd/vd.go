// Package vd implements ViewMap's view digests (VDs): the per-second
// fingerprints of a currently-recording dashcam video that vehicles
// broadcast over DSRC (Section 5.1.1).
//
// Every second i of a 1-minute video u, the recording vehicle emits
//
//	T_i, L_i, F_i, L_1, R_u, H(T_i | L_i | F_i | H_{i-1} | u_i^{i-1})
//
// where T/L/F are time, location and cumulative byte size at second i,
// L_1 is the segment's initial location (used by neighbors for guard-VP
// routes), R_u is the VP identifier, and the hash field cascades: each
// second's hash covers only the newly recorded content u_i^{i-1} plus
// the previous hash, with H_0 = R_u. The cascade is what makes VD
// generation constant-time per second regardless of file size — the
// property Fig. 8 measures against the naive rehash-the-whole-prefix
// baseline, which this package also provides.
//
// Wire format: the paper states a VD message is 72 bytes. Its field
// enumeration (8-byte time/location/size, 16-byte identifier and hash)
// sums to 64 with the initial location included; we account for the
// remaining 8 bytes as an explicit second-index field, which the
// receiver needs anyway to place a digest within the minute. Hashes are
// SHA-256 truncated to 16 bytes, matching the stated field width.
package vd

import (
	"crypto/rand"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"math"

	"viewmap/internal/geo"
)

// WireSize is the exact encoded size of a VD message in bytes,
// matching Section 6.1 of the paper.
const WireSize = 72

// SegmentSeconds is the number of VDs per view profile.
const SegmentSeconds = 60

// HashSize is the truncated hash width used throughout ViewMap.
const HashSize = 16

// Hash is a truncated SHA-256 digest.
type Hash [HashSize]byte

// VPID identifies a view profile: R_u = H(Q_u) for owner secret Q_u.
type VPID [HashSize]byte

// Secret is the 8-byte per-video secret Q_u a vehicle keeps to later
// prove ownership during rewarding (Section 5.3).
type Secret [8]byte

// NewSecret draws a fresh random secret.
func NewSecret() (Secret, error) {
	var q Secret
	if _, err := rand.Read(q[:]); err != nil {
		return Secret{}, fmt.Errorf("vd: drawing secret: %w", err)
	}
	return q, nil
}

// DeriveVPID computes R = H(Q).
func DeriveVPID(q Secret) VPID {
	sum := sha256.Sum256(q[:])
	var r VPID
	copy(r[:], sum[:HashSize])
	return r
}

// Matches reports whether q is the secret behind this VP identifier —
// the ownership proof of the rewarding protocol (Section 5.3).
func (r VPID) Matches(q Secret) bool { return DeriveVPID(q) == r }

// VD is one view digest.
type VD struct {
	T   int64     // unix time at second i
	L   geo.Point // location at second i
	F   int64     // cumulative video byte size after second i
	L1  geo.Point // initial location of the segment (guard-VP seed)
	Seq uint64    // second index i, 1..60
	R   VPID      // VP identifier of the video being recorded
	H   Hash      // cascaded hash H_i
}

// truncate folds a full SHA-256 digest to the ViewMap hash width.
func truncate(sum [32]byte) Hash {
	var h Hash
	copy(h[:], sum[:HashSize])
	return h
}

// hashHeader serializes the (T, L, F) triple covered by the cascade.
func hashHeader(t int64, l geo.Point, f int64) [24]byte {
	var b [24]byte
	binary.BigEndian.PutUint64(b[0:8], uint64(t))
	binary.BigEndian.PutUint32(b[8:12], math.Float32bits(float32(l.X)))
	binary.BigEndian.PutUint32(b[12:16], math.Float32bits(float32(l.Y)))
	binary.BigEndian.PutUint64(b[16:24], uint64(f))
	return b
}

// CascadeStep computes H_i = H(T_i | L_i | F_i | H_{i-1} | chunk) where
// chunk is the content recorded between seconds i-1 and i. The cost is
// proportional to the chunk alone, never the whole file.
func CascadeStep(t int64, l geo.Point, f int64, prev Hash, chunk []byte) Hash {
	hdr := hashHeader(t, l, f)
	hw := sha256.New()
	hw.Write(hdr[:])
	hw.Write(prev[:])
	hw.Write(chunk)
	var sum [32]byte
	hw.Sum(sum[:0])
	return truncate(sum)
}

// NormalHash is the Fig. 8 baseline: hash the entire recorded prefix
// (all chunks so far) from scratch, the way a digest would be produced
// without the cascade. Cost grows linearly with recording time.
func NormalHash(t int64, l geo.Point, f int64, prefix [][]byte) Hash {
	hdr := hashHeader(t, l, f)
	hw := sha256.New()
	hw.Write(hdr[:])
	for _, c := range prefix {
		hw.Write(c)
	}
	var sum [32]byte
	hw.Sum(sum[:0])
	return truncate(sum)
}

// Encode serializes the VD into its 72-byte wire representation.
func (v *VD) Encode() [WireSize]byte {
	var b [WireSize]byte
	binary.BigEndian.PutUint64(b[0:8], uint64(v.T))
	binary.BigEndian.PutUint32(b[8:12], math.Float32bits(float32(v.L.X)))
	binary.BigEndian.PutUint32(b[12:16], math.Float32bits(float32(v.L.Y)))
	binary.BigEndian.PutUint64(b[16:24], uint64(v.F))
	binary.BigEndian.PutUint32(b[24:28], math.Float32bits(float32(v.L1.X)))
	binary.BigEndian.PutUint32(b[28:32], math.Float32bits(float32(v.L1.Y)))
	binary.BigEndian.PutUint64(b[32:40], v.Seq)
	copy(b[40:56], v.R[:])
	copy(b[56:72], v.H[:])
	return b
}

// Decode parses a 72-byte wire VD. Non-finite coordinates are
// rejected: NaN positions poison every downstream distance comparison
// (NaN compares false, so a NaN trajectory is never "too far" from
// anything it should be far from), and a NaN payload does not survive
// the float32 round trip bit-exactly, breaking re-marshal identity.
// No legitimate recorder produces them.
func Decode(b []byte) (VD, error) {
	var v VD
	if err := DecodeInto(&v, b); err != nil {
		return VD{}, err
	}
	return v, nil
}

// DecodeInto is Decode writing into a caller-provided VD — the batch
// arena decodes sixty digests per profile into a contiguous slab, and
// returning VD by value would copy the 72-byte struct twice per
// record.
func DecodeInto(v *VD, b []byte) error {
	if len(b) != WireSize {
		return fmt.Errorf("vd: wire message is %d bytes, want %d", len(b), WireSize)
	}
	v.T = int64(binary.BigEndian.Uint64(b[0:8]))
	v.L.X = float64(math.Float32frombits(binary.BigEndian.Uint32(b[8:12])))
	v.L.Y = float64(math.Float32frombits(binary.BigEndian.Uint32(b[12:16])))
	v.F = int64(binary.BigEndian.Uint64(b[16:24]))
	v.L1.X = float64(math.Float32frombits(binary.BigEndian.Uint32(b[24:28])))
	v.L1.Y = float64(math.Float32frombits(binary.BigEndian.Uint32(b[28:32])))
	v.Seq = binary.BigEndian.Uint64(b[32:40])
	copy(v.R[:], b[40:56])
	copy(v.H[:], b[56:72])
	// One finiteness test for all four coordinates: any NaN or Inf
	// among them makes the sum's self-difference NaN (Inf-Inf = NaN),
	// and a finite sum is only reachable from four finite terms.
	if s := v.L.X + v.L.Y + v.L1.X + v.L1.Y; s-s != 0 {
		return errors.New("vd: non-finite coordinate")
	}
	return nil
}

// Key returns the canonical byte string inserted into neighbor Bloom
// filters for this VD: the full wire encoding, so that any field forgery
// breaks membership.
func (v *VD) Key() []byte {
	b := v.Encode()
	return b[:]
}

// Generator produces the VD sequence for one recording segment. It owns
// the cascade state; calling Next with each second's chunk yields the
// digest to broadcast.
type Generator struct {
	r         VPID
	startUnix int64
	l1        geo.Point
	haveL1    bool
	prev      Hash
	seq       uint64
	totalSize int64
	out       []VD
}

// NewGenerator starts a VD sequence for a segment beginning at the
// minute-aligned startUnix with VP identifier r.
func NewGenerator(r VPID, startUnix int64) (*Generator, error) {
	if startUnix%SegmentSeconds != 0 {
		return nil, fmt.Errorf("vd: segment start %d not minute-aligned", startUnix)
	}
	g := &Generator{r: r, startUnix: startUnix}
	// H_0 = R_u: the cascade is anchored on the VP identifier.
	copy(g.prev[:], r[:])
	return g, nil
}

// ErrSegmentFull is returned when more than 60 seconds are generated.
var ErrSegmentFull = errors.New("vd: segment already has 60 digests")

// Next consumes the content chunk recorded in the elapsed second at the
// given location and returns the VD to broadcast. The first call fixes
// the segment's initial location L1.
func (g *Generator) Next(loc geo.Point, chunk []byte) (VD, error) {
	if g.seq >= SegmentSeconds {
		return VD{}, ErrSegmentFull
	}
	g.seq++
	if !g.haveL1 {
		g.l1 = loc
		g.haveL1 = true
	}
	g.totalSize += int64(len(chunk))
	t := g.startUnix + int64(g.seq)
	h := CascadeStep(t, loc, g.totalSize, g.prev, chunk)
	g.prev = h
	v := VD{T: t, L: loc, F: g.totalSize, L1: g.l1, Seq: g.seq, R: g.r, H: h}
	g.out = append(g.out, v)
	return v, nil
}

// Emitted returns all VDs generated so far, in order.
func (g *Generator) Emitted() []VD {
	out := make([]VD, len(g.out))
	copy(out, g.out)
	return out
}

// Complete reports whether all 60 digests have been generated.
func (g *Generator) Complete() bool { return g.seq == SegmentSeconds }

// Replay recomputes the full cascade for a claimed VD sequence from the
// actual video chunks and reports whether every hash matches. This is
// the validation the system runs when a solicited video is uploaded:
// "the video is first validated via cascading hash operations against
// the system-owned VP" (Section 5.2.3).
func Replay(r VPID, vds []VD, chunks [][]byte) error {
	if len(vds) == 0 || len(vds) != len(chunks) {
		return fmt.Errorf("vd: replay needs equal non-zero digests and chunks (%d, %d)", len(vds), len(chunks))
	}
	var prev Hash
	copy(prev[:], r[:])
	var total int64
	for i := range vds {
		v := &vds[i]
		if v.R != r {
			return fmt.Errorf("vd: digest %d carries VP identifier %x, want %x", i+1, v.R, r)
		}
		if v.Seq != uint64(i+1) {
			return fmt.Errorf("vd: digest %d has sequence %d", i+1, v.Seq)
		}
		total += int64(len(chunks[i]))
		if v.F != total {
			return fmt.Errorf("vd: digest %d claims size %d, actual %d", i+1, v.F, total)
		}
		want := CascadeStep(v.T, v.L, v.F, prev, chunks[i])
		if v.H != want {
			return fmt.Errorf("vd: cascade mismatch at second %d", i+1)
		}
		prev = v.H
	}
	return nil
}

// ValidateRanges is the receiver-side acceptance check of Section
// 5.1.1: a received VD is valid only if its time is within the current
// 1-second interval and its claimed location is inside DSRC radio
// range of the receiver.
func ValidateRanges(v *VD, nowUnix int64, receiver geo.Point, dsrcRangeM float64) error {
	if d := v.T - nowUnix; d < -1 || d > 1 {
		return fmt.Errorf("vd: time %d outside current interval around %d", v.T, nowUnix)
	}
	if d := v.L.Dist(receiver); d > dsrcRangeM {
		return fmt.Errorf("vd: claimed location %.0f m away exceeds DSRC range %.0f m", d, dsrcRangeM)
	}
	return nil
}
