package vd

import (
	"bytes"
	"encoding/binary"
	"testing"
	"testing/quick"

	"viewmap/internal/geo"
	"viewmap/internal/video"
)

func testSecret(b byte) Secret {
	var q Secret
	for i := range q {
		q[i] = b
	}
	return q
}

func recordedChunks(t testing.TB, seed string, perSec int) [][]byte {
	t.Helper()
	src, err := video.NewSyntheticSource(seed, perSec)
	if err != nil {
		t.Fatal(err)
	}
	chunks := make([][]byte, SegmentSeconds)
	for i := 1; i <= SegmentSeconds; i++ {
		chunks[i-1] = src.SecondChunk(0, i)
	}
	return chunks
}

func generateAll(t testing.TB, g *Generator, chunks [][]byte) []VD {
	t.Helper()
	for i, c := range chunks {
		loc := geo.Pt(float64(i)*10, 0)
		if _, err := g.Next(loc, c); err != nil {
			t.Fatal(err)
		}
	}
	return g.Emitted()
}

func TestNewSecretDistinct(t *testing.T) {
	a, err := NewSecret()
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewSecret()
	if err != nil {
		t.Fatal(err)
	}
	if a == b {
		t.Error("two fresh secrets should differ")
	}
}

func TestDeriveVPIDDeterministic(t *testing.T) {
	q := testSecret(7)
	if DeriveVPID(q) != DeriveVPID(q) {
		t.Error("VPID derivation must be deterministic")
	}
	if DeriveVPID(testSecret(7)) == DeriveVPID(testSecret(8)) {
		t.Error("different secrets must yield different VPIDs")
	}
}

func TestGeneratorAlignment(t *testing.T) {
	r := DeriveVPID(testSecret(1))
	if _, err := NewGenerator(r, 61); err == nil {
		t.Error("misaligned segment start should fail")
	}
	if _, err := NewGenerator(r, 120); err != nil {
		t.Errorf("aligned start should succeed: %v", err)
	}
}

func TestGeneratorSequence(t *testing.T) {
	r := DeriveVPID(testSecret(1))
	g, err := NewGenerator(r, 60)
	if err != nil {
		t.Fatal(err)
	}
	chunks := recordedChunks(t, "seq", 100)
	vds := generateAll(t, g, chunks)
	if len(vds) != SegmentSeconds {
		t.Fatalf("emitted %d VDs, want 60", len(vds))
	}
	if !g.Complete() {
		t.Error("generator should report complete")
	}
	for i, v := range vds {
		if v.Seq != uint64(i+1) {
			t.Fatalf("VD %d has Seq %d", i, v.Seq)
		}
		if v.T != 60+int64(i+1) {
			t.Fatalf("VD %d has T %d", i, v.T)
		}
		if v.R != r {
			t.Fatalf("VD %d carries wrong VPID", i)
		}
		if v.L1 != geo.Pt(0, 0) {
			t.Fatalf("VD %d should carry the initial location, got %v", i, v.L1)
		}
	}
	// Cumulative sizes: 100 bytes per second.
	if vds[59].F != 6000 {
		t.Errorf("final F = %d, want 6000", vds[59].F)
	}
	// 61st second refused.
	if _, err := g.Next(geo.Pt(0, 0), []byte{1}); err != ErrSegmentFull {
		t.Errorf("61st Next should return ErrSegmentFull, got %v", err)
	}
}

func TestCascadeAnchoredOnVPID(t *testing.T) {
	chunks := recordedChunks(t, "anchor", 50)
	g1, _ := NewGenerator(DeriveVPID(testSecret(1)), 0)
	g2, _ := NewGenerator(DeriveVPID(testSecret(2)), 0)
	v1 := generateAll(t, g1, chunks)
	v2 := generateAll(t, g2, chunks)
	if v1[0].H == v2[0].H {
		t.Error("cascade must be anchored on R: same content under different VPIDs must hash differently")
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	g, _ := NewGenerator(DeriveVPID(testSecret(3)), 0)
	chunks := recordedChunks(t, "wire", 64)
	vds := generateAll(t, g, chunks)
	for i := range vds {
		enc := vds[i].Encode()
		if len(enc) != WireSize {
			t.Fatalf("encoded size = %d, want %d", len(enc), WireSize)
		}
		dec, err := Decode(enc[:])
		if err != nil {
			t.Fatal(err)
		}
		if dec != vds[i] {
			t.Fatalf("round trip mismatch at %d:\n got %+v\nwant %+v", i, dec, vds[i])
		}
	}
}

func TestDecodeRejectsWrongSize(t *testing.T) {
	if _, err := Decode(make([]byte, 71)); err == nil {
		t.Error("short message should fail")
	}
	if _, err := Decode(make([]byte, 73)); err == nil {
		t.Error("long message should fail")
	}
}

// TestDecodeRejectsNonFiniteCoordinates pins the fuzz finding: NaN
// coordinate bit patterns decode into positions that poison every
// distance comparison (NaN compares false) and do not survive the
// float32 round trip bit-exactly. The decoder refuses them.
func TestDecodeRejectsNonFiniteCoordinates(t *testing.T) {
	g, _ := NewGenerator(DeriveVPID(testSecret(9)), 0)
	chunks := recordedChunks(t, "nan", 64)
	enc := generateAll(t, g, chunks)[0].Encode()
	// Each coordinate field, as signaling NaN and +Inf.
	for _, off := range []int{8, 12, 24, 28} {
		for _, bits := range []uint32{0x7f800001, 0x7f800000} {
			bad := enc
			binary.BigEndian.PutUint32(bad[off:off+4], bits)
			if _, err := Decode(bad[:]); err == nil {
				t.Errorf("non-finite coordinate at offset %d (bits %08x) decoded", off, bits)
			}
		}
	}
	if _, err := Decode(enc[:]); err != nil {
		t.Fatalf("finite original must still decode: %v", err)
	}
}

func TestKeyMatchesEncoding(t *testing.T) {
	g, _ := NewGenerator(DeriveVPID(testSecret(4)), 0)
	chunks := recordedChunks(t, "key", 32)
	vds := generateAll(t, g, chunks)
	enc := vds[0].Encode()
	if !bytes.Equal(vds[0].Key(), enc[:]) {
		t.Error("Key must equal the wire encoding")
	}
}

func TestReplayAcceptsHonestRecording(t *testing.T) {
	r := DeriveVPID(testSecret(5))
	g, _ := NewGenerator(r, 0)
	chunks := recordedChunks(t, "honest", 128)
	vds := generateAll(t, g, chunks)
	if err := Replay(r, vds, chunks); err != nil {
		t.Errorf("honest replay should validate: %v", err)
	}
}

func TestReplayDetectsTampering(t *testing.T) {
	r := DeriveVPID(testSecret(6))
	g, _ := NewGenerator(r, 0)
	chunks := recordedChunks(t, "tamper", 128)
	vds := generateAll(t, g, chunks)

	// Tamper with one byte of one second's content.
	bad := make([][]byte, len(chunks))
	for i := range chunks {
		bad[i] = append([]byte(nil), chunks[i]...)
	}
	bad[30][5] ^= 0xFF
	if err := Replay(r, vds, bad); err == nil {
		t.Error("tampered content must fail replay")
	}

	// Tamper with a claimed location.
	vds2 := append([]VD(nil), vds...)
	vds2[10].L = geo.Pt(99999, 99999)
	if err := Replay(r, vds2, chunks); err == nil {
		t.Error("tampered location must fail replay")
	}

	// Tamper with claimed size.
	vds3 := append([]VD(nil), vds...)
	vds3[10].F += 7
	if err := Replay(r, vds3, chunks); err == nil {
		t.Error("tampered size must fail replay")
	}

	// Wrong VP identifier.
	if err := Replay(DeriveVPID(testSecret(7)), vds, chunks); err == nil {
		t.Error("wrong VPID must fail replay")
	}

	// Reordered digests.
	vds4 := append([]VD(nil), vds...)
	vds4[3], vds4[4] = vds4[4], vds4[3]
	if err := Replay(r, vds4, chunks); err == nil {
		t.Error("reordered digests must fail replay")
	}
}

func TestReplayValidation(t *testing.T) {
	r := DeriveVPID(testSecret(8))
	if err := Replay(r, nil, nil); err == nil {
		t.Error("empty replay should fail")
	}
	g, _ := NewGenerator(r, 0)
	chunks := recordedChunks(t, "lens", 16)
	vds := generateAll(t, g, chunks)
	if err := Replay(r, vds, chunks[:59]); err == nil {
		t.Error("length mismatch should fail")
	}
}

func TestValidateRanges(t *testing.T) {
	v := &VD{T: 1000, L: geo.Pt(100, 0)}
	rx := geo.Pt(0, 0)
	if err := ValidateRanges(v, 1000, rx, 400); err != nil {
		t.Errorf("in-range VD should validate: %v", err)
	}
	if err := ValidateRanges(v, 1001, rx, 400); err != nil {
		t.Errorf("1-second-old VD should validate: %v", err)
	}
	if err := ValidateRanges(v, 1005, rx, 400); err == nil {
		t.Error("stale VD should fail")
	}
	far := &VD{T: 1000, L: geo.Pt(5000, 0)}
	if err := ValidateRanges(far, 1000, rx, 400); err == nil {
		t.Error("out-of-range location should fail")
	}
}

func TestNormalHashEqualsCascadeOnlyAtFirstSecond(t *testing.T) {
	// The two hashing schemes are different constructions; this guards
	// against accidentally implementing the cascade as a full rehash.
	r := DeriveVPID(testSecret(9))
	g, _ := NewGenerator(r, 0)
	chunks := recordedChunks(t, "cmp", 64)
	vds := generateAll(t, g, chunks)
	nh := NormalHash(vds[29].T, vds[29].L, vds[29].F, chunks[:30])
	if nh == vds[29].H {
		t.Error("normal hash should differ from cascade at second 30")
	}
}

// Property: the cascade is deterministic and sensitive to every input.
func TestCascadeStepProperties(t *testing.T) {
	f := func(tm int64, x, y float64, fsize int64, prev [16]byte, chunk []byte) bool {
		p := geo.Pt(x, y)
		h1 := CascadeStep(tm, p, fsize, Hash(prev), chunk)
		h2 := CascadeStep(tm, p, fsize, Hash(prev), chunk)
		if h1 != h2 {
			return false
		}
		// Flipping the previous hash changes the output.
		flipped := prev
		flipped[0] ^= 1
		return CascadeStep(tm, p, fsize, Hash(flipped), chunk) != h1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: wire round trip is the identity for arbitrary field values
// (within float32 representable coordinates).
func TestWireRoundTripProperty(t *testing.T) {
	f := func(tm int64, xs, ys, x1, y1 int16, fsize int64, seq uint16, r, h [16]byte) bool {
		v := VD{
			T: tm, L: geo.Pt(float64(xs), float64(ys)),
			F: fsize, L1: geo.Pt(float64(x1), float64(y1)),
			Seq: uint64(seq), R: VPID(r), H: Hash(h),
		}
		enc := v.Encode()
		dec, err := Decode(enc[:])
		return err == nil && dec == v
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// BenchmarkCascadeStep measures per-second digest cost with 50 MB/min
// content — the paper's Fig. 8 "cascading" curve is flat because this
// cost does not depend on how much was recorded before.
func BenchmarkCascadeStep(b *testing.B) {
	chunk := make([]byte, video.DefaultBytesPerSecond)
	var prev Hash
	b.SetBytes(int64(len(chunk)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		prev = CascadeStep(int64(i), geo.Pt(1, 2), int64(i)*int64(len(chunk)), prev, chunk)
	}
}

// BenchmarkNormalHashFullMinute measures the baseline at the end of the
// minute, when it must rehash all 50 MB.
func BenchmarkNormalHashFullMinute(b *testing.B) {
	chunks := make([][]byte, SegmentSeconds)
	for i := range chunks {
		chunks[i] = make([]byte, video.DefaultBytesPerSecond)
	}
	b.SetBytes(int64(SegmentSeconds * video.DefaultBytesPerSecond))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		NormalHash(60, geo.Pt(1, 2), 50e6, chunks)
	}
}
