package radio

import (
	"math"
	"testing"

	"viewmap/internal/geo"
)

func openMedium(seed int64) *Medium {
	return NewMedium(DefaultParams(), Environment{}, seed)
}

func TestMeanRSSIDecreasesWithDistance(t *testing.T) {
	m := openMedium(1)
	prev := math.Inf(1)
	for _, d := range []float64{10, 50, 100, 200, 400} {
		r := m.MeanRSSI(0, geo.Pt(0, 0), 1, geo.Pt(d, 0))
		if r >= prev {
			t.Errorf("RSSI should decrease with distance: %v dBm at %v m (prev %v)", r, d, prev)
		}
		prev = r
	}
}

func TestMeanRSSIClampsShortDistance(t *testing.T) {
	m := openMedium(1)
	r0 := m.MeanRSSI(0, geo.Pt(0, 0), 1, geo.Pt(0.1, 0))
	r1 := m.MeanRSSI(0, geo.Pt(0, 0), 1, geo.Pt(1, 0))
	if r0 != r1 {
		t.Errorf("sub-metre distances should clamp to 1 m: %v vs %v", r0, r1)
	}
}

func TestShadowingIsSymmetricAndStable(t *testing.T) {
	m := openMedium(7)
	a, b := geo.Pt(0, 0), geo.Pt(100, 0)
	r1 := m.MeanRSSI(3, a, 9, b)
	r2 := m.MeanRSSI(9, b, 3, a)
	if r1 != r2 {
		t.Errorf("link shadowing must be symmetric: %v vs %v", r1, r2)
	}
	if r3 := m.MeanRSSI(3, a, 9, b); r3 != r1 {
		t.Errorf("link shadowing must be stable over time: %v vs %v", r3, r1)
	}
}

func TestNLOSPenalty(t *testing.T) {
	wall := geo.NewObstacleSet(geo.Building{Footprint: geo.NewRect(geo.Pt(40, -10), geo.Pt(60, 10))})
	p := DefaultParams()
	p.ShadowSigmaDB = 0 // isolate the penetration loss
	blocked := NewMedium(p, Environment{Obstacles: wall}, 1)
	clear := NewMedium(p, Environment{}, 1)
	a, b := geo.Pt(0, 0), geo.Pt(100, 0)
	diff := clear.MeanRSSI(0, a, 1, b) - blocked.MeanRSSI(0, a, 1, b)
	if math.Abs(diff-p.BuildingPenetrationDB) > 1e-9 {
		t.Errorf("NLOS penalty = %v dB, want %v", diff, p.BuildingPenetrationDB)
	}
}

func TestOpenRoadDeliveryNearCertainOverAMinute(t *testing.T) {
	// The paper's Fig. 15: open-road VP linkage ratio > 99% out to
	// 400 m. A minute of 1 Hz beacons should deliver at least one
	// packet with overwhelming probability at every distance.
	m := openMedium(42)
	for _, d := range []float64{50, 100, 200, 300, 400} {
		delivered := 0
		for s := 0; s < 60; s++ {
			if m.TryDeliver(0, geo.Pt(0, 0), 1, geo.Pt(d, 0)).OK {
				delivered++
			}
		}
		if delivered == 0 {
			t.Errorf("no packets delivered in 60 s at %v m on open road", d)
		}
	}
}

func TestNLOSDeliveryRare(t *testing.T) {
	wall := geo.NewObstacleSet(geo.Building{Footprint: geo.NewRect(geo.Pt(40, -10), geo.Pt(60, 10))})
	m := NewMedium(DefaultParams(), Environment{Obstacles: wall}, 3)
	delivered := 0
	const trials = 600
	for i := 0; i < trials; i++ {
		if m.TryDeliver(0, geo.Pt(0, 0), 1, geo.Pt(100, 0)).OK {
			delivered++
		}
	}
	if frac := float64(delivered) / trials; frac > 0.05 {
		t.Errorf("NLOS delivery fraction = %v, want near zero", frac)
	}
}

func TestHardRangeCutoff(t *testing.T) {
	p := DefaultParams()
	p.FadingSigmaDB = 0
	p.ShadowSigmaDB = 0
	p.RxThresholdDBm = -200 // never fail on power
	m := NewMedium(p, Environment{}, 1)
	if !m.TryDeliver(0, geo.Pt(0, 0), 1, geo.Pt(449, 0)).OK {
		t.Error("packet inside hard range should deliver")
	}
	if m.TryDeliver(0, geo.Pt(0, 0), 1, geo.Pt(451, 0)).OK {
		t.Error("packet beyond hard range must not deliver")
	}
}

func TestTrafficDensityDegradesDelivery(t *testing.T) {
	a, b := geo.Pt(0, 0), geo.Pt(350, 0)
	count := func(density float64, seed int64) int {
		m := NewMedium(DefaultParams(), Environment{TrafficDensity: density}, seed)
		n := 0
		for i := 0; i < 2000; i++ {
			if m.TryDeliver(0, a, 1, b).OK {
				n++
			}
		}
		return n
	}
	light := count(0, 5)
	heavy := count(0.7, 5)
	if heavy >= light {
		t.Errorf("heavy traffic should degrade delivery: light=%d heavy=%d", light, heavy)
	}
}

func TestPDRShape(t *testing.T) {
	p := DefaultParams()
	// Strong signal: near 1. Weak: near 0. Threshold: one half.
	if got := p.PDR(-60); got < 0.999 {
		t.Errorf("PDR(-60 dBm) = %v, want ~1", got)
	}
	if got := p.PDR(-120); got > 0.001 {
		t.Errorf("PDR(-120 dBm) = %v, want ~0", got)
	}
	if got := p.PDR(p.RxThresholdDBm); math.Abs(got-0.5) > 1e-9 {
		t.Errorf("PDR(threshold) = %v, want 0.5", got)
	}
	// Monotone increasing.
	prev := -1.0
	for rssi := -120.0; rssi <= -60; rssi += 2 {
		v := p.PDR(rssi)
		if v < prev {
			t.Fatalf("PDR must be monotone in RSSI (at %v)", rssi)
		}
		prev = v
	}
}

func TestPDRZeroFading(t *testing.T) {
	p := DefaultParams()
	p.FadingSigmaDB = 0
	if p.PDR(p.RxThresholdDBm) != 1 {
		t.Error("at threshold with no fading, PDR should be 1")
	}
	if p.PDR(p.RxThresholdDBm-0.1) != 0 {
		t.Error("below threshold with no fading, PDR should be 0")
	}
}

func TestPDRFluctuatesInMidBand(t *testing.T) {
	// The Fig. 16 observation: between -100 and -80 dBm the per-link
	// PDR varies widely. Mean RSSI in that band must map to
	// intermediate PDR values rather than 0/1.
	p := DefaultParams()
	mid := p.PDR(-95)
	if mid < 0.05 || mid > 0.95 {
		t.Errorf("PDR in the fluctuation band = %v, want intermediate", mid)
	}
}

func TestMeanPathRSSI(t *testing.T) {
	p := DefaultParams()
	got := p.MeanPathRSSI(100)
	want := p.TxPowerDBm - p.PathLossRefDB - 10*p.PathLossExp*2
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("MeanPathRSSI(100) = %v, want %v", got, want)
	}
	if p.MeanPathRSSI(0.5) != p.MeanPathRSSI(1) {
		t.Error("short distances clamp to 1 m")
	}
}

func TestEmpiricalPDRTracksAnalytic(t *testing.T) {
	p := DefaultParams()
	p.ShadowSigmaDB = 0 // remove per-link offset so analytic matches
	m := NewMedium(p, Environment{}, 99)
	a, b := geo.Pt(0, 0), geo.Pt(250, 0)
	pdr, _ := m.EmpiricalPDR(0, a, 1, b, 5000)
	want := p.PDR(p.MeanPathRSSI(250))
	if math.Abs(pdr-want) > 0.05 {
		t.Errorf("empirical PDR %v deviates from analytic %v", pdr, want)
	}
}

func TestEmpiricalPDRZeroProbes(t *testing.T) {
	m := openMedium(1)
	pdr, rssi := m.EmpiricalPDR(0, geo.Pt(0, 0), 1, geo.Pt(10, 0), 0)
	if pdr != 0 || rssi != 0 {
		t.Error("zero probes should return zeros")
	}
}

func TestLOSQueryDelegation(t *testing.T) {
	wall := geo.NewObstacleSet(geo.Building{Footprint: geo.NewRect(geo.Pt(40, -10), geo.Pt(60, 10))})
	m := NewMedium(DefaultParams(), Environment{Obstacles: wall}, 1)
	if m.LOS(geo.Pt(0, 0), geo.Pt(100, 0)) {
		t.Error("LOS should be blocked by wall")
	}
	if !m.LOS(geo.Pt(0, 50), geo.Pt(100, 50)) {
		t.Error("LOS should be clear beside wall")
	}
}

func BenchmarkTryDeliver(b *testing.B) {
	m := openMedium(1)
	pa, pb := geo.Pt(0, 0), geo.Pt(200, 0)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m.TryDeliver(0, pa, 1, pb)
	}
}
