// Package radio models DSRC (IEEE 802.11p) broadcast propagation
// between vehicles. It substitutes for the paper's field testbed of
// DSRC on-board units (Section 7).
//
// The model is built around the paper's central measurement finding:
// line-of-sight condition — not distance, RSSI, or vehicle speed — is
// the dominating factor for VP linkage within the 400 m DSRC range.
// Concretely:
//
//   - Received power follows a log-distance path-loss law with per-link
//     shadowing. At the paper's 14 dBm transmit power an unobstructed
//     link stays comfortably above the receive threshold out to 400 m,
//     so open-road linkage is near-certain (Fig. 15 "Open road").
//   - A building between the endpoints adds a large penetration loss
//     that pushes the link far below threshold, so NLOS links almost
//     never deliver (Table 2 NLOS rows).
//   - Heavy surrounding traffic occasionally interposes large vehicles,
//     adding a moderate transient loss; this reproduces the highway
//     traffic-volume effect of Fig. 17.
//   - Per-packet fading around the mean RSSI produces the fluctuating
//     packet delivery ratios in the -100..-80 dBm band seen in Fig. 16.
//
// There is deliberately no velocity term: the paper measures VP linkage
// to be insensitive to speed, and our model reproduces that by
// construction.
package radio

import (
	"math"
	"math/rand"

	"viewmap/internal/geo"
)

// Params are the physical-layer constants of the model. The defaults
// are calibrated so the emergent linkage curves match the shapes of the
// paper's Figs. 15-17.
type Params struct {
	// TxPowerDBm is the transmit power; the paper uses 14 dBm as
	// recommended by the DSRC characterization study it cites.
	TxPowerDBm float64
	// PathLossRefDB is the path loss at the 1 m reference distance.
	PathLossRefDB float64
	// PathLossExp is the path-loss exponent for in-road propagation.
	PathLossExp float64
	// ShadowSigmaDB is the standard deviation of slow per-link
	// log-normal shadowing.
	ShadowSigmaDB float64
	// FadingSigmaDB is the standard deviation of fast per-packet fading.
	FadingSigmaDB float64
	// RxThresholdDBm is the receiver sensitivity: a packet whose faded
	// RSSI falls below it is lost.
	RxThresholdDBm float64
	// BuildingPenetrationDB is the extra loss when a building blocks
	// the direct path.
	BuildingPenetrationDB float64
	// VehicleBlockDB is the extra loss when interposed heavy traffic
	// blocks the direct path.
	VehicleBlockDB float64
	// HardRangeM is the absolute range cutoff; DSRC radios simply do
	// not decode beyond it regardless of fading luck.
	HardRangeM float64
}

// DefaultParams returns the calibrated model constants.
func DefaultParams() Params {
	return Params{
		TxPowerDBm:            14,
		PathLossRefDB:         47.9,
		PathLossExp:           2.1,
		ShadowSigmaDB:         3.0,
		FadingSigmaDB:         5.5,
		RxThresholdDBm:        -92,
		BuildingPenetrationDB: 55,
		VehicleBlockDB:        18,
		HardRangeM:            450,
	}
}

// Environment describes the surroundings a link operates in.
type Environment struct {
	// Obstacles are the static structures (buildings, bridges, tunnel
	// walls) that can block line of sight. May be nil for open road.
	Obstacles *geo.ObstacleSet
	// TrafficDensity in [0,1] is the probability, per packet, that
	// interposed heavy traffic shadows the direct path. 0 models light
	// traffic, values near 0.5 a congested highway.
	TrafficDensity float64
}

// Medium is a shared radio channel with per-link shadowing state.
// It is not safe for concurrent use; the simulators drive it from a
// single goroutine, mirroring the discrete-event style of ns-3.
type Medium struct {
	params Params
	env    Environment
	rng    *rand.Rand
	shadow map[[2]int]float64 // symmetric per-pair shadowing, dB
}

// NewMedium creates a channel with the given physics, environment and
// deterministic seed.
func NewMedium(p Params, env Environment, seed int64) *Medium {
	return &Medium{
		params: p,
		env:    env,
		rng:    rand.New(rand.NewSource(seed)),
		shadow: make(map[[2]int]float64),
	}
}

// Params returns the physical constants in use.
func (m *Medium) Params() Params { return m.params }

func pairKey(a, b int) [2]int {
	if a > b {
		a, b = b, a
	}
	return [2]int{a, b}
}

// linkShadow returns the slow shadowing term for the (a,b) pair,
// drawing it once per pair and holding it for the medium's lifetime —
// shadowing decorrelates over tens of metres, i.e. slower than the
// 1-minute windows we simulate.
func (m *Medium) linkShadow(a, b int) float64 {
	k := pairKey(a, b)
	if s, ok := m.shadow[k]; ok {
		return s
	}
	s := m.rng.NormFloat64() * m.params.ShadowSigmaDB
	m.shadow[k] = s
	return s
}

// LOS reports whether the direct path between two positions is free of
// static obstacles.
func (m *Medium) LOS(pa, pb geo.Point) bool {
	return m.env.Obstacles.LOS(pa, pb)
}

// MeanRSSI returns the average received signal strength for a
// transmission from position pa (node a) to pb (node b), including
// path loss, per-link shadowing, and building penetration loss when the
// path is NLOS — but excluding per-packet fading.
func (m *Medium) MeanRSSI(a int, pa geo.Point, b int, pb geo.Point) float64 {
	d := pa.Dist(pb)
	if d < 1 {
		d = 1
	}
	rssi := m.params.TxPowerDBm - m.params.PathLossRefDB -
		10*m.params.PathLossExp*math.Log10(d) + m.linkShadow(a, b)
	if !m.LOS(pa, pb) {
		rssi -= m.params.BuildingPenetrationDB
	}
	return rssi
}

// Delivery is the outcome of one broadcast reception attempt.
type Delivery struct {
	OK   bool
	RSSI float64 // faded per-packet RSSI actually seen by the receiver
}

// TryDeliver simulates a single packet from node a at pa to node b at
// pb: it applies per-packet fading and the transient traffic-blockage
// loss, then compares the result with the receive threshold and the
// hard range limit.
func (m *Medium) TryDeliver(a int, pa geo.Point, b int, pb geo.Point) Delivery {
	return m.TryDeliverLoss(a, pa, b, pb, 0)
}

// TryDeliverLoss is TryDeliver with an additional caller-supplied loss
// in dB. Scenario simulations use it to model persistent blockage by
// interposed heavy vehicles, whose on/off dynamics live above the
// packet level (a truck stays between two cars for tens of seconds,
// not one beacon).
func (m *Medium) TryDeliverLoss(a int, pa geo.Point, b int, pb geo.Point, extraLossDB float64) Delivery {
	d := pa.Dist(pb)
	rssi := m.MeanRSSI(a, pa, b, pb) - extraLossDB
	if m.env.TrafficDensity > 0 && m.rng.Float64() < m.env.TrafficDensity {
		rssi -= m.params.VehicleBlockDB
	}
	rssi += m.rng.NormFloat64() * m.params.FadingSigmaDB
	ok := d <= m.params.HardRangeM && rssi >= m.params.RxThresholdDBm
	return Delivery{OK: ok, RSSI: rssi}
}

// PDR returns the analytic packet delivery ratio for a given mean RSSI:
// the probability that Gaussian per-packet fading lifts the signal above
// the receive threshold. This is the curve behind the Fig. 16 scatter.
func (p Params) PDR(meanRSSI float64) float64 {
	if p.FadingSigmaDB == 0 {
		if meanRSSI >= p.RxThresholdDBm {
			return 1
		}
		return 0
	}
	z := (meanRSSI - p.RxThresholdDBm) / p.FadingSigmaDB
	return 0.5 * math.Erfc(-z/math.Sqrt2)
}

// MeanPathRSSI returns the shadowing-free mean RSSI at distance d under
// LOS, useful for analytic plots.
func (p Params) MeanPathRSSI(d float64) float64 {
	if d < 1 {
		d = 1
	}
	return p.TxPowerDBm - p.PathLossRefDB - 10*p.PathLossExp*math.Log10(d)
}

// EmpiricalPDR sends n probe packets between two fixed positions and
// returns the delivered fraction alongside the mean observed RSSI. The
// Fig. 16 harness uses it to generate the PDR-vs-RSSI scatter.
func (m *Medium) EmpiricalPDR(a int, pa geo.Point, b int, pb geo.Point, n int) (pdr, meanRSSI float64) {
	if n <= 0 {
		return 0, 0
	}
	delivered := 0
	var sum float64
	for i := 0; i < n; i++ {
		dl := m.TryDeliver(a, pa, b, pb)
		if dl.OK {
			delivered++
		}
		sum += dl.RSSI
	}
	return float64(delivered) / float64(n), sum / float64(n)
}
