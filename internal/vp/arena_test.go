package vp

import (
	"bytes"
	"errors"
	"reflect"
	"testing"

	"viewmap/internal/vd"
)

// Arena-decode tests: the zero-copy batch decoder must accept and
// reject exactly what Unmarshal does, produce semantically identical
// profiles, never alias the request body, and degrade to the
// allocating path on overflow — the containment invariants the
// ARCHITECTURE.md "Ingest burst pipeline" section names.

// testProfile returns one finalized profile; alternating seeds vary
// the geometry via the pair gap.
func testProfile(t *testing.T, seed int64) *Profile {
	t.Helper()
	pa, pb := buildPair(t, 50+float64(seed))
	if seed%2 == 0 {
		return pa
	}
	return pb
}

// arenaFixture builds n valid wire records via the client-side Builder
// pipeline (Marshal of a synthesized profile).
func arenaFixture(t *testing.T, n int) [][]byte {
	t.Helper()
	recs := make([][]byte, 0, n)
	for i := 0; i < n; i++ {
		p := testProfile(t, int64(i))
		recs = append(recs, p.Marshal())
	}
	return recs
}

func TestArenaMatchesUnmarshal(t *testing.T) {
	recs := arenaFixture(t, 4)
	a := NewBatchArena(len(recs))
	for i, rec := range recs {
		want, err := Unmarshal(rec)
		if err != nil {
			t.Fatal(err)
		}
		got, err := a.Unmarshal(rec)
		if err != nil {
			t.Fatalf("record %d: arena decode: %v", i, err)
		}
		if !reflect.DeepEqual(got.VDs, want.VDs) {
			t.Fatalf("record %d: VDs diverge from Unmarshal", i)
		}
		if got.ID() != want.ID() || got.Minute() != want.Minute() {
			t.Fatalf("record %d: identity diverges", i)
		}
		if !bytes.Equal(got.Neighbors.Bytes(), want.Neighbors.Bytes()) {
			t.Fatalf("record %d: filter bits diverge", i)
		}
	}
}

// TestArenaDoesNotAliasRequestBody pins the containment rule: after
// decode, scribbling over the wire buffer must not change the decoded
// profile (a 512-byte alias into a large upload buffer would pin the
// whole buffer for the profile's lifetime, and a mutable alias would
// let a later request mutate stored state).
func TestArenaDoesNotAliasRequestBody(t *testing.T) {
	rec := arenaFixture(t, 1)[0]
	a := NewBatchArena(1)
	p, err := a.Unmarshal(rec)
	if err != nil {
		t.Fatal(err)
	}
	id, minute := p.ID(), p.Minute()
	filterBefore := append([]byte(nil), p.Neighbors.Bytes()...)
	vdsBefore := append([]vd.VD(nil), p.VDs...)
	for i := range rec {
		rec[i] = 0xFF
	}
	if p.ID() != id || p.Minute() != minute {
		t.Fatal("profile identity changed when the wire buffer was scribbled")
	}
	if !bytes.Equal(p.Neighbors.Bytes(), filterBefore) {
		t.Fatal("filter bits alias the wire buffer")
	}
	if !reflect.DeepEqual(p.VDs, vdsBefore) {
		t.Fatal("VD slab aliases the wire buffer")
	}
}

// TestArenaOverflowFallsBack decodes more records than the arena was
// sized for: the overflow must succeed via the allocating path and the
// in-slab profiles must be untouched by it.
func TestArenaOverflowFallsBack(t *testing.T) {
	recs := arenaFixture(t, 3)
	a := NewBatchArena(2)
	var got []*Profile
	for _, rec := range recs {
		p, err := a.Unmarshal(rec)
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, p)
	}
	if len(a.profs) != 2 {
		t.Fatalf("arena holds %d profiles, want 2 (third should fall back)", len(a.profs))
	}
	for i, p := range got {
		want, err := Unmarshal(recs[i])
		if err != nil {
			t.Fatal(err)
		}
		if p.ID() != want.ID() || !reflect.DeepEqual(p.VDs, want.VDs) {
			t.Fatalf("record %d diverges after overflow", i)
		}
	}
}

// TestArenaRejectsLikeUnmarshal feeds malformed records: same error,
// and no arena space consumed.
func TestArenaRejectsLikeUnmarshal(t *testing.T) {
	valid := arenaFixture(t, 1)[0]
	cases := map[string][]byte{
		"truncated": valid[:5],
		"shortBody": valid[:len(valid)-1],
		"zeroCount": append(append([]byte{0, 0, 0, 0}, 0), valid[5:]...),
		"hugeCount": append(append([]byte{0, 0, 1, 0}, valid[4]), valid[5:]...),
		"badCoordinate": func() []byte {
			b := append([]byte(nil), valid...)
			// First VD's L.X at offset 6+8: NaN bits.
			b[14], b[15], b[16], b[17] = 0x7F, 0xC0, 0, 0
			return b
		}(),
	}
	for name, rec := range cases {
		a := NewBatchArena(4)
		_, wantErr := Unmarshal(rec)
		if wantErr == nil {
			t.Fatalf("%s: fixture unexpectedly valid", name)
		}
		_, gotErr := a.Unmarshal(rec)
		if gotErr == nil {
			t.Fatalf("%s: arena accepted what Unmarshal rejects", name)
		}
		if gotErr.Error() != wantErr.Error() && !errors.Is(gotErr, wantErr) {
			t.Fatalf("%s: arena error %q, Unmarshal error %q", name, gotErr, wantErr)
		}
		if len(a.vds) != 0 || len(a.profs) != 0 || len(a.filters) != 0 || len(a.bits) != 0 {
			t.Fatalf("%s: rejected record consumed arena space", name)
		}
	}
}

// TestPeekRecordMinuteAgreesWithDecode pins the grouping contract: a
// record that decodes lands in the same minute PeekRecordMinute
// reported, and records Peek refuses are exactly those needing the
// full decoder for an error.
func TestPeekRecordMinuteAgreesWithDecode(t *testing.T) {
	for i := 0; i < 3; i++ {
		p := testProfile(t, int64(i))
		rec := p.Marshal()
		m, ok := PeekRecordMinute(rec)
		if !ok {
			t.Fatalf("peek refused a valid record")
		}
		if m != p.Minute() {
			t.Fatalf("peek minute %d, decode minute %d", m, p.Minute())
		}
	}
	if _, ok := PeekRecordMinute([]byte{1, 2, 3}); ok {
		t.Fatal("peek accepted a truncated record")
	}
}
