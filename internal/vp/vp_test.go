package vp

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"viewmap/internal/geo"
	"viewmap/internal/roadnet"
	"viewmap/internal/vd"
	"viewmap/internal/video"
)

const dsrcRange = 400

func fixedSecret(b byte) vd.Secret {
	var q vd.Secret
	for i := range q {
		q[i] = b
	}
	return q
}

// buildPair records two vehicles side by side for a minute, exchanging
// VDs every second, and returns their finalized profiles.
func buildPair(t testing.TB, gap float64) (*Profile, *Profile) {
	t.Helper()
	ra := vd.DeriveVPID(fixedSecret(1))
	rb := vd.DeriveVPID(fixedSecret(2))
	ba, err := NewBuilder(ra, 0, 0, dsrcRange)
	if err != nil {
		t.Fatal(err)
	}
	bb, err := NewBuilder(rb, 0, 0, dsrcRange)
	if err != nil {
		t.Fatal(err)
	}
	srcA, _ := video.NewSyntheticSource("pair-A", 1000)
	srcB, _ := video.NewSyntheticSource("pair-B", 1000)
	for i := 1; i <= vd.SegmentSeconds; i++ {
		la := geo.Pt(float64(i)*10, 0)
		lb := geo.Pt(float64(i)*10+gap, 0)
		va, err := ba.RecordSecond(la, srcA.SecondChunk(0, i))
		if err != nil {
			t.Fatal(err)
		}
		vb, err := bb.RecordSecond(lb, srcB.SecondChunk(0, i))
		if err != nil {
			t.Fatal(err)
		}
		now := int64(i)
		if gap <= dsrcRange {
			if err := ba.AcceptNeighborVD(vb, now); err != nil {
				t.Fatalf("A accepting B's VD: %v", err)
			}
			if err := bb.AcceptNeighborVD(va, now); err != nil {
				t.Fatalf("B accepting A's VD: %v", err)
			}
		}
	}
	pa, err := ba.Finalize()
	if err != nil {
		t.Fatal(err)
	}
	pb, err := bb.Finalize()
	if err != nil {
		t.Fatal(err)
	}
	return pa, pb
}

func TestStorageBytesMatchesPaper(t *testing.T) {
	if StorageBytes != 4840 {
		t.Errorf("StorageBytes = %d, want 4840 (Section 6.1 accounting with the 4096-bit filter)", StorageBytes)
	}
	// Less than 0.01% of a 50 MB video.
	if frac := float64(StorageBytes) / 50e6; frac > 0.0001 {
		t.Errorf("VP overhead fraction = %v, want < 0.01%%", frac)
	}
}

func TestBuilderFullMinuteProfile(t *testing.T) {
	pa, pb := buildPair(t, 50)
	for _, p := range []*Profile{pa, pb} {
		if !p.Complete() {
			t.Fatal("profile should be complete")
		}
		if err := p.Validate(); err != nil {
			t.Fatalf("profile should validate: %v", err)
		}
	}
	if pa.ID() == pb.ID() {
		t.Error("distinct vehicles must have distinct VP identifiers")
	}
	if pa.StartUnix() != 0 || pa.Minute() != 0 {
		t.Errorf("StartUnix/Minute = %d/%d, want 0/0", pa.StartUnix(), pa.Minute())
	}
}

func TestMutualNeighborsLinked(t *testing.T) {
	pa, pb := buildPair(t, 50)
	if !MutualNeighbors(pa, pb, dsrcRange) {
		t.Error("co-travelling vehicles should be mutual neighbors")
	}
	if !MutualNeighbors(pb, pa, dsrcRange) {
		t.Error("mutual neighborship must be symmetric")
	}
}

func TestMutualNeighborsNotLinkedWhenSilent(t *testing.T) {
	// Vehicles never exchanged VDs (gap beyond range): no viewlink even
	// if we later test with a generous range.
	pa, pb := buildPair(t, 5000)
	if MutualNeighbors(pa, pb, 1e9) {
		t.Error("vehicles that never exchanged VDs must not link")
	}
}

func TestMutualNeighborsRequiresProximity(t *testing.T) {
	// Exchange happened (gap 300 <= range) but the claimed check range
	// is tighter than their separation: proximity fails.
	pa, pb := buildPair(t, 300)
	if MutualNeighbors(pa, pb, 100) {
		t.Error("proximity check should reject distant trajectories")
	}
}

func TestMutualNeighborsOneWayRejected(t *testing.T) {
	// B hears A, but A never hears B: one-way linkage must not count.
	ra := vd.DeriveVPID(fixedSecret(3))
	rb := vd.DeriveVPID(fixedSecret(4))
	ba, _ := NewBuilder(ra, 0, 0, dsrcRange)
	bb, _ := NewBuilder(rb, 0, 0, dsrcRange)
	srcA, _ := video.NewSyntheticSource("ow-A", 100)
	srcB, _ := video.NewSyntheticSource("ow-B", 100)
	for i := 1; i <= vd.SegmentSeconds; i++ {
		l := geo.Pt(float64(i), 0)
		va, _ := ba.RecordSecond(l, srcA.SecondChunk(0, i))
		if _, err := bb.RecordSecond(l.Add(geo.Pt(20, 0)), srcB.SecondChunk(0, i)); err != nil {
			t.Fatal(err)
		}
		if err := bb.AcceptNeighborVD(va, int64(i)); err != nil {
			t.Fatal(err)
		}
	}
	pa, _ := ba.Finalize()
	pb, _ := bb.Finalize()
	if MutualNeighbors(pa, pb, dsrcRange) {
		t.Error("one-way VD reception must not create a viewlink")
	}
}

func TestMutualNeighborsDifferentMinutes(t *testing.T) {
	pa, _ := buildPair(t, 50)
	rb := vd.DeriveVPID(fixedSecret(9))
	bb, _ := NewBuilder(rb, 60, 0, dsrcRange)
	src, _ := video.NewSyntheticSource("min2", 100)
	for i := 1; i <= vd.SegmentSeconds; i++ {
		if _, err := bb.RecordSecond(geo.Pt(float64(i)*10, 0), src.SecondChunk(60, i)); err != nil {
			t.Fatal(err)
		}
	}
	pb, _ := bb.Finalize()
	if MutualNeighbors(pa, pb, dsrcRange) {
		t.Error("profiles from different minutes must not link")
	}
}

func TestAcceptNeighborVDValidation(t *testing.T) {
	r := vd.DeriveVPID(fixedSecret(5))
	b, _ := NewBuilder(r, 0, 0, dsrcRange)
	nb := vd.VD{T: 1, L: geo.Pt(10, 0), Seq: 1, R: vd.DeriveVPID(fixedSecret(6))}
	if err := b.AcceptNeighborVD(nb, 1); err == nil {
		t.Error("accepting before first recorded second should fail")
	}
	src, _ := video.NewSyntheticSource("val", 100)
	if _, err := b.RecordSecond(geo.Pt(0, 0), src.SecondChunk(0, 1)); err != nil {
		t.Fatal(err)
	}
	// Stale time.
	stale := vd.VD{T: -30, L: geo.Pt(10, 0), Seq: 1, R: nb.R}
	if err := b.AcceptNeighborVD(stale, 1); err == nil {
		t.Error("stale VD should be rejected")
	}
	// Too far away.
	far := vd.VD{T: 1, L: geo.Pt(10000, 0), Seq: 1, R: nb.R}
	if err := b.AcceptNeighborVD(far, 1); err == nil {
		t.Error("out-of-range VD should be rejected")
	}
	if err := b.AcceptNeighborVD(nb, 1); err != nil {
		t.Errorf("valid VD should be accepted: %v", err)
	}
	if b.NeighborCount() != 1 {
		t.Errorf("NeighborCount = %d, want 1", b.NeighborCount())
	}
}

func TestNeighborCap(t *testing.T) {
	r := vd.DeriveVPID(fixedSecret(7))
	b, _ := NewBuilder(r, 0, 3, dsrcRange)
	src, _ := video.NewSyntheticSource("cap", 100)
	if _, err := b.RecordSecond(geo.Pt(0, 0), src.SecondChunk(0, 1)); err != nil {
		t.Fatal(err)
	}
	for i := byte(0); i < 5; i++ {
		nb := vd.VD{T: 1, L: geo.Pt(10, 0), Seq: 1, R: vd.DeriveVPID(fixedSecret(100 + i))}
		err := b.AcceptNeighborVD(nb, 1)
		if i < 3 && err != nil {
			t.Errorf("neighbor %d should be accepted: %v", i, err)
		}
		if i >= 3 && err != ErrNeighborCapReached {
			t.Errorf("neighbor %d should hit the cap, got %v", i, err)
		}
	}
	// Known neighbors still update their last VD past the cap.
	known := vd.VD{T: 2, L: geo.Pt(12, 0), Seq: 2, R: vd.DeriveVPID(fixedSecret(100))}
	if _, err := b.RecordSecond(geo.Pt(1, 0), src.SecondChunk(0, 2)); err != nil {
		t.Fatal(err)
	}
	if err := b.AcceptNeighborVD(known, 2); err != nil {
		t.Errorf("known neighbor update should succeed past cap: %v", err)
	}
}

func TestFinalizeIncomplete(t *testing.T) {
	r := vd.DeriveVPID(fixedSecret(8))
	b, _ := NewBuilder(r, 0, 0, dsrcRange)
	if _, err := b.Finalize(); err == nil {
		t.Error("finalizing an incomplete segment should fail")
	}
}

func TestValidateCatchesTampering(t *testing.T) {
	pa, _ := buildPair(t, 50)

	broken := &Profile{VDs: append([]vd.VD(nil), pa.VDs...), Neighbors: pa.Neighbors}
	broken.VDs[5].Seq = 99
	if err := broken.Validate(); err == nil {
		t.Error("sequence tampering should fail validation")
	}

	broken2 := &Profile{VDs: append([]vd.VD(nil), pa.VDs...), Neighbors: pa.Neighbors}
	broken2.VDs[5].R = vd.DeriveVPID(fixedSecret(99))
	if err := broken2.Validate(); err == nil {
		t.Error("identifier change should fail validation")
	}

	broken3 := &Profile{VDs: append([]vd.VD(nil), pa.VDs...), Neighbors: pa.Neighbors}
	broken3.VDs[6].F = 1 // shrinking size
	if err := broken3.Validate(); err == nil {
		t.Error("shrinking file size should fail validation")
	}

	broken4 := &Profile{VDs: pa.VDs[:30], Neighbors: pa.Neighbors}
	if err := broken4.Validate(); err == nil {
		t.Error("incomplete profile should fail validation")
	}
}

func TestValidateRejectsPoisonedFilter(t *testing.T) {
	pa, _ := buildPair(t, 50)
	pa.Neighbors.SetAll()
	if err := pa.Validate(); err == nil {
		t.Error("all-ones filter must be rejected as poisoning")
	}
}

func TestPlausibleTrajectory(t *testing.T) {
	pa, _ := buildPair(t, 50)
	if !pa.PlausibleTrajectory() {
		t.Error("10 m/s trajectory should be plausible")
	}
	tele := &Profile{VDs: append([]vd.VD(nil), pa.VDs...), Neighbors: pa.Neighbors}
	tele.VDs[30].L = geo.Pt(1e6, 1e6)
	if tele.PlausibleTrajectory() {
		t.Error("teleporting trajectory should be implausible")
	}
}

func TestEntersArea(t *testing.T) {
	pa, _ := buildPair(t, 50) // travels x=10..600 at y=0
	if !pa.EntersArea(geo.NewRect(geo.Pt(200, -50), geo.Pt(300, 50))) {
		t.Error("profile should enter area on its path")
	}
	if pa.EntersArea(geo.NewRect(geo.Pt(5000, 5000), geo.Pt(6000, 6000))) {
		t.Error("profile should not enter a far-away area")
	}
}

func TestMarshalUnmarshalRoundTrip(t *testing.T) {
	pa, _ := buildPair(t, 50)
	enc := pa.Marshal()
	back, err := Unmarshal(enc)
	if err != nil {
		t.Fatal(err)
	}
	if back.ID() != pa.ID() {
		t.Error("round trip changed VP identifier")
	}
	if len(back.VDs) != len(pa.VDs) {
		t.Fatalf("round trip changed VD count")
	}
	for i := range pa.VDs {
		if back.VDs[i] != pa.VDs[i] {
			t.Fatalf("round trip changed VD %d", i)
		}
	}
	if err := back.Validate(); err != nil {
		t.Errorf("round-tripped profile should validate: %v", err)
	}
	// The filters must answer queries identically.
	for i := range pa.VDs {
		key := pa.VDs[i].Key()
		if back.Neighbors.Test(key) != pa.Neighbors.Test(key) {
			t.Fatal("round trip changed filter behaviour")
		}
	}
}

func TestUnmarshalRejectsGarbage(t *testing.T) {
	if _, err := Unmarshal(nil); err == nil {
		t.Error("nil input should fail")
	}
	if _, err := Unmarshal(make([]byte, 5)); err == nil {
		t.Error("truncated header should fail")
	}
	pa, _ := buildPair(t, 50)
	enc := pa.Marshal()
	if _, err := Unmarshal(enc[:len(enc)-1]); err == nil {
		t.Error("truncated body should fail")
	}
	bad := append([]byte(nil), enc...)
	bad[0] = 0xFF // absurd VD count
	if _, err := Unmarshal(bad); err == nil {
		t.Error("absurd VD count should fail")
	}
}

func TestSelectGuardTargets(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	ids := make([]vd.VPID, 20)
	for i := range ids {
		ids[i] = vd.DeriveVPID(fixedSecret(byte(i)))
	}
	got := SelectGuardTargets(ids, 0.1, rng)
	if len(got) != 2 {
		t.Errorf("alpha=0.1 of 20 should select ceil(2)=2, got %d", len(got))
	}
	if got := SelectGuardTargets(ids, 0.05, rng); len(got) != 1 {
		t.Errorf("ceil(0.05*20)=1, got %d", len(got))
	}
	if got := SelectGuardTargets(ids, 2.0, rng); len(got) != 20 {
		t.Errorf("alpha>1 clamps to all, got %d", len(got))
	}
	if got := SelectGuardTargets(nil, 0.1, rng); got != nil {
		t.Error("no neighbors yields nil")
	}
	if got := SelectGuardTargets(ids, 0, rng); got != nil {
		t.Error("alpha=0 yields nil")
	}
}

func TestUncoveredProbabilityPaperTarget(t *testing.T) {
	// Section 6.2.2: alpha = 0.1 pushes P_t below 0.01 within 5 minutes
	// (for reasonable neighbor counts; the paper's Fig. 9 discussion
	// uses m in the tens).
	if p := UncoveredProbability(0.1, 50, 5); p >= 0.01 {
		t.Errorf("P_5 at alpha=0.1, m=50 = %v, want < 0.01", p)
	}
	// Monotone: more minutes => lower probability.
	p3 := UncoveredProbability(0.1, 40, 3)
	p6 := UncoveredProbability(0.1, 40, 6)
	if p6 >= p3 {
		t.Errorf("P_t should fall with time: P_3=%v P_6=%v", p3, p6)
	}
	// Degenerate inputs.
	if UncoveredProbability(0.1, 0, 5) != 1 {
		t.Error("no neighbors: never covered")
	}
	if UncoveredProbability(0.1, 40, 0) != 1 {
		t.Error("no time: never covered")
	}
}

func TestGuardVPCount(t *testing.T) {
	// Fig. 9: VPs created per minute = 1 actual + ceil(alpha*m) guards.
	rng := rand.New(rand.NewSource(2))
	ids := make([]vd.VPID, 100)
	for i := range ids {
		ids[i] = vd.DeriveVPID(fixedSecret(byte(i)))
	}
	for _, tc := range []struct {
		alpha float64
		want  int
	}{{0.1, 10}, {0.5, 50}, {0.9, 90}} {
		if got := len(SelectGuardTargets(ids, tc.alpha, rng)); got != tc.want {
			t.Errorf("alpha=%v selects %d guards, want %d", tc.alpha, got, tc.want)
		}
	}
}

func guardTestCity(t testing.TB) *roadnet.City {
	t.Helper()
	c, err := roadnet.BuildGrid(roadnet.GridConfig{Cols: 8, Rows: 8, Spacing: 150})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestBuildGuardTrajectory(t *testing.T) {
	city := guardTestCity(t)
	rng := rand.New(rand.NewSource(3))
	from := geo.Pt(0, 0)
	to := geo.Pt(450, 300)
	g, err := BuildGuard(city.Net, from, to, 120, GuardConfig{JitterM: 5}, rng)
	if err != nil {
		t.Fatal(err)
	}
	if !g.Complete() {
		t.Fatal("guard profile must span the full minute")
	}
	if err := g.Validate(); err != nil {
		t.Fatalf("guard must pass structural validation (indistinguishability): %v", err)
	}
	if d := g.InitialLocation().Dist(from); d > 20 {
		t.Errorf("guard starts %v m from the neighbor's initial location", d)
	}
	if d := g.FinalLocation().Dist(to); d > 20 {
		t.Errorf("guard ends %v m from the vehicle's final position (auto speed): %v", d, g.FinalLocation())
	}
	if !g.PlausibleTrajectory() {
		t.Error("guard trajectory should be drivable")
	}
	if g.StartUnix() != 120 {
		t.Errorf("guard StartUnix = %d, want 120", g.StartUnix())
	}
}

func TestBuildGuardValidation(t *testing.T) {
	city := guardTestCity(t)
	rng := rand.New(rand.NewSource(4))
	if _, err := BuildGuard(city.Net, geo.Pt(0, 0), geo.Pt(100, 0), 61, GuardConfig{}, rng); err == nil {
		t.Error("misaligned start should fail")
	}
}

func TestGuardLinksWithActual(t *testing.T) {
	city := guardTestCity(t)
	rng := rand.New(rand.NewSource(5))
	pa, _ := buildPair(t, 50) // actual VP: x=10..600, y=0, minute 0
	g, err := BuildGuard(city.Net, geo.Pt(0, 300), pa.FinalLocation(), 0, GuardConfig{}, rng)
	if err != nil {
		t.Fatal(err)
	}
	if MutualNeighbors(pa, g, dsrcRange) {
		t.Fatal("guard must not link before LinkMutually")
	}
	if err := LinkMutually(pa, g); err != nil {
		t.Fatal(err)
	}
	if !MutualNeighbors(pa, g, dsrcRange) {
		t.Error("linked guard should be a mutual neighbor of the actual VP")
	}
}

func TestLinkMutuallyValidation(t *testing.T) {
	pa, _ := buildPair(t, 50)
	if err := LinkMutually(pa, &Profile{}); err == nil {
		t.Error("linking an empty profile should fail")
	}
}

// Property: marshalled profiles always round-trip.
func TestMarshalRoundTripProperty(t *testing.T) {
	pa, pb := buildPair(t, 50)
	profiles := []*Profile{pa, pb}
	f := func(pick bool) bool {
		p := profiles[0]
		if pick {
			p = profiles[1]
		}
		back, err := Unmarshal(p.Marshal())
		if err != nil {
			return false
		}
		return back.ID() == p.ID() && len(back.VDs) == len(p.VDs)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

// Property: UncoveredProbability is a probability and is monotone
// non-increasing in alpha.
func TestUncoveredProbabilityProperty(t *testing.T) {
	f := func(a8 uint8, m8 uint8, t8 uint8) bool {
		alpha := 0.01 + float64(a8%90)/100
		m := 1 + int(m8%200)
		tm := 1 + int(t8%30)
		p := UncoveredProbability(alpha, m, tm)
		if p < 0 || p > 1 || math.IsNaN(p) {
			return false
		}
		return UncoveredProbability(alpha+0.05, m, tm) <= p+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func BenchmarkMutualNeighbors(b *testing.B) {
	pa, pb := buildPair(b, 50)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MutualNeighbors(pa, pb, dsrcRange)
	}
}

func BenchmarkProfileMarshal(b *testing.B) {
	pa, _ := buildPair(b, 50)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pa.Marshal()
	}
}

func TestSingleBeaconContactNotLinkable(t *testing.T) {
	// The two-hit rule: a contact that delivered exactly one beacon in
	// each direction stores a single element VD per side, which cannot
	// produce the two distinct digest hits MutualNeighbors requires.
	// This is the deliberate trade documented on MutualNeighbors.
	ra := vd.DeriveVPID(fixedSecret(31))
	rb := vd.DeriveVPID(fixedSecret(32))
	ba, _ := NewBuilder(ra, 0, 0, dsrcRange)
	bb, _ := NewBuilder(rb, 0, 0, dsrcRange)
	srcA, _ := video.NewSyntheticSource("sb-A", 100)
	srcB, _ := video.NewSyntheticSource("sb-B", 100)
	for i := 1; i <= vd.SegmentSeconds; i++ {
		l := geo.Pt(float64(i)*10, 0)
		va, err := ba.RecordSecond(l, srcA.SecondChunk(0, i))
		if err != nil {
			t.Fatal(err)
		}
		vb, err := bb.RecordSecond(l.Add(geo.Pt(30, 0)), srcB.SecondChunk(0, i))
		if err != nil {
			t.Fatal(err)
		}
		if i == 30 { // exactly one beacon each way, ever
			if err := ba.AcceptNeighborVD(vb, int64(i)); err != nil {
				t.Fatal(err)
			}
			if err := bb.AcceptNeighborVD(va, int64(i)); err != nil {
				t.Fatal(err)
			}
		}
	}
	pa, _ := ba.Finalize()
	pb, _ := bb.Finalize()
	if MutualNeighbors(pa, pb, dsrcRange) {
		t.Error("a single-beacon contact must not create a viewlink")
	}
}

func TestTwoBeaconContactLinkable(t *testing.T) {
	// Two beacons per direction are sufficient: first and last stored
	// digests both hit.
	ra := vd.DeriveVPID(fixedSecret(33))
	rb := vd.DeriveVPID(fixedSecret(34))
	ba, _ := NewBuilder(ra, 0, 0, dsrcRange)
	bb, _ := NewBuilder(rb, 0, 0, dsrcRange)
	srcA, _ := video.NewSyntheticSource("tb-A", 100)
	srcB, _ := video.NewSyntheticSource("tb-B", 100)
	for i := 1; i <= vd.SegmentSeconds; i++ {
		l := geo.Pt(float64(i)*10, 0)
		va, err := ba.RecordSecond(l, srcA.SecondChunk(0, i))
		if err != nil {
			t.Fatal(err)
		}
		vb, err := bb.RecordSecond(l.Add(geo.Pt(30, 0)), srcB.SecondChunk(0, i))
		if err != nil {
			t.Fatal(err)
		}
		if i == 20 || i == 40 {
			if err := ba.AcceptNeighborVD(vb, int64(i)); err != nil {
				t.Fatal(err)
			}
			if err := bb.AcceptNeighborVD(va, int64(i)); err != nil {
				t.Fatal(err)
			}
		}
	}
	pa, _ := ba.Finalize()
	pb, _ := bb.Finalize()
	if !MutualNeighbors(pa, pb, dsrcRange) {
		t.Error("a two-beacon contact should create a viewlink")
	}
}
