package vp

// Native fuzz targets for the untrusted wire decoders. Every byte
// reaching Unmarshal and SplitBatch comes straight off the anonymous
// upload channel — the attacker's cheapest surface — so the decoders
// must never panic, never allocate proportionally to a hostile length
// prefix, and must uphold their parse invariants on every input that
// does decode. CI runs these for 30s+ each (make fuzz); the checked-in
// seeds keep the deterministic corpus mode (go test) meaningful.

import (
	"bytes"
	"math/rand"
	"testing"

	"viewmap/internal/bloom"
	"viewmap/internal/geo"
	"viewmap/internal/vd"
)

// fuzzProfile fabricates a valid profile without the core package
// (which depends on vp): 60 consistent VDs plus a lightly filled
// filter.
func fuzzProfile(seed int64) *Profile {
	rng := rand.New(rand.NewSource(seed))
	var q vd.Secret
	for i := range q {
		q[i] = byte(rng.Intn(256))
	}
	r := vd.DeriveVPID(q)
	vds := make([]vd.VD, vd.SegmentSeconds)
	var size int64
	for i := 0; i < vd.SegmentSeconds; i++ {
		size += 800_000
		var h vd.Hash
		for j := range h {
			h[j] = byte(rng.Intn(256))
		}
		vds[i] = vd.VD{
			T: int64(i + 1), L: geo.Pt(float64(i), 5), F: size,
			L1: geo.Pt(0, 5), Seq: uint64(i + 1), R: r, H: h,
		}
	}
	f := bloom.New(FilterBits, filterK)
	f.Add([]byte("neighbor-vd-1"))
	f.Add([]byte("neighbor-vd-2"))
	return &Profile{VDs: vds, Neighbors: f}
}

// FuzzProfileUnmarshal hammers the single-record decoder. Inputs that
// decode must re-marshal byte-identically (modulo the reserved header
// byte the encoder zeroes) and must survive the downstream paths an
// accepted profile flows into.
func FuzzProfileUnmarshal(f *testing.F) {
	valid := fuzzProfile(1).Marshal()
	f.Add(valid)
	f.Add(valid[:len(valid)-1])
	f.Add(valid[:6])
	f.Add([]byte{})
	short := append([]byte(nil), valid...)
	short[0], short[1], short[2], short[3] = 0, 0, 0, 1 // claims 1 digest
	f.Add(short)
	huge := append([]byte(nil), valid...)
	huge[0], huge[1], huge[2], huge[3] = 0xff, 0xff, 0xff, 0xff
	f.Add(huge)
	f.Fuzz(func(t *testing.T, data []byte) {
		p, err := Unmarshal(data)
		if err != nil {
			return
		}
		if len(p.VDs) == 0 || len(p.VDs) > vd.SegmentSeconds {
			t.Fatalf("accepted profile with %d digests", len(p.VDs))
		}
		out := p.Marshal()
		norm := append([]byte(nil), data...)
		norm[5] = 0 // reserved byte, zeroed by the encoder
		if !bytes.Equal(out, norm) {
			t.Fatalf("re-marshal diverges: %d bytes in, %d out", len(norm), len(out))
		}
		// The paths an accepted upload flows into must hold up too.
		_ = p.Validate()
		_ = p.Digests()
		_ = p.PlausibleTrajectory()
		_ = p.EntersArea(geo.NewRect(geo.Pt(0, 0), geo.Pt(100, 100)))
	})
}

// FuzzSplitBatch hammers the batched-upload framing (the POST
// /v1/vp/batch wire decode). Decoded frames must tile the payload
// exactly, stay under the record cap, and feed Unmarshal without
// panicking; hostile counts must error before allocating.
func FuzzSplitBatch(f *testing.F) {
	ps := []*Profile{fuzzProfile(2), fuzzProfile(3)}
	f.Add(MarshalBatch(ps))
	f.Add(MarshalBatch(nil))
	f.Add(MarshalBatch(ps[:1]))
	f.Add([]byte{0, 0, 0, 1})             // one record, missing length
	f.Add([]byte{0xff, 0xff, 0xff, 0xff}) // bogus count, empty body
	truncated := MarshalBatch(ps)
	f.Add(truncated[:len(truncated)/2])
	f.Fuzz(func(t *testing.T, data []byte) {
		const maxRecs = 1 << 14
		records, err := SplitBatch(data, maxRecs)
		if err != nil {
			return
		}
		if len(records) > maxRecs {
			t.Fatalf("accepted %d records over the %d cap", len(records), maxRecs)
		}
		total := 4
		for _, rec := range records {
			total += 4 + len(rec)
			if _, err := Unmarshal(rec); err != nil {
				continue
			}
		}
		if total != len(data) {
			t.Fatalf("frames cover %d of %d payload bytes", total, len(data))
		}
	})
}
