// Package vp implements ViewMap's view profiles (VPs): the compact,
// anonymized stand-ins for 1-minute dashcam videos that the system
// stores, searches, verifies and rewards instead of the videos
// themselves (Sections 4-5 of the paper).
//
// A VP compiles the segment's sixty view digests (VDs) with a Bloom
// filter summarizing the VDs received from line-of-sight neighbors
// (at most two per neighbor: the first and last heard with the same VP
// identifier). Two VPs are mutual neighbors — connected by a "viewlink"
// — when their trajectories came within DSRC range at some aligned
// second AND each VP's filter contains at least one of the other's
// element VDs.
//
// The package also builds guard VPs (Section 5.1.2): fabricated but
// plausible trajectories from a neighbor's initial position to the
// vehicle's own final position, routed over the road network (the
// paper uses the Google Directions API; we use shortest-path routing
// on the same street graph). Guard VPs are indistinguishable from
// actual VPs on the wire, carry random hash fields, and are mutually
// linked into the real VP's Bloom filter to create path confusion.
package vp

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sync"

	"viewmap/internal/bloom"
	"viewmap/internal/geo"
	"viewmap/internal/roadnet"
	"viewmap/internal/vd"
)

// FilterBits is the VP Bloom filter size. The paper selects 2048 bits
// (Section 6.3.2), but the linkage test must probe all sixty of the
// counterpart's VDs per direction (the verifier cannot know which two
// the neighbor stored), which inflates the effective false-linkage
// rate far beyond the paper's single-query closed form — enough that
// fake-VP layers acquire spurious viewlinks at city densities and
// verification accuracy collapses. We therefore use 4096 bits, the
// largest size the paper itself evaluates in Fig. 14, which together
// with the two-hit rule in MutualNeighbors drives false linkage back
// below one in ~10^7 pair checks at typical neighbor loads. The
// deviation (VP grows from 4584 to 4840 bytes, still < 0.01% of the
// video) is documented in EXPERIMENTS.md.
const FilterBits = 2 * bloom.DefaultBits

// MaxNeighbors is the cap on accepted neighbor VPs per vehicle, the
// paper's mitigation against Bloom-poisoning attacks ("we set the
// maximum number of neighbor VPs accepted at each vehicle as 250").
const MaxNeighbors = 250

// filterK is the Bloom hash count, optimal (k = (m/n) ln 2) for the
// typical urban load of roughly 350 element VDs per minute.
var filterK = bloom.OptimalK(FilterBits, 350)

// StorageBytes follows the paper's per-VP storage accounting (Section
// 6.1): sixty 72-byte VDs, the filter bit-array, one 8-byte secret.
// With our 512-byte filter this is 4840 bytes (the paper's 256-byte
// filter gave 4584), still below 0.01% of the 50 MB video.
const StorageBytes = vd.SegmentSeconds*vd.WireSize + FilterBits/8 + 8

// Profile is one view profile.
type Profile struct {
	// VDs are the sixty per-second digests, in sequence order.
	VDs []vd.VD
	// Neighbors is the Bloom filter N_u over neighbor VDs.
	Neighbors *bloom.Filter
	// Trusted marks special VPs from authorities (police cars). The
	// flag is assigned by the system when ingesting authority uploads,
	// never carried on the anonymous wire format.
	Trusted bool

	// digestOnce/vdDigests cache the Bloom double-hash pair of each
	// VD's wire key. Viewmap construction probes every VD of every
	// candidate pair; without the cache each probe would rehash the
	// same 72 bytes.
	digestOnce sync.Once
	vdDigests  [][2]uint32

	// edgeOnce/edgeDigests cache just the first and last VDs' digest
	// pairs. Honest viewlinks store exactly a neighbor's first and last
	// heard VDs, so the linkage fast path resolves with these two alone
	// — deriving all sixty (60 SHA-256 per profile, half the per-VP
	// ingest budget on one core) is deferred until a probe actually
	// needs the interior.
	edgeOnce    sync.Once
	edgeDigests [2][2]uint32
}

// Digests returns the cached Bloom digests of the profile's VDs,
// computing them on first use. Viewmap construction fetches the slice
// once per profile per link run and threads it through
// MutualNeighborsDigests so candidate-pair testing never re-derives
// (or even re-checks the cache of) the 16-byte digest pairs. Safe for
// concurrent use.
func (p *Profile) Digests() [][2]uint32 {
	p.digestOnce.Do(func() {
		p.vdDigests = make([][2]uint32, len(p.VDs))
		for i := range p.VDs {
			h1, h2 := bloom.Digest(p.VDs[i].Key())
			p.vdDigests[i] = [2]uint32{h1, h2}
		}
	})
	return p.vdDigests
}

// EdgeDigests returns the cached digest pairs of the profile's first
// and last VDs, computing only those two on first use. This is the
// linkage fast path's working set (see containsAtLeastLazy): a profile
// whose every candidate pair resolves on the fast path never derives
// its 58 interior digests at all. Safe for concurrent use.
func (p *Profile) EdgeDigests() [2][2]uint32 {
	p.edgeOnce.Do(func() {
		if n := len(p.VDs); n > 0 {
			h1, h2 := bloom.Digest(p.VDs[0].Key())
			p.edgeDigests[0] = [2]uint32{h1, h2}
			h1, h2 = bloom.Digest(p.VDs[n-1].Key())
			p.edgeDigests[1] = [2]uint32{h1, h2}
		}
	})
	return p.edgeDigests
}

// ID returns the VP identifier R shared by all the profile's VDs.
func (p *Profile) ID() vd.VPID {
	if len(p.VDs) == 0 {
		return vd.VPID{}
	}
	return p.VDs[0].R
}

// StartUnix returns the minute-aligned start time of the segment.
func (p *Profile) StartUnix() int64 {
	if len(p.VDs) == 0 {
		return 0
	}
	return p.VDs[0].T - int64(p.VDs[0].Seq)
}

// Minute returns the unit-time window index the profile belongs to;
// viewmaps are built per minute.
func (p *Profile) Minute() int64 { return p.StartUnix() / vd.SegmentSeconds }

// LocationAt returns the trajectory position at second i (1..60).
func (p *Profile) LocationAt(i int) (geo.Point, error) {
	if i < 1 || i > len(p.VDs) {
		return geo.Point{}, fmt.Errorf("vp: second %d outside profile", i)
	}
	return p.VDs[i-1].L, nil
}

// InitialLocation returns L1, the trajectory start used for guard
// routes.
func (p *Profile) InitialLocation() geo.Point {
	if len(p.VDs) == 0 {
		return geo.Point{}
	}
	return p.VDs[0].L1
}

// FinalLocation returns the last trajectory sample.
func (p *Profile) FinalLocation() geo.Point {
	if len(p.VDs) == 0 {
		return geo.Point{}
	}
	return p.VDs[len(p.VDs)-1].L
}

// EntersArea reports whether any trajectory sample falls inside r —
// the membership test for joining a viewmap whose coverage is r.
func (p *Profile) EntersArea(r geo.Rect) bool {
	for i := range p.VDs {
		if r.Contains(p.VDs[i].L) {
			return true
		}
	}
	return false
}

// Complete reports whether the profile spans the full minute.
func (p *Profile) Complete() bool { return len(p.VDs) == vd.SegmentSeconds }

// Validate performs structural checks an ingesting system runs on an
// uploaded VP: full minute, consistent identifier, monotone sequence
// and time, monotone file size, and a plausible (non-poisoned) filter.
func (p *Profile) Validate() error {
	if !p.Complete() {
		return fmt.Errorf("vp: profile has %d digests, want %d", len(p.VDs), vd.SegmentSeconds)
	}
	if p.Neighbors == nil {
		return errors.New("vp: missing neighbor filter")
	}
	r := p.VDs[0].R
	start := p.StartUnix()
	if start%vd.SegmentSeconds != 0 {
		return fmt.Errorf("vp: start %d not minute-aligned", start)
	}
	var prevF int64
	for i := range p.VDs {
		v := &p.VDs[i]
		if v.R != r {
			return fmt.Errorf("vp: digest %d changes VP identifier", i+1)
		}
		if v.Seq != uint64(i+1) {
			return fmt.Errorf("vp: digest %d has sequence %d", i+1, v.Seq)
		}
		if v.T != start+int64(i+1) {
			return fmt.Errorf("vp: digest %d has time %d, want %d", i+1, v.T, start+int64(i+1))
		}
		if v.F < prevF {
			return fmt.Errorf("vp: digest %d shrinks file size", i+1)
		}
		prevF = v.F
	}
	if fill := p.Neighbors.FillRatio(); fill > maxPlausibleFill() {
		return fmt.Errorf("vp: neighbor filter fill %.2f exceeds plausible maximum %.2f (poisoning?)", fill, maxPlausibleFill())
	}
	return nil
}

// maxPlausibleFill is the highest filter fill a legitimate VP can reach
// with the neighbor cap, plus slack; fuller filters are treated as the
// Section 6.3.2 all-ones fabrication.
func maxPlausibleFill() float64 {
	return math.Min(1, bloom.ExpectedFillRatio(FilterBits, filterK, 2*MaxNeighbors)*1.3)
}

// MaxSpeedMS is the plausibility ceiling on per-second displacement,
// used by viewmap construction to reject teleporting trajectories.
// 70 m/s = 252 km/h.
const MaxSpeedMS = 70

// PlausibleTrajectory reports whether consecutive samples never exceed
// MaxSpeedMS.
func (p *Profile) PlausibleTrajectory() bool {
	const maxStep2 = MaxSpeedMS * MaxSpeedMS
	for i := 1; i < len(p.VDs); i++ {
		if p.VDs[i-1].L.Dist2(p.VDs[i].L) > maxStep2 {
			return false
		}
	}
	return true
}

// MutualNeighbors implements the viewlink test of Section 5.2.1:
// some time-aligned pair of positions within dsrcRange metres, and
// two-way Bloom membership of each VP's element VDs in the other's
// filter.
//
// Each side of an honest link stores two element VDs per neighbor (the
// first and last received), so we require at least two distinct digest
// hits per direction. A single-hit match is overwhelmingly likely to
// be a Bloom false positive once filters carry a realistic neighbor
// load, and false viewlinks are what lets fake-VP layers leak trust
// (Section 6.3.2); squaring the per-query false-positive rate this way
// keeps the false-linkage probability negligible at city scale. The
// cost is that a contact which delivered only one beacon total is not
// linkable — a sub-second encounter that carries no evidential weight.
func MutualNeighbors(a, b *Profile, dsrcRange float64) bool {
	return MutualNeighborsDigests(a, b, a.Digests(), b.Digests(), dsrcRange)
}

// MutualNeighborsDigests is MutualNeighbors with both profiles' Bloom
// digest slices (see Digests) supplied by the caller. Viewmap
// construction prefetches every member's digests once and passes them
// here for each candidate pair, keeping digest derivation off the
// per-pair path.
func MutualNeighborsDigests(a, b *Profile, aDigests, bDigests [][2]uint32, dsrcRange float64) bool {
	if a.Minute() != b.Minute() {
		return false
	}
	if a.ID() == b.ID() {
		return false
	}
	n := len(a.VDs)
	if len(b.VDs) < n {
		n = len(b.VDs)
	}
	near := false
	range2 := dsrcRange * dsrcRange
	for i := 0; i < n; i++ {
		if a.VDs[i].L.Dist2(b.VDs[i].L) <= range2 {
			near = true
			break
		}
	}
	if !near {
		return false
	}
	return containsAtLeast(a.Neighbors, bDigests, 2) && containsAtLeast(b.Neighbors, aDigests, 2)
}

// MutualNeighborsLazy is MutualNeighbors evaluated against the
// profiles' lazily materialized digest caches: the proximity check and
// digest-hit semantics are identical, but each membership direction
// first probes only the counterpart's first/last digest pairs
// (EdgeDigests) and derives the full sixty-entry digest slice on
// demand. Honest pairs — whose filters hold exactly each other's first
// and last VDs — never compute an interior digest, which removes the
// dominant fixed cost of link-on-ingest. The accepted pair set is
// exactly MutualNeighbors'; the equivalence property tests hold the
// two together.
func MutualNeighborsLazy(a, b *Profile, dsrcRange float64) bool {
	if a.Minute() != b.Minute() {
		return false
	}
	if a.ID() == b.ID() {
		return false
	}
	n := len(a.VDs)
	if len(b.VDs) < n {
		n = len(b.VDs)
	}
	near := false
	range2 := dsrcRange * dsrcRange
	for i := 0; i < n; i++ {
		if a.VDs[i].L.Dist2(b.VDs[i].L) <= range2 {
			near = true
			break
		}
	}
	if !near {
		return false
	}
	return containsAtLeastLazy(a.Neighbors, b) && containsAtLeastLazy(b.Neighbors, a)
}

// MutualFilters is the Bloom half of MutualNeighborsLazy alone: each
// profile's filter must contain at least two of the other's VD
// digests. Callers (the incremental linker) use it when the
// same-minute, distinct-identifier, and sample-proximity guards are
// already established by their own admission and candidate tests.
func MutualFilters(a, b *Profile) bool {
	return containsAtLeastLazy(a.Neighbors, b) && containsAtLeastLazy(b.Neighbors, a)
}

// containsAtLeastLazy is containsAtLeast(f, q.Digests(), 2) with the
// digest derivation deferred: the first/last fast path runs off
// EdgeDigests alone, and only an indecisive fast path materializes the
// full digest slice for the interior scan. The hit count over the full
// set is unchanged; only how much of it is ever derived differs.
func containsAtLeastLazy(f *bloom.Filter, q *Profile) bool {
	if f == nil {
		return false
	}
	if n := len(q.VDs); n >= 2 {
		edge := q.EdgeDigests()
		hits := f.CountDigestHits(edge[:1], 1) + f.CountDigestHits(edge[1:], 1)
		if hits >= 2 {
			return true
		}
		digests := q.Digests()
		return f.CountDigestHits(digests[1:n-1], 2-hits) >= 2-hits
	}
	return f.CountDigestHits(q.Digests(), 2) >= 2
}

func containsAtLeast(f *bloom.Filter, digests [][2]uint32, want int) bool {
	if f == nil {
		return false
	}
	hits := 0
	// Probe the first and last digests before the interior: linkage
	// stores a neighbor's first and last heard VDs, which for a
	// full-minute contact are exactly elements 0 and len-1, so an
	// honestly linked pair resolves in two probes instead of scanning
	// the whole minute. The hit count over the full set is unchanged;
	// only the evaluation order differs.
	if n := len(digests); n >= 2 && want == 2 {
		hits = f.CountDigestHits(digests[:1], 1) + f.CountDigestHits(digests[n-1:], 1)
		if hits >= want {
			return true
		}
		digests = digests[1 : n-1]
	}
	return f.CountDigestHits(digests, want-hits) >= want-hits
}

// neighborRecord keeps the first and last VD heard from one neighbor.
type neighborRecord struct {
	first, last vd.VD
	count       int
}

// Builder accumulates one minute of recording plus received neighbor
// VDs, then finalizes into a Profile.
type Builder struct {
	gen       *vd.Generator
	neighbors map[vd.VPID]*neighborRecord
	order     []vd.VPID // insertion order, for deterministic iteration
	maxN      int
	dsrcRange float64
	lastLoc   geo.Point
	haveLoc   bool
}

// NewBuilder starts building the VP for a segment with identifier r
// beginning at minute-aligned startUnix. maxNeighbors <= 0 selects the
// paper's cap of 250.
func NewBuilder(r vd.VPID, startUnix int64, maxNeighbors int, dsrcRange float64) (*Builder, error) {
	g, err := vd.NewGenerator(r, startUnix)
	if err != nil {
		return nil, err
	}
	if maxNeighbors <= 0 {
		maxNeighbors = MaxNeighbors
	}
	if dsrcRange <= 0 {
		return nil, fmt.Errorf("vp: DSRC range must be positive, got %v", dsrcRange)
	}
	return &Builder{
		gen:       g,
		neighbors: make(map[vd.VPID]*neighborRecord),
		maxN:      maxNeighbors,
		dsrcRange: dsrcRange,
	}, nil
}

// RecordSecond feeds the next second of video content at the current
// location and returns the VD to broadcast.
func (b *Builder) RecordSecond(loc geo.Point, chunk []byte) (vd.VD, error) {
	v, err := b.gen.Next(loc, chunk)
	if err != nil {
		return vd.VD{}, err
	}
	b.lastLoc = loc
	b.haveLoc = true
	return v, nil
}

// ErrNeighborCapReached is returned when a new neighbor would exceed
// the poisoning-mitigation cap; VDs from already-known neighbors are
// still accepted.
var ErrNeighborCapReached = errors.New("vp: neighbor cap reached")

// AcceptNeighborVD validates and stores a received VD per Section
// 5.1.1: time within the current interval, claimed location within
// DSRC range of the receiver, and at most two VDs (first and last)
// retained per neighbor VP identifier.
func (b *Builder) AcceptNeighborVD(v vd.VD, nowUnix int64) error {
	if !b.haveLoc {
		return errors.New("vp: cannot accept neighbor VD before first recorded second")
	}
	if err := vd.ValidateRanges(&v, nowUnix, b.lastLoc, b.dsrcRange); err != nil {
		return err
	}
	rec, ok := b.neighbors[v.R]
	if !ok {
		if len(b.neighbors) >= b.maxN {
			return ErrNeighborCapReached
		}
		b.neighbors[v.R] = &neighborRecord{first: v, last: v, count: 1}
		b.order = append(b.order, v.R)
		return nil
	}
	rec.last = v
	rec.count++
	return nil
}

// NeighborCount returns the number of distinct neighbor VPs heard.
func (b *Builder) NeighborCount() int { return len(b.neighbors) }

// NeighborIDs returns neighbor VP identifiers in first-heard order.
func (b *Builder) NeighborIDs() []vd.VPID {
	out := make([]vd.VPID, len(b.order))
	copy(out, b.order)
	return out
}

// NeighborInitialLocation returns the L1 field advertised by a
// neighbor, the seed for its guard route.
func (b *Builder) NeighborInitialLocation(id vd.VPID) (geo.Point, bool) {
	rec, ok := b.neighbors[id]
	if !ok {
		return geo.Point{}, false
	}
	return rec.first.L1, true
}

// Finalize compiles the builder into a Profile: the sixty VDs plus a
// Bloom filter holding the first and last VD of every neighbor.
func (b *Builder) Finalize() (*Profile, error) {
	if !b.gen.Complete() {
		return nil, errors.New("vp: segment incomplete, cannot finalize")
	}
	f := bloom.New(FilterBits, filterK)
	for _, id := range b.order {
		rec := b.neighbors[id]
		f.Add(rec.first.Key())
		if rec.count > 1 && rec.last != rec.first {
			f.Add(rec.last.Key())
		}
	}
	return &Profile{VDs: b.gen.Emitted(), Neighbors: f}, nil
}

// LastLocation returns the most recent recorded position.
func (b *Builder) LastLocation() (geo.Point, bool) { return b.lastLoc, b.haveLoc }

// SelectGuardTargets picks ceil(alpha*m) of the m given neighbor IDs at
// random (Section 5.1.2; the paper uses alpha = 0.1).
func SelectGuardTargets(ids []vd.VPID, alpha float64, rng *rand.Rand) []vd.VPID {
	if len(ids) == 0 || alpha <= 0 {
		return nil
	}
	if alpha > 1 {
		alpha = 1
	}
	n := int(math.Ceil(alpha * float64(len(ids))))
	perm := rng.Perm(len(ids))
	out := make([]vd.VPID, 0, n)
	for _, idx := range perm[:n] {
		out = append(out, ids[idx])
	}
	return out
}

// UncoveredProbability is the Section 6.2.2 formula
//
//	P_t = [1 - {1 - (1-alpha)^m}^m]^t
//
// the probability that some vehicle remains uncovered by any other's
// guard VP after t minutes among m mutual neighbors. The paper picks
// alpha = 0.1 to push P_t below 0.01 within 5 minutes.
func UncoveredProbability(alpha float64, m, tMinutes int) float64 {
	if m <= 0 || tMinutes <= 0 {
		return 1
	}
	inner := 1 - math.Pow(1-alpha, float64(m))
	perMin := 1 - math.Pow(inner, float64(m))
	return math.Pow(perMin, float64(tMinutes))
}

// GuardConfig parameterizes guard VP fabrication.
type GuardConfig struct {
	// SpeedMS is the fabricated driving speed along the route. When
	// zero or negative, the speed is chosen so the trajectory arrives
	// at the vehicle's final position exactly at the end of the minute,
	// which guarantees the guard passes the viewmap proximity check
	// against the actual VP it is linked to.
	SpeedMS float64
	// JitterM is the +/- margin of variable VD spacing along the route,
	// making guard trajectories look organic.
	JitterM float64
	// ChunkBytesPerSecond sizes the fake file-size ramp carried in the
	// guard VDs; defaults to a dashcam-typical rate when zero.
	ChunkBytesPerSecond int64
}

// BuildGuard fabricates a guard VP for the chosen neighbor: a
// trajectory routed from the neighbor's initial location to the
// builder vehicle's own final position, with variably spaced samples
// and random hash fields (guards are not backed by any video). It
// returns the guard profile; the caller must link it with the actual
// profile via LinkMutually and is expected to delete it after upload.
func BuildGuard(net *roadnet.Network, neighborL1, ownLast geo.Point, startUnix int64, cfg GuardConfig, rng *rand.Rand) (*Profile, error) {
	if startUnix%vd.SegmentSeconds != 0 {
		return nil, fmt.Errorf("vp: guard start %d not minute-aligned", startUnix)
	}
	perSec := cfg.ChunkBytesPerSecond
	if perSec <= 0 {
		perSec = 800_000
	}
	route, err := net.Directions(neighborL1, ownLast)
	if err != nil {
		return nil, fmt.Errorf("vp: routing guard trajectory: %w", err)
	}
	speed := cfg.SpeedMS
	if speed <= 0 {
		speed = route.Length / float64(vd.SegmentSeconds-1)
	}
	var jitter func(int) float64
	if cfg.JitterM > 0 {
		jitter = func(int) float64 { return (rng.Float64()*2 - 1) * cfg.JitterM }
	}
	samples := route.SamplePerSecond(speed, vd.SegmentSeconds, jitter)

	// The guard's secret comes from the caller's rng, not crypto/rand:
	// guards are unredeemable chaff, and callers (simulation engines,
	// vehicle agents) rely on same-seed fabrication being reproducible.
	var q vd.Secret
	for i := range q {
		q[i] = byte(rng.Intn(256))
	}
	r := vd.DeriveVPID(q)
	vds := make([]vd.VD, vd.SegmentSeconds)
	var size int64
	for i := 0; i < vd.SegmentSeconds; i++ {
		size += perSec
		var h vd.Hash
		// "Guard VPs are not for actual videos and thus, their hash
		// fields are filled with random values."
		for j := range h {
			h[j] = byte(rng.Intn(256))
		}
		vds[i] = vd.VD{
			T:   startUnix + int64(i+1),
			L:   samples[i],
			F:   size,
			L1:  samples[0],
			Seq: uint64(i + 1),
			R:   r,
			H:   h,
		}
	}
	return &Profile{
		VDs:       vds,
		Neighbors: bloom.New(FilterBits, filterK),
	}, nil
}

// LinkMutually inserts each profile's first and last VDs into the
// other's Bloom filter, establishing the two-way viewlink that guard
// VPs need to blend into the viewmap.
func LinkMutually(a, b *Profile) error {
	if len(a.VDs) == 0 || len(b.VDs) == 0 || a.Neighbors == nil || b.Neighbors == nil {
		return errors.New("vp: cannot link incomplete profiles")
	}
	a.Neighbors.Add(b.VDs[0].Key())
	a.Neighbors.Add(b.VDs[len(b.VDs)-1].Key())
	b.Neighbors.Add(a.VDs[0].Key())
	b.Neighbors.Add(a.VDs[len(a.VDs)-1].Key())
	return nil
}

// Marshal serializes a profile for anonymous upload: a 4-byte count,
// the VD wire records, the filter hash count, and the filter bit
// array. The format carries no owner-identifying data.
func (p *Profile) Marshal() []byte {
	out := make([]byte, 0, 8+len(p.VDs)*vd.WireSize+FilterBits/8)
	var hdr [6]byte
	binary.BigEndian.PutUint32(hdr[0:4], uint32(len(p.VDs)))
	if p.Neighbors != nil {
		hdr[4] = byte(p.Neighbors.K())
	}
	hdr[5] = 0 // reserved
	out = append(out, hdr[:]...)
	for i := range p.VDs {
		enc := p.VDs[i].Encode()
		out = append(out, enc[:]...)
	}
	if p.Neighbors != nil {
		out = append(out, p.Neighbors.Bytes()...)
	} else {
		out = append(out, make([]byte, FilterBits/8)...)
	}
	return out
}

// MarshalBatch serializes profiles for the batched anonymous upload
// (POST /v1/vp/batch): a 4-byte big-endian record count followed by
// the Marshal wire records, each prefixed with its 4-byte big-endian
// length. Like the single-record format it carries no owner- or
// batch-identifying data beyond the grouping itself; vehicles that
// batch across minutes trade a little upload-time unlinkability for
// fewer circuits, which is their call to make.
func MarshalBatch(ps []*Profile) []byte {
	size := 4
	recs := make([][]byte, len(ps))
	for i, p := range ps {
		recs[i] = p.Marshal()
		size += 4 + len(recs[i])
	}
	out := make([]byte, 0, size)
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(recs)))
	out = append(out, hdr[:]...)
	for _, rec := range recs {
		binary.BigEndian.PutUint32(hdr[:], uint32(len(rec)))
		out = append(out, hdr[:]...)
		out = append(out, rec...)
	}
	return out
}

// MarshalRawBatch frames already-marshaled VP wire records with the
// MarshalBatch framing (4-byte count, then per record a 4-byte length
// prefix). Callers that hold the raw records — the server's ingest
// journal re-frames the admitted subset of an uploaded batch — avoid
// a re-marshal round trip; MarshalBatch(ps) is exactly
// MarshalRawBatch of each profile's Marshal.
func MarshalRawBatch(recs [][]byte) []byte {
	size := 4
	for _, rec := range recs {
		size += 4 + len(rec)
	}
	out := make([]byte, 0, size)
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(recs)))
	out = append(out, hdr[:]...)
	for _, rec := range recs {
		binary.BigEndian.PutUint32(hdr[:], uint32(len(rec)))
		out = append(out, hdr[:]...)
		out = append(out, rec...)
	}
	return out
}

// SplitBatch parses the MarshalBatch framing and returns the raw
// per-record byte slices (views into b), leaving per-record profile
// parsing — and its failure policy — to the caller. It errors on a
// corrupt frame: a record count above maxRecords (<= 0 means
// unlimited), a truncated length or body, or trailing bytes.
func SplitBatch(b []byte, maxRecords int) ([][]byte, error) {
	if len(b) < 4 {
		return nil, errors.New("vp: truncated batch header")
	}
	// Lengths are compared in uint64 before any int conversion: the
	// wire fields are untrusted, and a uint32 cast to a 32-bit int
	// can go negative and slip past a signed bounds check.
	count := binary.BigEndian.Uint32(b[:4])
	if maxRecords > 0 && uint64(count) > uint64(maxRecords) {
		return nil, fmt.Errorf("vp: batch of %d records exceeds the %d cap", count, maxRecords)
	}
	b = b[4:]
	// Preallocation is bounded by what the payload could actually
	// frame (4 bytes of length prefix per record), not by the
	// untrusted count — in unlimited mode a bogus count must not
	// demand gigabytes before the truncation check rejects it.
	prealloc := uint64(len(b) / 4)
	if uint64(count) < prealloc {
		prealloc = uint64(count)
	}
	records := make([][]byte, 0, prealloc)
	for i := 0; i < int(count); i++ {
		if len(b) < 4 {
			return nil, fmt.Errorf("vp: batch record %d: truncated length", i)
		}
		size := binary.BigEndian.Uint32(b[:4])
		b = b[4:]
		if uint64(size) > uint64(len(b)) {
			return nil, fmt.Errorf("vp: batch record %d claims %d bytes, %d remain", i, size, len(b))
		}
		records = append(records, b[:size])
		b = b[size:]
	}
	if len(b) != 0 {
		return nil, fmt.Errorf("vp: %d trailing bytes after batch", len(b))
	}
	return records, nil
}

// Profile decode errors, shared between Unmarshal and
// BatchArena.Unmarshal so the two decoders reject identically.
var errTruncatedProfile = errors.New("vp: truncated profile")

func errDigestCount(n int) error {
	return fmt.Errorf("vp: profile claims %d digests", n)
}

func errProfileSize(got, want int) error {
	return fmt.Errorf("vp: profile is %d bytes, want %d", got, want)
}

// Unmarshal parses a profile uploaded by a vehicle.
func Unmarshal(b []byte) (*Profile, error) {
	if len(b) < 6 {
		return nil, errTruncatedProfile
	}
	n := int(binary.BigEndian.Uint32(b[0:4]))
	k := int(b[4])
	if n <= 0 || n > vd.SegmentSeconds {
		return nil, errDigestCount(n)
	}
	want := 6 + n*vd.WireSize + FilterBits/8
	if len(b) != want {
		return nil, errProfileSize(len(b), want)
	}
	p := &Profile{VDs: make([]vd.VD, n)}
	off := 6
	for i := 0; i < n; i++ {
		v, err := vd.Decode(b[off : off+vd.WireSize])
		if err != nil {
			return nil, err
		}
		p.VDs[i] = v
		off += vd.WireSize
	}
	f, err := bloom.FromBytes(b[off:off+FilterBits/8], k)
	if err != nil {
		return nil, err
	}
	p.Neighbors = f
	return p, nil
}
