// Batch-ingest arena: the zero-copy decode stage of the burst
// pipeline. A batch upload decodes thousands of identically shaped
// records; Unmarshal's per-record allocations (Profile, VD slice,
// filter copy) dominate decode cost and generate garbage proportional
// to the offered load. BatchArena instead decodes a whole burst into
// four contiguous slabs — VDs, Profiles, Filters, filter bit arrays —
// and carves per-record views out of them, reaching ~0 allocations
// per record. The returned profiles are semantically identical to
// Unmarshal's; only their backing storage is shared.
package vp

import (
	"encoding/binary"

	"viewmap/internal/bloom"
	"viewmap/internal/vd"
)

// PeekRecordMinute reads the minute index of a wire VP record without
// decoding it: the burst pipeline groups records by minute shard
// before the per-minute arena decode, so grouping must not pay the
// decode. It returns false when the record does not even have the
// well-formed single-profile shape; such records are handed to the
// full decoder for a proper error. The minute is read from the first
// VD exactly as Profile.Minute derives it ((T - Seq) / 60), so a
// record that decodes successfully lands in the same group Minute()
// would put it in.
func PeekRecordMinute(rec []byte) (int64, bool) {
	if len(rec) < 6 {
		return 0, false
	}
	n := int(binary.BigEndian.Uint32(rec[0:4]))
	if n <= 0 || n > vd.SegmentSeconds {
		return 0, false
	}
	if len(rec) != 6+n*vd.WireSize+FilterBits/8 {
		return 0, false
	}
	// First VD starts at offset 6; T is its first field, Seq at +32.
	t := int64(binary.BigEndian.Uint64(rec[6:14]))
	seq := int64(binary.BigEndian.Uint64(rec[38:46]))
	return (t - seq) / vd.SegmentSeconds, true
}

// BatchArena is a bump allocator for one burst's decoded profiles.
// All records decoded through the same arena share four slab
// allocations; a burst of any size costs a constant number of allocs.
// The arena is not safe for concurrent use, and the profiles it
// returns are alive only as long as the arena is reachable — the
// store retains them indefinitely, which is fine: retaining any one
// profile of a burst retains the burst's slabs, whose bytes are all
// live profile data anyway.
type BatchArena struct {
	vds     []vd.VD
	profs   []Profile
	filters []bloom.Filter
	bits    []byte
}

// NewBatchArena sizes an arena for up to n full profiles. Decoding
// more than n records through it is not an error — overflow records
// fall back to the allocating Unmarshal — so callers may size by the
// common case.
func NewBatchArena(n int) *BatchArena {
	if n < 0 {
		n = 0
	}
	return &BatchArena{
		vds:     make([]vd.VD, 0, n*vd.SegmentSeconds),
		profs:   make([]Profile, 0, n),
		filters: make([]bloom.Filter, 0, n),
		bits:    make([]byte, 0, n*FilterBits/8),
	}
}

// Unmarshal decodes one wire record into the arena's slabs. It
// accepts and rejects exactly the records Unmarshal does, with the
// same errors; a rejected record consumes no arena space.
func (a *BatchArena) Unmarshal(b []byte) (*Profile, error) {
	if len(b) < 6 {
		return nil, errTruncatedProfile
	}
	n := int(binary.BigEndian.Uint32(b[0:4]))
	k := int(b[4])
	if n <= 0 || n > vd.SegmentSeconds {
		return nil, errDigestCount(n)
	}
	want := 6 + n*vd.WireSize + FilterBits/8
	if len(b) != want {
		return nil, errProfileSize(len(b), want)
	}
	if len(a.profs) == cap(a.profs) || len(a.filters) == cap(a.filters) ||
		cap(a.vds)-len(a.vds) < n || cap(a.bits)-len(a.bits) < FilterBits/8 {
		return Unmarshal(b)
	}

	vdsStart := len(a.vds)
	a.vds = a.vds[:vdsStart+n]
	off := 6
	for i := 0; i < n; i++ {
		if err := vd.DecodeInto(&a.vds[vdsStart+i], b[off:off+vd.WireSize]); err != nil {
			a.vds = a.vds[:vdsStart]
			return nil, err
		}
		off += vd.WireSize
	}

	// The filter bits are copied out of the request body into the
	// shared slab rather than aliased in place: a 512-byte alias into
	// the (potentially tens-of-megabytes) upload buffer would pin the
	// whole buffer for as long as the profile is stored.
	bitsStart := len(a.bits)
	a.bits = a.bits[:bitsStart+FilterBits/8]
	fb := a.bits[bitsStart : bitsStart+FilterBits/8 : bitsStart+FilterBits/8]
	copy(fb, b[off:off+FilterBits/8])

	a.filters = a.filters[:len(a.filters)+1]
	f := &a.filters[len(a.filters)-1]
	if err := f.AliasBits(fb, k); err != nil {
		a.vds = a.vds[:vdsStart]
		a.bits = a.bits[:bitsStart]
		a.filters = a.filters[:len(a.filters)-1]
		return nil, err
	}

	a.profs = a.profs[:len(a.profs)+1]
	p := &a.profs[len(a.profs)-1]
	*p = Profile{
		VDs:       a.vds[vdsStart : vdsStart+n : vdsStart+n],
		Neighbors: f,
	}
	return p, nil
}
