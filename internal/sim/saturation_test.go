package sim

import (
	"strings"
	"testing"
)

// TestSaturationSmall runs the ingest-saturation benchmark at a tiny
// scale, in-memory and durable. The heavy invariants — every offered
// record stored, clean batch results, minute-0 viewmap identical to a
// from-scratch rebuild — are asserted inside Saturation itself; the
// test checks the reported shape and that both modes complete.
func TestSaturationSmall(t *testing.T) {
	for _, durable := range []bool{false, true} {
		cfg := SaturationConfig{
			VehiclesPerMinute: 20, Minutes: 2,
			BatchSize: 8, Uploaders: 2,
			Durable: durable, Seed: 7,
		}
		res, err := Saturation(cfg)
		if err != nil {
			t.Fatalf("durable=%v: %v", durable, err)
		}
		// One profile per minute is the trusted seed, uploaded outside
		// the timed window.
		if want := (cfg.VehiclesPerMinute - 1) * cfg.Minutes; res.Ingested != want {
			t.Errorf("durable=%v: ingested %d, want %d", durable, res.Ingested, want)
		}
		if res.VPsPerSec <= 0 || res.ElapsedMS <= 0 {
			t.Errorf("durable=%v: non-positive throughput %+v", durable, res)
		}
		if res.SpotMembers == 0 || res.SpotEdges == 0 {
			t.Errorf("durable=%v: empty spot-check viewmap %d/%d", durable, res.SpotMembers, res.SpotEdges)
		}
		if res.Durable != durable {
			t.Errorf("config echo lost: durable=%v reported %v", durable, res.Durable)
		}
		rows := res.Rows()
		if len(rows) != 5 {
			t.Fatalf("Rows() returned %d rows, want 5", len(rows))
		}
		if durable && !strings.Contains(rows[0], "WAL group commit") {
			t.Errorf("durable row does not name the journal mode: %q", rows[0])
		}
	}
}
