package sim

// This file regenerates every table and figure of the paper's
// evaluation. Each ExperimentX function returns printable rows; the
// cmd/viewmap-bench binary and the top-level benchmark suite call
// these, and EXPERIMENTS.md records paper-vs-measured values.

import (
	"fmt"
	"image"
	"math/rand"
	"runtime"
	"sync"
	"time"

	"viewmap/internal/attack"
	"viewmap/internal/bloom"
	"viewmap/internal/blur"
	"viewmap/internal/core"
	"viewmap/internal/geo"
	"viewmap/internal/radio"
	"viewmap/internal/stats"
	"viewmap/internal/tracker"
	"viewmap/internal/vd"
	"viewmap/internal/video"
	"viewmap/internal/vp"
)

// ---------------------------------------------------------------- Table 1

// Table1Row is one platform row of Table 1.
type Table1Row struct {
	Platform string
	Blur     time.Duration
	IO       time.Duration
	FPS      float64
}

// String formats the row like a Table 1 line.
func (r Table1Row) String() string {
	return fmt.Sprintf("%-22s blur %7.2f ms   I/O %7.2f ms   %5.1f fps",
		r.Platform, ms(r.Blur), ms(r.IO), r.FPS)
}

func ms(d time.Duration) float64 { return float64(d.Microseconds()) / 1000 }

// Table1 profiles the realtime plate-blurring pipeline on this host
// and projects the paper's three platforms via relative CPU factors.
func Table1(frames int) ([]Table1Row, error) {
	if frames <= 0 {
		frames = 30
	}
	plates := []blur.Plate{
		{Rect: image.Rect(500, 400, 596, 424)},
		{Rect: image.Rect(900, 500, 972, 518)},
	}
	pl, err := blur.NewPipeline(1280, 720, 4, plates, blur.Params{})
	if err != nil {
		return nil, err
	}
	host, err := pl.Profile(frames)
	if err != nil {
		return nil, err
	}
	rows := []Table1Row{{
		Platform: "host (this machine)",
		Blur:     host.BlurTime, IO: host.IOTime, FPS: host.FPS,
	}}
	for _, p := range blur.Table1Platforms() {
		scaled := p.Scale(host)
		rows = append(rows, Table1Row{Platform: p.Name, Blur: scaled.BlurTime, IO: scaled.IOTime, FPS: scaled.FPS})
	}
	return rows, nil
}

// ----------------------------------------------------------------- Fig 8

// Fig8Row compares the cascaded and naive hash cost at one recording
// time.
type Fig8Row struct {
	Second  int
	Cascade time.Duration
	Normal  time.Duration
}

// String formats the row like a Fig. 8 data point.
func (r Fig8Row) String() string {
	return fmt.Sprintf("t=%2ds   cascade %8.3f ms   normal %8.3f ms",
		r.Second, ms(r.Cascade), ms(r.Normal))
}

// Fig8 measures per-digest hash generation time as recording
// progresses, for a stream at the paper's 50 MB/min.
func Fig8(bytesPerSecond int) ([]Fig8Row, error) {
	if bytesPerSecond <= 0 {
		bytesPerSecond = video.DefaultBytesPerSecond
	}
	src, err := video.NewSyntheticSource("fig8", bytesPerSecond)
	if err != nil {
		return nil, err
	}
	chunks := make([][]byte, vd.SegmentSeconds)
	for i := range chunks {
		chunks[i] = src.SecondChunk(0, i+1)
	}
	var rows []Fig8Row
	var prev vd.Hash
	loc := geo.Pt(1, 2)
	for i := 1; i <= vd.SegmentSeconds; i++ {
		t0 := time.Now()
		h := vd.CascadeStep(int64(i), loc, int64(i)*int64(bytesPerSecond), prev, chunks[i-1])
		cascade := time.Since(t0)
		t1 := time.Now()
		vd.NormalHash(int64(i), loc, int64(i)*int64(bytesPerSecond), chunks[:i])
		normal := time.Since(t1)
		prev = h
		if i%10 == 0 || i == 1 {
			rows = append(rows, Fig8Row{Second: i, Cascade: cascade, Normal: normal})
		}
	}
	return rows, nil
}

// ----------------------------------------------------------------- Fig 9

// Fig9Row reports VPs created per vehicle-minute at one neighbor count.
type Fig9Row struct {
	Neighbors int
	Alpha     float64
	VPsPerMin int // 1 actual + ceil(alpha*m) guards
}

// String formats the row like a Fig. 9 data point.
func (r Fig9Row) String() string {
	return fmt.Sprintf("m=%3d neighbors, alpha=%.1f -> %3d VPs/min", r.Neighbors, r.Alpha, r.VPsPerMin)
}

// Fig9 computes the VP creation volume for alpha in {0.1, 0.5, 0.9}.
func Fig9() []Fig9Row {
	rng := rand.New(rand.NewSource(9))
	var rows []Fig9Row
	for _, alpha := range []float64{0.1, 0.5, 0.9} {
		for m := 20; m <= 200; m += 20 {
			ids := make([]vd.VPID, m)
			for i := range ids {
				var q vd.Secret
				q[0], q[1] = byte(i), byte(i>>8)
				ids[i] = vd.DeriveVPID(q)
			}
			guards := len(vp.SelectGuardTargets(ids, alpha, rng))
			rows = append(rows, Fig9Row{Neighbors: m, Alpha: alpha, VPsPerMin: 1 + guards})
		}
	}
	return rows
}

// ------------------------------------------------------- Figs 10/11/22a/b

// PrivacyCurve is an entropy/success time series.
type PrivacyCurve struct {
	Label      string
	EntropyBit []float64 // per minute
	Success    []float64 // per minute
}

// PrivacyConfig drives the tracking experiments.
type PrivacyConfig struct {
	Vehicles []int // fleet sizes to sweep
	Minutes  int
	// BlocksX/Y and SpacingM size the area (4x4 km for Fig 10/11,
	// 8x8 km for Fig 22ab).
	BlocksX, BlocksY int
	SpacingM         float64
	Seed             int64
	// IncludeBareReference adds a no-guard curve for the smallest
	// fleet, as the paper plots.
	IncludeBareReference bool
}

// Privacy runs the guard-VP tracking study and returns one curve per
// fleet size (plus the optional no-guard reference).
func Privacy(cfg PrivacyConfig) ([]PrivacyCurve, error) {
	if cfg.Minutes == 0 {
		cfg.Minutes = 20
	}
	var curves []PrivacyCurve
	for i, n := range cfg.Vehicles {
		run, err := NewCityRun(CityConfig{
			Vehicles: n, Minutes: cfg.Minutes,
			BlocksX: cfg.BlocksX, BlocksY: cfg.BlocksY, SpacingM: cfg.SpacingM,
			MixSpeeds: true, Seed: cfg.Seed + int64(n),
		})
		if err != nil {
			return nil, err
		}
		ds, err := run.TrackingDataset(true)
		if err != nil {
			return nil, err
		}
		ent, suc, err := ds.AverageOverTargets(tracker.Config{})
		if err != nil {
			return nil, err
		}
		curves = append(curves, PrivacyCurve{Label: fmt.Sprintf("n=%d", n), EntropyBit: ent, Success: suc})
		if i == 0 && cfg.IncludeBareReference {
			bare, err := run.TrackingDataset(false)
			if err != nil {
				return nil, err
			}
			entB, sucB, err := bare.AverageOverTargets(tracker.Config{})
			if err != nil {
				return nil, err
			}
			curves = append(curves, PrivacyCurve{Label: fmt.Sprintf("n=%d w/o guard VPs", n), EntropyBit: entB, Success: sucB})
		}
	}
	return curves, nil
}

// --------------------------------------------------------- Figs 12/13/22d/e

// VerifyRow reports verification accuracy for one attack setting.
type VerifyRow struct {
	// Setting describes the x-axis bucket (hop range or dummy count).
	Setting string
	// FakePct is the fake-VP volume as % of legitimate VPs.
	FakePct int
	// Accuracy is the fraction of runs where no fake VP was accepted.
	Accuracy float64
	// LegitRecall is the mean fraction of genuine in-site VPs marked
	// legitimate, a health check the paper reports implicitly.
	LegitRecall float64
	Runs        int
}

// String formats the row like a Fig. 12/13 data point.
func (r VerifyRow) String() string {
	return fmt.Sprintf("%-14s fake=%3d%%  accuracy %5.1f%%  legit recall %5.1f%%  (%d runs)",
		r.Setting, r.FakePct, r.Accuracy*100, r.LegitRecall*100, r.Runs)
}

// VerifyConfig drives the verification-accuracy experiments.
type VerifyConfig struct {
	// LegitVPs is the honest population size (paper: 1000).
	LegitVPs int
	// Runs per setting (paper: 1000; default kept lower for runtime —
	// crank it up via the bench flags).
	Runs int
	// AttackerPct is the share of colluding attackers (paper: 5-15%).
	AttackerPct float64
	Seed        int64
}

func (c VerifyConfig) withDefaults() VerifyConfig {
	if c.LegitVPs == 0 {
		c.LegitVPs = 1000
	}
	if c.Runs == 0 {
		c.Runs = 20
	}
	if c.AttackerPct == 0 {
		c.AttackerPct = 0.10
	}
	return c
}

// verifyArena builds one honest population with a trusted VP far from
// the site, mirroring the paper's geometric-graph experiments.
func verifyArena(n int, seed int64) ([]*vp.Profile, geo.Rect, error) {
	area := geo.NewRect(geo.Pt(0, 0), geo.Pt(4000, 4000))
	profiles, err := core.SynthesizeLegitimate(core.SynthConfig{N: n, Area: area, Seed: seed})
	if err != nil {
		return nil, geo.Rect{}, err
	}
	core.MarkTrustedNearest(profiles, geo.Pt(600, 600))
	site := geo.RectAround(geo.Pt(2600, 2600), 200)
	return profiles, site, nil
}

// Fig12QuantileBands are the attacker-position bands of the Fig. 12
// sweep, expressed as quantiles of the hop-distance distribution from
// the trusted VP. The paper's x-axis is absolute hops (1-25) on a
// graph of unspecified density; quantile bands sweep the same axis —
// attackers adjacent to the trusted VP through attackers at the far
// edge of the viewmap — on any arena.
var Fig12QuantileBands = [][2]float64{{0, 0.2}, {0.2, 0.4}, {0.4, 0.6}, {0.6, 0.8}, {0.8, 1}}

// evalFunc grades one launched campaign against a population. The
// offline sweeps pass offlineEvaluate (batch core.Build via
// attack.Evaluate); the online sweeps (attackserving.go) pass an
// evaluator that drives the same campaign through a live HTTP serving
// system and cross-checks the two.
type evalFunc func(population []*vp.Profile, camp *attack.Campaign, site geo.Rect, minute int64) (attack.Outcome, error)

// offlineEvaluate is the batch-construction evaluator the paper's
// figures use.
func offlineEvaluate(population []*vp.Profile, camp *attack.Campaign, site geo.Rect, minute int64) (attack.Outcome, error) {
	return attack.Evaluate(population, camp, site, minute)
}

// verifySweep runs a verification-accuracy sweep. Every run builds one
// honest arena (in parallel across runs), prepares per-arena context
// once, and evaluates every (setting, fake volume) cell on it. Note
// that campaigns within one run share the arena: LinkMutually leaves a
// previous campaign's fake digests in the owned profiles' filters,
// which only nudges their fill by a few elements and does not create
// edges (those fakes are absent from later evaluations).
func verifySweep(cfg VerifyConfig, settings []string, fakePcts []int, seedBase int64,
	arena func(seed int64) ([]*vp.Profile, geo.Rect, error),
	prepare func(profiles []*vp.Profile, site geo.Rect, seed int64) (interface{}, error),
	pickOwned func(setting int, ctx interface{}, seed int64) (owned, extraPopulation []*vp.Profile),
	evaluate evalFunc,
) ([]VerifyRow, error) {
	type cell struct {
		runs, success int
		recall        float64
	}
	results := make([][][]cell, cfg.Runs) // [run][setting][pct]
	errs := make([]error, cfg.Runs)
	var wg sync.WaitGroup
	sem := make(chan struct{}, runtime.GOMAXPROCS(0))
	for run := 0; run < cfg.Runs; run++ {
		wg.Add(1)
		go func(run int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			cells := make([][]cell, len(settings))
			for i := range cells {
				cells[i] = make([]cell, len(fakePcts))
			}
			results[run] = cells
			seed := cfg.Seed + seedBase + int64(run)*97
			profiles, site, err := arena(seed)
			if err != nil {
				errs[run] = err
				return
			}
			ctx, err := prepare(profiles, site, seed)
			if err != nil {
				errs[run] = err
				return
			}
			for si := range settings {
				owned, extra := pickOwned(si, ctx, seed)
				if len(owned) == 0 {
					continue
				}
				population := profiles
				if len(extra) > 0 {
					population = append(append([]*vp.Profile{}, profiles...), extra...)
				}
				for pi, pct := range fakePcts {
					camp, err := attack.Launch(owned, attack.Config{
						Site: site, FakeCount: cfg.LegitVPs * pct / 100,
						Colluding: true, Minute: 0, Seed: seed,
					})
					if err != nil {
						errs[run] = err
						return
					}
					out, err := evaluate(population, camp, site, 0)
					if err != nil {
						errs[run] = err
						return
					}
					c := &cells[si][pi]
					c.runs++
					if out.Success() {
						c.success++
					}
					if out.InSiteLegit > 0 {
						c.recall += float64(out.LegitAccepted) / float64(out.InSiteLegit)
					} else {
						c.recall++
					}
				}
			}
		}(run)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	var rows []VerifyRow
	for si, name := range settings {
		for pi, pct := range fakePcts {
			var agg cell
			for run := range results {
				c := results[run][si][pi]
				agg.runs += c.runs
				agg.success += c.success
				agg.recall += c.recall
			}
			row := VerifyRow{Setting: name, FakePct: pct, Runs: agg.runs}
			if agg.runs > 0 {
				row.Accuracy = float64(agg.success) / float64(agg.runs)
				row.LegitRecall = agg.recall / float64(agg.runs)
			}
			rows = append(rows, row)
		}
	}
	return rows, nil
}

// fig12Ctx caches the per-arena hop ordering.
type fig12Ctx struct {
	ordered []*vp.Profile
	site    geo.Rect
}

// Fig12 sweeps the attackers' position (hop-distance quantile from the
// trusted VP).
func Fig12(cfg VerifyConfig) ([]VerifyRow, error) {
	return fig12Sweep(cfg, []int{100, 200, 300, 400, 500}, offlineEvaluate)
}

// fig12Sweep is the Fig. 12 body with the fake volumes and the
// evaluator pluggable; Fig12 runs it offline, Fig12Online through the
// live serving path.
func fig12Sweep(cfg VerifyConfig, fakePcts []int, evaluate evalFunc) ([]VerifyRow, error) {
	cfg = cfg.withDefaults()
	settings := make([]string, len(Fig12QuantileBands))
	for i, b := range Fig12QuantileBands {
		settings[i] = fmt.Sprintf("hops q%.0f-%.0f%%", b[0]*100, b[1]*100)
	}
	attackers := int(cfg.AttackerPct * float64(cfg.LegitVPs) / 10)
	if attackers < 1 {
		attackers = 1
	}
	return verifySweep(cfg, settings, fakePcts, 0,
		func(seed int64) ([]*vp.Profile, geo.Rect, error) { return verifyArena(cfg.LegitVPs, seed) },
		func(profiles []*vp.Profile, site geo.Rect, seed int64) (interface{}, error) {
			ordered, _, err := attack.HopQuantiles(profiles, site, 0)
			if err != nil {
				return nil, err
			}
			return &fig12Ctx{ordered: ordered, site: site}, nil
		},
		func(si int, ctx interface{}, seed int64) ([]*vp.Profile, []*vp.Profile) {
			c := ctx.(*fig12Ctx)
			b := Fig12QuantileBands[si]
			rng := rand.New(rand.NewSource(seed + int64(si)))
			return attack.PickQuantileBand(c.ordered, b[0], b[1], attackers, rng), nil
		},
		evaluate)
}

// Fig13 sweeps the number of legitimate-but-dummy VPs each attacker
// holds (the concentration attack): the attacker recorded dn dummy
// videos at its real positions and owns all their VPs.
func Fig13(cfg VerifyConfig) ([]VerifyRow, error) {
	return fig13Sweep(cfg, []int{100, 200, 300, 400, 500}, offlineEvaluate)
}

// fig13Sweep is the Fig. 13 body with the fake volumes and the
// evaluator pluggable; Fig13 runs it offline, Fig13Online through the
// live serving path.
func fig13Sweep(cfg VerifyConfig, fakePcts []int, evaluate evalFunc) ([]VerifyRow, error) {
	cfg = cfg.withDefaults()
	dummies := []int{25, 50, 75, 100, 125}
	settings := make([]string, len(dummies))
	for i, dn := range dummies {
		settings[i] = fmt.Sprintf("%d dummies", dn)
	}
	return verifySweep(cfg, settings, fakePcts, 31337,
		func(seed int64) ([]*vp.Profile, geo.Rect, error) { return verifyArena(cfg.LegitVPs, seed) },
		func(profiles []*vp.Profile, site geo.Rect, seed int64) (interface{}, error) {
			return profiles, nil
		},
		func(si int, ctx interface{}, seed int64) ([]*vp.Profile, []*vp.Profile) {
			// The concentration attacker is one vehicle with dn dummy
			// recorders: all dummy VPs ride the same trajectory.
			profiles := ctx.([]*vp.Profile)
			dn := dummies[si]
			rng := rand.New(rand.NewSource(seed))
			var base *vp.Profile
			for _, idx := range rng.Perm(len(profiles)) {
				if !profiles[idx].Trusted {
					base = profiles[idx]
					break
				}
			}
			clones, err := attack.CloneDummies(base, profiles, dn, core.DefaultDSRCRange, rng)
			if err != nil {
				return nil, nil
			}
			owned := append([]*vp.Profile{base}, clones...)
			return owned, clones
		},
		evaluate)
}

// ----------------------------------------------------------------- Fig 14

// Fig14Row is one (m, n) point of the false-linkage analysis.
type Fig14Row struct {
	FilterBits   int
	Neighbors    int
	FalseLinkage float64
}

// String formats the row like a Fig. 14 data point.
func (r Fig14Row) String() string {
	return fmt.Sprintf("m=%4d bits, n=%3d neighbors -> false linkage %.3e",
		r.FilterBits, r.Neighbors, r.FalseLinkage)
}

// Fig14 evaluates the paper's closed-form false linkage rate with the
// optimal hash count, for m in {1024..4096} and n up to 400.
func Fig14() []Fig14Row {
	var rows []Fig14Row
	for _, m := range []int{1024, 2048, 3072, 4096} {
		for n := 50; n <= 400; n += 50 {
			k := bloom.OptimalK(m, n)
			rows = append(rows, Fig14Row{
				FilterBits: m, Neighbors: n,
				FalseLinkage: bloom.FalseLinkageRate(m, k, n),
			})
		}
	}
	return rows
}

// ------------------------------------------------------- Figs 15/17/20, T2

// VLRRow is a VP-linkage-ratio point at one distance bucket.
type VLRRow struct {
	Environment string
	DistanceM   float64 // bucket center
	VLR         float64
	OnVideo     float64
	Correlation float64 // phi between linked and on-video (Fig. 20)
	Minutes     int
}

// String formats the row like a Fig. 15/17 data point.
func (r VLRRow) String() string {
	return fmt.Sprintf("%-12s d=%3.0fm  VLR %5.1f%%  video %5.1f%%  corr %+5.2f  (%d min)",
		r.Environment, r.DistanceM, r.VLR*100, r.OnVideo*100, r.Correlation, r.Minutes)
}

// envSpec describes one measurement environment.
type envSpec struct {
	name       string
	fill       float64 // building fill (0 = open)
	spacing    float64
	traffic    float64
	controlled bool // controlled-gap convoy instead of city drives
	speedKmh   float64
}

// runEnvMinutes collects per-minute outcomes for an environment,
// either controlled-gap sweeps or random two-vehicle city drives.
func runEnvMinutes(spec envSpec, minutes int, seed int64) ([]MinuteOutcome, error) {
	if spec.controlled {
		var all []MinuteOutcome
		perGap := minutes / 16
		if perGap < 1 {
			perGap = 1
		}
		for gap := 25.0; gap <= 400; gap += 25 {
			a, b, err := ParallelTracks(gap, mobilityKmhToMs(spec.speedKmh), perGap)
			if err != nil {
				return nil, err
			}
			// Offset B diagonally so it sits inside A's camera FOV.
			for i := range b {
				b[i] = geo.Pt(a[i].X+gap*0.77, a[i].Y+gap*0.64)
			}
			outs, err := RunLinkScenario(LinkScenario{
				Name: spec.name, TrackA: a, TrackB: b,
				TrafficDensity: spec.traffic, Seed: seed + int64(gap),
			})
			if err != nil {
				return nil, err
			}
			all = append(all, outs...)
		}
		return all, nil
	}
	// City drives: build the environment's street grid and drive two
	// vehicles at random through it.
	run, err := NewCityRun(CityConfig{
		Vehicles: 2, Minutes: minutes,
		BlocksX: 12, BlocksY: 12, SpacingM: spec.spacing, BuildingFill: spec.fill,
		MeanSpeedKmh: spec.speedKmh, Seed: seed,
	})
	if err != nil {
		return nil, err
	}
	trackA := run.Trace.Positions[0]
	trackB := run.Trace.Positions[1]
	return RunLinkScenario(LinkScenario{
		Name: spec.name, TrackA: trackA, TrackB: trackB,
		Env:            radio.Environment{Obstacles: run.Index.AsSet()},
		TrafficDensity: spec.traffic,
		Seed:           seed,
	})
}

// binByDistance buckets minutes into 50 m distance bins and computes
// VLR, on-video rate and the linked/on-video correlation per bin.
func binByDistance(env string, outcomes []MinuteOutcome) []VLRRow {
	const binW = 50.0
	type agg struct {
		linked, video []bool
	}
	bins := make(map[int]*agg)
	for _, o := range outcomes {
		b := int(o.MeanDistance / binW)
		if bins[b] == nil {
			bins[b] = &agg{}
		}
		bins[b].linked = append(bins[b].linked, o.Linked)
		bins[b].video = append(bins[b].video, o.OnVideo)
	}
	var rows []VLRRow
	for b := 0; b < 8; b++ {
		a := bins[b]
		if a == nil || len(a.linked) == 0 {
			continue
		}
		row := VLRRow{
			Environment: env,
			DistanceM:   float64(b)*binW + binW/2,
			Minutes:     len(a.linked),
		}
		for i := range a.linked {
			if a.linked[i] {
				row.VLR++
			}
			if a.video[i] {
				row.OnVideo++
			}
		}
		row.VLR /= float64(len(a.linked))
		row.OnVideo /= float64(len(a.video))
		if corr, err := stats.PearsonBinary(a.linked, a.video); err == nil {
			row.Correlation = corr
		}
		rows = append(rows, row)
	}
	return rows
}

// Fig15 measures VP linkage ratio vs distance across the paper's four
// environments.
func Fig15(minutesPerEnv int, seed int64) ([]VLRRow, error) {
	if minutesPerEnv <= 0 {
		minutesPerEnv = 128
	}
	specs := []envSpec{
		{name: "Open road", controlled: true, speedKmh: 50},
		{name: "Highway", controlled: true, traffic: 0.45, speedKmh: 80},
		{name: "Residential", fill: 0.55, spacing: 120, speedKmh: 40},
		{name: "Downtown", fill: 0.85, spacing: 150, traffic: 0.2, speedKmh: 30},
	}
	var rows []VLRRow
	for _, spec := range specs {
		outs, err := runEnvMinutes(spec, minutesPerEnv, seed)
		if err != nil {
			return nil, err
		}
		rows = append(rows, binByDistance(spec.name, outs)...)
	}
	return rows, nil
}

// Fig16Row is one PDR-vs-RSSI scatter point.
type Fig16Row struct {
	RSSI float64
	PDR  float64
}

// String formats the row like a Fig. 16 data point.
func (r Fig16Row) String() string {
	return fmt.Sprintf("RSSI %6.1f dBm -> PDR %.2f", r.RSSI, r.PDR)
}

// Fig16 samples link conditions at random distances and reports the
// empirical PDR against mean RSSI.
func Fig16(samples int, seed int64) []Fig16Row {
	if samples <= 0 {
		samples = 60
	}
	rng := rand.New(rand.NewSource(seed))
	p := radio.DefaultParams()
	var rows []Fig16Row
	for i := 0; i < samples; i++ {
		m := radio.NewMedium(p, radio.Environment{}, seed+int64(i))
		d := 20 + rng.Float64()*420
		a, b := geo.Pt(0, 0), geo.Pt(d, 0)
		pdr, rssi := m.EmpiricalPDR(0, a, 1, b, 400)
		rows = append(rows, Fig16Row{RSSI: rssi, PDR: pdr})
	}
	return rows
}

// Fig17 measures VLR vs distance for highway speed/traffic scenarios.
func Fig17(minutesPerEnv int, seed int64) ([]VLRRow, error) {
	if minutesPerEnv <= 0 {
		minutesPerEnv = 128
	}
	specs := []envSpec{
		{name: "Hwy1 80km/h light", controlled: true, traffic: 0.05, speedKmh: 80},
		{name: "Hwy1 50km/h light", controlled: true, traffic: 0.05, speedKmh: 50},
		{name: "Hwy2 80km/h heavy", controlled: true, traffic: 0.75, speedKmh: 80},
		{name: "Hwy2 50km/h heavy", controlled: true, traffic: 0.75, speedKmh: 50},
	}
	var rows []VLRRow
	for _, spec := range specs {
		outs, err := runEnvMinutes(spec, minutesPerEnv, seed)
		if err != nil {
			return nil, err
		}
		rows = append(rows, binByDistance(spec.name, outs)...)
	}
	return rows, nil
}

// Fig20 reports the linkage/visibility correlation vs distance for the
// three uncontrolled environments.
func Fig20(minutesPerEnv int, seed int64) ([]VLRRow, error) {
	if minutesPerEnv <= 0 {
		minutesPerEnv = 192
	}
	specs := []envSpec{
		{name: "Downtown", fill: 0.85, spacing: 150, traffic: 0.2, speedKmh: 30},
		{name: "Residential", fill: 0.55, spacing: 120, traffic: 0.1, speedKmh: 40},
		{name: "Highway", fill: 0.2, spacing: 400, traffic: 0.35, speedKmh: 70},
	}
	var rows []VLRRow
	for _, spec := range specs {
		outs, err := runEnvMinutes(spec, minutesPerEnv, seed)
		if err != nil {
			return nil, err
		}
		rows = append(rows, binByDistance(spec.name, outs)...)
	}
	return rows, nil
}

func mobilityKmhToMs(kmh float64) float64 { return kmh / 3.6 }
