package sim

import (
	"fmt"
	"time"

	"viewmap/internal/core"
	"viewmap/internal/geo"
	"viewmap/internal/server"
	"viewmap/internal/vp"
)

// This file benchmarks the system service as a serving system rather
// than a batch pipeline: a sustained stream of batched anonymous VP
// uploads flows into the sharded store (each profile linked into its
// minute's viewmap on ingest), while an authority fires repeated
// investigations at the warm minutes. The rebuild-per-request baseline
// — core.Build on every investigation, the pre-incremental behaviour —
// runs side by side on an identically loaded system for comparison.

// ServingConfig parameterizes the sustained-ingest serving benchmark.
type ServingConfig struct {
	// VehiclesPerMinute is the number of VP uploads per unit-time
	// window; zero selects 200.
	VehiclesPerMinute int
	// Minutes is the number of unit-time windows the upload stream
	// spans; zero selects 2.
	Minutes int
	// BatchSize is the number of profiles per batched upload; zero
	// selects 64.
	BatchSize int
	// WarmRequests is the number of repeated investigations per warm
	// minute; zero selects 10.
	WarmRequests int
	// Seed drives the synthetic trajectories.
	Seed int64
}

func (c ServingConfig) withDefaults() ServingConfig {
	if c.VehiclesPerMinute <= 0 {
		c.VehiclesPerMinute = 200
	}
	if c.Minutes <= 0 {
		c.Minutes = 2
	}
	if c.BatchSize <= 0 {
		c.BatchSize = 64
	}
	if c.WarmRequests <= 0 {
		c.WarmRequests = 10
	}
	return c
}

// ServingResult reports one serving-benchmark run.
type ServingResult struct {
	// Ingested is the total number of profiles stored.
	Ingested int
	// IngestRate is profiles linked into viewmaps per second.
	IngestRate float64
	// VerifyLatency is the mean latency of a full TrustRank VerifySite
	// run over the cached, already-linked viewmap of a warm minute —
	// the honest "repeated VerifySite" comparison against the rebuild
	// baseline, with no verdict caching involved.
	VerifyLatency time.Duration
	// WarmLatency is the mean end-to-end repeated-investigation
	// latency against the incremental system, where the verdict cache
	// also short-circuits the repeated TrustRank run.
	WarmLatency time.Duration
	// RebuildLatency is the mean latency of the rebuild-per-request
	// baseline over the same data (core.Build + VerifySite each time).
	RebuildLatency time.Duration
	// Speedup is RebuildLatency / VerifyLatency: how much faster a
	// repeated VerifySite is when the viewmap is already linked and
	// cached. The end-to-end investigation speedup
	// (RebuildLatency / WarmLatency) is larger still.
	Speedup float64
	// Members and Legitimate describe the investigated viewmap, as a
	// sanity check that both paths verified the same structure.
	Members    int
	Legitimate int
}

// Serving runs the sustained-ingest serving benchmark: identical
// upload streams (batched wire uploads plus one trusted VP per minute)
// are fed to an incremental system and to a rebuild-per-request
// baseline, then each answers repeated investigations over the warm
// minutes. Both must report identical viewmap structure; the paths
// differ only in how much work a warm request repeats.
func Serving(cfg ServingConfig) (*ServingResult, error) {
	cfg = cfg.withDefaults()
	area := geo.NewRect(geo.Pt(0, 0), geo.Pt(2000, 2000))
	site := geo.RectAround(area.Center(), 300)

	incremental, err := server.NewSystem(server.Config{AuthorityToken: "bench", BankBits: 1024})
	if err != nil {
		return nil, err
	}
	baseline, err := server.NewSystem(server.Config{
		AuthorityToken: "bench", BankBits: 1024,
		Store: server.StoreConfig{DisableViewmapCache: true},
	})
	if err != nil {
		return nil, err
	}

	res := &ServingResult{}
	var ingestTime time.Duration
	for m := 0; m < cfg.Minutes; m++ {
		profiles, err := core.SynthesizeLegitimate(core.SynthConfig{
			N: cfg.VehiclesPerMinute, Area: area, Minute: int64(m),
			Seed: cfg.Seed + int64(m),
		})
		if err != nil {
			return nil, err
		}
		ti := core.MarkTrustedNearest(profiles, area.Center())
		trustedWire := profiles[ti].Marshal()
		anon := make([]*vp.Profile, 0, len(profiles)-1)
		for i, p := range profiles {
			if i != ti {
				anon = append(anon, p)
			}
		}
		// The trusted upload and the batched anonymous stream, timed
		// against the incremental system (ingest includes linking each
		// profile into its minute's viewmap).
		start := time.Now()
		if err := incremental.UploadTrustedVP("bench", trustedWire); err != nil {
			return nil, err
		}
		for off := 0; off < len(anon); off += cfg.BatchSize {
			end := min(off+cfg.BatchSize, len(anon))
			batch, err := incremental.UploadVPBatch(vp.MarshalBatch(anon[off:end]))
			if err != nil {
				return nil, err
			}
			res.Ingested += batch.Stored
		}
		ingestTime += time.Since(start)
		res.Ingested++ // the trusted VP

		// Mirror the stream into the baseline (untimed; its ingest
		// does no linking).
		if err := baseline.UploadTrustedVP("bench", trustedWire); err != nil {
			return nil, err
		}
		for off := 0; off < len(anon); off += cfg.BatchSize {
			end := min(off+cfg.BatchSize, len(anon))
			if _, err := baseline.UploadVPBatch(vp.MarshalBatch(anon[off:end])); err != nil {
				return nil, err
			}
		}
	}
	res.IngestRate = float64(res.Ingested) / ingestTime.Seconds()

	// Prime both systems (the first investigation of a site extracts
	// and caches; a warm minute is the steady serving state), checking
	// that the two paths verify identical structure.
	for m := 0; m < cfg.Minutes; m++ {
		ri, err := incremental.Investigate("bench", site, int64(m))
		if err != nil {
			return nil, err
		}
		rb, err := baseline.Investigate("bench", site, int64(m))
		if err != nil {
			return nil, err
		}
		if ri.Members != rb.Members || ri.Edges != rb.Edges || len(ri.Legitimate) != len(rb.Legitimate) {
			return nil, fmt.Errorf("sim: serving paths diverge at minute %d: %d/%d/%d vs %d/%d/%d members/edges/legitimate",
				m, ri.Members, ri.Edges, len(ri.Legitimate), rb.Members, rb.Edges, len(rb.Legitimate))
		}
		res.Members, res.Legitimate = ri.Members, len(ri.Legitimate)
	}

	warm := func(sys *server.System) (time.Duration, error) {
		start := time.Now()
		for i := 0; i < cfg.WarmRequests; i++ {
			if _, err := sys.Investigate("bench", site, int64(i%cfg.Minutes)); err != nil {
				return 0, err
			}
		}
		return time.Since(start) / time.Duration(cfg.WarmRequests), nil
	}
	if res.WarmLatency, err = warm(incremental); err != nil {
		return nil, err
	}
	if res.RebuildLatency, err = warm(baseline); err != nil {
		return nil, err
	}

	// Repeated VerifySite on the warm minutes' cached viewmaps, run
	// in full every iteration (no verdict cache): this isolates what
	// incremental construction saves a verification-heavy workload.
	start := time.Now()
	for i := 0; i < cfg.WarmRequests; i++ {
		vm, err := incremental.Store().ViewmapFor(site, int64(i%cfg.Minutes))
		if err != nil {
			return nil, err
		}
		if _, err := vm.VerifySite(vm.InSite(site), core.TrustRankConfig{}); err != nil {
			return nil, err
		}
	}
	res.VerifyLatency = time.Since(start) / time.Duration(cfg.WarmRequests)

	if res.VerifyLatency > 0 {
		res.Speedup = float64(res.RebuildLatency) / float64(res.VerifyLatency)
	}
	return res, nil
}

// Rows renders the result in the bench binary's row format.
func (r *ServingResult) Rows() []string {
	return []string{
		fmt.Sprintf("ingested %d VPs at %.0f VPs/s (linked into per-minute viewmaps on ingest)", r.Ingested, r.IngestRate),
		fmt.Sprintf("investigated viewmap: %d members, %d verified legitimate", r.Members, r.Legitimate),
		fmt.Sprintf("warm VerifySite:       %12v/req (full TrustRank over the cached, already-linked viewmap)", r.VerifyLatency),
		fmt.Sprintf("warm investigation:    %12v/req (end to end; the verdict cache also skips the repeated TrustRank)", r.WarmLatency),
		fmt.Sprintf("rebuild-per-request:   %12v/req (core.Build + TrustRank each time)", r.RebuildLatency),
		fmt.Sprintf("speedup: %.1fx (VerifySite on warm minute vs rebuild-per-request)", r.Speedup),
	}
}
