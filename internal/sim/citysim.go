package sim

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"viewmap/internal/core"
	"viewmap/internal/geo"
	"viewmap/internal/mobility"
	"viewmap/internal/roadnet"
	"viewmap/internal/tracker"
	"viewmap/internal/vd"
	"viewmap/internal/vp"
)

// CityConfig parameterizes a trace-driven city simulation in the style
// of the paper's Section 8 setup (SUMO traces of 1000 vehicles on an
// 8x8 km street map of Seoul).
type CityConfig struct {
	// Vehicles is the fleet size.
	Vehicles int
	// Minutes is the simulated duration.
	Minutes int
	// BlocksX and BlocksY are the street-grid dimensions; spacing
	// below sets the block edge. Zero selects 20x20.
	BlocksX, BlocksY int
	// SpacingM is the street spacing; zero selects 200 m.
	SpacingM float64
	// BuildingFill is the block fraction occupied by buildings; zero
	// selects 0.7.
	BuildingFill float64
	// MeanSpeedKmh and MixSpeeds follow mobility.Config.
	MeanSpeedKmh float64
	MixSpeeds    bool
	// Alpha is the guard-VP fraction; zero selects 0.1.
	Alpha float64
	// DSRCRangeM is the link radius; zero selects 400 m.
	DSRCRangeM float64
	// OriginX and OriginY place the city's lower-left corner; zero
	// keeps the grid at the coordinate origin. Multi-city scenarios
	// offset each city so their footprints — and investigation sites —
	// stay disjoint while sharing one minute-sharded store.
	OriginX, OriginY float64
	// Seed drives everything.
	Seed int64
}

func (c CityConfig) withDefaults() CityConfig {
	if c.BlocksX == 0 {
		c.BlocksX = 20
	}
	if c.BlocksY == 0 {
		c.BlocksY = 20
	}
	if c.SpacingM == 0 {
		c.SpacingM = 200
	}
	if c.BuildingFill == 0 {
		c.BuildingFill = 0.7
	}
	if c.Alpha == 0 {
		c.Alpha = 0.1
	}
	if c.DSRCRangeM == 0 {
		c.DSRCRangeM = 400
	}
	if c.MeanSpeedKmh == 0 && !c.MixSpeeds {
		c.MeanSpeedKmh = 50
	}
	return c
}

// CityRun holds a generated city and fleet trace.
type CityRun struct {
	Cfg   CityConfig
	City  *roadnet.City
	Index *geo.IndexedObstacles
	Trace *mobility.Trace
	rng   *rand.Rand
}

// NewCityRun builds the city and drives the fleet.
func NewCityRun(cfg CityConfig) (*CityRun, error) {
	cfg = cfg.withDefaults()
	if cfg.Vehicles <= 0 || cfg.Minutes <= 0 {
		return nil, fmt.Errorf("sim: need positive vehicles and minutes (%d, %d)", cfg.Vehicles, cfg.Minutes)
	}
	city, err := roadnet.BuildGrid(roadnet.GridConfig{
		Cols: cfg.BlocksX + 1, Rows: cfg.BlocksY + 1,
		Spacing: cfg.SpacingM, BuildingFill: cfg.BuildingFill,
		Origin: geo.Pt(cfg.OriginX, cfg.OriginY),
	})
	if err != nil {
		return nil, err
	}
	// Mirror the city's buildings into a spatial index for the massive
	// LOS query load.
	ix := geo.NewIndexedObstacles(cfg.SpacingM)
	half := cfg.SpacingM / 2 * cfg.BuildingFill
	for cx := 0; cx < cfg.BlocksX; cx++ {
		for cy := 0; cy < cfg.BlocksY; cy++ {
			center := geo.Pt(
				cfg.OriginX+float64(cx)*cfg.SpacingM+cfg.SpacingM/2,
				cfg.OriginY+float64(cy)*cfg.SpacingM+cfg.SpacingM/2)
			ix.AddBuilding(geo.RectAround(center, half))
		}
	}
	trace, err := mobility.Generate(city, mobility.Config{
		Vehicles: cfg.Vehicles, Seconds: cfg.Minutes * vd.SegmentSeconds,
		MeanSpeedKmh: cfg.MeanSpeedKmh, MixSpeeds: cfg.MixSpeeds, Seed: cfg.Seed,
	})
	if err != nil {
		return nil, err
	}
	return &CityRun{
		Cfg: cfg, City: city, Index: ix, Trace: trace,
		rng: rand.New(rand.NewSource(cfg.Seed + 1)),
	}, nil
}

// Area returns the city's footprint rectangle (origin to the far
// street corner).
func (cr *CityRun) Area() geo.Rect {
	return geo.NewRect(
		geo.Pt(cr.Cfg.OriginX, cr.Cfg.OriginY),
		geo.Pt(cr.Cfg.OriginX+float64(cr.Cfg.BlocksX)*cr.Cfg.SpacingM,
			cr.Cfg.OriginY+float64(cr.Cfg.BlocksY)*cr.Cfg.SpacingM))
}

// neighborPairs returns, for minute m, the unordered vehicle pairs
// whose trajectories were within DSRC range AND line of sight for at
// least two aligned seconds — the condition under which both sides
// hold two element VDs of each other and a viewlink forms. It uses
// per-second grid bucketing to avoid the O(n^2) scan.
func (cr *CityRun) neighborPairs(m int) map[[2]int]int {
	counts := make(map[[2]int]int)
	base := m * vd.SegmentSeconds
	cell := cr.Cfg.DSRCRangeM
	for s := 0; s < vd.SegmentSeconds; s++ {
		t := base + s
		grid := make(map[[2]int][]int)
		for v := 0; v < cr.Trace.NumVehicles(); v++ {
			p := cr.Trace.Positions[v][t]
			grid[[2]int{int(math.Floor(p.X / cell)), int(math.Floor(p.Y / cell))}] = append(
				grid[[2]int{int(math.Floor(p.X / cell)), int(math.Floor(p.Y / cell))}], v)
		}
		range2 := cr.Cfg.DSRCRangeM * cr.Cfg.DSRCRangeM
		check := func(a, b int) {
			pa, pb := cr.Trace.Positions[a][t], cr.Trace.Positions[b][t]
			if pa.Dist2(pb) > range2 || !cr.Index.LOS(pa, pb) {
				return
			}
			k := [2]int{a, b}
			if a > b {
				k = [2]int{b, a}
			}
			counts[k]++
		}
		for key, bucket := range grid {
			// In-cell pairs once, then the four forward neighbor cells
			// so every cross-cell pair is visited exactly once.
			for i := 0; i < len(bucket); i++ {
				for j := i + 1; j < len(bucket); j++ {
					check(bucket[i], bucket[j])
				}
			}
			for _, d := range [...][2]int{{1, 0}, {0, 1}, {1, 1}, {1, -1}} {
				for _, a := range bucket {
					for _, b := range grid[[2]int{key[0] + d[0], key[1] + d[1]}] {
						check(a, b)
					}
				}
			}
		}
	}
	pairs := make(map[[2]int]int)
	for k, c := range counts {
		if c >= 2 {
			pairs[k] = c
		}
	}
	return pairs
}

// MinuteProfiles is the VP population of one simulated minute.
type MinuteProfiles struct {
	// Profiles holds actual VPs (index < NumVehicles aligns with
	// vehicle ids) followed by guard VPs.
	Profiles []*vp.Profile
	// Owner maps VP identifier to vehicle id; guards map to -1.
	Owner map[vd.VPID]int
	// Guards counts the guard VPs appended after the actual ones.
	Guards int
	// Pairs is the viewlinked vehicle-pair set with contact seconds.
	Pairs map[[2]int]int
}

// ProfilesForMinute fabricates the minute's VP population: one actual
// VP per vehicle, viewlinks for every qualifying pair, and (optionally)
// guard VPs with mutual links per the paper's alpha policy.
func (cr *CityRun) ProfilesForMinute(m int, withGuards bool) (*MinuteProfiles, error) {
	if m < 0 || m >= cr.Cfg.Minutes {
		return nil, fmt.Errorf("sim: minute %d outside run of %d", m, cr.Cfg.Minutes)
	}
	base := m * vd.SegmentSeconds
	n := cr.Trace.NumVehicles()
	out := &MinuteProfiles{Owner: make(map[vd.VPID]int)}
	for v := 0; v < n; v++ {
		track := cr.Trace.Positions[v][base : base+vd.SegmentSeconds]
		p, err := core.FabricateProfile(track, int64(m), 0, cr.rng)
		if err != nil {
			return nil, err
		}
		out.Profiles = append(out.Profiles, p)
		out.Owner[p.ID()] = v
	}
	pairs := cr.neighborPairs(m)
	out.Pairs = pairs
	// Link in sorted pair order: map iteration order would leak into
	// the neighbor lists and, through guard-target sampling below,
	// make same-seed runs diverge.
	keys := make([][2]int, 0, len(pairs))
	for k := range pairs {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i][0] != keys[j][0] {
			return keys[i][0] < keys[j][0]
		}
		return keys[i][1] < keys[j][1]
	})
	neighborsOf := make(map[int][]int)
	for _, k := range keys {
		if err := vp.LinkMutually(out.Profiles[k[0]], out.Profiles[k[1]]); err != nil {
			return nil, err
		}
		neighborsOf[k[0]] = append(neighborsOf[k[0]], k[1])
		neighborsOf[k[1]] = append(neighborsOf[k[1]], k[0])
	}
	if withGuards {
		for v := 0; v < n; v++ {
			nbrs := neighborsOf[v]
			if len(nbrs) == 0 {
				continue
			}
			count := int(math.Ceil(cr.Cfg.Alpha * float64(len(nbrs))))
			perm := cr.rng.Perm(len(nbrs))
			ownEnd := cr.Trace.Positions[v][base+vd.SegmentSeconds-1]
			for _, pi := range perm[:count] {
				u := nbrs[pi]
				l1 := cr.Trace.Positions[u][base]
				g, err := vp.BuildGuard(cr.City.Net, l1, ownEnd, int64(m)*vd.SegmentSeconds, vp.GuardConfig{JitterM: 5}, cr.rng)
				if err != nil {
					continue
				}
				if err := vp.LinkMutually(out.Profiles[v], g); err != nil {
					return nil, err
				}
				out.Profiles = append(out.Profiles, g)
				out.Owner[g.ID()] = -1
				out.Guards++
			}
		}
	}
	return out, nil
}

// TrackingDataset derives the tracker's view of the whole run:
// per-minute anonymous observations of actual VPs (and guard VPs when
// withGuards is set), without fabricating full profiles.
func (cr *CityRun) TrackingDataset(withGuards bool) (*tracker.Dataset, error) {
	ds, err := tracker.NewDataset(cr.Cfg.Minutes, cr.Trace.NumVehicles())
	if err != nil {
		return nil, err
	}
	for m := 0; m < cr.Cfg.Minutes; m++ {
		base := m * vd.SegmentSeconds
		last := base + vd.SegmentSeconds - 1
		for v := 0; v < cr.Trace.NumVehicles(); v++ {
			if err := ds.Add(tracker.Observation{
				Start:  cr.Trace.Positions[v][base],
				End:    cr.Trace.Positions[v][last],
				Minute: int64(m),
				Owner:  v,
			}); err != nil {
				return nil, err
			}
		}
		if !withGuards {
			continue
		}
		pairs := cr.neighborPairs(m)
		neighborsOf := make(map[int][]int)
		for k := range pairs {
			neighborsOf[k[0]] = append(neighborsOf[k[0]], k[1])
			neighborsOf[k[1]] = append(neighborsOf[k[1]], k[0])
		}
		for v := 0; v < cr.Trace.NumVehicles(); v++ {
			nbrs := neighborsOf[v]
			if len(nbrs) == 0 {
				continue
			}
			count := int(math.Ceil(cr.Cfg.Alpha * float64(len(nbrs))))
			perm := cr.rng.Perm(len(nbrs))
			for _, pi := range perm[:count] {
				u := nbrs[pi]
				if err := ds.Add(tracker.Observation{
					Start:  cr.Trace.Positions[u][base],
					End:    cr.Trace.Positions[v][last],
					Minute: int64(m),
					Owner:  -1,
				}); err != nil {
					return nil, err
				}
			}
		}
	}
	return ds, nil
}

// ContactIntervals returns the LOS contact interval lengths across the
// run (Fig. 22c), using per-second bucketing.
func (cr *CityRun) ContactIntervals() []int {
	run := make(map[[2]int]int)
	var intervals []int
	total := cr.Cfg.Minutes * vd.SegmentSeconds
	cell := cr.Cfg.DSRCRangeM
	for t := 0; t < total; t++ {
		grid := make(map[[2]int][]int)
		for v := 0; v < cr.Trace.NumVehicles(); v++ {
			p := cr.Trace.Positions[v][t]
			key := [2]int{int(math.Floor(p.X / cell)), int(math.Floor(p.Y / cell))}
			grid[key] = append(grid[key], v)
		}
		inContact := make(map[[2]int]bool)
		for key, bucket := range grid {
			for i := 0; i < len(bucket); i++ {
				for j := i + 1; j < len(bucket); j++ {
					cr.checkContact(bucket[i], bucket[j], t, inContact)
				}
			}
			for _, d := range [...][2]int{{1, 0}, {0, 1}, {1, 1}, {1, -1}} {
				for _, a := range bucket {
					for _, b := range grid[[2]int{key[0] + d[0], key[1] + d[1]}] {
						cr.checkContact(a, b, t, inContact)
					}
				}
			}
		}
		// Extend or close runs.
		for k := range inContact {
			run[k]++
		}
		for k, length := range run {
			if !inContact[k] {
				intervals = append(intervals, length)
				delete(run, k)
			}
		}
	}
	for _, length := range run {
		intervals = append(intervals, length)
	}
	return intervals
}

func (cr *CityRun) checkContact(a, b, t int, inContact map[[2]int]bool) {
	if a == b {
		return
	}
	pa, pb := cr.Trace.Positions[a][t], cr.Trace.Positions[b][t]
	if pa.Dist2(pb) > cr.Cfg.DSRCRangeM*cr.Cfg.DSRCRangeM || !cr.Index.LOS(pa, pb) {
		return
	}
	k := [2]int{a, b}
	if a > b {
		k = [2]int{b, a}
	}
	inContact[k] = true
}
