package sim

// This file turns the §6.3/§8 adversary into a permanent online
// workload: every campaign shape the offline attack experiments
// evaluate (single fake-VP chains, colluding cross-linked clusters,
// hop-banded owners) plus online-only scenarios (fake floods into
// already-verified minutes, stale-minute and duplicate-ID replays,
// interleaved honest/attacker uploads, tampered evidence deliveries,
// payout double-spend races) is driven through client.API against a
// live server.System over the real HTTP endpoints, and scored through
// the wire via the per-VP verdict report. Every scored scenario is
// cross-checked against the offline attack.Evaluate numbers — the
// serving path must agree with the batch pipeline bit for bit — and
// the whole run is deterministic for a fixed seed, so repeated runs
// can be compared fingerprint-for-fingerprint.

import (
	"bytes"
	crand "crypto/rand"
	"crypto/rsa"
	"encoding/binary"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"time"

	"viewmap/internal/attack"
	"viewmap/internal/client"
	"viewmap/internal/core"
	"viewmap/internal/geo"
	"viewmap/internal/reward"
	"viewmap/internal/server"
	"viewmap/internal/vd"
	"viewmap/internal/vp"
)

// AttackServingConfig parameterizes the online attack campaigns.
type AttackServingConfig struct {
	// LegitVPs is the honest population per scenario; zero selects 160.
	LegitVPs int
	// FakePct is the fake volume as a percentage of the honest
	// population; zero selects 100.
	FakePct int
	// Owners is the number of colluding attackers; zero selects 4.
	Owners int
	// BatchSize is the wire upload batch size; zero selects 64.
	BatchSize int
	// SweepRuns is the number of arenas per online Fig. 12/13 sweep;
	// zero selects 1.
	SweepRuns int
	// SweepPcts are the fake volumes of the online sweeps; nil selects
	// {100, 300, 500}.
	SweepPcts []int
	// SkipSweeps drops the online Fig. 12/13 sweeps (the scenario
	// suite still runs).
	SkipSweeps bool
	// Seed drives every random choice of the run.
	Seed int64
}

func (c AttackServingConfig) withDefaults() AttackServingConfig {
	if c.LegitVPs <= 0 {
		c.LegitVPs = 160
	}
	if c.FakePct <= 0 {
		c.FakePct = 100
	}
	if c.Owners <= 0 {
		c.Owners = 4
	}
	if c.BatchSize <= 0 {
		c.BatchSize = 64
	}
	if c.SweepRuns <= 0 {
		c.SweepRuns = 1
	}
	if c.SweepPcts == nil {
		c.SweepPcts = []int{100, 300, 500}
	}
	return c
}

// AttackScenario reports one scored online campaign.
type AttackScenario struct {
	// Name identifies the campaign shape.
	Name string
	// Outcome is the wire-scored verdict outcome; it is asserted equal
	// to the offline attack.Evaluate outcome before being reported.
	Outcome attack.Outcome
	// Members and Edges describe the investigated viewmap.
	Members, Edges int
	// Detail carries scenario-specific counters.
	Detail string
}

// AttackServingResult reports one full online-adversary run.
type AttackServingResult struct {
	// Scenarios are the scored campaigns, in execution order.
	Scenarios []AttackScenario
	// Fig12Online and Fig13Online are the online accuracy sweeps;
	// every cell was asserted equal to the offline evaluator.
	Fig12Online, Fig13Online []VerifyRow
	// DuplicatesRefused counts replayed uploads the store rejected.
	DuplicatesRefused int
	// StaleReplaysRefused counts duplicate-identifier replays into a
	// different (stale) minute that were rejected without creating a
	// shard.
	StaleReplaysRefused int
	// WireRejected counts crafted records that failed wire parsing.
	WireRejected int
	// Quarantined counts stored-but-unlinked implausible profiles.
	Quarantined int
	// TamperRejected counts tampered evidence deliveries refused by
	// the VD cascade; DeliveriesAccepted the honest ones accepted.
	TamperRejected, DeliveriesAccepted int
	// DoubleSpendRefused counts concurrent re-redemptions refused;
	// PayoutRaceWinners the winners of the racing final-unit payout
	// (must be exactly 1).
	DoubleSpendRefused, PayoutRaceWinners int
	// Elapsed is the wall-clock time of the run (excluded from the
	// Fingerprint).
	Elapsed time.Duration
}

// Fingerprint renders every deterministic field of the result; two
// runs with identical configuration must produce identical
// fingerprints (the determinism guard on the epoch/grid-rebuild
// scheduling of the serving path).
func (r *AttackServingResult) Fingerprint() string {
	var b strings.Builder
	for _, sc := range r.Scenarios {
		fmt.Fprintf(&b, "%s|%+v|m%d|e%d|%s\n", sc.Name, sc.Outcome, sc.Members, sc.Edges, sc.Detail)
	}
	for _, row := range r.Fig12Online {
		fmt.Fprintf(&b, "fig12|%s\n", row)
	}
	for _, row := range r.Fig13Online {
		fmt.Fprintf(&b, "fig13|%s\n", row)
	}
	fmt.Fprintf(&b, "dup%d|stale%d|wire%d|quar%d|tamper%d|acc%d|ds%d|race%d\n",
		r.DuplicatesRefused, r.StaleReplaysRefused, r.WireRejected, r.Quarantined,
		r.TamperRejected, r.DeliveriesAccepted, r.DoubleSpendRefused, r.PayoutRaceWinners)
	return b.String()
}

// Rows renders the result in the bench binary's row format.
func (r *AttackServingResult) Rows() []string {
	out := make([]string, 0, len(r.Scenarios)+len(r.Fig12Online)+len(r.Fig13Online)+4)
	for _, sc := range r.Scenarios {
		out = append(out, fmt.Sprintf("%-22s fakes in site %3d, accepted %d; legit in site %3d, accepted %3d  (viewmap %d members / %d edges) %s",
			sc.Name, sc.Outcome.InSiteFakes, sc.Outcome.FakeAccepted,
			sc.Outcome.InSiteLegit, sc.Outcome.LegitAccepted, sc.Members, sc.Edges, sc.Detail))
	}
	for _, row := range r.Fig12Online {
		out = append(out, "fig12-online  "+row.String())
	}
	for _, row := range r.Fig13Online {
		out = append(out, "fig13-online  "+row.String())
	}
	out = append(out,
		fmt.Sprintf("replays refused: %d duplicate, %d stale-minute; %d wire-rejects, %d quarantined",
			r.DuplicatesRefused, r.StaleReplaysRefused, r.WireRejected, r.Quarantined),
		fmt.Sprintf("evidence: %d tampered deliveries rejected, %d honest accepted", r.TamperRejected, r.DeliveriesAccepted),
		fmt.Sprintf("payout: %d double spends refused, %d final-unit race winner(s)", r.DoubleSpendRefused, r.PayoutRaceWinners),
		fmt.Sprintf("every scored scenario matched the offline attack.Evaluate outcome (ran in %v)", r.Elapsed.Round(time.Millisecond)),
	)
	return out
}

// onlineHarness is one live system behind the real HTTP surface.
type onlineHarness struct {
	sys    *server.System
	srv    *httptest.Server
	api    *client.API
	online *attack.Online
}

const attackToken = "attack-bench"

// newOnlineHarness boots a system (reusing the shared signing key so
// RSA generation is paid once per run, not per scenario), serves its
// real HTTP handler, and aims a wire client at it.
func newOnlineHarness(bank *reward.Bank, batchSize int) (*onlineHarness, error) {
	sys, err := server.NewSystem(server.Config{AuthorityToken: attackToken, Bank: bank})
	if err != nil {
		return nil, err
	}
	srv := httptest.NewServer(server.Handler(sys))
	api, err := client.NewAPI(srv.URL, srv.Client())
	if err != nil {
		srv.Close()
		return nil, err
	}
	return &onlineHarness{
		sys: sys, srv: srv, api: api,
		online: &attack.Online{API: api, Token: attackToken, BatchSize: batchSize},
	}, nil
}

func (h *onlineHarness) Close() { h.srv.Close() }

// wireCopies reproduces the server's view of uploaded profiles: a
// round-trip through the anonymous wire format plus the trusted flag
// the authority endpoint would set. Offline cross-checks against a
// system loaded *before* a campaign mutated the attacker-owned
// filters must evaluate these copies, not the live objects.
func wireCopies(ps []*vp.Profile) ([]*vp.Profile, error) {
	out := make([]*vp.Profile, len(ps))
	for i, p := range ps {
		c, err := vp.Unmarshal(p.Marshal())
		if err != nil {
			return nil, err
		}
		c.Trusted = p.Trusted
		out[i] = c
	}
	return out, nil
}

// attackArena builds the scenario population: an honestly linked
// population in a 3x3 km area, trusted VP in one corner, site far
// across — the geometry of the offline attack tests.
func attackArena(n int, seed int64) ([]*vp.Profile, geo.Rect, error) {
	area := geo.NewRect(geo.Pt(0, 0), geo.Pt(3000, 3000))
	profiles, err := core.SynthesizeLegitimate(core.SynthConfig{N: n, Area: area, Seed: seed})
	if err != nil {
		return nil, geo.Rect{}, err
	}
	core.MarkTrustedNearest(profiles, geo.Pt(100, 100))
	return profiles, geo.RectAround(geo.Pt(1500, 1500), 200), nil
}

// scoreAgainstOffline scores the campaign through the wire and
// asserts the outcome equals the offline attack.Evaluate over the
// byte-identical state — the wire view of both the population and the
// campaign, since the anonymous format quantizes positions to float32
// — and that the served viewmap has exactly the members and edges of
// a batch core.Build. offlinePop must be the population as the server
// saw it (wire copies taken at upload time).
func scoreAgainstOffline(name string, h *onlineHarness, camp *attack.Campaign,
	offlinePop []*vp.Profile, site geo.Rect, minute int64) (AttackScenario, error) {

	onOut, err := h.online.Score(camp, site, minute)
	if err != nil {
		return AttackScenario{}, err
	}
	offCamp, _, err := camp.AdmittedWireView()
	if err != nil {
		return AttackScenario{}, err
	}
	offOut, err := attack.Evaluate(offlinePop, offCamp, site, minute)
	if err != nil {
		return AttackScenario{}, err
	}
	if onOut != offOut {
		return AttackScenario{}, fmt.Errorf("sim: %s: online outcome %+v diverges from offline %+v", name, onOut, offOut)
	}
	rep, err := h.api.InvestigateReport(attackToken, site.Min.X, site.Min.Y, site.Max.X, site.Max.Y, minute)
	if err != nil {
		return AttackScenario{}, err
	}
	all := append(append([]*vp.Profile{}, offlinePop...), offCamp.Fakes...)
	vmOff, err := core.Build(all, core.BuildConfig{Site: site, Minute: minute})
	if err != nil {
		return AttackScenario{}, err
	}
	if rep.Members != vmOff.Len() || rep.Edges != vmOff.NumEdges() {
		return AttackScenario{}, fmt.Errorf("sim: %s: served viewmap %d members/%d edges, offline Build %d/%d",
			name, rep.Members, rep.Edges, vmOff.Len(), vmOff.NumEdges())
	}
	return AttackScenario{Name: name, Outcome: onOut, Members: rep.Members, Edges: rep.Edges}, nil
}

// requireRejected asserts that a non-colluding (or colluding, the
// claim holds for both) campaign earned no verdict: FakeAccepted == 0.
func requireRejected(sc AttackScenario) error {
	if sc.Outcome.FakeAccepted != 0 {
		return fmt.Errorf("sim: %s: %d fake VPs were accepted through the serving path", sc.Name, sc.Outcome.FakeAccepted)
	}
	if sc.Outcome.InSiteFakes == 0 {
		return fmt.Errorf("sim: %s: campaign placed no fakes in the site (nothing was tested)", sc.Name)
	}
	return nil
}

// AttackServing drives every campaign shape through the live HTTP
// serving path and scores it through the wire. Any divergence from
// the offline evaluator, any accepted fake in a chain/colluding/
// hop-banded/flood campaign, any replay that slips past the store, or
// any double-spend with more than one winner returns an error.
func AttackServing(cfg AttackServingConfig) (*AttackServingResult, error) {
	cfg = cfg.withDefaults()
	t0 := time.Now()
	// One RSA keypair for the whole run: every short-lived system gets
	// its own bank (fresh double-spend ledger) over the shared key, so
	// scenario count doesn't multiply key-generation cost.
	key, err := rsa.GenerateKey(crand.Reader, 1024)
	if err != nil {
		return nil, err
	}
	freshBank := func() *reward.Bank { return reward.NewBankFromKey(key) }
	res := &AttackServingResult{}

	if err := runChainScenarios(cfg, freshBank, res); err != nil {
		return nil, err
	}
	if err := runFloodAndReplayScenario(cfg, freshBank, res); err != nil {
		return nil, err
	}
	if err := runEvidenceAdversary(cfg, freshBank, res); err != nil {
		return nil, err
	}
	if !cfg.SkipSweeps {
		sweepCfg := VerifyConfig{LegitVPs: cfg.LegitVPs, Runs: cfg.SweepRuns, Seed: cfg.Seed}
		if res.Fig12Online, err = fig12Sweep(sweepCfg, cfg.SweepPcts, onlineEvaluator(freshBank, cfg.BatchSize)); err != nil {
			return nil, err
		}
		if res.Fig13Online, err = fig13Sweep(sweepCfg, cfg.SweepPcts, onlineEvaluator(freshBank, cfg.BatchSize)); err != nil {
			return nil, err
		}
	}
	res.Elapsed = time.Since(t0)
	return res, nil
}

// runChainScenarios drives the offline campaign shapes through the
// wire: a single fake-VP chain, colluding cross-linked clusters, and
// hop-banded owners at the near and far quantiles. Honest and
// attacker batches are interleaved on upload.
func runChainScenarios(cfg AttackServingConfig, freshBank func() *reward.Bank, res *AttackServingResult) error {
	fakeCount := cfg.LegitVPs * cfg.FakePct / 100
	type shape struct {
		name      string
		colluding bool
		pick      func(pop []*vp.Profile, site geo.Rect, rng *rand.Rand) ([]*vp.Profile, error)
	}
	firstNonTrusted := func(pop []*vp.Profile, n int) []*vp.Profile {
		var out []*vp.Profile
		for _, p := range pop {
			if !p.Trusted {
				out = append(out, p)
				if len(out) == n {
					break
				}
			}
		}
		return out
	}
	band := func(lo, hi float64) func(pop []*vp.Profile, site geo.Rect, rng *rand.Rand) ([]*vp.Profile, error) {
		return func(pop []*vp.Profile, site geo.Rect, rng *rand.Rand) ([]*vp.Profile, error) {
			ordered, _, err := attack.HopQuantiles(pop, site, 0)
			if err != nil {
				return nil, err
			}
			return attack.PickQuantileBand(ordered, lo, hi, cfg.Owners, rng), nil
		}
	}
	shapes := []shape{
		{"single-chain", false, func(pop []*vp.Profile, site geo.Rect, rng *rand.Rand) ([]*vp.Profile, error) {
			return firstNonTrusted(pop, 1), nil
		}},
		{"colluding-clusters", true, func(pop []*vp.Profile, site geo.Rect, rng *rand.Rand) ([]*vp.Profile, error) {
			return firstNonTrusted(pop, cfg.Owners), nil
		}},
		{"hop-band-near", true, band(0, 0.25)},
		{"hop-band-far", true, band(0.75, 1)},
	}
	for si, sh := range shapes {
		seed := cfg.Seed + int64(si)*1009
		pop, site, err := attackArena(cfg.LegitVPs, seed)
		if err != nil {
			return err
		}
		rng := rand.New(rand.NewSource(seed))
		owned, err := sh.pick(pop, site, rng)
		if err != nil {
			return err
		}
		if len(owned) == 0 {
			return fmt.Errorf("sim: %s: no attacker-owned VPs selectable", sh.name)
		}
		camp, err := attack.Launch(owned, attack.Config{
			Site: site, FakeCount: fakeCount, Colluding: sh.colluding, Minute: 0, Seed: seed,
		})
		if err != nil {
			return err
		}
		h, err := newOnlineHarness(freshBank(), cfg.BatchSize)
		if err != nil {
			return err
		}
		// Interleaved honest/attacker upload: trusted VP first (the
		// authority channel), then honest and fake batches alternate.
		var honest []*vp.Profile
		for _, p := range pop {
			if p.Trusted {
				if err := h.api.UploadTrustedVP(attackToken, p); err != nil {
					h.Close()
					return err
				}
				continue
			}
			honest = append(honest, p)
		}
		if _, err := h.online.Inject(camp, honest); err != nil {
			h.Close()
			return err
		}
		// The campaign launched before any upload, so the server's view
		// of the population (owned filters included) is the wire copy
		// taken now.
		popWire, err := wireCopies(pop)
		if err != nil {
			h.Close()
			return err
		}
		sc, err := scoreAgainstOffline(sh.name, h, camp, popWire, site, 0)
		h.Close()
		if err != nil {
			return err
		}
		if err := requireRejected(sc); err != nil {
			return err
		}
		res.Scenarios = append(res.Scenarios, sc)
	}
	return nil
}

// runFloodAndReplayScenario exercises the online-only shapes on one
// system: a fake flood into an already-verified minute (stressing
// verdict-cache invalidation), duplicate-ID and stale-minute replays,
// a crafted wire record, and a teleporting (implausible) profile that
// must be quarantined.
func runFloodAndReplayScenario(cfg AttackServingConfig, freshBank func() *reward.Bank, res *AttackServingResult) error {
	seed := cfg.Seed + 7919
	pop, site, err := attackArena(cfg.LegitVPs, seed)
	if err != nil {
		return err
	}
	h, err := newOnlineHarness(freshBank(), cfg.BatchSize)
	if err != nil {
		return err
	}
	defer h.Close()
	if _, err := h.online.SeedPopulation(pop); err != nil {
		return err
	}
	// The server's view of the population freezes here: the flood
	// campaign below mutates the attacker-owned profile's in-memory
	// filter after upload, exactly as a real attacker cannot rewrite
	// an already-uploaded VP. Offline cross-checks use these copies.
	popWire, err := wireCopies(pop)
	if err != nil {
		return err
	}

	// Verify the minute before the flood, warming the verdict cache.
	before, err := h.api.InvestigateReport(attackToken, site.Min.X, site.Min.Y, site.Max.X, site.Max.Y, 0)
	if err != nil {
		return err
	}
	baselineLegit := 0
	for _, v := range before.Verdicts {
		if v.Legitimate {
			baselineLegit++
		}
	}

	// Flood fakes into the verified minute; the cached verdict must be
	// invalidated and the re-verification must match offline exactly.
	var owned *vp.Profile
	for _, p := range pop {
		if !p.Trusted {
			owned = p
			break
		}
	}
	camp, err := attack.Launch([]*vp.Profile{owned}, attack.Config{
		Site: site, FakeCount: cfg.LegitVPs * cfg.FakePct / 100, Minute: 0, Seed: seed,
	})
	if err != nil {
		return err
	}
	if _, err := h.online.Inject(camp, nil); err != nil {
		return err
	}
	sc, err := scoreAgainstOffline("flood-verified-minute", h, camp, popWire, site, 0)
	if err != nil {
		return err
	}
	if err := requireRejected(sc); err != nil {
		return err
	}
	if sc.Outcome.LegitAccepted != baselineLegit {
		return fmt.Errorf("sim: flood changed the legitimate set: %d accepted before, %d after",
			baselineLegit, sc.Outcome.LegitAccepted)
	}
	if sc.Members <= before.Members {
		return fmt.Errorf("sim: flood did not grow the served viewmap (%d -> %d members): stale verdict cache?",
			before.Members, sc.Members)
	}
	sc.Detail = fmt.Sprintf("(verified minute regrown %d -> %d members, legitimate set unchanged)", before.Members, sc.Members)
	res.Scenarios = append(res.Scenarios, sc)

	// Duplicate-ID replays: the whole anonymous stream again, plus the
	// fakes. Every record must bounce off the identifier claim.
	var anon []*vp.Profile
	for _, p := range pop {
		if !p.Trusted {
			anon = append(anon, p)
		}
	}
	replay := append(append([]*vp.Profile{}, anon...), camp.Fakes...)
	rres, err := h.online.Upload(replay)
	if err != nil {
		return err
	}
	// Every record must bounce: stored fakes as duplicates, and any
	// fake the admission gate already turned away gets turned away
	// again (validation runs before the identifier claim).
	if rres.Stored != 0 || rres.Duplicates+rres.Rejected != len(replay) {
		return fmt.Errorf("sim: replay stored %d and refused %d of %d records",
			rres.Stored, rres.Duplicates+rres.Rejected, len(replay))
	}
	res.DuplicatesRefused += rres.Duplicates

	// Stale-minute replays: same identifiers, shifted one minute — an
	// attacker-chosen minute must not allocate a shard.
	statsBefore, err := h.api.StatsFull()
	if err != nil {
		return err
	}
	stale := make([]*vp.Profile, 0, 8)
	for _, p := range anon[:min(8, len(anon))] {
		shift := &vp.Profile{VDs: append([]vd.VD{}, p.VDs...), Neighbors: p.Neighbors}
		for i := range shift.VDs {
			shift.VDs[i].T += vd.SegmentSeconds
		}
		stale = append(stale, shift)
	}
	sres, err := h.online.Upload(stale)
	if err != nil {
		return err
	}
	if sres.Stored != 0 || sres.Duplicates != len(stale) {
		return fmt.Errorf("sim: stale-minute replay stored %d of %d records", sres.Stored, len(stale))
	}
	res.StaleReplaysRefused += sres.Duplicates

	// A crafted wire record (framed correctly, unparseable inside)
	// must be counted at the wire gate, not stored.
	var junk bytes.Buffer
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], 1)
	junk.Write(hdr[:])
	binary.BigEndian.PutUint32(hdr[:], 10)
	junk.Write(hdr[:])
	junk.Write([]byte("0123456789"))
	resp, err := http.Post(h.srv.URL+"/v1/vp/batch", "application/octet-stream", &junk)
	if err != nil {
		return err
	}
	resp.Body.Close()

	// A teleporting trajectory passes structural validation but must
	// be quarantined by the linker, never joining the viewmap.
	rng := rand.New(rand.NewSource(seed + 1))
	track := make([]geo.Point, vd.SegmentSeconds)
	for i := range track {
		track[i] = geo.Pt(float64(i%2)*2500, 1500) // 2.5 km jumps each second
	}
	tele, err := core.FabricateProfile(track, 0, 0, rng)
	if err != nil {
		return err
	}
	if _, err := h.online.Upload([]*vp.Profile{tele}); err != nil {
		return err
	}
	after, err := h.api.InvestigateReport(attackToken, site.Min.X, site.Min.Y, site.Max.X, site.Max.Y, 0)
	if err != nil {
		return err
	}
	if after.Members != sc.Members {
		return fmt.Errorf("sim: quarantined teleporter changed the viewmap (%d -> %d members)", sc.Members, after.Members)
	}

	// The stats surface must account for every gate.
	stats, err := h.api.StatsFull()
	if err != nil {
		return err
	}
	if stats.Minutes != statsBefore.Minutes {
		return fmt.Errorf("sim: stale-minute replays allocated shards (%d -> %d minutes)", statsBefore.Minutes, stats.Minutes)
	}
	wantDup := res.DuplicatesRefused + res.StaleReplaysRefused
	if stats.Ingest.Duplicates != wantDup {
		return fmt.Errorf("sim: stats count %d duplicates, want %d", stats.Ingest.Duplicates, wantDup)
	}
	if stats.Ingest.WireRejected != 1 {
		return fmt.Errorf("sim: stats count %d wire rejects, want 1", stats.Ingest.WireRejected)
	}
	if stats.Ingest.Quarantined != 1 {
		return fmt.Errorf("sim: stats count %d quarantined, want 1", stats.Ingest.Quarantined)
	}
	found := false
	for _, shard := range stats.Shards {
		if shard.Minute == 0 {
			found = true
			if shard.Quarantined != 1 {
				return fmt.Errorf("sim: shard 0 reports %d quarantined, want 1", shard.Quarantined)
			}
			if shard.VPs != stats.VPs {
				return fmt.Errorf("sim: shard 0 reports %d VPs, stats total %d", shard.VPs, stats.VPs)
			}
		}
	}
	if !found {
		return fmt.Errorf("sim: stats report no shard for minute 0")
	}
	res.WireRejected += stats.Ingest.WireRejected
	res.Quarantined += stats.Ingest.Quarantined
	return nil
}

// convoyOwner is one straight-lane convoy civilian's delivery state:
// the VP it uploaded and the recording behind it.
type convoyOwner struct {
	id     vd.VPID
	q      vd.Secret
	chunks [][]byte
}

// convoySite is the investigation site covering testConvoyOwners'
// straight lane.
var convoySite = geo.NewRect(geo.Pt(0, -60), geo.Pt(900, 60))

// testConvoyOwners records one minute for `civilians` vehicles plus a
// police car driving a straight lane side by side (all within
// convoySite), uploading every VP through the given callbacks: the
// police car's through uploadTrusted, the civilians' through upload.
// It is the shared convoy for the adversarial-serving scenario (wire
// callbacks) and the evidence edge-case tests (direct System calls).
// A small bitrate keeps the VD cascade meaningful (60 hashed chunks)
// without shoveling the realistic 50 MB per video through every
// delivery — none of the properties under test depend on payload
// size.
func testConvoyOwners(civilians int, seed int64,
	uploadTrusted, upload func(*vp.Profile) error) ([]convoyOwner, error) {

	n := civilians + 1 // + police
	vehicles := make([]*client.Vehicle, n)
	for i := range vehicles {
		v, err := client.NewVehicle(client.VehicleConfig{
			Name:           fmt.Sprintf("convoy-car%d", i),
			Seed:           seed + int64(i),
			BytesPerSecond: 4000,
		})
		if err != nil {
			return nil, err
		}
		if err := v.BeginMinute(0); err != nil {
			return nil, err
		}
		vehicles[i] = v
	}
	for s := 1; s <= vd.SegmentSeconds; s++ {
		vds := make([]vd.VD, n)
		for i, v := range vehicles {
			d, err := v.Tick(geo.Pt(float64(s)*10+float64(i)*50, 0))
			if err != nil {
				return nil, err
			}
			vds[i] = d
		}
		for i, v := range vehicles {
			for j, d := range vds {
				if i != j {
					if err := v.Hear(d, int64(s)); err != nil {
						return nil, err
					}
				}
			}
		}
	}
	var owners []convoyOwner
	for i, v := range vehicles {
		if _, _, err := v.EndMinute(nil); err != nil {
			return nil, err
		}
		for _, p := range v.PendingUploads() {
			if i == n-1 {
				if err := uploadTrusted(p); err != nil {
					return nil, err
				}
				continue
			}
			if err := upload(p); err != nil {
				return nil, err
			}
			id := p.ID()
			q, _ := v.Secret(id)
			chunks := v.MatchSolicitations([]vd.VPID{id})[id]
			if chunks == nil {
				return nil, fmt.Errorf("sim: convoy vehicle %d lost its recording", i)
			}
			owners = append(owners, convoyOwner{id: id, q: q, chunks: chunks})
		}
	}
	return owners, nil
}

// runEvidenceAdversary drives the evidence lifecycle adversarially
// through the wire: a convoy records real footage and uploads VPs, a
// verified solicitation opens, a tampering owner's delivery must fail
// the VD cascade (without burning the solicitation for the honest
// copy), and the payout desk faces concurrent double spends and a
// racing final-unit withdrawal.
func runEvidenceAdversary(cfg AttackServingConfig, freshBank func() *reward.Bank, res *AttackServingResult) error {
	h, err := newOnlineHarness(freshBank(), cfg.BatchSize)
	if err != nil {
		return err
	}
	defer h.Close()

	const civilians = 3
	owners, err := testConvoyOwners(civilians, cfg.Seed,
		func(p *vp.Profile) error { return h.api.UploadTrustedVP(attackToken, p) },
		func(p *vp.Profile) error { return h.api.UploadVP(p) })
	if err != nil {
		return err
	}

	const units = 2
	sol, err := h.api.OpenSolicitation(attackToken,
		convoySite.Min.X, convoySite.Min.Y, convoySite.Max.X, convoySite.Max.Y, 0, units)
	if err != nil {
		return err
	}
	if sol.NewlyListed < civilians {
		return fmt.Errorf("sim: solicitation listed %d identifiers, want >= %d", sol.NewlyListed, civilians)
	}

	// The attacker delivers a tampered copy of its own solicited
	// video: ownership proof and session are valid, the bytes are not.
	att := owners[0]
	tampered := make([][]byte, len(att.chunks))
	for i, c := range att.chunks {
		tampered[i] = append([]byte(nil), c...)
	}
	tampered[30][7] ^= 0x40
	if _, err := h.api.DeliverEvidence(att.id, att.q, tampered); err == nil {
		return fmt.Errorf("sim: tampered evidence delivery was accepted")
	}
	res.TamperRejected++

	// The tamper attempt must not burn the solicitation: the honest
	// bytes still deliver, as do every other owner's.
	for _, o := range owners {
		got, err := h.api.DeliverEvidence(o.id, o.q, o.chunks)
		if err != nil {
			return fmt.Errorf("sim: honest delivery after tamper attempt: %w", err)
		}
		if got != units {
			return fmt.Errorf("sim: delivery entitles %d units, want %d", got, units)
		}
		res.DeliveriesAccepted++
	}

	pub := h.sys.Bank().PublicKey()

	// Double-spend race: one unit, N concurrent redemptions, exactly
	// one winner.
	cash, err := h.api.WithdrawPayout(att.id, att.q, 1, pub)
	if err != nil {
		return err
	}
	const racers = 4
	var wg sync.WaitGroup
	okCh := make(chan bool, racers)
	for i := 0; i < racers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			okCh <- h.api.RedeemPayout(cash[0]) == nil
		}()
	}
	wg.Wait()
	close(okCh)
	wins := 0
	for ok := range okCh {
		if ok {
			wins++
		}
	}
	if wins != 1 {
		return fmt.Errorf("sim: double-spend race had %d winners, want exactly 1", wins)
	}
	res.DoubleSpendRefused += racers - 1

	// Final-unit withdrawal race: one unit remains on the attacker's
	// entitlement; two concurrent withdrawals must produce exactly one
	// winner and the entitlement must then be exhausted.
	winCh := make(chan bool, 2)
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, err := h.api.WithdrawPayout(att.id, att.q, 1, pub)
			winCh <- err == nil
		}()
	}
	wg.Wait()
	close(winCh)
	for ok := range winCh {
		if ok {
			res.PayoutRaceWinners++
		}
	}
	if res.PayoutRaceWinners != 1 {
		return fmt.Errorf("sim: final-unit payout race had %d winners, want exactly 1", res.PayoutRaceWinners)
	}
	if _, err := h.api.WithdrawPayout(att.id, att.q, 1, pub); err == nil {
		return fmt.Errorf("sim: over-withdrawal beyond the entitlement succeeded")
	}

	stats, err := h.api.StatsFull()
	if err != nil {
		return err
	}
	if stats.Evidence.DeliveriesRejected != res.TamperRejected {
		return fmt.Errorf("sim: stats count %d rejected deliveries, want %d", stats.Evidence.DeliveriesRejected, res.TamperRejected)
	}
	if stats.Evidence.DeliveriesAccepted != res.DeliveriesAccepted {
		return fmt.Errorf("sim: stats count %d accepted deliveries, want %d", stats.Evidence.DeliveriesAccepted, res.DeliveriesAccepted)
	}
	return nil
}

// onlineEvaluator returns an evalFunc that grades each sweep cell
// twice — offline with attack.Evaluate and online through a live HTTP
// system — and fails on any divergence. Plugged into fig12Sweep and
// fig13Sweep it reproduces the paper's accuracy sweeps end to end
// over the wire.
func onlineEvaluator(freshBank func() *reward.Bank, batchSize int) evalFunc {
	return func(population []*vp.Profile, camp *attack.Campaign, site geo.Rect, minute int64) (attack.Outcome, error) {
		popWire, err := wireCopies(population)
		if err != nil {
			return attack.Outcome{}, err
		}
		offCamp, wantRejected, err := camp.AdmittedWireView()
		if err != nil {
			return attack.Outcome{}, err
		}
		off, err := attack.Evaluate(popWire, offCamp, site, minute)
		if err != nil {
			return attack.Outcome{}, err
		}
		h, err := newOnlineHarness(freshBank(), batchSize)
		if err != nil {
			return attack.Outcome{}, err
		}
		defer h.Close()
		if _, err := h.online.SeedPopulation(population); err != nil {
			return attack.Outcome{}, err
		}
		injected, err := h.online.Inject(camp, nil)
		if err != nil {
			return attack.Outcome{}, err
		}
		if injected.Rejected != wantRejected {
			return attack.Outcome{}, fmt.Errorf("sim: admission gate rejected %d fakes online, offline model predicts %d",
				injected.Rejected, wantRejected)
		}
		on, err := h.online.Score(camp, site, minute)
		if err != nil {
			return attack.Outcome{}, err
		}
		if on != off {
			return attack.Outcome{}, fmt.Errorf("sim: online sweep cell %+v diverges from offline %+v", on, off)
		}
		return on, nil
	}
}
