package sim

// Warm-vs-cold equivalence over the real HTTP surface: the same honest
// population and the same attack.Online flood waves land on an
// incremental system and on a viewmap-cache-disabled baseline, and
// after every wave the per-VP verdict reports fetched through the wire
// client must match bit for bit. This is the serving-layer counterpart
// of core's TestSiteViewEquivalenceProperty: it additionally covers
// the verdict cache, the content-epoch keying, and the interleaved
// batch ingest the online adversary hides in.

import (
	"fmt"
	"net/http/httptest"
	"testing"

	"viewmap/internal/attack"
	"viewmap/internal/client"
	"viewmap/internal/server"
	"viewmap/internal/vp"
)

// reverifyHarness boots one system behind httptest with an aimed
// online adversary, optionally with the viewmap cache disabled (the
// cold rebuild-per-request baseline).
func reverifyHarness(t *testing.T, coldBaseline bool) *onlineHarness {
	t.Helper()
	bank, err := benchBank()
	if err != nil {
		t.Fatal(err)
	}
	cfg := server.Config{AuthorityToken: attackToken, Bank: bank}
	if coldBaseline {
		cfg.Store = server.StoreConfig{DisableViewmapCache: true}
	}
	sys, err := server.NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(server.Handler(sys))
	t.Cleanup(srv.Close)
	api, err := client.NewAPI(srv.URL, srv.Client())
	if err != nil {
		t.Fatal(err)
	}
	return &onlineHarness{
		sys: sys, srv: srv, api: api,
		online: &attack.Online{API: api, Token: attackToken, BatchSize: 32},
	}
}

func TestOnlineFloodWarmColdEquivalence(t *testing.T) {
	for _, seed := range []int64{7300, 7301} {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			t.Parallel()
			warm := reverifyHarness(t, false)
			cold := reverifyHarness(t, true)

			profiles, site, err := attackArena(120, seed)
			if err != nil {
				t.Fatal(err)
			}
			for _, h := range []*onlineHarness{warm, cold} {
				if _, err := h.online.SeedPopulation(profiles); err != nil {
					t.Fatal(err)
				}
			}

			compare := func(stage string) {
				t.Helper()
				rw, err := warm.api.InvestigateReport(attackToken,
					site.Min.X, site.Min.Y, site.Max.X, site.Max.Y, 0)
				if err != nil {
					t.Fatal(err)
				}
				rc, err := cold.api.InvestigateReport(attackToken,
					site.Min.X, site.Min.Y, site.Max.X, site.Max.Y, 0)
				if err != nil {
					t.Fatal(err)
				}
				if rw.Members != rc.Members || rw.Edges != rc.Edges || rw.InSite != rc.InSite {
					t.Fatalf("%s: warm viewmap %d/%d/%d diverges from cold %d/%d/%d (members/edges/inSite)",
						stage, rw.Members, rw.Edges, rw.InSite, rc.Members, rc.Edges, rc.InSite)
				}
				if fmt.Sprint(rw.Verdicts) != fmt.Sprint(rc.Verdicts) {
					t.Fatalf("%s: warm and cold per-VP verdicts diverge", stage)
				}
			}
			compare("seeded population")

			// Three flood waves into the already-verified minute; each
			// wave interleaves its fakes with a slice of late honest
			// traffic, the upload pattern attackers hide in. Owners
			// rotate so successive campaigns anchor different chains.
			late, _, err := attackArena(36, seed+5000)
			if err != nil {
				t.Fatal(err)
			}
			var lateAnon, owned []*vp.Profile
			for _, p := range late {
				if !p.Trusted {
					lateAnon = append(lateAnon, p)
				}
			}
			for _, p := range profiles {
				if !p.Trusted {
					owned = append(owned, p)
				}
			}
			for w := 0; w < 3; w++ {
				honest := lateAnon[w*len(lateAnon)/3 : (w+1)*len(lateAnon)/3]
				camp, err := attack.Launch(owned[w*2:w*2+2],
					attack.Config{Site: site, FakeCount: 24, Colluding: w%2 == 0,
						Minute: 0, Seed: seed + int64(w)*17})
				if err != nil {
					t.Fatal(err)
				}
				for _, h := range []*onlineHarness{warm, cold} {
					if _, err := h.online.Inject(camp, honest); err != nil {
						t.Fatal(err)
					}
				}
				compare(fmt.Sprintf("flood wave %d", w))
			}
		})
	}
}

// TestReverifyBenchmarkSmoke runs the viewmap-bench reverify
// experiment end to end at a small scale: it must complete, its
// equality gates must hold (Reverify errors out on any divergence),
// and the incremental system must actually have taken the warm path.
// The >=5x speedup claim is for the bench binary at real scale, not
// asserted here where timer noise on a loaded CI machine would flake.
func TestReverifyBenchmarkSmoke(t *testing.T) {
	res, err := Reverify(ReverifyConfig{Vehicles: 100, Waves: 2, FakesPerWave: 20, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.WarmRuns == 0 {
		t.Fatal("incremental system never warm-started TrustRank")
	}
	if res.Speedup <= 0 {
		t.Fatalf("speedup %v, want positive", res.Speedup)
	}
	if res.Members == 0 || res.Legitimate == 0 {
		t.Fatalf("degenerate final viewmap: %d members, %d legitimate", res.Members, res.Legitimate)
	}
}
