package sim

// This file benchmarks post-flood re-verification: the workload where
// an authority keeps a site under investigation while attack floods
// keep landing in the same minute. Every wave invalidates the minute's
// verdict, so each re-investigation must re-run TrustRank — the
// question is from where. The incremental system patches the cached
// site view and warm-starts the power iteration from the previous
// epoch's converged score vector; the cold baseline (viewmap cache
// disabled) rebuilds the extraction and iterates from the uniform
// vector every time. Both answers are asserted identical wave by wave
// before any timing is reported, so the speedup is over a proven-equal
// computation.

import (
	"fmt"
	"math"
	"time"

	"viewmap/internal/attack"
	"viewmap/internal/core"
	"viewmap/internal/geo"
	"viewmap/internal/server"
	"viewmap/internal/vp"
)

// ReverifyConfig parameterizes the re-verification benchmark.
type ReverifyConfig struct {
	// Vehicles is the honest population size; zero selects 220.
	Vehicles int
	// Waves is the number of flood waves, each followed by one timed
	// re-investigation per system; zero selects 4.
	Waves int
	// FakesPerWave is the colluding fake-VP volume per wave; zero
	// selects 40.
	FakesPerWave int
	// BatchSize is the upload batch size; zero selects 64.
	BatchSize int
	// Seed drives the synthetic trajectories and fake placement.
	Seed int64
}

func (c ReverifyConfig) withDefaults() ReverifyConfig {
	if c.Vehicles <= 0 {
		c.Vehicles = 220
	}
	if c.Waves <= 0 {
		c.Waves = 4
	}
	if c.FakesPerWave <= 0 {
		c.FakesPerWave = 40
	}
	if c.BatchSize <= 0 {
		c.BatchSize = 64
	}
	return c
}

// ReverifyResult reports one re-verification benchmark run.
type ReverifyResult struct {
	// Waves is the number of flood waves timed.
	Waves int
	// WarmLatency and ColdLatency are the mean post-wave investigation
	// latencies of the incremental system and the rebuild-per-request
	// baseline.
	WarmLatency, ColdLatency time.Duration
	// Speedup is ColdLatency / WarmLatency.
	Speedup float64
	// WarmRuns and ColdRuns are the incremental system's TrustRank
	// verification counts by restart mode, from the server's own
	// histograms; a healthy run is warm-dominated after the first
	// investigation.
	WarmRuns, ColdRuns uint64
	// WarmP50Iters and ColdP50Iters are the median power-iteration
	// counts of the two modes on the incremental system — the warm
	// path's whole advantage is this gap.
	WarmP50Iters, ColdP50Iters uint64
	// Members and Legitimate describe the final investigated viewmap.
	Members, Legitimate int
}

// Reverify runs the post-flood re-verification benchmark: identical
// honest populations and attack waves land in both systems, and after
// every wave each system re-investigates the same site. Reports must
// match bit for bit; only then are the latencies compared.
func Reverify(cfg ReverifyConfig) (*ReverifyResult, error) {
	cfg = cfg.withDefaults()
	bank, err := benchBank()
	if err != nil {
		return nil, err
	}
	warm, err := server.NewSystem(server.Config{AuthorityToken: "bench", Bank: bank})
	if err != nil {
		return nil, err
	}
	cold, err := server.NewSystem(server.Config{
		AuthorityToken: "bench", Bank: bank,
		Store: server.StoreConfig{DisableViewmapCache: true},
	})
	if err != nil {
		return nil, err
	}
	systems := []*server.System{warm, cold}

	area := geo.NewRect(geo.Pt(0, 0), geo.Pt(2000, 2000))
	site := geo.RectAround(area.Center(), 300)
	profiles, err := core.SynthesizeLegitimate(core.SynthConfig{
		N: cfg.Vehicles, Area: area, Seed: cfg.Seed,
	})
	if err != nil {
		return nil, err
	}
	ti := core.MarkTrustedNearest(profiles, area.Center())
	upload := func(ps []*vp.Profile) error {
		for off := 0; off < len(ps); off += cfg.BatchSize {
			end := min(off+cfg.BatchSize, len(ps))
			wire := vp.MarshalBatch(ps[off:end])
			for _, sys := range systems {
				if _, err := sys.UploadVPBatch(wire); err != nil {
					return err
				}
			}
		}
		return nil
	}
	trustedWire := profiles[ti].Marshal()
	for _, sys := range systems {
		if err := sys.UploadTrustedVP("bench", trustedWire); err != nil {
			return nil, err
		}
	}
	anon := make([]*vp.Profile, 0, len(profiles)-1)
	for i, p := range profiles {
		if i != ti {
			anon = append(anon, p)
		}
	}
	if err := upload(anon); err != nil {
		return nil, err
	}

	// Prime: the first investigation extracts the site view and runs
	// the one unavoidable cold verification on both systems.
	check := func(wave int) (*server.InvestigationReport, error) {
		rw, err := warm.Investigate("bench", site, 0)
		if err != nil {
			return nil, err
		}
		rc, err := cold.Investigate("bench", site, 0)
		if err != nil {
			return nil, err
		}
		if rw.Members != rc.Members || rw.Edges != rc.Edges ||
			fmt.Sprint(rw.Legitimate) != fmt.Sprint(rc.Legitimate) {
			return nil, fmt.Errorf("sim: reverify wave %d: warm report (%d members, %d edges, %d legitimate) diverges from cold (%d, %d, %d)",
				wave, rw.Members, rw.Edges, len(rw.Legitimate), rc.Members, rc.Edges, len(rc.Legitimate))
		}
		return rw, nil
	}
	if _, err := check(0); err != nil {
		return nil, err
	}

	// The attacker owns the honest profile nearest the site, the
	// worst case for chain anchoring; each wave floods a fresh batch
	// of colluding fakes into the already-verified minute.
	owned := nearestProfile(anon, site.Center())
	res := &ReverifyResult{Waves: cfg.Waves}
	var warmTotal, coldTotal time.Duration
	var last *server.InvestigationReport
	for w := 0; w < cfg.Waves; w++ {
		camp, err := attack.Launch([]*vp.Profile{owned}, attack.Config{
			Site: site, FakeCount: cfg.FakesPerWave, Colluding: true,
			Minute: 0, Seed: cfg.Seed + int64(w)*101,
		})
		if err != nil {
			return nil, err
		}
		if err := upload(camp.Fakes); err != nil {
			return nil, err
		}
		start := time.Now()
		if _, err := warm.Investigate("bench", site, 0); err != nil {
			return nil, err
		}
		warmTotal += time.Since(start)
		start = time.Now()
		if _, err := cold.Investigate("bench", site, 0); err != nil {
			return nil, err
		}
		coldTotal += time.Since(start)
		// A repeated pass through the equality gate: the warm side
		// answers from its verdict cache, the cold side recomputes,
		// and both must still agree bit for bit.
		if last, err = check(w + 1); err != nil {
			return nil, err
		}
	}

	res.WarmLatency = warmTotal / time.Duration(cfg.Waves)
	res.ColdLatency = coldTotal / time.Duration(cfg.Waves)
	if res.WarmLatency > 0 {
		res.Speedup = float64(res.ColdLatency) / float64(res.WarmLatency)
	}
	stats := warm.TrustRankStats()
	res.WarmRuns, res.WarmP50Iters = stats["warm"].Verifications, stats["warm"].P50Iterations
	res.ColdRuns, res.ColdP50Iters = stats["cold"].Verifications, stats["cold"].P50Iterations
	res.Members, res.Legitimate = last.Members, len(last.Legitimate)
	return res, nil
}

// nearestProfile returns the profile whose trajectory comes closest
// to p, without marking anything trusted.
func nearestProfile(profiles []*vp.Profile, p geo.Point) *vp.Profile {
	var best *vp.Profile
	bestD := math.Inf(1)
	for _, prof := range profiles {
		for j := range prof.VDs {
			if d := prof.VDs[j].L.Dist(p); d < bestD {
				bestD = d
				best = prof
			}
		}
	}
	return best
}

// Rows renders the result in the bench binary's row format.
func (r *ReverifyResult) Rows() []string {
	return []string{
		fmt.Sprintf("final viewmap after %d flood waves: %d members, %d verified legitimate", r.Waves, r.Members, r.Legitimate),
		fmt.Sprintf("incremental system TrustRank runs: %d warm (median %d iterations), %d cold (median %d iterations)",
			r.WarmRuns, r.WarmP50Iters, r.ColdRuns, r.ColdP50Iters),
		fmt.Sprintf("warm re-verification:  %12v/wave (patched site view + warm-started TrustRank)", r.WarmLatency),
		fmt.Sprintf("cold recompute:        %12v/wave (re-extraction + TrustRank from uniform)", r.ColdLatency),
		fmt.Sprintf("speedup: %.1fx (post-flood re-investigation, verdicts asserted identical)", r.Speedup),
	}
}
