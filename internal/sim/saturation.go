package sim

import (
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"sync"
	"time"

	"viewmap/internal/core"
	"viewmap/internal/geo"
	"viewmap/internal/reward"
	"viewmap/internal/server"
	"viewmap/internal/vp"
)

// The reward bank is shared across saturation runs: generating an RSA
// key per run is slow and, worse, the keygen's allocation churn right
// before the timed window depresses the first run's numbers. Ingest
// never touches the bank.
var (
	satBankOnce sync.Once
	satBank     *reward.Bank
	satBankErr  error
)

func benchBank() (*reward.Bank, error) {
	satBankOnce.Do(func() { satBank, satBankErr = reward.NewBank(1024) })
	return satBank, satBankErr
}

// Ingest-saturation benchmark: offered load for the burst pipeline.
// Unlike the serving benchmark (which times a mixed workload and the
// client's own marshalling), this one pre-marshals every batch up
// front and then drives concurrent uploaders flat out through
// UploadVPBatch, measuring what the server side alone sustains: VPs/s,
// the ack-latency distribution a client sees per batch, and the
// allocation cost per record (the zero-copy decode's success metric).

// SaturationConfig parameterizes the ingest-saturation benchmark.
type SaturationConfig struct {
	// VehiclesPerMinute is the number of VP uploads per unit-time
	// window; zero selects 400.
	VehiclesPerMinute int
	// Minutes is the number of unit-time windows the stream spans; zero
	// selects 2.
	Minutes int
	// BatchSize is the number of profiles per batched upload; zero
	// selects 64.
	BatchSize int
	// Uploaders is the number of concurrent upload clients; zero
	// selects 4.
	Uploaders int
	// Durable, when true, runs against a WAL-backed system in a
	// temporary directory: every acknowledged batch rode a group-
	// committed fsync (ack-after-append), so the numbers include the
	// journal.
	Durable bool
	// DisableMetrics runs the server with the observability registry
	// off — the no-op baseline the metrics-overhead experiment compares
	// the default (metrics on) against.
	DisableMetrics bool
	// Seed drives the synthetic trajectories.
	Seed int64
}

func (c SaturationConfig) withDefaults() SaturationConfig {
	if c.VehiclesPerMinute <= 0 {
		c.VehiclesPerMinute = 400
	}
	if c.Minutes <= 0 {
		c.Minutes = 2
	}
	if c.BatchSize <= 0 {
		c.BatchSize = 64
	}
	if c.Uploaders <= 0 {
		c.Uploaders = 4
	}
	return c
}

// SaturationResult reports one ingest-saturation run. The JSON shape
// is the bench-smoke baseline format (BENCH_ingest.json).
type SaturationResult struct {
	// Config echo, so a baseline file is self-describing.
	VehiclesPerMinute int  `json:"vehicles_per_minute"`
	Minutes           int  `json:"minutes"`
	BatchSize         int  `json:"batch_size"`
	Uploaders         int  `json:"uploaders"`
	Durable           bool `json:"durable"`

	// Ingested is the number of profiles stored during the timed
	// window; Batches the number of batched uploads acknowledged.
	Ingested int `json:"ingested"`
	Batches  int `json:"batches"`
	// ElapsedMS is the timed window's wall-clock length.
	ElapsedMS float64 `json:"elapsed_ms"`
	// VPsPerSec is the headline: profiles decoded, validated, linked,
	// and acknowledged per second.
	VPsPerSec float64 `json:"vps_per_sec"`
	// P50AckUS / P99AckUS are per-batch acknowledgement latencies in
	// microseconds (what one uploader waits for one UploadVPBatch).
	P50AckUS float64 `json:"p50_ack_us"`
	P99AckUS float64 `json:"p99_ack_us"`
	// AllocsPerRecord is heap allocations per ingested record across
	// the whole timed window (uploader loop included).
	AllocsPerRecord float64 `json:"allocs_per_record"`
	// SpotMembers / SpotEdges are the minute-0 equivalence spot-check:
	// the served viewmap's structure, which must match a from-scratch
	// core.Build over the same slab.
	SpotMembers int `json:"spot_members"`
	SpotEdges   int `json:"spot_edges"`
}

// Saturation runs the ingest-saturation benchmark. All batch wire
// bodies are marshalled before the clock starts; the timed section is
// exactly the concurrent UploadVPBatch calls. After the run the
// minute-0 viewmap is cross-checked against a from-scratch rebuild, so
// a fast-but-wrong pipeline cannot post a number.
func Saturation(cfg SaturationConfig) (*SaturationResult, error) {
	cfg = cfg.withDefaults()
	area := geo.NewRect(geo.Pt(0, 0), geo.Pt(2000, 2000))
	bank, err := benchBank()
	if err != nil {
		return nil, err
	}

	var sys *server.System
	scfg := server.Config{AuthorityToken: "bench", Bank: bank, DisableMetrics: cfg.DisableMetrics}
	if cfg.Durable {
		dir, derr := os.MkdirTemp("", "viewmap-saturation-*")
		if derr != nil {
			return nil, derr
		}
		defer os.RemoveAll(dir)
		sys, err = server.OpenDurable(
			scfg,
			server.DurabilityConfig{WALPath: filepath.Join(dir, "ingest.wal")},
		)
	} else {
		sys, err = server.NewSystem(scfg)
	}
	if err != nil {
		return nil, err
	}
	defer sys.Close()

	// Pre-marshal the whole offered load, one wire body per batch,
	// dealt round-robin across uploaders so the same minute sees
	// concurrent submitters.
	type job struct{ wire []byte }
	queues := make([][]job, cfg.Uploaders)
	totalRecords := 0
	for m := 0; m < cfg.Minutes; m++ {
		profiles, err := core.SynthesizeLegitimate(core.SynthConfig{
			N: cfg.VehiclesPerMinute, Area: area, Minute: int64(m),
			Seed: cfg.Seed + int64(m),
		})
		if err != nil {
			return nil, err
		}
		ti := core.MarkTrustedNearest(profiles, area.Center())
		// Trusted seed lands before the clock: it creates the shard and
		// anchors the minute's viewmap, as in steady-state operation.
		if err := sys.UploadTrustedVP("bench", profiles[ti].Marshal()); err != nil {
			return nil, err
		}
		anon := make([]*vp.Profile, 0, len(profiles)-1)
		for i, p := range profiles {
			if i != ti {
				anon = append(anon, p)
			}
		}
		for off := 0; off < len(anon); off += cfg.BatchSize {
			end := min(off+cfg.BatchSize, len(anon))
			u := (off / cfg.BatchSize) % cfg.Uploaders
			queues[u] = append(queues[u], job{wire: vp.MarshalBatch(anon[off:end])})
			totalRecords += end - off
		}
	}

	// Warm-up pass: the same offered load through a scratch in-memory
	// system, sequentially. The timed pass then measures steady state —
	// a cold run is ~30% slower from first-touch page faults, allocator
	// and stack growth, and cold branch predictors, none of which a
	// long-running ingest server pays per batch.
	scratch, err := server.NewSystem(server.Config{AuthorityToken: "bench", Bank: bank})
	if err != nil {
		return nil, err
	}
	for u := range queues {
		for _, j := range queues[u] {
			if _, err := scratch.UploadVPBatch(j.wire); err != nil {
				scratch.Close()
				return nil, err
			}
		}
	}
	if err := scratch.Close(); err != nil {
		return nil, err
	}

	// Timed section: every uploader drains its queue flat out.
	ackLat := make([][]time.Duration, cfg.Uploaders)
	errs := make([]error, cfg.Uploaders)
	stored := make([]int, cfg.Uploaders)
	var wg sync.WaitGroup
	runtime.GC()
	var msBefore runtime.MemStats
	runtime.ReadMemStats(&msBefore)
	start := time.Now()
	for u := 0; u < cfg.Uploaders; u++ {
		wg.Add(1)
		go func(u int) {
			defer wg.Done()
			lat := make([]time.Duration, 0, len(queues[u]))
			for _, j := range queues[u] {
				t0 := time.Now()
				res, err := sys.UploadVPBatch(j.wire)
				if err != nil {
					errs[u] = err
					return
				}
				lat = append(lat, time.Since(t0))
				stored[u] += res.Stored
				if res.Rejected != 0 || res.Duplicates != 0 {
					errs[u] = fmt.Errorf("sim: saturation batch result %+v, want clean", res)
					return
				}
			}
			ackLat[u] = lat
		}(u)
	}
	wg.Wait()
	elapsed := time.Since(start)
	var msAfter runtime.MemStats
	runtime.ReadMemStats(&msAfter)
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}

	res := &SaturationResult{
		VehiclesPerMinute: cfg.VehiclesPerMinute,
		Minutes:           cfg.Minutes,
		BatchSize:         cfg.BatchSize,
		Uploaders:         cfg.Uploaders,
		Durable:           cfg.Durable,
		ElapsedMS:         float64(elapsed.Microseconds()) / 1e3,
	}
	var all []time.Duration
	for u := range ackLat {
		all = append(all, ackLat[u]...)
		res.Ingested += stored[u]
	}
	res.Batches = len(all)
	if res.Ingested != totalRecords {
		return nil, fmt.Errorf("sim: saturation stored %d of %d offered records", res.Ingested, totalRecords)
	}
	res.VPsPerSec = float64(res.Ingested) / elapsed.Seconds()
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	if n := len(all); n > 0 {
		res.P50AckUS = float64(all[n/2].Microseconds())
		res.P99AckUS = float64(all[n*99/100].Microseconds())
	}
	res.AllocsPerRecord = float64(msAfter.Mallocs-msBefore.Mallocs) / float64(totalRecords)

	// Equivalence spot-check: the burst-built minute-0 graph must match
	// a from-scratch rebuild over the same slab.
	site := geo.RectAround(area.Center(), 1500)
	served, err := sys.Store().ViewmapFor(site, 0)
	if err != nil {
		return nil, err
	}
	rebuilt, err := core.Build(sys.Store().Minute(0), core.BuildConfig{
		Site: site, Minute: 0, RequirePlausible: true,
	})
	if err != nil {
		return nil, err
	}
	if served.Len() != rebuilt.Len() || served.NumEdges() != rebuilt.NumEdges() {
		return nil, fmt.Errorf("sim: saturation pipeline diverges from rebuild: %d/%d vs %d/%d members/edges",
			served.Len(), served.NumEdges(), rebuilt.Len(), rebuilt.NumEdges())
	}
	res.SpotMembers, res.SpotEdges = served.Len(), served.NumEdges()
	return res, nil
}

// Rows renders the result in the bench binary's row format.
func (r *SaturationResult) Rows() []string {
	mode := "in-memory"
	if r.Durable {
		mode = "durable (WAL group commit, ack-after-append)"
	}
	return []string{
		fmt.Sprintf("ingested %d VPs in %d batches over %.1f ms (%d uploaders, batch size %d, %s)",
			r.Ingested, r.Batches, r.ElapsedMS, r.Uploaders, r.BatchSize, mode),
		fmt.Sprintf("throughput: %.0f VPs/s server-side (decode + validate + link + ack)", r.VPsPerSec),
		fmt.Sprintf("ack latency per batch: p50 %.0f us, p99 %.0f us", r.P50AckUS, r.P99AckUS),
		fmt.Sprintf("allocations: %.1f allocs/record across the timed window", r.AllocsPerRecord),
		fmt.Sprintf("spot-check: minute-0 viewmap %d members / %d edges matches from-scratch rebuild", r.SpotMembers, r.SpotEdges),
	}
}
