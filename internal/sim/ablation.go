package sim

// Ablation studies for the design choices the paper fixes by fiat:
// the TrustRank damping factor (delta = 0.8, "empirically set"), and
// the guard-VP fraction (alpha = 0.1). These are not paper figures;
// they justify the constants by showing what happens on either side.

import (
	"fmt"

	"viewmap/internal/attack"
	"viewmap/internal/core"
	"viewmap/internal/geo"
	"viewmap/internal/tracker"
	"viewmap/internal/vp"
)

// DampingRow reports verification behaviour at one damping factor.
type DampingRow struct {
	Damping     float64
	Accuracy    float64
	LegitRecall float64
	Runs        int
}

// String formats the row like the other experiment reports.
func (r DampingRow) String() string {
	return fmt.Sprintf("delta=%.2f  accuracy %5.1f%%  legit recall %5.1f%%  (%d runs)",
		r.Damping, r.Accuracy*100, r.LegitRecall*100, r.Runs)
}

// AblationDamping sweeps the TrustRank damping factor against a fixed
// chain attack, reporting accuracy and recall. The paper sets 0.8;
// the sweep shows the verdict is stable across a wide band — the
// algorithm's power comes from the two-way linkage structure, not a
// delicate constant.
func AblationDamping(legitVPs, runs int, seed int64) ([]DampingRow, error) {
	if legitVPs <= 0 {
		legitVPs = 200
	}
	if runs <= 0 {
		runs = 5
	}
	var rows []DampingRow
	for _, delta := range []float64{0.5, 0.6, 0.7, 0.8, 0.9} {
		row := DampingRow{Damping: delta}
		var recall float64
		for run := 0; run < runs; run++ {
			s := seed + int64(run)*101
			profiles, site, err := verifyArena(legitVPs, s)
			if err != nil {
				return nil, err
			}
			ordered, _, err := attack.HopQuantiles(profiles, site, 0)
			if err != nil {
				return nil, err
			}
			if len(ordered) == 0 {
				continue
			}
			owned := []*vp.Profile{ordered[len(ordered)/2]}
			camp, err := attack.Launch(owned, attack.Config{
				Site: site, FakeCount: legitVPs * 3, Colluding: true, Minute: 0, Seed: s,
			})
			if err != nil {
				return nil, err
			}
			out, err := evaluateWithDamping(profiles, camp, site, delta)
			if err != nil {
				return nil, err
			}
			row.Runs++
			if out.Success() {
				row.Accuracy++
			}
			if out.InSiteLegit > 0 {
				recall += float64(out.LegitAccepted) / float64(out.InSiteLegit)
			} else {
				recall++
			}
		}
		if row.Runs > 0 {
			row.Accuracy /= float64(row.Runs)
			row.LegitRecall = recall / float64(row.Runs)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// evaluateWithDamping is attack.Evaluate with a non-default damping.
func evaluateWithDamping(population []*vp.Profile, camp *attack.Campaign, site geo.Rect, damping float64) (attack.Outcome, error) {
	all := make([]*vp.Profile, 0, len(population)+len(camp.Fakes))
	all = append(all, population...)
	all = append(all, camp.Fakes...)
	vm, err := core.Build(all, core.BuildConfig{Site: site, Minute: 0})
	if err != nil {
		return attack.Outcome{}, err
	}
	inSite := vm.InSite(site)
	verdict, err := vm.VerifySite(inSite, core.TrustRankConfig{Damping: damping})
	if err != nil {
		return attack.Outcome{}, err
	}
	var o attack.Outcome
	for _, i := range inSite {
		if camp.IsFake(vm.Profiles[i].ID()) {
			o.InSiteFakes++
		} else {
			o.InSiteLegit++
		}
	}
	for _, i := range verdict.Legitimate {
		if camp.IsFake(vm.Profiles[i].ID()) {
			o.FakeAccepted++
		} else {
			o.LegitAccepted++
		}
	}
	return o, nil
}

// AlphaRow reports the privacy/overhead trade at one guard fraction.
type AlphaRow struct {
	Alpha float64
	// FinalSuccess is tracking success at the end of the run.
	FinalSuccess float64
	// FinalEntropy is the tracker's entropy in bits at the end.
	FinalEntropy float64
	// GuardsPerVehicleMinute is the upload overhead.
	GuardsPerVehicleMinute float64
}

// String formats the row like the other experiment reports.
func (r AlphaRow) String() string {
	return fmt.Sprintf("alpha=%.2f  tracking success %.3f  entropy %.2f b  guards/veh-min %.2f",
		r.Alpha, r.FinalSuccess, r.FinalEntropy, r.GuardsPerVehicleMinute)
}

// AblationAlpha sweeps the guard fraction and reports the
// privacy/overhead trade-off behind the paper's Fig. 9 discussion and
// its alpha = 0.1 choice.
func AblationAlpha(vehicles, minutes int, seed int64) ([]AlphaRow, error) {
	if vehicles <= 0 {
		vehicles = 60
	}
	if minutes <= 0 {
		minutes = 10
	}
	var rows []AlphaRow
	for _, alpha := range []float64{0.02, 0.05, 0.1, 0.3, 0.5} {
		run, err := NewCityRun(CityConfig{
			Vehicles: vehicles, Minutes: minutes,
			MixSpeeds: true, Alpha: alpha, Seed: seed,
		})
		if err != nil {
			return nil, err
		}
		ds, err := run.TrackingDataset(true)
		if err != nil {
			return nil, err
		}
		ent, suc, err := ds.AverageOverTargets(tracker.Config{})
		if err != nil {
			return nil, err
		}
		// Guard volume from the dataset itself.
		var guards int
		for _, obs := range ds.Minutes() {
			for _, o := range obs {
				if o.Owner < 0 {
					guards++
				}
			}
		}
		last := len(suc) - 1
		rows = append(rows, AlphaRow{
			Alpha:                  alpha,
			FinalSuccess:           suc[last],
			FinalEntropy:           ent[last],
			GuardsPerVehicleMinute: float64(guards) / float64(vehicles*minutes),
		})
	}
	return rows, nil
}
