package sim

import "testing"

// TestContinuousSmall drives the durable serving stack end to end at a
// tiny scale: a roadnet fleet streams eight minutes through the WAL
// with a two-minute retention horizon, investigations probe hot and
// evicted minutes against the always-resident baseline, and a crash
// after minute four recovers from the log. Every invariant — verdict
// equality, resident bound, no acked loss — is asserted inside
// Continuous itself; the test also runs under the race detector to
// cover the snapshotter/evictor interleavings.
func TestContinuousSmall(t *testing.T) {
	res, err := Continuous(ContinuousConfig{
		Vehicles: 15, Minutes: 8,
		RetentionMinutes: 2, ResidentColdMinutes: 1,
		BatchSize: 8, SnapshotEvery: 3, Seed: 11,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Ingested != 15*8 {
		t.Errorf("ingested %d profiles, want %d", res.Ingested, 15*8)
	}
	if res.MaxResident > 2+1+1 {
		t.Errorf("max resident %d exceeds horizon+cold+1", res.MaxResident)
	}
	if res.EvictedMinutes == 0 {
		t.Error("no minutes were evicted; retention never engaged")
	}
	if res.ColdChecks == 0 || res.HotChecks == 0 {
		t.Errorf("probes did not run: %d hot, %d cold", res.HotChecks, res.ColdChecks)
	}
	if res.CrashMinute != 4 {
		t.Errorf("crash happened at minute %d, want 4", res.CrashMinute)
	}
	if res.Replayed == 0 {
		t.Error("recovery replayed no WAL records")
	}
	if res.Snapshots == 0 {
		t.Error("no snapshots were written")
	}
}
