package sim

import (
	"bytes"
	"reflect"
	"testing"

	"viewmap/internal/geo"
	"viewmap/internal/vd"
)

// TestNeighborPairsMatchNaive pins the grid-bucketed neighbor search
// against a naive all-pairs reimplementation: same pair set, same
// per-pair contact-second counts, and the >= 2 s contact threshold
// honored.
func TestNeighborPairsMatchNaive(t *testing.T) {
	run := smallCity(t, 25, 2)
	for m := 0; m < 2; m++ {
		got := run.neighborPairs(m)
		want := naivePairs(run, m)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("minute %d: grid pairs %v, naive pairs %v", m, got, want)
		}
		for k, c := range got {
			if k[0] >= k[1] {
				t.Fatalf("pair key %v not ordered", k)
			}
			if c < 2 || c > vd.SegmentSeconds {
				t.Fatalf("pair %v contact seconds %d outside [2, %d]", k, c, vd.SegmentSeconds)
			}
		}
	}
}

// naivePairs recomputes neighborPairs with an O(n^2) scan per second.
func naivePairs(run *CityRun, m int) map[[2]int]int {
	counts := make(map[[2]int]int)
	base := m * vd.SegmentSeconds
	for s := 0; s < vd.SegmentSeconds; s++ {
		for a := 0; a < run.Trace.NumVehicles(); a++ {
			for b := a + 1; b < run.Trace.NumVehicles(); b++ {
				pa, pb := run.Trace.Positions[a][base+s], run.Trace.Positions[b][base+s]
				if pa.Dist(pb) <= run.Cfg.DSRCRangeM && run.Index.LOS(pa, pb) {
					counts[[2]int{a, b}]++
				}
			}
		}
	}
	pairs := make(map[[2]int]int)
	for k, c := range counts {
		if c >= 2 {
			pairs[k] = c
		}
	}
	return pairs
}

// TestContactIntervalsMatchPairs cross-checks ContactIntervals against
// the per-minute pair sets: every recorded interval is positive and
// the interval count is at least the distinct linked-pair count (a
// pair relinking after a gap records several intervals).
func TestContactIntervalsMatchPairs(t *testing.T) {
	run := smallCity(t, 30, 2)
	intervals := run.ContactIntervals()
	linked := make(map[[2]int]bool)
	for m := 0; m < 2; m++ {
		for k := range run.neighborPairs(m) {
			linked[k] = true
		}
	}
	if len(linked) > 0 && len(intervals) == 0 {
		t.Fatal("linked pairs exist but no contact intervals recorded")
	}
	for _, iv := range intervals {
		if iv <= 0 || iv > 2*vd.SegmentSeconds {
			t.Fatalf("interval %d outside (0, %d]", iv, 2*vd.SegmentSeconds)
		}
	}
}

// TestProfilesForMinuteDeterministic fabricates the same city twice
// from one seed and requires byte-identical profiles: the fabrication
// rng must be consumed in a stable order regardless of who later
// subsets the fleet (churn and diurnal gating happen above this
// layer).
func TestProfilesForMinuteDeterministic(t *testing.T) {
	mk := func() *CityRun {
		run, err := NewCityRun(CityConfig{
			Vehicles: 20, Minutes: 2, BlocksX: 6, BlocksY: 6,
			MeanSpeedKmh: 50, Seed: 99,
		})
		if err != nil {
			t.Fatal(err)
		}
		return run
	}
	a, b := mk(), mk()
	for m := 0; m < 2; m++ {
		pa, err := a.ProfilesForMinute(m, true)
		if err != nil {
			t.Fatal(err)
		}
		pb, err := b.ProfilesForMinute(m, true)
		if err != nil {
			t.Fatal(err)
		}
		if len(pa.Profiles) != len(pb.Profiles) || pa.Guards != pb.Guards {
			t.Fatalf("minute %d: %d/%d profiles, %d/%d guards",
				m, len(pa.Profiles), len(pb.Profiles), pa.Guards, pb.Guards)
		}
		for i := range pa.Profiles {
			if !bytes.Equal(pa.Profiles[i].Marshal(), pb.Profiles[i].Marshal()) {
				t.Fatalf("minute %d profile %d differs between same-seed runs", m, i)
			}
		}
		if !reflect.DeepEqual(pa.Pairs, pb.Pairs) {
			t.Fatalf("minute %d pair sets differ", m)
		}
	}
}

// TestCityOriginTranslation moves a city by a fixed offset and
// requires a pure translation: the mobility traces shift by exactly
// the offset, the viewlink pair structure is unchanged, and Area()
// reports the translated footprint.
func TestCityOriginTranslation(t *testing.T) {
	base := CityConfig{
		Vehicles: 15, Minutes: 1, BlocksX: 5, BlocksY: 5,
		SpacingM: 150, MeanSpeedKmh: 50, Seed: 21,
	}
	moved := base
	moved.OriginX, moved.OriginY = 5000, -3000
	a, err := NewCityRun(base)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewCityRun(moved)
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < a.Trace.NumVehicles(); v++ {
		for s := 0; s < vd.SegmentSeconds; s++ {
			pa, pb := a.Trace.Positions[v][s], b.Trace.Positions[v][s]
			want := geo.Pt(pa.X+5000, pa.Y-3000)
			if pb.Dist(want) > 1e-6 {
				t.Fatalf("vehicle %d second %d: %v not translated to %v (got %v)", v, s, pa, want, pb)
			}
		}
	}
	if !reflect.DeepEqual(a.neighborPairs(0), b.neighborPairs(0)) {
		t.Fatal("translation changed the viewlink pair structure")
	}
	aa, ba := a.Area(), b.Area()
	if ba.Min.X != aa.Min.X+5000 || ba.Min.Y != aa.Min.Y-3000 ||
		ba.Max.X != aa.Max.X+5000 || ba.Max.Y != aa.Max.Y-3000 {
		t.Fatalf("Area not translated: %v vs %v", aa, ba)
	}
	// Disjoint footprints must never share a point.
	if aa.Max.X > ba.Min.X && ba.Max.X > aa.Min.X &&
		aa.Max.Y > ba.Min.Y && ba.Max.Y > aa.Min.Y {
		t.Fatal("offset cities overlap")
	}
}
