package sim

import (
	"fmt"
	"math/rand"
	"sort"

	"viewmap/internal/attack"
	"viewmap/internal/core"
	"viewmap/internal/geo"
	"viewmap/internal/radio"
	"viewmap/internal/vd"
	"viewmap/internal/vp"
)

// ---------------------------------------------------------------- Table 2

// Table2Row is one scripted LOS/NLOS scenario result.
type Table2Row struct {
	Scenario  string
	Condition string
	Linkage   float64
	OnVideo   float64
	Minutes   int
}

// String formats the row like a Table 2 line.
func (r Table2Row) String() string {
	return fmt.Sprintf("%-20s %-9s linkage %5.1f%%  on video %5.1f%%  (%d min)",
		r.Scenario, r.Condition, r.Linkage*100, r.OnVideo*100, r.Minutes)
}

// table2Scenario scripts one semi-controlled measurement setting.
type table2Scenario struct {
	name      string
	condition string
	// build returns one minute of tracks plus the static environment.
	build func() (a, b []geo.Point, env radio.Environment, traffic float64)
}

// wallAcross returns an obstacle set with one large building centred
// between the two vehicle tracks.
func wallAcross(r geo.Rect) radio.Environment {
	return radio.Environment{Obstacles: geo.NewObstacleSet(geo.Building{Footprint: r})}
}

func stationaryTrack(p geo.Point) []geo.Point {
	out := make([]geo.Point, vd.SegmentSeconds)
	for i := range out {
		out[i] = p
	}
	return out
}

func eastTrack(start geo.Point, speed float64) []geo.Point {
	out := make([]geo.Point, vd.SegmentSeconds)
	for i := range out {
		out[i] = geo.Pt(start.X+speed*float64(i), start.Y)
	}
	return out
}

func northTrack(start geo.Point, speed float64) []geo.Point {
	out := make([]geo.Point, vd.SegmentSeconds)
	for i := range out {
		out[i] = geo.Pt(start.X, start.Y+speed*float64(i))
	}
	return out
}

// table2Scenarios mirrors the paper's fourteen settings. Geometry is
// synthetic but preserves each row's sight condition: what blocks whom,
// and for how much of the minute.
func table2Scenarios() []table2Scenario {
	return []table2Scenario{
		{"Open road", "LOS", func() ([]geo.Point, []geo.Point, radio.Environment, float64) {
			// B ahead-right so it sits in A's camera FOV.
			return eastTrack(geo.Pt(0, 0), 14), eastTrack(geo.Pt(70, 40), 14), radio.Environment{}, 0
		}},
		{"Building 1", "NLOS", func() ([]geo.Point, []geo.Point, radio.Environment, float64) {
			// Parked on opposite sides of a large building.
			return stationaryTrack(geo.Pt(0, 0)), stationaryTrack(geo.Pt(200, 0)),
				wallAcross(geo.NewRect(geo.Pt(60, -80), geo.Pt(140, 80))), 0
		}},
		{"Intersection 1", "LOS", func() ([]geo.Point, []geo.Point, radio.Environment, float64) {
			// Open intersection: perpendicular approaches, no corners.
			return eastTrack(geo.Pt(-420, 0), 7), northTrack(geo.Pt(0, -420), 7), radio.Environment{}, 0
		}},
		{"Intersection 2", "NLOS", func() ([]geo.Point, []geo.Point, radio.Environment, float64) {
			// Corner buildings keep the approaches out of sight until the
			// vehicles are almost inside the box; the clear window is a
			// couple of seconds at best.
			env := radio.Environment{Obstacles: geo.NewObstacleSet(
				geo.Building{Footprint: geo.NewRect(geo.Pt(-400, -400), geo.Pt(-5, -5))},
				geo.Building{Footprint: geo.NewRect(geo.Pt(5, -400), geo.Pt(400, -5))},
				geo.Building{Footprint: geo.NewRect(geo.Pt(-400, 5), geo.Pt(-5, 400))},
			)}
			return eastTrack(geo.Pt(-445, 0), 7), northTrack(geo.Pt(0, -445), 7), env, 0
		}},
		{"Overpass 1", "LOS", func() ([]geo.Point, []geo.Point, radio.Environment, float64) {
			// Crossing at different heights but open sight most of the
			// pass; modelled as a brief central obstruction.
			return eastTrack(geo.Pt(-420, 0), 14), northTrack(geo.Pt(0, -420), 14),
				wallAcross(geo.NewRect(geo.Pt(-12, -12), geo.Pt(12, 12))), 0
		}},
		{"Overpass 2", "NLOS", func() ([]geo.Point, []geo.Point, radio.Environment, float64) {
			// Double-deck: the deck blocks the entire encounter.
			return eastTrack(geo.Pt(-420, 5), 14), eastTrack(geo.Pt(-420, -5), 14),
				wallAcross(geo.NewRect(geo.Pt(-1000, -2), geo.Pt(1000, 2))), 0
		}},
		{"Traffic", "LOS/NLOS", func() ([]geo.Point, []geo.Point, radio.Environment, float64) {
			// Dense highway traffic: long blocked runs at 340 m gap.
			return eastTrack(geo.Pt(0, 0), 22), eastTrack(geo.Pt(280, 190), 22), radio.Environment{}, 0.95
		}},
		{"Vehicle array", "NLOS", func() ([]geo.Point, []geo.Point, radio.Environment, float64) {
			// A wall of trucks between the two vehicles.
			return eastTrack(geo.Pt(0, 0), 22), eastTrack(geo.Pt(250, 230), 22), radio.Environment{}, 1.0
		}},
		{"Pedestrians", "LOS", func() ([]geo.Point, []geo.Point, radio.Environment, float64) {
			// Pedestrians do not block DSRC or cameras meaningfully.
			return eastTrack(geo.Pt(0, 0), 8), eastTrack(geo.Pt(60, 30), 8), radio.Environment{}, 0
		}},
		{"Tunnels", "NLOS", func() ([]geo.Point, []geo.Point, radio.Environment, float64) {
			// Separate tunnel bores: continuous massive obstruction.
			return eastTrack(geo.Pt(-420, 30), 14), eastTrack(geo.Pt(-420, -30), 14),
				wallAcross(geo.NewRect(geo.Pt(-1500, -10), geo.Pt(1500, 10))), 0
		}},
		{"Building 2", "LOS/NLOS", func() ([]geo.Point, []geo.Point, radio.Environment, float64) {
			// A building shadows most of the pass; the short clear tail
			// is further thinned by street traffic.
			return eastTrack(geo.Pt(-420, 0), 14), eastTrack(geo.Pt(-270, 250), 14),
				envWith(geo.NewRect(geo.Pt(-420, 30), geo.Pt(370, 64)), 0), 0.5
		}},
		{"Double-deck bridge", "NLOS", func() ([]geo.Point, []geo.Point, radio.Environment, float64) {
			return eastTrack(geo.Pt(-420, 8), 20), eastTrack(geo.Pt(-420, -8), 20),
				wallAcross(geo.NewRect(geo.Pt(-2000, -3), geo.Pt(2000, 3))), 0
		}},
		{"House", "LOS/NLOS", func() ([]geo.Point, []geo.Point, radio.Environment, float64) {
			// A house row obstructs the street for half the minute.
			return eastTrack(geo.Pt(-420, 0), 10), eastTrack(geo.Pt(-280, 230), 10),
				envWith(geo.NewRect(geo.Pt(-420, 25), geo.Pt(-20, 55)), 0), 0.5
		}},
		{"Parking structure", "NLOS", func() ([]geo.Point, []geo.Point, radio.Environment, float64) {
			// One vehicle parked inside the structure: every sight line
			// starts within the footprint.
			return stationaryTrack(geo.Pt(0, 0)), eastTrack(geo.Pt(-300, 120), 7),
				wallAcross(geo.NewRect(geo.Pt(-60, -60), geo.Pt(60, 60))), 0
		}},
	}
}

// envWith builds an environment with one building.
func envWith(r geo.Rect, _ float64) radio.Environment {
	return wallAcross(r)
}

// Table2 runs each scripted scenario for `trials` independent minutes
// and reports linkage and on-video rates.
func Table2(trials int, seed int64) ([]Table2Row, error) {
	if trials <= 0 {
		trials = 25
	}
	var rows []Table2Row
	for _, sc := range table2Scenarios() {
		a, b, env, traffic := sc.build()
		// Repeat the minute `trials` times with fresh seeds by tiling
		// the track.
		var linked, video int
		for trial := 0; trial < trials; trial++ {
			outs, err := RunLinkScenario(LinkScenario{
				Name: sc.name, TrackA: a, TrackB: b, Env: env,
				TrafficDensity: traffic, BlockMeanSec: 60,
				Seed: seed + int64(trial)*131,
			})
			if err != nil {
				return nil, err
			}
			if outs[0].Linked {
				linked++
			}
			if outs[0].OnVideo {
				video++
			}
		}
		rows = append(rows, Table2Row{
			Scenario: sc.name, Condition: sc.condition,
			Linkage: float64(linked) / float64(trials),
			OnVideo: float64(video) / float64(trials),
			Minutes: trials,
		})
	}
	return rows, nil
}

// ----------------------------------------------------------------- Fig 21

// Fig21Row summarizes a traffic-derived viewmap.
type Fig21Row struct {
	SpeedLabel string
	Members    int
	Edges      int
	Isolated   int
	Components int
	LargestPct float64
	DOT        string // Graphviz rendering of the viewmap
}

// String formats the row like a Fig. 21 data point.
func (r Fig21Row) String() string {
	return fmt.Sprintf("%-8s members %4d  edges %5d  isolated %3d  components %3d  largest %4.1f%%",
		r.SpeedLabel, r.Members, r.Edges, r.Isolated, r.Components, r.LargestPct)
}

// Fig21 builds viewmaps from city traffic traces at 50 and 70 km/h and
// reports their structure (plus DOT renderings of the graphs the paper
// visualizes).
func Fig21(vehicles, minutes int, seed int64) ([]Fig21Row, error) {
	if vehicles <= 0 {
		vehicles = 300
	}
	if minutes <= 0 {
		minutes = 3
	}
	var rows []Fig21Row
	for _, speed := range []float64{50, 70} {
		run, err := NewCityRun(CityConfig{
			Vehicles: vehicles, Minutes: minutes,
			MeanSpeedKmh: speed, Seed: seed,
		})
		if err != nil {
			return nil, err
		}
		mp, err := run.ProfilesForMinute(minutes/2, false)
		if err != nil {
			return nil, err
		}
		vm, err := buildTraceViewmap(run, mp, minutes/2)
		if err != nil {
			return nil, err
		}
		comps := vm.Components()
		largest := 0
		for _, c := range comps {
			if len(c) > largest {
				largest = len(c)
			}
		}
		rows = append(rows, Fig21Row{
			SpeedLabel: fmt.Sprintf("%.0fkm/h", speed),
			Members:    vm.Len(),
			Edges:      vm.NumEdges(),
			Isolated:   len(vm.Isolated()),
			Components: len(comps),
			LargestPct: 100 * float64(largest) / float64(vm.Len()),
			DOT:        vm.DOT(fmt.Sprintf("viewmap_%.0fkmh", speed)),
		})
	}
	return rows, nil
}

// buildTraceViewmap marks the profile nearest the map centre trusted
// and builds the city-wide viewmap for the minute.
func buildTraceViewmap(run *CityRun, mp *MinuteProfiles, minute int) (*core.Viewmap, error) {
	center := run.City.Bounds.Center()
	core.MarkTrustedNearest(mp.Profiles, center)
	return core.Build(mp.Profiles, core.BuildConfig{
		Site:   geo.RectAround(center, 200),
		Minute: int64(minute),
		// Cover the whole city so membership reflects the full trace.
		CoverageMargin: run.City.Bounds.Width(),
	})
}

// ----------------------------------------------------------------- Fig 22c

// Fig22CRow is the mean contact interval for one speed setting.
type Fig22CRow struct {
	Speed       string
	MeanContact float64 // seconds
	Intervals   int
}

// String formats the row like a Fig. 22(c) data point.
func (r Fig22CRow) String() string {
	return fmt.Sprintf("%-7s mean contact %5.1f s  (%d intervals)", r.Speed, r.MeanContact, r.Intervals)
}

// Fig22C measures average vehicle contact time at 30/50/70 km/h and
// the mixed-speed setting.
func Fig22C(vehicles, minutes int, seed int64) ([]Fig22CRow, error) {
	if vehicles <= 0 {
		vehicles = 200
	}
	if minutes <= 0 {
		minutes = 5
	}
	type setting struct {
		label string
		speed float64
		mix   bool
	}
	settings := []setting{
		{"30km/h", 30, false}, {"50km/h", 50, false}, {"70km/h", 70, false}, {"Mix", 0, true},
	}
	var rows []Fig22CRow
	for _, s := range settings {
		run, err := NewCityRun(CityConfig{
			Vehicles: vehicles, Minutes: minutes,
			MeanSpeedKmh: s.speed, MixSpeeds: s.mix, Seed: seed,
		})
		if err != nil {
			return nil, err
		}
		intervals := run.ContactIntervals()
		var sum float64
		for _, iv := range intervals {
			sum += float64(iv)
		}
		row := Fig22CRow{Speed: s.label, Intervals: len(intervals)}
		if len(intervals) > 0 {
			row.MeanContact = sum / float64(len(intervals))
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// --------------------------------------------------------------- Fig 22d/e

// CityVerifyConfig drives the traffic-derived verification studies.
type CityVerifyConfig struct {
	Vehicles int
	Runs     int
	Seed     int64
}

func (c CityVerifyConfig) withDefaults() CityVerifyConfig {
	if c.Vehicles == 0 {
		c.Vehicles = 400
	}
	if c.Runs == 0 {
		c.Runs = 10
	}
	return c
}

// cityArena builds one minute of traffic-derived profiles with a
// trusted VP away from the investigation site.
func cityArena(vehicles int, seed int64) ([]*vp.Profile, geo.Rect, error) {
	run, err := NewCityRun(CityConfig{
		Vehicles: vehicles, Minutes: 1, MixSpeeds: true, Seed: seed,
	})
	if err != nil {
		return nil, geo.Rect{}, err
	}
	mp, err := run.ProfilesForMinute(0, false)
	if err != nil {
		return nil, geo.Rect{}, err
	}
	core.MarkTrustedNearest(mp.Profiles, geo.Pt(600, 600))
	site := geo.RectAround(geo.Pt(2800, 2800), 250)
	return mp.Profiles, site, nil
}

// Fig22D sweeps attacker positions on traffic-derived viewmaps, using
// the same hop-quantile bands as Fig 12.
func Fig22D(cfg CityVerifyConfig) ([]VerifyRow, error) {
	cfg = cfg.withDefaults()
	vcfg := VerifyConfig{LegitVPs: cfg.Vehicles, Runs: cfg.Runs, Seed: cfg.Seed}.withDefaults()
	settings := make([]string, len(Fig12QuantileBands))
	for i, b := range Fig12QuantileBands {
		settings[i] = fmt.Sprintf("hops q%.0f-%.0f%%", b[0]*100, b[1]*100)
	}
	return verifySweep(vcfg, settings, []int{100, 300, 500}, 0,
		func(seed int64) ([]*vp.Profile, geo.Rect, error) { return cityArena(cfg.Vehicles, seed) },
		func(profiles []*vp.Profile, site geo.Rect, seed int64) (interface{}, error) {
			ordered, _, err := attack.HopQuantiles(profiles, site, 0)
			if err != nil {
				return nil, err
			}
			return ordered, nil
		},
		func(si int, ctx interface{}, seed int64) ([]*vp.Profile, []*vp.Profile) {
			ordered := ctx.([]*vp.Profile)
			b := Fig12QuantileBands[si]
			rng := rand.New(rand.NewSource(seed + int64(si)))
			return attack.PickQuantileBand(ordered, b[0], b[1], 3, rng), nil
		},
		offlineEvaluate)
}

// Fig22E runs the concentration attack on traffic-derived viewmaps:
// one attacker vehicle holding up to 125 co-trajectory dummy VPs.
func Fig22E(cfg CityVerifyConfig) ([]VerifyRow, error) {
	cfg = cfg.withDefaults()
	vcfg := VerifyConfig{LegitVPs: cfg.Vehicles, Runs: cfg.Runs, Seed: cfg.Seed}.withDefaults()
	dummies := []int{50, 75, 100, 125}
	settings := make([]string, len(dummies))
	for i, dn := range dummies {
		settings[i] = fmt.Sprintf("%d dummies", dn)
	}
	return verifySweep(vcfg, settings, []int{100, 300, 500}, 7700,
		func(seed int64) ([]*vp.Profile, geo.Rect, error) { return cityArena(cfg.Vehicles, seed) },
		func(profiles []*vp.Profile, site geo.Rect, seed int64) (interface{}, error) {
			return profiles, nil
		},
		func(si int, ctx interface{}, seed int64) ([]*vp.Profile, []*vp.Profile) {
			profiles := ctx.([]*vp.Profile)
			dn := dummies[si]
			rng := rand.New(rand.NewSource(seed))
			var base *vp.Profile
			for _, idx := range rng.Perm(len(profiles)) {
				if !profiles[idx].Trusted {
					base = profiles[idx]
					break
				}
			}
			clones, err := attack.CloneDummies(base, profiles, dn, core.DefaultDSRCRange, rng)
			if err != nil {
				return nil, nil
			}
			return append([]*vp.Profile{base}, clones...), clones
		},
		offlineEvaluate)
}

// ----------------------------------------------------------------- Fig 22f

// Fig22FRow is the viewmap membership rate at one speed.
type Fig22FRow struct {
	Speed     string
	MemberPct float64
}

// String formats the row like a Fig. 22(f) data point.
func (r Fig22FRow) String() string {
	return fmt.Sprintf("%-7s viewmap member VPs %5.1f%%", r.Speed, r.MemberPct)
}

// Fig22F measures the percentage of VPs that join the viewmap (i.e.
// are not isolated) for each speed setting.
func Fig22F(vehicles, minutes int, seed int64) ([]Fig22FRow, error) {
	if vehicles <= 0 {
		vehicles = 300
	}
	if minutes <= 0 {
		minutes = 3
	}
	type setting struct {
		label string
		speed float64
		mix   bool
	}
	settings := []setting{
		{"30km/h", 30, false}, {"50km/h", 50, false}, {"70km/h", 70, false}, {"Mix", 0, true},
	}
	var rows []Fig22FRow
	for _, s := range settings {
		run, err := NewCityRun(CityConfig{
			Vehicles: vehicles, Minutes: minutes,
			MeanSpeedKmh: s.speed, MixSpeeds: s.mix, Seed: seed,
		})
		if err != nil {
			return nil, err
		}
		var members, total float64
		for m := 0; m < minutes; m++ {
			mp, err := run.ProfilesForMinute(m, false)
			if err != nil {
				return nil, err
			}
			vm, err := buildTraceViewmap(run, mp, m)
			if err != nil {
				return nil, err
			}
			total += float64(vm.Len())
			members += float64(vm.Len() - len(vm.Isolated()))
		}
		rows = append(rows, Fig22FRow{Speed: s.label, MemberPct: 100 * members / total})
	}
	return rows, nil
}

// ---------------------------------------------------------------- Overhead

// OverheadReport reproduces the Section 6.1 accounting.
type OverheadReport struct {
	VDBytes        int
	VPBytes        int
	VideoBytes     int64
	OverheadFrac   float64
	BeaconCapacity int // DSRC beacon budget the VD fits into
}

// String formats the report like the Section 6.1 accounting.
func (o OverheadReport) String() string {
	return fmt.Sprintf("VD %d B (beacon budget %d B), VP %d B, video %d B -> overhead %.5f%%",
		o.VDBytes, o.BeaconCapacity, o.VPBytes, o.VideoBytes, o.OverheadFrac*100)
}

// Overhead computes the communication/storage overhead constants.
func Overhead() OverheadReport {
	videoBytes := int64(50 * 1000 * 1000)
	return OverheadReport{
		VDBytes:        vd.WireSize,
		VPBytes:        vp.StorageBytes,
		VideoBytes:     videoBytes,
		OverheadFrac:   float64(vp.StorageBytes) / float64(videoBytes),
		BeaconCapacity: 300,
	}
}

// SortVLRRows orders rows by environment then distance, for stable
// printing.
func SortVLRRows(rows []VLRRow) {
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].Environment != rows[j].Environment {
			return rows[i].Environment < rows[j].Environment
		}
		return rows[i].DistanceM < rows[j].DistanceM
	})
}
