package sim

import (
	"encoding/json"
	"testing"
)

// TestScenarioQuick drives the acceptance scenario: two cities, fleet
// churn, a diurnal curve, a mid-run WAL fsync stall with a duplicate
// saturation storm against a deliberately tight ingest gate, a
// snapshotter pause, an incident-driven evidence spike, and a
// final-minute evidence-board partition. It asserts the structural
// invariants the engine itself enforces (zero acked loss, probes
// bit-for-bit equal to the unfaulted baseline, investigations never
// shed) and the overload behavior the fault plan must provoke
// (uploads shed, clients retried through it).
func TestScenarioQuick(t *testing.T) {
	res, err := Scenario(QuickScenarioConfig(7))
	if err != nil {
		t.Fatalf("Scenario: %v", err)
	}
	if !res.ZeroAckedLoss {
		t.Fatal("acked-batch loss through the fsync stall")
	}
	if res.OfferedVPs == 0 || res.AckedVPs != res.OfferedVPs {
		t.Fatalf("offered %d acked %d", res.OfferedVPs, res.AckedVPs)
	}
	if res.InvestigateShed != 0 {
		t.Fatalf("%d investigations shed during overload", res.InvestigateShed)
	}
	if res.IngestShed == 0 {
		t.Fatal("tight ingest gate under a saturation storm shed nothing")
	}
	if res.Client429s != res.IngestShed+res.EvidenceShed {
		t.Fatalf("client saw %d x 429, server shed %d", res.Client429s, res.IngestShed+res.EvidenceShed)
	}
	if res.StalledFsyncs == 0 {
		t.Fatal("fsync stall window injected no delays")
	}
	if res.PartitionRejects == 0 {
		t.Fatal("evidence-board partition rejected nothing")
	}
	if res.SnapshotsSkipped == 0 || res.SnapshotsWritten == 0 {
		t.Fatalf("snapshot cadence: %d written, %d skipped", res.SnapshotsWritten, res.SnapshotsSkipped)
	}
	if res.Incidents != 1 {
		t.Fatalf("incidents fired: %d", res.Incidents)
	}
	// ProbesCompared: concurrent probes (minutes 1..4 x 2 cities) +
	// hot probes (5 x 2) + final pass (5 x 2) = 28.
	if res.ProbesCompared < 20 {
		t.Fatalf("only %d probes compared against the baseline", res.ProbesCompared)
	}
	if res.Upload.Requests == 0 || res.Upload.P99MS <= 0 {
		t.Fatalf("upload SLO not populated: %+v", res.Upload)
	}
	if res.Investigate.Requests == 0 || res.EvidencePoll.Requests == 0 {
		t.Fatalf("probe/evidence SLO not populated: %+v / %+v", res.Investigate, res.EvidencePoll)
	}
	// Server-side/client-side parity: the server's own endpoint
	// histograms must be populated and bracket the client view from
	// below. The server measures handler wall time while the client
	// adds connection overhead, queueing, retries, and backoff, so the
	// server p99 must not exceed the client p99 by more than the
	// histogram's power-of-two bucketing (×2) plus slack for the
	// samples the client never timed (shed-then-retried requests).
	if res.ServerUpload.Requests == 0 || res.ServerUpload.P99MS <= 0 {
		t.Fatalf("server-side upload latency not populated: %+v", res.ServerUpload)
	}
	if res.ServerInvestigate.Requests == 0 || res.ServerInvestigate.P99MS <= 0 {
		t.Fatalf("server-side investigate latency not populated: %+v", res.ServerInvestigate)
	}
	// The server sees at least every acknowledged batch (requests the
	// client retried are counted per attempt server-side).
	if res.ServerUpload.Requests < res.Upload.Requests {
		t.Fatalf("server saw %d uploads, clients completed %d", res.ServerUpload.Requests, res.Upload.Requests)
	}
	if res.ServerUpload.P99MS > 2*res.Upload.P99MS+50 {
		t.Fatalf("server upload p99 %.1f ms implausibly above client %.1f ms",
			res.ServerUpload.P99MS, res.Upload.P99MS)
	}
	if len(res.ProbeDigest) != 64 {
		t.Fatalf("probe digest %q", res.ProbeDigest)
	}
	// The report must serialize: it is the CI artifact.
	if _, err := json.Marshal(res); err != nil {
		t.Fatalf("marshal SLO report: %v", err)
	}
}

// TestScenarioDeterministic pins the engine's fingerprint across the
// quick configuration and every fault family: two runs with the same
// seed must converge on a bit-identical served state — shedding,
// retries, crash recovery timing, and partition canaries may differ,
// but the acked profile set and every probe verdict may not.
func TestScenarioDeterministic(t *testing.T) {
	quick := QuickScenarioConfig(11)
	// Drop the saturation storm to keep the repeat run fast; the
	// stall and partition remain.
	quick.Faults.SaturateFactor = 0
	quick.Faults.FsyncStallDelay = 10 * 1e6 // 10ms
	cases := []struct {
		name string
		cfg  ScenarioConfig
	}{{"quick", quick}}
	for _, f := range FaultFamilies(11) {
		cases = append(cases, struct {
			name string
			cfg  ScenarioConfig
		}{f.Name, f.Config})
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			a, err := Scenario(tc.cfg)
			if err != nil {
				t.Fatalf("run A: %v", err)
			}
			b, err := Scenario(tc.cfg)
			if err != nil {
				t.Fatalf("run B: %v", err)
			}
			if a.Fingerprint() != b.Fingerprint() {
				t.Fatalf("same-seed scenarios diverged:\nA %s\nB %s", a.Fingerprint(), b.Fingerprint())
			}
			if a.OfferedVPs != b.OfferedVPs || a.ProbeDigest != b.ProbeDigest {
				t.Fatalf("offered %d/%d digest %s/%s", a.OfferedVPs, b.OfferedVPs, a.ProbeDigest, b.ProbeDigest)
			}
		})
	}
}

// TestFaultFamilies exercises every fault family end to end and pins
// the family-specific outcomes: the crash family recovers a parked
// WAL batch mid-scenario, the clock-skew family bounces the too-slow
// city's anonymous uploads, the partition family refuses at the front
// and resumes watches after the heal, and the retention family serves
// evicted minutes bit-for-bit while storms land on hot ones. The
// engine's universal invariants (zero acked loss, probe equality)
// gate every family before the counters are even consulted.
func TestFaultFamilies(t *testing.T) {
	fams, err := RunFaultFamilies(42)
	if err != nil {
		t.Fatalf("RunFaultFamilies: %v", err)
	}
	byName := map[string]FamilySummary{}
	for _, f := range fams {
		if !f.ZeroAckedLoss {
			t.Fatalf("family %s lost acked uploads", f.Name)
		}
		if f.ProbesCompared == 0 {
			t.Fatalf("family %s compared no probes", f.Name)
		}
		byName[f.Name] = f
	}
	if f := byName["crash"]; f.Crashes != 1 || f.WALReplayed < 1 {
		t.Fatalf("crash family: %d crashes, %d replayed", f.Crashes, f.WALReplayed)
	}
	if f := byName["clock_skew"]; f.StaleRejectedVPs == 0 {
		t.Fatalf("clock-skew family rejected nothing")
	}
	if f := byName["partition"]; f.PartitionRejects < 4 || f.WatchReports < 1 {
		t.Fatalf("partition family: %d rejects, %d watch reports", f.PartitionRejects, f.WatchReports)
	}
	if f := byName["retention"]; f.ColdProbes == 0 || f.WatchReports < 1 {
		t.Fatalf("retention family: %d cold probes, %d watch reports", f.ColdProbes, f.WatchReports)
	}
	// The summaries must serialize: they ride the CI artifact.
	if _, err := json.Marshal(fams); err != nil {
		t.Fatalf("marshal family summaries: %v", err)
	}
}
