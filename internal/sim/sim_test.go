package sim

import (
	"strings"
	"testing"

	"viewmap/internal/geo"
	"viewmap/internal/radio"
	"viewmap/internal/vd"
)

func TestRunLinkScenarioValidation(t *testing.T) {
	if _, err := RunLinkScenario(LinkScenario{Name: "x"}); err == nil {
		t.Error("empty tracks should fail")
	}
	a, b, err := ParallelTracks(100, 10, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RunLinkScenario(LinkScenario{Name: "x", TrackA: a, TrackB: b[:30]}); err == nil {
		t.Error("mismatched tracks should fail")
	}
}

func TestOpenRoadAlwaysLinks(t *testing.T) {
	a, b, err := ParallelTracks(100, 14, 5)
	if err != nil {
		t.Fatal(err)
	}
	outs, err := RunLinkScenario(LinkScenario{Name: "open", TrackA: a, TrackB: b, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	for m, o := range outs {
		if !o.Linked {
			t.Errorf("minute %d: open road at 100 m should link", m)
		}
		if o.DeliveredAB < 10 || o.DeliveredBA < 10 {
			t.Errorf("minute %d: expected plentiful deliveries, got %d/%d", m, o.DeliveredAB, o.DeliveredBA)
		}
	}
	st := Aggregate(outs)
	if st.LinkRatio != 1 {
		t.Errorf("open-road VLR = %v, want 1", st.LinkRatio)
	}
}

func TestWallBlocksLinkage(t *testing.T) {
	a, b, err := ParallelTracks(200, 0.0001, 3) // effectively parked
	if err != nil {
		t.Fatal(err)
	}
	env := radio.Environment{Obstacles: geo.NewObstacleSet(
		geo.Building{Footprint: geo.NewRect(geo.Pt(-1000, 80), geo.Pt(1000, 120))},
	)}
	outs, err := RunLinkScenario(LinkScenario{Name: "wall", TrackA: a, TrackB: b, Env: env, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	st := Aggregate(outs)
	if st.LinkRatio > 0.34 {
		t.Errorf("NLOS VLR = %v, want near 0", st.LinkRatio)
	}
	if st.VideoRate != 0 {
		t.Errorf("NLOS on-video = %v, want 0", st.VideoRate)
	}
}

func TestHeavyTrafficDegradesDistantLinks(t *testing.T) {
	run := func(traffic float64) float64 {
		a, b, err := ParallelTracks(380, 22, 12)
		if err != nil {
			t.Fatal(err)
		}
		outs, err := RunLinkScenario(LinkScenario{
			Name: "hwy", TrackA: a, TrackB: b,
			TrafficDensity: traffic, BlockMeanSec: 45, Seed: 3,
		})
		if err != nil {
			t.Fatal(err)
		}
		return Aggregate(outs).LinkRatio
	}
	light := run(0.05)
	heavy := run(0.9)
	if heavy >= light {
		t.Errorf("heavy traffic should reduce VLR at distance: light=%v heavy=%v", light, heavy)
	}
}

func TestSeesFOVAndRange(t *testing.T) {
	at := geo.Pt(0, 0)
	dir := geo.Pt(1, 0)
	if !Sees(at, dir, geo.Pt(100, 0), nil) {
		t.Error("dead-ahead vehicle should be visible")
	}
	if Sees(at, dir, geo.Pt(-100, 0), nil) {
		t.Error("vehicle behind should not be visible")
	}
	if Sees(at, dir, geo.Pt(0, 100), nil) {
		t.Error("vehicle at 90 degrees should be outside the 130-degree FOV")
	}
	if !Sees(at, dir, geo.Pt(100, 80), nil) {
		t.Error("vehicle at ~39 degrees should be inside the FOV")
	}
	if Sees(at, dir, geo.Pt(CameraRangeM+50, 0), nil) {
		t.Error("vehicle beyond camera range should not be visible")
	}
	wall := geo.NewObstacleSet(geo.Building{Footprint: geo.NewRect(geo.Pt(40, -10), geo.Pt(60, 10))})
	if Sees(at, dir, geo.Pt(100, 0), wall) {
		t.Error("blocked vehicle should not be visible")
	}
}

func TestNewCityRunValidation(t *testing.T) {
	if _, err := NewCityRun(CityConfig{Vehicles: 0, Minutes: 1}); err == nil {
		t.Error("zero vehicles should fail")
	}
	if _, err := NewCityRun(CityConfig{Vehicles: 5, Minutes: 0}); err == nil {
		t.Error("zero minutes should fail")
	}
}

func smallCity(t testing.TB, vehicles, minutes int) *CityRun {
	t.Helper()
	run, err := NewCityRun(CityConfig{
		Vehicles: vehicles, Minutes: minutes,
		BlocksX: 8, BlocksY: 8, MeanSpeedKmh: 50, Seed: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	return run
}

func TestProfilesForMinute(t *testing.T) {
	run := smallCity(t, 40, 2)
	mp, err := run.ProfilesForMinute(0, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(mp.Profiles) != 40 {
		t.Fatalf("profiles = %d, want 40", len(mp.Profiles))
	}
	if mp.Guards != 0 {
		t.Error("guards requested off")
	}
	// Every profile complete, owned, minute 0.
	for i, p := range mp.Profiles {
		if !p.Complete() {
			t.Fatalf("profile %d incomplete", i)
		}
		if p.Minute() != 0 {
			t.Fatalf("profile %d wrong minute", i)
		}
		if mp.Owner[p.ID()] != i {
			t.Fatalf("owner map wrong for %d", i)
		}
	}
	// Linked pairs must actually satisfy the viewlink predicate.
	for k := range mp.Pairs {
		a, b := mp.Profiles[k[0]], mp.Profiles[k[1]]
		linked := false
		for s := 0; s < vd.SegmentSeconds; s++ {
			if a.VDs[s].L.Dist(b.VDs[s].L) <= run.Cfg.DSRCRangeM {
				linked = true
				break
			}
		}
		if !linked {
			t.Fatal("paired profiles never within range")
		}
	}
	if _, err := run.ProfilesForMinute(5, false); err == nil {
		t.Error("out-of-range minute should fail")
	}
}

func TestProfilesWithGuards(t *testing.T) {
	run := smallCity(t, 40, 1)
	mp, err := run.ProfilesForMinute(0, true)
	if err != nil {
		t.Fatal(err)
	}
	if mp.Guards == 0 {
		t.Skip("no neighbor pairs formed for this seed; guard count is zero")
	}
	if len(mp.Profiles) != 40+mp.Guards {
		t.Fatalf("profiles = %d, want 40+%d", len(mp.Profiles), mp.Guards)
	}
	for _, p := range mp.Profiles[40:] {
		if mp.Owner[p.ID()] != -1 {
			t.Error("guard owner should be -1")
		}
		if !p.Complete() {
			t.Error("guard profile incomplete")
		}
	}
}

func TestTrackingDatasetShape(t *testing.T) {
	run := smallCity(t, 30, 3)
	ds, err := run.TrackingDataset(true)
	if err != nil {
		t.Fatal(err)
	}
	minutes := ds.Minutes()
	if len(minutes) != 3 {
		t.Fatalf("minutes = %d, want 3", len(minutes))
	}
	for m, obs := range minutes {
		actual := 0
		for _, o := range obs {
			if o.Owner >= 0 {
				actual++
			}
		}
		if actual != 30 {
			t.Fatalf("minute %d has %d actual observations, want 30", m, actual)
		}
	}
}

func TestContactIntervalsSane(t *testing.T) {
	run := smallCity(t, 30, 2)
	intervals := run.ContactIntervals()
	for _, iv := range intervals {
		if iv <= 0 || iv > 2*vd.SegmentSeconds {
			t.Fatalf("contact interval %d outside (0, 120]", iv)
		}
	}
}

// ------------------------------- Experiment harness smoke tests (small) ---

func TestTable1Shape(t *testing.T) {
	rows, err := Table1(3)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d, want host + 3 platforms", len(rows))
	}
	// Slower platforms must have lower fps.
	if rows[1].FPS >= rows[3].FPS {
		t.Errorf("Raspberry Pi fps %v should be below 2014 iMac %v", rows[1].FPS, rows[3].FPS)
	}
}

func TestFig8CascadeIsFlat(t *testing.T) {
	rows, err := Fig8(200_000) // 12 MB/min keeps the test quick
	if err != nil {
		t.Fatal(err)
	}
	first, last := rows[0], rows[len(rows)-1]
	// Normal hashing grows roughly with recording time; cascade does
	// not. Compare growth factors, generously.
	if last.Normal < first.Normal*5 {
		t.Errorf("normal hash should grow with time: %v -> %v", first.Normal, last.Normal)
	}
	if last.Cascade > first.Cascade*20 && last.Cascade > 2*first.Normal {
		t.Errorf("cascade should stay flat: %v -> %v", first.Cascade, last.Cascade)
	}
}

func TestFig9Volumes(t *testing.T) {
	rows := Fig9()
	if len(rows) != 30 {
		t.Fatalf("rows = %d, want 3 alphas x 10 points", len(rows))
	}
	for _, r := range rows {
		want := 1 + int(float64(r.Neighbors)*r.Alpha+0.9999)
		if r.VPsPerMin != want && r.VPsPerMin != want-1+1 {
			t.Errorf("m=%d alpha=%v: VPs=%d, want %d", r.Neighbors, r.Alpha, r.VPsPerMin, want)
		}
	}
}

func TestFig14Shapes(t *testing.T) {
	rows := Fig14()
	byM := make(map[int][]Fig14Row)
	for _, r := range rows {
		byM[r.FilterBits] = append(byM[r.FilterBits], r)
	}
	// Larger m means lower false linkage at the same n.
	for i := range byM[2048] {
		if byM[4096][i].FalseLinkage > byM[2048][i].FalseLinkage {
			t.Errorf("m=4096 should be below m=2048 at n=%d", byM[2048][i].Neighbors)
		}
	}
}

func TestPrivacySmall(t *testing.T) {
	curves, err := Privacy(PrivacyConfig{
		Vehicles: []int{40}, Minutes: 8,
		BlocksX: 10, BlocksY: 10, Seed: 6, IncludeBareReference: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(curves) != 2 {
		t.Fatalf("curves = %d, want guarded + bare", len(curves))
	}
	guarded, bare := curves[0], curves[1]
	gLast := guarded.Success[len(guarded.Success)-1]
	bLast := bare.Success[len(bare.Success)-1]
	if gLast >= bLast {
		t.Errorf("guards should cut tracking success: guarded=%v bare=%v", gLast, bLast)
	}
	if bare.EntropyBit[len(bare.EntropyBit)-1] > guarded.EntropyBit[len(guarded.EntropyBit)-1] {
		t.Error("guards should raise tracker entropy")
	}
}

func TestOverheadReport(t *testing.T) {
	o := Overhead()
	if o.VDBytes != 72 {
		t.Errorf("VD = %d B, want 72", o.VDBytes)
	}
	if o.VDBytes > o.BeaconCapacity {
		t.Error("VD must fit in a DSRC beacon")
	}
	if o.OverheadFrac > 0.0001 {
		t.Errorf("overhead = %v, want < 0.01%%", o.OverheadFrac)
	}
}

func TestTable2SmallRun(t *testing.T) {
	rows, err := Table2(4, 11)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 14 {
		t.Fatalf("rows = %d, want 14 scenarios", len(rows))
	}
	get := func(name string) Table2Row {
		for _, r := range rows {
			if r.Scenario == name {
				return r
			}
		}
		t.Fatalf("scenario %q missing", name)
		return Table2Row{}
	}
	if r := get("Open road"); r.Linkage < 0.99 || r.OnVideo < 0.99 {
		t.Errorf("Open road should be ~100/100: %+v", r)
	}
	if r := get("Building 1"); r.Linkage > 0.25 || r.OnVideo > 0 {
		t.Errorf("Building 1 should be ~0/0: %+v", r)
	}
	if r := get("Tunnels"); r.Linkage > 0.25 || r.OnVideo > 0 {
		t.Errorf("Tunnels should be ~0/0: %+v", r)
	}
	open := get("Open road")
	arr := get("Vehicle array")
	if arr.Linkage >= open.Linkage {
		t.Error("vehicle array should link less than open road")
	}
}

func TestFig21Structure(t *testing.T) {
	rows, err := Fig21(60, 1, 12)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d, want 2 speeds", len(rows))
	}
	for _, r := range rows {
		if r.Members == 0 || r.Edges == 0 {
			t.Errorf("%s: empty viewmap", r.SpeedLabel)
		}
		if !strings.Contains(r.DOT, "graph") {
			t.Error("DOT output missing")
		}
	}
}

func TestFig22CSpeedEffect(t *testing.T) {
	rows, err := Fig22C(40, 2, 13)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d, want 4 speed settings", len(rows))
	}
	var slow, fast Fig22CRow
	for _, r := range rows {
		if r.Speed == "30km/h" {
			slow = r
		}
		if r.Speed == "70km/h" {
			fast = r
		}
	}
	if slow.Intervals == 0 || fast.Intervals == 0 {
		t.Skip("too few contacts at this scale")
	}
	if fast.MeanContact > slow.MeanContact*1.5 {
		t.Errorf("faster traffic should not lengthen contacts: 30km/h=%v 70km/h=%v",
			slow.MeanContact, fast.MeanContact)
	}
}

func TestFig22FMembership(t *testing.T) {
	rows, err := Fig22F(60, 1, 14)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d, want 4", len(rows))
	}
	for _, r := range rows {
		if r.MemberPct < 50 || r.MemberPct > 100 {
			t.Errorf("%s membership %v%% implausible", r.Speed, r.MemberPct)
		}
	}
}

func TestAblationDampingStable(t *testing.T) {
	rows, err := AblationDamping(100, 1, 31)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("rows = %d, want 5 damping values", len(rows))
	}
	for _, r := range rows {
		if r.Runs > 0 && r.Accuracy < 0.99 {
			t.Errorf("delta=%v accuracy %v; verification should be damping-stable", r.Damping, r.Accuracy)
		}
	}
}

func TestAblationAlphaMonotone(t *testing.T) {
	rows, err := AblationAlpha(30, 6, 32)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("rows = %d, want 5 alpha values", len(rows))
	}
	// Stronger guarding should not make tracking easier.
	first, last := rows[0], rows[len(rows)-1]
	if last.FinalSuccess > first.FinalSuccess+0.05 {
		t.Errorf("alpha=%v success %v should not exceed alpha=%v success %v",
			last.Alpha, last.FinalSuccess, first.Alpha, first.FinalSuccess)
	}
	// More alpha means at least as many guards.
	if last.GuardsPerVehicleMinute+1e-9 < first.GuardsPerVehicleMinute {
		t.Error("guard volume should grow with alpha")
	}
}
