package sim

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"math"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"viewmap/internal/client"
	"viewmap/internal/core"
	"viewmap/internal/geo"
	"viewmap/internal/server"
	"viewmap/internal/vd"
	"viewmap/internal/vp"
)

// Scenario engine: declaratively composed city-scale runs against the
// live HTTP serving path. A scenario drives two or three roadnet
// cities (disjoint footprints, one shared minute-sharded store)
// through a diurnal traffic curve with fleet churn, injects a fault
// plan mid-run — slow-disk WAL fsync stalls through the
// DurabilityConfig.Fsync hook, snapshotter pauses, burst-ring
// saturation through duplicate upload storms, crash-and-recover
// windows through the WAL's ack-after-append seam, per-city clock
// skew against the wall-clock admission window, and per-endpoint-class
// partitions (evidence board, investigations, uploads) — and layers
// correlated evidence-demand spikes after incidents. The run is graded
// like Continuous, but through the full stack: every upload, probe,
// and board poll traverses a real httptest server, the client's onion
// circuits, and the server's admission gates, and every probe's
// per-VP verdicts must be bit-for-bit identical to an unfaulted,
// always-resident, in-memory baseline fed exactly the same profiles.
// The engine emits a machine-readable SLO report (per-endpoint
// p50/p99, shed counts, zero-acked-loss) and hard-fails on any
// violated invariant.
//
// Determinism: the workload (cities, churn, diurnal activity, batch
// composition) is a pure function of the seed; uploads are retried
// until acknowledged, so the set of stored profiles — and therefore
// every probe outcome and the result's Fingerprint — is identical run
// to run. Only the timing-dependent overload counters (sheds,
// retries, latencies) vary.

// FaultPlan schedules the scenario's fault injections by minute index.
// The zero value injects nothing.
type FaultPlan struct {
	// FsyncStallFrom and FsyncStallMinutes bound the slow-disk window:
	// during minutes [FsyncStallFrom, FsyncStallFrom+FsyncStallMinutes)
	// every WAL fsync on the group-commit path is delayed by
	// FsyncStallDelay before the real sync runs. Acks slow down and
	// the ingest gate backs up; durability is never weakened.
	FsyncStallFrom    int
	FsyncStallMinutes int
	// FsyncStallDelay is the injected per-fsync delay.
	FsyncStallDelay time.Duration
	// SnapshotPauseFrom and SnapshotPauseMinutes pause the
	// snapshotter: checkpoints that fall inside the window are skipped
	// (and counted), so the WAL grows unboundedly for the duration —
	// the slow-snapshot degraded mode.
	SnapshotPauseFrom    int
	SnapshotPauseMinutes int
	// SaturateFactor re-submits every upload batch of a slow-disk
	// minute this many extra times, concurrently with the originals —
	// burst-ring and admission-gate saturation. The duplicates are
	// bit-identical wire bodies, so whatever interleaving wins, the
	// stored profile set is unchanged (duplicate identifiers are
	// rejected) and baseline equality is preserved.
	SaturateFactor int
	// PartitionFrom and PartitionMinutes bound the evidence-board
	// partition: every /v1/evidence request inside the window is
	// answered 503 before reaching the service. Incidents must be
	// scheduled outside the window.
	PartitionFrom    int
	PartitionMinutes int
	// CrashAtMinute, when > 0, kills the durable system mid-minute:
	// after roughly half the minute's batches are acknowledged, one
	// still-pending batch is appended to the WAL and the process
	// aborts — the ack-after-append crash window — then the store
	// reopens from disk, the recovered system swaps in behind the same
	// HTTP front, and the rest of the minute drains (including a retry
	// of the parked batch, which recovery already replayed, so it
	// lands as duplicates). Traffic resumes mid-minute; every
	// post-recovery probe must still match the baseline bit for bit.
	CrashAtMinute int
	// SkewMaxLagMinutes arms the server's wall-clock upload admission
	// window (server.Config.MaxUploadLagMinutes) and injects the
	// scenario's own clock: the server's "now" is the current scenario
	// minute. Zero keeps admission purely content-derived.
	SkewMaxLagMinutes int
	// CityClockSkew gives city i's uploader fleet a clock
	// CityClockSkew[i] minutes behind the server: at scenario minute m
	// the fleet fabricates and uploads minute m-s content. Cities
	// within SkewMaxLagMinutes are admitted and mirrored into the
	// baseline; cities beyond it must see every anonymous record
	// rejected as stale on the wire peek — only their trusted anchor
	// (authority-clocked, admission-exempt) lands. Shorter than Cities
	// means the remaining cities run unskewed.
	CityClockSkew []int
	// InvestigatePartitionFrom and InvestigatePartitionMinutes answer
	// every /v1/investigate request (reports and watches) 503 at the
	// front for the window. Uploads keep landing and the investigate
	// admission gate stays isolated (never sheds); after the heal, a
	// watch on a partitioned minute must resume from epoch zero with
	// the full report and deliver nothing when resumed from that
	// epoch.
	InvestigatePartitionFrom    int
	InvestigatePartitionMinutes int
	// UploadPartitionFrom and UploadPartitionMinutes answer every
	// /v1/vp request 503 at the front: the affected minutes' traffic
	// is deferred client-side (the retry policy only retries 429s) and
	// drained right after the heal, while investigations keep
	// answering throughout the outage.
	UploadPartitionFrom    int
	UploadPartitionMinutes int
}

// IncidentPlan is one correlated evidence-demand spike: at the end of
// Minute, the authority opens a solicitation over City's central site
// and Polls concurrent vehicles immediately poll the evidence board
// and the legacy solicitation list — the "everyone saw the crash"
// stampede.
type IncidentPlan struct {
	// Minute is the minute index after whose uploads the incident fires.
	Minute int
	// City indexes ScenarioConfig.Cities.
	City int
	// Units is the solicitation's per-VP reward; zero selects 2.
	Units int
	// Polls is the number of concurrent board pollers; zero selects 4.
	Polls int
	// TargetMinuteOffset aims the solicitation at minute
	// Minute-TargetMinuteOffset (clamped at zero) instead of the hot
	// minute — with retention active this drives evidence demand into
	// evicted minutes.
	TargetMinuteOffset int
}

// ScenarioSLO holds the latency objectives a scenario is graded
// against; a zero duration disables that gate. Structural invariants
// (zero acked loss, probe equality, investigations never shed) are
// always enforced regardless.
type ScenarioSLO struct {
	// UploadP99 bounds the batched-upload p99 (retries included).
	UploadP99 time.Duration
	// InvestigateP99 bounds the investigation-report p99.
	InvestigateP99 time.Duration
	// EvidenceP99 bounds the evidence-board-poll p99.
	EvidenceP99 time.Duration
}

// ScenarioConfig declaratively composes one scenario run.
type ScenarioConfig struct {
	// Cities are the roadnet cities sharing the service; empty selects
	// two quick-scale cities. Minutes and Seed of each entry are
	// overridden by the scenario's; a city at index > 0 whose origin
	// is unset is offset east of its predecessor so footprints stay
	// disjoint.
	Cities []CityConfig
	// Minutes is the scenario horizon; zero selects 5.
	Minutes int
	// Diurnal is the per-minute activity fraction in (0,1]: the share
	// of each city's present fleet that drives and uploads that
	// minute (cycled when shorter than Minutes). Empty selects a
	// sinusoidal day curve between 0.2 and 1.0.
	Diurnal []float64
	// ChurnLeaveFrac is the fleet fraction that departs mid-run;
	// ChurnJoinFrac the fraction that joins late (fresh vehicles,
	// fresh per-minute identities — re-keying is implicit in the VP
	// scheme). Zero selects 0.25 each; negative disables.
	ChurnLeaveFrac float64
	ChurnJoinFrac  float64
	// BatchSize is profiles per batched upload; zero selects 8.
	BatchSize int
	// Uploaders is the concurrent upload worker count; zero selects 6.
	Uploaders int
	// Incidents are the evidence-demand spikes.
	Incidents []IncidentPlan
	// Faults is the fault plan.
	Faults FaultPlan
	// Overload configures the server's admission gates; the zero
	// value selects the server defaults (generous). Quick scenarios
	// tighten the ingest gate to force shedding.
	Overload server.OverloadConfig
	// SLO holds the optional latency objectives.
	SLO ScenarioSLO
	// SnapshotEvery is the checkpoint cadence in minutes; zero
	// selects 3.
	SnapshotEvery int
	// RetentionMinutes > 0 runs the scenario in long-horizon mode:
	// minutes older than the horizon are spilled to segment files as
	// the run progresses, and the engine probes evicted minutes
	// (reports, watches, and — via incident TargetMinuteOffset —
	// evidence demand) concurrently with the hot-minute storms.
	RetentionMinutes int
	// ResidentColdMinutes bounds reloaded cold shards; zero selects 1
	// when retention is on.
	ResidentColdMinutes int
	// Dir is the durability directory; empty creates (and removes) a
	// temporary one.
	Dir string
	// Seed drives the whole workload.
	Seed int64
}

func (c ScenarioConfig) withDefaults() ScenarioConfig {
	if len(c.Cities) == 0 {
		c.Cities = []CityConfig{
			{Vehicles: 12, BlocksX: 6, BlocksY: 6, SpacingM: 150},
			{Vehicles: 10, BlocksX: 5, BlocksY: 5, SpacingM: 150},
		}
	}
	if c.Minutes <= 0 {
		c.Minutes = 5
	}
	if c.ChurnLeaveFrac == 0 {
		c.ChurnLeaveFrac = 0.25
	}
	if c.ChurnJoinFrac == 0 {
		c.ChurnJoinFrac = 0.25
	}
	if c.BatchSize <= 0 {
		c.BatchSize = 8
	}
	if c.Uploaders <= 0 {
		c.Uploaders = 6
	}
	if c.SnapshotEvery <= 0 {
		c.SnapshotEvery = 3
	}
	if c.RetentionMinutes > 0 && c.ResidentColdMinutes <= 0 {
		c.ResidentColdMinutes = 1
	}
	return c
}

// QuickScenarioConfig is the 1-shot smoke configuration shared by
// `viewmap-bench -run scenario -scale quick`, the scenario-smoke CI
// job, and TestScenarioQuick: two small cities, a tight ingest gate,
// and the full fault plan — a mid-run WAL fsync stall with duplicate-
// storm saturation, a snapshotter pause, an incident-driven evidence
// spike, and a final-minute evidence-board partition.
func QuickScenarioConfig(seed int64) ScenarioConfig {
	return ScenarioConfig{
		Minutes:   5,
		BatchSize: 3,
		Uploaders: 8,
		Overload: server.OverloadConfig{
			IngestSlots: 2, IngestQueue: 2,
		},
		Incidents: []IncidentPlan{{Minute: 2, City: 0, Units: 2, Polls: 4}},
		Faults: FaultPlan{
			FsyncStallFrom: 1, FsyncStallMinutes: 2,
			FsyncStallDelay:   40 * time.Millisecond,
			SaturateFactor:    2,
			SnapshotPauseFrom: 1, SnapshotPauseMinutes: 1,
			PartitionFrom: 4, PartitionMinutes: 1,
		},
		SnapshotEvery: 2,
		Seed:          seed,
	}
}

// EndpointSLO is one endpoint class's latency/volume summary in the
// scenario's SLO report.
type EndpointSLO struct {
	// Requests counts completed requests of the class.
	Requests int `json:"requests"`
	// P50MS and P99MS are the class's latency percentiles in
	// milliseconds (for uploads, retries and backoff included — the
	// latency a shed-and-retrying client actually experiences).
	P50MS float64 `json:"p50_ms"`
	// P99MS is the 99th-percentile latency in milliseconds.
	P99MS float64 `json:"p99_ms"`
}

// FamilySummary is one fault family's entry in the scenario SLO
// report: the family's own full-stack run reduced to the counters the
// CI gate regresses on.
type FamilySummary struct {
	// Name identifies the family (crash, clock_skew, partition,
	// retention).
	Name string `json:"name"`
	// Upload and Investigate are the family run's client-side SLO
	// summaries.
	Upload      EndpointSLO `json:"upload"`
	Investigate EndpointSLO `json:"investigate"`
	// ZeroAckedLoss and ProbesCompared echo the family run's
	// structural results.
	ZeroAckedLoss  bool `json:"zero_acked_loss"`
	ProbesCompared int  `json:"probes_compared"`
	// Crashes and WALReplayed count crash-and-recover cycles and the
	// WAL records replayed across them.
	Crashes     int `json:"crashes"`
	WALReplayed int `json:"wal_replayed"`
	// StaleRejectedVPs counts uploads the admission window turned away.
	StaleRejectedVPs int `json:"stale_rejected_vps"`
	// PartitionRejects counts requests correctly refused at the front.
	PartitionRejects int `json:"partition_rejects"`
	// ColdProbes and WatchReports count evicted-minute probes and
	// streamed watch reports verified against the baseline.
	ColdProbes   int `json:"cold_probes"`
	WatchReports int `json:"watch_reports"`
	// ProbeDigest is the family run's deterministic fingerprint.
	ProbeDigest string `json:"probe_digest"`
}

// ScenarioResult is the machine-readable SLO report of one scenario
// run (the artifact scenario-smoke uploads in CI).
type ScenarioResult struct {
	// Cities, Minutes, and Seed echo the configuration.
	Cities  int   `json:"cities"`
	Minutes int   `json:"minutes"`
	Seed    int64 `json:"seed"`
	// VehiclesTotal is the summed fleet size across cities.
	VehiclesTotal int `json:"vehicles_total"`
	// OfferedVPs counts profiles offered (diurnal- and churn-gated);
	// AckedVPs counts profiles the faulted system acknowledged. The
	// zero-acked-loss invariant requires them equal.
	OfferedVPs int `json:"offered_vps"`
	AckedVPs   int `json:"acked_vps"`
	// AckedBatches counts acknowledged unique upload batches.
	AckedBatches int `json:"acked_batches"`
	// Upload, Investigate, and EvidencePoll are the per-endpoint SLO
	// summaries, measured client-side (retries and backoff included).
	Upload       EndpointSLO `json:"upload"`
	Investigate  EndpointSLO `json:"investigate"`
	EvidencePoll EndpointSLO `json:"evidence_poll"`
	// ServerUpload and ServerInvestigate are the same two paths as
	// measured by the server's own latency histograms (handler wall
	// time, no client retries; quantiles are histogram bucket upper
	// bounds, so a true p99 of v reports as v <= estimate < 2v).
	// Across a crash they merge incarnations: requests sum, quantiles
	// take the worst incarnation.
	ServerUpload      EndpointSLO `json:"server_upload"`
	ServerInvestigate EndpointSLO `json:"server_investigate"`
	// IngestShed, InvestigateShed, and EvidenceShed mirror the
	// server's admission-gate shed counters at run end, summed across
	// crash incarnations.
	IngestShed      uint64 `json:"ingest_shed"`
	InvestigateShed uint64 `json:"investigate_shed"`
	EvidenceShed    uint64 `json:"evidence_shed"`
	// Client429s counts 429 responses the clients observed; it must
	// equal the summed shed counters.
	Client429s uint64 `json:"client_429s"`
	// ZeroAckedLoss reports the acked-equals-stored invariant (on
	// both the faulted system and the baseline).
	ZeroAckedLoss bool `json:"zero_acked_loss"`
	// ProbesCompared counts InvestigateReport probes cross-checked
	// bit-for-bit against the unfaulted baseline (hot, concurrent,
	// cold, and final-pass).
	ProbesCompared int `json:"probes_compared"`
	// StalledFsyncs counts WAL fsyncs the fault plan delayed.
	StalledFsyncs int64 `json:"stalled_fsyncs"`
	// PartitionRejects counts requests correctly refused during
	// partition windows (evidence polls, investigate canaries, upload
	// canaries).
	PartitionRejects int `json:"partition_rejects"`
	// Incidents counts evidence-demand spikes fired.
	Incidents int `json:"incidents"`
	// SnapshotsWritten and SnapshotsSkipped count checkpoint cadence
	// hits and fault-plan pauses.
	SnapshotsWritten int `json:"snapshots_written"`
	SnapshotsSkipped int `json:"snapshots_skipped"`
	// Crashes counts crash-and-recover cycles; WALReplayed sums the
	// WAL records recovery replayed across them.
	Crashes     int `json:"crashes"`
	WALReplayed int `json:"wal_replayed"`
	// StaleRejectedVPs counts anonymous uploads the wall-clock
	// admission window rejected; it must equal the server's own stale
	// counter summed across incarnations.
	StaleRejectedVPs int `json:"stale_rejected_vps"`
	// ColdProbes counts probes answered from evicted minutes;
	// WatchReports counts streamed watch reports verified against the
	// baseline.
	ColdProbes   int `json:"cold_probes"`
	WatchReports int `json:"watch_reports"`
	// ProbeDigest is a SHA-256 over every final-pass probe outcome —
	// the deterministic fingerprint of the run's served state.
	ProbeDigest string `json:"probe_digest"`
	// Violations lists violated SLO latency objectives (structural
	// invariant violations abort the run with an error instead).
	Violations []string `json:"violations"`
	// Families carries the fault-family runs' summaries when the
	// caller runs them alongside the main scenario (the bench binary
	// does); empty otherwise.
	Families []FamilySummary `json:"families,omitempty"`
}

// Fingerprint returns the run's deterministic digest: two runs with
// the same configuration and seed must return identical strings.
func (r *ScenarioResult) Fingerprint() string {
	return fmt.Sprintf("cities=%d minutes=%d seed=%d offered=%d probes=%s",
		r.Cities, r.Minutes, r.Seed, r.OfferedVPs, r.ProbeDigest)
}

// Rows renders the result in the bench binary's row format.
func (r *ScenarioResult) Rows() []string {
	loss := "zero acked-batch loss"
	if !r.ZeroAckedLoss {
		loss = "ACKED LOSS DETECTED"
	}
	rows := []string{
		fmt.Sprintf("%d cities, %d minutes, %d vehicles: %d VPs offered, %d acked in %d batches (%s)",
			r.Cities, r.Minutes, r.VehiclesTotal, r.OfferedVPs, r.AckedVPs, r.AckedBatches, loss),
		fmt.Sprintf("upload SLO: %d requests, p50 %.1f ms, p99 %.1f ms (retries included)",
			r.Upload.Requests, r.Upload.P50MS, r.Upload.P99MS),
		fmt.Sprintf("investigate SLO: %d requests, p50 %.1f ms, p99 %.1f ms; evidence polls: %d, p99 %.1f ms",
			r.Investigate.Requests, r.Investigate.P50MS, r.Investigate.P99MS,
			r.EvidencePoll.Requests, r.EvidencePoll.P99MS),
		fmt.Sprintf("server-side: upload %d requests p99 %.1f ms, investigate %d requests p99 %.1f ms (histogram upper bounds)",
			r.ServerUpload.Requests, r.ServerUpload.P99MS,
			r.ServerInvestigate.Requests, r.ServerInvestigate.P99MS),
		fmt.Sprintf("shed: ingest %d, investigate %d, evidence %d (clients saw %d x 429); %d fsyncs stalled",
			r.IngestShed, r.InvestigateShed, r.EvidenceShed, r.Client429s, r.StalledFsyncs),
		fmt.Sprintf("faults ridden out: %d incidents, %d partition rejects, %d snapshots written, %d paused",
			r.Incidents, r.PartitionRejects, r.SnapshotsWritten, r.SnapshotsSkipped),
	}
	if r.Crashes > 0 || r.StaleRejectedVPs > 0 || r.ColdProbes > 0 || r.WatchReports > 0 {
		rows = append(rows, fmt.Sprintf("fault families: %d crashes (%d WAL records replayed), %d stale-rejected VPs, %d cold probes, %d watch reports",
			r.Crashes, r.WALReplayed, r.StaleRejectedVPs, r.ColdProbes, r.WatchReports))
	}
	rows = append(rows, fmt.Sprintf("probes vs unfaulted baseline: %d compared, all bit-for-bit; digest %s",
		r.ProbesCompared, r.ProbeDigest[:16]))
	for _, f := range r.Families {
		rows = append(rows, fmt.Sprintf("family %s: %d probes bit-for-bit, upload p99 %.1f ms, investigate p99 %.1f ms; crashes %d (replayed %d), stale %d, cold %d, watch %d",
			f.Name, f.ProbesCompared, f.Upload.P99MS, f.Investigate.P99MS,
			f.Crashes, f.WALReplayed, f.StaleRejectedVPs, f.ColdProbes, f.WatchReports))
	}
	return rows
}

// scenarioCity is one city's engine state.
type scenarioCity struct {
	run  *CityRun
	site geo.Rect
	// join and leave bound each vehicle's presence: the vehicle is in
	// town for minutes [join, leave).
	join, leave []int
	// skew is the city's uploader clock lag in minutes: at scenario
	// minute m the fleet uploads minute m-skew content.
	skew int
	// stale marks a skew beyond the admission window: every anonymous
	// record must bounce; only the trusted anchor lands.
	stale bool
}

// uploadJob is one batched upload in flight.
type uploadJob struct {
	profiles []*vp.Profile
	// ci and minute locate the batch's content (city index and content
	// minute) for coverage bookkeeping.
	ci     int
	minute int
	// mirror marks the batch's first (unique) submission, the one
	// replayed into the baseline; saturation duplicates do not mirror.
	mirror bool
	// expectStale marks a batch from a too-skewed fleet: the server
	// must reject every record as stale, and nothing mirrors.
	expectStale bool
}

// trustedAnchor is one minute's authority-backed upload.
type trustedAnchor struct {
	p      *vp.Profile
	ci     int
	minute int
}

// minutePlan is one scenario minute's composed offered load.
type minutePlan struct {
	trusted []trustedAnchor
	jobs    []uploadJob
}

// probeReq is one concurrent-prober target: city ci's content minute,
// cold when the minute is expected to have been evicted.
type probeReq struct {
	ci     int
	minute int
	cold   bool
}

// within reports whether minute m falls in [from, from+n).
func within(m, from, n int) bool { return n > 0 && m >= from && m < from+n }

// sortedIDs copies and sorts a verdict ID set: report ID slices are in
// member (commit) order, which differs between the faulted system and
// the baseline, so set comparisons sort first.
func sortedIDs(ids []vd.VPID) []vd.VPID {
	s := append([]vd.VPID(nil), ids...)
	sort.Slice(s, func(i, j int) bool { return bytes.Compare(s[i][:], s[j][:]) < 0 })
	return s
}

// latencyPercentilesMS computes p50/p99 of lat in milliseconds.
func latencyPercentilesMS(lat []time.Duration) (p50, p99 float64) {
	if len(lat) == 0 {
		return 0, 0
	}
	s := make([]time.Duration, len(lat))
	copy(s, lat)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	return float64(s[len(s)/2].Microseconds()) / 1e3,
		float64(s[len(s)*99/100].Microseconds()) / 1e3
}

// outcomeFromFullReport converts a direct server report into the
// client's wire-decoded outcome shape for bit-for-bit comparison.
func outcomeFromFullReport(rep *server.FullReport) *client.InvestigationOutcome {
	out := &client.InvestigationOutcome{
		Members: rep.Members, Edges: rep.Edges, InSite: rep.InSite,
		Verdicts: make([]client.VPVerdict, len(rep.Verdicts)),
	}
	for i, v := range rep.Verdicts {
		out.Verdicts[i] = client.VPVerdict{
			ID: v.ID, Trusted: v.Trusted, InSite: v.InSite,
			Legitimate: v.Legitimate, Hops: v.Hops,
		}
	}
	return out
}

// Endpoint-class partition mask bits for the front middleware.
const (
	partEvidence = 1 << iota
	partInvestigate
	partUpload
)

// Scenario runs one declaratively composed city-scale scenario and
// returns its SLO report; any violated structural invariant — acked
// loss, probe divergence from the unfaulted baseline, a shed
// investigation, an unexplained 429, a failed incident, a partition
// leak, a crash that loses an acknowledged record — returns an error
// instead.
func Scenario(cfg ScenarioConfig) (*ScenarioResult, error) {
	cfg = cfg.withDefaults()
	dir := cfg.Dir
	if dir == "" {
		var err error
		if dir, err = os.MkdirTemp("", "viewmap-scenario-*"); err != nil {
			return nil, err
		}
		defer os.RemoveAll(dir)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	// Build the cities on disjoint footprints; one shared horizon.
	cities := make([]*scenarioCity, len(cfg.Cities))
	var nextOriginX float64
	totalVehicles := 0
	for i := range cfg.Cities {
		cc := cfg.Cities[i]
		cc.Minutes = cfg.Minutes
		if cc.Seed == 0 {
			cc.Seed = cfg.Seed*31 + int64(i)
		}
		if i > 0 && cc.OriginX == 0 && cc.OriginY == 0 {
			cc.OriginX = nextOriginX
		}
		run, err := NewCityRun(cc)
		if err != nil {
			return nil, fmt.Errorf("sim: scenario city %d: %w", i, err)
		}
		area := run.Area()
		nextOriginX = area.Max.X + 2000 // leave a gap beyond DSRC range
		cs := &scenarioCity{
			run:  run,
			site: geo.RectAround(area.Center(), 2*run.Cfg.SpacingM),
			join: make([]int, cc.Vehicles),
			leave: func() []int {
				l := make([]int, cc.Vehicles)
				for v := range l {
					l[v] = cfg.Minutes
				}
				return l
			}(),
		}
		if i < len(cfg.Faults.CityClockSkew) {
			cs.skew = cfg.Faults.CityClockSkew[i]
			if cs.skew < 0 {
				return nil, fmt.Errorf("sim: city %d: negative clock skew %d", i, cs.skew)
			}
			cs.stale = cfg.Faults.SkewMaxLagMinutes > 0 && cs.skew > cfg.Faults.SkewMaxLagMinutes
		}
		// Churn plan: a leaver departs somewhere in the back half, a
		// joiner arrives somewhere in the front half. Leavers and
		// joiners are disjoint so every vehicle is present for at
		// least one minute.
		perm := rng.Perm(cc.Vehicles)
		nLeave, nJoin := 0, 0
		if cfg.ChurnLeaveFrac > 0 {
			nLeave = int(cfg.ChurnLeaveFrac * float64(cc.Vehicles))
		}
		if cfg.ChurnJoinFrac > 0 {
			nJoin = int(cfg.ChurnJoinFrac * float64(cc.Vehicles))
		}
		for k := 0; k < nLeave && k < len(perm); k++ {
			cs.leave[perm[k]] = cfg.Minutes/2 + rng.Intn(max(cfg.Minutes-cfg.Minutes/2, 1))
		}
		for k := nLeave; k < nLeave+nJoin && k < len(perm); k++ {
			cs.join[perm[k]] = 1 + rng.Intn(max(cfg.Minutes/2, 1))
		}
		cities[i] = cs
		totalVehicles += cc.Vehicles
	}

	bank, err := benchBank()
	if err != nil {
		return nil, err
	}

	// Fault-plan plumbing: the fsync stall rides the durability
	// config's injection seam; partitions ride a front-side middleware
	// keyed by endpoint class; the crash seam swaps the recovered
	// system behind the same front. All are armed and disarmed by
	// minute index.
	var stallNS, stalled atomic.Int64
	var partMask atomic.Int32
	var serverMinute atomic.Int64
	dcfg := server.DurabilityConfig{
		WALPath:             filepath.Join(dir, "ingest.wal"),
		SnapshotInterval:    0,         // checkpoints driven by the scenario
		RetentionInterval:   time.Hour, // no background sweeps
		RetentionMinutes:    cfg.RetentionMinutes,
		ResidentColdMinutes: cfg.ResidentColdMinutes,
		Fsync: func(f *os.File) error {
			if d := stallNS.Load(); d > 0 {
				stalled.Add(1)
				time.Sleep(time.Duration(d))
			}
			return f.Sync()
		},
	}
	scfg := server.Config{
		AuthorityToken: "bench", Bank: bank, Overload: cfg.Overload,
	}
	if cfg.Faults.SkewMaxLagMinutes > 0 {
		scfg.MaxUploadLagMinutes = cfg.Faults.SkewMaxLagMinutes
		scfg.Now = func() time.Time {
			return time.Unix(serverMinute.Load()*int64(vd.SegmentSeconds), 0)
		}
	}
	sys, err := server.OpenDurable(scfg, dcfg)
	if err != nil {
		return nil, err
	}
	defer func() {
		if sys != nil {
			sys.Close()
		}
	}()
	baseline, err := server.NewSystem(server.Config{AuthorityToken: "bench", Bank: bank})
	if err != nil {
		return nil, err
	}
	defer baseline.Close()

	// The handler lives in an atomic holder so a crash-and-recover
	// cycle can swap the recovered system in without restarting the
	// listener — clients keep their connections and circuits.
	var handlerHolder atomic.Value
	handlerHolder.Store(server.Handler(sys))
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if mask := partMask.Load(); mask != 0 {
			blocked := false
			switch {
			case strings.HasPrefix(r.URL.Path, "/v1/evidence/"):
				blocked = mask&partEvidence != 0
			case strings.HasPrefix(r.URL.Path, "/v1/investigate/"):
				blocked = mask&partInvestigate != 0
			case strings.HasPrefix(r.URL.Path, "/v1/vp/"):
				blocked = mask&partUpload != 0
			}
			if blocked {
				http.Error(w, `{"error":"endpoint class unreachable (partition)"}`, http.StatusServiceUnavailable)
				return
			}
		}
		handlerHolder.Load().(http.Handler).ServeHTTP(w, r)
	}))
	defer srv.Close()
	api, err := client.NewAPI(srv.URL, srv.Client())
	if err != nil {
		return nil, err
	}
	// Generous, time-compressed retry policy: a shed batch retries
	// until admitted (capping each backoff at 20 ms keeps the
	// simulated day short), so the acked profile set — and with it the
	// fingerprint — is deterministic; only the shed counters vary.
	api.SetRetryPolicy(200, 2*time.Millisecond, func(d time.Duration) {
		if d > 20*time.Millisecond {
			d = 20 * time.Millisecond
		}
		time.Sleep(d)
	})

	res := &ScenarioResult{
		Cities: len(cities), Minutes: cfg.Minutes, Seed: cfg.Seed,
		VehiclesTotal: totalVehicles, Violations: []string{},
	}
	var latMu sync.Mutex
	var uploadLat, probeLat, evLat []time.Duration

	// Cross-incarnation accounting: server-side counters reset when a
	// crash replaces the system, so the pre-crash view is fetched and
	// folded in here before every abort.
	var accIngestShed, accInvestigateShed, accEvidenceShed uint64
	var accStale int
	accLat := map[string]client.EndpointLatency{}
	foldStats := func(st *client.ServiceStats) {
		accIngestShed += st.Overload.Ingest.Shed
		accInvestigateShed += st.Overload.Investigate.Shed
		accEvidenceShed += st.Overload.Evidence.Shed
		accStale += st.Ingest.Stale
		for _, l := range st.Latency {
			e := accLat[l.Endpoint]
			e.Endpoint = l.Endpoint
			e.Requests += l.Requests
			if l.P50MS > e.P50MS {
				e.P50MS = l.P50MS
			}
			if l.P99MS > e.P99MS {
				e.P99MS = l.P99MS
			}
			accLat[l.Endpoint] = e
		}
	}

	// Coverage bookkeeping: covered[ci][m] marks content minute m of
	// city ci as landed (clock skew and upload partitions shift or
	// defer landings), gating every probe to minutes that exist on
	// both systems. lastCovered feeds the concurrent prober.
	covered := make([][]bool, len(cities))
	lastCovered := make([]int, len(cities))
	for i := range covered {
		covered[i] = make([]bool, cfg.Minutes)
		lastCovered[i] = -1
	}
	markCovered := func(ci, minute int) {
		if minute < 0 || minute >= cfg.Minutes {
			return
		}
		covered[ci][minute] = true
		if minute > lastCovered[ci] {
			lastCovered[ci] = minute
		}
	}

	// probeCompare cross-checks one (city, minute) report served by
	// the faulted system over HTTP against the baseline's direct
	// report.
	probeCompare := func(cs *scenarioCity, m int64, recordLat bool) error {
		t0 := time.Now()
		got, err := api.InvestigateReport("bench",
			cs.site.Min.X, cs.site.Min.Y, cs.site.Max.X, cs.site.Max.Y, m)
		if err != nil {
			return fmt.Errorf("sim: scenario probe minute %d: %w", m, err)
		}
		if recordLat {
			latMu.Lock()
			probeLat = append(probeLat, time.Since(t0))
			latMu.Unlock()
		}
		rep, err := baseline.InvestigateReport("bench", cs.site, m)
		if err != nil {
			return fmt.Errorf("sim: scenario baseline probe minute %d: %w", m, err)
		}
		if want := outcomeFromFullReport(rep); !reflect.DeepEqual(got, want) {
			return fmt.Errorf("sim: minute %d: faulted verdicts diverge from the unfaulted baseline (%d vs %d members)",
				m, got.Members, want.Members)
		}
		latMu.Lock()
		res.ProbesCompared++
		latMu.Unlock()
		return nil
	}

	// watchCompare streams one report from /v1/investigate/watch
	// (fromEpoch zero, so the current state arrives immediately) and
	// cross-checks it two ways: the streamed epoch must equal the
	// serving system's own snapshot epoch (the stream reflects server
	// state — content epochs are commit-order-derived, so they are not
	// comparable across systems fed in different orders), and the
	// streamed viewmap must match the baseline's bit for bit (content
	// is order-independent). Returns the delivered epoch.
	watchCompare := func(cs *scenarioCity, m int64) (uint64, error) {
		var got client.WatchReport
		calls := 0
		err := api.WatchInvestigation("bench",
			cs.site.Min.X, cs.site.Min.Y, cs.site.Max.X, cs.site.Max.Y,
			m, 0, 1, 10*time.Second, func(r client.WatchReport) error {
				got = r
				calls++
				return nil
			})
		if err != nil {
			return 0, fmt.Errorf("sim: scenario watch minute %d: %w", m, err)
		}
		if calls != 1 {
			return 0, fmt.Errorf("sim: scenario watch minute %d delivered %d reports, want 1", m, calls)
		}
		_, direct, err := sys.InvestigateSnapshot("bench", cs.site, m)
		if err != nil {
			return 0, fmt.Errorf("sim: scenario direct snapshot minute %d: %w", m, err)
		}
		if got.Epoch != direct {
			return 0, fmt.Errorf("sim: minute %d: streamed epoch %d diverges from the serving system's %d", m, got.Epoch, direct)
		}
		snap, _, err := baseline.InvestigateSnapshot("bench", cs.site, m)
		if err != nil {
			return 0, fmt.Errorf("sim: scenario baseline snapshot minute %d: %w", m, err)
		}
		if got.Members != snap.Members || got.Edges != snap.Edges || got.InSite != snap.InSite ||
			!reflect.DeepEqual(sortedIDs(got.Legitimate), sortedIDs(snap.Legitimate)) {
			return 0, fmt.Errorf("sim: minute %d: watched viewmap diverges from baseline", m)
		}
		res.WatchReports++
		return got.Epoch, nil
	}

	// drainJobs pushes one batch set through the upload workers while
	// a prober concurrently investigates already-landed minutes
	// through the same admission layer — the "answers during the
	// storm" invariant.
	drainJobs := func(m int, jobs []uploadJob, probes []probeReq) error {
		jobCh := make(chan uploadJob)
		errCh := make(chan error, cfg.Uploaders+1)
		var wg sync.WaitGroup
		for u := 0; u < cfg.Uploaders; u++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for j := range jobCh {
					t0 := time.Now()
					bres, err := api.UploadVPBatch(j.profiles)
					if err != nil {
						errCh <- fmt.Errorf("sim: scenario batch upload minute %d: %w", m, err)
						return
					}
					lat := time.Since(t0)
					if j.expectStale {
						if bres.Stored != 0 || bres.Rejected != len(j.profiles) {
							errCh <- fmt.Errorf("sim: minute %d: stale batch landed through the admission window: %+v", m, bres)
							return
						}
						latMu.Lock()
						uploadLat = append(uploadLat, lat)
						res.StaleRejectedVPs += len(j.profiles)
						latMu.Unlock()
						continue
					}
					if bres.Rejected != 0 || bres.Stored+bres.Duplicates != len(j.profiles) {
						errCh <- fmt.Errorf("sim: scenario batch result %+v for %d profiles", bres, len(j.profiles))
						return
					}
					latMu.Lock()
					uploadLat = append(uploadLat, lat)
					if j.mirror {
						res.AckedBatches++
						res.AckedVPs += len(j.profiles)
					}
					latMu.Unlock()
					if j.mirror {
						if _, err := baseline.UploadVPBatch(vp.MarshalBatch(j.profiles)); err != nil {
							errCh <- fmt.Errorf("sim: scenario baseline mirror minute %d: %w", m, err)
							return
						}
					}
				}
			}()
		}
		if len(probes) > 0 {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for _, pr := range probes {
					if err := probeCompare(cities[pr.ci], int64(pr.minute), true); err != nil {
						errCh <- err
						return
					}
					if pr.cold {
						latMu.Lock()
						res.ColdProbes++
						latMu.Unlock()
					}
				}
			}()
		}
		for _, j := range jobs {
			jobCh <- j
		}
		close(jobCh)
		wg.Wait()
		select {
		case err := <-errCh:
			return err
		default:
		}
		return nil
	}

	// executeTrusted lands one plan's authority anchors: trusted
	// uploads are admission-exempt (the authority's clock is the
	// server's), land first, and mirror immediately.
	executeTrusted := func(plan *minutePlan) error {
		for _, tu := range plan.trusted {
			if err := api.UploadTrustedVP("bench", tu.p); err != nil {
				return fmt.Errorf("sim: scenario trusted upload minute %d: %w", tu.minute, err)
			}
			if err := baseline.UploadTrustedVP("bench", tu.p.Marshal()); err != nil {
				return err
			}
			res.AckedVPs++
			markCovered(tu.ci, tu.minute)
		}
		return nil
	}

	// composeMinute builds minute m's offered load: per city, the
	// diurnal fraction of the churn-present fleet fabricates minute
	// m-skew content and uploads it. All randomness is drawn here, in
	// city order, so the workload stays a pure function of the seed
	// whatever the fault plan does with the plan afterwards.
	composeMinute := func(m int) (*minutePlan, error) {
		plan := &minutePlan{}
		for ci, cs := range cities {
			contentMinute := m - cs.skew
			if contentMinute < 0 {
				continue // the skewed fleet's day has not started yet
			}
			mp, err := cs.run.ProfilesForMinute(contentMinute, false)
			if err != nil {
				return nil, err
			}
			var present []int
			for v := 0; v < cs.run.Cfg.Vehicles; v++ {
				if cs.join[v] <= m && m < cs.leave[v] {
					present = append(present, v)
				}
			}
			frac := diurnalFraction(cfg.Diurnal, m, cfg.Minutes)
			want := int(math.Ceil(frac * float64(len(present))))
			if want < 2 {
				want = min(2, len(present))
			}
			perm := rng.Perm(len(present))
			active := make([]*vp.Profile, 0, want)
			for _, pi := range perm[:want] {
				active = append(active, mp.Profiles[present[pi]])
			}
			if len(active) == 0 {
				continue // the whole fleet churned away this minute
			}
			ti := core.MarkTrustedNearest(active, cs.site.Center())
			plan.trusted = append(plan.trusted, trustedAnchor{p: active[ti], ci: ci, minute: contentMinute})
			res.OfferedVPs++
			anonProfiles := make([]*vp.Profile, 0, len(active)-1)
			for i, p := range active {
				if i != ti {
					anonProfiles = append(anonProfiles, p)
				}
			}
			for off := 0; off < len(anonProfiles); off += cfg.BatchSize {
				end := min(off+cfg.BatchSize, len(anonProfiles))
				plan.jobs = append(plan.jobs, uploadJob{
					profiles: anonProfiles[off:end], ci: ci, minute: contentMinute,
					mirror: !cs.stale, expectStale: cs.stale,
				})
				if !cs.stale {
					res.OfferedVPs += end - off
				}
			}
		}
		return plan, nil
	}

	// pending holds minute plans deferred by an upload partition,
	// drained in order at the heal. healWatch remembers the last
	// investigate-partitioned minute for the post-heal watch-resume
	// check.
	var pending []*minutePlan
	drainPending := func(m int) error {
		for _, plan := range pending {
			if err := executeTrusted(plan); err != nil {
				return err
			}
			if err := drainJobs(m, plan.jobs, nil); err != nil {
				return err
			}
		}
		pending = nil
		return nil
	}
	healWatch := -1
	prevInvPart := false

	for m := 0; m < cfg.Minutes; m++ {
		serverMinute.Store(int64(m))
		// Arm this minute's faults.
		inStall := within(m, cfg.Faults.FsyncStallFrom, cfg.Faults.FsyncStallMinutes)
		if inStall {
			stallNS.Store(int64(cfg.Faults.FsyncStallDelay))
		} else {
			stallNS.Store(0)
		}
		inEvPart := within(m, cfg.Faults.PartitionFrom, cfg.Faults.PartitionMinutes)
		inInvPart := within(m, cfg.Faults.InvestigatePartitionFrom, cfg.Faults.InvestigatePartitionMinutes)
		inUpPart := within(m, cfg.Faults.UploadPartitionFrom, cfg.Faults.UploadPartitionMinutes)
		var mask int32
		if inEvPart {
			mask |= partEvidence
		}
		if inInvPart {
			mask |= partInvestigate
		}
		if inUpPart {
			mask |= partUpload
		}
		partMask.Store(mask)

		// Heal transitions: an upload partition that just lifted
		// releases the deferred minutes before new traffic; an
		// investigate partition that just lifted must let a watch on a
		// partitioned minute resume with the full report, and deliver
		// nothing when resumed from that epoch.
		if !inUpPart && len(pending) > 0 {
			if err := drainPending(m); err != nil {
				return nil, err
			}
		}
		if prevInvPart && !inInvPart && healWatch >= 0 {
			epoch, err := watchCompare(cities[0], int64(healWatch))
			if err != nil {
				return nil, fmt.Errorf("sim: post-heal watch: %w", err)
			}
			calls := 0
			if err := api.WatchInvestigation("bench",
				cities[0].site.Min.X, cities[0].site.Min.Y, cities[0].site.Max.X, cities[0].site.Max.Y,
				int64(healWatch), epoch, 1, 300*time.Millisecond,
				func(client.WatchReport) error { calls++; return nil }); err != nil {
				return nil, fmt.Errorf("sim: post-heal watch resume: %w", err)
			}
			if calls != 0 {
				return nil, fmt.Errorf("sim: post-heal watch re-delivered %d reports for unchanged content", calls)
			}
			healWatch = -1
		}
		prevInvPart = inInvPart

		plan, err := composeMinute(m)
		if err != nil {
			return nil, err
		}

		if inUpPart {
			// The upload plane is dark: a canary must bounce at the
			// front, the minute's traffic defers to the heal, and
			// investigations keep answering — gates are isolated.
			if len(plan.jobs) > 0 {
				if _, err := api.UploadVPBatch(plan.jobs[0].profiles); err == nil {
					return nil, fmt.Errorf("sim: minute %d: batch upload answered through the partition", m)
				}
				res.PartitionRejects++
			}
			if len(plan.trusted) > 0 {
				if err := api.UploadTrustedVP("bench", plan.trusted[0].p); err == nil {
					return nil, fmt.Errorf("sim: minute %d: trusted upload answered through the partition", m)
				}
				res.PartitionRejects++
			}
			pending = append(pending, plan)
			if !inInvPart {
				for ci, cs := range cities {
					if lastCovered[ci] >= 0 {
						if err := probeCompare(cs, int64(lastCovered[ci]), true); err != nil {
							return nil, fmt.Errorf("sim: probe during upload partition: %w", err)
						}
					}
				}
			}
		} else {
			// Concurrent probe targets: each city's last fully-landed
			// minute, plus — in long-horizon mode — an evicted minute,
			// so cold reads race the hot storm.
			var probes []probeReq
			if !inInvPart {
				for ci := range cities {
					if lastCovered[ci] >= 0 {
						probes = append(probes, probeReq{ci: ci, minute: lastCovered[ci]})
					}
				}
				if cfg.RetentionMinutes > 0 {
					if cold := m - cfg.RetentionMinutes - 1; cold >= 0 {
						for ci := range cities {
							if covered[ci][cold] {
								probes = append(probes, probeReq{ci: ci, minute: cold, cold: true})
							}
						}
					}
				}
			}

			if err := executeTrusted(plan); err != nil {
				return nil, err
			}
			jobs := plan.jobs
			// Burst-ring saturation: duplicate storms ride the
			// slow-disk window.
			if inStall && cfg.Faults.SaturateFactor > 0 {
				unique := len(jobs)
				for k := 0; k < cfg.Faults.SaturateFactor; k++ {
					for _, j := range jobs[:unique] {
						jobs = append(jobs, uploadJob{
							profiles: j.profiles, ci: j.ci, minute: j.minute,
							expectStale: j.expectStale,
						})
					}
				}
			}
			rng.Shuffle(len(jobs), func(i, j int) { jobs[i], jobs[j] = jobs[j], jobs[i] })

			if cfg.Faults.CrashAtMinute > 0 && m == cfg.Faults.CrashAtMinute {
				// Crash-and-recover window: drain half the minute,
				// park one acknowledged-but-uncommitted batch in the
				// WAL, kill the system, recover from disk, swap the
				// recovered system behind the live front, and resume.
				half := len(jobs) / 2
				if err := drainJobs(m, jobs[:half], probes); err != nil {
					return nil, err
				}
				st, err := api.StatsFull()
				if err != nil {
					return nil, fmt.Errorf("sim: pre-crash stats: %w", err)
				}
				foldStats(st)
				crashIdx := -1
				for i := half; i < len(jobs); i++ {
					if jobs[i].mirror && !jobs[i].expectStale {
						crashIdx = i
						break
					}
				}
				if crashIdx >= 0 {
					if err := sys.CrashAppendAbort([][]byte{vp.MarshalBatch(jobs[crashIdx].profiles)}); err != nil {
						return nil, fmt.Errorf("sim: crash injection: %w", err)
					}
				} else {
					sys.Abort()
				}
				recovered, err := server.OpenDurable(scfg, dcfg)
				if err != nil {
					return nil, fmt.Errorf("sim: scenario recovery: %w", err)
				}
				sys = recovered
				d := sys.DurabilityStatsSnapshot()
				res.Crashes++
				res.WALReplayed += d.Replayed
				if crashIdx >= 0 && d.Replayed < 1 {
					return nil, fmt.Errorf("sim: recovery replayed nothing; the parked crash-window batch was lost")
				}
				handlerHolder.Store(server.Handler(sys))
				// The rest of the minute — including the parked batch,
				// whose retry must land as pure duplicates — drains
				// against the recovered system.
				if err := drainJobs(m, jobs[half:], nil); err != nil {
					return nil, err
				}
			} else {
				if err := drainJobs(m, jobs, probes); err != nil {
					return nil, err
				}
			}

			// Hot probe: the minutes that just landed, on both systems.
			if !inInvPart {
				for ci, cs := range cities {
					cm := m - cs.skew
					if cm >= 0 && covered[ci][cm] {
						if err := probeCompare(cs, int64(cm), true); err != nil {
							return nil, err
						}
					}
				}
			}
		}

		if inInvPart {
			// Investigation plane is dark: report and watch canaries
			// must bounce at the front while uploads land; the minute
			// is remembered for the post-heal resume check.
			probeMinute := int64(max(lastCovered[0], 0))
			if _, err := api.InvestigateReport("bench",
				cities[0].site.Min.X, cities[0].site.Min.Y, cities[0].site.Max.X, cities[0].site.Max.Y,
				probeMinute); err == nil {
				return nil, fmt.Errorf("sim: minute %d: investigation answered through the partition", m)
			}
			res.PartitionRejects++
			if err := api.WatchInvestigation("bench",
				cities[0].site.Min.X, cities[0].site.Min.Y, cities[0].site.Max.X, cities[0].site.Max.Y,
				probeMinute, 0, 1, 500*time.Millisecond,
				func(client.WatchReport) error { return nil }); err == nil {
				return nil, fmt.Errorf("sim: minute %d: watch answered through the partition", m)
			}
			res.PartitionRejects++
			if lastCovered[0] >= 0 {
				healWatch = lastCovered[0]
			}
		}

		// Incidents: solicitation plus the correlated board-poll spike.
		for _, inc := range cfg.Incidents {
			if inc.Minute != m {
				continue
			}
			if inc.City < 0 || inc.City >= len(cities) {
				return nil, fmt.Errorf("sim: incident city %d out of range", inc.City)
			}
			cs := cities[inc.City]
			units := inc.Units
			if units <= 0 {
				units = 2
			}
			target := int64(m - inc.TargetMinuteOffset)
			if target < 0 {
				target = 0
			}
			if _, err := api.OpenSolicitation("bench",
				cs.site.Min.X, cs.site.Min.Y, cs.site.Max.X, cs.site.Max.Y,
				target, units); err != nil {
				return nil, fmt.Errorf("sim: incident solicitation minute %d: %w", m, err)
			}
			res.Incidents++
			polls := inc.Polls
			if polls <= 0 {
				polls = 4
			}
			var pw sync.WaitGroup
			pollErr := make(chan error, polls)
			for p := 0; p < polls; p++ {
				pw.Add(1)
				go func() {
					defer pw.Done()
					t0 := time.Now()
					if _, err := api.EvidenceBoard(); err != nil {
						pollErr <- fmt.Errorf("sim: incident board poll minute %d: %w", m, err)
						return
					}
					if _, err := api.Solicitations(); err != nil {
						pollErr <- fmt.Errorf("sim: incident solicitation poll minute %d: %w", m, err)
						return
					}
					latMu.Lock()
					evLat = append(evLat, time.Since(t0))
					latMu.Unlock()
				}()
			}
			pw.Wait()
			select {
			case err := <-pollErr:
				return nil, err
			default:
			}
		}

		// Partition check: inside the evidence window the board must
		// be unreachable — a poll that succeeds means the partition
		// middleware leaked.
		if inEvPart {
			if _, err := api.EvidenceBoard(); err == nil {
				return nil, fmt.Errorf("sim: minute %d: evidence board answered through the partition", m)
			}
			res.PartitionRejects++
		}

		// Checkpoint cadence, honoring the snapshotter pause.
		if (m+1)%cfg.SnapshotEvery == 0 {
			if within(m, cfg.Faults.SnapshotPauseFrom, cfg.Faults.SnapshotPauseMinutes) {
				res.SnapshotsSkipped++
			} else {
				if err := sys.Checkpoint(); err != nil {
					return nil, err
				}
				res.SnapshotsWritten++
			}
		}

		// Long-horizon retention: spill aged minutes every step, and
		// periodically verify an evicted minute end to end through the
		// watch stream (cold report probes already race the drain).
		if cfg.RetentionMinutes > 0 {
			if _, err := sys.Store().ApplyRetention(); err != nil {
				return nil, err
			}
			if cold := m - cfg.RetentionMinutes - 1; cold >= 0 && !inInvPart && cold%5 == 0 && covered[0][cold] {
				if _, err := watchCompare(cities[0], int64(cold)); err != nil {
					return nil, fmt.Errorf("sim: cold watch: %w", err)
				}
			}
		}
	}

	// Disarm every fault, then release anything a partition window
	// running to the end of the horizon still holds.
	stallNS.Store(0)
	partMask.Store(0)
	res.StalledFsyncs = stalled.Load()
	if len(pending) > 0 {
		if err := drainPending(cfg.Minutes); err != nil {
			return nil, err
		}
	}
	if healWatch >= 0 {
		if _, err := watchCompare(cities[0], int64(healWatch)); err != nil {
			return nil, fmt.Errorf("sim: post-run heal watch: %w", err)
		}
	}

	// Final pass: every covered (city, minute) must answer bit-for-bit
	// like the baseline; the digest over these outcomes is the
	// fingerprint.
	h := sha256.New()
	for ci, cs := range cities {
		for m := 0; m < cfg.Minutes; m++ {
			if !covered[ci][m] {
				continue
			}
			if err := probeCompare(cs, int64(m), false); err != nil {
				return nil, fmt.Errorf("sim: final pass: %w", err)
			}
			rep, err := baseline.InvestigateReport("bench", cs.site, int64(m))
			if err != nil {
				return nil, err
			}
			binary.Write(h, binary.BigEndian, int64(ci))
			binary.Write(h, binary.BigEndian, int64(m))
			binary.Write(h, binary.BigEndian, int64(rep.Members))
			binary.Write(h, binary.BigEndian, int64(rep.Edges))
			binary.Write(h, binary.BigEndian, int64(rep.InSite))
			for _, v := range rep.Verdicts {
				h.Write(v.ID[:])
				binary.Write(h, binary.BigEndian, v.Legitimate)
				binary.Write(h, binary.BigEndian, v.Trusted)
				binary.Write(h, binary.BigEndian, v.InSite)
				binary.Write(h, binary.BigEndian, int64(v.Hops))
			}
		}
	}
	res.ProbeDigest = hex.EncodeToString(h.Sum(nil))

	// Structural invariants, with counters folded across incarnations.
	stats, err := api.StatsFull()
	if err != nil {
		return nil, err
	}
	foldStats(stats)
	res.IngestShed = accIngestShed
	res.InvestigateShed = accInvestigateShed
	res.EvidenceShed = accEvidenceShed
	res.Client429s = api.Seen429()
	if res.InvestigateShed != 0 {
		return nil, fmt.Errorf("sim: %d investigations shed — the investigate gate must never starve", res.InvestigateShed)
	}
	if total := res.IngestShed + res.EvidenceShed; res.Client429s != total {
		return nil, fmt.Errorf("sim: clients saw %d x 429 but the server shed %d — counters diverge", res.Client429s, total)
	}
	if accStale != res.StaleRejectedVPs {
		return nil, fmt.Errorf("sim: server counted %d stale rejections, clients observed %d — counters diverge", accStale, res.StaleRejectedVPs)
	}
	sysLen, baseLen := sys.Store().Len(), baseline.Store().Len()
	res.ZeroAckedLoss = sysLen == res.OfferedVPs && baseLen == res.OfferedVPs && res.AckedVPs == res.OfferedVPs
	if !res.ZeroAckedLoss {
		return nil, fmt.Errorf("sim: acked loss: offered %d, acked %d, stored %d (baseline %d)",
			res.OfferedVPs, res.AckedVPs, sysLen, baseLen)
	}

	// SLO grading.
	res.Upload.Requests = len(uploadLat)
	res.Upload.P50MS, res.Upload.P99MS = latencyPercentilesMS(uploadLat)
	res.Investigate.Requests = len(probeLat)
	res.Investigate.P50MS, res.Investigate.P99MS = latencyPercentilesMS(probeLat)
	res.EvidencePoll.Requests = len(evLat)
	res.EvidencePoll.P50MS, res.EvidencePoll.P99MS = latencyPercentilesMS(evLat)
	// Server-side view of the same paths, merged across incarnations.
	for _, l := range accLat {
		slo := EndpointSLO{Requests: int(l.Requests), P50MS: l.P50MS, P99MS: l.P99MS}
		switch l.Endpoint {
		case "/v1/vp/batch":
			res.ServerUpload = slo
		case "/v1/investigate/report":
			res.ServerInvestigate = slo
		}
	}
	if lim := cfg.SLO.UploadP99; lim > 0 && res.Upload.P99MS > float64(lim.Microseconds())/1e3 {
		res.Violations = append(res.Violations, fmt.Sprintf("upload p99 %.1f ms exceeds %v", res.Upload.P99MS, lim))
	}
	if lim := cfg.SLO.InvestigateP99; lim > 0 && res.Investigate.P99MS > float64(lim.Microseconds())/1e3 {
		res.Violations = append(res.Violations, fmt.Sprintf("investigate p99 %.1f ms exceeds %v", res.Investigate.P99MS, lim))
	}
	if lim := cfg.SLO.EvidenceP99; lim > 0 && res.EvidencePoll.P99MS > float64(lim.Microseconds())/1e3 {
		res.Violations = append(res.Violations, fmt.Sprintf("evidence p99 %.1f ms exceeds %v", res.EvidencePoll.P99MS, lim))
	}
	if len(res.Violations) > 0 {
		return res, fmt.Errorf("sim: SLO violated: %s", strings.Join(res.Violations, "; "))
	}

	err = sys.Close()
	sys = nil
	return res, err
}

// diurnalFraction evaluates the activity curve at minute m: the
// configured per-minute series (cycled), or the built-in sinusoidal
// day between 0.2 and 1.0.
func diurnalFraction(curve []float64, m, minutes int) float64 {
	if len(curve) > 0 {
		f := curve[m%len(curve)]
		if f <= 0 {
			return 0.1
		}
		if f > 1 {
			return 1
		}
		return f
	}
	return 0.6 + 0.4*math.Sin(2*math.Pi*float64(m)/float64(max(minutes, 2)))
}
