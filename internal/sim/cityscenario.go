package sim

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"math"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"viewmap/internal/client"
	"viewmap/internal/core"
	"viewmap/internal/geo"
	"viewmap/internal/server"
	"viewmap/internal/vp"
)

// Scenario engine: declaratively composed city-scale runs against the
// live HTTP serving path. A scenario drives two or three roadnet
// cities (disjoint footprints, one shared minute-sharded store)
// through a diurnal traffic curve with fleet churn, injects a fault
// plan mid-run — slow-disk WAL fsync stalls through the
// DurabilityConfig.Fsync hook, snapshotter pauses, burst-ring
// saturation through duplicate upload storms, evidence-board
// partitions — and layers correlated evidence-demand spikes after
// incidents. The run is graded like Continuous, but through the full
// stack: every upload, probe, and board poll traverses a real
// httptest server, the client's onion circuits, and the server's
// admission gates, and every probe's per-VP verdicts must be
// bit-for-bit identical to an unfaulted, always-resident, in-memory
// baseline fed exactly the same profiles. The engine emits a
// machine-readable SLO report (per-endpoint p50/p99, shed counts,
// zero-acked-loss) and hard-fails on any violated invariant.
//
// Determinism: the workload (cities, churn, diurnal activity, batch
// composition) is a pure function of the seed; uploads are retried
// until acknowledged, so the set of stored profiles — and therefore
// every probe outcome and the result's Fingerprint — is identical run
// to run. Only the timing-dependent overload counters (sheds,
// retries, latencies) vary.

// FaultPlan schedules the scenario's fault injections by minute index.
// The zero value injects nothing.
type FaultPlan struct {
	// FsyncStallFrom and FsyncStallMinutes bound the slow-disk window:
	// during minutes [FsyncStallFrom, FsyncStallFrom+FsyncStallMinutes)
	// every WAL fsync on the group-commit path is delayed by
	// FsyncStallDelay before the real sync runs. Acks slow down and
	// the ingest gate backs up; durability is never weakened.
	FsyncStallFrom    int
	FsyncStallMinutes int
	// FsyncStallDelay is the injected per-fsync delay.
	FsyncStallDelay time.Duration
	// SnapshotPauseFrom and SnapshotPauseMinutes pause the
	// snapshotter: checkpoints that fall inside the window are skipped
	// (and counted), so the WAL grows unboundedly for the duration —
	// the slow-snapshot degraded mode.
	SnapshotPauseFrom    int
	SnapshotPauseMinutes int
	// SaturateFactor re-submits every upload batch of a slow-disk
	// minute this many extra times, concurrently with the originals —
	// burst-ring and admission-gate saturation. The duplicates are
	// bit-identical wire bodies, so whatever interleaving wins, the
	// stored profile set is unchanged (duplicate identifiers are
	// rejected) and baseline equality is preserved.
	SaturateFactor int
	// PartitionFrom and PartitionMinutes bound the evidence-board
	// partition: every /v1/evidence request inside the window is
	// answered 503 before reaching the service. Incidents must be
	// scheduled outside the window.
	PartitionFrom    int
	PartitionMinutes int
}

// IncidentPlan is one correlated evidence-demand spike: at the end of
// Minute, the authority opens a solicitation over City's central site
// and Polls concurrent vehicles immediately poll the evidence board
// and the legacy solicitation list — the "everyone saw the crash"
// stampede.
type IncidentPlan struct {
	// Minute is the minute index after whose uploads the incident fires.
	Minute int
	// City indexes ScenarioConfig.Cities.
	City int
	// Units is the solicitation's per-VP reward; zero selects 2.
	Units int
	// Polls is the number of concurrent board pollers; zero selects 4.
	Polls int
}

// ScenarioSLO holds the latency objectives a scenario is graded
// against; a zero duration disables that gate. Structural invariants
// (zero acked loss, probe equality, investigations never shed) are
// always enforced regardless.
type ScenarioSLO struct {
	// UploadP99 bounds the batched-upload p99 (retries included).
	UploadP99 time.Duration
	// InvestigateP99 bounds the investigation-report p99.
	InvestigateP99 time.Duration
	// EvidenceP99 bounds the evidence-board-poll p99.
	EvidenceP99 time.Duration
}

// ScenarioConfig declaratively composes one scenario run.
type ScenarioConfig struct {
	// Cities are the roadnet cities sharing the service; empty selects
	// two quick-scale cities. Minutes and Seed of each entry are
	// overridden by the scenario's; a city at index > 0 whose origin
	// is unset is offset east of its predecessor so footprints stay
	// disjoint.
	Cities []CityConfig
	// Minutes is the scenario horizon; zero selects 5.
	Minutes int
	// Diurnal is the per-minute activity fraction in (0,1]: the share
	// of each city's present fleet that drives and uploads that
	// minute (cycled when shorter than Minutes). Empty selects a
	// sinusoidal day curve between 0.2 and 1.0.
	Diurnal []float64
	// ChurnLeaveFrac is the fleet fraction that departs mid-run;
	// ChurnJoinFrac the fraction that joins late (fresh vehicles,
	// fresh per-minute identities — re-keying is implicit in the VP
	// scheme). Zero selects 0.25 each; negative disables.
	ChurnLeaveFrac float64
	ChurnJoinFrac  float64
	// BatchSize is profiles per batched upload; zero selects 8.
	BatchSize int
	// Uploaders is the concurrent upload worker count; zero selects 6.
	Uploaders int
	// Incidents are the evidence-demand spikes.
	Incidents []IncidentPlan
	// Faults is the fault plan.
	Faults FaultPlan
	// Overload configures the server's admission gates; the zero
	// value selects the server defaults (generous). Quick scenarios
	// tighten the ingest gate to force shedding.
	Overload server.OverloadConfig
	// SLO holds the optional latency objectives.
	SLO ScenarioSLO
	// SnapshotEvery is the checkpoint cadence in minutes; zero
	// selects 3.
	SnapshotEvery int
	// Dir is the durability directory; empty creates (and removes) a
	// temporary one.
	Dir string
	// Seed drives the whole workload.
	Seed int64
}

func (c ScenarioConfig) withDefaults() ScenarioConfig {
	if len(c.Cities) == 0 {
		c.Cities = []CityConfig{
			{Vehicles: 12, BlocksX: 6, BlocksY: 6, SpacingM: 150},
			{Vehicles: 10, BlocksX: 5, BlocksY: 5, SpacingM: 150},
		}
	}
	if c.Minutes <= 0 {
		c.Minutes = 5
	}
	if c.ChurnLeaveFrac == 0 {
		c.ChurnLeaveFrac = 0.25
	}
	if c.ChurnJoinFrac == 0 {
		c.ChurnJoinFrac = 0.25
	}
	if c.BatchSize <= 0 {
		c.BatchSize = 8
	}
	if c.Uploaders <= 0 {
		c.Uploaders = 6
	}
	if c.SnapshotEvery <= 0 {
		c.SnapshotEvery = 3
	}
	return c
}

// QuickScenarioConfig is the 1-shot smoke configuration shared by
// `viewmap-bench -run scenario -scale quick`, the scenario-smoke CI
// job, and TestScenarioQuick: two small cities, a tight ingest gate,
// and the full fault plan — a mid-run WAL fsync stall with duplicate-
// storm saturation, a snapshotter pause, an incident-driven evidence
// spike, and a final-minute evidence-board partition.
func QuickScenarioConfig(seed int64) ScenarioConfig {
	return ScenarioConfig{
		Minutes:   5,
		BatchSize: 3,
		Uploaders: 8,
		Overload: server.OverloadConfig{
			IngestSlots: 2, IngestQueue: 2,
		},
		Incidents: []IncidentPlan{{Minute: 2, City: 0, Units: 2, Polls: 4}},
		Faults: FaultPlan{
			FsyncStallFrom: 1, FsyncStallMinutes: 2,
			FsyncStallDelay:   40 * time.Millisecond,
			SaturateFactor:    2,
			SnapshotPauseFrom: 1, SnapshotPauseMinutes: 1,
			PartitionFrom: 4, PartitionMinutes: 1,
		},
		SnapshotEvery: 2,
		Seed:          seed,
	}
}

// EndpointSLO is one endpoint class's latency/volume summary in the
// scenario's SLO report.
type EndpointSLO struct {
	// Requests counts completed requests of the class.
	Requests int `json:"requests"`
	// P50MS and P99MS are the class's latency percentiles in
	// milliseconds (for uploads, retries and backoff included — the
	// latency a shed-and-retrying client actually experiences).
	P50MS float64 `json:"p50_ms"`
	// P99MS is the 99th-percentile latency in milliseconds.
	P99MS float64 `json:"p99_ms"`
}

// ScenarioResult is the machine-readable SLO report of one scenario
// run (the artifact scenario-smoke uploads in CI).
type ScenarioResult struct {
	// Cities, Minutes, and Seed echo the configuration.
	Cities  int   `json:"cities"`
	Minutes int   `json:"minutes"`
	Seed    int64 `json:"seed"`
	// VehiclesTotal is the summed fleet size across cities.
	VehiclesTotal int `json:"vehicles_total"`
	// OfferedVPs counts profiles offered (diurnal- and churn-gated);
	// AckedVPs counts profiles the faulted system acknowledged. The
	// zero-acked-loss invariant requires them equal.
	OfferedVPs int `json:"offered_vps"`
	AckedVPs   int `json:"acked_vps"`
	// AckedBatches counts acknowledged unique upload batches.
	AckedBatches int `json:"acked_batches"`
	// Upload, Investigate, and EvidencePoll are the per-endpoint SLO
	// summaries, measured client-side (retries and backoff included).
	Upload       EndpointSLO `json:"upload"`
	Investigate  EndpointSLO `json:"investigate"`
	EvidencePoll EndpointSLO `json:"evidence_poll"`
	// ServerUpload and ServerInvestigate are the same two paths as
	// measured by the server's own latency histograms (handler wall
	// time, no client retries; quantiles are histogram bucket upper
	// bounds, so a true p99 of v reports as v <= estimate < 2v).
	ServerUpload      EndpointSLO `json:"server_upload"`
	ServerInvestigate EndpointSLO `json:"server_investigate"`
	// IngestShed, InvestigateShed, and EvidenceShed mirror the
	// server's admission-gate shed counters at run end.
	IngestShed      uint64 `json:"ingest_shed"`
	InvestigateShed uint64 `json:"investigate_shed"`
	EvidenceShed    uint64 `json:"evidence_shed"`
	// Client429s counts 429 responses the clients observed; it must
	// equal the summed shed counters.
	Client429s uint64 `json:"client_429s"`
	// ZeroAckedLoss reports the acked-equals-stored invariant (on
	// both the faulted system and the baseline).
	ZeroAckedLoss bool `json:"zero_acked_loss"`
	// ProbesCompared counts InvestigateReport probes cross-checked
	// bit-for-bit against the unfaulted baseline (hot, concurrent,
	// and final-pass).
	ProbesCompared int `json:"probes_compared"`
	// StalledFsyncs counts WAL fsyncs the fault plan delayed.
	StalledFsyncs int64 `json:"stalled_fsyncs"`
	// PartitionRejects counts evidence-board polls correctly refused
	// during the partition window.
	PartitionRejects int `json:"partition_rejects"`
	// Incidents counts evidence-demand spikes fired.
	Incidents int `json:"incidents"`
	// SnapshotsWritten and SnapshotsSkipped count checkpoint cadence
	// hits and fault-plan pauses.
	SnapshotsWritten int `json:"snapshots_written"`
	SnapshotsSkipped int `json:"snapshots_skipped"`
	// ProbeDigest is a SHA-256 over every final-pass probe outcome —
	// the deterministic fingerprint of the run's served state.
	ProbeDigest string `json:"probe_digest"`
	// Violations lists violated SLO latency objectives (structural
	// invariant violations abort the run with an error instead).
	Violations []string `json:"violations"`
}

// Fingerprint returns the run's deterministic digest: two runs with
// the same configuration and seed must return identical strings.
func (r *ScenarioResult) Fingerprint() string {
	return fmt.Sprintf("cities=%d minutes=%d seed=%d offered=%d probes=%s",
		r.Cities, r.Minutes, r.Seed, r.OfferedVPs, r.ProbeDigest)
}

// Rows renders the result in the bench binary's row format.
func (r *ScenarioResult) Rows() []string {
	loss := "zero acked-batch loss"
	if !r.ZeroAckedLoss {
		loss = "ACKED LOSS DETECTED"
	}
	return []string{
		fmt.Sprintf("%d cities, %d minutes, %d vehicles: %d VPs offered, %d acked in %d batches (%s)",
			r.Cities, r.Minutes, r.VehiclesTotal, r.OfferedVPs, r.AckedVPs, r.AckedBatches, loss),
		fmt.Sprintf("upload SLO: %d requests, p50 %.1f ms, p99 %.1f ms (retries included)",
			r.Upload.Requests, r.Upload.P50MS, r.Upload.P99MS),
		fmt.Sprintf("investigate SLO: %d requests, p50 %.1f ms, p99 %.1f ms; evidence polls: %d, p99 %.1f ms",
			r.Investigate.Requests, r.Investigate.P50MS, r.Investigate.P99MS,
			r.EvidencePoll.Requests, r.EvidencePoll.P99MS),
		fmt.Sprintf("server-side: upload %d requests p99 %.1f ms, investigate %d requests p99 %.1f ms (histogram upper bounds)",
			r.ServerUpload.Requests, r.ServerUpload.P99MS,
			r.ServerInvestigate.Requests, r.ServerInvestigate.P99MS),
		fmt.Sprintf("shed: ingest %d, investigate %d, evidence %d (clients saw %d x 429); %d fsyncs stalled",
			r.IngestShed, r.InvestigateShed, r.EvidenceShed, r.Client429s, r.StalledFsyncs),
		fmt.Sprintf("faults ridden out: %d incidents, %d partition rejects, %d snapshots written, %d paused",
			r.Incidents, r.PartitionRejects, r.SnapshotsWritten, r.SnapshotsSkipped),
		fmt.Sprintf("probes vs unfaulted baseline: %d compared, all bit-for-bit; digest %s",
			r.ProbesCompared, r.ProbeDigest[:16]),
	}
}

// scenarioCity is one city's engine state.
type scenarioCity struct {
	run  *CityRun
	site geo.Rect
	// join and leave bound each vehicle's presence: the vehicle is in
	// town for minutes [join, leave).
	join, leave []int
}

// uploadJob is one batched upload in flight.
type uploadJob struct {
	profiles []*vp.Profile
	// mirror marks the batch's first (unique) submission, the one
	// replayed into the baseline; saturation duplicates do not mirror.
	mirror bool
}

// within reports whether minute m falls in [from, from+n).
func within(m, from, n int) bool { return n > 0 && m >= from && m < from+n }

// latencyPercentilesMS computes p50/p99 of lat in milliseconds.
func latencyPercentilesMS(lat []time.Duration) (p50, p99 float64) {
	if len(lat) == 0 {
		return 0, 0
	}
	s := make([]time.Duration, len(lat))
	copy(s, lat)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	return float64(s[len(s)/2].Microseconds()) / 1e3,
		float64(s[len(s)*99/100].Microseconds()) / 1e3
}

// outcomeFromFullReport converts a direct server report into the
// client's wire-decoded outcome shape for bit-for-bit comparison.
func outcomeFromFullReport(rep *server.FullReport) *client.InvestigationOutcome {
	out := &client.InvestigationOutcome{
		Members: rep.Members, Edges: rep.Edges, InSite: rep.InSite,
		Verdicts: make([]client.VPVerdict, len(rep.Verdicts)),
	}
	for i, v := range rep.Verdicts {
		out.Verdicts[i] = client.VPVerdict{
			ID: v.ID, Trusted: v.Trusted, InSite: v.InSite,
			Legitimate: v.Legitimate, Hops: v.Hops,
		}
	}
	return out
}

// Scenario runs one declaratively composed city-scale scenario and
// returns its SLO report; any violated structural invariant — acked
// loss, probe divergence from the unfaulted baseline, a shed
// investigation, an unexplained 429, a failed incident — returns an
// error instead.
func Scenario(cfg ScenarioConfig) (*ScenarioResult, error) {
	cfg = cfg.withDefaults()
	dir := cfg.Dir
	if dir == "" {
		var err error
		if dir, err = os.MkdirTemp("", "viewmap-scenario-*"); err != nil {
			return nil, err
		}
		defer os.RemoveAll(dir)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	// Build the cities on disjoint footprints; one shared horizon.
	cities := make([]*scenarioCity, len(cfg.Cities))
	var nextOriginX float64
	totalVehicles := 0
	for i := range cfg.Cities {
		cc := cfg.Cities[i]
		cc.Minutes = cfg.Minutes
		if cc.Seed == 0 {
			cc.Seed = cfg.Seed*31 + int64(i)
		}
		if i > 0 && cc.OriginX == 0 && cc.OriginY == 0 {
			cc.OriginX = nextOriginX
		}
		run, err := NewCityRun(cc)
		if err != nil {
			return nil, fmt.Errorf("sim: scenario city %d: %w", i, err)
		}
		area := run.Area()
		nextOriginX = area.Max.X + 2000 // leave a gap beyond DSRC range
		cs := &scenarioCity{
			run:  run,
			site: geo.RectAround(area.Center(), 2*run.Cfg.SpacingM),
			join: make([]int, cc.Vehicles),
			leave: func() []int {
				l := make([]int, cc.Vehicles)
				for v := range l {
					l[v] = cfg.Minutes
				}
				return l
			}(),
		}
		// Churn plan: a leaver departs somewhere in the back half, a
		// joiner arrives somewhere in the front half. Leavers and
		// joiners are disjoint so every vehicle is present for at
		// least one minute.
		perm := rng.Perm(cc.Vehicles)
		nLeave, nJoin := 0, 0
		if cfg.ChurnLeaveFrac > 0 {
			nLeave = int(cfg.ChurnLeaveFrac * float64(cc.Vehicles))
		}
		if cfg.ChurnJoinFrac > 0 {
			nJoin = int(cfg.ChurnJoinFrac * float64(cc.Vehicles))
		}
		for k := 0; k < nLeave && k < len(perm); k++ {
			cs.leave[perm[k]] = cfg.Minutes/2 + rng.Intn(max(cfg.Minutes-cfg.Minutes/2, 1))
		}
		for k := nLeave; k < nLeave+nJoin && k < len(perm); k++ {
			cs.join[perm[k]] = 1 + rng.Intn(max(cfg.Minutes/2, 1))
		}
		cities[i] = cs
		totalVehicles += cc.Vehicles
	}

	bank, err := benchBank()
	if err != nil {
		return nil, err
	}

	// Fault-plan plumbing: the fsync stall rides the durability
	// config's injection seam; the partition rides a front-side
	// middleware. Both are armed and disarmed by minute index.
	var stallNS, stalled atomic.Int64
	var partitioned atomic.Bool
	dcfg := server.DurabilityConfig{
		WALPath:           filepath.Join(dir, "ingest.wal"),
		SnapshotInterval:  0,         // checkpoints driven by the scenario
		RetentionInterval: time.Hour, // no background sweeps
		Fsync: func(f *os.File) error {
			if d := stallNS.Load(); d > 0 {
				stalled.Add(1)
				time.Sleep(time.Duration(d))
			}
			return f.Sync()
		},
	}
	sys, err := server.OpenDurable(server.Config{
		AuthorityToken: "bench", Bank: bank, Overload: cfg.Overload,
	}, dcfg)
	if err != nil {
		return nil, err
	}
	defer func() {
		if sys != nil {
			sys.Close()
		}
	}()
	baseline, err := server.NewSystem(server.Config{AuthorityToken: "bench", Bank: bank})
	if err != nil {
		return nil, err
	}
	defer baseline.Close()

	handler := server.Handler(sys)
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if partitioned.Load() && strings.HasPrefix(r.URL.Path, "/v1/evidence/") {
			http.Error(w, `{"error":"evidence board unreachable (partition)"}`, http.StatusServiceUnavailable)
			return
		}
		handler.ServeHTTP(w, r)
	}))
	defer srv.Close()
	api, err := client.NewAPI(srv.URL, srv.Client())
	if err != nil {
		return nil, err
	}
	// Generous, time-compressed retry policy: a shed batch retries
	// until admitted (capping each backoff at 20 ms keeps the
	// simulated day short), so the acked profile set — and with it the
	// fingerprint — is deterministic; only the shed counters vary.
	api.SetRetryPolicy(200, 2*time.Millisecond, func(d time.Duration) {
		if d > 20*time.Millisecond {
			d = 20 * time.Millisecond
		}
		time.Sleep(d)
	})

	res := &ScenarioResult{
		Cities: len(cities), Minutes: cfg.Minutes, Seed: cfg.Seed,
		VehiclesTotal: totalVehicles, Violations: []string{},
	}
	var latMu sync.Mutex
	var uploadLat, probeLat, evLat []time.Duration

	// probeCompare cross-checks one (city, minute) report served by
	// the faulted system over HTTP against the baseline's direct
	// report.
	probeCompare := func(cs *scenarioCity, m int64, recordLat bool) error {
		t0 := time.Now()
		got, err := api.InvestigateReport("bench",
			cs.site.Min.X, cs.site.Min.Y, cs.site.Max.X, cs.site.Max.Y, m)
		if err != nil {
			return fmt.Errorf("sim: scenario probe minute %d: %w", m, err)
		}
		if recordLat {
			latMu.Lock()
			probeLat = append(probeLat, time.Since(t0))
			latMu.Unlock()
		}
		rep, err := baseline.InvestigateReport("bench", cs.site, m)
		if err != nil {
			return fmt.Errorf("sim: scenario baseline probe minute %d: %w", m, err)
		}
		if want := outcomeFromFullReport(rep); !reflect.DeepEqual(got, want) {
			return fmt.Errorf("sim: minute %d: faulted verdicts diverge from the unfaulted baseline (%d vs %d members)",
				m, got.Members, want.Members)
		}
		latMu.Lock()
		res.ProbesCompared++
		latMu.Unlock()
		return nil
	}

	for m := 0; m < cfg.Minutes; m++ {
		// Arm this minute's faults.
		inStall := within(m, cfg.Faults.FsyncStallFrom, cfg.Faults.FsyncStallMinutes)
		if inStall {
			stallNS.Store(int64(cfg.Faults.FsyncStallDelay))
		} else {
			stallNS.Store(0)
		}
		partitioned.Store(within(m, cfg.Faults.PartitionFrom, cfg.Faults.PartitionMinutes))

		// Compose the minute's offered load: per city, the diurnal
		// fraction of the churn-present fleet fabricates and uploads.
		var jobs []uploadJob
		for _, cs := range cities {
			mp, err := cs.run.ProfilesForMinute(m, false)
			if err != nil {
				return nil, err
			}
			var present []int
			for v := 0; v < cs.run.Cfg.Vehicles; v++ {
				if cs.join[v] <= m && m < cs.leave[v] {
					present = append(present, v)
				}
			}
			frac := diurnalFraction(cfg.Diurnal, m, cfg.Minutes)
			want := int(math.Ceil(frac * float64(len(present))))
			if want < 2 {
				want = min(2, len(present))
			}
			perm := rng.Perm(len(present))
			active := make([]*vp.Profile, 0, want)
			for _, pi := range perm[:want] {
				active = append(active, mp.Profiles[present[pi]])
			}
			ti := core.MarkTrustedNearest(active, cs.site.Center())
			trustedWire := active[ti].Marshal()
			// The trusted anchor lands first (retried through the
			// gate like any upload), then mirrors to the baseline.
			if err := api.UploadTrustedVP("bench", active[ti]); err != nil {
				return nil, fmt.Errorf("sim: scenario trusted upload minute %d: %w", m, err)
			}
			if err := baseline.UploadTrustedVP("bench", trustedWire); err != nil {
				return nil, err
			}
			res.OfferedVPs++
			res.AckedVPs++
			anonProfiles := make([]*vp.Profile, 0, len(active)-1)
			for i, p := range active {
				if i != ti {
					anonProfiles = append(anonProfiles, p)
				}
			}
			for off := 0; off < len(anonProfiles); off += cfg.BatchSize {
				end := min(off+cfg.BatchSize, len(anonProfiles))
				jobs = append(jobs, uploadJob{profiles: anonProfiles[off:end], mirror: true})
				res.OfferedVPs += end - off
			}
		}
		// Burst-ring saturation: duplicate storms ride the slow-disk
		// window.
		if inStall && cfg.Faults.SaturateFactor > 0 {
			unique := len(jobs)
			for k := 0; k < cfg.Faults.SaturateFactor; k++ {
				for _, j := range jobs[:unique] {
					jobs = append(jobs, uploadJob{profiles: j.profiles})
				}
			}
		}
		rng.Shuffle(len(jobs), func(i, j int) { jobs[i], jobs[j] = jobs[j], jobs[i] })

		// Drain the minute concurrently; while it drains, a prober
		// keeps investigating the previous minute through the same
		// admission layer — the "answers during the storm" invariant.
		jobCh := make(chan uploadJob)
		errCh := make(chan error, cfg.Uploaders+1)
		var wg sync.WaitGroup
		for u := 0; u < cfg.Uploaders; u++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for j := range jobCh {
					t0 := time.Now()
					bres, err := api.UploadVPBatch(j.profiles)
					if err != nil {
						errCh <- fmt.Errorf("sim: scenario batch upload minute %d: %w", m, err)
						return
					}
					lat := time.Since(t0)
					if bres.Rejected != 0 || bres.Stored+bres.Duplicates != len(j.profiles) {
						errCh <- fmt.Errorf("sim: scenario batch result %+v for %d profiles", bres, len(j.profiles))
						return
					}
					latMu.Lock()
					uploadLat = append(uploadLat, lat)
					if j.mirror {
						res.AckedBatches++
						res.AckedVPs += len(j.profiles)
					}
					latMu.Unlock()
					if j.mirror {
						if _, err := baseline.UploadVPBatch(vp.MarshalBatch(j.profiles)); err != nil {
							errCh <- fmt.Errorf("sim: scenario baseline mirror minute %d: %w", m, err)
							return
						}
					}
				}
			}()
		}
		if m > 0 {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for _, cs := range cities {
					if err := probeCompare(cs, int64(m-1), true); err != nil {
						errCh <- err
						return
					}
				}
			}()
		}
		for _, j := range jobs {
			jobCh <- j
		}
		close(jobCh)
		wg.Wait()
		select {
		case err := <-errCh:
			return nil, err
		default:
		}

		// Hot probe: the minute that just landed, on both systems.
		for _, cs := range cities {
			if err := probeCompare(cs, int64(m), true); err != nil {
				return nil, err
			}
		}

		// Incidents: solicitation plus the correlated board-poll spike.
		for _, inc := range cfg.Incidents {
			if inc.Minute != m {
				continue
			}
			if inc.City < 0 || inc.City >= len(cities) {
				return nil, fmt.Errorf("sim: incident city %d out of range", inc.City)
			}
			cs := cities[inc.City]
			units := inc.Units
			if units <= 0 {
				units = 2
			}
			if _, err := api.OpenSolicitation("bench",
				cs.site.Min.X, cs.site.Min.Y, cs.site.Max.X, cs.site.Max.Y,
				int64(m), units); err != nil {
				return nil, fmt.Errorf("sim: incident solicitation minute %d: %w", m, err)
			}
			res.Incidents++
			polls := inc.Polls
			if polls <= 0 {
				polls = 4
			}
			var pw sync.WaitGroup
			pollErr := make(chan error, polls)
			for p := 0; p < polls; p++ {
				pw.Add(1)
				go func() {
					defer pw.Done()
					t0 := time.Now()
					if _, err := api.EvidenceBoard(); err != nil {
						pollErr <- fmt.Errorf("sim: incident board poll minute %d: %w", m, err)
						return
					}
					if _, err := api.Solicitations(); err != nil {
						pollErr <- fmt.Errorf("sim: incident solicitation poll minute %d: %w", m, err)
						return
					}
					latMu.Lock()
					evLat = append(evLat, time.Since(t0))
					latMu.Unlock()
				}()
			}
			pw.Wait()
			select {
			case err := <-pollErr:
				return nil, err
			default:
			}
		}

		// Partition check: inside the window the board must be
		// unreachable — a poll that succeeds means the partition
		// middleware leaked.
		if partitioned.Load() {
			if _, err := api.EvidenceBoard(); err == nil {
				return nil, fmt.Errorf("sim: minute %d: evidence board answered through the partition", m)
			}
			res.PartitionRejects++
		}

		// Checkpoint cadence, honoring the snapshotter pause.
		if (m+1)%cfg.SnapshotEvery == 0 {
			if within(m, cfg.Faults.SnapshotPauseFrom, cfg.Faults.SnapshotPauseMinutes) {
				res.SnapshotsSkipped++
			} else {
				if err := sys.Checkpoint(); err != nil {
					return nil, err
				}
				res.SnapshotsWritten++
			}
		}
	}

	// Disarm every fault for the final grading pass.
	stallNS.Store(0)
	partitioned.Store(false)
	res.StalledFsyncs = stalled.Load()

	// Final pass: every (city, minute) must answer bit-for-bit like
	// the baseline; the digest over these outcomes is the fingerprint.
	h := sha256.New()
	for ci, cs := range cities {
		for m := 0; m < cfg.Minutes; m++ {
			if err := probeCompare(cs, int64(m), false); err != nil {
				return nil, fmt.Errorf("sim: final pass: %w", err)
			}
			rep, err := baseline.InvestigateReport("bench", cs.site, int64(m))
			if err != nil {
				return nil, err
			}
			binary.Write(h, binary.BigEndian, int64(ci))
			binary.Write(h, binary.BigEndian, int64(m))
			binary.Write(h, binary.BigEndian, int64(rep.Members))
			binary.Write(h, binary.BigEndian, int64(rep.Edges))
			binary.Write(h, binary.BigEndian, int64(rep.InSite))
			for _, v := range rep.Verdicts {
				h.Write(v.ID[:])
				binary.Write(h, binary.BigEndian, v.Legitimate)
				binary.Write(h, binary.BigEndian, v.Trusted)
				binary.Write(h, binary.BigEndian, v.InSite)
				binary.Write(h, binary.BigEndian, int64(v.Hops))
			}
		}
	}
	res.ProbeDigest = hex.EncodeToString(h.Sum(nil))

	// Structural invariants.
	stats, err := api.StatsFull()
	if err != nil {
		return nil, err
	}
	res.IngestShed = stats.Overload.Ingest.Shed
	res.InvestigateShed = stats.Overload.Investigate.Shed
	res.EvidenceShed = stats.Overload.Evidence.Shed
	res.Client429s = api.Seen429()
	if res.InvestigateShed != 0 {
		return nil, fmt.Errorf("sim: %d investigations shed — the investigate gate must never starve", res.InvestigateShed)
	}
	if total := res.IngestShed + res.EvidenceShed; res.Client429s != total {
		return nil, fmt.Errorf("sim: clients saw %d x 429 but the server shed %d — counters diverge", res.Client429s, total)
	}
	sysLen, baseLen := sys.Store().Len(), baseline.Store().Len()
	res.ZeroAckedLoss = sysLen == res.OfferedVPs && baseLen == res.OfferedVPs && res.AckedVPs == res.OfferedVPs
	if !res.ZeroAckedLoss {
		return nil, fmt.Errorf("sim: acked loss: offered %d, acked %d, stored %d (baseline %d)",
			res.OfferedVPs, res.AckedVPs, sysLen, baseLen)
	}

	// SLO grading.
	res.Upload.Requests = len(uploadLat)
	res.Upload.P50MS, res.Upload.P99MS = latencyPercentilesMS(uploadLat)
	res.Investigate.Requests = len(probeLat)
	res.Investigate.P50MS, res.Investigate.P99MS = latencyPercentilesMS(probeLat)
	res.EvidencePoll.Requests = len(evLat)
	res.EvidencePoll.P50MS, res.EvidencePoll.P99MS = latencyPercentilesMS(evLat)
	// Server-side view of the same paths, from the endpoint histograms
	// already fetched above.
	for _, l := range stats.Latency {
		slo := EndpointSLO{Requests: int(l.Requests), P50MS: l.P50MS, P99MS: l.P99MS}
		switch l.Endpoint {
		case "/v1/vp/batch":
			res.ServerUpload = slo
		case "/v1/investigate/report":
			res.ServerInvestigate = slo
		}
	}
	if lim := cfg.SLO.UploadP99; lim > 0 && res.Upload.P99MS > float64(lim.Microseconds())/1e3 {
		res.Violations = append(res.Violations, fmt.Sprintf("upload p99 %.1f ms exceeds %v", res.Upload.P99MS, lim))
	}
	if lim := cfg.SLO.InvestigateP99; lim > 0 && res.Investigate.P99MS > float64(lim.Microseconds())/1e3 {
		res.Violations = append(res.Violations, fmt.Sprintf("investigate p99 %.1f ms exceeds %v", res.Investigate.P99MS, lim))
	}
	if lim := cfg.SLO.EvidenceP99; lim > 0 && res.EvidencePoll.P99MS > float64(lim.Microseconds())/1e3 {
		res.Violations = append(res.Violations, fmt.Sprintf("evidence p99 %.1f ms exceeds %v", res.EvidencePoll.P99MS, lim))
	}
	if len(res.Violations) > 0 {
		return res, fmt.Errorf("sim: SLO violated: %s", strings.Join(res.Violations, "; "))
	}

	err = sys.Close()
	sys = nil
	return res, err
}

// diurnalFraction evaluates the activity curve at minute m: the
// configured per-minute series (cycled), or the built-in sinusoidal
// day between 0.2 and 1.0.
func diurnalFraction(curve []float64, m, minutes int) float64 {
	if len(curve) > 0 {
		f := curve[m%len(curve)]
		if f <= 0 {
			return 0.1
		}
		if f > 1 {
			return 1
		}
		return f
	}
	return 0.6 + 0.4*math.Sin(2*math.Pi*float64(m)/float64(max(minutes, 2)))
}
