package sim

import "testing"

// A small evidence-pipeline run: every stage must complete, tampered
// submissions must bounce, and the counters must reconcile. The -race
// CI job runs this with concurrent deliveries.
func TestEvidencePipelineSmall(t *testing.T) {
	res, err := Evidence(EvidenceConfig{
		Convoys: 2, CiviliansPerConvoy: 2, TamperEvery: 4,
		Units: 2, Workers: 4, FrameW: 160, FrameH: 90, Seed: 11,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Owners != 4 || res.Solicited < 4 {
		t.Fatalf("owners %d, solicited %d", res.Owners, res.Solicited)
	}
	if res.Accepted != 3 || res.Rejected != 1 {
		t.Fatalf("accepted %d rejected %d, want 3/1", res.Accepted, res.Rejected)
	}
	if res.Minted != 6 || res.Redeemed != 3 || res.DoubleSpendsRefused != 3 {
		t.Fatalf("payout counters %+v", res)
	}
	if res.Released != 3 || res.RedactedRegions < res.Released*60 {
		t.Fatalf("release counters: %d released, %d regions", res.Released, res.RedactedRegions)
	}
	for _, row := range res.Rows() {
		if row == "" {
			t.Fatal("empty report row")
		}
	}
}
