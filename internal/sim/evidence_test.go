package sim

import (
	"bytes"
	"crypto/rand"
	"errors"
	"math/big"
	"testing"

	"viewmap/internal/anon"
	"viewmap/internal/evidence"
	"viewmap/internal/reward"
	"viewmap/internal/server"
	"viewmap/internal/vp"
)

// A small evidence-pipeline run: every stage must complete, tampered
// submissions must bounce, and the counters must reconcile. The -race
// CI job runs this with concurrent deliveries.
func TestEvidencePipelineSmall(t *testing.T) {
	res, err := Evidence(EvidenceConfig{
		Convoys: 2, CiviliansPerConvoy: 2, TamperEvery: 4,
		Units: 2, Workers: 4, FrameW: 160, FrameH: 90, Seed: 11,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Owners != 4 || res.Solicited < 4 {
		t.Fatalf("owners %d, solicited %d", res.Owners, res.Solicited)
	}
	if res.Accepted != 3 || res.Rejected != 1 {
		t.Fatalf("accepted %d rejected %d, want 3/1", res.Accepted, res.Rejected)
	}
	if res.Minted != 6 || res.Redeemed != 3 || res.DoubleSpendsRefused != 3 {
		t.Fatalf("payout counters %+v", res)
	}
	if res.Released != 3 || res.RedactedRegions < res.Released*60 {
		t.Fatalf("release counters: %d released, %d regions", res.Released, res.RedactedRegions)
	}
	for _, row := range res.Rows() {
		if row == "" {
			t.Fatal("empty report row")
		}
	}
}

// deliveredEvidenceSystem drives the smallest honest pipeline to the
// point where one delivery is accepted: a one-civilian convoy (shared
// with the adversarial-serving scenario, here through direct System
// calls) records and uploads, a solicitation opens at the given
// offer, and the civilian delivers its video.
func deliveredEvidenceSystem(t *testing.T, units int) (*server.System, *anon.Sessions, convoyOwner) {
	t.Helper()
	sys, err := server.NewSystem(server.Config{AuthorityToken: "edge", BankBits: 1024})
	if err != nil {
		t.Fatal(err)
	}
	owners, err := testConvoyOwners(1, 31,
		func(p *vp.Profile) error { return sys.UploadTrustedVP("edge", p.Marshal()) },
		func(p *vp.Profile) error { return sys.UploadVP(p.Marshal()) })
	if err != nil {
		t.Fatal(err)
	}
	owner := owners[0]
	if _, err := sys.OpenSolicitation("edge", convoySite, 0, units); err != nil {
		t.Fatal(err)
	}
	sessions := anon.NewSessions()
	sid, err := sessions.New()
	if err != nil {
		t.Fatal(err)
	}
	if got, err := sys.Evidence().Deliver(sid, owner.id, owner.q, owner.chunks); err != nil || got != units {
		t.Fatalf("honest delivery: units %d, err %v", got, err)
	}
	return sys, sessions, owner
}

// TestEvidenceDeliverClosedSolicitation covers the delivery-after-
// close edge: once a solicitation entry accepted a video, further
// deliveries — even the identical honest bytes under a fresh session
// and a valid ownership proof — are refused as already delivered.
func TestEvidenceDeliverClosedSolicitation(t *testing.T) {
	sys, sessions, owner := deliveredEvidenceSystem(t, 2)
	sid, err := sessions.New()
	if err != nil {
		t.Fatal(err)
	}
	_, err = sys.Evidence().Deliver(sid, owner.id, owner.q, owner.chunks)
	if !errors.Is(err, evidence.ErrAlreadyDelivered) {
		t.Fatalf("redelivery into a closed solicitation: err = %v, want ErrAlreadyDelivered", err)
	}
	// The accepted delivery must be unaffected: payout still open.
	if st := sys.Evidence().StatsSnapshot(); st.DeliveriesAccepted != 1 {
		t.Fatalf("accepted count %d after refused redelivery, want 1", st.DeliveriesAccepted)
	}
}

// TestEvidencePayoutAfterRestart covers the restart edge: an owner
// whose delivery was accepted before a snapshot must still be able to
// withdraw the full entitlement from the restored system, the minted
// cash must redeem there, and units spent before the restart must
// stay spent.
func TestEvidencePayoutAfterRestart(t *testing.T) {
	const units = 2
	sys, sessions, owner := deliveredEvidenceSystem(t, units)

	// Spend one unit before the snapshot; one stays entitled.
	evOwner := &evidenceOwner{id: owner.id, q: owner.q}
	preCash, err := withdrawEvidence(sys, sessions, evOwner, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Evidence().Redeem(preCash[0]); err != nil {
		t.Fatal(err)
	}

	var state bytes.Buffer
	if err := sys.SaveTo(&state); err != nil {
		t.Fatal(err)
	}
	restored, err := server.NewSystem(server.Config{AuthorityToken: "edge", BankBits: 1024})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := restored.LoadFrom(bytes.NewReader(state.Bytes())); err != nil {
		t.Fatal(err)
	}

	// The remaining unit withdraws and redeems on the restored system
	// (the restored bank carries the pre-restart keypair, so the new
	// signature verifies under the same key the old cash was minted
	// with).
	postCash, err := withdrawEvidence(restored, sessions, evOwner, 1)
	if err != nil {
		t.Fatalf("post-restart withdrawal: %v", err)
	}
	if err := restored.Evidence().Redeem(postCash[0]); err != nil {
		t.Fatalf("post-restart redemption: %v", err)
	}
	// The entitlement is now exhausted…
	if _, err := withdrawEvidence(restored, sessions, evOwner, 1); err == nil {
		t.Fatal("over-withdrawal after restart succeeded")
	}
	// …and the pre-restart spend stays spent.
	if err := restored.Evidence().Redeem(preCash[0]); !errors.Is(err, reward.ErrDoubleSpend) {
		t.Fatalf("pre-restart unit re-redeemed: err = %v, want ErrDoubleSpend", err)
	}
}

// TestEvidenceRedeemNeverMinted covers the forged-cash edge: a unit
// the bank never signed — random message, random "signature" — is
// refused as a bad signature, not recorded as spent.
func TestEvidenceRedeemNeverMinted(t *testing.T) {
	sys, _, _ := deliveredEvidenceSystem(t, 1)
	m := make([]byte, 32)
	if _, err := rand.Read(m); err != nil {
		t.Fatal(err)
	}
	forged := &reward.Cash{M: m, Sig: big.NewInt(1234567)}
	if err := sys.Evidence().Redeem(forged); !errors.Is(err, reward.ErrBadSignature) {
		t.Fatalf("never-minted unit: err = %v, want ErrBadSignature", err)
	}
	if st := sys.Evidence().StatsSnapshot(); st.UnitsRedeemed != 0 {
		t.Fatalf("forged unit counted as redeemed (%d)", st.UnitsRedeemed)
	}
}
