package sim

import (
	"fmt"
	"os"
	"reflect"
	"time"

	"viewmap/internal/core"
	"viewmap/internal/geo"
	"viewmap/internal/server"
	"viewmap/internal/vp"
)

// This file benchmarks the system as a continuously running service: a
// roadnet-driven city fleet streams VP uploads minute after minute
// into a durable system (ingest WAL, periodic snapshots, minute-window
// retention), while an authority interleaves investigations against
// hot minutes and against minutes long since evicted to disk. Halfway
// through, the process "crashes" (the WAL handle is dropped without a
// final snapshot) and recovers from the log — and the run only passes
// if, at every probe, the durable system's per-VP verdicts are
// bit-for-bit identical to an always-resident, never-crashed baseline,
// the resident shard count stays within the configured horizon, and no
// acknowledged batch is lost across the crash.

// ContinuousConfig parameterizes the continuous-operation workload.
type ContinuousConfig struct {
	// Vehicles is the city fleet size; zero selects 30.
	Vehicles int
	// Minutes is how many unit-time windows the fleet streams; zero
	// selects 10.
	Minutes int
	// RetentionMinutes is the resident horizon; zero selects 3.
	RetentionMinutes int
	// ResidentColdMinutes bounds reloaded cold minutes; zero selects 1.
	ResidentColdMinutes int
	// BatchSize is profiles per batched upload; zero selects 32.
	BatchSize int
	// SnapshotEvery is the checkpoint cadence in minutes; zero
	// selects 4.
	SnapshotEvery int
	// CrashAt is the minute after which the crash+recover happens;
	// zero selects Minutes/2, negative disables the crash.
	CrashAt int
	// Dir is the durability directory; empty creates (and removes) a
	// temporary one.
	Dir string
	// Seed drives the trace and the trajectories.
	Seed int64
}

func (c ContinuousConfig) withDefaults() ContinuousConfig {
	if c.Vehicles <= 0 {
		c.Vehicles = 30
	}
	if c.Minutes <= 0 {
		c.Minutes = 10
	}
	if c.RetentionMinutes <= 0 {
		c.RetentionMinutes = 3
	}
	if c.ResidentColdMinutes <= 0 {
		c.ResidentColdMinutes = 1
	}
	if c.BatchSize <= 0 {
		c.BatchSize = 32
	}
	if c.SnapshotEvery <= 0 {
		c.SnapshotEvery = 4
	}
	if c.CrashAt == 0 {
		c.CrashAt = c.Minutes / 2
	}
	return c
}

// ContinuousResult reports one continuous-operation run.
type ContinuousResult struct {
	// Minutes and Ingested count the stream.
	Minutes, Ingested int
	// IngestRate is acknowledged profiles per second on the durable
	// system — WAL append, fsync, and link-on-ingest included.
	IngestRate float64
	// MaxResident is the highest resident shard count ever observed;
	// the run fails outright if it exceeds the horizon plus the cold
	// LRU bound.
	MaxResident int
	// EvictedMinutes is the final count of minutes living only on disk.
	EvictedMinutes int
	// HotChecks and ColdChecks count verdict-equality probes against
	// resident and evicted minutes respectively (every one passed, or
	// the run errored).
	HotChecks, ColdChecks int
	// Snapshots counts checkpoints written (WAL truncated after each).
	Snapshots int
	// CrashMinute is when the crash+recover happened (-1 = disabled).
	CrashMinute int
	// Replayed counts WAL records replayed at recovery.
	Replayed int
	// RecoveredVPs is the store size immediately after recovery; the
	// run fails if any acknowledged profile is missing.
	RecoveredVPs int
}

// Continuous runs the durable continuous-operation workload described
// above and returns its measurements; any invariant violation —
// verdict divergence, resident-set overflow, or an acknowledged batch
// lost across the crash — returns an error instead.
func Continuous(cfg ContinuousConfig) (*ContinuousResult, error) {
	cfg = cfg.withDefaults()
	dir := cfg.Dir
	if dir == "" {
		var err error
		if dir, err = os.MkdirTemp("", "viewmap-continuous-*"); err != nil {
			return nil, err
		}
		defer os.RemoveAll(dir)
	}

	// A compact street grid keeps the fleet dense enough to viewlink.
	city, err := NewCityRun(CityConfig{
		Vehicles: cfg.Vehicles, Minutes: cfg.Minutes,
		BlocksX: 8, BlocksY: 8, SpacingM: 150,
		Seed: cfg.Seed,
	})
	if err != nil {
		return nil, err
	}
	area := geo.NewRect(geo.Pt(0, 0), geo.Pt(8*150, 8*150))
	site := geo.RectAround(area.Center(), 300)

	dcfg := server.DurabilityConfig{
		WALPath:             dir + "/ingest.wal",
		SnapshotInterval:    0, // checkpoints driven by the workload
		RetentionMinutes:    cfg.RetentionMinutes,
		RetentionInterval:   time.Hour, // sweeps driven by the workload
		ResidentColdMinutes: cfg.ResidentColdMinutes,
	}
	sys, err := server.OpenDurable(server.Config{AuthorityToken: "bench", BankBits: 1024}, dcfg)
	if err != nil {
		return nil, err
	}
	defer func() {
		if sys != nil {
			sys.Close()
		}
	}()
	baseline, err := server.NewSystem(server.Config{AuthorityToken: "bench", BankBits: 1024})
	if err != nil {
		return nil, err
	}

	res := &ContinuousResult{Minutes: cfg.Minutes, CrashMinute: -1}
	residentCap := cfg.RetentionMinutes + cfg.ResidentColdMinutes + 1 // +1 for the minute mid-sweep
	var ingestTime time.Duration

	// checkEqual probes one minute on both systems and requires
	// bit-for-bit identical per-VP verdicts.
	checkEqual := func(m int64) error {
		got, err := sys.InvestigateReport("bench", site, m)
		if err != nil {
			return fmt.Errorf("sim: durable report minute %d: %w", m, err)
		}
		want, err := baseline.InvestigateReport("bench", site, m)
		if err != nil {
			return fmt.Errorf("sim: baseline report minute %d: %w", m, err)
		}
		if !reflect.DeepEqual(got, want) {
			return fmt.Errorf("sim: minute %d: durable verdicts diverge from the always-resident baseline (%d vs %d members)",
				m, got.Members, want.Members)
		}
		return nil
	}

	for m := 0; m < cfg.Minutes; m++ {
		mp, err := city.ProfilesForMinute(m, false)
		if err != nil {
			return nil, err
		}
		ti := core.MarkTrustedNearest(mp.Profiles, area.Center())
		trustedWire := mp.Profiles[ti].Marshal()
		anon := make([]*vp.Profile, 0, len(mp.Profiles)-1)
		for i, p := range mp.Profiles {
			if i != ti {
				anon = append(anon, p)
			}
		}

		// The acknowledged stream, timed against the durable system:
		// every ack waited for its WAL fsync and its link-on-ingest.
		start := time.Now()
		if err := sys.UploadTrustedVP("bench", trustedWire); err != nil {
			return nil, err
		}
		for off := 0; off < len(anon); off += cfg.BatchSize {
			end := min(off+cfg.BatchSize, len(anon))
			batch, err := sys.UploadVPBatch(vp.MarshalBatch(anon[off:end]))
			if err != nil {
				return nil, err
			}
			res.Ingested += batch.Stored
		}
		ingestTime += time.Since(start)
		res.Ingested++ // the trusted VP

		// Mirror into the baseline (untimed).
		if err := baseline.UploadTrustedVP("bench", trustedWire); err != nil {
			return nil, err
		}
		for off := 0; off < len(anon); off += cfg.BatchSize {
			end := min(off+cfg.BatchSize, len(anon))
			if _, err := baseline.UploadVPBatch(vp.MarshalBatch(anon[off:end])); err != nil {
				return nil, err
			}
		}

		// Retention sweep, resident bound, and the interleaved probes.
		if _, err := sys.Store().ApplyRetention(); err != nil {
			return nil, err
		}
		ret := sys.Store().RetentionStatsSnapshot()
		if ret.ResidentMinutes > res.MaxResident {
			res.MaxResident = ret.ResidentMinutes
		}
		if ret.ResidentMinutes > residentCap {
			return nil, fmt.Errorf("sim: minute %d: %d resident shards exceed the horizon cap %d",
				m, ret.ResidentMinutes, residentCap)
		}
		if err := checkEqual(int64(m)); err != nil { // hot minute
			return nil, err
		}
		res.HotChecks++
		if cold := m - cfg.RetentionMinutes - 1; cold >= 0 {
			if err := checkEqual(int64(cold)); err != nil { // evicted minute
				return nil, err
			}
			res.ColdChecks++
			if _, err := sys.Store().ApplyRetention(); err != nil { // re-trim the cold set
				return nil, err
			}
		}

		if (m+1)%cfg.SnapshotEvery == 0 {
			if err := sys.Checkpoint(); err != nil {
				return nil, err
			}
			res.Snapshots++
		}

		// Mid-run crash: drop the WAL handle without a final snapshot,
		// then recover from the directory and keep streaming.
		if m == cfg.CrashAt && cfg.CrashAt >= 0 {
			acked := sys.Store().Len()
			sys.Abort()
			sys, err = server.OpenDurable(server.Config{AuthorityToken: "bench", BankBits: 1024}, dcfg)
			if err != nil {
				return nil, fmt.Errorf("sim: recovery after crash at minute %d: %w", m, err)
			}
			res.CrashMinute = m
			d := sys.DurabilityStatsSnapshot()
			res.Replayed = d.Replayed
			res.RecoveredVPs = sys.Store().Len()
			if res.RecoveredVPs != acked {
				return nil, fmt.Errorf("sim: crash lost acknowledged batches: %d VPs recovered, %d acked",
					res.RecoveredVPs, acked)
			}
			if err := checkEqual(int64(m)); err != nil {
				return nil, fmt.Errorf("sim: post-recovery divergence: %w", err)
			}
		}
	}

	// Final sweep: every minute of the run — resident, cold, or long
	// evicted — must still answer identically to the baseline, with the
	// retention sweep re-trimming the cold set between probes so the
	// resident bound holds throughout.
	for m := 0; m < cfg.Minutes; m++ {
		if err := checkEqual(int64(m)); err != nil {
			return nil, fmt.Errorf("sim: final pass: %w", err)
		}
		res.ColdChecks++
		if _, err := sys.Store().ApplyRetention(); err != nil {
			return nil, err
		}
		if ret := sys.Store().RetentionStatsSnapshot(); ret.ResidentMinutes > residentCap {
			return nil, fmt.Errorf("sim: final pass minute %d: %d resident shards exceed the cap %d",
				m, ret.ResidentMinutes, residentCap)
		}
	}
	res.EvictedMinutes = sys.Store().RetentionStatsSnapshot().EvictedMinutes
	res.IngestRate = float64(res.Ingested) / ingestTime.Seconds()
	err = sys.Close()
	sys = nil
	return res, err
}

// Rows renders the result in the bench binary's row format.
func (r *ContinuousResult) Rows() []string {
	crash := "disabled"
	if r.CrashMinute >= 0 {
		crash = fmt.Sprintf("after minute %d: %d WAL records replayed, %d VPs recovered, zero acked batches lost",
			r.CrashMinute, r.Replayed, r.RecoveredVPs)
	}
	return []string{
		fmt.Sprintf("streamed %d minutes, %d VPs acked at %.0f VPs/s (WAL fsync + link-on-ingest per ack)", r.Minutes, r.Ingested, r.IngestRate),
		fmt.Sprintf("resident shards peaked at %d (horizon-bounded); %d minutes finished evicted on disk", r.MaxResident, r.EvictedMinutes),
		fmt.Sprintf("verdict equality vs always-resident baseline: %d hot + %d cold/evicted probes, all bit-for-bit", r.HotChecks, r.ColdChecks),
		fmt.Sprintf("snapshots: %d (WAL truncated after each)", r.Snapshots),
		fmt.Sprintf("crash+recover: %s", crash),
	}
}
