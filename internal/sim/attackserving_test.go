package sim

import "testing"

// quickAttackCfg keeps the online campaigns small enough for the unit
// and race suites while still exercising every scenario shape.
func quickAttackCfg(skipSweeps bool) AttackServingConfig {
	return AttackServingConfig{
		LegitVPs: 110, FakePct: 80, Owners: 3, BatchSize: 32,
		SweepRuns: 1, SweepPcts: []int{100}, SkipSweeps: skipSweeps, Seed: 21,
	}
}

// TestAttackServingCampaigns drives every campaign shape through the
// live HTTP serving path. AttackServing itself asserts the security
// invariants (FakeAccepted == 0 per campaign, online == offline
// outcomes, replays refused, double spends single-winner); the test
// checks the run covered what it claims to cover. Under -short (the
// race job) the online Fig. 12/13 sweeps are skipped — the scenario
// suite already covers the concurrent paths the race detector cares
// about.
func TestAttackServingCampaigns(t *testing.T) {
	res, err := AttackServing(quickAttackCfg(testing.Short()))
	if err != nil {
		t.Fatal(err)
	}
	wantScenarios := []string{"single-chain", "colluding-clusters", "hop-band-near", "hop-band-far", "flood-verified-minute"}
	if len(res.Scenarios) != len(wantScenarios) {
		t.Fatalf("ran %d scenarios, want %d", len(res.Scenarios), len(wantScenarios))
	}
	for i, want := range wantScenarios {
		sc := res.Scenarios[i]
		if sc.Name != want {
			t.Errorf("scenario %d is %q, want %q", i, sc.Name, want)
		}
		if sc.Outcome.FakeAccepted != 0 {
			t.Errorf("%s: %d fakes accepted", sc.Name, sc.Outcome.FakeAccepted)
		}
		if sc.Outcome.InSiteFakes == 0 || sc.Outcome.LegitAccepted == 0 {
			t.Errorf("%s: degenerate outcome %+v", sc.Name, sc.Outcome)
		}
	}
	if !testing.Short() {
		if len(res.Fig12Online) != len(Fig12QuantileBands) || len(res.Fig13Online) != 5 {
			t.Errorf("online sweeps produced %d/%d rows", len(res.Fig12Online), len(res.Fig13Online))
		}
		for _, row := range append(append([]VerifyRow{}, res.Fig12Online...), res.Fig13Online...) {
			if row.Runs == 0 {
				t.Errorf("empty online sweep cell %q", row.Setting)
			}
		}
	}
	if res.DuplicatesRefused == 0 || res.StaleReplaysRefused == 0 {
		t.Errorf("replay counters %d/%d, want non-zero", res.DuplicatesRefused, res.StaleReplaysRefused)
	}
	if res.TamperRejected != 1 || res.DeliveriesAccepted != 3 {
		t.Errorf("evidence counters: %d tampered rejected, %d accepted", res.TamperRejected, res.DeliveriesAccepted)
	}
	if res.DoubleSpendRefused != 3 || res.PayoutRaceWinners != 1 {
		t.Errorf("payout counters: %d double spends refused, %d race winners", res.DoubleSpendRefused, res.PayoutRaceWinners)
	}
	for _, row := range res.Rows() {
		if row == "" {
			t.Fatal("empty report row")
		}
	}
}

// TestAttackServingDeterministic guards the serving path's
// epoch/grid-rebuild scheduling against nondeterminism: two identical
// campaign runs must produce identical outcomes, cell for cell.
func TestAttackServingDeterministic(t *testing.T) {
	a, err := AttackServing(quickAttackCfg(true))
	if err != nil {
		t.Fatal(err)
	}
	b, err := AttackServing(quickAttackCfg(true))
	if err != nil {
		t.Fatal(err)
	}
	if fa, fb := a.Fingerprint(), b.Fingerprint(); fa != fb {
		t.Fatalf("repeated runs diverge:\n--- first ---\n%s--- second ---\n%s", fa, fb)
	}
}
