package sim

import "testing"

// TestServingSmoke drives the serving system through the online path
// end to end at a tiny scale: batched wire uploads into the sharded
// store, link-on-ingest, and repeated investigations answered from the
// cached viewmaps, cross-checked against the rebuild-per-request
// baseline inside Serving itself.
func TestServingSmoke(t *testing.T) {
	res, err := Serving(ServingConfig{
		VehiclesPerMinute: 40, Minutes: 2, BatchSize: 16, WarmRequests: 3, Seed: 9,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Ingested != 2*40 {
		t.Errorf("ingested %d profiles, want 80", res.Ingested)
	}
	if res.Members == 0 || res.Legitimate == 0 {
		t.Errorf("investigation saw %d members / %d legitimate, want non-zero", res.Members, res.Legitimate)
	}
	if res.WarmLatency <= 0 || res.RebuildLatency <= 0 || res.VerifyLatency <= 0 {
		t.Errorf("non-positive latencies: warm %v, verify %v, rebuild %v",
			res.WarmLatency, res.VerifyLatency, res.RebuildLatency)
	}
}
