package sim

import (
	"crypto/rand"
	"fmt"
	"image"
	"math/big"
	"sync"
	"sync/atomic"
	"time"

	"viewmap/internal/anon"
	"viewmap/internal/blur"
	"viewmap/internal/client"
	"viewmap/internal/evidence"
	"viewmap/internal/geo"
	"viewmap/internal/reward"
	"viewmap/internal/server"
	"viewmap/internal/vd"
)

// This file benchmarks the evidence subsystem under sustained load:
// convoys of camera-equipped vehicles record a minute and upload VPs,
// verified investigations open solicitations over every convoy, and
// the owners answer concurrently — honest owners deliver bytes that
// must pass the VD cascade, tampering owners submit corrupted copies
// that must bounce, and every accepted delivery is paid out in blind-
// signed cash, partially redeemed (with a double-spend probe), and
// released to the investigator in redacted form.

// EvidenceConfig parameterizes the evidence-pipeline benchmark.
type EvidenceConfig struct {
	// Convoys is the number of independent vehicle clusters (each on
	// its own lane, with its own police car); zero selects 4.
	Convoys int
	// CiviliansPerConvoy is the number of video owners per convoy;
	// zero selects 3.
	CiviliansPerConvoy int
	// TamperEvery makes every n-th owner submit a corrupted copy
	// before (in place of) an honest delivery; zero selects 4.
	TamperEvery int
	// Units is the per-video offer; zero selects 2.
	Units int
	// Workers is the delivery concurrency; zero selects 8.
	Workers int
	// FrameW, FrameH are the camera frame dimensions (one frame per
	// second is one chunk); zero selects 160x90 (~864 KB per video).
	FrameW, FrameH int
	// Seed keys the synthetic cameras.
	Seed int64
}

func (c EvidenceConfig) withDefaults() EvidenceConfig {
	if c.Convoys <= 0 {
		c.Convoys = 4
	}
	if c.CiviliansPerConvoy <= 0 {
		c.CiviliansPerConvoy = 3
	}
	if c.TamperEvery <= 0 {
		c.TamperEvery = 4
	}
	if c.Units <= 0 {
		c.Units = 2
	}
	if c.Workers <= 0 {
		c.Workers = 8
	}
	if c.FrameW <= 0 {
		c.FrameW = 160
	}
	if c.FrameH <= 0 {
		c.FrameH = 90
	}
	return c
}

// EvidenceResult reports one evidence-benchmark run.
type EvidenceResult struct {
	// Owners is the number of solicited video owners.
	Owners int
	// Solicited is the number of identifiers listed across convoys.
	Solicited int
	// Accepted and Rejected count cascade outcomes (rejected counts
	// the tampering owners' corrupted submissions).
	Accepted, Rejected int
	// DeliveryWall is the wall-clock time of the concurrent delivery
	// phase; DeliveriesPerSec and VerifyMBps derive from it.
	DeliveryWall time.Duration
	// DeliveriesPerSec is accepted+rejected deliveries per second.
	DeliveriesPerSec float64
	// VerifyMBps is cascade-verified payload megabytes per second
	// (accepted deliveries only).
	VerifyMBps float64
	// Minted and Redeemed count payout units; DoubleSpendsRefused
	// counts the deliberate double-spend probes that bounced.
	Minted, Redeemed, DoubleSpendsRefused int
	// Released counts redacted investigator releases; RedactedRegions
	// the plate regions blurred across them.
	Released, RedactedRegions int
}

// Rows formats the result like the other experiment reports.
func (r *EvidenceResult) Rows() []string {
	return []string{
		fmt.Sprintf("owners %d, solicited %d", r.Owners, r.Solicited),
		fmt.Sprintf("deliveries: %d accepted, %d rejected in %v (%.1f/s, %.1f MB/s verified)",
			r.Accepted, r.Rejected, r.DeliveryWall.Round(time.Millisecond), r.DeliveriesPerSec, r.VerifyMBps),
		fmt.Sprintf("payout: %d units minted, %d redeemed, %d double spends refused",
			r.Minted, r.Redeemed, r.DoubleSpendsRefused),
		fmt.Sprintf("release: %d videos redacted (%d plate regions blurred)",
			r.Released, r.RedactedRegions),
	}
}

// evidenceOwner is one civilian's deliverable state.
type evidenceOwner struct {
	id     vd.VPID
	q      vd.Secret
	chunks [][]byte
	tamper bool
}

// Evidence runs the evidence-pipeline benchmark. Every stage goes
// through server.System — the same code the HTTP handlers call — with
// deliveries spread across a worker pool to exercise the board's
// sharded locking under -race.
func Evidence(cfg EvidenceConfig) (*EvidenceResult, error) {
	cfg = cfg.withDefaults()
	const laneGap = 2000.0 // lanes far apart: convoys never cross-link

	sys, err := server.NewSystem(server.Config{
		AuthorityToken: "bench", BankBits: 1024,
		Evidence: evidence.Config{FrameWidth: cfg.FrameW, FrameHeight: cfg.FrameH},
	})
	if err != nil {
		return nil, err
	}
	token := sys.AuthorityToken()
	sessions := anon.NewSessions()
	plate := image.Rect(55, 40, 105, 56)

	// Phase 1: drive the convoys and upload every VP.
	var owners []*evidenceOwner
	for c := 0; c < cfg.Convoys; c++ {
		laneY := float64(c) * laneGap
		n := cfg.CiviliansPerConvoy + 1 // + police
		vehicles := make([]*client.Vehicle, n)
		for i := range vehicles {
			v, err := client.NewVehicle(client.VehicleConfig{
				Name: fmt.Sprintf("conv%d-car%d", c, i),
				Seed: cfg.Seed + int64(c*100+i),
				Source: &blur.CameraSource{
					W: cfg.FrameW, H: cfg.FrameH,
					Seed:   uint64(cfg.Seed) + uint64(c*1000+i),
					Plates: []blur.Plate{{Rect: plate}},
				},
			})
			if err != nil {
				return nil, err
			}
			if err := v.BeginMinute(0); err != nil {
				return nil, err
			}
			vehicles[i] = v
		}
		for s := 1; s <= 60; s++ {
			vds := make([]vd.VD, n)
			for i, v := range vehicles {
				d, err := v.Tick(geo.Pt(float64(s)*10+float64(i)*50, laneY))
				if err != nil {
					return nil, err
				}
				vds[i] = d
			}
			for i, v := range vehicles {
				for j, d := range vds {
					if i != j {
						if err := v.Hear(d, int64(s)); err != nil {
							return nil, err
						}
					}
				}
			}
		}
		for i, v := range vehicles {
			if _, _, err := v.EndMinute(nil); err != nil {
				return nil, err
			}
			pending := v.PendingUploads()
			if i == n-1 { // police: trusted upload
				for _, p := range pending {
					if err := sys.UploadTrustedVP(token, p.Marshal()); err != nil {
						return nil, err
					}
				}
				continue
			}
			for _, p := range pending {
				if err := sys.UploadVP(p.Marshal()); err != nil {
					return nil, err
				}
				id := p.ID()
				q, _ := v.Secret(id)
				chunks := v.MatchSolicitations([]vd.VPID{id})[id]
				if chunks == nil {
					return nil, fmt.Errorf("vehicle lost its recording for %x", id[:4])
				}
				owners = append(owners, &evidenceOwner{
					id: id, q: q, chunks: chunks,
					tamper: len(owners)%cfg.TamperEvery == cfg.TamperEvery-1,
				})
			}
		}
	}

	// Phase 2: verified investigations open one solicitation per
	// convoy lane.
	res := &EvidenceResult{Owners: len(owners)}
	for c := 0; c < cfg.Convoys; c++ {
		laneY := float64(c) * laneGap
		site := geo.NewRect(geo.Pt(0, laneY-60), geo.Pt(900, laneY+60))
		rep, err := sys.OpenSolicitation(token, site, 0, cfg.Units)
		if err != nil {
			return nil, err
		}
		res.Solicited += rep.NewlyListed
	}

	// Phase 3: concurrent deliveries through the worker pool.
	var accepted, rejected, verifiedBytes atomic.Int64
	work := make(chan *evidenceOwner, len(owners))
	for _, o := range owners {
		work <- o
	}
	close(work)
	var wg sync.WaitGroup
	errCh := make(chan error, cfg.Workers)
	t0 := time.Now()
	for w := 0; w < cfg.Workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for o := range work {
				chunks := o.chunks
				if o.tamper {
					chunks = make([][]byte, len(o.chunks))
					for i, c := range o.chunks {
						chunks[i] = append([]byte(nil), c...)
					}
					chunks[17][3] ^= 0x20
				}
				sid, err := sessions.New()
				if err != nil {
					errCh <- err
					return
				}
				_, err = sys.Evidence().Deliver(sid, o.id, o.q, chunks)
				switch {
				case o.tamper && err != nil:
					rejected.Add(1)
				case o.tamper:
					errCh <- fmt.Errorf("tampered delivery for %x was accepted", o.id[:4])
					return
				case err != nil:
					errCh <- fmt.Errorf("honest delivery for %x: %w", o.id[:4], err)
					return
				default:
					accepted.Add(1)
					var total int64
					for _, c := range chunks {
						total += int64(len(c))
					}
					verifiedBytes.Add(total)
				}
			}
		}()
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		return nil, err
	}
	res.DeliveryWall = time.Since(t0)
	res.Accepted = int(accepted.Load())
	res.Rejected = int(rejected.Load())
	secs := res.DeliveryWall.Seconds()
	if secs > 0 {
		res.DeliveriesPerSec = float64(res.Accepted+res.Rejected) / secs
		res.VerifyMBps = float64(verifiedBytes.Load()) / 1e6 / secs
	}

	// Phase 4: payout for every accepted delivery; one unit redeemed,
	// one double-spend probe per owner.
	for _, o := range owners {
		if o.tamper {
			continue
		}
		cash, err := withdrawEvidence(sys, sessions, o, cfg.Units)
		if err != nil {
			return nil, err
		}
		res.Minted += len(cash)
		if err := sys.Evidence().Redeem(cash[0]); err != nil {
			return nil, err
		}
		res.Redeemed++
		if err := sys.Evidence().Redeem(cash[0]); err == nil {
			return nil, fmt.Errorf("double spend for %x was accepted", o.id[:4])
		}
		res.DoubleSpendsRefused++
	}

	// Phase 5: investigator releases.
	for _, o := range owners {
		if o.tamper {
			continue
		}
		_, _, regions, err := sys.ReleaseEvidence(token, o.id)
		if err != nil {
			return nil, err
		}
		res.Released++
		res.RedactedRegions += regions
	}
	return res, nil
}

// withdrawEvidence runs the client side of one payout: blind fresh
// notes, have the evidence desk sign them under a single-use session,
// unblind into spendable cash.
func withdrawEvidence(sys *server.System, sessions *anon.Sessions, o *evidenceOwner, n int) ([]*reward.Cash, error) {
	pub := sys.Bank().PublicKey()
	notes := make([]*reward.Note, n)
	blinded := make([]*big.Int, n)
	for i := 0; i < n; i++ {
		note, err := reward.NewNote(pub, rand.Reader)
		if err != nil {
			return nil, err
		}
		notes[i] = note
		blinded[i] = note.Blind(pub)
	}
	sid, err := sessions.New()
	if err != nil {
		return nil, err
	}
	sigs, err := sys.Evidence().Payout(sid, o.id, o.q, blinded)
	if err != nil {
		return nil, err
	}
	cash := make([]*reward.Cash, n)
	for i := range sigs {
		c, err := notes[i].Unblind(pub, sigs[i])
		if err != nil {
			return nil, err
		}
		cash[i] = c
	}
	return cash, nil
}
