package sim

import (
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
)

// TestSeedAuditNoGlobalRand walks every non-test source file of the
// simulation-feeding packages and rejects calls through math/rand's
// package-global source (rand.Intn, rand.Float64, rand.Shuffle, ...).
// All simulation randomness must flow from an explicitly seeded
// *rand.Rand so that same-seed runs — and the scenario engine's
// fingerprint — stay reproducible. Constructing sources (rand.New,
// rand.NewSource) is the one permitted use. crypto/rand is exempt: it
// backs real secrets and must never be seeded.
func TestSeedAuditNoGlobalRand(t *testing.T) {
	pkgs := []string{"sim", "core", "vp", "vd", "mobility", "roadnet", "tracker", "server", "client"}
	allowed := map[string]bool{"New": true, "NewSource": true}
	fset := token.NewFileSet()
	var violations []string
	for _, pkg := range pkgs {
		dir := filepath.Join("..", pkg)
		entries, err := os.ReadDir(dir)
		if err != nil {
			t.Fatalf("reading %s: %v", dir, err)
		}
		for _, e := range entries {
			name := e.Name()
			if !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
				continue
			}
			path := filepath.Join(dir, name)
			f, err := parser.ParseFile(fset, path, nil, 0)
			if err != nil {
				t.Fatalf("parsing %s: %v", path, err)
			}
			// Collect the local identifiers bound to math/rand (the
			// default "rand" or any alias like mrand).
			mathRandNames := map[string]bool{}
			for _, imp := range f.Imports {
				p, _ := strconv.Unquote(imp.Path.Value)
				if p != "math/rand" && p != "math/rand/v2" {
					continue
				}
				local := "rand"
				if imp.Name != nil {
					local = imp.Name.Name
				}
				mathRandNames[local] = true
			}
			if len(mathRandNames) == 0 {
				continue
			}
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				sel, ok := call.Fun.(*ast.SelectorExpr)
				if !ok {
					return true
				}
				id, ok := sel.X.(*ast.Ident)
				// Only flag selectors on the package identifier itself
				// (id.Obj == nil); rng.Intn on a *rand.Rand variable
				// resolves to a local object and is the sanctioned form.
				if !ok || id.Obj != nil || !mathRandNames[id.Name] {
					return true
				}
				if !allowed[sel.Sel.Name] {
					violations = append(violations, violationAt(fset, call, pkg, sel.Sel.Name))
				}
				return true
			})
		}
	}
	if len(violations) > 0 {
		t.Fatalf("unseeded math/rand globals found (use a seeded *rand.Rand):\n  %s",
			strings.Join(violations, "\n  "))
	}
}

// violationAt renders one violation with its source position.
func violationAt(fset *token.FileSet, n ast.Node, pkg, fn string) string {
	pos := fset.Position(n.Pos())
	return pos.String() + ": internal/" + pkg + " calls rand." + fn + " on the global source"
}
