package sim

import (
	"fmt"
	"time"
)

// Fault families: named scenario configurations that each isolate one
// failure mode the city engine must ride out — crash-and-recover,
// clock skew against the wall-clock admission window, asymmetric
// per-endpoint-class partitions, and long-horizon retention. The
// bench binary runs them after the main scenario and folds their
// summaries into the SLO report; the CI gate regresses on the
// per-family counters and p99s.

// FaultFamily is one named fault-injection scenario plus the
// structural outcomes it exists to prove.
type FaultFamily struct {
	// Name identifies the family in reports and CI gates.
	Name string
	// Config is the family's scenario.
	Config ScenarioConfig
	// Check validates the family-specific counters of a passing run
	// (the engine's universal invariants — zero acked loss, probe
	// equality — have already held by the time Check runs).
	Check func(*ScenarioResult) error
}

// FaultFamilies returns the four fault-family scenarios for a seed.
// Each is sized to finish in seconds; the structural invariants do
// the proving, not the scale.
func FaultFamilies(seed int64) []FaultFamily {
	return []FaultFamily{
		{
			Name: "crash",
			Config: ScenarioConfig{
				Cities: []CityConfig{
					{Vehicles: 10, BlocksX: 5, BlocksY: 5, SpacingM: 150},
					{Vehicles: 8, BlocksX: 4, BlocksY: 4, SpacingM: 150},
				},
				Minutes:   4,
				BatchSize: 3,
				Uploaders: 6,
				Faults: FaultPlan{
					CrashAtMinute: 2,
				},
				SnapshotEvery: 3,
				Seed:          seed,
			},
			Check: func(r *ScenarioResult) error {
				if r.Crashes != 1 {
					return fmt.Errorf("crash family rode out %d crashes, want 1", r.Crashes)
				}
				if r.WALReplayed < 1 {
					return fmt.Errorf("crash family replayed %d WAL records, want >= 1 (the parked crash-window batch)", r.WALReplayed)
				}
				return nil
			},
		},
		{
			Name: "clock_skew",
			Config: ScenarioConfig{
				Cities: []CityConfig{
					{Vehicles: 8, BlocksX: 4, BlocksY: 4, SpacingM: 150},
					{Vehicles: 8, BlocksX: 4, BlocksY: 4, SpacingM: 150},
					{Vehicles: 6, BlocksX: 4, BlocksY: 4, SpacingM: 150},
				},
				Minutes:   6,
				BatchSize: 3,
				Uploaders: 6,
				Faults: FaultPlan{
					SkewMaxLagMinutes: 1,
					// City 0 is on time, city 1 lags within the window
					// (admitted), city 2 lags beyond it (every anonymous
					// record must bounce as stale).
					CityClockSkew: []int{0, 1, 3},
				},
				SnapshotEvery: 3,
				Seed:          seed,
			},
			Check: func(r *ScenarioResult) error {
				if r.StaleRejectedVPs == 0 {
					return fmt.Errorf("clock-skew family rejected nothing; the admission window never engaged")
				}
				return nil
			},
		},
		{
			Name: "partition",
			Config: ScenarioConfig{
				Cities: []CityConfig{
					{Vehicles: 10, BlocksX: 5, BlocksY: 5, SpacingM: 150},
					{Vehicles: 8, BlocksX: 4, BlocksY: 4, SpacingM: 150},
				},
				Minutes:   6,
				BatchSize: 3,
				Uploaders: 6,
				Faults: FaultPlan{
					// Investigations dark at minute 2, uploads dark at
					// minute 4 — the two asymmetric halves, with a healed
					// minute between them.
					InvestigatePartitionFrom:    2,
					InvestigatePartitionMinutes: 1,
					UploadPartitionFrom:         4,
					UploadPartitionMinutes:      1,
				},
				SnapshotEvery: 3,
				Seed:          seed,
			},
			Check: func(r *ScenarioResult) error {
				if r.PartitionRejects == 0 {
					return fmt.Errorf("partition family refused nothing; the front never partitioned")
				}
				if r.WatchReports < 1 {
					return fmt.Errorf("partition family streamed %d watch reports, want >= 1 (the post-heal resume)", r.WatchReports)
				}
				return nil
			},
		},
		{
			Name: "retention",
			Config: ScenarioConfig{
				Cities: []CityConfig{
					{Vehicles: 4, BlocksX: 4, BlocksY: 4, SpacingM: 150},
					{Vehicles: 4, BlocksX: 4, BlocksY: 4, SpacingM: 150},
				},
				Minutes:   62,
				BatchSize: 4,
				Uploaders: 4,
				Incidents: []IncidentPlan{
					// Evidence demand aimed at a long-evicted minute.
					{Minute: 40, City: 0, Units: 2, Polls: 3, TargetMinuteOffset: 30},
				},
				Faults: FaultPlan{
					// A slow-disk storm over hot minutes while cold
					// probes race the drain.
					FsyncStallFrom: 30, FsyncStallMinutes: 2,
					FsyncStallDelay: 5 * time.Millisecond,
					SaturateFactor:  1,
				},
				RetentionMinutes:    3,
				ResidentColdMinutes: 1,
				SnapshotEvery:       5,
				Seed:                seed,
			},
			Check: func(r *ScenarioResult) error {
				if r.ColdProbes == 0 {
					return fmt.Errorf("retention family probed no evicted minutes; retention never engaged")
				}
				if r.WatchReports < 1 {
					return fmt.Errorf("retention family streamed %d watch reports, want >= 1", r.WatchReports)
				}
				if r.Incidents < 1 {
					return fmt.Errorf("retention family fired %d incidents, want >= 1 (the evicted-minute evidence spike)", r.Incidents)
				}
				return nil
			},
		},
	}
}

// RunFaultFamilies executes every family for the seed and returns
// their summaries; the first failing family (engine invariant or
// family check) aborts with an error naming it.
func RunFaultFamilies(seed int64) ([]FamilySummary, error) {
	var out []FamilySummary
	for _, f := range FaultFamilies(seed) {
		res, err := Scenario(f.Config)
		if err != nil {
			return nil, fmt.Errorf("sim: fault family %s: %w", f.Name, err)
		}
		if err := f.Check(res); err != nil {
			return nil, fmt.Errorf("sim: fault family %s: %w", f.Name, err)
		}
		out = append(out, FamilySummary{
			Name:             f.Name,
			Upload:           res.Upload,
			Investigate:      res.Investigate,
			ZeroAckedLoss:    res.ZeroAckedLoss,
			ProbesCompared:   res.ProbesCompared,
			Crashes:          res.Crashes,
			WALReplayed:      res.WALReplayed,
			StaleRejectedVPs: res.StaleRejectedVPs,
			PartitionRejects: res.PartitionRejects,
			ColdProbes:       res.ColdProbes,
			WatchReports:     res.WatchReports,
			ProbeDigest:      res.ProbeDigest,
		})
	}
	return out, nil
}
