// Package sim orchestrates the reproduction's experiments: scripted
// two-vehicle DSRC encounters (the field experiments of Section 7),
// trace-driven city simulations (Section 8), and the privacy and
// verification studies built on them. The benchmark harness
// (cmd/viewmap-bench and bench_test.go) calls into this package to
// regenerate every table and figure.
package sim

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"viewmap/internal/geo"
	"viewmap/internal/radio"
	"viewmap/internal/vd"
	"viewmap/internal/video"
	"viewmap/internal/vp"
)

// CameraFOVDeg is the horizontal field of view of the dashcam model.
// Dashcams ship with wide lenses; 130 degrees is typical.
const CameraFOVDeg = 130

// CameraRangeM is the distance beyond which another vehicle is too
// small to identify on video. The paper's open-road rows show vehicles
// identifiable out to DSRC range, so the camera model matches it.
const CameraRangeM = 400

// scenarioChunkBytes keeps scripted scenarios fast: linkage behaviour
// does not depend on the video bitrate, only the digests exchanged.
const scenarioChunkBytes = 256

// LinkScenario scripts one repeated two-vehicle encounter.
type LinkScenario struct {
	Name string
	// TrackA and TrackB are per-second positions; their length must be
	// a non-zero multiple of 60.
	TrackA, TrackB []geo.Point
	// Env is the radio environment (obstacles, traffic density).
	Env radio.Environment
	// Params overrides the radio constants; zero-value selects defaults.
	Params radio.Params
	// TrafficDensity in [0,1] is the stationary probability that
	// interposed heavy traffic blocks the pair. Unlike the radio
	// medium's per-packet loss, this blockage is persistent: a truck
	// stays between two cars for BlockMeanSec on average, suppressing
	// both the radio link and the camera view. The effective
	// probability grows with separation (more vehicles fit between a
	// wider gap).
	TrafficDensity float64
	// BlockMeanSec is the mean duration of one blocked run; zero
	// selects 30 s.
	BlockMeanSec float64
	// Seed drives fading and shadowing.
	Seed int64
}

// MinuteOutcome reports one minute of a scenario.
type MinuteOutcome struct {
	// Linked is the VP linkage result (two-way viewlink).
	Linked bool
	// OnVideo reports whether either vehicle captured the other on
	// camera for at least one second.
	OnVideo bool
	// MeanDistance is the average separation during the minute.
	MeanDistance float64
	// DeliveredAB and DeliveredBA count VD receptions per direction.
	DeliveredAB, DeliveredBA int
}

// heading returns the unit direction of travel at second i, falling
// back to the previous motion (or +x when parked from the start).
func heading(track []geo.Point, i int) geo.Point {
	for j := i; j+1 < len(track); j++ {
		d := track[j+1].Sub(track[j])
		if d.Norm() > 1e-9 {
			return d.Scale(1 / d.Norm())
		}
	}
	for j := min(i, len(track)-1); j > 0; j-- {
		d := track[j].Sub(track[j-1])
		if d.Norm() > 1e-9 {
			return d.Scale(1 / d.Norm())
		}
	}
	return geo.Pt(1, 0)
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// newScenarioRNG derives a deterministic source for scenario-level
// randomness (truck blockage) decoupled from the radio medium's.
func newScenarioRNG(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed*7919 + 13))
}

// Sees reports whether a camera at `at` heading `dir` captures a
// vehicle at `other`: within camera range, inside the horizontal FOV,
// and in line of sight.
func Sees(at, dir, other geo.Point, obstacles *geo.ObstacleSet) bool {
	d := other.Sub(at)
	dist := d.Norm()
	if dist < 1e-9 {
		return true
	}
	if dist > CameraRangeM {
		return false
	}
	cos := d.Dot(dir) / dist
	if cos < math.Cos(CameraFOVDeg/2*math.Pi/180) {
		return false
	}
	return obstacles.LOS(at, other)
}

// RunLinkScenario drives the scripted encounter minute by minute:
// both vehicles record, broadcast VDs at 1 Hz through the radio
// medium, accept what they hear, and compile VPs at each minute
// boundary. The outcome of each minute is the two-way linkage verdict
// plus the camera visibility ground truth.
func RunLinkScenario(sc LinkScenario) ([]MinuteOutcome, error) {
	n := len(sc.TrackA)
	if n == 0 || n%vd.SegmentSeconds != 0 || len(sc.TrackB) != n {
		return nil, fmt.Errorf("sim: tracks must be equal non-zero multiples of 60 seconds (%d, %d)", n, len(sc.TrackB))
	}
	params := sc.Params
	if params == (radio.Params{}) {
		params = radio.DefaultParams()
	}
	medium := radio.NewMedium(params, sc.Env, sc.Seed)
	srcA, err := video.NewSyntheticSource(sc.Name+"-A", scenarioChunkBytes)
	if err != nil {
		return nil, err
	}
	srcB, err := video.NewSyntheticSource(sc.Name+"-B", scenarioChunkBytes)
	if err != nil {
		return nil, err
	}

	// Persistent traffic-blockage state (two-state Markov chain),
	// shared by the radio link and the camera view.
	blockMean := sc.BlockMeanSec
	if blockMean <= 0 {
		blockMean = 30
	}
	rng := newScenarioRNG(sc.Seed)
	blocked := false
	stepBlock := func(dist float64) bool {
		p := sc.TrafficDensity * math.Min(1, dist/300)
		if p <= 0 {
			blocked = false
			return false
		}
		if p >= 1 {
			blocked = true
			return true
		}
		if blocked {
			if rng.Float64() < 1/blockMean {
				blocked = false
			}
		} else {
			enter := p / (1 - p) / blockMean
			if rng.Float64() < enter {
				blocked = true
			}
		}
		return blocked
	}

	minutes := n / vd.SegmentSeconds
	out := make([]MinuteOutcome, 0, minutes)
	for m := 0; m < minutes; m++ {
		start := int64(m) * vd.SegmentSeconds
		var qa, qb vd.Secret
		qa[0], qb[0] = byte(m), byte(m)
		qa[1], qb[1] = 'a', 'b'
		ba, err := vp.NewBuilder(vd.DeriveVPID(qa), start, 0, params.HardRangeM)
		if err != nil {
			return nil, err
		}
		bb, err := vp.NewBuilder(vd.DeriveVPID(qb), start, 0, params.HardRangeM)
		if err != nil {
			return nil, err
		}
		var outcome MinuteOutcome
		var distSum float64
		for s := 1; s <= vd.SegmentSeconds; s++ {
			idx := m*vd.SegmentSeconds + s - 1
			pa, pb := sc.TrackA[idx], sc.TrackB[idx]
			now := start + int64(s)
			distSum += pa.Dist(pb)

			da, err := ba.RecordSecond(pa, srcA.SecondChunk(start, s))
			if err != nil {
				return nil, err
			}
			db, err := bb.RecordSecond(pb, srcB.SecondChunk(start, s))
			if err != nil {
				return nil, err
			}
			// Advance the truck-blockage state once per second; a
			// blocked second attenuates the radio link and hides the
			// vehicles from each other's cameras.
			truckBlocked := stepBlock(pa.Dist(pb))
			extraLoss := 0.0
			if truckBlocked {
				extraLoss = 1.5 * params.VehicleBlockDB
			}
			// Broadcast both directions through the shared medium.
			if medium.TryDeliverLoss(0, pa, 1, pb, extraLoss).OK {
				if bb.AcceptNeighborVD(da, now) == nil {
					outcome.DeliveredAB++
				}
			}
			if medium.TryDeliverLoss(1, pb, 0, pa, extraLoss).OK {
				if ba.AcceptNeighborVD(db, now) == nil {
					outcome.DeliveredBA++
				}
			}
			// Visibility ground truth.
			if !truckBlocked {
				ha := heading(sc.TrackA, idx)
				hb := heading(sc.TrackB, idx)
				if Sees(pa, ha, pb, sc.Env.Obstacles) || Sees(pb, hb, pa, sc.Env.Obstacles) {
					outcome.OnVideo = true
				}
			}
		}
		profA, err := ba.Finalize()
		if err != nil {
			return nil, err
		}
		profB, err := bb.Finalize()
		if err != nil {
			return nil, err
		}
		outcome.Linked = vp.MutualNeighbors(profA, profB, params.HardRangeM)
		outcome.MeanDistance = distSum / vd.SegmentSeconds
		out = append(out, outcome)
	}
	return out, nil
}

// LinkageStats aggregates scenario outcomes.
type LinkageStats struct {
	Minutes   int
	Linked    int
	OnVideo   int
	MeanDist  float64
	LinkRatio float64
	VideoRate float64
}

// Aggregate summarizes a batch of minutes.
func Aggregate(outcomes []MinuteOutcome) LinkageStats {
	var st LinkageStats
	st.Minutes = len(outcomes)
	if st.Minutes == 0 {
		return st
	}
	var dist float64
	for _, o := range outcomes {
		if o.Linked {
			st.Linked++
		}
		if o.OnVideo {
			st.OnVideo++
		}
		dist += o.MeanDistance
	}
	st.MeanDist = dist / float64(st.Minutes)
	st.LinkRatio = float64(st.Linked) / float64(st.Minutes)
	st.VideoRate = float64(st.OnVideo) / float64(st.Minutes)
	return st
}

// ParallelTracks returns two tracks holding a constant lateral gap
// while driving east at the given speed for the given minutes.
func ParallelTracks(gap, speed float64, minutes int) (a, b []geo.Point, err error) {
	if minutes <= 0 {
		return nil, nil, errors.New("sim: minutes must be positive")
	}
	n := minutes * vd.SegmentSeconds
	a = make([]geo.Point, n)
	b = make([]geo.Point, n)
	for i := 0; i < n; i++ {
		x := speed * float64(i)
		a[i] = geo.Pt(x, 0)
		b[i] = geo.Pt(x, gap)
	}
	return a, b, nil
}
