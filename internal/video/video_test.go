package video

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestNewSegmentAlignment(t *testing.T) {
	if _, err := NewSegment(60); err != nil {
		t.Errorf("aligned start should succeed: %v", err)
	}
	if _, err := NewSegment(61); err == nil {
		t.Error("misaligned start should fail")
	}
	if _, err := NewSegment(0); err != nil {
		t.Error("zero start is aligned")
	}
}

func TestAppendSecond(t *testing.T) {
	seg, err := NewSegment(0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= SegmentSeconds; i++ {
		idx, err := seg.AppendSecond([]byte{byte(i)})
		if err != nil {
			t.Fatal(err)
		}
		if idx != i {
			t.Fatalf("AppendSecond returned %d, want %d", idx, i)
		}
	}
	if !seg.Complete() {
		t.Error("segment should be complete after 60 seconds")
	}
	if _, err := seg.AppendSecond([]byte{0}); err == nil {
		t.Error("61st second should fail")
	}
	if seg.Size() != SegmentSeconds {
		t.Errorf("Size = %d, want %d", seg.Size(), SegmentSeconds)
	}
}

func TestAppendSecondCopies(t *testing.T) {
	seg, _ := NewSegment(0)
	buf := []byte{1, 2, 3}
	if _, err := seg.AppendSecond(buf); err != nil {
		t.Fatal(err)
	}
	buf[0] = 99
	c, err := seg.Chunk(1)
	if err != nil {
		t.Fatal(err)
	}
	if c[0] != 1 {
		t.Error("segment must copy appended chunks")
	}
}

func TestSizeAt(t *testing.T) {
	seg, _ := NewSegment(0)
	seg.AppendSecond([]byte{1, 2})
	seg.AppendSecond([]byte{3})
	seg.AppendSecond([]byte{4, 5, 6})
	for i, want := range map[int]int64{1: 2, 2: 3, 3: 6} {
		got, err := seg.SizeAt(i)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Errorf("SizeAt(%d) = %d, want %d", i, got, want)
		}
	}
	if _, err := seg.SizeAt(0); err == nil {
		t.Error("SizeAt(0) should fail")
	}
	if _, err := seg.SizeAt(4); err == nil {
		t.Error("SizeAt past recorded range should fail")
	}
}

func TestChunkErrors(t *testing.T) {
	seg, _ := NewSegment(0)
	seg.AppendSecond([]byte{1})
	if _, err := seg.Chunk(0); err == nil {
		t.Error("Chunk(0) should fail")
	}
	if _, err := seg.Chunk(2); err == nil {
		t.Error("Chunk beyond recording should fail")
	}
}

func TestBytesConcatenation(t *testing.T) {
	seg, _ := NewSegment(0)
	seg.AppendSecond([]byte{1, 2})
	seg.AppendSecond([]byte{3, 4})
	if got := seg.Bytes(); !bytes.Equal(got, []byte{1, 2, 3, 4}) {
		t.Errorf("Bytes = %v", got)
	}
}

func TestSyntheticSourceDeterministic(t *testing.T) {
	s1, err := NewSyntheticSource("car-A", 1024)
	if err != nil {
		t.Fatal(err)
	}
	s2, _ := NewSyntheticSource("car-A", 1024)
	a := s1.SecondChunk(120, 5)
	b := s2.SecondChunk(120, 5)
	if !bytes.Equal(a, b) {
		t.Error("same seed must produce identical chunks")
	}
	if len(a) != 1024 {
		t.Errorf("chunk length = %d, want 1024", len(a))
	}
}

func TestSyntheticSourceDistinct(t *testing.T) {
	s, _ := NewSyntheticSource("car-A", 256)
	other, _ := NewSyntheticSource("car-B", 256)
	if bytes.Equal(s.SecondChunk(0, 1), other.SecondChunk(0, 1)) {
		t.Error("different seeds must differ")
	}
	if bytes.Equal(s.SecondChunk(0, 1), s.SecondChunk(0, 2)) {
		t.Error("different seconds must differ")
	}
	if bytes.Equal(s.SecondChunk(0, 1), s.SecondChunk(60, 1)) {
		t.Error("different segments must differ")
	}
}

func TestSyntheticSourceValidation(t *testing.T) {
	if _, err := NewSyntheticSource("x", 0); err == nil {
		t.Error("zero bitrate should fail")
	}
}

func TestRecordSegment(t *testing.T) {
	s, _ := NewSyntheticSource("car-A", 1000)
	seg, err := s.RecordSegment(300)
	if err != nil {
		t.Fatal(err)
	}
	if !seg.Complete() {
		t.Error("recorded segment should be complete")
	}
	if seg.Size() != 60*1000 {
		t.Errorf("Size = %d, want 60000", seg.Size())
	}
	if _, err := s.RecordSegment(17); err == nil {
		t.Error("misaligned record should fail")
	}
}

func TestStorageEviction(t *testing.T) {
	src, _ := NewSyntheticSource("car-A", 100)
	st, err := NewStorage(3 * 60 * 100) // room for exactly 3 segments
	if err != nil {
		t.Fatal(err)
	}
	var starts []int64
	for i := 0; i < 5; i++ {
		start := int64(i * 60)
		starts = append(starts, start)
		seg, _ := src.RecordSegment(start)
		evicted, err := st.Store(seg)
		if err != nil {
			t.Fatal(err)
		}
		if i < 3 && len(evicted) != 0 {
			t.Errorf("segment %d should not evict, got %d evictions", i, len(evicted))
		}
		if i >= 3 && len(evicted) != 1 {
			t.Errorf("segment %d should evict exactly one, got %d", i, len(evicted))
		}
	}
	if st.Len() != 3 {
		t.Errorf("Len = %d, want 3", st.Len())
	}
	// Oldest two are gone; the newest three remain.
	if st.Find(starts[0]) != nil || st.Find(starts[1]) != nil {
		t.Error("oldest segments should have been recorded over")
	}
	for _, s := range starts[2:] {
		if st.Find(s) == nil {
			t.Errorf("segment %d should remain", s)
		}
	}
}

func TestStorageValidation(t *testing.T) {
	if _, err := NewStorage(0); err == nil {
		t.Error("zero capacity should fail")
	}
	st, _ := NewStorage(100)
	incomplete, _ := NewSegment(0)
	if _, err := st.Store(incomplete); err == nil {
		t.Error("incomplete segment should be rejected")
	}
	src, _ := NewSyntheticSource("x", 10)
	big, _ := src.RecordSegment(0)
	if _, err := st.Store(big); err == nil {
		t.Error("segment larger than card should be rejected")
	}
}

func TestStorageUsed(t *testing.T) {
	src, _ := NewSyntheticSource("x", 10)
	st, _ := NewStorage(10000)
	seg, _ := src.RecordSegment(0)
	st.Store(seg)
	if st.Used() != 600 {
		t.Errorf("Used = %d, want 600", st.Used())
	}
}

// Property: SizeAt is the running sum of chunk lengths and equals
// Size at the last recorded second.
func TestSizeAtConsistencyProperty(t *testing.T) {
	f := func(lens []uint8) bool {
		if len(lens) == 0 || len(lens) > SegmentSeconds {
			return true
		}
		seg, err := NewSegment(0)
		if err != nil {
			return false
		}
		var running int64
		for i, l := range lens {
			chunk := make([]byte, int(l))
			if _, err := seg.AppendSecond(chunk); err != nil {
				return false
			}
			running += int64(l)
			got, err := seg.SizeAt(i + 1)
			if err != nil || got != running {
				return false
			}
		}
		return seg.Size() == running
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func BenchmarkSecondChunk50MBpm(b *testing.B) {
	src, _ := NewSyntheticSource("bench", DefaultBytesPerSecond)
	b.SetBytes(DefaultBytesPerSecond)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		src.SecondChunk(0, 1+i%60)
	}
}
